#!/bin/sh
# Guard test for the TDRAM_STATS compile-time gate (DESIGN.md §13).
#
# The event bus's stats subscriber applies Histogram::sample on the
# scheduler's hot path; every compiled-in sample() site references the
# out-of-line Histogram::sampleOverflow() clamp. A TDRAM_STATS=1
# compile of the hottest emission site (dram/channel.cc) therefore
# references that symbol; a TDRAM_STATS=0 compile must not reference
# any Histogram sampling symbol — proving the stats subscriber (and
# FlushBuffer's inline occupancy sampling) compiled out entirely, not
# just branched around.
#
# Usage: check_stats_gate.sh <repo-source-dir>
# Exit codes: 0 pass, 1 fail, 77 skip (toolchain unavailable).

set -u

SRC_DIR=${1:-$(cd "$(dirname "$0")/.." && pwd)}
CXX=${CXX:-c++}

command -v "$CXX" >/dev/null 2>&1 || { echo "skip: no $CXX"; exit 77; }
command -v nm >/dev/null 2>&1 || { echo "skip: no nm"; exit 77; }

TMP=$(mktemp -d) || exit 77
trap 'rm -rf "$TMP"' EXIT

FLAGS="-std=c++20 -O2 -I $SRC_DIR/src -c $SRC_DIR/src/dram/channel.cc"

if ! "$CXX" $FLAGS -DTDRAM_STATS=1 -o "$TMP/on.o"; then
    echo "FAIL: TDRAM_STATS=1 compile of channel.cc failed"
    exit 1
fi
if ! "$CXX" $FLAGS -DTDRAM_STATS=0 -o "$TMP/off.o"; then
    echo "FAIL: TDRAM_STATS=0 compile of channel.cc failed"
    exit 1
fi

if ! nm -C "$TMP/on.o" | grep -q 'Histogram::sampleOverflow'; then
    echo "FAIL: TDRAM_STATS=1 object lacks a" \
         "Histogram::sampleOverflow reference - the guard no longer" \
         "proves anything"
    exit 1
fi

if nm -C "$TMP/off.o" | grep -q 'Histogram::sample'; then
    echo "FAIL: TDRAM_STATS=0 object still references" \
         "Histogram sampling - stats updates were not compiled out"
    nm -C "$TMP/off.o" | grep 'Histogram::sample'
    exit 1
fi

# The gated-off object must also be no larger than the stats-on one.
ON_SIZE=$(wc -c < "$TMP/on.o")
OFF_SIZE=$(wc -c < "$TMP/off.o")
if [ "$OFF_SIZE" -gt "$ON_SIZE" ]; then
    echo "FAIL: TDRAM_STATS=0 object ($OFF_SIZE B) is larger than" \
         "TDRAM_STATS=1 ($ON_SIZE B)"
    exit 1
fi

echo "PASS: stats updates gate correctly" \
     "(on: $ON_SIZE B, off: $OFF_SIZE B)"
exit 0
