/**
 * @file
 * Unit tests for TDRAM's flush buffer (§III-D2, §V-E).
 */

#include <gtest/gtest.h>

#include "tdram/flush_buffer.hh"

namespace tsim
{
namespace
{

TEST(FlushBuffer, FifoOrder)
{
    FlushBuffer fb(4);
    EXPECT_TRUE(fb.push(0x100));
    EXPECT_TRUE(fb.push(0x200));
    EXPECT_TRUE(fb.push(0x300));
    EXPECT_EQ(fb.pop(), 0x100u);
    EXPECT_EQ(fb.pop(), 0x200u);
    EXPECT_EQ(fb.pop(), 0x300u);
    EXPECT_TRUE(fb.empty());
}

TEST(FlushBuffer, FullRefusesAndCountsStall)
{
    FlushBuffer fb(2);
    EXPECT_TRUE(fb.push(1 * 64));
    EXPECT_TRUE(fb.push(2 * 64));
    EXPECT_TRUE(fb.full());
    EXPECT_FALSE(fb.push(3 * 64));
    EXPECT_EQ(fb.stalls.value(), 1.0);
    EXPECT_EQ(fb.size(), 2u);
}

TEST(FlushBuffer, InFlightOccupiesCapacity)
{
    FlushBuffer fb(2);
    fb.push(0x40);
    fb.push(0x80);
    fb.pop();
    fb.beginDrain();
    // One waiting + one in flight: still full.
    EXPECT_TRUE(fb.full());
    EXPECT_FALSE(fb.push(0xc0));
    fb.completeDrain();
    EXPECT_FALSE(fb.full());
    EXPECT_TRUE(fb.push(0xc0));
}

TEST(FlushBuffer, ContainsAndSupersede)
{
    FlushBuffer fb(8);
    fb.push(0x1000);
    fb.push(0x2000);
    EXPECT_TRUE(fb.contains(0x1000));
    EXPECT_FALSE(fb.contains(0x3000));
    // A newer demand write supersedes the buffered dirty data.
    EXPECT_TRUE(fb.remove(0x1000));
    EXPECT_FALSE(fb.contains(0x1000));
    EXPECT_FALSE(fb.remove(0x1000));
    EXPECT_EQ(fb.superseded.value(), 1.0);
    EXPECT_EQ(fb.pop(), 0x2000u);
}

TEST(FlushBuffer, OccupancyStats)
{
    FlushBuffer fb(16);
    for (Addr a = 1; a <= 5; ++a)
        fb.push(a * 64);
    EXPECT_EQ(fb.maxOccupancy.value(), 5.0);
    EXPECT_EQ(fb.occupancy.count(), 5u);
    EXPECT_DOUBLE_EQ(fb.occupancy.mean(), 3.0);  // 1+2+3+4+5 / 5
}

/** Property sweep over the paper's §V-E capacities. */
class FlushBufferSizes : public ::testing::TestWithParam<unsigned>
{};

TEST_P(FlushBufferSizes, NeverExceedsCapacity)
{
    const unsigned cap = GetParam();
    FlushBuffer fb(cap);
    unsigned pushed = 0;
    for (unsigned i = 0; i < 4 * cap; ++i) {
        if (fb.push(i * 64))
            ++pushed;
        if (i % 3 == 0 && !fb.empty()) {
            fb.pop();
            fb.beginDrain();
        }
        if (i % 5 == 0 && fb.inFlight() > 0)
            fb.completeDrain();
        ASSERT_LE(fb.size() + fb.inFlight(), cap);
    }
    EXPECT_GT(pushed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Capacities, FlushBufferSizes,
                         ::testing::Values(8, 16, 32, 64));

} // namespace
} // namespace tsim
