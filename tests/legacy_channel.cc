/**
 * @file
 * Frozen pre-change DRAM channel scheduler (see legacy_channel.hh).
 * Mechanically renamed from src/dram/channel.cc as of PR 1; compiled
 * into the tests and micro_channel only. Do not optimize.
 */

#include "legacy_channel.hh"

#include <algorithm>

namespace tsim
{

namespace
{

/**
 * HM-bus occupancy of one tag/metadata packet: 3 B over the 4-bit bus
 * at the full data rate (6 beats, paper §III-B).
 */
constexpr Tick hmOccupancy = nsToTicks(0.75);

/** Subtract with clamping at zero (timing offsets on unsigned ticks). */
constexpr Tick
subClamp(Tick a, Tick b)
{
    return a > b ? a - b : 0;
}

} // namespace

LegacyDramChannel::LegacyDramChannel(EventQueue &eq, std::string name,
                         ChannelConfig cfg, AddressMap map)
    : SimObject(eq, std::move(name)), _cfg(cfg), _map(map),
      _t(_cfg.timing), _banks(cfg.banks),
      _flush(cfg.flushEntries)
{
    fatal_if(_cfg.banks == 0, "channel needs at least one bank");
    if (_cfg.refreshEnabled) {
        _eq.schedule(_t.tREFI, [this] { startRefresh(); });
    }
}

void
LegacyDramChannel::enqueue(LegacyChanReq req)
{
    req.enqueued = curTick();
    req.coord = _map.decode(req.addr);
    const bool is_write =
        req.op == ChanOp::Write || req.op == ChanOp::ActWr;
    if (is_write) {
        panic_if(_writeQ.size() >= _cfg.writeQCap,
                 "%s: write queue overflow", name().c_str());
        _writeQ.push_back(std::move(req));
    } else {
        panic_if(_readQ.size() >= _cfg.readQCap,
                 "%s: read queue overflow", name().c_str());
        _readQ.push_back(std::move(req));
    }
    kick();
}

bool
LegacyDramChannel::removeRead(std::uint64_t id)
{
    for (auto it = _readQ.begin(); it != _readQ.end(); ++it) {
        if (it->id == id) {
            readQueueDelay.sample(ticksToNs(curTick() - it->enqueued));
            _readQ.erase(it);
            return true;
        }
    }
    return false;
}

Tick
LegacyDramChannel::dqEarliest(bool is_write) const
{
    Tick turn = 0;
    if (_dqEverUsed && _dqLastWrite != is_write)
        turn = is_write ? _t.tRTW : _t.tWTR;
    return _dqFreeAt + turn;
}

Tick
LegacyDramChannel::reserveDq(bool is_write, Tick start, Tick dur)
{
    const Tick earliest = dqEarliest(is_write);
    if (start < earliest)
        start = earliest;
    if (_dqEverUsed && _dqLastWrite != is_write)
        ++turnarounds;
    _dqFreeAt = start + dur;
    _dqLastWrite = is_write;
    _dqEverUsed = true;
    return start;
}

Tick
LegacyDramChannel::fawConstraint() const
{
    if (_actWindow.size() < 4)
        return 0;
    return _actWindow[_actWindow.size() - 4] + _t.tXAW;
}

void
LegacyDramChannel::recordAct(Tick t)
{
    _lastAct = t;
    _actWindow.push_back(t);
    if (_actWindow.size() > 4)
        _actWindow.pop_front();
}

bool
LegacyDramChannel::rowHit(const LegacyChanReq &req) const
{
    const BankState &b = _banks[req.coord.bank];
    return b.rowOpen && b.openRow == req.coord.row;
}

Tick
LegacyDramChannel::earliestIssue(const LegacyChanReq &req) const
{
    const BankState &b = _banks[req.coord.bank];
    Tick e = std::max(_caFreeAt, _refreshUntil);
    const bool open_page = _cfg.pagePolicy == PagePolicy::Open &&
                           (req.op == ChanOp::Read ||
                            req.op == ChanOp::Write);
    // Row hits need no ACT, so tRRD/tFAW don't constrain them.
    if (!(open_page && rowHit(req))) {
        if (!_actWindow.empty())
            e = std::max(e, _actWindow.back() + _t.tRRD);
        e = std::max(e, fawConstraint());
    }
    e = std::max(e, b.nextAct);

    if (open_page) {
        const bool is_write = req.op == ChanOp::Write;
        // Command-sequence start to first data beat.
        Tick to_data = is_write ? _t.tCWL : _t.tCL;
        if (!rowHit(req)) {
            to_data += _t.tRCD;
            if (b.rowOpen) {
                to_data += _t.tRP;          // PRE first
                e = std::max(e, b.nextPre); // respect tRAS/tWR
            }
        }
        e = std::max(e, subClamp(dqEarliest(is_write), to_data));
        return e;
    }

    switch (req.op) {
      case ChanOp::Read:
        e = std::max(e, subClamp(dqEarliest(false),
                                 _t.tRCD + _t.tCL));
        break;
      case ChanOp::Write:
        e = std::max(e, subClamp(dqEarliest(true),
                                 _t.tRCD_WR + _t.tCWL));
        break;
      case ChanOp::ActRd:
        e = std::max(e, b.tagNextAct);
        e = std::max(e, subClamp(dqEarliest(false),
                                 _t.tRCD + _t.tCL));
        if (!_cfg.hmAtColumn)
            e = std::max(e, subClamp(_hmFreeAt, _t.hmLatency()));
        break;
      case ChanOp::ActWr:
        e = std::max(e, b.tagNextAct);
        e = std::max(e, subClamp(dqEarliest(true), _t.tCWL));
        if (!_cfg.hmAtColumn)
            e = std::max(e, subClamp(_hmFreeAt, _t.hmLatency()));
        break;
    }
    return e;
}

void
LegacyDramChannel::issue(LegacyChanReq req)
{
    switch (req.op) {
      case ChanOp::Read:
        issueConventional(req, false);
        break;
      case ChanOp::Write:
        issueConventional(req, true);
        break;
      case ChanOp::ActRd:
        issueActRd(req);
        break;
      case ChanOp::ActWr:
        issueActWr(req);
        break;
    }
}

void
LegacyDramChannel::issueConventional(LegacyChanReq &req, bool is_write)
{
    const Tick now = curTick();
    const unsigned bytes =
        static_cast<unsigned>(lineBytes * _t.burstScale + 0.5);
    BankState &b = _banks[req.coord.bank];

    _caFreeAt = now + _t.clkPeriod;

    Tick data_start;
    if (_cfg.pagePolicy == PagePolicy::Open) {
        // Open-page: skip the ACT on a row hit; PRE+ACT on a
        // conflict; plain ACT on a closed bank.
        Tick col_at = now;
        if (rowHit(req)) {
            ++rowHits;
        } else {
            Tick act_at = now;
            if (b.rowOpen) {
                act_at = now + _t.tRP;  // precharge first
                ++rowConflicts;
            }
            recordAct(act_at);
            ++dataBankActs;
            b.rowOpen = true;
            b.openRow = req.coord.row;
            b.nextPre = act_at + _t.tRAS;
            col_at = act_at + (is_write ? _t.tRCD_WR : _t.tRCD);
        }
        b.nextAct = col_at + _t.tCCD_L;
        data_start = reserveDq(
            is_write, col_at + (is_write ? _t.tCWL : _t.tCL),
            _t.dataBurst());
        if (is_write) {
            b.nextPre = std::max(b.nextPre,
                                 data_start + _t.dataBurst() + _t.tWR);
        }
    } else {
        recordAct(now);
        ++dataBankActs;
        if (is_write) {
            b.nextAct = now + _t.writeBankBusy();
            data_start = now + _t.tRCD_WR + _t.tCWL;
        } else {
            b.nextAct = now + _t.readBankBusy();
            data_start = now + _t.tRCD + _t.tCL;
        }
        data_start = reserveDq(is_write, data_start, _t.dataBurst());
    }

    if (is_write) {
        bytesFromCtrl += bytes;
        ++issuedWrites;
    } else {
        bytesToCtrl += bytes;
        readQueueDelay.sample(ticksToNs(now - req.enqueued));
        ++issuedReads;
    }
    dqBusyTicks += static_cast<double>(_t.dataBurst());

    const Tick done = data_start + _t.dataBurst();
    if (req.onDataDone) {
        _eq.schedule(done,
                     [cb = req.onDataDone, done] { cb(done); });
    }
}

void
LegacyDramChannel::issueActRd(LegacyChanReq &req)
{
    panic_if(!peekTags, "%s: ActRd without a tag backend",
             name().c_str());
    const Tick now = curTick();
    const unsigned bytes =
        static_cast<unsigned>(lineBytes * _t.burstScale + 0.5);
    BankState &b = _banks[req.coord.bank];

    _caFreeAt = now + _t.clkPeriod;
    recordAct(now);
    b.nextAct = now + _t.readBankBusy();
    b.tagNextAct = now + _t.tRC_TAG;
    ++dataBankActs;
    ++tagBankActs;

    TagResult tr = peekTags(req.addr);
    // Data streams to the controller on a hit or a miss to a dirty
    // line (the victim must be written back); a miss to a clean or
    // invalid line suppresses the column operation entirely.
    const bool transfer =
        tr.hit || (!tr.hit && tr.valid && tr.dirty) ||
        !_cfg.conditionalColumn;

    const Tick data_start = reserveDq(false, now + _t.tRCD + _t.tCL,
                                      _t.dataBurst());
    const Tick data_done = data_start + _t.dataBurst();

    Tick hm_tick;
    if (_cfg.hmAtColumn) {
        // NDC: the status is determined during the column operation,
        // so the controller learns it only when the data slot ends.
        hm_tick = data_done;
    } else {
        hm_tick = now + _t.hmLatency();
        _hmFreeAt = hm_tick + hmOccupancy;
    }

    if (transfer) {
        bytesToCtrl += bytes;
        dqBusyTicks += static_cast<double>(_t.dataBurst());
        if (req.onDataDone) {
            _eq.schedule(data_done,
                         [cb = req.onDataDone, data_done] {
                             cb(data_done);
                         });
        }
    } else {
        // Read-miss-clean: the reserved DQ slot goes unused; TDRAM
        // donates it to flush-buffer unloading (§III-D2 (ii)).
        if (_cfg.hasFlushBuffer && _cfg.opportunisticDrain &&
            !_flush.empty()) {
            const Addr victim = _flush.pop();
            _flush.beginDrain();
            ++_flush.drainedOnMissClean;
            bytesToCtrl += lineBytes;
            dqBusyTicks += static_cast<double>(_t.dataBurst());
            _eq.schedule(data_done, [this, victim, data_done] {
                _flush.completeDrain();
                if (onFlushArrive)
                    onFlushArrive(victim, data_done);
            });
        } else {
            dqReservedIdleTicks += static_cast<double>(_t.dataBurst());
        }
    }

    if (req.onTagResult) {
        _eq.schedule(hm_tick, [cb = req.onTagResult, tr, hm_tick] {
            cb(hm_tick, tr);
        });
    }
    readQueueDelay.sample(ticksToNs(now - req.enqueued));
    ++issuedActRd;
}

void
LegacyDramChannel::issueActWr(LegacyChanReq &req)
{
    panic_if(!peekTags, "%s: ActWr without a tag backend",
             name().c_str());
    const Tick now = curTick();
    const unsigned bytes =
        static_cast<unsigned>(lineBytes * _t.burstScale + 0.5);
    BankState &b = _banks[req.coord.bank];

    _caFreeAt = now + _t.clkPeriod;
    recordAct(now);
    ++dataBankActs;
    ++tagBankActs;
    b.tagNextAct = now + _t.tRC_TAG;

    TagResult tr = peekTags(req.addr);
    const bool miss_dirty = !tr.hit && tr.valid && tr.dirty;

    // Write-miss-dirty performs an internal read of the victim into
    // the flush buffer before the internal write (Figure 6); the
    // extra core occupancy is internal and never reaches the DQ bus.
    Tick bank_busy = _t.writeBankBusy();
    if (miss_dirty && _cfg.hasFlushBuffer)
        bank_busy += _t.tRL_core + _t.tRTW_int;
    b.nextAct = now + bank_busy;

    const Tick data_start =
        reserveDq(true, now + _t.tCWL, _t.dataBurst());
    const Tick data_done = data_start + _t.dataBurst();
    bytesFromCtrl += bytes;
    dqBusyTicks += static_cast<double>(_t.dataBurst());

    Tick hm_tick;
    if (_cfg.hmAtColumn) {
        hm_tick = data_done;
    } else {
        hm_tick = now + _t.hmLatency();
        _hmFreeAt = hm_tick + hmOccupancy;
    }

    if (miss_dirty && _cfg.hasFlushBuffer) {
        // The victim lands in the flush buffer once the internal read
        // completes. If the buffer is full this is a TDRAM stall: the
        // controller must force a drain (§III-D2 (iii)).
        const Tick push_at = now + _t.tRCD + _t.tRL_core;
        const Addr victim = tr.victimAddr;
        _eq.schedule(push_at, [this, victim] { flushPushRetry(victim); });
    }

    if (req.onTagResult) {
        _eq.schedule(hm_tick, [cb = req.onTagResult, tr, hm_tick] {
            cb(hm_tick, tr);
        });
    }
    if (req.onDataDone) {
        _eq.schedule(data_done, [cb = req.onDataDone, data_done] {
            cb(data_done);
        });
    }
    ++issuedActWr;
}

void
LegacyDramChannel::flushPushRetry(Addr victim)
{
    if (_flush.push(victim)) {
        kick();
        return;
    }
    // Buffer (including in-flight drains) is full: force an explicit
    // drain and retry once capacity frees up.
    forceDrain();
    const Tick retry =
        std::max(curTick() + _t.dataBurst(), _flushDrainUntil);
    _eq.schedule(retry, [this, victim] { flushPushRetry(victim); });
}

void
LegacyDramChannel::forceDrain()
{
    if (_flush.empty())
        return;
    // Entries drain back-to-back as a group to amortize the DQ
    // read-direction turnaround (paper §III-D2 (iii); NDC's RES).
    Tick start = std::max(curTick(), dqEarliest(false));
    if (_dqEverUsed && _dqLastWrite)
        ++turnarounds;
    while (!_flush.empty()) {
        const Addr victim = _flush.pop();
        _flush.beginDrain();
        ++_flush.drainedForced;
        bytesToCtrl += lineBytes;
        dqBusyTicks += static_cast<double>(_t.tBURST);
        const Tick done = start + _t.tBURST;
        _eq.schedule(done, [this, victim, done] {
            _flush.completeDrain();
            if (onFlushArrive)
                onFlushArrive(victim, done);
        });
        start = done;
    }
    _dqFreeAt = start;
    _dqLastWrite = false;
    _dqEverUsed = true;
    _flushDrainUntil = start;
}

bool
LegacyDramChannel::tryProbe()
{
    if (!_cfg.enableProbe || _readQ.empty())
        return false;
    const Tick now = curTick();
    if (_caFreeAt > now || _refreshUntil > now)
        return false;
    const Tick hm_lat = _t.hmLatency();
    if (subClamp(_hmFreeAt, hm_lat) > now)
        return false;

    // Among probe-eligible requests pick the *youngest* (paper
    // §III-E2) to minimize average queueing delay.
    for (auto it = _readQ.rbegin(); it != _readQ.rend(); ++it) {
        if (it->probed || !it->onTagResult)
            continue;
        BankState &b = _banks[it->coord.bank];
        if (b.tagNextAct > now) {
            ++probeBankConflicts;
            continue;
        }
        it->probed = true;
        _caFreeAt = now + _t.clkPeriod;
        b.tagNextAct = now + _t.tRC_TAG;
        ++tagBankActs;
        ++probesIssued;
        TagResult tr = peekTags(it->addr);
        tr.viaProbe = true;
        const Tick hm_tick = now + hm_lat;
        _hmFreeAt = hm_tick + hmOccupancy;
        _eq.schedule(hm_tick, [cb = it->onTagResult, tr, hm_tick] {
            cb(hm_tick, tr);
        });
        return true;
    }
    return false;
}

Tick
LegacyDramChannel::earliestProbe() const
{
    if (!_cfg.enableProbe)
        return maxTick;
    Tick best = maxTick;
    for (const auto &req : _readQ) {
        if (req.probed || !req.onTagResult)
            continue;
        Tick e = std::max(_caFreeAt, _refreshUntil);
        e = std::max(e, _banks[req.coord.bank].tagNextAct);
        e = std::max(e, subClamp(_hmFreeAt, _t.hmLatency()));
        best = std::min(best, e);
    }
    return best;
}

void
LegacyDramChannel::startRefresh()
{
    const Tick now = curTick();
    ++refreshes;
    _refreshUntil = now + _t.tRFC;
    for (auto &b : _banks) {
        b.nextAct = std::max(b.nextAct, _refreshUntil);
        // Tag mats refresh in parallel with data mats (§III-C2).
        b.tagNextAct = std::max(b.tagNextAct, _refreshUntil);
        // Refresh closes every open row.
        b.rowOpen = false;
    }

    // TDRAM unloads the flush buffer while the DQ bus idles during
    // refresh (§III-D2 (i)).
    if (_cfg.hasFlushBuffer && _cfg.opportunisticDrain &&
        !_flush.empty()) {
        Tick start = std::max(now, _dqFreeAt);
        while (!_flush.empty() &&
               start + _t.tBURST <= _refreshUntil) {
            const Addr victim = _flush.pop();
            _flush.beginDrain();
            ++_flush.drainedOnRefresh;
            bytesToCtrl += lineBytes;
            dqBusyTicks += static_cast<double>(_t.tBURST);
            const Tick done = start + _t.tBURST;
            _eq.schedule(done, [this, victim, done] {
                _flush.completeDrain();
                if (onFlushArrive)
                    onFlushArrive(victim, done);
            });
            start = done;
        }
        _dqFreeAt = std::max(_dqFreeAt, start);
        _dqLastWrite = false;
        _dqEverUsed = true;
    }

    _eq.schedule(now + _t.tREFI, [this] { startRefresh(); });
    scheduleKick(_refreshUntil);
}

void
LegacyDramChannel::scheduleKick(Tick when)
{
    const Tick now = curTick();
    if (when <= now)
        when = now;
    if (_nextKick != 0 && _nextKick <= when && _nextKick > now)
        return;
    _nextKick = when;
    _eq.schedule(when, [this, when] {
        if (_nextKick == when)
            _nextKick = 0;
        kick();
    });
}

void
LegacyDramChannel::kick()
{
    const Tick now = curTick();

    // Write-drain hysteresis.
    auto update_mode = [this] {
        if (_drainingWrites) {
            if (_writeQ.size() <= _cfg.writeLow)
                _drainingWrites = false;
        } else if (_writeQ.size() >= _cfg.writeHigh) {
            _drainingWrites = true;
        }
    };
    update_mode();

    // Issue the oldest ready request from the preferred queue; when
    // no read can issue right now, an issuable write may go instead
    // (and vice versa in drain mode: writes strictly first).
    auto issue_at = [&](std::deque<LegacyChanReq> &q,
                        std::deque<LegacyChanReq>::iterator it) {
        LegacyChanReq r = std::move(*it);
        q.erase(it);
        issue(std::move(r));
        update_mode();
    };
    auto try_issue_from = [&](std::deque<LegacyChanReq> &q) {
        // FR-FCFS: under the open-page policy, the oldest issuable
        // *row hit* goes first; otherwise (and for close-page)
        // oldest issuable wins.
        if (_cfg.pagePolicy == PagePolicy::Open) {
            for (auto it = q.begin(); it != q.end(); ++it) {
                if (rowHit(*it) && earliestIssue(*it) <= now) {
                    issue_at(q, it);
                    return true;
                }
            }
        }
        for (auto it = q.begin(); it != q.end(); ++it) {
            if (earliestIssue(*it) <= now) {
                issue_at(q, it);
                return true;
            }
        }
        return false;
    };

    bool progress = true;
    while (progress) {
        progress = false;
        if (_drainingWrites) {
            progress = try_issue_from(_writeQ);
        } else {
            progress = try_issue_from(_readQ) ||
                       try_issue_from(_writeQ);
        }
    }

    // Early tag probing uses otherwise-idle CA / tag-bank / HM slots.
    while (tryProbe()) {
    }

    // Compute the next wake-up from the queues the policy will
    // actually serve at that time.
    Tick wake = maxTick;
    for (const auto &r : _writeQ)
        wake = std::min(wake, earliestIssue(r));
    if (!_drainingWrites) {
        for (const auto &r : _readQ)
            wake = std::min(wake, earliestIssue(r));
        wake = std::min(wake, earliestProbe());
    }
    if (wake != maxTick)
        scheduleKick(std::max(wake, now + 1));
}

void
LegacyDramChannel::regStats(StatGroup &g) const
{
    g.addHistogram("read_queue_delay_ns", &readQueueDelay,
                   "read-buffer queueing delay (Fig 2/10)");
    g.addScalar("issued_reads", &issuedReads);
    g.addScalar("issued_writes", &issuedWrites);
    g.addScalar("issued_actrd", &issuedActRd);
    g.addScalar("issued_actwr", &issuedActWr);
    g.addScalar("probes_issued", &probesIssued);
    g.addScalar("probe_bank_conflicts", &probeBankConflicts);
    g.addScalar("refreshes", &refreshes);
    g.addScalar("bytes_to_ctrl", &bytesToCtrl);
    g.addScalar("bytes_from_ctrl", &bytesFromCtrl);
    g.addScalar("dq_busy_ticks", &dqBusyTicks);
    g.addScalar("dq_reserved_idle_ticks", &dqReservedIdleTicks);
    g.addScalar("turnarounds", &turnarounds);
    g.addScalar("data_bank_acts", &dataBankActs);
    g.addScalar("tag_bank_acts", &tagBankActs);
    g.addScalar("row_hits", &rowHits);
    g.addScalar("row_conflicts", &rowConflicts);
    g.addHistogram("flush_occupancy", &_flush.occupancy,
                   "flush-buffer occupancy at push (§V-E)");
    g.addScalar("flush_stalls", &_flush.stalls);
    g.addScalar("flush_max_occupancy", &_flush.maxOccupancy);
    g.addScalar("flush_drained_miss_clean", &_flush.drainedOnMissClean);
    g.addScalar("flush_drained_refresh", &_flush.drainedOnRefresh);
    g.addScalar("flush_drained_forced", &_flush.drainedForced);
    g.addScalar("flush_superseded", &_flush.superseded);
}

} // namespace tsim
