/**
 * @file
 * Event-tracing subsystem tests (DESIGN.md §10): record/flush/load
 * round-trips, ring-buffer wraparound, versioned-header rejection of
 * corrupt files, first-divergence diffing, and end-to-end trace
 * determinism of System runs and serial-vs-parallel sweeps.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/sweep_runner.hh"
#include "system/system.hh"
#include "trace/trace.hh"
#include "trace/trace_analysis.hh"

namespace tsim
{
namespace
{

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

std::vector<char>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

/** Flip one byte inside the record payload of a .tdt file. */
void
perturbRecordByte(const std::string &path, std::uint64_t record,
                  unsigned byte_in_record)
{
    std::fstream f(path, std::ios::in | std::ios::out |
                             std::ios::binary);
    ASSERT_TRUE(f.good());
    const std::streamoff off =
        static_cast<std::streamoff>(sizeof(TraceFileHeader)) +
        static_cast<std::streamoff>(record * sizeof(TraceRecord) +
                                    byte_in_record);
    f.seekg(off);
    char c = 0;
    f.read(&c, 1);
    c ^= 0x5a;
    f.seekp(off);
    f.write(&c, 1);
}

TEST(TraceBuffer, RoundTripsThroughFile)
{
    const std::string path = tmpPath("trace_roundtrip.tdt");
    {
        Tracer tracer(path, 2, 8);
        tracer.buffer(0).record(TraceKind::ActRd, 100, 0x40, 3, 25, 1);
        tracer.buffer(1).record(TraceKind::HmResult, 200, 0x80, 7, 15,
                                packTagBits(true, true, false, false));
        tracer.buffer(0).record(TraceKind::FlushDrain, 300, 0xc0, 1, 4,
                                static_cast<std::uint32_t>(
                                    DrainCause::Forced));
        tracer.flushAll();
    }

    TraceLoadResult res = loadTrace(path);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.trace.header.channels, 2u);
    EXPECT_EQ(res.trace.header.recordCount, 3u);
    ASSERT_EQ(res.trace.records.size(), 3u);

    // Loader returns global emission order regardless of per-channel
    // spill order.
    const TraceRecord &r0 = res.trace.records[0];
    EXPECT_EQ(r0.seq, 0u);
    EXPECT_EQ(r0.tick, 100u);
    EXPECT_EQ(r0.kind, static_cast<std::uint8_t>(TraceKind::ActRd));
    EXPECT_EQ(r0.channel, 0u);
    EXPECT_EQ(r0.bank, 3u);
    EXPECT_EQ(r0.addr, 0x40u);
    EXPECT_EQ(r0.aux, 25u);
    EXPECT_EQ(r0.extra, 1u);

    const TraceRecord &r1 = res.trace.records[1];
    EXPECT_EQ(r1.seq, 1u);
    EXPECT_EQ(r1.channel, 1u);
    EXPECT_EQ(r1.kind, static_cast<std::uint8_t>(TraceKind::HmResult));

    EXPECT_EQ(res.trace.records[2].extra,
              static_cast<std::uint32_t>(DrainCause::Forced));
}

TEST(TraceBuffer, SpillsFullRingsLosslessly)
{
    // Ring capacity 4, 100 records: the ring must spill on every
    // fill and the file must still hold all records in seq order.
    const std::string path = tmpPath("trace_spill.tdt");
    {
        Tracer tracer(path, 1, 4);
        for (std::uint64_t i = 0; i < 100; ++i) {
            tracer.buffer(0).record(TraceKind::Read, 10 * i, i,
                                    static_cast<std::uint16_t>(i % 16),
                                    0, 0);
        }
        tracer.flushAll();
    }
    TraceLoadResult res = loadTrace(path);
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_EQ(res.trace.records.size(), 100u);
    for (std::uint64_t i = 0; i < 100; ++i) {
        EXPECT_EQ(res.trace.records[i].seq, i);
        EXPECT_EQ(res.trace.records[i].addr, i);
    }
}

TEST(TraceBuffer, MemoryOnlyRingWrapsAndCountsDrops)
{
    Tracer tracer("", 1, 4);  // no sink: ring wraps
    TraceBuffer &buf = tracer.buffer(0);
    for (std::uint64_t i = 0; i < 10; ++i)
        buf.record(TraceKind::Write, i, 0x1000 + i, 0, 0, 0);

    EXPECT_EQ(buf.size(), 4u);
    EXPECT_EQ(buf.dropped(), 6u);

    // The survivors are the newest four, oldest first.
    const std::vector<TraceRecord> snap = buf.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    for (std::uint64_t i = 0; i < 4; ++i) {
        EXPECT_EQ(snap[i].seq, 6 + i);
        EXPECT_EQ(snap[i].addr, 0x1000 + 6 + i);
    }
}

TEST(TraceBuffer, DroppedTotalSumsAcrossChannels)
{
    Tracer tracer("", 2, 2);  // no sink: rings wrap
    for (std::uint64_t i = 0; i < 5; ++i)
        tracer.buffer(0).record(TraceKind::Read, i, i, 0, 0, 0);
    for (std::uint64_t i = 0; i < 4; ++i)
        tracer.buffer(1).record(TraceKind::Write, i, i, 0, 0, 0);

    EXPECT_EQ(tracer.buffer(0).dropped(), 3u);
    EXPECT_EQ(tracer.buffer(1).dropped(), 2u);
    EXPECT_EQ(tracer.droppedTotal(), 5u);
}

TEST(TraceSummary, ReportsPerChannelCountsDropsAndSeqGaps)
{
    // A clean sinked trace: full rings spill, so nothing drops and
    // the header's drop count stays zero.
    const std::string path = tmpPath("trace_drops.tdt");
    {
        Tracer tracer(path, 2, 4);
        for (std::uint64_t i = 0; i < 4; ++i)
            tracer.buffer(0).record(TraceKind::Read, 10 * i, i, 0, 0,
                                    0);
        for (std::uint64_t i = 0; i < 2; ++i)
            tracer.buffer(1).record(TraceKind::Write, 100 + i, i, 0, 0,
                                    0);
        tracer.flushAll();
        EXPECT_EQ(tracer.droppedTotal(), 0u);
    }
    {
        TraceLoadResult res = loadTrace(path);
        ASSERT_TRUE(res.ok) << res.error;
        EXPECT_EQ(res.trace.header.droppedCount, 0u);
        const TraceSummary s = summarizeTrace(res.trace);
        ASSERT_EQ(s.perChannel.size(), 2u);
        EXPECT_EQ(s.perChannel.at(0), 4u);
        EXPECT_EQ(s.perChannel.at(1), 2u);
        EXPECT_EQ(s.dropped, 0u);
        EXPECT_EQ(s.seqMissing, 0u);
        std::ostringstream os;
        printTraceSummary(os, s, res.trace, false);
        EXPECT_EQ(os.str().find("WARNING"), std::string::npos);
        EXPECT_NE(os.str().find("ch0 4"), std::string::npos);
        EXPECT_NE(os.str().find("ch1 2"), std::string::npos);
    }

    // Forge an incomplete trace from the clean one: claim 4 ring
    // drops in the header and punch a hole in the emission seqs by
    // bumping the last record's seq from 5 to 9.
    std::vector<char> bytes = readAll(path);
    const std::size_t drop_off =
        offsetof(TraceFileHeader, droppedCount);
    bytes[drop_off] = 4;
    const std::size_t last_seq_off = sizeof(TraceFileHeader) +
                                     5 * sizeof(TraceRecord) +
                                     offsetof(TraceRecord, seq);
    bytes[last_seq_off] = 9;
    {
        std::ofstream out(path, std::ios::binary);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    TraceLoadResult res = loadTrace(path);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.trace.header.droppedCount, 4u);
    const TraceSummary s = summarizeTrace(res.trace);
    EXPECT_EQ(s.records, 6u);
    EXPECT_EQ(s.dropped, 4u);
    EXPECT_EQ(s.seqMissing, 4u);  // seqs 5..8 absent, max seq 9

    std::ostringstream os;
    printTraceSummary(os, s, res.trace, false);
    EXPECT_NE(os.str().find("WARNING: incomplete trace"),
              std::string::npos);
    EXPECT_NE(os.str().find("4 ring-wrap drops"), std::string::npos);
    EXPECT_NE(os.str().find("4 emission seq(s) absent"),
              std::string::npos);
}

TEST(TraceLoader, RejectsCorruptFiles)
{
    // A valid baseline.
    const std::string good = tmpPath("trace_good.tdt");
    {
        Tracer tracer(good, 1, 8);
        for (int i = 0; i < 5; ++i)
            tracer.buffer(0).record(TraceKind::Read, i, i, 0, 0, 0);
        tracer.flushAll();
    }
    ASSERT_TRUE(loadTrace(good).ok);
    const std::vector<char> bytes = readAll(good);

    auto writeVariant = [&](const std::string &name,
                            std::vector<char> data) {
        const std::string p = tmpPath(name);
        std::ofstream out(p, std::ios::binary);
        out.write(data.data(),
                  static_cast<std::streamsize>(data.size()));
        return p;
    };

    // Missing file.
    EXPECT_FALSE(loadTrace(tmpPath("no_such.tdt")).ok);

    // Shorter than a header.
    std::vector<char> tiny(bytes.begin(), bytes.begin() + 10);
    EXPECT_FALSE(loadTrace(writeVariant("trace_tiny.tdt", tiny)).ok);

    // Bad magic.
    std::vector<char> magic = bytes;
    magic[0] ^= 0xff;
    TraceLoadResult res =
        loadTrace(writeVariant("trace_magic.tdt", magic));
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("magic"), std::string::npos);

    // Unsupported version.
    std::vector<char> ver = bytes;
    ver[4] = 99;
    res = loadTrace(writeVariant("trace_ver.tdt", ver));
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("version"), std::string::npos);

    // Record-size mismatch (foreign layout).
    std::vector<char> rec = bytes;
    rec[8] = 16;
    EXPECT_FALSE(loadTrace(writeVariant("trace_rec.tdt", rec)).ok);

    // Truncated mid-record.
    std::vector<char> trunc(bytes.begin(), bytes.end() - 7);
    EXPECT_FALSE(loadTrace(writeVariant("trace_trunc.tdt", trunc)).ok);

    // Whole records missing vs the header's promised count.
    std::vector<char> short_body(
        bytes.begin(), bytes.end() - sizeof(TraceRecord));
    res = loadTrace(writeVariant("trace_short.tdt", short_body));
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("truncated"), std::string::npos);
}

TEST(TraceDiff, ReportsFirstDivergenceWithContext)
{
    const std::string a = tmpPath("trace_diff_a.tdt");
    const std::string b = tmpPath("trace_diff_b.tdt");
    for (const std::string &p : {a, b}) {
        Tracer tracer(p, 1, 64);
        for (std::uint64_t i = 0; i < 20; ++i) {
            tracer.buffer(0).record(TraceKind::ActRd, 1000 * i,
                                    0x40 * i,
                                    static_cast<std::uint16_t>(i % 4),
                                    30, 1);
        }
        tracer.flushAll();
    }

    TraceLoadResult ra = loadTrace(a);
    TraceLoadResult rb = loadTrace(b);
    ASSERT_TRUE(ra.ok && rb.ok);
    TraceDiff same = diffTraces(ra.trace, rb.trace);
    EXPECT_TRUE(same.identical);

    // Inject a single-event perturbation into record 7's tick field
    // and require the diff to pinpoint it with tick context.
    perturbRecordByte(b, 7, 0);
    rb = loadTrace(b);
    ASSERT_TRUE(rb.ok) << rb.error;
    TraceDiff diff = diffTraces(ra.trace, rb.trace);
    EXPECT_FALSE(diff.identical);
    EXPECT_EQ(diff.firstDivergence, 7u);
    EXPECT_NE(diff.message.find("record 7"), std::string::npos);
    EXPECT_NE(diff.message.find("tick="), std::string::npos);
    EXPECT_NE(diff.message.find("ActRd"), std::string::npos);
    // Both sides of the divergent record are shown.
    EXPECT_NE(diff.message.find("A seq="), std::string::npos);
    EXPECT_NE(diff.message.find("B seq="), std::string::npos);

    // Record-count divergence is also detected.
    TraceFile shorter = ra.trace;
    shorter.records.pop_back();
    TraceDiff count = diffTraces(ra.trace, shorter);
    EXPECT_FALSE(count.identical);
    EXPECT_NE(count.message.find("record counts differ"),
              std::string::npos);
}

TEST(TraceGate, HooksCompiledInThisBuild)
{
    // The library is always built with tracing on; the TDRAM_TRACE=0
    // configuration is covered by tests/check_trace_gate.sh, which
    // compiles channel.cc both ways and checks emitted symbols.
    EXPECT_TRUE(traceCompiledIn());
}

SystemConfig
tracedCfg(const std::string &path)
{
    SystemConfig cfg;
    cfg.design = Design::Tdram;
    cfg.dcacheCapacity = 4ULL << 20;
    cfg.cores.cores = 2;
    cfg.cores.opsPerCore = 1500;
    cfg.cores.llcBytes = 256 * 1024;
    cfg.warmupOpsPerCore = 10000;
    cfg.tracePath = path;
    return cfg;
}

TEST(TraceSystem, EndToEndTraceMatchesRun)
{
    const std::string path = tmpPath("trace_system.tdt");
    SimReport r = runOne(tracedCfg(path), findWorkload("is.C"));

    TraceLoadResult res = loadTrace(path);
    ASSERT_TRUE(res.ok) << res.error;
    const TraceSummary s = summarizeTrace(res.trace);
    ASSERT_GT(s.records, 0u);

    // Demand events mirror the report's demand counts exactly.
    const auto starts = s.perKind[static_cast<std::size_t>(
        TraceKind::DemandStart)];
    const auto dones = s.perKind[static_cast<std::size_t>(
        TraceKind::DemandDone)];
    EXPECT_EQ(starts, r.demandReads + r.demandWrites);
    EXPECT_EQ(dones, r.demandReads + r.demandWrites);

    // TDRAM issues lockstep commands and HM responses.
    EXPECT_GT(s.perKind[static_cast<std::size_t>(TraceKind::ActRd)],
              0u);
    EXPECT_GT(s.hmResponses, 0u);

    // seq is a total order with no gaps.
    for (std::uint64_t i = 0; i < res.trace.records.size(); ++i)
        ASSERT_EQ(res.trace.records[i].seq, i);
}

TEST(TraceSystem, RepeatRunsProduceByteIdenticalTraces)
{
    const std::string a = tmpPath("trace_repeat_a.tdt");
    const std::string b = tmpPath("trace_repeat_b.tdt");
    runOne(tracedCfg(a), findWorkload("is.C"));
    runOne(tracedCfg(b), findWorkload("is.C"));
    EXPECT_EQ(readAll(a), readAll(b));
}

TEST(TraceSweep, SerialAndParallelSweepsAreByteIdentical)
{
    auto makeJobs = [](const std::string &prefix) {
        std::vector<SweepJob> jobs;
        for (Design d : {Design::Tdram, Design::CascadeLake,
                         Design::Ndc, Design::Alloy}) {
            SweepJob job;
            job.cfg = tracedCfg("");
            job.cfg.design = d;
            job.workload = findWorkload("is.C");
            jobs.push_back(std::move(job));
        }
        applyTracePrefix(jobs, prefix);
        return jobs;
    };

    const std::string p1 = tmpPath("sweep_serial");
    const std::string p4 = tmpPath("sweep_par");
    std::vector<SweepJob> serial = makeJobs(p1);
    std::vector<SweepJob> parallel = makeJobs(p4);
    EXPECT_EQ(serial[0].cfg.tracePath, p1 + "_job000.tdt");

    SweepRunner(1).run(serial);
    SweepRunner(4).run(parallel);

    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(readAll(serial[i].cfg.tracePath),
                  readAll(parallel[i].cfg.tracePath))
            << "job " << i;
    }
}

} // namespace
} // namespace tsim
