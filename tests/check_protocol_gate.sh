#!/bin/sh
# Guard test for the TDRAM_CHECK compile-time gate (DESIGN.md §11).
#
# TSIM_CHECK_EVENT's wrapper is inline but routes every event into the
# out-of-line ProtocolChecker::check(). A TDRAM_CHECK=1 compile of the
# hottest hook site (dram/channel.cc) therefore references a
# ProtocolChecker symbol; a TDRAM_CHECK=0 compile must not reference
# any — proving the checker hooks compiled out entirely, not just
# branched around.
#
# Usage: check_protocol_gate.sh <repo-source-dir>
# Exit codes: 0 pass, 1 fail, 77 skip (toolchain unavailable).

set -u

SRC_DIR=${1:-$(cd "$(dirname "$0")/.." && pwd)}
CXX=${CXX:-c++}

command -v "$CXX" >/dev/null 2>&1 || { echo "skip: no $CXX"; exit 77; }
command -v nm >/dev/null 2>&1 || { echo "skip: no nm"; exit 77; }

TMP=$(mktemp -d) || exit 77
trap 'rm -rf "$TMP"' EXIT

FLAGS="-std=c++20 -O2 -I $SRC_DIR/src -c $SRC_DIR/src/dram/channel.cc"

if ! "$CXX" $FLAGS -DTDRAM_CHECK=1 -o "$TMP/on.o"; then
    echo "FAIL: TDRAM_CHECK=1 compile of channel.cc failed"
    exit 1
fi
if ! "$CXX" $FLAGS -DTDRAM_CHECK=0 -o "$TMP/off.o"; then
    echo "FAIL: TDRAM_CHECK=0 compile of channel.cc failed"
    exit 1
fi

if ! nm -C "$TMP/on.o" | grep -q 'ProtocolChecker::check'; then
    echo "FAIL: TDRAM_CHECK=1 object lacks a ProtocolChecker::check" \
         "reference - the guard no longer proves anything"
    exit 1
fi

if nm -C "$TMP/off.o" | grep -q 'ProtocolChecker'; then
    echo "FAIL: TDRAM_CHECK=0 object still references" \
         "ProtocolChecker - checker hooks were not compiled out"
    nm -C "$TMP/off.o" | grep 'ProtocolChecker'
    exit 1
fi

# The gated-off object must also be no larger than the checked one.
ON_SIZE=$(wc -c < "$TMP/on.o")
OFF_SIZE=$(wc -c < "$TMP/off.o")
if [ "$OFF_SIZE" -gt "$ON_SIZE" ]; then
    echo "FAIL: TDRAM_CHECK=0 object ($OFF_SIZE B) is larger than" \
         "TDRAM_CHECK=1 ($ON_SIZE B)"
    exit 1
fi

echo "PASS: checker hooks gate correctly" \
     "(on: $ON_SIZE B, off: $OFF_SIZE B)"
exit 0
