/**
 * @file
 * Implementation of the frozen pre-PR-7 front shard (see
 * legacy_frontend.hh). Copied verbatim from the production sources at
 * the snapshot point; do not "improve" it — its value is being the
 * unchanged seed behaviour.
 */

#include "legacy_frontend.hh"

#include <algorithm>
#include <cmath>

#include "dram/shard_relay.hh"

namespace tsim
{
namespace legacyfe
{

// ---------------------------------------------------------------------
// MainMemory (frozen copy of src/dram/main_memory.cc)
// ---------------------------------------------------------------------

MainMemory::MainMemory(EventQueue &eq, std::string name,
                       const MainMemoryConfig &cfg)
    : SimObject(eq, std::move(name)), _cfg(cfg),
      _map(cfg.capacityBytes, cfg.channels, cfg.banks, cfg.rowBytes),
      _front(cfg.channels)
{
    ChannelConfig ccfg;
    ccfg.timing = cfg.timing;
    ccfg.banks = cfg.banks;
    ccfg.rowBytes = cfg.rowBytes;
    ccfg.readQCap = cfg.readQCap;
    ccfg.writeQCap = cfg.writeQCap;
    ccfg.refreshEnabled = cfg.refreshEnabled;
    ccfg.writeHigh = cfg.writeQCap * 3 / 4;
    ccfg.writeLow = cfg.writeQCap / 4;
    panic_if(!cfg.channelQueues.empty() &&
                 (cfg.channelQueues.size() != cfg.channels ||
                  cfg.channelOutboxes.size() != cfg.channels),
             "sharded mode needs one queue and one outbox per channel");
    _outboxes = cfg.channelOutboxes;
    for (unsigned c = 0; c < cfg.channels; ++c) {
        EventQueue &ceq =
            cfg.channelQueues.empty() ? eq : *cfg.channelQueues[c];
        _chans.push_back(std::make_unique<DramChannel>(
            ceq, this->name() + ".ch" + std::to_string(c), ccfg,
            _map));
    }
}

void
MainMemory::read(Addr addr, std::function<void(Tick)> on_done)
{
    const unsigned chan = _map.decode(addr).channel;
    const Tick start = curTick();
    ++reads;
    ChanReq req;
    req.id = _nextId++;
    req.addr = addr;
    req.op = ChanOp::Read;
    req.isDemandRead = true;
    req.onDataDone = [this, start, chan,
                      cb = std::move(on_done)](Tick t) {
        readLatency.sample(ticksToNs(t - start));
        if (cb)
            cb(t);
        drainFront(chan);
    };
    submit(chan, std::move(req), false);
}

void
MainMemory::write(Addr addr)
{
    const unsigned chan = _map.decode(addr).channel;
    ++writes;
    ChanReq req;
    req.id = _nextId++;
    req.addr = addr;
    req.op = ChanOp::Write;
    req.onDataDone = [this, chan](Tick) { drainFront(chan); };
    submit(chan, std::move(req), true);
}

void
MainMemory::submit(unsigned chan, ChanReq req, bool is_write)
{
    if (!_outboxes.empty())
        relayWrapReq(req, *_outboxes[chan]);
    auto &front = _front[chan];
    DramChannel &ch = *_chans[chan];
    const bool space =
        is_write ? ch.canAcceptWrite() : ch.canAcceptRead();
    if (front.empty() && space) {
        ch.enqueue(std::move(req));
    } else {
        front.push_back(Pending{std::move(req), is_write});
        frontQueueDepth.sample(static_cast<double>(front.size()));
    }
}

void
MainMemory::drainFront(unsigned chan)
{
    auto &front = _front[chan];
    DramChannel &ch = *_chans[chan];
    while (!front.empty()) {
        const bool is_write = front.front().isWrite;
        const bool space =
            is_write ? ch.canAcceptWrite() : ch.canAcceptRead();
        if (!space)
            break;
        ChanReq req = std::move(front.front().req);
        front.pop_front();
        ch.enqueue(std::move(req));
    }
}

std::uint64_t
MainMemory::bytesMoved() const
{
    std::uint64_t total = 0;
    for (const auto &ch : _chans) {
        total += static_cast<std::uint64_t>(ch->bytesToCtrl.value()) +
                 static_cast<std::uint64_t>(ch->bytesFromCtrl.value());
    }
    return total;
}

void
MainMemory::regStats(StatGroup &g) const
{
    g.addScalar("reads", &reads, "main-memory read requests");
    g.addScalar("writes", &writes, "main-memory write requests");
    g.addHistogram("read_latency_ns", &readLatency);
    g.addHistogram("front_queue_depth", &frontQueueDepth);
}

// ---------------------------------------------------------------------
// DramCacheCtrl (frozen copy of src/dcache/dram_cache.cc)
// ---------------------------------------------------------------------

DramCacheCtrl::DramCacheCtrl(EventQueue &eq, std::string name,
                             const DramCacheConfig &cfg, MainMemory &mm,
                             ChannelConfig chan_cfg)
    : SimObject(eq, std::move(name)), _cfg(cfg),
      _tags(cfg.capacityBytes, cfg.ways),
      _map(cfg.capacityBytes, cfg.channels, cfg.banks, cfg.rowBytes),
      _mm(mm)
{
    chan_cfg.timing = cfg.timing;
    chan_cfg.banks = cfg.banks;
    chan_cfg.rowBytes = cfg.rowBytes;
    chan_cfg.readQCap = cfg.readQCap;
    chan_cfg.writeQCap = cfg.writeQCap;
    chan_cfg.writeHigh = cfg.writeQCap * 3 / 4;
    chan_cfg.writeLow = cfg.writeQCap / 4;
    chan_cfg.flushEntries = cfg.flushEntries;
    chan_cfg.refreshEnabled = cfg.refreshEnabled;
    chan_cfg.pagePolicy = cfg.pagePolicy;
    _burstBytes = static_cast<unsigned>(
        lineBytes * cfg.timing.burstScale + 0.5);

    panic_if(!cfg.channelQueues.empty() &&
                 (cfg.channelQueues.size() != cfg.channels ||
                  cfg.channelOutboxes.size() != cfg.channels),
             "sharded mode needs one queue and one outbox per channel");
    _outboxes = cfg.channelOutboxes;

    for (unsigned c = 0; c < cfg.channels; ++c) {
        EventQueue &ceq =
            cfg.channelQueues.empty() ? eq : *cfg.channelQueues[c];
        auto ch = std::make_unique<DramChannel>(
            ceq, this->name() + ".ch" + std::to_string(c), chan_cfg,
            _map);
        if (chan_cfg.inDramTags) {
            ch->peekTags = [this](Addr a) { return _tags.peek(a); };
            ch->onFlushArrive = [this](Addr victim, Tick) {
                accountCache(0, lineBytes, 0);
                mmWrite(victim);
            };
            if (!_outboxes.empty()) {
                ch->onFlushArrive = relayWrapFlush(
                    std::move(ch->onFlushArrive), *_outboxes[c]);
            }
        }
        _chans.push_back(std::move(ch));
    }
}

bool
DramCacheCtrl::canAccept(const MemPacket &pkt) const
{
    if (!usesMshr())
        return true;
    if (_waiting >= _cfg.conflictBufEntries)
        return false;
    return initialOpAdmissible(pkt);
}

bool
DramCacheCtrl::initialOpAdmissible(const MemPacket &pkt) const
{
    const unsigned c = _map.decode(pkt.addr).channel;
    if (pkt.cmd == MemCmd::Read)
        return _chans[c]->canAcceptRead();
    return _chans[c]->canAcceptWrite();
}

void
DramCacheCtrl::access(MemPacket pkt, RespCallback cb)
{
    pkt.addr = lineAlign(pkt.addr);
    pkt.created = curTick();
    if (pkt.cmd == MemCmd::Read)
        ++demandReads;
    else
        ++demandWrites;
    TSIM_TRACE_EVENT(traceBuf, TraceKind::DemandStart, pkt.created,
                     pkt.addr, traceBankNone, 0,
                     pkt.cmd == MemCmd::Write ? 1u : 0u);
    TSIM_CHECK_EVENT(checker, checkChannel, TraceKind::DemandStart,
                     pkt.created, pkt.addr, traceBankNone, 0,
                     pkt.cmd == MemCmd::Write ? 1u : 0u);

    auto txn = std::make_shared<Txn>();
    txn->pkt = pkt;
    txn->cb = std::move(cb);
    ++_inFlight;

    if (!usesMshr()) {
        txn->pkt.tagIssued = curTick();
        startAccess(txn);
        return;
    }

    const std::uint64_t set = _tags.setIndex(pkt.addr);
    auto &q = _setQueues[set];
    q.push_back(txn);
    if (q.size() == 1) {
        beginTxn(txn);
    } else {
        ++_waiting;
        _conflictOcc.sample(static_cast<double>(_waiting));
    }
}

void
DramCacheCtrl::warmAccess(Addr addr, bool is_write)
{
    addr = lineAlign(addr);
    const TagResult tr = _tags.peek(addr);
    if (is_write) {
        if (tr.hit)
            _tags.markDirty(addr);
        else
            _tags.install(addr, true);
    } else {
        if (tr.hit)
            _tags.touch(addr);
        else
            _tags.install(addr, false);
    }
}

void
DramCacheCtrl::beginTxn(const TxnPtr &txn)
{
    if (tryFastPath(txn))
        return;
    txn->pkt.tagIssued = curTick();
    startAccess(txn);
}

bool
DramCacheCtrl::tryFastPath(const TxnPtr &txn)
{
    const Addr addr = txn->pkt.addr;
    const bool is_read = txn->pkt.cmd == MemCmd::Read;

    if (is_read && isPendingWrite(addr)) {
        ++fwdFromWriteBuf;
        txn->tagResolved = true;
        txn->pkt.tagDone = curTick();
        const AccessOutcome o = AccessOutcome::ReadHitClean;
        txn->pkt.outcome = o;
        ++outcomes[static_cast<unsigned>(o)];
        _tags.touch(addr);
        const Tick done = curTick() + _cfg.ctrlLatency;
        _eq.schedule(done, [this, txn, done] { finish(txn, done); });
        return true;
    }

    if (is_read && channelFor(addr).flushContains(addr)) {
        ++servedFromFlush;
        txn->tagResolved = true;
        txn->pkt.tagDone = curTick();
        const AccessOutcome o = AccessOutcome::ReadMissClean;
        txn->pkt.outcome = o;
        ++outcomes[static_cast<unsigned>(o)];
        const Tick done = curTick() + _cfg.ctrlLatency;
        _eq.schedule(done, [this, txn, done] { finish(txn, done); });
        return true;
    }

    if (!is_read)
        channelFor(addr).flushRemove(addr);
    return false;
}

void
DramCacheCtrl::resolveTags(const TxnPtr &txn, Tick when,
                           bool sample_latency)
{
    if (txn->tagResolved)
        return;
    txn->tagResolved = true;

    const Addr addr = txn->pkt.addr;
    const bool is_read = txn->pkt.cmd == MemCmd::Read;
    const TagResult tr = _tags.peek(addr);
    txn->tr = tr;

    AccessOutcome o;
    if (tr.hit) {
        o = is_read
            ? (tr.dirty ? AccessOutcome::ReadHitDirty
                        : AccessOutcome::ReadHitClean)
            : (tr.dirty ? AccessOutcome::WriteHitDirty
                        : AccessOutcome::WriteHitClean);
    } else if (!tr.valid) {
        o = is_read ? AccessOutcome::ReadMissInvalid
                    : AccessOutcome::WriteMissInvalid;
    } else {
        o = is_read
            ? (tr.dirty ? AccessOutcome::ReadMissDirty
                        : AccessOutcome::ReadMissClean)
            : (tr.dirty ? AccessOutcome::WriteMissDirty
                        : AccessOutcome::WriteMissClean);
    }
    txn->pkt.outcome = o;
    ++outcomes[static_cast<unsigned>(o)];

    if (is_read) {
        if (tr.hit) {
            _tags.touch(addr);
            if (!_prefetched.empty() && _prefetched.erase(addr))
                ++prefetchUseful;
        } else if (_cfg.prefetchDegree > 0) {
            maybePrefetch(addr);
        }
    } else {
        if (tr.hit)
            _tags.markDirty(addr);
        else
            _tags.install(addr, true);
    }

    txn->pkt.tagDone = when;
    if (sample_latency && is_read)
        tagCheckLatency.sample(ticksToNs(when - txn->pkt.tagIssued));
}

void
DramCacheCtrl::respond(const TxnPtr &txn, Tick when)
{
    if (txn->finished)
        return;
    txn->finished = true;
    panic_if(_inFlight == 0, "demand response without an open demand");
    --_inFlight;
    txn->pkt.completed = when;
    TSIM_TRACE_EVENT(traceBuf, TraceKind::DemandDone, when,
                     txn->pkt.addr, traceBankNone,
                     when - txn->pkt.created,
                     static_cast<std::uint32_t>(txn->pkt.outcome));
    TSIM_CHECK_EVENT(checker, checkChannel, TraceKind::DemandDone, when,
                     txn->pkt.addr, traceBankNone,
                     when - txn->pkt.created,
                     static_cast<std::uint32_t>(txn->pkt.outcome));
    if (txn->pkt.cmd == MemCmd::Read)
        readLatency.sample(ticksToNs(when - txn->pkt.created));
    if (txn->cb)
        txn->cb(txn->pkt);
}

void
DramCacheCtrl::release(const TxnPtr &txn)
{
    if (!usesMshr())
        return;
    const std::uint64_t set = _tags.setIndex(txn->pkt.addr);
    auto it = _setQueues.find(set);
    panic_if(it == _setQueues.end() || it->second.empty() ||
                 it->second.front() != txn,
             "MSHR bookkeeping out of sync");
    it->second.pop_front();
    if (it->second.empty()) {
        _setQueues.erase(it);
    } else {
        --_waiting;
        beginTxn(it->second.front());
    }
}

void
DramCacheCtrl::finish(const TxnPtr &txn, Tick when)
{
    panic_if(txn->finished, "double finish of packet %llu",
             (unsigned long long)txn->pkt.id);
    respond(txn, when);
    release(txn);
}

void
DramCacheCtrl::enqueueChan(ChanReq req, bool is_write)
{
    DramChannel &ch = channelFor(req.addr);
    const bool space =
        is_write ? ch.canAcceptWrite() : ch.canAcceptRead();
    if (space) {
        if (!_outboxes.empty())
            relayWrapReq(req, *_outboxes[chanIdx(req.addr)]);
        ch.enqueue(std::move(req));
        return;
    }
    _eq.scheduleIn(_cfg.timing.tBURST,
                   [this, req = std::move(req), is_write]() mutable {
                       enqueueChan(std::move(req), is_write);
                   });
}

void
DramCacheCtrl::doFill(Addr addr)
{
    _tags.install(addr, false);
    addPendingWrite(addr);
    ChanReq req;
    req.id = nextChanId();
    req.addr = addr;
    req.op = fillOp();
    req.onDataDone = [this, addr](Tick) { removePendingWrite(addr); };
    accountCache(0, lineBytes, burstBytes() - lineBytes);
    enqueueChan(std::move(req), true);
}

void
DramCacheCtrl::maybePrefetch(Addr addr)
{
    for (unsigned i = 1; i <= _cfg.prefetchDegree; ++i) {
        const Addr p = addr + static_cast<Addr>(i) * lineBytes;
        if (_prefetched.count(p) || isPendingWrite(p))
            continue;
        const TagResult tr = _tags.peek(p);
        if (tr.hit || (tr.valid && tr.dirty))
            continue;
        if (_setQueues.count(_tags.setIndex(p)))
            continue;
        _prefetched.insert(p);
        ++prefetchIssued;
        mmRead(p, [this, p](Tick) {
            if (_setQueues.count(_tags.setIndex(p))) {
                _prefetched.erase(p);
                return;
            }
            const TagResult now = _tags.peek(p);
            if (now.hit || (now.valid && now.dirty)) {
                _prefetched.erase(p);
                return;
            }
            doFill(p);
        });
    }
}

void
DramCacheCtrl::removePendingWrite(Addr addr)
{
    auto it = _pendingWrites.find(addr);
    if (it != _pendingWrites.end() && --it->second == 0)
        _pendingWrites.erase(it);
}

void
DramCacheCtrl::mmRead(Addr addr, std::function<void(Tick)> cb)
{
    _mm.read(addr, std::move(cb));
}

void
DramCacheCtrl::mmWrite(Addr addr)
{
    _mm.write(addr);
}

double
DramCacheCtrl::missRatio() const
{
    std::uint64_t miss = 0, total = 0;
    for (unsigned i = 0;
         i < static_cast<unsigned>(AccessOutcome::NumOutcomes); ++i) {
        const auto o = static_cast<AccessOutcome>(i);
        const auto n = static_cast<std::uint64_t>(outcomes[i].value());
        total += n;
        if (!outcomeIsHit(o))
            miss += n;
    }
    return total ? static_cast<double>(miss) / total : 0.0;
}

double
DramCacheCtrl::meanReadQueueDelayNs() const
{
    double sum = 0;
    std::uint64_t count = 0;
    for (const auto &ch : _chans) {
        sum += ch->readQueueDelay.sum();
        count += ch->readQueueDelay.count();
    }
    return count ? sum / static_cast<double>(count) : 0.0;
}

void
DramCacheCtrl::regStats(StatGroup &g) const
{
    g.addScalar("demand_reads", &demandReads);
    g.addScalar("demand_writes", &demandWrites);
    for (unsigned i = 0;
         i < static_cast<unsigned>(AccessOutcome::NumOutcomes); ++i) {
        g.addScalar(std::string("outcome.") +
                        outcomeName(static_cast<AccessOutcome>(i)),
                    &outcomes[i]);
    }
    g.addHistogram("tag_check_latency_ns", &tagCheckLatency,
                   "Fig 9 metric");
    g.addHistogram("read_latency_ns", &readLatency);
    g.addScalar("fwd_from_write_buf", &fwdFromWriteBuf);
    g.addScalar("served_from_flush", &servedFromFlush);
    g.addScalar("predicted_miss", &predictedMiss);
    g.addScalar("predictor_wrong_fetch", &predictorWrongFetch);
    g.addScalar("prefetch_issued", &prefetchIssued);
    g.addScalar("prefetch_useful", &prefetchUseful);
    g.addScalar("bytes_demand_serving", &bytesDemandServing);
    g.addScalar("bytes_maintenance", &bytesMaintenance);
    g.addScalar("bytes_discarded", &bytesDiscarded);
    g.addHistogram("conflict_buf_occupancy", &_conflictOcc);
    for (const auto &ch : _chans)
        ch->regStats(g);
}

// ---------------------------------------------------------------------
// InDramTagCtrl / NdcCtrl / TdramCtrl (frozen src/dcache/in_dram.cc)
// ---------------------------------------------------------------------

namespace
{

ChannelConfig
ndcChanCfg()
{
    ChannelConfig c;
    c.inDramTags = true;
    c.hmAtColumn = true;
    c.conditionalColumn = true;
    c.enableProbe = false;
    c.hasFlushBuffer = true;
    c.opportunisticDrain = false;
    return c;
}

ChannelConfig
tdramChanCfg(bool probing, bool conditional_column)
{
    ChannelConfig c;
    c.inDramTags = true;
    c.hmAtColumn = false;
    c.conditionalColumn = conditional_column;
    c.enableProbe = probing;
    c.hasFlushBuffer = true;
    c.opportunisticDrain = true;
    return c;
}

ChannelConfig
conventionalChanCfg()
{
    return ChannelConfig{};
}

} // namespace

InDramTagCtrl::InDramTagCtrl(EventQueue &eq, std::string name,
                             const DramCacheConfig &cfg, MainMemory &mm,
                             ChannelConfig chan_cfg)
    : DramCacheCtrl(eq, std::move(name), cfg, mm, chan_cfg)
{
}

void
InDramTagCtrl::startAccess(const TxnPtr &txn)
{
    const Addr addr = txn->pkt.addr;
    if (txn->pkt.cmd == MemCmd::Read) {
        ChanReq req;
        req.id = nextChanId();
        txn->chanReqId = req.id;
        req.addr = addr;
        req.op = ChanOp::ActRd;
        req.isDemandRead = true;
        req.onTagResult = [this, txn](Tick t, const TagResult &tr) {
            readTagResult(txn, t, tr);
        };
        req.onDataDone = [this, txn](Tick t) { readDataDone(txn, t); };
        enqueueChan(std::move(req), false);
        return;
    }

    ChanReq req;
    req.id = nextChanId();
    txn->chanReqId = req.id;
    req.addr = addr;
    req.op = ChanOp::ActWr;
    req.onTagResult = [this, txn](Tick t, const TagResult &) {
        resolveTags(txn, t);
        finish(txn, t);
    };
    addPendingWrite(addr);
    req.onDataDone = [this, addr](Tick) { removePendingWrite(addr); };
    accountCache(lineBytes, 0, burstBytes() - lineBytes);
    enqueueChan(std::move(req), true);
}

void
InDramTagCtrl::readTagResult(const TxnPtr &txn, Tick t,
                             const TagResult &tr)
{
    if (txn->finished || txn->tagResolved)
        return;
    resolveTags(txn, t);

    switch (txn->pkt.outcome) {
      case AccessOutcome::ReadHitClean:
      case AccessOutcome::ReadHitDirty:
        break;
      case AccessOutcome::ReadMissInvalid:
      case AccessOutcome::ReadMissClean:
        txn->victimDone = true;
        if (tr.viaProbe) {
            channelFor(txn->pkt.addr).removeRead(txn->chanReqId);
        }
        if (!txn->mmStarted) {
            txn->mmStarted = true;
            mmRead(txn->pkt.addr,
                   [this, txn](Tick t2) { mmDataArrived(txn, t2); });
        }
        break;
      case AccessOutcome::ReadMissDirty:
        if (!txn->mmStarted) {
            txn->mmStarted = true;
            mmRead(txn->pkt.addr,
                   [this, txn](Tick t2) { mmDataArrived(txn, t2); });
        }
        break;
      default:
        panic("unexpected outcome for a read demand");
    }
}

void
InDramTagCtrl::readDataDone(const TxnPtr &txn, Tick t)
{
    if (!txn->tagResolved) {
        TagResult tr{};
        readTagResult(txn, t, tr);
    }
    if (outcomeIsHit(txn->pkt.outcome)) {
        accountCache(lineBytes, 0, 0);
        respond(txn, t);
        release(txn);
        return;
    }
    if (txn->pkt.outcome == AccessOutcome::ReadMissClean ||
        txn->pkt.outcome == AccessOutcome::ReadMissInvalid) {
        panic_if(channelFor(txn->pkt.addr).config().conditionalColumn,
                 "unexpected data on a %s read",
                 outcomeName(txn->pkt.outcome));
        accountCache(0, 0, lineBytes);
        return;
    }
    accountCache(0, lineBytes, 0);
    mmWrite(txn->tr.victimAddr);
    txn->victimDone = true;
    maybeFill(txn);
}

void
InDramTagCtrl::mmDataArrived(const TxnPtr &txn, Tick t)
{
    txn->mmDataAt = t;
    respond(txn, t);
    maybeFill(txn);
}

void
InDramTagCtrl::maybeFill(const TxnPtr &txn)
{
    if (txn->fillIssued || txn->mmDataAt == 0 || !txn->victimDone)
        return;
    txn->fillIssued = true;
    doFill(txn->pkt.addr);
    release(txn);
}

NdcCtrl::NdcCtrl(EventQueue &eq, std::string name,
                 const DramCacheConfig &cfg, MainMemory &mm)
    : InDramTagCtrl(eq, std::move(name), cfg, mm, ndcChanCfg())
{
}

TdramCtrl::TdramCtrl(EventQueue &eq, std::string name,
                     const DramCacheConfig &cfg, MainMemory &mm,
                     bool probing)
    : InDramTagCtrl(eq, std::move(name), cfg, mm,
                    tdramChanCfg(probing, cfg.tdramConditionalColumn)),
      _probing(probing)
{
}

// ---------------------------------------------------------------------
// CascadeLakeCtrl (frozen copy of src/dcache/conventional.cc)
// ---------------------------------------------------------------------

CascadeLakeCtrl::CascadeLakeCtrl(EventQueue &eq, std::string name,
                                 const DramCacheConfig &cfg,
                                 MainMemory &mm)
    : DramCacheCtrl(eq, std::move(name), cfg, mm,
                    conventionalChanCfg())
{
}

bool
CascadeLakeCtrl::initialOpAdmissible(const MemPacket &pkt) const
{
    const unsigned c = _map.decode(pkt.addr).channel;
    return _chans[c]->canAcceptRead();
}

void
CascadeLakeCtrl::startAccess(const TxnPtr &txn)
{
    const Addr addr = txn->pkt.addr;
    const bool is_read = txn->pkt.cmd == MemCmd::Read;

    if (is_read && _cfg.predictor && !_pred.predictHit(txn->pkt.pc)) {
        ++predictedMiss;
        txn->mmStarted = true;
        mmRead(addr,
               [this, txn](Tick t) { mmDataArrived(txn, t); });
    }

    ChanReq req;
    req.id = nextChanId();
    txn->chanReqId = req.id;
    req.addr = addr;
    req.op = ChanOp::Read;
    req.isDemandRead = is_read;
    req.onDataDone = [this, txn](Tick t) { tagDataArrived(txn, t); };
    enqueueChan(std::move(req), false);
}

void
CascadeLakeCtrl::tagDataArrived(const TxnPtr &txn, Tick t)
{
    const Addr addr = txn->pkt.addr;
    const bool is_read = txn->pkt.cmd == MemCmd::Read;
    const bool predicted_hit =
        _cfg.predictor ? _pred.predictHit(txn->pkt.pc) : true;

    resolveTags(txn, t);
    if (_cfg.predictor && is_read) {
        _pred.update(txn->pkt.pc, txn->tr.hit);
        _pred.recordOutcome(predicted_hit, txn->tr.hit);
    }

    const unsigned pad = burstBytes() - lineBytes;
    const bool dirty_victim =
        !txn->tr.hit && txn->tr.valid && txn->tr.dirty;

    if (is_read) {
        if (txn->tr.hit) {
            accountCache(lineBytes, 0, pad);
            if (txn->mmStarted)
                ++predictorWrongFetch;
            finish(txn, t);
            return;
        }
        if (dirty_victim) {
            accountCache(0, lineBytes, pad);
            mmWrite(txn->tr.victimAddr);
        } else {
            accountCache(0, 0, lineBytes + pad);
        }
        if (txn->mmDataAt != 0) {
            doFill(addr);
            txn->fillIssued = true;
            finish(txn, t);
        } else if (!txn->mmStarted) {
            txn->mmStarted = true;
            mmRead(addr,
                   [this, txn](Tick t2) { mmDataArrived(txn, t2); });
        }
        return;
    }

    if (dirty_victim) {
        accountCache(0, lineBytes, pad);
        mmWrite(txn->tr.victimAddr);
    } else {
        accountCache(0, 0, lineBytes + pad);
    }
    issueDemandWrite(txn);
    finish(txn, t);
}

void
CascadeLakeCtrl::issueDemandWrite(const TxnPtr &txn)
{
    const Addr addr = txn->pkt.addr;
    addPendingWrite(addr);
    ChanReq w;
    w.id = nextChanId();
    w.addr = addr;
    w.op = ChanOp::Write;
    w.onDataDone = [this, addr](Tick) { removePendingWrite(addr); };
    accountCache(lineBytes, 0, burstBytes() - lineBytes);
    enqueueChan(std::move(w), true);
}

void
CascadeLakeCtrl::mmDataArrived(const TxnPtr &txn, Tick t)
{
    txn->mmDataAt = t;
    if (!txn->tagResolved)
        return;
    if (txn->tr.hit)
        return;
    if (!txn->fillIssued) {
        doFill(txn->pkt.addr);
        txn->fillIssued = true;
    }
    finish(txn, t);
}

// ---------------------------------------------------------------------
// CoreEngine (frozen copy of src/workload/core_engine.cc)
// ---------------------------------------------------------------------

CoreEngine::CoreEngine(
    EventQueue &eq, std::string name, const CoreConfig &cfg,
    std::vector<std::unique_ptr<AddressGenerator>> gens,
    DramCacheCtrl &dcache, std::uint64_t seed)
    : SimObject(eq, std::move(name)), _cfg(cfg), _dcache(dcache),
      _llc("llc", cfg.llcBytes, cfg.llcWays, cfg.llcLatency),
      _rng(seed)
{
    fatal_if(gens.size() != cfg.cores,
             "need one generator per core (%u cores, %zu gens)",
             cfg.cores, gens.size());
    _cores.resize(cfg.cores);
    for (unsigned c = 0; c < cfg.cores; ++c) {
        _l1s.push_back(std::make_unique<SramCache>(
            "l1." + std::to_string(c), cfg.l1Bytes, cfg.l1Ways,
            cfg.l1Latency));
        _cores[c].gen = std::move(gens[c]);
    }
}

void
CoreEngine::start()
{
    for (unsigned c = 0; c < _cfg.cores; ++c)
        scheduleAdvance(c, curTick());
}

void
CoreEngine::scheduleAdvance(unsigned c, Tick when)
{
    auto &core = _cores[c];
    if (core.issueScheduled)
        return;
    core.issueScheduled = true;
    _eq.schedule(std::max(when, curTick()), [this, c] {
        _cores[c].issueScheduled = false;
        advance(c);
    });
}

void
CoreEngine::advance(unsigned c)
{
    auto &core = _cores[c];
    if (core.finished)
        return;
    const Tick now = curTick();
    if (core.readyAt < now)
        core.readyAt = now;

    if (!drainStalled(c)) {
        scheduleAdvance(c, now + _cfg.retryInterval);
        return;
    }

    while (core.issued < _cfg.opsPerCore) {
        if (core.readyAt > now) {
            scheduleAdvance(c, core.readyAt);
            return;
        }
        if (core.outstanding >= _cfg.mlp)
            return;

        const MemOp op = core.gen->next(_rng);
        ++core.issued;
        core.readyAt += _cfg.thinkTime + _cfg.l1Latency;

        const Addr line = lineAlign(op.addr);
        SramCache &l1 = *_l1s[c];
        const auto l1res = l1.access(line, op.isStore);
        if (l1res.hit) {
            ++core.retired;
            ++opsRetired;
            continue;
        }

        if (l1res.writeback) {
            const auto wb = _llc.access(l1res.writebackAddr, true);
            if (wb.writeback) {
                MemPacket p;
                p.id = _nextPktId++;
                p.addr = wb.writebackAddr;
                p.cmd = MemCmd::Write;
                p.coreId = static_cast<int>(c);
                core.stalled.push_back(p);
            }
        }

        core.readyAt += _cfg.llcLatency;
        const auto llcres = _llc.access(line, false);
        if (llcres.writeback) {
            MemPacket p;
            p.id = _nextPktId++;
            p.addr = llcres.writebackAddr;
            p.cmd = MemCmd::Write;
            p.coreId = static_cast<int>(c);
            core.stalled.push_back(p);
        }
        if (llcres.hit) {
            if (!drainStalled(c)) {
                scheduleAdvance(c, now + _cfg.retryInterval);
                return;
            }
            ++core.retired;
            ++opsRetired;
            continue;
        }

        MemPacket rd;
        rd.id = _nextPktId++;
        rd.addr = line;
        rd.cmd = MemCmd::Read;
        rd.coreId = static_cast<int>(c);
        rd.pc = (static_cast<Addr>(c) << 32) | (core.issued % 64) * 4;
        core.stalled.push_back(rd);

        if (!drainStalled(c)) {
            scheduleAdvance(c, now + _cfg.retryInterval);
            return;
        }
    }
    maybeFinish(c);
}

bool
CoreEngine::drainStalled(unsigned c)
{
    auto &core = _cores[c];
    while (!core.stalled.empty()) {
        MemPacket &pkt = core.stalled.front();
        if (!issueDemand(c, pkt)) {
            ++backpressureStalls;
            return false;
        }
        core.stalled.pop_front();
    }
    return true;
}

bool
CoreEngine::issueDemand(unsigned c, MemPacket &pkt)
{
    if (!_dcache.canAccept(pkt))
        return false;
    if (pkt.cmd == MemCmd::Read) {
        ++_cores[c].outstanding;
        ++demandReadsIssued;
        _dcache.access(pkt, [this, c](MemPacket &done) {
            readReturned(c, done);
        });
    } else {
        ++demandWritesIssued;
        _dcache.access(pkt, RespCallback{});
    }
    return true;
}

void
CoreEngine::readReturned(unsigned c, const MemPacket &pkt)
{
    auto &core = _cores[c];
    panic_if(core.outstanding == 0, "read returned with none in flight");
    --core.outstanding;
    ++core.retired;
    ++opsRetired;
    demandReadLatency.sample(ticksToNs(pkt.completed - pkt.created));
    if (core.issued < _cfg.opsPerCore || !core.stalled.empty()) {
        advance(c);
    } else {
        maybeFinish(c);
    }
}

void
CoreEngine::maybeFinish(unsigned c)
{
    auto &core = _cores[c];
    if (core.finished || core.issued < _cfg.opsPerCore ||
        core.outstanding > 0 || !core.stalled.empty()) {
        return;
    }
    core.finished = true;
    ++_coresDone;
    _finishTick =
        std::max(_finishTick, std::max(curTick(), core.readyAt));
}

void
CoreEngine::warmup(std::uint64_t ops_per_core)
{
    for (unsigned c = 0; c < _cfg.cores; ++c) {
        auto &core = _cores[c];
        SramCache &l1 = *_l1s[c];
        for (std::uint64_t i = 0; i < ops_per_core; ++i) {
            const MemOp op = core.gen->next(_rng);
            const Addr line = lineAlign(op.addr);
            const auto l1res = l1.access(line, op.isStore);
            if (l1res.hit)
                continue;
            if (l1res.writeback) {
                const auto wb = _llc.access(l1res.writebackAddr, true);
                if (wb.writeback)
                    _dcache.warmAccess(wb.writebackAddr, true);
            }
            const auto llcres = _llc.access(line, false);
            if (llcres.writeback)
                _dcache.warmAccess(llcres.writebackAddr, true);
            if (!llcres.hit)
                _dcache.warmAccess(line, false);
        }
    }
}

void
CoreEngine::regStats(StatGroup &g) const
{
    g.addScalar("ops_retired", &opsRetired);
    g.addScalar("demand_reads_issued", &demandReadsIssued);
    g.addScalar("demand_writes_issued", &demandWritesIssued);
    g.addScalar("backpressure_stalls", &backpressureStalls);
    g.addHistogram("demand_read_latency_ns", &demandReadLatency);
    _llc.regStats(g);
}

} // namespace legacyfe
} // namespace tsim
