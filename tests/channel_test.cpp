/**
 * @file
 * DRAM channel timing tests: protocol-level latency arithmetic from
 * Table III and the transaction diagrams of Figures 5-7, plus bank/
 * bus constraint and probing behaviour.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dram/channel.hh"

namespace tsim
{
namespace
{

constexpr std::uint64_t kCap = 1ULL << 24;

/** One-channel fixture with direct access to the queue. */
struct ChannelHarness
{
    explicit ChannelHarness(ChannelConfig cfg)
        : map(kCap, 1, 16, 1024),
          chan(eq, "ch", patch(cfg), map)
    {
        chan.peekTags = [this](Addr a) {
            auto it = tags.find(lineAlign(a));
            return it != tags.end() ? it->second : TagResult{};
        };
        chan.onFlushArrive = [this](Addr a, Tick t) {
            flushed.emplace_back(a, t);
        };
    }

    static ChannelConfig
    patch(ChannelConfig cfg)
    {
        cfg.refreshEnabled = false;
        return cfg;
    }

    /** Line address in a specific bank. */
    Addr
    addrIn(unsigned bank, unsigned n = 0) const
    {
        return (static_cast<Addr>(bank) + 16ULL * n) * lineBytes;
    }

    void
    setTag(Addr a, bool hit, bool valid, bool dirty, Addr victim)
    {
        TagResult r;
        r.hit = hit;
        r.valid = valid;
        r.dirty = dirty;
        r.victimAddr = victim;
        tags[lineAlign(a)] = r;
    }

    ChanReq
    req(Addr a, ChanOp op)
    {
        ChanReq r;
        r.id = nextId++;
        r.addr = a;
        r.op = op;
        r.isDemandRead = (op == ChanOp::Read || op == ChanOp::ActRd);
        return r;
    }

    EventQueue eq;
    AddressMap map;
    DramChannel chan;
    std::map<Addr, TagResult> tags;
    std::vector<std::pair<Addr, Tick>> flushed;
    std::uint64_t nextId = 1;
};

ChannelConfig
tdramCfg()
{
    ChannelConfig c;
    c.inDramTags = true;
    c.conditionalColumn = true;
    c.enableProbe = true;
    c.hasFlushBuffer = true;
    c.opportunisticDrain = true;
    return c;
}

ChannelConfig
ndcCfg()
{
    ChannelConfig c = tdramCfg();
    c.hmAtColumn = true;
    c.enableProbe = false;
    c.opportunisticDrain = false;
    return c;
}

TEST(ChannelTiming, ConventionalReadLatency)
{
    ChannelHarness h{ChannelConfig{}};
    Tick done = 0;
    ChanReq r = h.req(h.addrIn(0), ChanOp::Read);
    r.onDataDone = [&](Tick t) { done = t; };
    h.chan.enqueue(std::move(r));
    h.eq.run();
    // ACT at 0, RD data at tRCD + tCL, burst tBURST.
    EXPECT_EQ(done, nsToTicks(12 + 18 + 2));
}

TEST(ChannelTiming, ConventionalWriteLatency)
{
    ChannelHarness h{ChannelConfig{}};
    Tick done = 0;
    ChanReq r = h.req(h.addrIn(3), ChanOp::Write);
    r.onDataDone = [&](Tick t) { done = t; };
    h.chan.enqueue(std::move(r));
    h.eq.run();
    EXPECT_EQ(done, nsToTicks(6 + 7 + 2));  // tRCD_WR + tCWL + tBURST
}

TEST(ChannelTiming, TadBurstScaleLengthensTransfer)
{
    ChannelConfig cfg;
    cfg.timing.burstScale = 80.0 / 64.0;  // Alloy/BEAR
    ChannelHarness h{cfg};
    Tick done = 0;
    ChanReq r = h.req(h.addrIn(0), ChanOp::Read);
    r.onDataDone = [&](Tick t) { done = t; };
    h.chan.enqueue(std::move(r));
    h.eq.run();
    EXPECT_EQ(done, nsToTicks(12 + 18 + 2.5));
}

TEST(ChannelTiming, ActRdHitHmPrecedesData)
{
    ChannelHarness h{tdramCfg()};
    const Addr a = h.addrIn(0);
    h.setTag(a, true, true, false, a);
    Tick hm = 0, data = 0;
    TagResult res;
    ChanReq r = h.req(a, ChanOp::ActRd);
    r.onTagResult = [&](Tick t, const TagResult &tr) {
        hm = t;
        res = tr;
    };
    r.onDataDone = [&](Tick t) { data = t; };
    h.chan.enqueue(std::move(r));
    h.eq.run();
    // Paper §III-C4: tRCD_TAG + tHM = 15 ns; data at 32 ns.
    EXPECT_EQ(hm, nsToTicks(15));
    EXPECT_EQ(data, nsToTicks(32));
    EXPECT_TRUE(res.hit);
    EXPECT_FALSE(res.viaProbe);
}

TEST(ChannelTiming, ActRdMissCleanSuppressesColumnOp)
{
    ChannelHarness h{tdramCfg()};
    const Addr a = h.addrIn(1);
    h.setTag(a, false, true, false, h.addrIn(1, 7));
    Tick hm = 0;
    bool data_came = false;
    ChanReq r = h.req(a, ChanOp::ActRd);
    r.onTagResult = [&](Tick t, const TagResult &) { hm = t; };
    r.onDataDone = [&](Tick) { data_came = true; };
    h.chan.enqueue(std::move(r));
    h.eq.run();
    EXPECT_EQ(hm, nsToTicks(15));
    EXPECT_FALSE(data_came);  // conditional response: no transfer
    EXPECT_EQ(h.chan.bytesToCtrl.value(), 0.0);
    EXPECT_GT(h.chan.dqReservedIdleTicks.value(), 0.0);
}

TEST(ChannelTiming, ActRdMissDirtyStreamsVictim)
{
    ChannelHarness h{tdramCfg()};
    const Addr a = h.addrIn(2);
    h.setTag(a, false, true, true, h.addrIn(2, 9));
    Tick hm = 0, data = 0;
    TagResult res;
    ChanReq r = h.req(a, ChanOp::ActRd);
    r.onTagResult = [&](Tick t, const TagResult &tr) {
        hm = t;
        res = tr;
    };
    r.onDataDone = [&](Tick t) { data = t; };
    h.chan.enqueue(std::move(r));
    h.eq.run();
    EXPECT_EQ(hm, nsToTicks(15));
    EXPECT_EQ(data, nsToTicks(32));  // same timing as a hit (Fig 5)
    EXPECT_TRUE(res.dirty);
    EXPECT_EQ(res.victimAddr, h.addrIn(2, 9));
}

TEST(ChannelTiming, NdcResultTiedToColumnOp)
{
    ChannelHarness h{ndcCfg()};
    const Addr a = h.addrIn(0);
    h.setTag(a, false, true, false, h.addrIn(0, 3));
    Tick hm = 0;
    ChanReq r = h.req(a, ChanOp::ActRd);
    r.onTagResult = [&](Tick t, const TagResult &) { hm = t; };
    h.chan.enqueue(std::move(r));
    h.eq.run();
    // NDC learns the status only when the data slot completes.
    EXPECT_EQ(hm, nsToTicks(32));
}

TEST(ChannelTiming, ActWrHmAndDataTiming)
{
    ChannelHarness h{tdramCfg()};
    const Addr a = h.addrIn(4);
    h.setTag(a, true, true, false, a);
    Tick hm = 0, data = 0;
    ChanReq r = h.req(a, ChanOp::ActWr);
    r.onTagResult = [&](Tick t, const TagResult &) { hm = t; };
    r.onDataDone = [&](Tick t) { data = t; };
    h.chan.enqueue(std::move(r));
    h.eq.run();
    EXPECT_EQ(hm, nsToTicks(15));
    EXPECT_EQ(data, nsToTicks(7 + 2));  // tCWL + tBURST
}

TEST(ChannelTiming, ActWrMissDirtyFillsFlushBuffer)
{
    ChannelHarness h{tdramCfg()};
    const Addr a = h.addrIn(5);
    const Addr victim = h.addrIn(5, 11);
    h.setTag(a, false, true, true, victim);
    h.chan.enqueue(h.req(a, ChanOp::ActWr));
    h.eq.run();
    EXPECT_EQ(h.chan.flushSize(), 1u);
    EXPECT_TRUE(h.chan.flushContains(victim));
    // No victim data crossed the DQ bus toward the controller.
    EXPECT_EQ(h.chan.bytesToCtrl.value(), 0.0);
    EXPECT_EQ(h.chan.turnarounds.value(), 0.0);
}

TEST(ChannelTiming, ReadMissCleanSlotDrainsFlushBuffer)
{
    ChannelHarness h{tdramCfg()};
    const Addr wr = h.addrIn(6);
    const Addr victim = h.addrIn(6, 13);
    h.setTag(wr, false, true, true, victim);
    h.chan.enqueue(h.req(wr, ChanOp::ActWr));
    h.eq.run();
    ASSERT_EQ(h.chan.flushSize(), 1u);

    const Addr rd = h.addrIn(7);
    h.setTag(rd, false, true, false, h.addrIn(7, 3));
    h.chan.enqueue(h.req(rd, ChanOp::ActRd));
    h.eq.run();
    ASSERT_EQ(h.flushed.size(), 1u);
    EXPECT_EQ(h.flushed[0].first, victim);
    EXPECT_EQ(h.chan.flushSize(), 0u);
    EXPECT_EQ(h.chan.flushBuffer().drainedOnMissClean.value(), 1.0);
}

TEST(ChannelTiming, SameBankReadsSerializeOnBankCycle)
{
    ChannelHarness h{ChannelConfig{}};
    std::vector<Tick> done;
    for (unsigned n = 0; n < 2; ++n) {
        ChanReq r = h.req(h.addrIn(0, n), ChanOp::Read);
        r.onDataDone = [&](Tick t) { done.push_back(t); };
        h.chan.enqueue(std::move(r));
    }
    h.eq.run();
    ASSERT_EQ(done.size(), 2u);
    // Close page: second ACT waits tRAS + tRP after the first.
    EXPECT_EQ(done[1] - done[0], nsToTicks(28 + 14));
}

TEST(ChannelTiming, DifferentBankReadsPipelineOnDq)
{
    ChannelHarness h{ChannelConfig{}};
    std::vector<Tick> done;
    for (unsigned b = 0; b < 4; ++b) {
        ChanReq r = h.req(h.addrIn(b), ChanOp::Read);
        r.onDataDone = [&](Tick t) { done.push_back(t); };
        h.chan.enqueue(std::move(r));
    }
    h.eq.run();
    ASSERT_EQ(done.size(), 4u);
    // Limited by tRRD (2 ns) command spacing, then back-to-back DQ.
    for (unsigned i = 1; i < 4; ++i)
        EXPECT_EQ(done[i] - done[i - 1], nsToTicks(2));
}

TEST(ChannelTiming, ReadToWriteTurnaroundApplied)
{
    ChannelHarness h{ChannelConfig{}};
    Tick rd_done = 0, wr_done = 0;
    ChanReq r = h.req(h.addrIn(0), ChanOp::Read);
    r.onDataDone = [&](Tick t) { rd_done = t; };
    h.chan.enqueue(std::move(r));
    ChanReq w = h.req(h.addrIn(1), ChanOp::Write);
    w.onDataDone = [&](Tick t) { wr_done = t; };
    h.chan.enqueue(std::move(w));
    h.eq.run();
    // Write data must start >= read burst end + tRTW.
    EXPECT_GE(wr_done - nsToTicks(2), rd_done + nsToTicks(4));
    EXPECT_EQ(h.chan.turnarounds.value(), 1.0);
}

TEST(ChannelTiming, FourActivateWindowEnforced)
{
    ChannelHarness h{ChannelConfig{}};
    std::vector<Tick> done;
    for (unsigned b = 0; b < 5; ++b) {
        ChanReq r = h.req(h.addrIn(b), ChanOp::Read);
        r.onDataDone = [&](Tick t) { done.push_back(t); };
        h.chan.enqueue(std::move(r));
    }
    h.eq.run();
    ASSERT_EQ(done.size(), 5u);
    // The 5th ACT must wait for tXAW after the 1st (16 ns > 4*tRRD).
    const Tick act0_data = done[0];  // ACT at 0
    EXPECT_GE(done[4], act0_data - nsToTicks(32) + nsToTicks(16 + 32));
}

TEST(ChannelTiming, RefreshDelaysAccessAndDrainsFlush)
{
    ChannelConfig cfg = tdramCfg();
    cfg.refreshEnabled = true;
    AddressMap map(kCap, 1, 16, 1024);
    EventQueue eq;
    DramChannel chan(eq, "ch", cfg, map);
    std::map<Addr, TagResult> tags;
    chan.peekTags = [&](Addr a) {
        auto it = tags.find(lineAlign(a));
        return it != tags.end() ? it->second : TagResult{};
    };
    std::vector<Addr> drained;
    chan.onFlushArrive = [&](Addr a, Tick) { drained.push_back(a); };

    // Park a dirty victim in the flush buffer.
    TagResult md;
    md.valid = true;
    md.dirty = true;
    md.victimAddr = 13 * lineBytes;
    tags[0] = md;
    ChanReq w;
    w.id = 1;
    w.addr = 0;
    w.op = ChanOp::ActWr;
    chan.enqueue(std::move(w));
    eq.run(nsToTicks(100));
    ASSERT_EQ(chan.flushSize(), 1u);

    // Run past one refresh interval: the buffer drains during tRFC.
    eq.run(nsToTicks(3900 + 300));
    EXPECT_EQ(chan.refreshes.value(), 1.0);
    ASSERT_EQ(drained.size(), 1u);
    EXPECT_EQ(drained[0], 13 * lineBytes);
    EXPECT_EQ(chan.flushBuffer().drainedOnRefresh.value(), 1.0);
}

TEST(ChannelProbe, QueuedReadGetsEarlyResult)
{
    ChannelHarness h{tdramCfg()};
    // Two reads to the same bank: the second waits on the bank cycle
    // and becomes a probe target.
    const Addr a0 = h.addrIn(0, 0);
    const Addr a1 = h.addrIn(0, 1);
    h.setTag(a0, true, true, false, a0);
    h.setTag(a1, false, true, false, h.addrIn(0, 5));

    Tick hm1 = 0;
    bool via_probe = false;
    ChanReq r0 = h.req(a0, ChanOp::ActRd);
    h.chan.enqueue(std::move(r0));
    ChanReq r1 = h.req(a1, ChanOp::ActRd);
    r1.onTagResult = [&](Tick t, const TagResult &tr) {
        if (hm1 == 0) {
            hm1 = t;
            via_probe = tr.viaProbe;
        }
    };
    const std::uint64_t id1 = r1.id;
    h.chan.enqueue(std::move(r1));
    // Probe issues once the tag bank frees (tRC_TAG = 12 ns); its
    // result lands 15 ns later — well before the 42 ns bank cycle.
    h.eq.run(nsToTicks(41));

    // The probe fires in an idle CA/tag-bank slot well before the
    // bank cycle lets the MAIN ActRd issue (>= 42 ns).
    EXPECT_EQ(h.chan.probesIssued.value(), 1.0);
    ASSERT_GT(hm1, 0u);
    EXPECT_TRUE(via_probe);
    EXPECT_LT(hm1, nsToTicks(42));

    // The front-end can retire the probed miss-clean early.
    EXPECT_TRUE(h.chan.removeRead(id1));
    h.eq.run();
    EXPECT_EQ(h.chan.issuedActRd.value(), 1.0);
}

TEST(ChannelProbe, DisabledMeansNoProbes)
{
    ChannelConfig cfg = tdramCfg();
    cfg.enableProbe = false;
    ChannelHarness h{cfg};
    for (unsigned n = 0; n < 3; ++n) {
        const Addr a = h.addrIn(0, n);
        h.setTag(a, true, true, false, a);
        h.chan.enqueue(h.req(a, ChanOp::ActRd));
    }
    h.eq.run();
    EXPECT_EQ(h.chan.probesIssued.value(), 0.0);
}

TEST(ChannelQueue, RemoveReadSamplesQueueDelay)
{
    ChannelHarness h{tdramCfg()};
    const Addr a0 = h.addrIn(0, 0);
    const Addr a1 = h.addrIn(0, 1);
    h.setTag(a0, true, true, false, a0);
    h.setTag(a1, true, true, false, a1);
    h.chan.enqueue(h.req(a0, ChanOp::ActRd));
    ChanReq r1 = h.req(a1, ChanOp::ActRd);
    const std::uint64_t id = r1.id;
    h.chan.enqueue(std::move(r1));
    EXPECT_TRUE(h.chan.removeRead(id));
    EXPECT_FALSE(h.chan.removeRead(id));
    h.eq.run();
    EXPECT_EQ(h.chan.issuedActRd.value(), 1.0);
}

TEST(ChannelQueue, WriteDrainServicesAllWrites)
{
    ChannelConfig cfg;
    cfg.writeQCap = 16;
    cfg.writeHigh = 8;
    cfg.writeLow = 2;
    ChannelHarness h{cfg};
    unsigned writes_done = 0;
    for (unsigned n = 0; n < 12; ++n) {
        ChanReq w = h.req(h.addrIn(n % 16, n / 16), ChanOp::Write);
        w.onDataDone = [&](Tick) { ++writes_done; };
        h.chan.enqueue(std::move(w));
    }
    h.eq.run();
    EXPECT_EQ(writes_done, 12u);
    EXPECT_EQ(h.chan.issuedWrites.value(), 12.0);
}

} // namespace
} // namespace tsim
