/**
 * @file
 * Core-engine tests: MLP limiting, L1/LLC filtering, writeback
 * generation, warmup, and backpressure handling.
 */

#include <gtest/gtest.h>

#include "system/system.hh"
#include "workload/core_engine.hh"

namespace tsim
{
namespace
{

/** Fixed-sequence generator for controlled experiments. */
class FixedGen : public AddressGenerator
{
  public:
    explicit FixedGen(std::vector<MemOp> ops) : _ops(std::move(ops)) {}

    MemOp
    next(Rng &) override
    {
        MemOp op = _ops[_pos % _ops.size()];
        ++_pos;
        return op;
    }

  private:
    std::vector<MemOp> _ops;
    std::size_t _pos = 0;
};

struct EngineHarness
{
    explicit EngineHarness(CoreConfig cfg,
                           std::vector<std::vector<MemOp>> streams)
    {
        MainMemoryConfig mm_cfg;
        mm_cfg.capacityBytes = 1ULL << 26;
        mm_cfg.refreshEnabled = false;
        mm = std::make_unique<MainMemory>(eq, "mm", mm_cfg);
        DramCacheConfig dc_cfg;
        dc_cfg.capacityBytes = 1ULL << 20;
        dc_cfg.channels = 2;
        dc_cfg.refreshEnabled = false;
        cache = makeDramCache(eq, Design::Tdram, dc_cfg, *mm);
        std::vector<std::unique_ptr<AddressGenerator>> gens;
        for (auto &s : streams)
            gens.push_back(std::make_unique<FixedGen>(std::move(s)));
        engine = std::make_unique<CoreEngine>(
            eq, "engine", cfg, std::move(gens), *cache, 1);
    }

    void
    runToCompletion()
    {
        engine->start();
        while (!engine->done() && eq.step()) {
        }
        ASSERT_TRUE(engine->done());
    }

    EventQueue eq;
    std::unique_ptr<MainMemory> mm;
    std::unique_ptr<DramCacheCtrl> cache;
    std::unique_ptr<CoreEngine> engine;
};

CoreConfig
smallCores(unsigned cores, std::uint64_t ops)
{
    CoreConfig cfg;
    cfg.cores = cores;
    cfg.opsPerCore = ops;
    cfg.l1Bytes = 4 * 1024;
    cfg.llcBytes = 64 * 1024;
    return cfg;
}

TEST(CoreEngine, RetiresEveryOp)
{
    std::vector<MemOp> stream;
    for (int i = 0; i < 500; ++i)
        stream.push_back({static_cast<Addr>(i) * lineBytes, false});
    EngineHarness h(smallCores(2, 500), {stream, stream});
    h.runToCompletion();
    EXPECT_EQ(h.engine->opsRetired.value(), 1000.0);
    EXPECT_GT(h.engine->finishTick(), 0u);
}

TEST(CoreEngine, L1AbsorbsRepeatedLine)
{
    std::vector<MemOp> stream(400, MemOp{0x1000, false});
    EngineHarness h(smallCores(1, 400), {stream});
    h.runToCompletion();
    // One cold L1 miss; everything else hits the L1.
    EXPECT_EQ(h.engine->l1(0).misses.value(), 1.0);
    EXPECT_LE(h.engine->demandReadsIssued.value(), 1.0);
}

TEST(CoreEngine, StoresProduceWritebacksDownstream)
{
    // Store to many distinct lines; dirty L1 victims cascade through
    // the LLC and eventually reach the DRAM cache as write demands.
    std::vector<MemOp> stream;
    for (int i = 0; i < 3000; ++i)
        stream.push_back({static_cast<Addr>(i) * lineBytes, true});
    EngineHarness h(smallCores(1, 3000), {stream});
    h.runToCompletion();
    EXPECT_GT(h.engine->demandWritesIssued.value(), 0.0);
    EXPECT_GT(h.cache->demandWrites.value(), 0.0);
}

TEST(CoreEngine, MlpBoundsOutstandingReads)
{
    CoreConfig cfg = smallCores(1, 200);
    cfg.mlp = 2;
    cfg.thinkTime = 0;
    std::vector<MemOp> stream;
    for (int i = 0; i < 200; ++i)
        stream.push_back(
            {static_cast<Addr>(i) * 1027 * lineBytes, false});
    EngineHarness h(cfg, {stream});
    h.runToCompletion();
    // With MLP 2 and ~100 ns demands, the run takes at least
    // ops/2 * latency-ish time; just assert it completed and the
    // latency histogram saw every read.
    EXPECT_EQ(h.engine->demandReadLatency.count(),
              static_cast<std::uint64_t>(
                  h.engine->demandReadsIssued.value()));
}

TEST(CoreEngine, WarmupFillsCachesWithoutTime)
{
    std::vector<MemOp> stream;
    for (int i = 0; i < 64; ++i)
        stream.push_back({static_cast<Addr>(i) * lineBytes, false});
    EngineHarness h(smallCores(1, 64), {stream});
    h.engine->warmup(64);
    EXPECT_EQ(h.eq.curTick(), 0u);
    EXPECT_GT(h.cache->tags().validCount(), 0u);
    // After warmup the same 64 lines are L1/LLC hits: no demands.
    h.runToCompletion();
    EXPECT_EQ(h.engine->demandReadsIssued.value(), 0.0);
}

TEST(CoreEngine, BackpressureEventuallyDrains)
{
    // A tiny conflicting-request buffer forces backpressure; the
    // engine must still retire everything.
    EventQueue eq;
    MainMemoryConfig mm_cfg;
    mm_cfg.capacityBytes = 1ULL << 26;
    MainMemory mm(eq, "mm", mm_cfg);
    DramCacheConfig dc_cfg;
    dc_cfg.capacityBytes = 1ULL << 18;
    dc_cfg.channels = 1;
    dc_cfg.conflictBufEntries = 2;
    dc_cfg.readQCap = 4;
    dc_cfg.writeQCap = 4;
    dc_cfg.refreshEnabled = false;
    auto cache = makeDramCache(eq, Design::CascadeLake, dc_cfg, mm);

    CoreConfig cfg = smallCores(4, 400);
    cfg.thinkTime = 0;
    std::vector<std::unique_ptr<AddressGenerator>> gens;
    for (unsigned c = 0; c < 4; ++c) {
        std::vector<MemOp> stream;
        for (int i = 0; i < 400; ++i)
            stream.push_back({static_cast<Addr>(i * 4 + c) * 769 *
                                  lineBytes,
                              i % 3 == 0});
        gens.push_back(
            std::make_unique<FixedGen>(std::move(stream)));
    }
    CoreEngine engine(eq, "engine", cfg, std::move(gens), *cache, 1);
    engine.start();
    while (!engine.done() && eq.step()) {
    }
    EXPECT_TRUE(engine.done());
    EXPECT_GT(engine.backpressureStalls.value(), 0.0);
    EXPECT_EQ(engine.opsRetired.value(), 1600.0);
}

} // namespace
} // namespace tsim
