/**
 * @file
 * System-level API tests: configuration plumbing, report
 * consistency, stat dumping, and the geomean helper.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "system/system.hh"

namespace tsim
{
namespace
{

SystemConfig
tinyCfg(Design d)
{
    SystemConfig cfg;
    cfg.design = d;
    cfg.dcacheCapacity = 2ULL << 20;
    cfg.cores.cores = 2;
    cfg.cores.opsPerCore = 1500;
    cfg.cores.llcBytes = 256 * 1024;
    cfg.warmupOpsPerCore = 5000;
    return cfg;
}

TEST(Geomean, Basics)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({8.0}), 8.0);
    EXPECT_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(System, ReportFieldsConsistent)
{
    SimReport r = runOne(tinyCfg(Design::Tdram), findWorkload("is.C"));
    EXPECT_EQ(r.design, "TDRAM");
    EXPECT_EQ(r.workload, "is.C");
    EXPECT_FALSE(r.highMiss);
    EXPECT_GT(r.runtimeTicks, 0u);
    EXPECT_DOUBLE_EQ(r.runtimeNs(), ticksToNs(r.runtimeTicks));
    EXPECT_GE(r.missRatio, 0.0);
    EXPECT_LE(r.missRatio, 1.0);
    EXPECT_GE(r.bloat, 1.0);
    EXPECT_GE(r.unusefulFrac, 0.0);
    EXPECT_LE(r.unusefulFrac, 1.0);
    EXPECT_GT(r.energy.totalJ(), 0.0);
}

TEST(System, PredictorAccuracyAbsentWithoutPredictor)
{
    // A controller that never ran a predictor must report the metric
    // as absent — JSON null — not as a misleading 0.0 accuracy.
    SimReport r = runOne(tinyCfg(Design::CascadeLake),
                         findWorkload("is.C"));
    EXPECT_FALSE(r.predictorPresent);
    EXPECT_NE(reportJson(r).find("\"predictor_accuracy\": null"),
              std::string::npos);

    SystemConfig cfg = tinyCfg(Design::CascadeLake);
    cfg.predictor = true;
    SimReport p = runOne(cfg, findWorkload("is.C"));
    EXPECT_TRUE(p.predictorPresent);
    EXPECT_GT(p.predictorAccuracy, 0.0);
    EXPECT_EQ(reportJson(p).find("\"predictor_accuracy\": null"),
              std::string::npos);
    EXPECT_NE(reportJson(p).find("\"predictor_accuracy\": "),
              std::string::npos);
}

TEST(System, MainMemorySizedToFootprint)
{
    // A >1x-footprint workload forces the backing store to grow.
    SystemConfig cfg = tinyCfg(Design::NoCache);
    System sys(cfg, findWorkload("ft.D"));
    const std::uint64_t space =
        physicalSpaceBytes(findWorkload("ft.D"), cfg.dcacheCapacity);
    // Every generated address must be within main memory; run a bit.
    SimReport r = sys.run();
    EXPECT_GT(r.runtimeTicks, 0u);
    EXPECT_GE(space, footprintBytes(findWorkload("ft.D"),
                                    cfg.dcacheCapacity));
}

TEST(System, DumpStatsProducesOutput)
{
    System sys(tinyCfg(Design::Tdram), findWorkload("bfs.22"));
    sys.run();
    std::ostringstream os;
    sys.dumpStats(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("system.demand_reads"), std::string::npos);
    EXPECT_NE(out.find("system.tag_check_latency_ns.mean"),
              std::string::npos);
    EXPECT_NE(out.find("system.llc.hits"), std::string::npos);
}

TEST(System, StatGroupCsvExport)
{
    System sys(tinyCfg(Design::Ndc), findWorkload("bfs.22"));
    sys.run();
    StatGroup g("csv");
    sys.dcache().regStats(g);
    std::ostringstream os;
    g.dumpCsv(os);
    const std::string out = os.str();
    EXPECT_EQ(out.rfind("name,value\n", 0), 0u);
    EXPECT_NE(out.find("csv.demand_reads,"), std::string::npos);
}

TEST(System, ConfigurationKnobsReachTheCache)
{
    SystemConfig cfg = tinyCfg(Design::Tdram);
    cfg.dcacheWays = 4;
    cfg.flushEntries = 8;
    cfg.prefetchDegree = 2;
    System sys(cfg, findWorkload("is.C"));
    EXPECT_EQ(sys.dcache().tags().ways(), 4u);
    EXPECT_EQ(sys.dcache().channel(0).flushBuffer().capacity(), 8u);
    SimReport r = sys.run();
    (void)r;
    EXPECT_GT(sys.dcache().prefetchIssued.value(), 0.0);
}

TEST(System, DesignsShareTheWorkloadStream)
{
    // Same seed => nearly identical demand counts across designs.
    // (The shared LLC's state depends on cross-core interleaving,
    // which timing perturbs slightly; the stream itself is fixed.)
    SimReport a = runOne(tinyCfg(Design::CascadeLake),
                         findWorkload("bfs.22"));
    SimReport b = runOne(tinyCfg(Design::Tdram), findWorkload("bfs.22"));
    const double da = static_cast<double>(a.demandReads + a.demandWrites);
    const double db = static_cast<double>(b.demandReads + b.demandWrites);
    EXPECT_NEAR(da, db, 0.05 * da);
}

} // namespace
} // namespace tsim
