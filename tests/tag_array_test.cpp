/**
 * @file
 * Unit and property tests for the functional tag array (direct-
 * mapped and set-associative with LRU).
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/rng.hh"
#include "tdram/tag_array.hh"

namespace tsim
{
namespace
{

constexpr std::uint64_t kCap = 1 << 16;  // 1024 lines

TEST(TagArray, MissOnEmpty)
{
    TagArray t(kCap);
    TagResult r = t.peek(0x1000);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(r.valid);
    EXPECT_FALSE(r.dirty);
}

TEST(TagArray, InstallThenHit)
{
    TagArray t(kCap);
    t.install(0x1000, false);
    TagResult r = t.peek(0x1000);
    EXPECT_TRUE(r.hit);
    EXPECT_TRUE(r.valid);
    EXPECT_FALSE(r.dirty);
    EXPECT_EQ(r.victimAddr, 0x1000u);
}

TEST(TagArray, DirectMappedConflictReportsVictim)
{
    TagArray t(kCap, 1);
    const Addr a = 0x0;
    const Addr b = a + kCap;  // same set, different tag
    t.install(a, true);
    TagResult r = t.peek(b);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.valid);
    EXPECT_TRUE(r.dirty);
    EXPECT_EQ(r.victimAddr, a);
    t.install(b, false);
    EXPECT_FALSE(t.isHit(a));
    EXPECT_TRUE(t.isHit(b));
}

TEST(TagArray, DirtyTracking)
{
    TagArray t(kCap);
    t.install(0x40, false);
    EXPECT_FALSE(t.peek(0x40).dirty);
    t.markDirty(0x40);
    EXPECT_TRUE(t.peek(0x40).dirty);
    t.markClean(0x40);
    EXPECT_FALSE(t.peek(0x40).dirty);
}

TEST(TagArray, InvalidateRemovesLine)
{
    TagArray t(kCap);
    t.install(0x80, true);
    t.invalidate(0x80);
    EXPECT_FALSE(t.isHit(0x80));
    EXPECT_EQ(t.validCount(), 0u);
}

TEST(TagArray, LineOffsetIgnored)
{
    TagArray t(kCap);
    t.install(0x1000, false);
    EXPECT_TRUE(t.isHit(0x1000 + 63));
}

TEST(TagArray, SetAssociativeLruEviction)
{
    TagArray t(kCap, 4);
    const std::uint64_t sets = t.numSets();
    // Four lines in the same set, touched in order 0,1,2,3.
    for (Addr i = 0; i < 4; ++i)
        t.install(i * sets * lineBytes, false);
    // Touch line 0 so line 1 becomes LRU.
    t.touch(0);
    TagResult r = t.peek(4 * sets * lineBytes);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.victimAddr, 1 * sets * lineBytes);
    t.install(4 * sets * lineBytes, false);
    EXPECT_FALSE(t.isHit(1 * sets * lineBytes));
    EXPECT_TRUE(t.isHit(0));
}

TEST(TagArray, VictimPrefersInvalidWay)
{
    TagArray t(kCap, 2);
    const std::uint64_t sets = t.numSets();
    t.install(0, true);
    // Second way still invalid: installing must not evict line 0.
    t.install(sets * lineBytes, false);
    EXPECT_TRUE(t.isHit(0));
    EXPECT_TRUE(t.isHit(sets * lineBytes));
}

TEST(TagArray, InstallIsIdempotentForResidentLine)
{
    TagArray t(kCap, 2);
    t.install(0x100, false);
    t.install(0x100, true);  // re-install updates in place
    EXPECT_EQ(t.validCount(), 1u);
    EXPECT_TRUE(t.peek(0x100).dirty);
}

TEST(TagArray, CapacityNeverExceeded)
{
    TagArray t(kCap, 1);
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        t.install(rng.range(1 << 24) * lineBytes, rng.chance(0.5));
    EXPECT_LE(t.validCount(), kCap / lineBytes);
}

/** Property: the tag array agrees with a reference model. */
class TagArrayModelCheck : public ::testing::TestWithParam<unsigned>
{};

TEST_P(TagArrayModelCheck, MatchesReferenceModel)
{
    const unsigned ways = GetParam();
    TagArray t(1 << 12, ways);  // 64 lines
    const std::uint64_t sets = t.numSets();

    // Reference: per set, list of (tag, dirty) in LRU order.
    struct RefLine
    {
        Addr tag;
        bool dirty;
    };
    std::map<std::uint64_t, std::vector<RefLine>> ref;

    Rng rng(ways * 1000 + 17);
    for (int i = 0; i < 20000; ++i) {
        const Addr addr = rng.range(512) * lineBytes;
        const std::uint64_t set = (addr / lineBytes) % sets;
        const Addr tag = (addr / lineBytes) / sets;
        auto &lines = ref[set];
        auto found = std::find_if(
            lines.begin(), lines.end(),
            [&](const RefLine &l) { return l.tag == tag; });

        TagResult r = t.peek(addr);
        ASSERT_EQ(r.hit, found != lines.end())
            << "iteration " << i << " addr " << std::hex << addr;
        if (r.hit) {
            ASSERT_EQ(r.dirty, found->dirty);
        }

        // Mirror a mixed workload: 1/3 install, 1/3 touch, 1/3 dirty.
        const auto action = rng.range(3);
        if (action == 0) {
            t.install(addr, false);
            if (found != lines.end()) {
                RefLine l{tag, false};
                lines.erase(found);
                lines.push_back(l);
            } else {
                if (lines.size() >= ways)
                    lines.erase(lines.begin());
                lines.push_back({tag, false});
            }
        } else if (r.hit) {
            if (action == 1) {
                t.touch(addr);
                RefLine l = *found;
                lines.erase(found);
                lines.push_back(l);
            } else {
                t.markDirty(addr);
                RefLine l = *found;
                l.dirty = true;
                lines.erase(found);
                lines.push_back(l);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Ways, TagArrayModelCheck,
                         ::testing::Values(1, 2, 4, 8, 16));

} // namespace
} // namespace tsim
