/**
 * @file
 * Tests for the extension features: the next-line prefetcher (§V-D)
 * and the conditional-column ablation knob.
 */

#include <gtest/gtest.h>

#include "dcache/dram_cache.hh"

namespace tsim
{
namespace
{

struct ExtHarness
{
    explicit ExtHarness(Design d, unsigned prefetch_degree,
                        bool conditional = true)
    {
        MainMemoryConfig mm_cfg;
        mm_cfg.capacityBytes = 1ULL << 26;
        mm_cfg.refreshEnabled = false;
        mm = std::make_unique<MainMemory>(eq, "mm", mm_cfg);
        DramCacheConfig cfg;
        cfg.capacityBytes = 1ULL << 20;
        cfg.channels = 2;
        cfg.prefetchDegree = prefetch_degree;
        cfg.tdramConditionalColumn = conditional;
        cfg.refreshEnabled = false;
        cache = makeDramCache(eq, d, cfg, *mm);
    }

    MemPacket
    doAccess(Addr addr, MemCmd cmd)
    {
        MemPacket pkt;
        pkt.id = next++;
        pkt.addr = addr;
        pkt.cmd = cmd;
        MemPacket out;
        bool done = false;
        cache->access(pkt, [&](MemPacket &p) {
            out = p;
            done = true;
        });
        while (!done && eq.step()) {
        }
        EXPECT_TRUE(done);
        return out;
    }

    EventQueue eq;
    std::unique_ptr<MainMemory> mm;
    std::unique_ptr<DramCacheCtrl> cache;
    PacketId next = 1;
};

TEST(Prefetcher, NextLineBecomesHit)
{
    ExtHarness h(Design::Tdram, 1);
    h.doAccess(0x10000, MemCmd::Read);  // miss -> prefetch 0x10040
    h.eq.run();
    EXPECT_EQ(h.cache->prefetchIssued.value(), 1.0);
    MemPacket r = h.doAccess(0x10040, MemCmd::Read);
    EXPECT_TRUE(outcomeIsHit(r.outcome));
    EXPECT_EQ(h.cache->prefetchUseful.value(), 1.0);
    h.eq.run();
}

TEST(Prefetcher, DegreeControlsCoverage)
{
    ExtHarness h(Design::CascadeLake, 3);
    h.doAccess(0x20000, MemCmd::Read);
    h.eq.run();
    EXPECT_EQ(h.cache->prefetchIssued.value(), 3.0);
    for (Addr i = 1; i <= 3; ++i) {
        MemPacket r =
            h.doAccess(0x20000 + i * lineBytes, MemCmd::Read);
        EXPECT_TRUE(outcomeIsHit(r.outcome)) << i;
    }
    h.eq.run();
    EXPECT_EQ(h.cache->prefetchUseful.value(), 3.0);
}

TEST(Prefetcher, SkipsResidentAndDirtyVictims)
{
    ExtHarness h(Design::Tdram, 1);
    // Make the next line already resident: no prefetch needed.
    h.cache->warmAccess(0x30040, false);
    h.doAccess(0x30000, MemCmd::Read);
    h.eq.run();
    EXPECT_EQ(h.cache->prefetchIssued.value(), 0.0);
    // Dirty victim in the prefetch target's set: prefetch declines.
    h.cache->warmAccess(0x40040, true);          // dirty resident
    h.doAccess(0x40000 + (1ULL << 20), MemCmd::Read);
    h.eq.run();
    // The +1 line maps onto 0x40040's set with a dirty victim.
    EXPECT_EQ(h.cache->prefetchIssued.value(), 0.0);
}

TEST(Prefetcher, DisabledByDefault)
{
    ExtHarness h(Design::Tdram, 0);
    h.doAccess(0x50000, MemCmd::Read);
    h.eq.run();
    EXPECT_EQ(h.cache->prefetchIssued.value(), 0.0);
}

TEST(ConditionalColumnAblation, MissCleanStreamsDiscardedData)
{
    ExtHarness cond(Design::Tdram, 0, true);
    ExtHarness nocond(Design::Tdram, 0, false);
    for (auto *h : {&cond, &nocond}) {
        h->cache->warmAccess(0x0, false);  // clean resident line
        h->doAccess(1ULL << 20, MemCmd::Read);  // same-set miss
        h->eq.run();
    }
    EXPECT_EQ(cond.cache->bytesDiscarded.value(), 0.0);
    EXPECT_EQ(nocond.cache->bytesDiscarded.value(), 64.0);
    // Both still fill and classify identically.
    EXPECT_EQ(cond.cache->outcomeCount(AccessOutcome::ReadMissClean),
              nocond.cache->outcomeCount(
                  AccessOutcome::ReadMissClean));
}

} // namespace
} // namespace tsim
