/**
 * @file
 * DRAM-cache controller tests: per-design protocol behaviour driven
 * with hand-built demand sequences (no workload generator), checking
 * outcome classification, Table II actions, forwarding paths, and
 * per-design traffic signatures.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dcache/dram_cache.hh"
#include "sim/rng.hh"

namespace tsim
{
namespace
{

/** Small system: one dcache design over a DDR5 main memory. */
struct DcacheHarness
{
    explicit DcacheHarness(Design d, unsigned ways = 1,
                           bool predictor = false)
    {
        MainMemoryConfig mm_cfg;
        mm_cfg.capacityBytes = 1ULL << 26;
        mm_cfg.refreshEnabled = false;  // run() must drain
        mm = std::make_unique<MainMemory>(eq, "mm", mm_cfg);
        DramCacheConfig cfg;
        cfg.capacityBytes = 1ULL << 20;  // 16 Ki lines
        cfg.channels = 2;
        cfg.ways = ways;
        cfg.predictor = predictor;
        cfg.refreshEnabled = false;
        cache = makeDramCache(eq, d, cfg, *mm);
    }

    /** Issue a demand and run until it completes. */
    MemPacket
    doAccess(Addr addr, MemCmd cmd, Addr pc = 0)
    {
        MemPacket pkt;
        pkt.id = nextId++;
        pkt.addr = addr;
        pkt.cmd = cmd;
        pkt.pc = pc;
        MemPacket result;
        bool done = false;
        cache->access(pkt, [&](MemPacket &p) {
            result = p;
            done = true;
        });
        // Writes may retire before their DRAM write issues; drain.
        while (!done && eq.step()) {
        }
        EXPECT_TRUE(done) << "demand never completed";
        return result;
    }

    void drain() { eq.run(); }

    /** Line address distinct per (set-conflict group, index). */
    Addr
    conflicting(Addr base, unsigned n) const
    {
        return base + n * (1ULL << 20);  // capacity apart: same set
    }

    EventQueue eq;
    std::unique_ptr<MainMemory> mm;
    std::unique_ptr<DramCacheCtrl> cache;
    PacketId nextId = 1;
};

// TicToc is deliberately absent: it never writes a clean victim back
// and leaves dirty victims resident on read misses, so the Table II
// traffic signatures below do not apply to it (its policy invariants
// live in tests/dcache_conformance_test.cpp). Banshee is page-grain
// and likewise conformance-tested.
const Design kAllCacheDesigns[] = {
    Design::CascadeLake, Design::Alloy, Design::Bear, Design::Ndc,
    Design::Tdram,       Design::TdramNoProbe, Design::Ideal,
};

/** Parameterized over every caching design. */
class PerDesign : public ::testing::TestWithParam<Design>
{};

TEST_P(PerDesign, ColdReadMissesThenHits)
{
    DcacheHarness h(GetParam());
    MemPacket first = h.doAccess(0x4000, MemCmd::Read);
    EXPECT_EQ(first.outcome, AccessOutcome::ReadMissInvalid);
    h.drain();  // let the fill land
    MemPacket second = h.doAccess(0x4000, MemCmd::Read);
    EXPECT_TRUE(outcomeIsHit(second.outcome));
    EXPECT_EQ(h.mm->reads.value(), 1.0);
}

TEST_P(PerDesign, WriteAllocatesDirtyThenReadHitsDirty)
{
    DcacheHarness h(GetParam());
    MemPacket w = h.doAccess(0x8000, MemCmd::Write);
    EXPECT_EQ(w.outcome, AccessOutcome::WriteMissInvalid);
    h.drain();
    MemPacket r = h.doAccess(0x8000, MemCmd::Read);
    EXPECT_EQ(r.outcome, AccessOutcome::ReadHitDirty);
    // Nothing needed main memory.
    EXPECT_EQ(h.mm->reads.value(), 0.0);
}

TEST_P(PerDesign, ReadMissDirtyWritesVictimBack)
{
    DcacheHarness h(GetParam());
    const Addr victim = 0x10000;
    h.doAccess(victim, MemCmd::Write);  // dirty resident line
    h.drain();
    const Addr line = h.conflicting(victim, 1);
    MemPacket r = h.doAccess(line, MemCmd::Read);
    EXPECT_EQ(r.outcome, AccessOutcome::ReadMissDirty);
    h.drain();
    // The dirty victim reached main memory exactly once.
    EXPECT_EQ(h.mm->writes.value(), 1.0);
    EXPECT_EQ(h.mm->reads.value(), 1.0);
    // And the new line is now resident.
    MemPacket again = h.doAccess(line, MemCmd::Read);
    EXPECT_TRUE(outcomeIsHit(again.outcome));
}

TEST_P(PerDesign, WriteMissDirtyPreservesVictim)
{
    DcacheHarness h(GetParam());
    const Addr victim = 0x20000;
    h.doAccess(victim, MemCmd::Write);
    h.drain();
    const Addr line = h.conflicting(victim, 2);
    MemPacket w = h.doAccess(line, MemCmd::Write);
    EXPECT_EQ(w.outcome, AccessOutcome::WriteMissDirty);
    h.drain();
    // TDRAM/NDC park the victim in the device-side buffer until an
    // unload opportunity (read-miss-clean slot, refresh, or explicit
    // command); force the explicit drain here.
    for (unsigned c = 0; c < h.cache->numChannels(); ++c)
        h.cache->channel(c).forceDrain();
    h.drain();
    EXPECT_EQ(h.mm->writes.value(), 1.0)
        << "dirty victim must be written back exactly once";
    MemPacket r = h.doAccess(line, MemCmd::Read);
    EXPECT_EQ(r.outcome, AccessOutcome::ReadHitDirty);
}

TEST_P(PerDesign, ReadHitNeverTouchesMainMemory)
{
    DcacheHarness h(GetParam());
    h.doAccess(0x40000, MemCmd::Read);
    h.drain();
    for (int i = 0; i < 5; ++i)
        h.doAccess(0x40000, MemCmd::Read);
    h.drain();
    EXPECT_EQ(h.mm->reads.value(), 1.0);
    EXPECT_EQ(h.mm->writes.value(), 0.0);
}

TEST_P(PerDesign, WarmAccessMatchesTimedOutcomes)
{
    DcacheHarness h(GetParam());
    h.cache->warmAccess(0x1000, false);
    h.cache->warmAccess(0x2000, true);
    MemPacket r = h.doAccess(0x1000, MemCmd::Read);
    EXPECT_EQ(r.outcome, AccessOutcome::ReadHitClean);
    MemPacket r2 = h.doAccess(0x2000, MemCmd::Read);
    EXPECT_EQ(r2.outcome, AccessOutcome::ReadHitDirty);
}

TEST_P(PerDesign, OutcomeCountersAddUp)
{
    DcacheHarness h(GetParam());
    Rng rng(42);
    for (int i = 0; i < 200; ++i) {
        h.doAccess(rng.range(1 << 15) * lineBytes,
                   rng.chance(0.3) ? MemCmd::Write : MemCmd::Read);
    }
    h.drain();
    double sum = 0;
    for (unsigned i = 0;
         i < static_cast<unsigned>(AccessOutcome::NumOutcomes); ++i)
        sum += h.cache->outcomes[i].value();
    EXPECT_EQ(sum, h.cache->demandReads.value() +
                       h.cache->demandWrites.value());
}

INSTANTIATE_TEST_SUITE_P(
    Designs, PerDesign, ::testing::ValuesIn(kAllCacheDesigns),
    [](const ::testing::TestParamInfo<Design> &pi) {
        std::string n = designName(pi.param);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

// --- Design-specific traffic signatures -------------------------------

TEST(CascadeLake, WriteDemandIssuesTagReadFirst)
{
    DcacheHarness h(Design::CascadeLake);
    h.doAccess(0x3000, MemCmd::Write);
    h.drain();
    double reads = 0;
    for (unsigned c = 0; c < h.cache->numChannels(); ++c)
        reads += h.cache->channel(c).issuedReads.value();
    // One tag+data read preceded the data write (§II-B1).
    EXPECT_EQ(reads, 1.0);
}

TEST(CascadeLake, DiscardedTagReadCountsAsUnuseful)
{
    DcacheHarness h(Design::CascadeLake);
    h.doAccess(0x5000, MemCmd::Write);  // miss-invalid: discard
    h.drain();
    EXPECT_EQ(h.cache->bytesDiscarded.value(), 64.0);
    EXPECT_EQ(h.cache->bytesDemandServing.value(), 64.0);
}

TEST(Bear, WriteHitSkipsTagRead)
{
    DcacheHarness h(Design::Bear);
    h.doAccess(0x6000, MemCmd::Write);  // allocate (uses tag read)
    h.drain();
    double reads_before = 0;
    for (unsigned c = 0; c < h.cache->numChannels(); ++c)
        reads_before += h.cache->channel(c).issuedReads.value();
    h.doAccess(0x6000, MemCmd::Write);  // hit: bypass
    h.drain();
    double reads_after = 0;
    for (unsigned c = 0; c < h.cache->numChannels(); ++c)
        reads_after += h.cache->channel(c).issuedReads.value();
    EXPECT_EQ(reads_after, reads_before);
}

TEST(Tdram, ReadMissCleanMovesNoCacheData)
{
    DcacheHarness h(Design::Tdram);
    h.doAccess(0x7000, MemCmd::Read);  // cold miss, fill
    h.drain();
    const double before = h.cache->bytesDemandServing.value() +
                          h.cache->bytesMaintenance.value() +
                          h.cache->bytesDiscarded.value();
    const Addr conflicting = h.conflicting(0x7000, 1);
    MemPacket r = h.doAccess(conflicting, MemCmd::Read);
    EXPECT_EQ(r.outcome, AccessOutcome::ReadMissClean);
    // Conditional response: only the (maintenance) fill moves data.
    h.drain();
    const double after = h.cache->bytesDemandServing.value() +
                         h.cache->bytesMaintenance.value() +
                         h.cache->bytesDiscarded.value();
    EXPECT_EQ(after - before, 64.0);
    EXPECT_EQ(h.cache->bytesDiscarded.value(), 0.0);
}

TEST(Tdram, WriteMissDirtyUsesFlushBufferNotDataBus)
{
    DcacheHarness h(Design::Tdram);
    const Addr victim = 0x9000;
    h.doAccess(victim, MemCmd::Write);
    h.drain();
    double to_ctrl_before = 0;
    for (unsigned c = 0; c < h.cache->numChannels(); ++c)
        to_ctrl_before += h.cache->channel(c).bytesToCtrl.value();
    h.doAccess(h.conflicting(victim, 3), MemCmd::Write);
    // Immediately after the demand completes, no victim data has
    // crossed to the controller (it sits in the flush buffer).
    double to_ctrl_now = 0;
    unsigned flush_entries = 0;
    for (unsigned c = 0; c < h.cache->numChannels(); ++c) {
        to_ctrl_now += h.cache->channel(c).bytesToCtrl.value();
        flush_entries += h.cache->channel(c).flushSize();
    }
    EXPECT_EQ(to_ctrl_now, to_ctrl_before);
    EXPECT_EQ(flush_entries, 1u);
}

TEST(Tdram, ReadServedFromFlushBuffer)
{
    DcacheHarness h(Design::Tdram);
    const Addr victim = 0xa000;
    h.doAccess(victim, MemCmd::Write);
    h.drain();
    h.doAccess(h.conflicting(victim, 1), MemCmd::Write);
    // victim now in the flush buffer; a read to it is served there.
    MemPacket r = h.doAccess(victim, MemCmd::Read);
    (void)r;
    EXPECT_EQ(h.cache->servedFromFlush.value(), 1.0);
    EXPECT_EQ(h.mm->reads.value(), 0.0);
    h.drain();
}

TEST(Tdram, WriteSupersedesFlushBufferEntry)
{
    DcacheHarness h(Design::Tdram);
    const Addr victim = 0xb000;
    h.doAccess(victim, MemCmd::Write);
    h.drain();
    h.doAccess(h.conflicting(victim, 1), MemCmd::Write);
    unsigned flush_before = 0;
    for (unsigned c = 0; c < h.cache->numChannels(); ++c)
        flush_before += h.cache->channel(c).flushSize();
    ASSERT_EQ(flush_before, 1u);
    bool buffered = false;
    for (unsigned c = 0; c < h.cache->numChannels(); ++c)
        buffered |= h.cache->channel(c).flushContains(victim);
    ASSERT_TRUE(buffered);
    // A new demand write to the buffered address supersedes the
    // older entry (the write itself may evict a *different* dirty
    // victim into the buffer, so check membership, not size).
    h.doAccess(victim, MemCmd::Write);
    bool still_buffered = false;
    double superseded = 0;
    for (unsigned c = 0; c < h.cache->numChannels(); ++c) {
        still_buffered |= h.cache->channel(c).flushContains(victim);
        superseded +=
            h.cache->channel(c).flushBuffer().superseded.value();
    }
    EXPECT_FALSE(still_buffered);
    EXPECT_EQ(superseded, 1.0);
    h.drain();
}

TEST(Forwarding, ReadHitsPendingFill)
{
    DcacheHarness h(Design::CascadeLake);
    // Complete a read miss; its fill write sits in the write queue.
    MemPacket r1 = h.doAccess(0xc000, MemCmd::Read);
    EXPECT_EQ(r1.outcome, AccessOutcome::ReadMissInvalid);
    // Immediately read again: forwarded from the pending write.
    MemPacket r2 = h.doAccess(0xc000, MemCmd::Read);
    EXPECT_TRUE(outcomeIsHit(r2.outcome));
    EXPECT_GE(h.cache->fwdFromWriteBuf.value(), 1.0);
    h.drain();
}

TEST(Ideal, ZeroTagCheckLatency)
{
    DcacheHarness h(Design::Ideal);
    h.doAccess(0xd000, MemCmd::Read);
    h.drain();
    EXPECT_EQ(h.cache->tagCheckLatency.mean(), 0.0);
}

TEST(NoCache, PassesThroughToMainMemory)
{
    DcacheHarness h(Design::NoCache);
    h.doAccess(0xe000, MemCmd::Read);
    h.doAccess(0xe000, MemCmd::Write);
    h.drain();
    EXPECT_EQ(h.mm->reads.value(), 1.0);
    EXPECT_EQ(h.mm->writes.value(), 1.0);
    // No cache-side DRAM activity at all.
    double acts = 0;
    for (unsigned c = 0; c < h.cache->numChannels(); ++c)
        acts += h.cache->channel(c).dataBankActs.value();
    EXPECT_EQ(acts, 0.0);
}

TEST(SetAssociative, ConflictsAbsorbedByWays)
{
    DcacheHarness direct(Design::Tdram, 1);
    DcacheHarness assoc(Design::Tdram, 4);
    // Four lines in the same direct-mapped set, interleaved so the
    // direct-mapped cache thrashes while 4 ways absorb everything.
    for (auto *h : {&direct, &assoc}) {
        for (int rep = 0; rep < 3; ++rep) {
            for (unsigned n = 0; n < 4; ++n) {
                h->doAccess(h->conflicting(0xf000, n), MemCmd::Read);
                h->drain();
            }
        }
    }
    EXPECT_GT(direct.cache->missRatio(), assoc.cache->missRatio());
    EXPECT_LT(assoc.cache->missRatio(), 0.4);  // only cold misses
}

TEST(Predictor, EarlyFetchOnPredictedMiss)
{
    DcacheHarness h(Design::CascadeLake, 1, true);
    // Train the predictor towards miss with streaming misses from
    // one PC.
    const Addr pc = 0x400;
    for (unsigned i = 0; i < 16; ++i) {
        h.doAccess((0x100 + i) * lineBytes * 977, MemCmd::Read, pc);
        h.drain();
    }
    EXPECT_GT(h.cache->predictedMiss.value(), 0.0);
}

TEST(Predictor, MispredictedHitCompletesOnceAndKeepsLineIntact)
{
    DcacheHarness h(Design::CascadeLake, 1, true);
    // Train the PC hard towards miss.
    const Addr pc = 0x400;
    for (unsigned i = 0; i < 16; ++i) {
        h.doAccess((0x100 + i) * lineBytes * 977, MemCmd::Read, pc);
        h.drain();
    }
    // Plant a dirty resident line, then read it with the miss-trained
    // PC: the predictor launches a wasted early fetch while the tag
    // read resolves to hit-dirty.
    const Addr line = 0x123 * 2 * lineBytes;
    h.doAccess(line, MemCmd::Write, 0x999);
    h.drain();
    const double mm_writes_before = h.mm->writes.value();
    const double wrong_before = h.cache->predictorWrongFetch.value();
    MemPacket r = h.doAccess(line, MemCmd::Read, pc);
    EXPECT_EQ(r.outcome, AccessOutcome::ReadHitDirty);
    h.drain();  // the wasted fetch lands after the hit completed
    EXPECT_GT(h.cache->predictorWrongFetch.value(), wrong_before);
    // Ordering: the late mispredicted fill must not clobber the
    // resident dirty line or trigger a spurious writeback...
    EXPECT_EQ(h.mm->writes.value(), mm_writes_before);
    MemPacket again = h.doAccess(line, MemCmd::Read, 0x998);
    EXPECT_EQ(again.outcome, AccessOutcome::ReadHitDirty);
    // ...and the eventual flush of that victim still happens exactly
    // once, in demand order.
    MemPacket evict =
        h.doAccess(h.conflicting(line, 1), MemCmd::Write, 0x997);
    EXPECT_EQ(evict.outcome, AccessOutcome::WriteMissDirty);
    h.drain();
    EXPECT_EQ(h.mm->writes.value(), mm_writes_before + 1.0);
}

TEST(Backpressure, ConflictBufferFullAppliesBackpressure)
{
    DcacheHarness h(Design::Tdram);
    // Flood one set: the head transaction begins, everything else
    // parks in the MSHR conflict FIFO (Table III: 32 entries).
    unsigned completions = 0;
    const unsigned n = 40;
    for (unsigned i = 0; i < n; ++i) {
        MemPacket pkt;
        pkt.id = h.nextId++;
        pkt.addr = h.conflicting(0x1000, i);
        pkt.cmd = MemCmd::Read;
        h.cache->access(pkt, [&](MemPacket &) { ++completions; });
    }
    MemPacket probe;
    probe.addr = 0x2000;  // different set, empty channel queues
    probe.cmd = MemCmd::Read;
    EXPECT_FALSE(h.cache->canAccept(probe))
        << "a full conflict buffer must push back on the LLC";
    h.drain();
    EXPECT_EQ(completions, n);
    EXPECT_TRUE(h.cache->canAccept(probe));
}

TEST(Backpressure, AdmissionTracksTheDesignsInitialOp)
{
    // Fill channel 0's read queue (64 entries) with distinct-set
    // demand reads: the first pops straight into issue on the idle
    // channel, so 66 floods guarantee a full queue behind it.
    auto flood_reads = [](DcacheHarness &h) {
        for (unsigned i = 0; i < 66; ++i) {
            MemPacket pkt;
            pkt.id = h.nextId++;
            // Even line index -> channel 0; skip the victim's set.
            pkt.addr = Addr(2 + 2 * i) * lineBytes;
            pkt.cmd = MemCmd::Read;
            h.cache->access(pkt, [](MemPacket &) {});
        }
    };

    // CascadeLake starts every demand — writes included — with a
    // tag+data read, so a full read queue rejects writes too.
    {
        DcacheHarness h(Design::CascadeLake);
        flood_reads(h);
        MemPacket w;
        w.addr = 200 * lineBytes;  // channel 0, untouched set
        w.cmd = MemCmd::Write;
        EXPECT_FALSE(h.cache->canAccept(w));
        h.drain();
        EXPECT_TRUE(h.cache->canAccept(w));
    }

    // TicToc elides the tag read for writes that cannot displace a
    // dirty victim: those admit through the (empty) write queue even
    // while the read queue is saturated. A write that WOULD displace
    // a dirty victim still needs the tag read, and is rejected.
    {
        DcacheHarness h(Design::TicToc);
        const Addr victim = 0x10000;  // line 1024: channel 0
        h.doAccess(victim, MemCmd::Write);  // dirty resident
        h.drain();
        flood_reads(h);
        MemPacket elided;
        elided.addr = 200 * lineBytes;  // channel 0, cold set
        elided.cmd = MemCmd::Write;
        EXPECT_TRUE(h.cache->canAccept(elided))
            << "elided write must not wait on the read queue";
        MemPacket evicting;
        evicting.addr = h.conflicting(victim, 1);  // dirty victim
        evicting.cmd = MemCmd::Write;
        EXPECT_FALSE(h.cache->canAccept(evicting))
            << "dirty-evicting write still needs the tag read";
        h.drain();
        EXPECT_TRUE(h.cache->canAccept(evicting));
    }
}

TEST(Conservation, EveryDemandCompletesOnce)
{
    for (Design d : kAllCacheDesigns) {
        DcacheHarness h(d);
        Rng rng(7);
        unsigned completions = 0;
        const unsigned n = 300;
        for (unsigned i = 0; i < n; ++i) {
            MemPacket pkt;
            pkt.id = h.nextId++;
            pkt.addr = rng.range(1 << 14) * lineBytes;
            pkt.cmd =
                rng.chance(0.4) ? MemCmd::Write : MemCmd::Read;
            h.cache->access(pkt,
                            [&](MemPacket &) { ++completions; });
        }
        h.drain();
        EXPECT_EQ(completions, n) << designName(d);
    }
}

} // namespace
} // namespace tsim
