/**
 * @file
 * Fault-injection tests for the tag/data ECC (§III-C3): exhaustive
 * single-bit correction, double-bit detection, and the paper's
 * 16-bit tag-entry packing.
 */

#include <gtest/gtest.h>

#include "sim/rng.hh"
#include "tdram/ecc.hh"

namespace tsim
{
namespace
{

TEST(Secded64, CleanWordDecodesOk)
{
    auto w = Secded64::encode(0xdeadbeefcafebabeULL);
    EXPECT_EQ(Secded64::decode(w), EccStatus::Ok);
    EXPECT_EQ(w.data, 0xdeadbeefcafebabeULL);
}

TEST(Secded64, AllZerosAndAllOnes)
{
    for (std::uint64_t v : {0ULL, ~0ULL}) {
        auto w = Secded64::encode(v);
        EXPECT_EQ(Secded64::decode(w), EccStatus::Ok);
        EXPECT_EQ(w.data, v);
    }
}

/** Exhaustive single-bit injection over all 72 codeword positions. */
class Secded64SingleBit : public ::testing::TestWithParam<unsigned>
{};

TEST_P(Secded64SingleBit, CorrectsAnySingleFlip)
{
    const unsigned pos = GetParam();
    Rng rng(pos + 1);
    for (int trial = 0; trial < 50; ++trial) {
        const std::uint64_t v = rng.next();
        auto w = Secded64::encode(v);
        Secded64::injectError(w, pos);
        EXPECT_EQ(Secded64::decode(w), EccStatus::Corrected)
            << "pos " << pos;
        EXPECT_EQ(w.data, v) << "pos " << pos;
    }
}

INSTANTIATE_TEST_SUITE_P(AllPositions, Secded64SingleBit,
                         ::testing::Range(0u, 72u));

TEST(Secded64, DetectsDoubleErrors)
{
    Rng rng(7);
    for (int trial = 0; trial < 500; ++trial) {
        const std::uint64_t v = rng.next();
        auto w = Secded64::encode(v);
        const unsigned a = static_cast<unsigned>(rng.range(72));
        unsigned b;
        do {
            b = static_cast<unsigned>(rng.range(72));
        } while (b == a);
        Secded64::injectError(w, a);
        Secded64::injectError(w, b);
        EXPECT_EQ(Secded64::decode(w), EccStatus::Uncorrectable)
            << "positions " << a << "," << b;
    }
}

TEST(SecdedTag, CleanWordDecodesOk)
{
    auto w = SecdedTag::encode(0xbeef);
    EXPECT_EQ(SecdedTag::decode(w), EccStatus::Ok);
    EXPECT_EQ(w.data, 0xbeef);
}

/** Exhaustive single-bit injection over all 22 positions x values. */
class SecdedTagSingleBit : public ::testing::TestWithParam<unsigned>
{};

TEST_P(SecdedTagSingleBit, CorrectsAnySingleFlip)
{
    const unsigned pos = GetParam();
    for (unsigned v = 0; v < 0x10000; v += 257) {
        auto w = SecdedTag::encode(static_cast<std::uint16_t>(v));
        SecdedTag::injectError(w, pos);
        ASSERT_EQ(SecdedTag::decode(w), EccStatus::Corrected)
            << "pos " << pos << " value " << v;
        ASSERT_EQ(w.data, v) << "pos " << pos;
    }
}

INSTANTIATE_TEST_SUITE_P(AllPositions, SecdedTagSingleBit,
                         ::testing::Range(0u, 22u));

TEST(SecdedTag, DetectsDoubleErrorsExhaustively)
{
    // All position pairs for a handful of payloads.
    for (std::uint16_t v : {std::uint16_t(0x0000),
                            std::uint16_t(0xffff),
                            std::uint16_t(0x3a5c)}) {
        for (unsigned a = 0; a < 22; ++a) {
            for (unsigned b = a + 1; b < 22; ++b) {
                auto w = SecdedTag::encode(v);
                SecdedTag::injectError(w, a);
                SecdedTag::injectError(w, b);
                ASSERT_EQ(SecdedTag::decode(w),
                          EccStatus::Uncorrectable)
                    << a << "," << b << " value " << v;
            }
        }
    }
}

TEST(SecdedTag, CheckFitsEightBitBudget)
{
    // The paper's budget: 16-bit tag+meta leaves 8 ECC bits; our
    // (22,16) SECDED uses 6 of them.
    for (unsigned v = 0; v < 0x10000; v += 997) {
        auto w = SecdedTag::encode(static_cast<std::uint16_t>(v));
        EXPECT_LT(w.check, 1u << 6);
    }
}

TEST(TagEntryBits, PackRoundTrips)
{
    for (std::uint16_t tag = 0; tag < 0x4000; tag += 377) {
        for (bool valid : {false, true}) {
            for (bool dirty : {false, true}) {
                TagEntryBits e;
                e.tag14 = tag;
                e.valid = valid;
                e.dirty = dirty;
                TagEntryBits back = TagEntryBits::unpack(e.pack());
                EXPECT_EQ(back.tag14, tag);
                EXPECT_EQ(back.valid, valid);
                EXPECT_EQ(back.dirty, dirty);
            }
        }
    }
}

TEST(TagEntryBits, SurvivesEccRoundTripWithInjection)
{
    // End-to-end: pack a tag entry, protect it, corrupt one bit
    // anywhere, recover the exact entry — the on-die correction the
    // paper places before the comparator.
    Rng rng(3);
    for (int trial = 0; trial < 2000; ++trial) {
        TagEntryBits e;
        e.tag14 = static_cast<std::uint16_t>(rng.range(1 << 14));
        e.valid = rng.chance(0.5);
        e.dirty = rng.chance(0.5);
        auto w = SecdedTag::encode(e.pack());
        SecdedTag::injectError(
            w, static_cast<unsigned>(rng.range(22)));
        ASSERT_NE(SecdedTag::decode(w), EccStatus::Uncorrectable);
        TagEntryBits back = TagEntryBits::unpack(w.data);
        ASSERT_EQ(back.tag14, e.tag14);
        ASSERT_EQ(back.valid, e.valid);
        ASSERT_EQ(back.dirty, e.dirty);
    }
}

} // namespace
} // namespace tsim
