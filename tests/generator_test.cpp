/**
 * @file
 * Tests for the synthetic workload generators and the page-scatter
 * translation.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/profiles.hh"

namespace tsim
{
namespace
{

TEST(StreamGenerator, SequentialAndWraps)
{
    StreamGenerator g(0x1000, 8 * lineBytes, 1, 0.0);
    Rng rng(1);
    for (int lap = 0; lap < 3; ++lap) {
        for (unsigned i = 0; i < 8; ++i) {
            MemOp op = g.next(rng);
            EXPECT_EQ(op.addr, 0x1000 + i * lineBytes);
            EXPECT_FALSE(op.isStore);
        }
    }
}

TEST(StreamGenerator, PhaseOffsetsStart)
{
    StreamGenerator g(0, 100 * lineBytes, 1, 0.0, 0.5);
    Rng rng(1);
    EXPECT_EQ(g.next(rng).addr, 50 * lineBytes);
}

TEST(StreamGenerator, StoreFractionRoughlyHonored)
{
    StreamGenerator g(0, 1 << 20, 2, 0.4);
    Rng rng(7);
    int stores = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        stores += g.next(rng).isStore;
    EXPECT_NEAR(stores / double(n), 0.4, 0.02);
}

TEST(RandomGenerator, StaysInRegion)
{
    const Addr base = 1 << 20;
    const std::uint64_t bytes = 1 << 16;
    RandomGenerator g(base, bytes, 0.5);
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        MemOp op = g.next(rng);
        ASSERT_GE(op.addr, base);
        ASSERT_LT(op.addr, base + bytes);
    }
}

TEST(ZipfGenerator, HeavyAlphaConcentrates)
{
    ZipfGenerator g(0, 1 << 22, 1.3, 0.0);  // 64 Ki lines
    Rng rng(5);
    std::map<Addr, int> counts;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        ++counts[g.next(rng).addr];
    // Top-16 lines should hold a large share of accesses.
    std::vector<int> freq;
    for (auto &[a, c] : counts)
        freq.push_back(c);
    std::sort(freq.rbegin(), freq.rend());
    int top = 0;
    for (int i = 0; i < 16 && i < static_cast<int>(freq.size()); ++i)
        top += freq[static_cast<size_t>(i)];
    EXPECT_GT(top / double(n), 0.2);
}

TEST(ZipfGenerator, FlatAlphaSpreads)
{
    ZipfGenerator g(0, 1 << 22, 0.6, 0.0);
    Rng rng(5);
    std::set<Addr> uniq;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        uniq.insert(g.next(rng).addr);
    // Far less concentration: most draws are distinct lines.
    EXPECT_GT(uniq.size(), static_cast<std::size_t>(n / 2));
}

TEST(StencilGenerator, LastArrayIsStoreTarget)
{
    StencilGenerator g(0, 4 * 64 * lineBytes, 4);
    Rng rng(2);
    int stores = 0;
    for (int i = 0; i < 400; ++i)
        stores += g.next(rng).isStore;
    EXPECT_EQ(stores, 100);  // exactly one array in four is written
}

TEST(PhaseGenerator, CyclesThroughPhases)
{
    PhaseGenerator g;
    g.add(std::make_unique<StreamGenerator>(0x0, 64 * lineBytes, 1,
                                            0.0),
          10);
    g.add(std::make_unique<StreamGenerator>(0x100000, 64 * lineBytes,
                                            1, 1.0),
          5);
    Rng rng(1);
    // Phase 0: 10 loads from the low region.
    for (int i = 0; i < 10; ++i) {
        MemOp op = g.next(rng);
        EXPECT_LT(op.addr, 0x100000u);
        EXPECT_FALSE(op.isStore);
    }
    // Phase 1: 5 stores from the high region.
    for (int i = 0; i < 5; ++i) {
        MemOp op = g.next(rng);
        EXPECT_GE(op.addr, 0x100000u);
        EXPECT_TRUE(op.isStore);
    }
    // Wraps back to phase 0.
    EXPECT_LT(g.next(rng).addr, 0x100000u);
    EXPECT_EQ(g.currentPhase(), 0u);
}

TEST(PageScatter, BijectiveOverSpace)
{
    auto inner = std::make_unique<StreamGenerator>(0, 1 << 20, 1, 0.0);
    PageScatterGenerator g(std::move(inner), 1 << 24, 42);
    std::set<std::uint64_t> seen;
    const std::uint64_t pages = 1ULL << g.spaceBits();
    for (std::uint64_t p = 0; p < pages; ++p) {
        const std::uint64_t phys = g.permute(p);
        ASSERT_LT(phys, pages);
        ASSERT_TRUE(seen.insert(phys).second)
            << "page " << p << " collides";
    }
}

TEST(PageScatter, PreservesOffsetWithinPage)
{
    auto inner = std::make_unique<RandomGenerator>(0, 1 << 22, 0.0);
    PageScatterGenerator g(std::move(inner), 1 << 22, 9);
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        // The inner generator emits line-aligned addresses; their
        // in-page offset must survive translation.
        MemOp op = g.next(rng);
        EXPECT_EQ(op.addr % lineBytes, 0u);
    }
}

TEST(Profiles, All28Present)
{
    EXPECT_EQ(allWorkloads().size(), 28u);
    std::set<std::string> names;
    for (const auto &w : allWorkloads())
        EXPECT_TRUE(names.insert(w.name).second) << w.name;
}

TEST(Profiles, GroupsBalanced)
{
    unsigned high = 0;
    for (const auto &w : allWorkloads())
        high += w.highMiss;
    EXPECT_GE(high, 10u);
    EXPECT_LE(high, 18u);
}

TEST(Profiles, FindWorkload)
{
    EXPECT_EQ(findWorkload("ft.C").kind, GenKind::Stream);
    EXPECT_TRUE(findWorkload("bfs.25").highMiss);
    EXPECT_FALSE(findWorkload("ep.C").highMiss);
}

TEST(Profiles, RepresentativeSubsetValid)
{
    auto reps = representativeWorkloads();
    EXPECT_GE(reps.size(), 8u);
    unsigned high = 0;
    for (const auto &w : reps)
        high += w.highMiss;
    EXPECT_GE(high, 3u);
    EXPECT_GE(reps.size() - high, 3u);
}

TEST(Profiles, GeneratorsStayInsidePhysicalSpace)
{
    const std::uint64_t cache = 16ULL << 20;
    for (const auto &w : allWorkloads()) {
        const std::uint64_t space = physicalSpaceBytes(w, cache);
        auto gen = makeGenerator(w, 0, 8, cache);
        Rng rng(1);
        for (int i = 0; i < 2000; ++i) {
            MemOp op = gen->next(rng);
            ASSERT_LT(op.addr, space) << w.name;
        }
    }
}

TEST(Profiles, SharedRegionIsSharedAcrossCores)
{
    // Two cores of a zipf workload must overlap on hot lines.
    const auto &wl = findWorkload("bfs.22");
    const std::uint64_t cache = 16ULL << 20;
    auto g0 = makeGenerator(wl, 0, 8, cache);
    auto g1 = makeGenerator(wl, 1, 8, cache);
    Rng r0(1), r1(2);
    std::set<Addr> a0, a1;
    for (int i = 0; i < 20000; ++i) {
        a0.insert(lineAlign(g0->next(r0).addr));
        a1.insert(lineAlign(g1->next(r1).addr));
    }
    std::size_t common = 0;
    for (Addr a : a0)
        common += a1.count(a);
    EXPECT_GT(common, a0.size() / 10);
}

/** Determinism: same seed, same stream. */
class GeneratorDeterminism
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(GeneratorDeterminism, SameSeedSameStream)
{
    const auto &wl = findWorkload(GetParam());
    auto g1 = makeGenerator(wl, 2, 8, 16ULL << 20);
    auto g2 = makeGenerator(wl, 2, 8, 16ULL << 20);
    Rng r1(99), r2(99);
    for (int i = 0; i < 5000; ++i) {
        MemOp a = g1->next(r1);
        MemOp b = g2->next(r2);
        ASSERT_EQ(a.addr, b.addr);
        ASSERT_EQ(a.isStore, b.isStore);
    }
}

INSTANTIATE_TEST_SUITE_P(Kinds, GeneratorDeterminism,
                         ::testing::Values("ft.C", "is.C", "bfs.25",
                                           "bt.D", "pr.22"));

} // namespace
} // namespace tsim
