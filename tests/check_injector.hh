/**
 * @file
 * Violation-injection harness for the protocol checker
 * (DESIGN.md §11): build a synthetic, protocol-legal event stream for
 * one channel, audit it (must be clean), then perturb a single field
 * by one tick / one bit and assert the rule engine names exactly the
 * breached rule. Keeping the builder separate from the test bodies
 * lets every injection state its baseline and its mutation in a few
 * lines.
 */

#ifndef TSIM_TESTS_CHECK_INJECTOR_HH
#define TSIM_TESTS_CHECK_INJECTOR_HH

#include <string>
#include <vector>

#include "check/check.hh"
#include "mem/types.hh"
#include "trace/trace.hh"

namespace tsim
{

/** Outcome of auditing one synthetic stream. */
struct AuditResult
{
    std::uint64_t events = 0;
    std::uint64_t violationCount = 0;
    std::vector<CheckViolation> violations;

    bool clean() const { return violationCount == 0; }

    /** True if any stored violation names @p rule. */
    bool
    saw(const std::string &rule) const
    {
        for (const CheckViolation &v : violations) {
            if (rule == v.rule)
                return true;
        }
        return false;
    }

    /** All violations, one formatted line each (assert messages). */
    std::string
    describe() const
    {
        if (violations.empty())
            return "(no violations)";
        std::string out;
        for (const CheckViolation &v : violations) {
            out += ProtocolChecker::formatViolation(v);
            out += '\n';
        }
        return out;
    }
};

/**
 * Synthetic single-channel event stream. Records are appended in
 * emission order (the order the inline hooks would see them) and fed
 * to a fresh ProtocolChecker by audit(); mutations edit records()
 * in place between the clean audit and the perturbed one.
 */
class CheckStream
{
  public:
    explicit CheckStream(const CheckerConfig &cfg) : _cfg(cfg) {}

    const TimingParams &timing() const { return _cfg.timing; }

    /** Data-done latency of a close-page (ACT+RD) read. */
    Tick
    readAux() const
    {
        const TimingParams &t = _cfg.timing;
        return t.tRCD + t.tCL + t.dataBurst();
    }

    /** Data-done latency of a close-page (ACT+WR) write. */
    Tick
    writeAux() const
    {
        const TimingParams &t = _cfg.timing;
        return t.tRCD_WR + t.tCWL + t.dataBurst();
    }

    /** Append an arbitrary record (escape hatch for odd cases). */
    TraceRecord &
    push(TraceKind kind, Tick tick, Addr addr, unsigned bank,
         std::uint64_t aux, std::uint32_t extra)
    {
        TraceRecord r{};
        r.tick = tick;
        r.seq = _seq++;
        r.addr = addr;
        r.aux = aux;
        r.kind = static_cast<std::uint8_t>(kind);
        r.channel = 0;
        r.bank = static_cast<std::uint16_t>(bank);
        r.extra = extra;
        _records.push_back(r);
        return _records.back();
    }

    /** Conventional read; extra bit 0 marks an open-page row hit. */
    TraceRecord &
    read(Tick tick, unsigned bank, std::uint32_t extra = 0)
    {
        return push(TraceKind::Read, tick, addrOf(bank), bank,
                    readAux(), extra);
    }

    TraceRecord &
    write(Tick tick, unsigned bank, std::uint32_t extra = 0)
    {
        return push(TraceKind::Write, tick, addrOf(bank), bank,
                    writeAux(), extra);
    }

    /**
     * ActRd with its tag-compare outcome; emits the lockstep
     * HmResult as the channel does (hmAtColumn: at data-done).
     */
    TraceRecord &
    actRd(Tick tick, unsigned bank, bool hit, bool valid, bool dirty)
    {
        const bool transfer = hit || (!hit && valid && dirty) ||
                              !_cfg.conditionalColumn;
        push(TraceKind::ActRd, tick, addrOf(bank), bank, readAux(),
             packTagBits(hit, valid, dirty, false) |
                 (transfer ? 16u : 0u));
        const Tick hm_lat = _cfg.hmAtColumn
                                ? readAux()
                                : _cfg.timing.hmLatency();
        push(TraceKind::HmResult, tick + hm_lat, addrOf(bank), bank,
             hm_lat, packTagBits(hit, valid, dirty, false));
        // The HM push may have reallocated; re-index the command.
        return _records[_records.size() - 2];
    }

    /** Probe + its lockstep HmResult (always on the HM bus). */
    TraceRecord &
    probe(Tick tick, unsigned bank, bool hit = true, bool valid = true,
          bool dirty = false)
    {
        const Tick hm_lat = _cfg.timing.hmLatency();
        push(TraceKind::Probe, tick, addrOf(bank), bank, hm_lat,
             packTagBits(hit, valid, dirty, true));
        push(TraceKind::HmResult, tick + hm_lat, addrOf(bank), bank,
             hm_lat, packTagBits(hit, valid, dirty, true));
        return _records[_records.size() - 2];
    }

    TraceRecord &
    refresh(Tick tick)
    {
        return push(TraceKind::Refresh, tick, 0, traceBankNone,
                    _cfg.timing.tRFC, 0);
    }

    /** Remap install opening a fill group (Banshee page-grain layer). */
    TraceRecord &
    remap(Tick tick, Addr page, Addr victim, bool victim_valid,
          std::uint32_t group)
    {
        return push(TraceKind::Remap, tick, page, traceBankNone, victim,
                    (victim_valid ? 1u : 0u) |
                        (group << traceGroupShift));
    }

    /** Flagged page-fill write belonging to fill group @p group. */
    TraceRecord &
    fillWrite(Tick tick, unsigned bank, Addr addr, std::uint32_t group)
    {
        return push(TraceKind::Write, tick, addr, bank, writeAux(),
                    traceFillFlag | (group << traceGroupShift));
    }

    /** Flagged victim-spill read belonging to fill group @p group. */
    TraceRecord &
    spillRead(Tick tick, unsigned bank, Addr addr, std::uint32_t group)
    {
        return push(TraceKind::Read, tick, addr, bank, readAux(),
                    traceSpillFlag | (group << traceGroupShift));
    }

    /** Address every record of @p bank uses (HM lockstep matching). */
    static Addr addrOf(unsigned bank) { return Addr(bank) * lineBytes; }

    std::vector<TraceRecord> &records() { return _records; }

    /** Last appended record (mutation target). */
    TraceRecord &last() { return _records.back(); }

    /** Feed the stream to a fresh checker and collect the verdict. */
    AuditResult
    audit() const
    {
        ProtocolChecker chk;
        chk.addChannel(_cfg);
        for (const TraceRecord &r : _records)
            chk.onRecord(r);
        chk.finish();
        AuditResult res;
        res.events = chk.eventsChecked();
        res.violationCount = chk.violationCount();
        res.violations = chk.violations();
        return res;
    }

  private:
    CheckerConfig _cfg;
    std::vector<TraceRecord> _records;
    std::uint64_t _seq = 0;
};

} // namespace tsim

#endif // TSIM_TESTS_CHECK_INJECTOR_HH
