/**
 * @file
 * Differential test of the incremental channel scheduler.
 *
 * Replays identical adversarial request streams — bursty arrivals,
 * hot banks/rows, write floods that trip the drain hysteresis, probe
 * retires via removeRead() — through the frozen reference scheduler
 * (tests/legacy_channel.*, the pre-rewrite O(n)-scan implementation)
 * and the production incremental one, and demands a byte-identical
 * observable trace: every completion callback (kind, id, tick, tag
 * bits), every flush-buffer arrival, and the full stats dump.
 *
 * Covered: all four device kinds x both page policies.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "dram/channel.hh"
#include "legacy_channel.hh"
#include "sim/rng.hh"

namespace tsim
{
namespace
{

constexpr std::uint64_t kCap = 1ULL << 24;

struct SchedParam
{
    const char *name;
    bool inDramTags;
    bool hmAtColumn;
    bool probe;
    PagePolicy page;
};

/** One pre-generated request, independent of any channel state. */
struct StreamItem
{
    Tick gap = 0;      ///< delay before trying the next arrival
    bool write = false;
    Addr addr = 0;
    bool wantTag = false;
};

/**
 * Build the adversarial stream for @p seed: bursts (gap 0) mixed with
 * idle gaps, write floods that push the queue past writeHigh, and a
 * small row/bank working set with address reuse for conflicts.
 */
std::vector<StreamItem>
buildStream(std::uint32_t seed, unsigned total, bool in_dram_tags)
{
    Rng rng(seed);
    std::vector<StreamItem> items(total);
    unsigned flood = 0;  // remaining items of a write flood
    Addr last = 0;
    for (unsigned i = 0; i < total; ++i) {
        StreamItem &it = items[i];
        if (flood == 0 && rng.chance(0.03))
            flood = 40 + static_cast<unsigned>(rng.range(40));
        if (flood > 0) {
            --flood;
            it.write = rng.chance(0.9);
        } else {
            it.write = rng.chance(0.3);
        }
        it.gap = rng.chance(0.6)
                     ? 0
                     : static_cast<Tick>(rng.range(5000));
        if (rng.chance(0.15)) {
            it.addr = last;  // same-line reuse
        } else {
            it.addr = rng.range(4096) * lineBytes;  // hot 4 MiB set
        }
        last = it.addr;
        it.wantTag = in_dram_tags && rng.chance(0.9);
    }
    return items;
}

/** Deterministic per-line tag state, independent of lookup order. */
TagResult
tagsFor(Addr a, std::uint32_t seed)
{
    Rng r(seed ^ (static_cast<std::uint32_t>(a / lineBytes) *
                  2654435761u));
    TagResult t;
    t.valid = r.chance(0.9);
    t.hit = t.valid && r.chance(0.5);
    t.dirty = t.valid && r.chance(0.4);
    t.victimAddr = t.hit ? lineAlign(a) : (lineAlign(a) ^ (kCap / 2));
    return t;
}

/**
 * Replay the stream through a channel of type @p ChanT (with request
 * type @p ReqT), recording the full observable trace.
 */
template <typename ChanT, typename ReqT>
void
replay(const SchedParam &p, std::uint32_t seed, unsigned total,
       std::vector<std::string> &log, std::string &stats)
{
    EventQueue eq;
    AddressMap map(kCap, 1, 16, 1024);
    ChannelConfig cfg;
    cfg.refreshEnabled = true;
    cfg.pagePolicy = p.page;
    cfg.inDramTags = p.inDramTags;
    cfg.conditionalColumn = p.inDramTags;
    cfg.hmAtColumn = p.hmAtColumn;
    cfg.enableProbe = p.probe;
    cfg.hasFlushBuffer = p.inDramTags;
    cfg.opportunisticDrain = !p.hmAtColumn;
    ChanT chan(eq, "ch", cfg, map);

    chan.peekTags = [seed](Addr a) { return tagsFor(a, seed); };
    chan.onFlushArrive = [&](Addr a, Tick t) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "flush %llx @%llu",
                      (unsigned long long)a, (unsigned long long)t);
        log.emplace_back(buf);
    };

    const std::vector<StreamItem> items =
        buildStream(seed, total, p.inDramTags);
    std::size_t next = 0;

    std::function<void()> arrive = [&] {
        while (next < items.size()) {
            const StreamItem &it = items[next];
            if (it.write ? !chan.canAcceptWrite()
                         : !chan.canAcceptRead()) {
                eq.scheduleIn(200, [&] { arrive(); });
                return;
            }
            ReqT r;
            r.id = next;
            r.addr = it.addr;
            if (p.inDramTags) {
                r.op = it.write ? ChanOp::ActWr : ChanOp::ActRd;
            } else {
                r.op = it.write ? ChanOp::Write : ChanOp::Read;
            }
            if (it.wantTag) {
                r.onTagResult = [&, id = next](Tick t,
                                               const TagResult &tr) {
                    char buf[96];
                    std::snprintf(
                        buf, sizeof(buf), "tag %llu @%llu h%dv%dd%dp%d",
                        (unsigned long long)id, (unsigned long long)t,
                        tr.hit, tr.valid, tr.dirty, tr.viaProbe);
                    log.emplace_back(buf);
                    // Mirror the TDRAM front-end: a probe result of
                    // miss-clean retires the queued read early.
                    if (tr.viaProbe && !tr.hit &&
                        !(tr.valid && tr.dirty)) {
                        chan.removeRead(id);
                    }
                };
            }
            r.onDataDone = [&, id = next](Tick t) {
                char buf[64];
                std::snprintf(buf, sizeof(buf), "data %llu @%llu",
                              (unsigned long long)id,
                              (unsigned long long)t);
                log.emplace_back(buf);
            };
            const Tick gap = it.gap;
            ++next;
            chan.enqueue(std::move(r));
            if (gap > 0) {
                if (next < items.size())
                    eq.scheduleIn(gap, [&] { arrive(); });
                return;
            }
        }
    };
    arrive();

    // NDC's victim buffer drains only via forced RES when full, so
    // residual entries are expected to stay put; only wait for a
    // clean flush buffer on opportunistically-draining devices.
    const bool wait_flush = cfg.hasFlushBuffer && cfg.opportunisticDrain;
    Tick limit = nsToTicks(2000);
    while (next < items.size() ||
           chan.readQSize() + chan.writeQSize() > 0 ||
           (wait_flush && chan.flushSize() > 0)) {
        eq.run(limit);
        limit += nsToTicks(2000);
        ASSERT_LT(limit, nsToTicks(500000000)) << "replay hung";
    }
    eq.run(limit + nsToTicks(3000));  // trailing completions

    StatGroup g("ch");
    chan.regStats(g);
    std::ostringstream os;
    g.dump(os);
    stats = os.str();
}

class ChannelSched : public ::testing::TestWithParam<SchedParam>
{};

TEST_P(ChannelSched, MatchesReferenceScheduler)
{
    const SchedParam p = GetParam();
    for (std::uint32_t seed : {11u, 42u, 1234u}) {
        std::vector<std::string> log_new, log_ref;
        std::string stats_new, stats_ref;
        replay<DramChannel, ChanReq>(p, seed, 1500, log_new,
                                     stats_new);
        replay<LegacyDramChannel, LegacyChanReq>(p, seed, 1500,
                                                 log_ref, stats_ref);

        ASSERT_EQ(log_new.size(), log_ref.size())
            << "trace length diverged (seed " << seed << ")";
        for (std::size_t i = 0; i < log_new.size(); ++i) {
            ASSERT_EQ(log_new[i], log_ref[i])
                << "trace diverged at entry " << i << " (seed "
                << seed << ")";
        }
        EXPECT_EQ(stats_new, stats_ref)
            << "stats diverged (seed " << seed << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndPolicies, ChannelSched,
    ::testing::Values(
        SchedParam{"conventional_close", false, false, false,
                   PagePolicy::Close},
        SchedParam{"conventional_open", false, false, false,
                   PagePolicy::Open},
        SchedParam{"ndc_close", true, true, false, PagePolicy::Close},
        SchedParam{"ndc_open", true, true, false, PagePolicy::Open},
        SchedParam{"tdram_close", true, false, true,
                   PagePolicy::Close},
        SchedParam{"tdram_open", true, false, true, PagePolicy::Open},
        SchedParam{"tdram_noprobe_close", true, false, false,
                   PagePolicy::Close},
        SchedParam{"tdram_noprobe_open", true, false, false,
                   PagePolicy::Open}),
    [](const ::testing::TestParamInfo<SchedParam> &pi) {
        return std::string(pi.param.name);
    });

} // namespace
} // namespace tsim
