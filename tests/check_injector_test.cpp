/**
 * @file
 * Violation-injection matrix (DESIGN.md §11): for every rule in the
 * checker's table, a synthetic protocol-legal stream audits clean,
 * and a single-field perturbation (±1 tick, one flipped bit, one
 * dropped record) is flagged under exactly the breached rule's name.
 * A coverage test pins the matrix to checkRules(): adding a rule
 * without an injection fails the suite.
 */

#include <gtest/gtest.h>

#include <iterator>
#include <set>
#include <string>

#include "check_injector.hh"

namespace tsim
{
namespace
{

CheckerConfig
convCfg()
{
    CheckerConfig c;
    c.timing = hbm3CacheTimings();
    return c;
}

CheckerConfig
openCfg()
{
    CheckerConfig c = convCfg();
    c.openPage = true;
    return c;
}

CheckerConfig
tdramCfg()
{
    CheckerConfig c = convCfg();
    c.inDramTags = true;
    c.conditionalColumn = true;
    c.enableProbe = true;
    c.hasFlushBuffer = true;
    c.flushEntries = 16;
    c.opportunisticDrain = true;
    return c;
}

CheckerConfig
noProbeCfg()
{
    CheckerConfig c = tdramCfg();
    c.enableProbe = false;
    return c;
}

CheckerConfig
noDrainCfg()
{
    CheckerConfig c = tdramCfg();
    c.opportunisticDrain = false;
    return c;
}

CheckerConfig
demandCfg()
{
    CheckerConfig c;
    c.demandOnly = true;
    return c;
}

CheckerConfig
bansheeCfg()
{
    CheckerConfig c = convCfg();
    c.remapTable = true;
    c.fillGroupLines = 2;
    c.pageBytes = 4096;
    return c;
}

/**
 * One injection: a legal baseline stream and a minimal perturbation
 * whose audit must name @c rule. Captureless lambdas keep each case
 * to a handful of lines.
 */
struct Injection
{
    const char *name;
    const char *rule;
    CheckerConfig (*config)();
    void (*build)(CheckStream &);
    void (*mutate)(CheckStream &);
};

const Injection kInjections[] = {
    {"CaSlotProbeCollision", "ca-slot", tdramCfg,
     [](CheckStream &s) {
         s.probe(0, 0);
         s.probe(hmBusOccupancy, 1);
     },
     [](CheckStream &s) {
         // Second probe lands inside the first command clock.
         const Tick shift = hmBusOccupancy - s.timing().clkPeriod + 1;
         s.records()[2].tick -= shift;
         s.records()[3].tick -= shift;
     }},
    {"ActToActOneTickEarly", "act-to-act", convCfg,
     [](CheckStream &s) {
         s.read(0, 0);
         s.read(s.timing().tRRD, 1);
     },
     [](CheckStream &s) { s.records()[1].tick -= 1; }},
    {"FifthActInsideTxaw", "four-act-window", convCfg,
     [](CheckStream &s) {
         for (unsigned b = 0; b < 5; ++b)
             s.read(Tick(b) * 2 * s.timing().tRRD, b);
         s.records()[4].tick = s.timing().tXAW;
     },
     [](CheckStream &s) { s.records()[4].tick -= 1; }},
    {"ReadBankCycleOneTickShort", "bank-busy", convCfg,
     [](CheckStream &s) {
         s.read(0, 0);
         s.read(s.timing().readBankBusy(), 0);
     },
     [](CheckStream &s) { s.records()[1].tick -= 1; }},
    {"WriteBankCycleOneTickShort", "bank-busy", convCfg,
     [](CheckStream &s) {
         s.write(0, 0);
         s.write(s.timing().writeBankBusy(), 0);
     },
     [](CheckStream &s) { s.records()[1].tick -= 1; }},
    {"RowHitBurstInsideCcd", "col-to-col", openCfg,
     [](CheckStream &s) {
         s.read(0, 0);
         s.read(s.timing().tCCD_L, 0, 1);  // open-row hit, no ACT
     },
     [](CheckStream &s) { s.records()[1].tick -= 1; }},
    {"TagMatCycleOneTickShort", "tag-cycle", tdramCfg,
     [](CheckStream &s) {
         s.actRd(0, 0, true, true, false);
         s.probe(s.timing().tRC_TAG, 0);
     },
     [](CheckStream &s) {
         s.records()[2].tick -= 1;
         s.records()[3].tick -= 1;
     }},
    {"HmSlotOverlap", "hm-occupancy", tdramCfg,
     [](CheckStream &s) {
         s.probe(0, 0);
         s.probe(hmBusOccupancy, 1);
     },
     [](CheckStream &s) {
         s.records()[2].tick -= 1;
         s.records()[3].tick -= 1;
     }},
    {"DroppedHmResult", "hm-lockstep", tdramCfg,
     [](CheckStream &s) {
         s.actRd(0, 0, true, true, false);
         s.read(s.timing().readBankBusy(), 0);
     },
     [](CheckStream &s) {
         s.records().erase(s.records().begin() + 1);
     }},
    {"HmResultOneTickLate", "hm-latency", tdramCfg,
     [](CheckStream &s) { s.actRd(0, 0, true, true, false); },
     [](CheckStream &s) {
         s.records()[1].tick += 1;
         s.records()[1].aux += 1;
     }},
    {"SuppressedBurstOnHit", "conditional-column", tdramCfg,
     [](CheckStream &s) { s.actRd(0, 0, true, true, false); },
     [](CheckStream &s) { s.records()[0].extra &= ~16u; }},
    {"RefreshDurationOneTickShort", "refresh-period", convCfg,
     [](CheckStream &s) {
         s.refresh(s.timing().tREFI);
         s.refresh(2 * s.timing().tREFI);
     },
     [](CheckStream &s) { s.records()[0].aux -= 1; }},
    {"RefreshCadenceOneTickLate", "refresh-period", convCfg,
     [](CheckStream &s) {
         s.refresh(s.timing().tREFI);
         s.refresh(2 * s.timing().tREFI);
     },
     [](CheckStream &s) { s.records()[1].tick += 1; }},
    {"CommandInsideRefreshWindow", "refresh-quiet", convCfg,
     [](CheckStream &s) {
         s.refresh(s.timing().tREFI);
         s.read(s.timing().tREFI + s.timing().tRFC, 0);
     },
     [](CheckStream &s) { s.records()[1].tick -= 1; }},
    {"BurstOverlapOneTick", "dq-overlap", convCfg,
     [](CheckStream &s) {
         s.read(0, 0);
         s.read(s.timing().tRRD, 1);
     },
     [](CheckStream &s) { s.records()[1].aux -= 1; }},
    {"TurnaroundOneTickShort", "dq-turnaround", convCfg,
     [](CheckStream &s) {
         s.read(0, 0);
         // Earliest legal write start: read data end + tRTW.
         const Tick start_lat = s.writeAux() - s.timing().dataBurst();
         s.write(s.readAux() + s.timing().tRTW - start_lat, 1);
     },
     [](CheckStream &s) { s.records()[1].tick -= 1; }},
    {"FlushDepthOverCapacity", "flush-capacity", tdramCfg,
     [](CheckStream &s) {
         s.push(TraceKind::FlushPush, 0, CheckStream::addrOf(0), 0, 16,
                0);
     },
     [](CheckStream &s) { s.records()[0].aux = 17; }},
    {"OpportunisticDrainUnsupported", "drain-cause", noDrainCfg,
     [](CheckStream &s) {
         s.push(TraceKind::FlushDrain, s.timing().dataBurst(),
                CheckStream::addrOf(0), 0, 3,
                static_cast<std::uint32_t>(DrainCause::Forced));
     },
     [](CheckStream &s) {
         s.records()[0].extra =
             static_cast<std::uint32_t>(DrainCause::MissClean);
     }},
    {"DrainMissesIdleSlot", "drain-miss-clean", tdramCfg,
     [](CheckStream &s) {
         s.actRd(0, 0, false, true, false);  // miss-clean: suppressed
         s.push(TraceKind::FlushDrain, s.readAux(),
                CheckStream::addrOf(0), 0, 2,
                static_cast<std::uint32_t>(DrainCause::MissClean));
     },
     [](CheckStream &s) { s.records()[2].tick += 1; }},
    {"DrainOutsideRefreshWindow", "drain-refresh", tdramCfg,
     [](CheckStream &s) {
         s.refresh(s.timing().tREFI);
         s.push(TraceKind::FlushDrain,
                s.timing().tREFI + s.timing().tBURST,
                CheckStream::addrOf(0), 0, 2,
                static_cast<std::uint32_t>(DrainCause::Refresh));
     },
     [](CheckStream &s) { s.records()[1].tick -= 1; }},
    {"ProbeOnProbelessDevice", "probe-disabled", noProbeCfg,
     [](CheckStream &s) { s.actRd(0, 0, true, true, false); },
     [](CheckStream &s) { s.probe(2 * s.timing().clkPeriod, 1); }},
    {"ResponseWithoutStart", "demand-pairing", demandCfg,
     [](CheckStream &s) {
         s.push(TraceKind::DemandStart, 0, 64, traceBankNone, 0, 0);
         s.push(TraceKind::DemandDone, 50000, 64, traceBankNone, 50000,
                0);
     },
     [](CheckStream &s) { s.records()[1].aux -= 1; }},
    {"IssueTickRunsBackwards", "monotonic-issue", tdramCfg,
     [](CheckStream &s) {
         s.read(5000, 0);
         s.push(TraceKind::FlushPush, 5000, CheckStream::addrOf(0), 0,
                1, 0);
     },
     [](CheckStream &s) { s.records()[1].tick -= 1; }},
    {"DataDoneShorterThanBurst", "record-sane", convCfg,
     [](CheckStream &s) { s.read(0, 0); },
     [](CheckStream &s) {
         s.records()[0].aux = s.timing().dataBurst() - 1;
     }},
    {"FillGroupOneWriteShort", "page-fill-lockstep", bansheeCfg,
     [](CheckStream &s) {
         s.remap(0, 0x10000, 0, false, 0);
         s.fillWrite(0, 0, 0x10000, 0);
         s.fillWrite(s.timing().tRRD, 1, 0x10040, 0);
     },
     [](CheckStream &s) { s.records().pop_back(); }},
    {"FillWriteGroupMismatch", "page-fill-lockstep", bansheeCfg,
     [](CheckStream &s) {
         s.remap(0, 0x10000, 0, false, 0);
         s.fillWrite(0, 0, 0x10000, 0);
         s.fillWrite(s.timing().tRRD, 1, 0x10040, 0);
     },
     [](CheckStream &s) {
         s.records()[2].extra ^= 1u << traceGroupShift;
     }},
    {"FillWriteOutsideInstalledPage", "remap-consistency", bansheeCfg,
     [](CheckStream &s) {
         s.remap(0, 0x10000, 0, false, 0);
         s.fillWrite(0, 0, 0x10000, 0);
         s.fillWrite(s.timing().tRRD, 1, 0x10040, 0);
     },
     [](CheckStream &s) { s.records()[2].addr += 0x1000; }},
    {"RemapReinstallsMappedPage", "remap-consistency", bansheeCfg,
     [](CheckStream &s) {
         s.remap(0, 0x10000, 0, false, 0);
         s.fillWrite(0, 0, 0x10000, 0);
         s.fillWrite(s.timing().tRRD, 1, 0x10040, 0);
         s.remap(100000, 0x20000, 0, false, 1);
         s.fillWrite(100000, 0, 0x20000, 1);
         s.fillWrite(100000 + s.timing().tRRD, 1, 0x20040, 1);
     },
     [](CheckStream &s) { s.records()[3].addr = 0x10000; }},
    {"SpillReadOutsideVictimPage", "remap-consistency", bansheeCfg,
     [](CheckStream &s) {
         s.remap(0, 0x10000, 0x30000, true, 0);
         s.spillRead(0, 2, 0x30000, 0);
         s.fillWrite(50000, 0, 0x10000, 0);
         s.fillWrite(50000 + s.timing().tRRD, 1, 0x10040, 0);
     },
     [](CheckStream &s) { s.records()[1].addr += 0x1000; }},
};

class InjectionMatrix : public ::testing::TestWithParam<Injection>
{
};

TEST_P(InjectionMatrix, BaselineCleanMutationFlagged)
{
    const Injection &inj = GetParam();
    ASSERT_NE(findCheckRule(inj.rule), nullptr) << inj.rule;

    CheckStream clean(inj.config());
    inj.build(clean);
    const AuditResult base = clean.audit();
    ASSERT_TRUE(base.clean())
        << "baseline must be protocol-legal:\n" << base.describe();

    CheckStream bad(inj.config());
    inj.build(bad);
    inj.mutate(bad);
    const AuditResult hit = bad.audit();
    EXPECT_FALSE(hit.clean()) << "mutation escaped the checker";
    EXPECT_TRUE(hit.saw(inj.rule))
        << "expected rule '" << inj.rule << "', got:\n"
        << hit.describe();
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, InjectionMatrix, ::testing::ValuesIn(kInjections),
    [](const ::testing::TestParamInfo<Injection> &pi) {
        return std::string(pi.param.name);
    });

TEST(InjectionMatrix, CoversEveryRule)
{
    std::set<std::string> injected;
    for (const Injection &inj : kInjections)
        injected.insert(inj.rule);
    for (const CheckRuleInfo &r : checkRules()) {
        EXPECT_TRUE(injected.count(r.id))
            << "rule '" << r.id << "' has no injection case";
    }
    EXPECT_GE(std::size(kInjections), 12u);
}

} // namespace
} // namespace tsim
