#!/usr/bin/env bash
# Golden-trace determinism gate (CI: the "determinism" job).
#
# Three checks, all byte-exact:
#  1. Same-config repeatability: the integration config run twice must
#     produce identical stats dumps, CSV rows, and .tdt event traces.
#  2. Serial vs parallel: a capacity_sweep grid with --jobs 1 and
#     --jobs 4 must produce identical CSV and per-job traces
#     (trace_tool diff reports the first divergent record otherwise).
#  3. Canary: a deliberately perturbed copy of a trace MUST be flagged
#     by trace_tool diff — proving the gate can actually fail.
#
# Usage: tests/run_determinism.sh [BUILD_DIR]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}
CLI="$BUILD/examples/tdram_cli"
SWEEP="$BUILD/examples/capacity_sweep"
TOOL="$BUILD/tools/trace_tool"

for bin in "$CLI" "$SWEEP" "$TOOL"; do
    if [ ! -x "$bin" ]; then
        echo "missing $bin - build the project first" >&2
        exit 2
    fi
done

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

echo "=== [1/3] same-config repeatability (tdram_cli run) ==="
for i in 1 2; do
    "$CLI" run is.C TDRAM --ops 4000 --csv --stats \
        --trace "$WORK/run$i.tdt" > "$WORK/run$i.out"
done
cmp "$WORK/run1.out" "$WORK/run2.out" || {
    echo "FAIL: stats/CSV output differs between identical runs"
    exit 1
}
"$TOOL" diff "$WORK/run1.tdt" "$WORK/run2.tdt" || {
    echo "FAIL: event traces differ between identical runs"
    exit 1
}

echo "=== [2/3] serial vs parallel sweep ==="
"$SWEEP" is.C 3000 --jobs 1 --trace "$WORK/serial" > "$WORK/serial.csv"
"$SWEEP" is.C 3000 --jobs 4 --trace "$WORK/par" > "$WORK/par.csv"
cmp "$WORK/serial.csv" "$WORK/par.csv" || {
    echo "FAIL: sweep CSV differs between --jobs 1 and --jobs 4"
    exit 1
}
njobs=0
for f in "$WORK"/serial_job*.tdt; do
    job=$(basename "$f" | sed 's/^serial_//')
    "$TOOL" diff "$f" "$WORK/par_$job" || {
        echo "FAIL: trace $job differs between --jobs 1 and --jobs 4"
        exit 1
    }
    njobs=$((njobs + 1))
done
[ "$njobs" -gt 0 ] || { echo "FAIL: sweep produced no traces"; exit 1; }
echo "($njobs per-job traces identical)"

echo "=== [3/3] perturbation canary ==="
cp "$WORK/run1.tdt" "$WORK/perturbed.tdt"
# Flip one byte inside the first record's tick field (header is 32 B).
printf '\xff' | dd of="$WORK/perturbed.tdt" bs=1 seek=32 count=1 \
    conv=notrunc status=none
if "$TOOL" diff "$WORK/run1.tdt" "$WORK/perturbed.tdt" \
    > "$WORK/canary.out"; then
    echo "FAIL: trace_tool diff missed an injected perturbation"
    exit 1
fi
grep -q "first divergence" "$WORK/canary.out" || {
    echo "FAIL: diff flagged the canary without divergence context:"
    cat "$WORK/canary.out"
    exit 1
}
echo "canary detected:"
sed -n '1,3p' "$WORK/canary.out"

echo "determinism gate PASSED"
