#!/usr/bin/env bash
# Golden-trace determinism gate (CI: the "determinism" job).
#
# Six checks, all byte-exact:
#  1. Same-config repeatability: the integration config run twice must
#     produce identical stats dumps, CSV rows, and .tdt event traces.
#  2. Serial vs parallel: a capacity_sweep grid with --jobs 1 and
#     --jobs 4 must produce identical CSV and per-job traces
#     (trace_tool diff reports the first divergent record otherwise).
#  3. Canary: a deliberately perturbed copy of a trace MUST be flagged
#     by trace_tool diff — proving the gate can actually fail.
#  4. Sharded repeatability: a --threads 2 run repeated, and --threads
#     4, must reproduce the --threads 2 outputs byte for byte, with a
#     second perturbation canary on the threaded trace.
#  5. Sharded thread-invariance matrix: every device kind (the
#     competitor controllers TicToc and Banshee included) x page
#     policy must produce identical stats/CSV and .tdt traces at
#     --threads 1, 2, and 4 with the protocol checker enabled
#     (DESIGN.md §12: thread count only remaps shards to OS threads).
#  6. Front-end equivalence: the same matrix must hash to the golden
#     stats/trace sha256s captured before the zero-alloc front-end
#     rewrite (tests/goldens/frontend_equiv.sha256), at --threads 1
#     and 4 — the rewrite and the event bus are pure host-side
#     optimizations with no simulated-behaviour footprint.
#
# Usage: tests/run_determinism.sh [BUILD_DIR]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}
CLI="$BUILD/examples/tdram_cli"
SWEEP="$BUILD/examples/capacity_sweep"
TOOL="$BUILD/tools/trace_tool"

for bin in "$CLI" "$SWEEP" "$TOOL"; do
    if [ ! -x "$bin" ]; then
        echo "missing $bin - build the project first" >&2
        exit 2
    fi
done

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

echo "=== [1/6] same-config repeatability (tdram_cli run) ==="
for i in 1 2; do
    "$CLI" run is.C TDRAM --ops 4000 --csv --stats \
        --trace "$WORK/run$i.tdt" > "$WORK/run$i.out"
done
cmp "$WORK/run1.out" "$WORK/run2.out" || {
    echo "FAIL: stats/CSV output differs between identical runs"
    exit 1
}
"$TOOL" diff "$WORK/run1.tdt" "$WORK/run2.tdt" || {
    echo "FAIL: event traces differ between identical runs"
    exit 1
}

echo "=== [2/6] serial vs parallel sweep ==="
"$SWEEP" is.C 3000 --jobs 1 --trace "$WORK/serial" > "$WORK/serial.csv"
"$SWEEP" is.C 3000 --jobs 4 --trace "$WORK/par" > "$WORK/par.csv"
cmp "$WORK/serial.csv" "$WORK/par.csv" || {
    echo "FAIL: sweep CSV differs between --jobs 1 and --jobs 4"
    exit 1
}
njobs=0
for f in "$WORK"/serial_job*.tdt; do
    job=$(basename "$f" | sed 's/^serial_//')
    "$TOOL" diff "$f" "$WORK/par_$job" || {
        echo "FAIL: trace $job differs between --jobs 1 and --jobs 4"
        exit 1
    }
    njobs=$((njobs + 1))
done
[ "$njobs" -gt 0 ] || { echo "FAIL: sweep produced no traces"; exit 1; }
echo "($njobs per-job traces identical)"

echo "=== [3/6] perturbation canary ==="
cp "$WORK/run1.tdt" "$WORK/perturbed.tdt"
# Flip one byte inside the first record's tick field (header is 32 B).
printf '\xff' | dd of="$WORK/perturbed.tdt" bs=1 seek=32 count=1 \
    conv=notrunc status=none
if "$TOOL" diff "$WORK/run1.tdt" "$WORK/perturbed.tdt" \
    > "$WORK/canary.out"; then
    echo "FAIL: trace_tool diff missed an injected perturbation"
    exit 1
fi
grep -q "first divergence" "$WORK/canary.out" || {
    echo "FAIL: diff flagged the canary without divergence context:"
    cat "$WORK/canary.out"
    exit 1
}
echo "canary detected:"
sed -n '1,3p' "$WORK/canary.out"

echo "=== [4/6] sharded repeatability + threaded canary ==="
"$CLI" run is.C TDRAM --ops 4000 --csv --stats --threads 2 \
    --trace "$WORK/t2a.tdt" > "$WORK/t2a.out"
"$CLI" run is.C TDRAM --ops 4000 --csv --stats --threads 2 \
    --trace "$WORK/t2b.tdt" > "$WORK/t2b.out"
"$CLI" run is.C TDRAM --ops 4000 --csv --stats --threads 4 \
    --trace "$WORK/t4.tdt" > "$WORK/t4.out"
cmp "$WORK/t2a.out" "$WORK/t2b.out" || {
    echo "FAIL: --threads 2 output differs between identical runs"
    exit 1
}
cmp "$WORK/t2a.out" "$WORK/t4.out" || {
    echo "FAIL: output differs between --threads 2 and --threads 4"
    exit 1
}
"$TOOL" diff "$WORK/t2a.tdt" "$WORK/t2b.tdt" || {
    echo "FAIL: --threads 2 traces differ between identical runs"
    exit 1
}
"$TOOL" diff "$WORK/t2a.tdt" "$WORK/t4.tdt" || {
    echo "FAIL: traces differ between --threads 2 and --threads 4"
    exit 1
}
cp "$WORK/t2a.tdt" "$WORK/t_perturbed.tdt"
printf '\xff' | dd of="$WORK/t_perturbed.tdt" bs=1 seek=32 count=1 \
    conv=notrunc status=none
if "$TOOL" diff "$WORK/t2a.tdt" "$WORK/t_perturbed.tdt" \
    > "$WORK/t_canary.out"; then
    echo "FAIL: diff missed a perturbation in a threaded trace"
    exit 1
fi
grep -q "first divergence" "$WORK/t_canary.out" || {
    echo "FAIL: threaded canary flagged without divergence context"
    exit 1
}

echo "=== [5/6] sharded thread-invariance matrix (with --check) ==="
for design in CascadeLake Alloy NDC TDRAM TicToc Banshee; do
    for page in "" "--open-page"; do
        for n in 1 2 4; do
            "$CLI" run is.C "$design" --ops 1500 --csv --stats \
                --check $page --threads "$n" \
                --trace "$WORK/m$n.tdt" > "$WORK/m$n.out" || {
                echo "FAIL: $design $page --threads $n exited nonzero"
                exit 1
            }
        done
        for n in 2 4; do
            cmp "$WORK/m1.out" "$WORK/m$n.out" || {
                echo "FAIL: $design $page output differs at --threads $n"
                exit 1
            }
            "$TOOL" diff "$WORK/m1.tdt" "$WORK/m$n.tdt" > /dev/null || {
                echo "FAIL: $design $page trace differs at --threads $n"
                exit 1
            }
        done
        echo "$design ${page:-closed-page}: threads 1/2/4 identical"
    done
done

echo "=== [6/6] front-end equivalence vs pre-rewrite goldens ==="
GOLDEN="tests/goldens/frontend_equiv.sha256"
[ -f "$GOLDEN" ] || { echo "FAIL: missing $GOLDEN"; exit 1; }
sha() { sha256sum "$1" | cut -d' ' -f1; }
while read -r design page out_gold tdt_gold; do
    [ -n "$design" ] || continue
    page_flag=""
    [ "$page" = "open" ] && page_flag="--open-page"
    for n in 1 4; do
        "$CLI" run is.C "$design" --ops 1500 --csv --stats \
            --check $page_flag --threads "$n" \
            --trace "$WORK/g.tdt" > "$WORK/g.out" || {
            echo "FAIL: $design $page --threads $n exited nonzero"
            exit 1
        }
        out_now=$(sha "$WORK/g.out")
        tdt_now=$(sha "$WORK/g.tdt")
        if [ "$out_now" != "$out_gold" ]; then
            echo "FAIL: $design $page --threads $n stats/CSV hash" \
                 "$out_now != golden $out_gold"
            exit 1
        fi
        if [ "$tdt_now" != "$tdt_gold" ]; then
            echo "FAIL: $design $page --threads $n trace hash" \
                 "$tdt_now != golden $tdt_gold"
            exit 1
        fi
    done
    echo "$design $page: matches pre-rewrite golden (threads 1, 4)"
done < "$GOLDEN"

echo "determinism gate PASSED"
