/**
 * @file
 * .tdtz container + trace-replay front-end tests: encode/decode
 * round-trips, frame-boundary seeks, corruption rejection,
 * codec-independence of the record level, text-format parsing,
 * demand projection, and replay determinism across thread counts.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "system/system.hh"
#include "trace/tdtz.hh"
#include "trace/trace.hh"

namespace tsim
{
namespace
{

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "tdtz_" + name;
}

/** Deterministic mixed request stream (strides + hot region). */
std::vector<ReplayRecord>
makeStream(std::size_t n, std::uint64_t seed = 7)
{
    std::vector<ReplayRecord> out;
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        ReplayRecord r;
        r.addr = (i % 4 == 0)
                     ? rng.range(1 << 9) * lineBytes
                     : (static_cast<Addr>(i) * 3 % (1 << 14)) *
                           lineBytes;
        r.size = (i % 7 == 0) ? 2 * lineBytes : lineBytes;
        r.isWrite = rng.chance(0.3);
        r.delta = nsToTicks(static_cast<double>(i % 5));
        out.push_back(r);
    }
    return out;
}

void
writeStream(const std::string &path,
            const std::vector<ReplayRecord> &recs, TdtzCodec codec,
            std::uint32_t frame_records = 4096)
{
    TdtzWriter w(path, codec, frame_records);
    for (const ReplayRecord &r : recs)
        w.append(r);
    w.finish();
}

/** Demands a replay of @p recs issues: one per touched line. */
std::uint64_t
lineCount(const std::vector<ReplayRecord> &recs)
{
    std::uint64_t n = 0;
    for (const ReplayRecord &r : recs) {
        n += (lineAlign(r.addr + r.size - 1) - lineAlign(r.addr)) /
                 lineBytes +
             1;
    }
    return n;
}

std::vector<ReplayRecord>
readAll(const std::string &path)
{
    TdtzReader r;
    EXPECT_TRUE(r.open(path)) << r.error();
    std::vector<ReplayRecord> out;
    ReplayRecord rec;
    while (r.next(rec))
        out.push_back(rec);
    EXPECT_TRUE(r.ok()) << r.error();
    return out;
}

TEST(Tdtz, RoundTripVarint)
{
    const auto recs = makeStream(10000);
    const std::string path = tmpPath("rt_varint.tdtz");
    writeStream(path, recs, TdtzCodec::Varint, 512);
    EXPECT_EQ(readAll(path), recs);

    TdtzReader r;
    ASSERT_TRUE(r.open(path));
    EXPECT_EQ(r.info().records, recs.size());
    EXPECT_EQ(r.info().frames, (recs.size() + 511) / 512);
    std::uint64_t reads = 0, writes = 0;
    for (const ReplayRecord &rec : recs)
        (rec.isWrite ? writes : reads)++;
    EXPECT_EQ(r.info().reads, reads);
    EXPECT_EQ(r.info().writes, writes);
}

TEST(Tdtz, RoundTripZstd)
{
    if (!tdtzZstdAvailable())
        GTEST_SKIP() << "zstd not compiled in";
    const auto recs = makeStream(10000);
    const std::string path = tmpPath("rt_zstd.tdtz");
    writeStream(path, recs, TdtzCodec::Zstd, 512);
    EXPECT_EQ(readAll(path), recs);
}

TEST(Tdtz, ZstdAndFallbackAgreeAtRecordLevel)
{
    if (!tdtzZstdAvailable())
        GTEST_SKIP() << "zstd not compiled in";
    const auto recs = makeStream(5000);
    const std::string pz = tmpPath("codec_z.tdtz");
    const std::string pv = tmpPath("codec_v.tdtz");
    writeStream(pz, recs, TdtzCodec::Zstd, 333);
    writeStream(pv, recs, TdtzCodec::Varint, 333);
    EXPECT_EQ(readAll(pz), readAll(pv));
}

TEST(Tdtz, SeekAcrossFrameBoundaries)
{
    constexpr std::uint32_t frame = 100;
    const auto recs = makeStream(1050);  // last frame half full
    const std::string path = tmpPath("seek.tdtz");
    writeStream(path, recs, TdtzCodec::Varint, frame);

    TdtzReader r;
    ASSERT_TRUE(r.open(path));
    // Boundaries, mid-frame, backwards, and the tail.
    const std::uint64_t targets[] = {99,  100, 101, 0,   999,
                                     500, 1,   199, 1049};
    ReplayRecord rec;
    for (std::uint64_t n : targets) {
        ASSERT_TRUE(r.seekRecord(n)) << "seek " << n << ": "
                                     << r.error();
        EXPECT_EQ(r.position(), n);
        ASSERT_TRUE(r.next(rec));
        EXPECT_EQ(rec, recs[n]) << "record " << n;
    }
    // n == count positions at EOF; past it is an error.
    EXPECT_TRUE(r.seekRecord(recs.size()));
    EXPECT_FALSE(r.next(rec));
    EXPECT_TRUE(r.ok()) << r.error();
    EXPECT_FALSE(r.seekRecord(recs.size() + 1));
}

TEST(Tdtz, SequentialReadAfterSeekContinuesCorrectly)
{
    const auto recs = makeStream(600);
    const std::string path = tmpPath("seekseq.tdtz");
    writeStream(path, recs, TdtzCodec::Varint, 128);

    TdtzReader r;
    ASSERT_TRUE(r.open(path));
    ASSERT_TRUE(r.seekRecord(250));
    ReplayRecord rec;
    for (std::uint64_t n = 250; n < recs.size(); ++n) {
        ASSERT_TRUE(r.next(rec));
        EXPECT_EQ(rec, recs[n]) << "record " << n;
    }
    EXPECT_FALSE(r.next(rec));
    EXPECT_TRUE(r.ok());
}

TEST(Tdtz, RejectsTruncatedFile)
{
    const auto recs = makeStream(2000);
    const std::string path = tmpPath("trunc.tdtz");
    writeStream(path, recs, TdtzCodec::Varint, 256);

    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();

    // Cut at several depths: mid-footer, mid-frame, mid-header.
    for (std::size_t keep :
         {bytes.size() - 1, bytes.size() / 2, std::size_t{40},
          std::size_t{10}}) {
        const std::string cut = tmpPath("trunc_cut.tdtz");
        std::ofstream out(cut, std::ios::binary);
        out.write(bytes.data(), static_cast<std::streamsize>(keep));
        out.close();
        TdtzReader r;
        EXPECT_FALSE(r.open(cut)) << "kept " << keep << " bytes";
        EXPECT_FALSE(r.error().empty());
    }
}

TEST(Tdtz, RejectsCorruptFramePayload)
{
    const auto recs = makeStream(2000);
    const std::string path = tmpPath("corrupt.tdtz");
    writeStream(path, recs, TdtzCodec::Varint, 256);

    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    // First byte of frame 0's payload: after the 32 B file header
    // and 24 B frame header.
    f.seekg(56);
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x20);
    f.seekp(56);
    f.write(&b, 1);
    f.close();

    TdtzReader r;
    ASSERT_TRUE(r.open(path));  // header/footer still fine
    ReplayRecord rec;
    EXPECT_FALSE(r.next(rec));
    EXPECT_NE(r.error().find("checksum"), std::string::npos)
        << r.error();
}

TEST(Tdtz, ParsesTextTraces)
{
    const std::string path = tmpPath("text.txt");
    {
        std::ofstream out(path);
        out << "# demo trace\n"
            << "R 0x1000\n"
            << "W 4096 128\n"
            << "R 0x2040 64 2.5\n"
            << "\n"
            << "W 0 64 10\n";
    }
    std::vector<ReplayRecord> recs;
    std::string error;
    ASSERT_TRUE(parseTextTrace(path, recs, error)) << error;
    ASSERT_EQ(recs.size(), 4u);
    EXPECT_EQ(recs[0], (ReplayRecord{0x1000, 64, false, 0}));
    EXPECT_EQ(recs[1], (ReplayRecord{4096, 128, true, 0}));
    EXPECT_EQ(recs[2], (ReplayRecord{0x2040, 64, false, nsToTicks(2.5)}));
    EXPECT_EQ(recs[3], (ReplayRecord{0, 64, true, nsToTicks(10.0)}));

    {
        std::ofstream out(path);
        out << "X 0x1000\n";
    }
    EXPECT_FALSE(parseTextTrace(path, recs, error));
    EXPECT_FALSE(error.empty());
}

/** Capture a synthetic run's .tdt, project, and sanity-check. */
TEST(Tdtz, ProjectsDemandsFromEventTrace)
{
    SystemConfig cfg;
    cfg.cores.opsPerCore = 1500;
    cfg.warmupOpsPerCore = 5000;
    cfg.tracePath = tmpPath("proj.tdt");
    System sys(cfg, findWorkload("is.C"));
    SimReport rep = sys.run();

    TraceLoadResult res = loadTrace(cfg.tracePath);
    ASSERT_TRUE(res.ok) << res.error;
    const auto recs = projectDemands(res.trace);
    EXPECT_EQ(recs.size(), rep.demandReads + rep.demandWrites);
    std::uint64_t writes = 0;
    for (const ReplayRecord &r : recs)
        writes += r.isWrite;
    EXPECT_EQ(writes, rep.demandWrites);
}

SimReport
replayRun(const std::string &path, unsigned threads, ReplayMode mode)
{
    SystemConfig cfg;
    cfg.replay.path = path;
    cfg.replay.mode = mode;
    cfg.warmupOpsPerCore = 2000;
    cfg.threads = threads;
    return runOne(cfg, findWorkload("is.C"));
}

TEST(TraceReplay, DeterministicAcrossThreadCounts)
{
    const auto recs = makeStream(20000, 11);
    const std::string path = tmpPath("det.tdtz");
    writeStream(path, recs, TdtzCodec::Varint, 1024);

    const SimReport t1 = replayRun(path, 1, ReplayMode::Timed);
    EXPECT_EQ(t1.replayRecords, recs.size());
    EXPECT_EQ(t1.demandReads + t1.demandWrites, lineCount(recs));
    for (unsigned threads : {2u, 4u}) {
        const SimReport tn = replayRun(path, threads,
                                       ReplayMode::Timed);
        EXPECT_EQ(t1.runtimeTicks, tn.runtimeTicks) << threads;
        EXPECT_EQ(t1.demandReads, tn.demandReads) << threads;
        EXPECT_EQ(t1.demandWrites, tn.demandWrites) << threads;
        EXPECT_DOUBLE_EQ(t1.missRatio, tn.missRatio) << threads;
        EXPECT_DOUBLE_EQ(t1.demandReadLatencyNs,
                         tn.demandReadLatencyNs)
            << threads;
        EXPECT_DOUBLE_EQ(t1.energy.totalJ(), tn.energy.totalJ())
            << threads;
    }
}

TEST(TraceReplay, AfapFinishesFasterThanTimed)
{
    // Spread the records out so timed pacing dominates runtime.
    auto recs = makeStream(4000, 3);
    for (ReplayRecord &r : recs)
        r.delta = nsToTicks(50.0);
    const std::string path = tmpPath("afap.tdtz");
    writeStream(path, recs, TdtzCodec::Varint, 1024);

    const SimReport timed = replayRun(path, 0, ReplayMode::Timed);
    const SimReport afap = replayRun(path, 0, ReplayMode::Afap);
    EXPECT_EQ(timed.demandReads + timed.demandWrites,
              lineCount(recs));
    EXPECT_EQ(afap.demandReads + afap.demandWrites,
              lineCount(recs));
    EXPECT_LT(afap.runtimeTicks, timed.runtimeTicks);
    EXPECT_EQ(timed.replayMode, "timed");
    EXPECT_EQ(afap.replayMode, "afap");
}

TEST(TraceReplay, ReportCarriesProvenance)
{
    const auto recs = makeStream(3000, 5);
    const std::string path = tmpPath("prov.tdtz");
    writeStream(path, recs, TdtzCodec::Varint, 1024);

    const SimReport r = replayRun(path, 0, ReplayMode::Timed);
    EXPECT_EQ(r.replaySource, path);
    EXPECT_EQ(r.replayMode, "timed");
    EXPECT_EQ(r.replayRecords, recs.size());

    // Synthetic runs stay unmarked.
    SystemConfig cfg;
    cfg.cores.opsPerCore = 500;
    cfg.warmupOpsPerCore = 1000;
    const SimReport s = runOne(cfg, findWorkload("is.C"));
    EXPECT_TRUE(s.replaySource.empty());
    EXPECT_EQ(s.replayRecords, 0u);
}

TEST(TraceReplay, MlpLimitsOutstandingReadsWithoutLosingWork)
{
    auto recs = makeStream(5000, 9);
    for (ReplayRecord &r : recs)
        r.delta = 0;  // maximal pressure
    const std::string path = tmpPath("mlp.tdtz");
    writeStream(path, recs, TdtzCodec::Varint, 1024);

    SystemConfig cfg;
    cfg.replay.path = path;
    cfg.replay.mode = ReplayMode::Afap;
    cfg.replay.mlp = 4;
    cfg.warmupOpsPerCore = 0;
    const SimReport limited = runOne(cfg, findWorkload("is.C"));
    cfg.replay.mlp = 0;
    const SimReport unlimited = runOne(cfg, findWorkload("is.C"));
    EXPECT_EQ(limited.demandReads + limited.demandWrites,
              lineCount(recs));
    EXPECT_EQ(unlimited.demandReads + unlimited.demandWrites,
              lineCount(recs));
    EXPECT_GE(limited.runtimeTicks, unlimited.runtimeTicks);
}

} // namespace
} // namespace tsim
