/**
 * @file
 * Cross-design protocol property tests: the qualitative claims of
 * §II-B / §III-D expressed as observable differences between the
 * controllers (turnaround behaviour, queue usage, traffic classes).
 */

#include <gtest/gtest.h>

#include "dcache/dram_cache.hh"

namespace tsim
{
namespace
{

struct MiniSys
{
    explicit MiniSys(Design d)
    {
        MainMemoryConfig mm_cfg;
        mm_cfg.capacityBytes = 1ULL << 26;
        mm_cfg.refreshEnabled = false;
        mm = std::make_unique<MainMemory>(eq, "mm", mm_cfg);
        DramCacheConfig cfg;
        cfg.capacityBytes = 1ULL << 20;
        cfg.channels = 1;  // concentrate traffic on one channel
        cfg.refreshEnabled = false;
        cache = makeDramCache(eq, d, cfg, *mm);
    }

    void
    access(Addr addr, MemCmd cmd)
    {
        MemPacket pkt;
        pkt.id = next++;
        pkt.addr = addr;
        pkt.cmd = cmd;
        cache->access(pkt, RespCallback{});
    }

    void run() { eq.run(); }

    double turnarounds() const
    {
        return cache->channel(0).turnarounds.value();
    }

    EventQueue eq;
    std::unique_ptr<MainMemory> mm;
    std::unique_ptr<DramCacheCtrl> cache;
    PacketId next = 1;
};

TEST(Protocol, WriteHitStreamBubblesCascadeLakeNotTdram)
{
    // Warm both caches with the same lines, then stream write hits.
    MiniSys cl(Design::CascadeLake);
    MiniSys td(Design::Tdram);
    for (Addr i = 0; i < 32; ++i) {
        cl.cache->warmAccess(i * lineBytes, false);
        td.cache->warmAccess(i * lineBytes, false);
    }
    for (Addr i = 0; i < 32; ++i) {
        cl.access(i * lineBytes, MemCmd::Write);
        td.access(i * lineBytes, MemCmd::Write);
    }
    cl.run();
    td.run();
    // CascadeLake must read tags (read direction) before writing the
    // data, so a pure write stream still turns the DQ bus; TDRAM's
    // ActWr stream never does (write-drain batching keeps the CL
    // count low in this isolated burst, but it can never be zero).
    EXPECT_GE(cl.turnarounds(), 1.0);
    EXPECT_EQ(td.turnarounds(), 0.0);
}

TEST(Protocol, WriteDemandsStayOutOfTdramReadQueue)
{
    MiniSys cl(Design::CascadeLake);
    MiniSys td(Design::Tdram);
    for (Addr i = 0; i < 16; ++i) {
        cl.access(i * lineBytes, MemCmd::Write);
        td.access(i * lineBytes, MemCmd::Write);
    }
    cl.run();
    td.run();
    // Every CL write issued a read-queue tag read; TDRAM issued none.
    EXPECT_EQ(cl.cache->channel(0).issuedReads.value(), 16.0);
    EXPECT_EQ(td.cache->channel(0).issuedReads.value(), 0.0);
    EXPECT_EQ(td.cache->channel(0).issuedActWr.value(), 16.0);
}

TEST(Protocol, MissCleanTrafficByDesign)
{
    // A read-miss-clean discards the 64 B tag-read in CascadeLake;
    // Alloy discards 80 B plus 16 B of TAD padding on the fill; the
    // in-DRAM-tag designs discard nothing.
    auto run_one = [](Design d) {
        MiniSys s(d);
        // Make the line resident-clean so the miss victim is clean.
        s.cache->warmAccess(0x0, false);
        s.access(1ULL << 20, MemCmd::Read);  // conflicting line
        s.run();
        return s.cache->bytesDiscarded.value();
    };
    EXPECT_EQ(run_one(Design::CascadeLake), 64.0);
    EXPECT_EQ(run_one(Design::Alloy), 96.0);
    EXPECT_EQ(run_one(Design::Ndc), 0.0);
    EXPECT_EQ(run_one(Design::Tdram), 0.0);
}

TEST(Protocol, TdramHmPacketsAccompanyEveryCommand)
{
    // Probing would retire some cold-miss reads before their MAIN
    // slot, so use the no-probe variant for deterministic counts.
    MiniSys td(Design::TdramNoProbe);
    for (Addr i = 0; i < 8; ++i)
        td.access(i * lineBytes, MemCmd::Read);
    for (Addr i = 0; i < 8; ++i)
        td.access(i * lineBytes, MemCmd::Write);
    td.run();
    const auto &ch = td.cache->channel(0);
    EXPECT_EQ(ch.issuedActRd.value(), 8.0);
    // 8 demand writes + 8 fill writes for the read misses.
    EXPECT_EQ(ch.issuedActWr.value(), 16.0);
}

TEST(Protocol, ProbingRetiresColdMissesBeforeMainSlot)
{
    MiniSys td(Design::Tdram);
    for (Addr i = 0; i < 8; ++i)
        td.access(i * lineBytes, MemCmd::Read);
    td.run();
    const auto &ch = td.cache->channel(0);
    // Probed miss-cleans leave the read queue without a data-bank
    // access: fewer MAIN ActRds than demands.
    EXPECT_LT(ch.issuedActRd.value(), 8.0);
    EXPECT_GT(ch.probesIssued.value(), 0.0);
}

TEST(Protocol, BearWritebackBypassReducesReadQueueLoad)
{
    MiniSys alloy(Design::Alloy);
    MiniSys bear(Design::Bear);
    for (Addr i = 0; i < 16; ++i) {
        alloy.cache->warmAccess(i * lineBytes, false);
        bear.cache->warmAccess(i * lineBytes, false);
    }
    for (Addr i = 0; i < 16; ++i) {
        alloy.access(i * lineBytes, MemCmd::Write);
        bear.access(i * lineBytes, MemCmd::Write);
    }
    alloy.run();
    bear.run();
    EXPECT_EQ(alloy.cache->channel(0).issuedReads.value(), 16.0);
    EXPECT_EQ(bear.cache->channel(0).issuedReads.value(), 0.0);
}

} // namespace
} // namespace tsim
