/**
 * @file
 * Open-page policy tests: row-hit fast path, conflict penalty,
 * FR-FCFS row-hit-first scheduling, and refresh closing rows.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dcache/dram_cache.hh"
#include "dram/channel.hh"

namespace tsim
{
namespace
{

constexpr std::uint64_t kCap = 1ULL << 24;

struct OpenHarness
{
    OpenHarness()
        : map(kCap, 1, 16, 1024), chan(eq, "ch", makeCfg(), map)
    {}

    static ChannelConfig
    makeCfg()
    {
        ChannelConfig cfg;
        cfg.pagePolicy = PagePolicy::Open;
        cfg.refreshEnabled = false;
        return cfg;
    }

    /** Address with a given bank and row (col 0..15 inside a row). */
    Addr
    at(unsigned bank, std::uint64_t row, std::uint64_t col) const
    {
        // RoCoRaBaCh with 1 channel, 16 banks, 16 lines/row:
        // line = ((row * 16 + col) * 16 + bank)
        return ((row * 16 + col) * 16 + bank) * lineBytes;
    }

    Tick
    read(Addr a)
    {
        Tick done = 0;
        ChanReq r;
        r.id = next++;
        r.addr = a;
        r.op = ChanOp::Read;
        r.onDataDone = [&](Tick t) { done = t; };
        chan.enqueue(std::move(r));
        eq.run();
        return done;
    }

    EventQueue eq;
    AddressMap map;
    DramChannel chan;
    std::uint64_t next = 1;
};

TEST(OpenPage, RowHitSkipsActivate)
{
    OpenHarness h;
    const Tick t1 = h.read(h.at(0, 5, 0));
    // First access: closed bank -> ACT + RD = tRCD + tCL + burst.
    EXPECT_EQ(t1, nsToTicks(12 + 18 + 2));
    const Tick t2 = h.read(h.at(0, 5, 1));
    // Same row: column op only = tCL + burst after issue.
    EXPECT_EQ(t2 - t1, nsToTicks(18 + 2));
    EXPECT_EQ(h.chan.rowHits.value(), 1.0);
    EXPECT_EQ(h.chan.dataBankActs.value(), 1.0);
}

TEST(OpenPage, RowConflictPaysPrecharge)
{
    OpenHarness h;
    h.read(h.at(0, 5, 0));
    Tick start = h.eq.curTick();
    const Tick t2 = h.read(h.at(0, 9, 0));  // different row
    // PRE + ACT + RD; the precharge also waits for tRAS from the
    // first activate (28 ns > elapsed 32 ns, so no extra wait).
    EXPECT_GE(t2 - start, nsToTicks(14 + 12 + 18 + 2));
    EXPECT_EQ(h.chan.rowConflicts.value(), 1.0);
}

TEST(OpenPage, FrFcfsPrefersRowHits)
{
    OpenHarness h;
    // Enqueue, back-to-back at t=0: a read opening row 3, an older
    // conflicting read (row 7), and a younger row-3 hit. FR-FCFS
    // must serve the younger row hit before the older conflict.
    std::vector<std::uint64_t> order;
    struct Spec
    {
        std::uint64_t row, col;
    };
    for (Spec s : {Spec{3, 0}, Spec{7, 0}, Spec{3, 1}}) {
        ChanReq r;
        r.id = s.row * 100 + s.col;
        r.addr = h.at(0, s.row, s.col);
        r.op = ChanOp::Read;
        r.onDataDone = [&order, row = s.row](Tick) {
            order.push_back(row);
        };
        h.chan.enqueue(std::move(r));
    }
    h.eq.run();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 3u);
    EXPECT_EQ(order[1], 3u);  // younger row hit jumps the conflict
    EXPECT_EQ(order[2], 7u);
}

TEST(OpenPage, SequentialStreamMostlyRowHits)
{
    OpenHarness h;
    unsigned done = 0;
    // One row holds 16 lines across... lines interleave banks first,
    // so walk a single bank's column space.
    for (std::uint64_t col = 0; col < 16; ++col) {
        ChanReq r;
        r.id = col;
        r.addr = h.at(2, 0, col);
        r.op = ChanOp::Read;
        r.onDataDone = [&](Tick) { ++done; };
        h.chan.enqueue(std::move(r));
    }
    h.eq.run();
    EXPECT_EQ(done, 16u);
    EXPECT_EQ(h.chan.dataBankActs.value(), 1.0);
    EXPECT_EQ(h.chan.rowHits.value(), 15.0);
}

TEST(OpenPage, RefreshClosesRows)
{
    EventQueue eq;
    AddressMap map(kCap, 1, 16, 1024);
    ChannelConfig cfg = OpenHarness::makeCfg();
    cfg.refreshEnabled = true;
    DramChannel chan(eq, "ch", cfg, map);
    Tick done = 0;
    ChanReq r;
    r.id = 1;
    r.addr = 0;
    r.op = ChanOp::Read;
    r.onDataDone = [&](Tick t) { done = t; };
    chan.enqueue(std::move(r));
    eq.run(nsToTicks(100));
    ASSERT_GT(done, 0u);
    // Run past a refresh; the open row must be closed afterwards:
    // the next same-row access re-activates.
    eq.run(nsToTicks(4300));
    const double acts_before = chan.dataBankActs.value();
    Tick done2 = 0;
    ChanReq r2;
    r2.id = 2;
    r2.addr = 0;
    r2.op = ChanOp::Read;
    r2.onDataDone = [&](Tick t) { done2 = t; };
    chan.enqueue(std::move(r2));
    eq.run(eq.curTick() + nsToTicks(200));
    EXPECT_GT(done2, 0u);
    EXPECT_EQ(chan.dataBankActs.value(), acts_before + 1.0);
    EXPECT_EQ(chan.rowHits.value(), 0.0);
}

TEST(OpenPage, ClosePageRemainsDefaultEverywhere)
{
    ChannelConfig cfg;
    EXPECT_EQ(cfg.pagePolicy, PagePolicy::Close);
    DramCacheConfig dcfg;
    EXPECT_EQ(dcfg.pagePolicy, PagePolicy::Close);
}

} // namespace
} // namespace tsim
