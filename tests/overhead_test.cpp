/**
 * @file
 * Tests pinning the paper's hardware-cost numbers (Fig 4A, §III-C5,
 * §II-A) to the overhead model.
 */

#include <gtest/gtest.h>

#include "tdram/overhead.hh"

namespace tsim
{
namespace
{

TEST(Overhead, Hbm3BaselineSignalCount)
{
    // The paper's baseline accounting: 1024 DQ + 288 CA + >650
    // additional signals.
    const InterfaceSignals s = hbm3Signals();
    EXPECT_EQ(s.channels * s.dqPerChannel, 1024u);
    EXPECT_EQ(s.channels * s.caPerChannel, 288u);
    EXPECT_EQ(s.total(), 1972u);
}

TEST(Overhead, TdramSignalCount)
{
    // Figure 4A: 2164 total signals.
    const InterfaceSignals s = tdramSignals();
    EXPECT_EQ(s.channels, 32u);
    EXPECT_EQ(s.perChannel(), 66u);
    EXPECT_EQ(s.total(), 2164u);
}

TEST(Overhead, ExtraPinsMatchPaper)
{
    // 2b CA + 4b HM per 32-bit channel = 192 extra signals, within
    // the HBM3 package's 320 unused bump sites.
    EXPECT_EQ(tdramExtraSignals(), 192u);
    EXPECT_LE(tdramExtraSignals(), 320u);
}

TEST(Overhead, SignalIncreaseMatchesPaper)
{
    EXPECT_NEAR(tdramSignalIncrease(), 0.097, 0.002);
}

TEST(Overhead, DieAreaImpactMatchesPaper)
{
    AreaModel m;
    // 24.3% x 0.5 (even banks) x 0.66 (bank area) + routing = 8.24%.
    EXPECT_NEAR(m.dieAreaImpact(), 0.0824, 0.0005);
}

TEST(Overhead, DieAreaComponentsAsStated)
{
    AreaModel m;
    EXPECT_NEAR(m.tagMatOverhead * m.evenBankFraction *
                    m.bankAreaFraction,
                0.0802, 0.0005);
}

TEST(TagStorageModel, ThreeBytesPer64ByteLine)
{
    // §II-A: a 64 GiB block cache needs 3 GiB of tag storage.
    EXPECT_EQ(TagStorage::tagBytes(64ULL << 30), 3ULL << 30);
    EXPECT_EQ(TagStorage::tagBytes(8ULL << 30), 384ULL << 20);
}

TEST(TagStorageModel, TagBitsForOnePetabyte)
{
    // §III-C5: a 64 GiB direct-mapped cache covers 1 PB with 14 tag
    // bits.
    EXPECT_EQ(TagStorage::tagBits(64ULL << 30, 1ULL << 50), 14u);
    // And scales with capacity/space as expected.
    EXPECT_EQ(TagStorage::tagBits(1ULL << 30, 1ULL << 40), 10u);
    EXPECT_EQ(TagStorage::tagBits(1ULL << 30, 1ULL << 30), 0u);
}

} // namespace
} // namespace tsim
