/**
 * @file
 * Randomized stress tests of the DRAM channel: under thousands of
 * random requests, the DQ bus is never double-booked, every request
 * completes exactly once, and the flush buffer respects capacity.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "dram/channel.hh"
#include "sim/rng.hh"

namespace tsim
{
namespace
{

constexpr std::uint64_t kCap = 1ULL << 24;

/** Sweep over device kinds. */
struct StressParam
{
    const char *name;
    bool inDramTags;
    bool hmAtColumn;
    bool probe;
};

class ChannelStress : public ::testing::TestWithParam<StressParam>
{};

TEST_P(ChannelStress, ThousandsOfRandomRequests)
{
    const StressParam p = GetParam();
    EventQueue eq;
    AddressMap map(kCap, 1, 16, 1024);
    ChannelConfig cfg;
    cfg.refreshEnabled = true;
    cfg.inDramTags = p.inDramTags;
    cfg.conditionalColumn = p.inDramTags;
    cfg.hmAtColumn = p.hmAtColumn;
    cfg.enableProbe = p.probe;
    cfg.hasFlushBuffer = p.inDramTags;
    cfg.opportunisticDrain = !p.hmAtColumn;
    DramChannel chan(eq, "ch", cfg, map);

    // Functional tag state: random but fixed per line.
    Rng tag_rng(99);
    std::map<Addr, TagResult> tags;
    chan.peekTags = [&](Addr a) {
        a = lineAlign(a);
        auto it = tags.find(a);
        if (it == tags.end()) {
            TagResult t;
            t.valid = tag_rng.chance(0.9);
            t.hit = t.valid && tag_rng.chance(0.5);
            t.dirty = t.valid && tag_rng.chance(0.4);
            t.victimAddr = t.hit ? a : (a ^ (kCap / 2));
            it = tags.emplace(a, t).first;
        }
        return it->second;
    };
    unsigned flushed = 0;
    chan.onFlushArrive = [&](Addr, Tick) { ++flushed; };

    Rng rng(p.inDramTags ? 7u : 13u);
    const unsigned total = 2000;
    unsigned submitted = 0, data_done = 0, tag_done = 0;
    std::vector<Tick> transfer_ends;

    std::function<void()> pump = [&] {
        while (submitted < total) {
            const bool is_write = rng.chance(0.4);
            if (is_write ? !chan.canAcceptWrite()
                         : !chan.canAcceptRead()) {
                break;
            }
            ChanReq r;
            r.id = submitted;
            r.addr = rng.range(kCap / lineBytes) * lineBytes;
            if (p.inDramTags) {
                r.op = is_write ? ChanOp::ActWr : ChanOp::ActRd;
                r.onTagResult = [&](Tick, const TagResult &) {
                    ++tag_done;
                };
            } else {
                r.op = is_write ? ChanOp::Write : ChanOp::Read;
            }
            r.onDataDone = [&](Tick t) {
                ++data_done;
                transfer_ends.push_back(t);
                pump();
            };
            ++submitted;
            chan.enqueue(std::move(r));
        }
    };
    pump();

    // Drive until quiescent (refresh events persist; bound the run).
    Tick limit = nsToTicks(1000);
    while (submitted < total ||
           chan.readQSize() + chan.writeQSize() > 0) {
        eq.run(limit);
        pump();
        limit += nsToTicks(1000);
        ASSERT_LT(limit, nsToTicks(500000000)) << "stress run hung";
    }
    eq.run(limit + nsToTicks(2000));  // drain trailing events

    EXPECT_EQ(submitted, total);
    // Every conventional request transfers data; in-DRAM reads may
    // legally skip the transfer on miss-clean.
    if (!p.inDramTags) {
        EXPECT_EQ(data_done, total);
    } else {
        EXPECT_GT(data_done, total / 4);
        if (p.probe) {
            // Probed requests legally report twice (probe + MAIN HM).
            EXPECT_GE(tag_done, total);
        } else {
            EXPECT_EQ(tag_done, total);
        }
    }

    // The DQ bus must never be double-booked: all transfer ends are
    // at least one burst apart (equal-length bursts on this config).
    std::sort(transfer_ends.begin(), transfer_ends.end());
    for (std::size_t i = 1; i < transfer_ends.size(); ++i) {
        ASSERT_GE(transfer_ends[i] - transfer_ends[i - 1],
                  cfg.timing.dataBurst())
            << "overlapping DQ transfers at index " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, ChannelStress,
    ::testing::Values(
        StressParam{"conventional", false, false, false},
        StressParam{"ndc", true, true, false},
        StressParam{"tdram", true, false, true},
        StressParam{"tdram_noprobe", true, false, false}),
    [](const ::testing::TestParamInfo<StressParam> &pi) {
        return std::string(pi.param.name);
    });

} // namespace
} // namespace tsim
