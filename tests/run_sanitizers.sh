#!/usr/bin/env bash
# Build and run the test suite under the sanitizer presets defined in
# CMakePresets.json.
#
#   ASan + UBSan : full tdram_tests suite (memory errors, UB in the
#                  event kernel's placement-new / pool machinery and
#                  the channel scheduler's slab pool / intrusive
#                  lists / inline-callable moves).
#   TSan         : SweepRunner tests, the channel stress and
#                  old-vs-new differential schedulers, the shard-
#                  engine determinism tests, and a 4-thread checked
#                  end-to-end tdram_cli run — everything that spawns
#                  threads. The rest of the simulator is single-
#                  threaded, and a full TSan run of the whole suite
#                  takes far longer for no extra coverage.
#
# Usage: tests/run_sanitizers.sh [asan|ubsan|tsan ...]
#        (no args = all three, in order)

set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
sanitizers=("$@")
[ ${#sanitizers[@]} -eq 0 ] && sanitizers=(asan ubsan tsan)

for san in "${sanitizers[@]}"; do
    echo "=== [$san] configure + build ==="
    cmake --preset "$san" >/dev/null
    cmake --build "build-$san" --target tdram_tests -j "$jobs"
    [ "$san" = tsan ] &&
        cmake --build "build-$san" --target tdram_cli -j "$jobs"

    echo "=== [$san] run ==="
    case "$san" in
        tsan)
            TSAN_OPTIONS="halt_on_error=1" \
                "./build-$san/tests/tdram_tests" \
                --gtest_filter='SweepRunner*:*ChannelStress*:*ChannelSched*:*Shard*:*Conformance*'
            TSAN_OPTIONS="halt_on_error=1" \
                "./build-$san/examples/tdram_cli" run is.C TDRAM \
                --ops 1500 --csv --check --threads 4 > /dev/null
            TSAN_OPTIONS="halt_on_error=1" \
                "./build-$san/examples/tdram_cli" run is.C TicToc \
                --ops 1500 --csv --check --threads 4 > /dev/null
            TSAN_OPTIONS="halt_on_error=1" \
                "./build-$san/examples/tdram_cli" run is.C Banshee \
                --ops 1500 --csv --check --threads 4 > /dev/null
            ;;
        asan)
            ASAN_OPTIONS="detect_leaks=1" \
                "./build-$san/tests/tdram_tests"
            ;;
        *)
            UBSAN_OPTIONS="print_stacktrace=1" \
                "./build-$san/tests/tdram_tests"
            ;;
    esac
    echo "=== [$san] OK ==="
done
