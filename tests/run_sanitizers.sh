#!/usr/bin/env bash
# Build and run the test suite under the sanitizer presets defined in
# CMakePresets.json.
#
#   ASan + UBSan : full tdram_tests suite (memory errors, UB in the
#                  event kernel's placement-new / pool machinery and
#                  the channel scheduler's slab pool / intrusive
#                  lists / inline-callable moves).
#   TSan         : SweepRunner tests plus the channel stress and
#                  old-vs-new differential schedulers — the rest of
#                  the simulator is single-threaded, and a full TSan
#                  run of the whole suite takes far longer for no
#                  extra coverage.
#
# Usage: tests/run_sanitizers.sh [asan|ubsan|tsan ...]
#        (no args = all three, in order)

set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
sanitizers=("$@")
[ ${#sanitizers[@]} -eq 0 ] && sanitizers=(asan ubsan tsan)

for san in "${sanitizers[@]}"; do
    echo "=== [$san] configure + build ==="
    cmake --preset "$san" >/dev/null
    cmake --build "build-$san" --target tdram_tests -j "$jobs"

    echo "=== [$san] run ==="
    case "$san" in
        tsan)
            TSAN_OPTIONS="halt_on_error=1" \
                "./build-$san/tests/tdram_tests" \
                --gtest_filter='SweepRunner*:*ChannelStress*:*ChannelSched*'
            ;;
        asan)
            ASAN_OPTIONS="detect_leaks=1" \
                "./build-$san/tests/tdram_tests"
            ;;
        *)
            UBSAN_OPTIONS="print_stacktrace=1" \
                "./build-$san/tests/tdram_tests"
            ;;
    esac
    echo "=== [$san] OK ==="
done
