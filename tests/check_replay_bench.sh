#!/bin/sh
# Gate a BENCH_replay.json produced by bench/micro_replay:
#
#   - checksum_match must be true (the decoded .tdtz record stream is
#     bit-equal to the captured demand stream);
#   - compression_ratio must be >= 2.0 against the 24 B/record flat
#     encoding on the reference trace — the container's reason to
#     exist; a drop means a frame/varint regression.
#
# Usage: check_replay_bench.sh <BENCH_replay.json>
# Exit 0 when all gates pass, 1 otherwise.
set -u

JSON="${1:?usage: check_replay_bench.sh <BENCH_replay.json>}"
[ -f "$JSON" ] || { echo "FAIL: no such file: $JSON"; exit 1; }

fail=0

if ! grep -q '"checksum_match": true' "$JSON"; then
    echo "FAIL: decoded-stream checksum mismatch in $JSON"
    fail=1
fi

ratio=$(awk '
    /"compression_ratio"/ {
        if (match($0, /[0-9.]+/))
            printf "%s", substr($0, RSTART, RLENGTH)
    }' "$JSON")
if [ -z "$ratio" ]; then
    echo "FAIL: no compression_ratio in $JSON"
    fail=1
elif ! awk "BEGIN { exit !($ratio >= 2.0) }"; then
    echo "FAIL: compression_ratio $ratio < 2.0"
    fail=1
fi

if [ "$fail" -eq 0 ]; then
    codec=$(awk '
        /"codec"/ {
            if (match($0, /: "[a-z]+"/))
                printf "%s", substr($0, RSTART + 3, RLENGTH - 4)
        }' "$JSON")
    echo "replay bench gate PASSED:" \
         "ratio ${ratio}x (codec ${codec}), checksums match"
fi
exit "$fail"
