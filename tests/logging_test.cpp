/**
 * @file
 * Logging/formatting helpers and kernel error paths.
 */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace tsim
{
namespace
{

TEST(LogFormat, FormatsLikePrintf)
{
    EXPECT_EQ(logFormat("plain"), "plain");
    EXPECT_EQ(logFormat("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
    EXPECT_EQ(logFormat("%s/%s", "a", "b"), "a/b");
    EXPECT_EQ(logFormat("%08llx", 0xbeefULL), "0000beef");
}

TEST(LogFormat, LongStringsSurvive)
{
    std::string big(5000, 'x');
    EXPECT_EQ(logFormat("%s", big.c_str()).size(), 5000u);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    ASSERT_EQ(eq.curTick(), 100u);
    EXPECT_DEATH(eq.schedule(50, [] {}), "scheduling in the past");
}

TEST(PanicIfDeath, FiresOnlyWhenConditionHolds)
{
    panic_if(false, "must not fire");
    EXPECT_DEATH(panic_if(true, "boom %d", 42), "boom 42");
}

} // namespace
} // namespace tsim
