/**
 * @file
 * Unit tests for the statistics framework.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"

namespace tsim
{
namespace
{

TEST(Scalar, Accumulates)
{
    Scalar s;
    EXPECT_EQ(s.value(), 0.0);
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
    s = 7;
    EXPECT_EQ(s.value(), 7.0);
}

TEST(Average, MeanAndCount)
{
    Average a;
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(10);
    a.sample(20);
    a.sample(30);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 60.0);
}

TEST(Histogram, BasicMoments)
{
    Histogram h(1.0, 10);
    for (int i = 1; i <= 5; ++i)
        h.sample(i);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
    EXPECT_DOUBLE_EQ(h.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(h.maxValue(), 5.0);
    EXPECT_NEAR(h.variance(), 2.0, 1e-9);
}

TEST(Histogram, OverflowBucket)
{
    Histogram h(1.0, 4);
    h.sample(100.0);  // way past the last bucket
    EXPECT_EQ(h.buckets().back(), 1u);
    EXPECT_DOUBLE_EQ(h.maxValue(), 100.0);
}

TEST(Histogram, PercentileMonotone)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(i);
    const double p50 = h.percentile(50);
    const double p90 = h.percentile(90);
    const double p99 = h.percentile(99);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_NEAR(p50, 50.0, 2.0);
    EXPECT_NEAR(p90, 90.0, 2.0);
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h(2.0, 8);
    h.sample(3);
    h.sample(9);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    for (auto b : h.buckets())
        EXPECT_EQ(b, 0u);
}

TEST(StatGroup, DumpsNamedValues)
{
    StatGroup g("grp");
    Scalar s;
    s = 42;
    Average a;
    a.sample(5);
    Histogram h(1.0, 4);
    h.sample(2);
    g.addScalar("answer", &s, "the answer");
    g.addAverage("avg", &a);
    g.addHistogram("hist", &h);

    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("grp.answer 42"), std::string::npos);
    EXPECT_NE(out.find("the answer"), std::string::npos);
    EXPECT_NE(out.find("grp.avg.mean 5"), std::string::npos);
    EXPECT_NE(out.find("grp.hist.count 1"), std::string::npos);
}

} // namespace
} // namespace tsim
