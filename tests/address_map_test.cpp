/**
 * @file
 * Unit tests for the RoCoRaBaCh address interleaving.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/address_map.hh"

namespace tsim
{
namespace
{

TEST(AddressMap, ConsecutiveLinesInterleaveChannelsFirst)
{
    AddressMap m(1ULL << 30, 8, 16, 1024);
    for (unsigned i = 0; i < 16; ++i) {
        DramCoord c = m.decode(static_cast<Addr>(i) * lineBytes);
        EXPECT_EQ(c.channel, i % 8u);
    }
}

TEST(AddressMap, BanksAfterChannels)
{
    AddressMap m(1ULL << 30, 8, 16, 1024);
    // Same channel, advancing banks.
    for (unsigned b = 0; b < 16; ++b) {
        DramCoord c = m.decode(static_cast<Addr>(b) * 8 * lineBytes);
        EXPECT_EQ(c.channel, 0u);
        EXPECT_EQ(c.bank, b);
    }
}

TEST(AddressMap, GeometryCoverage)
{
    const std::uint64_t cap = 1ULL << 26;
    AddressMap m(cap, 4, 8, 1024);
    EXPECT_EQ(m.channels(), 4u);
    EXPECT_EQ(m.banks(), 8u);
    // rows * banks * channels * linesPerRow * lineBytes == capacity
    const std::uint64_t lines_per_row = 1024 / lineBytes;
    EXPECT_EQ(m.rowsPerBank() * 4 * 8 * lines_per_row * lineBytes, cap);
}

TEST(AddressMap, DecodeIsInjectiveOverOneRowSpan)
{
    AddressMap m(1ULL << 24, 2, 4, 512);
    std::set<std::tuple<unsigned, unsigned, std::uint64_t,
                        std::uint64_t>>
        seen;
    const unsigned span = 2 * 4 * (512 / lineBytes) * 4;  // 4 rows
    for (unsigned i = 0; i < span; ++i) {
        DramCoord c = m.decode(static_cast<Addr>(i) * lineBytes);
        auto key = std::make_tuple(c.channel, c.bank, c.row, c.col);
        EXPECT_TRUE(seen.insert(key).second)
            << "duplicate coordinate for line " << i;
    }
}

TEST(AddressMap, WrapsBeyondCapacity)
{
    AddressMap m(1ULL << 20, 2, 4, 512);
    DramCoord a = m.decode(0);
    DramCoord b = m.decode(1ULL << 20);
    EXPECT_EQ(a.channel, b.channel);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_EQ(a.row, b.row);
    EXPECT_EQ(a.col, b.col);
}

/** Property: uniform addresses spread evenly over channels/banks. */
class AddressMapUniform
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{};

TEST_P(AddressMapUniform, EvenSpread)
{
    const auto [channels, banks] = GetParam();
    AddressMap m(1ULL << 28, channels, banks, 1024);
    std::vector<unsigned> chan_count(channels, 0);
    std::vector<unsigned> bank_count(banks, 0);
    const unsigned n = 1 << 14;
    for (unsigned i = 0; i < n; ++i) {
        DramCoord c = m.decode(static_cast<Addr>(i) * lineBytes);
        ++chan_count[c.channel];
        ++bank_count[c.bank];
    }
    for (unsigned c = 0; c < channels; ++c)
        EXPECT_EQ(chan_count[c], n / channels);
    for (unsigned b = 0; b < banks; ++b)
        EXPECT_EQ(bank_count[b], n / banks);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, AddressMapUniform,
    ::testing::Values(std::make_pair(2u, 8u), std::make_pair(8u, 16u),
                      std::make_pair(16u, 32u)));

} // namespace
} // namespace tsim
