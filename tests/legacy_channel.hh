/**
 * @file
 * Reference copy of the pre-incremental DRAM channel scheduler.
 *
 * This is the deque-scanning, std::function-callback channel exactly
 * as it stood before the allocation-free incremental rewrite of
 * src/dram/channel.{hh,cc}. It is compiled only into the test binary
 * and the micro_channel benchmark, where it serves as the behavioural
 * oracle: the differential test (channel_sched_test.cpp) and the
 * benchmark's checksum cross-check both replay identical request
 * streams through this scheduler and the production one and demand
 * byte-identical stats.
 *
 * Do not "fix" or optimize this file — its value is being frozen.
 */

#ifndef TSIM_TESTS_LEGACY_CHANNEL_HH
#define TSIM_TESTS_LEGACY_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "dram/channel.hh"
#include "dram/timing.hh"
#include "mem/address_map.hh"
#include "mem/types.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"
#include "tdram/flush_buffer.hh"
#include "tdram/tag_array.hh"

namespace tsim
{

/** One request as seen by the legacy channel (heap-allocating cbs). */
struct LegacyChanReq
{
    std::uint64_t id = 0;
    Addr addr = 0;
    ChanOp op = ChanOp::Read;
    bool isDemandRead = false;

    std::function<void(Tick, const TagResult &)> onTagResult;
    std::function<void(Tick)> onDataDone;

    Tick enqueued = 0;
    DramCoord coord{};
    bool probed = false;
};

/** The pre-change DRAM channel: O(n) deque scans on every kick. */
class LegacyDramChannel : public SimObject
{
  public:
    LegacyDramChannel(EventQueue &eq, std::string name,
                      ChannelConfig cfg, AddressMap map);

    bool canAcceptRead() const { return _readQ.size() < _cfg.readQCap; }
    bool canAcceptWrite() const
    {
        return _writeQ.size() < _cfg.writeQCap;
    }
    std::size_t readQSize() const { return _readQ.size(); }
    std::size_t writeQSize() const { return _writeQ.size(); }

    void enqueue(LegacyChanReq req);
    bool removeRead(std::uint64_t id);

    bool flushContains(Addr addr) const { return _flush.contains(addr); }
    bool flushRemove(Addr addr) { return _flush.remove(addr); }
    unsigned flushSize() const { return _flush.size(); }
    const FlushBuffer &flushBuffer() const { return _flush; }
    void forceDrain();

    std::function<TagResult(Addr)> peekTags;
    std::function<void(Addr, Tick)> onFlushArrive;

    const ChannelConfig &config() const { return _cfg; }

    Histogram readQueueDelay{2.0, 256};
    Scalar issuedReads;
    Scalar issuedWrites;
    Scalar issuedActRd;
    Scalar issuedActWr;
    Scalar probesIssued;
    Scalar probeBankConflicts;
    Scalar refreshes;
    Scalar bytesToCtrl;
    Scalar bytesFromCtrl;
    Scalar dqBusyTicks;
    Scalar dqReservedIdleTicks;
    Scalar turnarounds;
    Scalar dataBankActs;
    Scalar tagBankActs;
    Scalar rowHits;
    Scalar rowConflicts;

    void regStats(StatGroup &g) const;

  private:
    struct BankState
    {
        Tick nextAct = 0;
        Tick tagNextAct = 0;
        bool rowOpen = false;
        std::uint64_t openRow = 0;
        Tick nextPre = 0;
    };

    bool rowHit(const LegacyChanReq &req) const;

    void kick();
    void scheduleKick(Tick when);

    Tick earliestIssue(const LegacyChanReq &req) const;

    void issue(LegacyChanReq req);

    void issueConventional(LegacyChanReq &req, bool is_write);
    void issueActRd(LegacyChanReq &req);
    void issueActWr(LegacyChanReq &req);

    void flushPushRetry(Addr victim);

    bool tryProbe();
    Tick earliestProbe() const;

    Tick reserveDq(bool is_write, Tick start, Tick dur);
    Tick dqEarliest(bool is_write) const;

    Tick fawConstraint() const;
    void recordAct(Tick t);

    void startRefresh();

    bool inWriteDrain() const { return _drainingWrites; }

    ChannelConfig _cfg;
    AddressMap _map;
    const TimingParams &_t;

    std::deque<LegacyChanReq> _readQ;
    std::deque<LegacyChanReq> _writeQ;

    std::vector<BankState> _banks;
    std::deque<Tick> _actWindow;
    Tick _lastAct = 0;
    Tick _caFreeAt = 0;
    Tick _hmFreeAt = 0;
    Tick _dqFreeAt = 0;
    bool _dqLastWrite = false;
    bool _dqEverUsed = false;
    Tick _refreshUntil = 0;
    bool _drainingWrites = false;
    Tick _nextKick = 0;

    FlushBuffer _flush;
    Tick _flushDrainUntil = 0;

    std::uint64_t _nextReqSeq = 0;
};

} // namespace tsim

#endif // TSIM_TESTS_LEGACY_CHANNEL_HH
