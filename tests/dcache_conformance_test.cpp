/**
 * @file
 * Cross-policy conformance harness (DESIGN.md §16): every DRAM-cache
 * controller kind — the paper's designs and the competitor
 * controllers (TicToc, Banshee) alike — runs the same scenario
 * matrix (demand hits, misses, dirty evictions, and Banshee's
 * page-grain spills, under both page policies and under the shard
 * engine at --threads 1 and 4) and must come out:
 *
 *  - checker-clean: zero inline protocol violations over a non-empty
 *    event stream, serial and sharded;
 *  - byte-identical: rerunning the same configuration reproduces the
 *    stats dump and the .tdt trace exactly, and --threads 4
 *    reproduces the --threads 1 bytes;
 *  - policy-conformant: TicToc never issues a clean writeback (its
 *    main-memory write count equals its write-miss-over-dirty-victim
 *    count exactly), and Banshee's fill count matches the remap
 *    table's churn (installs) with evictions never exceeding them.
 *
 * The matrix is deliberately cheap per cell so the whole grid runs
 * in the tier-1 suite; the determinism shell gate covers the same
 * invariance end-to-end through the CLI with more threads.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "dcache/banshee.hh"
#include "dcache/dram_cache.hh"
#include "system/system.hh"

namespace tsim
{
namespace
{

const Design kAllKinds[] = {
    Design::CascadeLake, Design::Alloy,  Design::Bear,
    Design::Ndc,         Design::Tdram,  Design::TdramNoProbe,
    Design::Ideal,       Design::NoCache, Design::TicToc,
    Design::Banshee,
};

SystemConfig
conformanceCfg(Design design, PagePolicy policy, unsigned threads)
{
    SystemConfig cfg;
    cfg.design = design;
    cfg.dcacheCapacity = 4ULL << 20;
    cfg.dcachePagePolicy = policy;
    cfg.cores.cores = 2;
    cfg.cores.opsPerCore = 1500;
    cfg.cores.llcBytes = 256 * 1024;
    cfg.warmupOpsPerCore = 10000;
    cfg.checkProtocol = true;
    cfg.threads = threads;
    return cfg;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Everything one run of the matrix leaves behind. */
struct RunOutput
{
    SimReport report;
    std::string stats;       ///< full dumpStats() rendering
    std::string trace;       ///< raw .tdt bytes
    std::uint64_t outcome[static_cast<unsigned>(
        AccessOutcome::NumOutcomes)] = {};
    std::uint64_t mmReads = 0;
    std::uint64_t mmWrites = 0;

    // Banshee-only remap-table churn.
    std::uint64_t pageFills = 0;
    std::uint64_t remapInstalls = 0;
    std::uint64_t remapEvictions = 0;
    std::uint64_t spilledLines = 0;

    std::uint64_t
    hits() const
    {
        std::uint64_t n = 0;
        for (unsigned o = 0;
             o < static_cast<unsigned>(AccessOutcome::NumOutcomes);
             ++o) {
            if (outcomeIsHit(static_cast<AccessOutcome>(o)))
                n += outcome[o];
        }
        return n;
    }

    std::uint64_t
    misses() const
    {
        std::uint64_t n = 0;
        for (unsigned o = 0;
             o < static_cast<unsigned>(AccessOutcome::NumOutcomes);
             ++o) {
            if (!outcomeIsHit(static_cast<AccessOutcome>(o)))
                n += outcome[o];
        }
        return n;
    }

    std::uint64_t
    dirtyVictimMisses() const
    {
        return outcome[static_cast<unsigned>(
                   AccessOutcome::ReadMissDirty)] +
               outcome[static_cast<unsigned>(
                   AccessOutcome::WriteMissDirty)];
    }
};

RunOutput
runCase(Design design, PagePolicy policy, unsigned threads,
        const std::string &tag)
{
    SystemConfig cfg = conformanceCfg(design, policy, threads);
    const std::string trace_path =
        ::testing::TempDir() + "conformance_" + designName(design) +
        (policy == PagePolicy::Open ? "_open_" : "_close_") + tag +
        ".tdt";
    cfg.tracePath = trace_path;

    RunOutput out;
    {
        // is.D: 6x-capacity random footprint at 50% writes — the one
        // profile that exercises every matrix scenario (hits, misses
        // over clean/dirty/invalid victims, and enough page reuse
        // contrast for Banshee fills and spills) on every design.
        System sys(cfg, findWorkload("is.D"));
        out.report = sys.run();
        std::ostringstream ss;
        sys.dumpStats(ss);
        out.stats = ss.str();
        for (unsigned o = 0;
             o < static_cast<unsigned>(AccessOutcome::NumOutcomes);
             ++o) {
            out.outcome[o] = sys.dcache().outcomeCount(
                static_cast<AccessOutcome>(o));
        }
        out.mmReads = static_cast<std::uint64_t>(
            sys.mainMemory().reads.value());
        out.mmWrites = static_cast<std::uint64_t>(
            sys.mainMemory().writes.value());
        if (auto *b = dynamic_cast<BansheeCtrl *>(&sys.dcache())) {
            out.pageFills =
                static_cast<std::uint64_t>(b->pageFills.value());
            out.spilledLines =
                static_cast<std::uint64_t>(b->spilledLines.value());
            out.remapInstalls = static_cast<std::uint64_t>(
                b->remapTable().installs.value());
            out.remapEvictions = static_cast<std::uint64_t>(
                b->remapTable().evictions.value());
        }
    }
    out.trace = slurp(trace_path);
    return out;
}

class Conformance
    : public ::testing::TestWithParam<std::tuple<Design, PagePolicy>>
{
};

TEST_P(Conformance, CheckerCleanAndByteIdenticalAcrossThreads)
{
    const auto [design, policy] = GetParam();

    // Canonical sharded schedule, run twice, plus a 4-thread run and
    // the classic single-queue engine.
    const RunOutput t1a = runCase(design, policy, 1, "t1a");
    const RunOutput t1b = runCase(design, policy, 1, "t1b");
    const RunOutput t4 = runCase(design, policy, 4, "t4");
    const RunOutput serial = runCase(design, policy, 0, "serial");

    // Checker-clean everywhere, over a non-empty stream.
    for (const RunOutput *r : {&t1a, &t1b, &t4, &serial}) {
        EXPECT_GT(r->report.checkEvents, 0u);
        EXPECT_EQ(r->report.checkViolations, 0u);
    }

    // Byte-identical rerun, and byte-identical across thread counts.
    ASSERT_FALSE(t1a.trace.empty());
    EXPECT_EQ(t1a.stats, t1b.stats);
    EXPECT_TRUE(t1a.trace == t1b.trace)
        << "rerun produced a different trace";
    EXPECT_EQ(t1a.stats, t4.stats);
    EXPECT_TRUE(t1a.trace == t4.trace)
        << "--threads 4 diverged from --threads 1";

    // The scenario matrix actually exercised its scenarios.
    EXPECT_GT(t1a.report.demandReads, 0u);
    EXPECT_GT(t1a.report.demandWrites, 0u);
    if (design != Design::NoCache) {
        EXPECT_GT(t1a.hits(), 0u);
    }
    if (design != Design::NoCache && design != Design::Ideal) {
        EXPECT_GT(t1a.misses(), 0u);
        EXPECT_GT(t1a.dirtyVictimMisses(), 0u)
            << "matrix never evicted a dirty victim";
    }
    if (design == Design::Banshee) {
        EXPECT_GT(t1a.pageFills, 0u)
            << "matrix never triggered a page fill";
    }
}

std::string
conformanceName(
    const ::testing::TestParamInfo<std::tuple<Design, PagePolicy>> &i)
{
    std::string name = designName(std::get<0>(i.param));
    // designName() can contain '-' (TDRAM-noprobe); gtest parameter
    // names must be alphanumeric.
    name.erase(std::remove_if(name.begin(), name.end(),
                              [](unsigned char ch) {
                                  return !std::isalnum(ch);
                              }),
               name.end());
    name +=
        std::get<1>(i.param) == PagePolicy::Open ? "Open" : "Close";
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, Conformance,
    ::testing::Combine(::testing::ValuesIn(kAllKinds),
                       ::testing::Values(PagePolicy::Close,
                                         PagePolicy::Open)),
    conformanceName);

class ConformancePolicy
    : public ::testing::TestWithParam<PagePolicy>
{
};

TEST_P(ConformancePolicy, TicTocNeverIssuesCleanWriteback)
{
    // TicToc's whole point: the only main-memory writes are dirty
    // victims displaced by demand writes (read misses over a dirty
    // victim bypass, leaving the victim resident). Any extra mm
    // write would be a clean writeback the policy forbids.
    const RunOutput r = runCase(Design::TicToc, GetParam(), 0, "tt");
    EXPECT_EQ(r.mmWrites,
              r.outcome[static_cast<unsigned>(
                  AccessOutcome::WriteMissDirty)]);
}

TEST_P(ConformancePolicy, BansheeFillCountMatchesRemapChurn)
{
    // Every timed page fill is a remap-table install and vice versa;
    // evictions can only come from installs into full sets.
    const RunOutput r = runCase(Design::Banshee, GetParam(), 0, "bs");
    EXPECT_GT(r.pageFills, 0u);
    EXPECT_EQ(r.pageFills, r.remapInstalls);
    EXPECT_LE(r.remapEvictions, r.remapInstalls);
    // Spilled lines only exist as part of a fill's victim eviction.
    if (r.remapEvictions == 0) {
        EXPECT_EQ(r.spilledLines, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(BothPolicies, ConformancePolicy,
                         ::testing::Values(PagePolicy::Close,
                                           PagePolicy::Open),
                         [](const ::testing::TestParamInfo<PagePolicy>
                                &i) {
                             return i.param == PagePolicy::Open
                                        ? "Open"
                                        : "Close";
                         });

} // namespace
} // namespace tsim
