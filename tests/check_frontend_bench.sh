#!/bin/sh
# Gate a BENCH_frontend.json produced by bench/micro_frontend:
#
#   - checksum_match must be true for every design (the fast front end
#     and the frozen legacy snapshot simulated identical systems);
#   - fast allocs_per_req must be ~zero (<= 0.05) for every design —
#     this is deterministic, so any rise means a capture or pool
#     regression pushed the hot path back onto the allocator;
#   - geomean_speedup must be >= 1.5 (the PR's headline perf target).
#
# Usage: check_frontend_bench.sh <BENCH_frontend.json>
# Exit 0 when all gates pass, 1 otherwise.
set -u

JSON="${1:?usage: check_frontend_bench.sh <BENCH_frontend.json>}"
[ -f "$JSON" ] || { echo "FAIL: no such file: $JSON"; exit 1; }

fail=0

if grep -q '"checksum_match": false' "$JSON"; then
    echo "FAIL: fast/legacy checksum divergence in $JSON"
    fail=1
fi

# The benchmark emits one "allocs_per_req" per stack; the fast stack's
# line also carries "sbo_heap_fallbacks", which is what we key on.
worst_allocs=$(awk '
    /"sbo_heap_fallbacks"/ {
        if (match($0, /"allocs_per_req": [0-9.]+/)) {
            v = substr($0, RSTART + 18, RLENGTH - 18) + 0
            if (v > worst) worst = v
        }
    }
    END { printf "%.6f", worst }' "$JSON")
if ! awk "BEGIN { exit !($worst_allocs <= 0.05) }"; then
    echo "FAIL: fast-path allocs_per_req $worst_allocs > 0.05"
    fail=1
fi

geomean=$(awk '
    /"geomean_speedup"/ {
        if (match($0, /[0-9.]+/))
            printf "%s", substr($0, RSTART, RLENGTH)
    }' "$JSON")
if [ -z "$geomean" ]; then
    echo "FAIL: no geomean_speedup in $JSON"
    fail=1
elif ! awk "BEGIN { exit !($geomean >= 1.5) }"; then
    echo "FAIL: geomean_speedup $geomean < 1.5"
    fail=1
fi

if [ "$fail" -eq 0 ]; then
    echo "frontend bench gate PASSED:" \
         "geomean ${geomean}x, worst fast allocs/req $worst_allocs"
fi
exit "$fail"
