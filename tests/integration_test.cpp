/**
 * @file
 * Full-system integration tests: every design runs a real workload
 * end-to-end; invariants on determinism, conservation, dirty-line
 * accounting, and the paper's qualitative ordering are checked.
 */

#include <gtest/gtest.h>

#include "system/system.hh"

namespace tsim
{
namespace
{

SystemConfig
smallCfg(Design d)
{
    SystemConfig cfg;
    cfg.design = d;
    cfg.dcacheCapacity = 4ULL << 20;
    cfg.cores.cores = 4;
    cfg.cores.opsPerCore = 4000;
    cfg.cores.llcBytes = 512 * 1024;
    cfg.warmupOpsPerCore = 30000;
    return cfg;
}

const Design kAllDesigns[] = {
    Design::CascadeLake, Design::Alloy,        Design::Bear,
    Design::Ndc,         Design::Tdram,        Design::TdramNoProbe,
    Design::Ideal,       Design::NoCache,
};

class EndToEnd : public ::testing::TestWithParam<Design>
{};

TEST_P(EndToEnd, CompletesAndConserves)
{
    SystemConfig cfg = smallCfg(GetParam());
    System sys(cfg, findWorkload("is.C"));
    SimReport r = sys.run();

    EXPECT_GT(r.runtimeTicks, 0u);
    // Every issued demand completed.
    CoreEngine *engine = sys.coreEngine();
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->demandReadsIssued.value(),
              static_cast<double>(r.demandReads));
    EXPECT_EQ(engine->demandWritesIssued.value(),
              static_cast<double>(r.demandWrites));
    EXPECT_EQ(engine->opsRetired.value(),
              static_cast<double>(cfg.cores.cores) *
                  cfg.cores.opsPerCore);
    // Outcome fractions sum to 1 (when any demands exist).
    if (GetParam() != Design::NoCache && r.demandReads > 0) {
        double sum = 0;
        for (double f : r.outcomeFrac)
            sum += f;
        EXPECT_NEAR(sum, 1.0, 1e-9);
    }
}

TEST_P(EndToEnd, DeterministicAcrossRuns)
{
    SystemConfig cfg = smallCfg(GetParam());
    cfg.cores.opsPerCore = 2000;
    cfg.warmupOpsPerCore = 10000;
    SimReport a = runOne(cfg, findWorkload("bfs.22"));
    SimReport b = runOne(cfg, findWorkload("bfs.22"));
    EXPECT_EQ(a.runtimeTicks, b.runtimeTicks);
    EXPECT_EQ(a.demandReads, b.demandReads);
    EXPECT_EQ(a.demandWrites, b.demandWrites);
    EXPECT_DOUBLE_EQ(a.missRatio, b.missRatio);
    EXPECT_DOUBLE_EQ(a.tagCheckNs, b.tagCheckNs);
    EXPECT_DOUBLE_EQ(a.energy.totalJ(), b.energy.totalJ());
}

INSTANTIATE_TEST_SUITE_P(
    Designs, EndToEnd, ::testing::ValuesIn(kAllDesigns),
    [](const ::testing::TestParamInfo<Design> &pi) {
        std::string n = designName(pi.param);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(Invariants, DirtyVictimsReachMainMemory)
{
    // On a high-miss workload with stores, every dirty miss victim
    // must be written back to main memory (and only those: fills
    // come back as reads).
    SystemConfig cfg = smallCfg(Design::Tdram);
    System sys(cfg, findWorkload("is.D"));
    SimReport r = sys.run();

    const auto dirty_evictions =
        r.outcomeFrac[static_cast<unsigned>(
            AccessOutcome::ReadMissDirty)] +
        r.outcomeFrac[static_cast<unsigned>(
            AccessOutcome::WriteMissDirty)];
    const double expected =
        dirty_evictions *
        static_cast<double>(r.demandReads + r.demandWrites);
    double superseded = 0, in_flush = 0;
    for (unsigned c = 0; c < sys.dcache().numChannels(); ++c) {
        superseded +=
            sys.dcache().channel(c).flushBuffer().superseded.value();
        in_flush += sys.dcache().channel(c).flushSize();
    }
    const double mm_writes = sys.mainMemory().writes.value();
    // mm writes == dirty evictions - (superseded + still buffered).
    EXPECT_NEAR(mm_writes, expected - superseded - in_flush,
                expected * 0.01 + 2);
}

TEST(Invariants, MissRatioConsistentAcrossDesigns)
{
    // The access-outcome mix is a property of workload x cache
    // organization; protocols only reorder events slightly.
    double first = -1;
    for (Design d :
         {Design::CascadeLake, Design::Ndc, Design::Tdram}) {
        SystemConfig cfg = smallCfg(d);
        SimReport r = runOne(cfg, findWorkload("ft.C"));
        if (first < 0)
            first = r.missRatio;
        else
            EXPECT_NEAR(r.missRatio, first, 0.05) << designName(d);
    }
}

TEST(Invariants, SeedChangesStreamButNotShape)
{
    SystemConfig cfg = smallCfg(Design::Tdram);
    SimReport a = runOne(cfg, findWorkload("is.C"));
    cfg.seed = 99;
    SimReport b = runOne(cfg, findWorkload("is.C"));
    EXPECT_NE(a.runtimeTicks, b.runtimeTicks);
    EXPECT_NEAR(a.missRatio, b.missRatio, 0.05);
}

TEST(PaperOrdering, TdramTagCheckFastest)
{
    // Fig 9's qualitative result on one high-miss workload.
    const auto &wl = findWorkload("ft.C");
    const SimReport cl = runOne(smallCfg(Design::CascadeLake), wl);
    const SimReport ndc = runOne(smallCfg(Design::Ndc), wl);
    const SimReport td = runOne(smallCfg(Design::Tdram), wl);
    EXPECT_LT(td.tagCheckNs, ndc.tagCheckNs);
    EXPECT_LT(td.tagCheckNs, cl.tagCheckNs);
    EXPECT_GT(cl.tagCheckNs / td.tagCheckNs, 1.5);
}

TEST(PaperOrdering, TdramNoProbeSlowerTagCheckThanTdram)
{
    const auto &wl = findWorkload("ft.C");
    const SimReport td = runOne(smallCfg(Design::Tdram), wl);
    const SimReport np = runOne(smallCfg(Design::TdramNoProbe), wl);
    EXPECT_LT(td.tagCheckNs, np.tagCheckNs);
    EXPECT_GT(td.probes, 0u);
    EXPECT_EQ(np.probes, 0u);
}

TEST(PaperOrdering, TdramReducesBloatVsConventional)
{
    const auto &wl = findWorkload("ft.C");
    const SimReport cl = runOne(smallCfg(Design::CascadeLake), wl);
    const SimReport alloy = runOne(smallCfg(Design::Alloy), wl);
    const SimReport td = runOne(smallCfg(Design::Tdram), wl);
    const SimReport ndc = runOne(smallCfg(Design::Ndc), wl);
    EXPECT_LT(td.bloat, cl.bloat);
    EXPECT_LT(cl.bloat, alloy.bloat);  // Alloy's 80 B bursts
    EXPECT_NEAR(td.bloat, ndc.bloat, 0.05 * ndc.bloat);
}

TEST(PaperOrdering, IdealBoundsTdramRuntime)
{
    const auto &wl = findWorkload("is.C");
    const SimReport td = runOne(smallCfg(Design::Tdram), wl);
    const SimReport ideal = runOne(smallCfg(Design::Ideal), wl);
    // Ideal (zero-latency tags) is the upper bound on performance.
    EXPECT_LE(ideal.runtimeTicks,
              td.runtimeTicks + td.runtimeTicks / 10);
}

TEST(FlushBuffer, BoundedOccupancyInRealRuns)
{
    SystemConfig cfg = smallCfg(Design::Tdram);
    cfg.flushEntries = 16;
    System sys(cfg, findWorkload("is.D"));
    SimReport r = sys.run();
    EXPECT_LE(r.flushMaxOcc, 16.0);
    EXPECT_EQ(r.flushStalls, 0u);  // §V-E: 16 entries never stall
}

TEST(Energy, TransfersDominateAndScaleWithBloat)
{
    const auto &wl = findWorkload("ft.C");
    const SimReport cl = runOne(smallCfg(Design::CascadeLake), wl);
    const SimReport td = runOne(smallCfg(Design::Tdram), wl);
    // TDRAM moves less data => less total energy (Fig 13).
    EXPECT_LT(td.energy.totalJ(), cl.energy.totalJ());
    EXPECT_GT(cl.energy.cacheDqJ, 0.0);
}

} // namespace
} // namespace tsim
