/**
 * @file
 * Main-memory (DDR5 backing store) tests.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dram/main_memory.hh"

namespace tsim
{
namespace
{

MainMemoryConfig
smallCfg()
{
    MainMemoryConfig cfg;
    cfg.capacityBytes = 1ULL << 26;
    cfg.channels = 2;
    return cfg;
}

TEST(MainMemory, ReadCompletesWithDdr5Latency)
{
    EventQueue eq;
    MainMemory mm(eq, "mm", smallCfg());
    Tick done = 0;
    mm.read(0x1000, [&](Tick t) { done = t; });
    eq.run(nsToTicks(500));
    // DDR5 preset: tRCD 16 + tCL 16 + tBURST 2 = 34 ns unloaded.
    EXPECT_EQ(done, nsToTicks(34));
    EXPECT_EQ(mm.reads.value(), 1.0);
}

TEST(MainMemory, WritesAccountedAndPosted)
{
    EventQueue eq;
    MainMemory mm(eq, "mm", smallCfg());
    for (int i = 0; i < 10; ++i)
        mm.write(static_cast<Addr>(i) * lineBytes);
    eq.run(nsToTicks(2000));
    EXPECT_EQ(mm.writes.value(), 10.0);
    EXPECT_EQ(mm.bytesMoved(), 10u * lineBytes);
}

TEST(MainMemory, ChannelsInterleaveByLine)
{
    EventQueue eq;
    MainMemory mm(eq, "mm", smallCfg());
    int done = 0;
    for (int i = 0; i < 8; ++i)
        mm.read(static_cast<Addr>(i) * lineBytes,
                [&](Tick) { ++done; });
    eq.run(nsToTicks(2000));
    EXPECT_EQ(done, 8);
    EXPECT_GT(mm.channel(0).issuedReads.value(), 0.0);
    EXPECT_GT(mm.channel(1).issuedReads.value(), 0.0);
}

TEST(MainMemory, FrontQueueAbsorbsBursts)
{
    EventQueue eq;
    MainMemoryConfig cfg = smallCfg();
    cfg.readQCap = 4;  // tiny controller queue
    MainMemory mm(eq, "mm", cfg);
    int done = 0;
    const int n = 64;
    for (int i = 0; i < n; ++i)
        mm.read(static_cast<Addr>(i) * lineBytes,
                [&](Tick) { ++done; });
    eq.run(nsToTicks(100000));
    EXPECT_EQ(done, n);
    EXPECT_GT(mm.frontQueueDepth.count(), 0u);
}

TEST(MainMemory, LoadIncreasesLatency)
{
    EventQueue eq;
    MainMemory mm(eq, "mm", smallCfg());
    std::vector<Tick> done;
    for (int i = 0; i < 32; ++i)
        mm.read(static_cast<Addr>(i) * lineBytes,
                [&](Tick t) { done.push_back(t); });
    eq.run(nsToTicks(100000));
    ASSERT_EQ(done.size(), 32u);
    // Later requests observe queueing: the last response is well
    // beyond the 34 ns unloaded latency.
    EXPECT_GT(done.back(), nsToTicks(60));
    EXPECT_GT(mm.readLatency.maxValue(), 34.0);
}

} // namespace
} // namespace tsim
