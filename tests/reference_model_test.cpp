/**
 * @file
 * Golden-model checker: drives every DRAM-cache design with a long
 * random demand stream and verifies, access by access, that the
 * outcome classification matches an independent reference model of a
 * direct-mapped write-allocate insert-on-miss cache. This is the
 * strongest functional-correctness net in the suite — a protocol bug
 * that mis-orders tag transitions shows up here immediately.
 */

#include <gtest/gtest.h>

#include <map>

#include "dcache/dram_cache.hh"
#include "sim/rng.hh"

namespace tsim
{
namespace
{

/** Independent reference: direct-mapped cache with dirty bits. */
class GoldenCache
{
  public:
    explicit GoldenCache(std::uint64_t capacity)
        : _sets(capacity / lineBytes)
    {}

    AccessOutcome
    access(Addr addr, bool is_write)
    {
        const std::uint64_t set = (addr / lineBytes) % _sets;
        auto it = _lines.find(set);
        const bool present =
            it != _lines.end() && it->second.addr == addr;

        AccessOutcome o;
        if (present) {
            o = is_write ? (it->second.dirty
                                ? AccessOutcome::WriteHitDirty
                                : AccessOutcome::WriteHitClean)
                         : (it->second.dirty
                                ? AccessOutcome::ReadHitDirty
                                : AccessOutcome::ReadHitClean);
        } else if (it == _lines.end()) {
            o = is_write ? AccessOutcome::WriteMissInvalid
                         : AccessOutcome::ReadMissInvalid;
        } else if (it->second.dirty) {
            o = is_write ? AccessOutcome::WriteMissDirty
                         : AccessOutcome::ReadMissDirty;
        } else {
            o = is_write ? AccessOutcome::WriteMissClean
                         : AccessOutcome::ReadMissClean;
        }

        // Transition: insert-on-miss, write-allocate.
        if (is_write) {
            _lines[set] = {addr, true};
        } else if (present) {
            // no state change on read hit
        } else {
            _lines[set] = {addr, false};
        }
        return o;
    }

  private:
    struct Line
    {
        Addr addr;
        bool dirty;
    };

    std::uint64_t _sets;
    std::map<std::uint64_t, Line> _lines;
};

class GoldenModel : public ::testing::TestWithParam<Design>
{};

TEST_P(GoldenModel, OutcomeStreamMatches)
{
    constexpr std::uint64_t cap = 1 << 18;  // 4096 lines
    EventQueue eq;
    MainMemoryConfig mm_cfg;
    mm_cfg.capacityBytes = 1 << 24;
    mm_cfg.refreshEnabled = false;
    MainMemory mm(eq, "mm", mm_cfg);
    DramCacheConfig cfg;
    cfg.capacityBytes = cap;
    cfg.channels = 2;
    cfg.refreshEnabled = false;
    auto cache = makeDramCache(eq, GetParam(), cfg, mm);

    GoldenCache golden(cap);
    Rng rng(GetParam() == Design::Tdram ? 11u : 23u);
    PacketId id = 1;

    // Serialized accesses (each runs to completion) so the golden
    // model's sequential semantics apply exactly.
    for (int i = 0; i < 3000; ++i) {
        const Addr addr = rng.range(3 * (cap / lineBytes) / 2) *
                          lineBytes;  // 1.5x capacity footprint
        const bool is_write = rng.chance(0.35);

        MemPacket pkt;
        pkt.id = id++;
        pkt.addr = addr;
        pkt.cmd = is_write ? MemCmd::Write : MemCmd::Read;
        AccessOutcome measured = AccessOutcome::NumOutcomes;
        bool done = false;
        cache->access(pkt, [&](MemPacket &p) {
            measured = p.outcome;
            done = true;
        });
        while (!done && eq.step()) {
        }
        ASSERT_TRUE(done);
        eq.run();  // retire fills/writebacks before the next access
        // Drain device-side victim buffers so the flush-buffer fast
        // paths (a deliberate TDRAM feature tested elsewhere) do not
        // enter this comparison of pure cache semantics.
        for (unsigned c = 0; c < cache->numChannels(); ++c)
            cache->channel(c).forceDrain();
        eq.run();

        const AccessOutcome expected = golden.access(addr, is_write);
        ASSERT_EQ(measured, expected)
            << "access " << i << " addr " << std::hex << addr
            << (is_write ? " W" : " R") << " got "
            << outcomeName(measured) << " want "
            << outcomeName(expected);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Designs, GoldenModel,
    ::testing::Values(Design::CascadeLake, Design::Alloy,
                      Design::Bear, Design::Ndc, Design::Tdram,
                      Design::Ideal),
    [](const ::testing::TestParamInfo<Design> &pi) {
        std::string n = designName(pi.param);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

} // namespace
} // namespace tsim
