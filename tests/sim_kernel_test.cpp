/**
 * @file
 * Unit tests for the simulation kernel: event queue ordering,
 * determinism, tick accounting, and the RNG.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/ticks.hh"

namespace tsim
{
namespace
{

TEST(Ticks, Conversions)
{
    EXPECT_EQ(nsToTicks(1), 1000u);
    EXPECT_EQ(nsToTicks(7.5), 7500u);
    EXPECT_EQ(nsToTicks(0.5), 500u);
    EXPECT_DOUBLE_EQ(ticksToNs(12000), 12.0);
    EXPECT_EQ(clockPeriod(2.0), 500u);
    EXPECT_EQ(clockPeriod(5.0), 200u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(300, [&] { order.push_back(3); });
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(200, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 300u);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(500, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CallbackCanScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] {
        ++fired;
        eq.schedule(20, [&] {
            ++fired;
            eq.schedule(30, [&] { ++fired; });
        });
    });
    std::uint64_t n = eq.run();
    EXPECT_EQ(n, 3u);
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickSelfSchedulingRunsSameTick)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(5, [&] {
        if (++count < 4)
            eq.schedule(eq.curTick(), [&] { ++count; });
    });
    eq.run();
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.curTick(), 5u);
}

TEST(EventQueue, RunWithLimitStopsAndAdvances)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(100, [&] { ++fired; });
    eq.schedule(200, [&] { ++fired; });
    std::uint64_t n = eq.run(150);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.curTick(), 150u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, LimitBoundaryInclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(100, [&] { ++fired; });
    eq.run(100);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, NextEventTick)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextEventTick(), maxTick);
    eq.schedule(42, [] {});
    EXPECT_EQ(eq.nextEventTick(), 42u);
}

TEST(EventQueue, StepExecutesOneEvent)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(fired, 2);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, RangeRespectsBound)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.range(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    for (int i = 0; i < 20000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

/** Property sweep: range() is roughly uniform for several bounds. */
class RngUniformity : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RngUniformity, BucketsRoughlyEqual)
{
    const std::uint64_t bound = GetParam();
    Rng r(bound * 1234567 + 1);
    std::vector<int> counts(bound, 0);
    const int draws = 20000;
    for (int i = 0; i < draws; ++i)
        ++counts[r.range(bound)];
    const double expect = static_cast<double>(draws) / bound;
    for (auto c : counts)
        EXPECT_NEAR(c, expect, expect * 0.5);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngUniformity,
                         ::testing::Values(2, 3, 8, 10, 17));

} // namespace
} // namespace tsim
