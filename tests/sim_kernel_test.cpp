/**
 * @file
 * Unit tests for the simulation kernel: event queue ordering,
 * determinism, tick accounting, and the RNG.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <functional>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/ticks.hh"

namespace tsim
{
namespace
{

TEST(Ticks, Conversions)
{
    EXPECT_EQ(nsToTicks(1), 1000u);
    EXPECT_EQ(nsToTicks(7.5), 7500u);
    EXPECT_EQ(nsToTicks(0.5), 500u);
    EXPECT_DOUBLE_EQ(ticksToNs(12000), 12.0);
    EXPECT_EQ(clockPeriod(2.0), 500u);
    EXPECT_EQ(clockPeriod(5.0), 200u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(300, [&] { order.push_back(3); });
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(200, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 300u);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(500, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CallbackCanScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] {
        ++fired;
        eq.schedule(20, [&] {
            ++fired;
            eq.schedule(30, [&] { ++fired; });
        });
    });
    std::uint64_t n = eq.run();
    EXPECT_EQ(n, 3u);
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickSelfSchedulingRunsSameTick)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(5, [&] {
        if (++count < 4)
            eq.schedule(eq.curTick(), [&] { ++count; });
    });
    eq.run();
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.curTick(), 5u);
}

TEST(EventQueue, RunWithLimitStopsAndAdvances)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(100, [&] { ++fired; });
    eq.schedule(200, [&] { ++fired; });
    std::uint64_t n = eq.run(150);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.curTick(), 150u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, LimitBoundaryInclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(100, [&] { ++fired; });
    eq.run(100);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, NextEventTick)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextEventTick(), maxTick);
    eq.schedule(42, [] {});
    EXPECT_EQ(eq.nextEventTick(), 42u);
}

/**
 * The shard engine's window contract: runBefore(B) owns [curTick, B)
 * — an event exactly at B belongs to the *next* window, while run(B)
 * stays inclusive. Both engines must agree on who executes a
 * boundary-tick event or serial and sharded schedules diverge.
 */
TEST(EventQueue, RunBeforeExcludesTheWindowBound)
{
    constexpr Tick W = 1000;
    EventQueue eq;
    std::vector<Tick> fired;
    for (Tick t : {W - 1, W, W + 1})
        eq.schedule(t, [&fired, &eq] { fired.push_back(eq.curTick()); });

    EXPECT_EQ(eq.runBefore(W), 1u);        // only W-1 is inside
    EXPECT_EQ(fired, std::vector<Tick>({W - 1}));
    EXPECT_EQ(eq.curTick(), W);            // time still reaches the bound
    EXPECT_EQ(eq.nextEventTick(), W);      // boundary event still pending

    EXPECT_EQ(eq.runBefore(2 * W), 2u);    // next window owns W and W+1
    EXPECT_EQ(fired, std::vector<Tick>({W - 1, W, W + 1}));
    EXPECT_EQ(eq.curTick(), 2 * W);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunBeforeAdvancesOverEmptyWindows)
{
    EventQueue eq;
    EXPECT_EQ(eq.runBefore(500), 0u);
    EXPECT_EQ(eq.curTick(), 500u);
    // Scheduling at the reached bound is legal (not the past).
    int fired = 0;
    eq.schedule(500, [&] { ++fired; });
    eq.runBefore(501);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, StepExecutesOneEvent)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ScheduleInZeroFromCallbackRunsAtCurrentTick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(1000, [&] {
        order.push_back(1);
        eq.scheduleIn(0, [&] {
            order.push_back(2);
            EXPECT_EQ(eq.curTick(), 1000u);
        });
    });
    eq.schedule(1001, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "scheduling in the past");
}

/**
 * Static determinism: a pseudo-random mixture of near-future (wheel)
 * and far-future (heap) events must execute in exact (tick, seq)
 * order, i.e. the two-level structure is invisible.
 */
TEST(EventQueue, NearAndFarEventsExecuteInGlobalOrder)
{
    EventQueue eq;
    Rng rng(42);
    const int n = 800;
    std::vector<std::pair<Tick, int>> expected;
    std::vector<int> order;
    for (int i = 0; i < n; ++i) {
        // Span ~10 wheel horizons so plenty of events take the
        // far-future path and migrate back in.
        const Tick when = rng.range(10 * EventQueue::horizonTicks);
        expected.emplace_back(when, i);
        eq.schedule(when, [&order, i] { order.push_back(i); });
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    EXPECT_EQ(eq.size(), static_cast<std::size_t>(n));
    eq.run();
    ASSERT_EQ(order.size(), expected.size());
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], expected[i].second);
    EXPECT_TRUE(eq.empty());
}

/**
 * Dynamic determinism: callbacks that schedule new events (same
 * tick, short-horizon, and beyond the wheel horizon) must match a
 * naive sorted-list reference executing the same decision process.
 */
TEST(EventQueue, ReschedulingStressMatchesReferenceKernel)
{
    struct RefEvent
    {
        Tick when;
        std::uint64_t seq;
        int id;
    };

    auto decideDelay = [](Rng &rng) -> Tick {
        switch (rng.range(4)) {
          case 0: return 0;                               // same tick
          case 1: return 1 + rng.range(5000);             // in-bucket
          case 2: return rng.range(EventQueue::horizonTicks);
          default:
            return EventQueue::horizonTicks +
                   rng.range(4 * EventQueue::horizonTicks);
        }
    };

    // Reference: flat vector, pop the (when, seq) minimum.
    std::vector<int> ref_order;
    {
        Rng rng(7);
        std::vector<RefEvent> pending;
        std::uint64_t seq = 0;
        int next_id = 0;
        for (int i = 0; i < 32; ++i)
            pending.push_back({rng.range(1000), seq++, next_id++});
        while (!pending.empty() && next_id < 3000) {
            auto it = std::min_element(
                pending.begin(), pending.end(),
                [](const RefEvent &a, const RefEvent &b) {
                    if (a.when != b.when)
                        return a.when < b.when;
                    return a.seq < b.seq;
                });
            const RefEvent ev = *it;
            pending.erase(it);
            ref_order.push_back(ev.id);
            const unsigned children = rng.range(3);
            for (unsigned c = 0; c < children; ++c) {
                pending.push_back(
                    {ev.when + decideDelay(rng), seq++, next_id++});
            }
        }
    }

    // Real kernel, same decision process.
    std::vector<int> order;
    {
        Rng rng(7);
        EventQueue eq;
        int next_id = 0;
        std::function<void(int)> body = [&](int id) {
            order.push_back(id);
            if (next_id >= 3000)
                return;
            const unsigned children = rng.range(3);
            for (unsigned c = 0; c < children; ++c) {
                const int child = next_id++;
                eq.scheduleIn(decideDelay(rng),
                              [&body, child] { body(child); });
            }
        };
        for (int i = 0; i < 32; ++i) {
            const int id = next_id++;
            eq.schedule(rng.range(1000), [&body, id] { body(id); });
        }
        while (eq.step() && static_cast<int>(order.size()) <
                                static_cast<int>(ref_order.size()))
            ;
    }

    ASSERT_GE(order.size(), ref_order.size());
    order.resize(ref_order.size());
    EXPECT_EQ(order, ref_order);
}

TEST(EventQueue, RunLimitInsideAndBeyondWheelHorizon)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(100, [&] { ++fired; });
    eq.schedule(EventQueue::horizonTicks + 500, [&] { ++fired; });
    eq.schedule(3 * EventQueue::horizonTicks, [&] { ++fired; });
    EXPECT_EQ(eq.run(EventQueue::horizonTicks), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.curTick(), EventQueue::horizonTicks);
    EXPECT_EQ(eq.size(), 2u);
    EXPECT_EQ(eq.nextEventTick(), EventQueue::horizonTicks + 500);
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_TRUE(eq.empty());
}

/**
 * The allocation-free contract: callbacks with the capture shapes
 * the components actually use must never take the heap-fallback
 * path of InlineFunction.
 */
TEST(EventQueue, TypicalCapturesStayOnTheInlinePath)
{
    struct FakeTagResult
    {
        bool hit, valid, dirty;
        std::uint64_t victim;
        bool viaProbe;
    };

    const std::uint64_t before = InlineFunction::heapFallbacks();
    EventQueue eq;
    int sink = 0;
    std::uint64_t addr = 0xdeadbeef;
    Tick t = 42;
    FakeTagResult tr{true, true, false, 0x1234, false};
    std::function<void(Tick, const FakeTagResult &)> cb =
        [&sink](Tick, const FakeTagResult &) { ++sink; };

    // [this]-style, [this, addr, tick], [cb-copy, result, tick]:
    // the three shapes channel.cc / dram_cache.cc / core_engine.cc
    // schedule with.
    eq.schedule(10, [&sink] { ++sink; });
    eq.schedule(20, [&sink, addr, t] { sink += (addr + t) > 0; });
    eq.schedule(30, [cb, tr, t] { cb(t, tr); });
    eq.run();
    EXPECT_EQ(sink, 3);
    EXPECT_EQ(InlineFunction::heapFallbacks(), before);
}

TEST(InlineFunction, OversizedCaptureFallsBackToHeapButWorks)
{
    const std::uint64_t before = InlineFunction::heapFallbacks();
    std::array<char, InlineFunction::inlineCapacity + 64> big{};
    big[0] = 7;
    int result = 0;
    InlineFunction f([big, &result] { result = big[0]; });
    EXPECT_EQ(InlineFunction::heapFallbacks(), before + 1);
    InlineFunction g(std::move(f));
    g();
    EXPECT_EQ(result, 7);
}

TEST(InlineFunction, MoveTransfersAndLeavesSourceEmpty)
{
    int calls = 0;
    InlineFunction f([&calls] { ++calls; });
    EXPECT_TRUE(static_cast<bool>(f));
    InlineFunction g(std::move(f));
    EXPECT_FALSE(static_cast<bool>(f));
    g();
    g();
    EXPECT_EQ(calls, 2);
    f = std::move(g);
    f();
    EXPECT_EQ(calls, 3);
}

TEST(EventQueue, PoolRecyclingSurvivesManyScheduleRunCycles)
{
    EventQueue eq;
    std::uint64_t fired = 0;
    for (int round = 0; round < 200; ++round) {
        for (int i = 0; i < 50; ++i)
            eq.scheduleIn(static_cast<Tick>(i * 37 % 900),
                          [&fired] { ++fired; });
        eq.run();
    }
    EXPECT_EQ(fired, 200u * 50u);
    EXPECT_TRUE(eq.empty());
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, RangeRespectsBound)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.range(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    for (int i = 0; i < 20000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

/** Property sweep: range() is roughly uniform for several bounds. */
class RngUniformity : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RngUniformity, BucketsRoughlyEqual)
{
    const std::uint64_t bound = GetParam();
    Rng r(bound * 1234567 + 1);
    std::vector<int> counts(bound, 0);
    const int draws = 20000;
    for (int i = 0; i < draws; ++i)
        ++counts[r.range(bound)];
    const double expect = static_cast<double>(draws) / bound;
    for (auto c : counts)
        EXPECT_NEAR(c, expect, expect * 0.5);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngUniformity,
                         ::testing::Values(2, 3, 8, 10, 17));

} // namespace
} // namespace tsim
