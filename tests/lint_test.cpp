/**
 * @file
 * Fixture matrix for tdram_lint (tools/tdram_lint).
 *
 * Mirrors the injection matrix in check_injector_test.cpp: every lint
 * rule gets at least one *bad* fixture that must trigger exactly that
 * rule and a *good* twin that must lint clean. A CoversEveryRule pin
 * keeps the matrix honest — adding a rule to the registry without a
 * fixture here fails the build's test suite, exactly like adding a
 * protocol-checker rule without an injection case.
 *
 * Fixtures are inline snippets, not files on disk: lintFile() takes
 * (path, content), and the path drives the scoping tables (hot-path
 * directories, subsystem exemptions), so each fixture picks the
 * repo-relative path that puts it in its rule's scope.
 */

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hh"

namespace tsim::lint
{
namespace
{

bool
saw(const std::vector<LintFinding> &fs, const std::string &rule)
{
    return std::any_of(fs.begin(), fs.end(), [&](const LintFinding &f) {
        return f.rule == rule;
    });
}

std::string
describe(const std::vector<LintFinding> &fs)
{
    std::string out;
    for (const LintFinding &f : fs)
        out += "  " + formatFinding(f) + "\n";
    return out.empty() ? "  (no findings)\n" : out;
}

/** One rule exercise: a bad snippet and its clean twin. */
struct Fixture
{
    const char *name;      ///< test-case suffix
    const char *rule;      ///< rule the bad snippet must trigger
    const char *badPath;   ///< repo-relative path for the bad snippet
    const char *bad;
    const char *goodPath;  ///< path for the good twin
    const char *good;
};

const Fixture kFixtures[] = {
    {"SboDefaultRef", "sbo-spill",
     "bench/fix_sbo.cc",
     R"fix(
void wire(Request &r, Pump &pump)
{
    r.onTagResult = [&](Tick t, const TagResult &res) {
        pump.step(t, res);
    };
}
)fix",
     "bench/fix_sbo.cc",
     R"fix(
void Front::wire(Request &r)
{
    r.onTagResult = [this, txn = txn](Tick t, const TagResult &res) {
        step(t, res, txn);
    };
}
)fix"},

    {"SboPoolRefCopy", "sbo-spill",
     "bench/fix_sbo2.cc",
     R"fix(
void wire(Request &r, TxnPtr txn)
{
    r.onDataDone = [txn](Tick t) { txn->complete(t); };
}
)fix",
     "bench/fix_sbo2.cc",
     R"fix(
void wire(Request &r, const TxnPtr &txn)
{
    r.onDataDone = [txn = txn](Tick t) { txn->complete(t); };
}
)fix"},

    {"HotAllocNew", "hot-alloc",
     "src/dram/fix_alloc.cc",
     R"fix(
void pump()
{
    auto *n = new Node(7);
    use(n);
}
)fix",
     "src/dram/fix_alloc.cc",
     R"fix(
void pump()
{
    Node *n = pool.alloc();
    use(n);
}
)fix"},

    {"HotAllocStdFunction", "hot-alloc",
     "src/dram/fix_hooks.cc",
     R"fix(
struct Hooks
{
    std::function<void(int)> onDone;
};
)fix",
     "src/dram/fix_hooks.cc",
     R"fix(
struct Hooks
{
    InlineCallable<void(int), 64> onDone;
};
)fix"},

    {"NondetTime", "nondet",
     "src/trace/fix_stamp.cc",
     R"fix(
void stampHeader(Header &hdr)
{
    hdr.created = time(nullptr);
}
)fix",
     "src/trace/fix_stamp.cc",
     R"fix(
void stampHeader(Header &hdr)
{
    hdr.created = curTick();
}
)fix"},

    {"NondetUnorderedIteration", "nondet",
     "src/trace/fix_iter.cc",
     R"fix(
std::unordered_map<int, int> live;

void dumpStats(Out &out)
{
    for (const auto &kv : live)
        out.row(kv.first, kv.second);
}
)fix",
     "src/trace/fix_iter.cc",
     R"fix(
std::map<int, int> live;

void dumpStats(Out &out)
{
    for (const auto &kv : live)
        out.row(kv.first, kv.second);
}
)fix"},

    {"BusDirectRecord", "bus-discipline",
     "src/dcache/fix_bus.cc",
     R"fix(
void publish(TraceBuffer *traceBuf, Addr addr)
{
    traceBuf->record(addr);
}
)fix",
     "src/dcache/fix_bus.cc",
     R"fix(
void publish(Addr addr)
{
    emit(*this, RowOpenEv{addr});
}
)fix"},

    {"GateIfdef", "gate-hygiene",
     "bench/fix_gate.cc",
     R"fix(
#ifdef TDRAM_TRACE
static int traceDefaultOn = 1;
#endif
)fix",
     "bench/fix_gate.cc",
     R"fix(
#include "trace/trace.hh"
#if TDRAM_TRACE
static int traceDefaultOn = 1;
#endif
)fix"},

    {"GuardMismatch", "include-guard",
     "src/sim/fix_guard.hh",
     R"fix(
#ifndef FIX_GUARD_HH
#define FIX_GUARD_HH
namespace tsim {}
#endif
)fix",
     "src/sim/fix_guard.hh",
     R"fix(
#ifndef TSIM_SIM_FIX_GUARD_HH
#define TSIM_SIM_FIX_GUARD_HH
namespace tsim {}
#endif
)fix"},

    {"AllowStale", "allow-audit",
     "bench/fix_allow.cc",
     R"fix(
void tidy()
{
    // tdram-lint:allow(hot-alloc): leftover rationale from a deleted
    // allocation site.
    int x = 3;
    use(x);
}
)fix",
     "src/workload/fix_allow_ok.cc",
     R"fix(
void pump()
{
    // tdram-lint:allow(hot-alloc): fixture exercises a justified
    // allocation carrying a written rationale.
    auto *n = new Node(7);
    use(n);
}
)fix"},

    {"AllowNoRationale", "allow-audit",
     "bench/fix_allow2.cc",
     R"fix(
void tidy()
{
    // tdram-lint:allow(nondet) because reasons
    int x = 3;
    use(x);
}
)fix",
     "bench/fix_allow2.cc",
     R"fix(
void tidy()
{
    int x = 3;
    use(x);
}
)fix"},
};

class FixtureMatrix : public ::testing::TestWithParam<Fixture>
{
};

TEST_P(FixtureMatrix, BadTriggersExactlyItsRule)
{
    const Fixture &fx = GetParam();
    const auto findings = lintFile(fx.badPath, fx.bad);
    ASSERT_FALSE(findings.empty())
        << "bad fixture escaped the linter:\n" << fx.bad;
    EXPECT_TRUE(saw(findings, fx.rule))
        << "expected rule '" << fx.rule << "', got:\n"
        << describe(findings);
    for (const LintFinding &f : findings) {
        EXPECT_EQ(f.rule, fx.rule)
            << "bad fixture leaked an unrelated finding:\n"
            << describe(findings);
    }
}

TEST_P(FixtureMatrix, GoodTwinLintsClean)
{
    const Fixture &fx = GetParam();
    const auto findings = lintFile(fx.goodPath, fx.good);
    EXPECT_TRUE(findings.empty())
        << "good twin is not clean:\n" << describe(findings);
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, FixtureMatrix, ::testing::ValuesIn(kFixtures),
    [](const ::testing::TestParamInfo<Fixture> &pi) {
        return std::string(pi.param.name);
    });

TEST(FixtureMatrix, CoversEveryRule)
{
    std::set<std::string> exercised;
    for (const Fixture &fx : kFixtures)
        exercised.insert(fx.rule);
    for (const LintRuleInfo &r : lintRules()) {
        EXPECT_TRUE(exercised.count(r.id))
            << "rule '" << r.id << "' has no fixture case";
    }
    EXPECT_GE(std::size(kFixtures), 7u);
}

TEST(LintRules, RegistryIsConsistent)
{
    std::set<std::string> ids;
    for (const LintRuleInfo &r : lintRules()) {
        EXPECT_TRUE(ids.insert(r.id).second)
            << "duplicate rule id '" << r.id << "'";
        EXPECT_NE(std::string(r.summary), "");
        EXPECT_EQ(findLintRule(r.id), &r);
    }
    EXPECT_EQ(findLintRule("no-such-rule"), nullptr);
}

TEST(LintSuppression, InlineAllowCoversItsOwnLine)
{
    const char *src = R"fix(
void pump()
{
    auto *n = new Node(7);  // tdram-lint:allow(hot-alloc): justified.
    use(n);
}
)fix";
    const auto findings = lintFile("src/dram/fix_inline.cc", src);
    EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintSuppression, WrongRuleAllowIsStaleAndFindingSurvives)
{
    const char *src = R"fix(
void pump()
{
    // tdram-lint:allow(nondet): wrong rule for this site entirely.
    auto *n = new Node(7);
    use(n);
}
)fix";
    const auto findings = lintFile("src/dram/fix_wrong.cc", src);
    EXPECT_TRUE(saw(findings, "hot-alloc")) << describe(findings);
    EXPECT_TRUE(saw(findings, "allow-audit")) << describe(findings);
}

TEST(LintFormat, FindingRendersAsFileLineRuleDetail)
{
    const LintFinding f{"hot-alloc", "src/dram/x.cc", 42, "detail"};
    EXPECT_EQ(formatFinding(f), "src/dram/x.cc:42: [hot-alloc] detail");
}

TEST(LintPaths, OnlyCppSourcesAreLintable)
{
    EXPECT_TRUE(lintablePath("src/dram/channel.hh"));
    EXPECT_TRUE(lintablePath("src/dram/channel.cc"));
    EXPECT_TRUE(lintablePath("bench/micro_channel.cpp"));
    EXPECT_FALSE(lintablePath("tools/run_tdram_lint.sh"));
    EXPECT_FALSE(lintablePath("README.md"));
}

} // namespace
} // namespace tsim::lint
