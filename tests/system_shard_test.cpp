/**
 * @file
 * Sharded-engine determinism tests (DESIGN.md §12): for every device
 * kind and page policy, running the window-based shard engine with
 * 1, 2, and 4 threads must produce byte-identical stats dumps,
 * identical report fields, and identical (zero) protocol-checker
 * verdicts — thread count only remaps shards to OS threads, never
 * the schedule.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>

#include "check/check.hh"
#include "system/system.hh"

namespace tsim
{
namespace
{

SystemConfig
shardedCfg(Design design, PagePolicy policy, unsigned threads)
{
    SystemConfig cfg;
    cfg.design = design;
    cfg.dcacheCapacity = 4ULL << 20;
    cfg.dcachePagePolicy = policy;
    cfg.dcacheChannels = 4;
    cfg.cores.cores = 2;
    cfg.cores.opsPerCore = 1200;
    cfg.cores.llcBytes = 256 * 1024;
    cfg.warmupOpsPerCore = 5000;
    cfg.checkProtocol = true;
    cfg.threads = threads;
    return cfg;
}

struct RunResult
{
    SimReport report;
    std::string stats;
};

RunResult
runSharded(Design design, PagePolicy policy, unsigned threads)
{
    System sys(shardedCfg(design, policy, threads),
               findWorkload("is.C"));
    RunResult res;
    res.report = sys.run();
    std::ostringstream os;
    sys.dumpStats(os);
    res.stats = os.str();
    return res;
}

class ShardDeterminism
    : public ::testing::TestWithParam<std::tuple<Design, PagePolicy>>
{
};

std::string
paramName(
    const ::testing::TestParamInfo<std::tuple<Design, PagePolicy>>
        &info)
{
    const auto [design, policy] = info.param;
    return std::string(designName(design)) +
           (policy == PagePolicy::Open ? "_open" : "_close");
}

TEST_P(ShardDeterminism, ThreadCountDoesNotChangeTheRun)
{
    const auto [design, policy] = GetParam();
    const RunResult serial = runSharded(design, policy, 1);

    EXPECT_GT(serial.report.runtimeTicks, 0u);
    if (checkCompiledIn()) {
        EXPECT_GT(serial.report.checkEvents, 0u);
        EXPECT_EQ(serial.report.checkViolations, 0u);
    }

    for (unsigned threads : {2u, 4u}) {
        const RunResult par = runSharded(design, policy, threads);
        EXPECT_EQ(par.stats, serial.stats) << "threads=" << threads;
        EXPECT_EQ(par.report.runtimeTicks, serial.report.runtimeTicks);
        EXPECT_EQ(par.report.demandReads, serial.report.demandReads);
        EXPECT_EQ(par.report.demandWrites,
                  serial.report.demandWrites);
        EXPECT_DOUBLE_EQ(par.report.missRatio,
                         serial.report.missRatio);
        EXPECT_DOUBLE_EQ(par.report.demandReadLatencyNs,
                         serial.report.demandReadLatencyNs);
        EXPECT_DOUBLE_EQ(par.report.energy.totalJ(),
                         serial.report.energy.totalJ());
        EXPECT_EQ(par.report.checkEvents, serial.report.checkEvents);
        EXPECT_EQ(par.report.checkViolations,
                  serial.report.checkViolations);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, ShardDeterminism,
    ::testing::Combine(::testing::Values(Design::CascadeLake,
                                         Design::Alloy, Design::Ndc,
                                         Design::Tdram),
                       ::testing::Values(PagePolicy::Close,
                                         PagePolicy::Open)),
    paramName);

/** The window override must not change results, only the skew. */
TEST(ShardWindow, OverrideIsDeterministicAcrossThreads)
{
    SystemConfig cfg = shardedCfg(Design::Tdram, PagePolicy::Close, 1);
    cfg.shardWindow = nsToTicks(4);
    SimReport a = runOne(cfg, findWorkload("is.C"));
    cfg.threads = 4;
    SimReport b = runOne(cfg, findWorkload("is.C"));
    EXPECT_EQ(a.runtimeTicks, b.runtimeTicks);
    EXPECT_EQ(a.checkViolations, 0u);
    EXPECT_EQ(b.checkViolations, 0u);
}

} // namespace
} // namespace tsim
