/**
 * @file
 * Unit tests for the SRAM cache model (L1/LLC substrate).
 */

#include <gtest/gtest.h>

#include "cache/sram_cache.hh"
#include "sim/rng.hh"

namespace tsim
{
namespace
{

TEST(SramCache, MissThenHit)
{
    SramCache c("c", 1 << 14, 4, nsToTicks(1));
    auto r1 = c.access(0x1000, false);
    EXPECT_FALSE(r1.hit);
    EXPECT_FALSE(r1.writeback);
    auto r2 = c.access(0x1000, false);
    EXPECT_TRUE(r2.hit);
    EXPECT_EQ(c.hits.value(), 1.0);
    EXPECT_EQ(c.misses.value(), 1.0);
}

TEST(SramCache, DirtyEvictionProducesWriteback)
{
    SramCache c("c", 1 << 12, 1, nsToTicks(1));  // 64 lines direct
    const Addr a = 0x0;
    const Addr b = a + (1 << 12);  // same set
    c.access(a, true);             // dirty
    auto r = c.access(b, false);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.writebackAddr, a);
    EXPECT_EQ(c.writebacks.value(), 1.0);
}

TEST(SramCache, CleanEvictionIsSilent)
{
    SramCache c("c", 1 << 12, 1, nsToTicks(1));
    const Addr a = 0x40;
    const Addr b = a + (1 << 12);
    c.access(a, false);  // clean
    auto r = c.access(b, false);
    EXPECT_FALSE(r.writeback);
}

TEST(SramCache, StoreHitDirtiesLine)
{
    SramCache c("c", 1 << 12, 2, nsToTicks(1));
    c.access(0x80, false);
    c.access(0x80, true);  // hit + dirty
    const Addr conflict1 = 0x80 + (1 << 11);
    const Addr conflict2 = 0x80 + (1 << 12);
    c.access(conflict1, false);
    auto r = c.access(conflict2, false);  // evicts LRU = 0x80
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.writebackAddr, 0x80u);
}

TEST(SramCache, MissRatioTracksAccesses)
{
    SramCache c("c", 1 << 14, 8, nsToTicks(1));
    Rng rng(5);
    for (int i = 0; i < 5000; ++i)
        c.access(rng.range(1 << 7) * lineBytes, false);
    // 128-line region in a 256-line cache: ~only cold misses.
    EXPECT_LT(c.missRatio(), 0.05);
}

TEST(SramCache, ContainsIsSideEffectFree)
{
    SramCache c("c", 1 << 12, 1, nsToTicks(1));
    c.access(0x0, false);
    c.access(0x100, false);
    EXPECT_TRUE(c.contains(0x0));
    EXPECT_FALSE(c.contains(0x9999999));
    EXPECT_EQ(c.hits.value() + c.misses.value(), 2.0);
}

} // namespace
} // namespace tsim
