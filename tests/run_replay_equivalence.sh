#!/usr/bin/env bash
# Replay-equivalence gate (CI: the "replay-equivalence" job).
#
# Proves the record-once/replay-many pipeline end to end, byte-exact
# at every step (DESIGN.md §14):
#
#  1. Capture: a synthetic --threads 1 run records a .tdt event
#     trace; `trace_tool convert` projects its demand stream into a
#     .tdtz container.
#  2. Reference run: replaying that container (--threads 1) records
#     its own .tdt; converting THAT trace must reproduce the original
#     container byte for byte — the demand stream is a fixed point of
#     capture -> convert -> replay, i.e. the engine issued exactly
#     the recorded requests at the recorded ticks in the recorded
#     order. (Controller-internal schedules may tie-break differently
#     against the synthetic run's front-end events, so the gate pins
#     the request stream, the only thing the container stores.)
#  3. Replay equivalence: capture -> convert -> replay of the
#     reference run reproduces its stats/CSV dump AND its event trace
#     byte-identically at --threads 1 and --threads 4.
#  4. Canary: one flipped byte inside a frame payload must make the
#     decoder reject the container (frame checksum) with a nonzero
#     exit — proving the gate can actually fail.
#
# Usage: tests/run_replay_equivalence.sh [BUILD_DIR]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}
CLI="$BUILD/examples/tdram_cli"
TOOL="$BUILD/tools/trace_tool"

for bin in "$CLI" "$TOOL"; do
    if [ ! -x "$bin" ]; then
        echo "missing $bin - build the project first" >&2
        exit 2
    fi
done

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

run_cli() {  # run_cli <threads> <trace> <out> [extra args...]
    local threads=$1 trace=$2 out=$3
    shift 3
    "$CLI" run is.C TDRAM --ops 4000 --warmup 0 --csv --stats \
        --threads "$threads" --trace "$trace" "$@" > "$out"
}

echo "=== [1/4] capture synthetic run + convert to .tdtz ==="
run_cli 1 "$WORK/cap.tdt" "$WORK/cap.out"
"$TOOL" convert "$WORK/cap.tdt" "$WORK/w.tdtz"
"$TOOL" info "$WORK/w.tdtz"

echo "=== [2/4] demand-stream fixed point ==="
run_cli 1 "$WORK/ref.tdt" "$WORK/ref.out" --replay "$WORK/w.tdtz"
"$TOOL" convert "$WORK/ref.tdt" "$WORK/ref.tdtz"
cmp "$WORK/w.tdtz" "$WORK/ref.tdtz" || {
    echo "FAIL: replay did not reproduce the recorded demand stream"
    echo "      (convert(replay trace) != original container)"
    exit 1
}
echo "convert(replay .tdt) == original .tdtz, byte-identical"

echo "=== [3/4] capture -> convert -> replay, threads 1 and 4 ==="
# ref.tdtz is byte-identical to w.tdtz (step 2); replaying it IS
# replaying the convert of the reference run's capture.
for n in 1 4; do
    run_cli "$n" "$WORK/rep$n.tdt" "$WORK/rep$n.out" \
        --replay "$WORK/ref.tdtz"
    cmp "$WORK/ref.out" "$WORK/rep$n.out" || {
        echo "FAIL: stats/CSV differ from the capture run" \
             "at --threads $n"
        exit 1
    }
    "$TOOL" diff "$WORK/ref.tdt" "$WORK/rep$n.tdt" > /dev/null || {
        echo "FAIL: event trace differs from the capture run" \
             "at --threads $n"
        exit 1
    }
    echo "--threads $n: stats and trace byte-identical to capture"
done

echo "=== [4/4] corrupt-frame canary ==="
cp "$WORK/w.tdtz" "$WORK/bad.tdtz"
# Flip one byte of frame 0's payload: 32 B file header + 24 B frame
# header + 20 into the payload.
orig=$(dd if="$WORK/bad.tdtz" bs=1 skip=76 count=1 status=none \
       | od -An -tu1 | tr -d ' ')
printf "\\$(printf '%03o' $(( (orig ^ 0x5a) & 0xff )))" \
    | dd of="$WORK/bad.tdtz" bs=1 seek=76 count=1 conv=notrunc \
         status=none
cmp -s "$WORK/w.tdtz" "$WORK/bad.tdtz" && {
    echo "FAIL: canary byte flip was a no-op"
    exit 1
}
if run_cli 1 "$WORK/bad.tdt" "$WORK/bad.out" \
    --replay "$WORK/bad.tdtz" 2> "$WORK/bad.err"; then
    echo "FAIL: decoder accepted a corrupted container"
    exit 1
fi
grep -qi "checksum" "$WORK/bad.err" || {
    echo "FAIL: rejection did not mention the frame checksum:"
    cat "$WORK/bad.err"
    exit 1
}
echo "canary detected:"
sed -n '1p' "$WORK/bad.err"

echo "replay-equivalence gate PASSED"
