#!/bin/sh
# Guard test for the TDRAM_TRACE compile-time gate (DESIGN.md §10).
#
# TSIM_TRACE_EVENT's fast path is inline, but a full ring calls the
# out-of-line TraceBuffer::overflow(). A TDRAM_TRACE=1 compile of the
# hottest emission site (dram/channel.cc) therefore references that
# symbol; a TDRAM_TRACE=0 compile must not reference any TraceBuffer
# symbol at all — proving the hook call sites compiled out entirely,
# not just branched around.
#
# Usage: check_trace_gate.sh <repo-source-dir>
# Exit codes: 0 pass, 1 fail, 77 skip (toolchain unavailable).

set -u

SRC_DIR=${1:-$(cd "$(dirname "$0")/.." && pwd)}
CXX=${CXX:-c++}

command -v "$CXX" >/dev/null 2>&1 || { echo "skip: no $CXX"; exit 77; }
command -v nm >/dev/null 2>&1 || { echo "skip: no nm"; exit 77; }

TMP=$(mktemp -d) || exit 77
trap 'rm -rf "$TMP"' EXIT

FLAGS="-std=c++20 -O2 -I $SRC_DIR/src -c $SRC_DIR/src/dram/channel.cc"

if ! "$CXX" $FLAGS -DTDRAM_TRACE=1 -o "$TMP/on.o"; then
    echo "FAIL: TDRAM_TRACE=1 compile of channel.cc failed"
    exit 1
fi
if ! "$CXX" $FLAGS -DTDRAM_TRACE=0 -o "$TMP/off.o"; then
    echo "FAIL: TDRAM_TRACE=0 compile of channel.cc failed"
    exit 1
fi

if ! nm -C "$TMP/on.o" | grep -q 'TraceBuffer::overflow'; then
    echo "FAIL: TDRAM_TRACE=1 object lacks a TraceBuffer::overflow" \
         "reference - the guard no longer proves anything"
    exit 1
fi

if nm -C "$TMP/off.o" | grep -q 'TraceBuffer'; then
    echo "FAIL: TDRAM_TRACE=0 object still references TraceBuffer -" \
         "trace hooks were not compiled out"
    nm -C "$TMP/off.o" | grep 'TraceBuffer'
    exit 1
fi

# The gated-off object must also be no larger than the traced one.
ON_SIZE=$(wc -c < "$TMP/on.o")
OFF_SIZE=$(wc -c < "$TMP/off.o")
if [ "$OFF_SIZE" -gt "$ON_SIZE" ]; then
    echo "FAIL: TDRAM_TRACE=0 object ($OFF_SIZE B) is larger than" \
         "TDRAM_TRACE=1 ($ON_SIZE B)"
    exit 1
fi

echo "PASS: trace hooks gate correctly" \
     "(on: $ON_SIZE B, off: $OFF_SIZE B)"
exit 0
