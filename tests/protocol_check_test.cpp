/**
 * @file
 * Protocol-checker integration tests (DESIGN.md §11): unmodified runs
 * of every device kind and page policy report zero violations (inline
 * mode), offline audits of the recorded traces agree with the inline
 * result, and a channel driven with deliberately relaxed timing
 * against a strict rule table is flagged.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "check/check.hh"
#include "check/offline.hh"
#include "dram/channel.hh"
#include "mem/address_map.hh"
#include "system/system.hh"
#include "trace/trace.hh"

namespace tsim
{
namespace
{

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

SystemConfig
checkedCfg(Design design, PagePolicy policy)
{
    SystemConfig cfg;
    cfg.design = design;
    cfg.dcacheCapacity = 4ULL << 20;
    cfg.dcachePagePolicy = policy;
    cfg.cores.cores = 2;
    cfg.cores.opsPerCore = 1500;
    cfg.cores.llcBytes = 256 * 1024;
    cfg.warmupOpsPerCore = 10000;
    cfg.checkProtocol = true;
    return cfg;
}

std::string
offlineDeviceOf(Design design)
{
    switch (design) {
      case Design::Tdram: return "tdram";
      case Design::TdramNoProbe: return "tdram-noprobe";
      case Design::Ndc: return "ndc";
      case Design::CascadeLake: return "cl";
      case Design::Alloy: return "alloy";
      case Design::Bear: return "bear";
      case Design::TicToc: return "tictoc";
      case Design::Banshee: return "banshee";
      default: return "";
    }
}

class CleanRun
    : public ::testing::TestWithParam<std::tuple<Design, PagePolicy>>
{
};

TEST_P(CleanRun, ReportsZeroViolationsInlineAndOffline)
{
    const auto [design, policy] = GetParam();
    SystemConfig cfg = checkedCfg(design, policy);
    const std::string trace_path =
        tmpPath(std::string("check_clean_") + designName(design) +
                (policy == PagePolicy::Open ? "_open" : "_close") +
                ".tdt");
    cfg.tracePath = trace_path;

    System sys(cfg, findWorkload("is.C"));
    const SimReport r = sys.run();

    ASSERT_NE(sys.checker(), nullptr);
    EXPECT_GT(r.checkEvents, 0u);
    ASSERT_EQ(r.checkViolations, 0u)
        << ProtocolChecker::formatViolation(
               sys.checker()->violations().front());

    // The same stream audited offline through the device preset must
    // agree: zero violations over the same number of events.
    TraceLoadResult res = loadTrace(trace_path);
    ASSERT_TRUE(res.ok) << res.error;
    OfflineCheckOptions opts;
    opts.device = offlineDeviceOf(design);
    opts.openPage = policy == PagePolicy::Open;
    opts.channels = cfg.dcacheChannels;
    opts.mmChannels = cfg.mmChannels;
    CheckReport rep = checkTrace(res.trace, opts);
    ASSERT_TRUE(rep.error.empty()) << rep.error;
    ASSERT_TRUE(rep.ok)
        << ProtocolChecker::formatViolation(rep.violations.front());
    EXPECT_EQ(rep.events, r.checkEvents);
    EXPECT_EQ(rep.violationCount, 0u);
}

std::string
cleanRunName(
    const ::testing::TestParamInfo<std::tuple<Design, PagePolicy>> &info)
{
    std::string name = designName(std::get<0>(info.param));
    name += std::get<1>(info.param) == PagePolicy::Open ? "Open"
                                                        : "Close";
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllDevicesAndPolicies, CleanRun,
    ::testing::Combine(::testing::Values(Design::Tdram,
                                         Design::CascadeLake,
                                         Design::Ndc, Design::Alloy,
                                         Design::TicToc,
                                         Design::Banshee),
                       ::testing::Values(PagePolicy::Close,
                                         PagePolicy::Open)),
    cleanRunName);

TEST(CheckGate, HooksCompiledInThisBuild)
{
    // The library is always built with checking available; the
    // TDRAM_CHECK=0 configuration is covered by
    // tests/check_protocol_gate.sh (symbol check on channel.cc).
    EXPECT_TRUE(checkCompiledIn());
}

TEST(CheckRules, TableIsWellFormed)
{
    const auto &rules = checkRules();
    ASSERT_GE(rules.size(), 12u);
    for (const CheckRuleInfo &r : rules) {
        EXPECT_NE(findCheckRule(r.id), nullptr) << r.id;
        EXPECT_GT(std::string(r.summary).size(), 0u) << r.id;
    }
    EXPECT_EQ(findCheckRule("no-such-rule"), nullptr);
}

/**
 * Real-channel violation injection: drive a DramChannel built with
 * RELAXED timing while the inline checker audits against the STRICT
 * table. The channel schedules legally for its own (relaxed)
 * parameters, so the commands it emits violate exactly the loosened
 * constraint — the inline analogue of a timing bug in the scheduler.
 */
class RelaxedChannel
{
  public:
    static constexpr std::uint64_t kCap = 1ULL << 20;

    RelaxedChannel(const ChannelConfig &relaxed,
                   const CheckerConfig &strict)
        : _map(kCap, 1, relaxed.banks, 1024),
          _chan(_eq, "chx", relaxed, _map), _banks(relaxed.banks)
    {
        _chan.checker = &_checker;
        _chan.checkChannel = _checker.addChannel(strict);
        _chan.peekTags = [](Addr) {
            TagResult tr;
            tr.hit = true;
            tr.valid = true;
            return tr;
        };
    }

    /** Line address of row @p n in @p bank (line-interleaved map). */
    Addr addrIn(unsigned bank, unsigned n) const
    {
        const std::uint64_t lines_per_row = 1024 / lineBytes;
        return (static_cast<Addr>(bank) +
                static_cast<Addr>(_banks) * lines_per_row * n) *
               lineBytes;
    }

    void read(Addr a)
    {
        ChanReq req;
        req.id = _nextId++;
        req.addr = a;
        req.op = ChanOp::Read;
        req.isDemandRead = true;
        _chan.enqueue(std::move(req));
    }

    void readAt(Tick when, Addr a)
    {
        _eq.schedule(when, [this, a] { read(a); });
    }

    void drainEvents()
    {
        while (_eq.step()) {
        }
        _checker.finish();
    }

    /**
     * Bounded drain for refresh-enabled channels, whose periodic
     * refresh events keep the queue non-empty forever.
     */
    void drainEventsUntil(Tick limit)
    {
        _eq.run(limit);
        _checker.finish();
    }

    const ProtocolChecker &checker() const { return _checker; }

  private:
    EventQueue _eq;
    AddressMap _map;
    ProtocolChecker _checker;
    DramChannel _chan;
    unsigned _banks;
    std::uint64_t _nextId = 1;
};

bool
sawRule(const ProtocolChecker &chk, const std::string &rule)
{
    for (const CheckViolation &v : chk.violations()) {
        if (rule == v.rule)
            return true;
    }
    return false;
}

ChannelConfig
conventionalCfg()
{
    ChannelConfig cfg;
    cfg.timing = hbm3CacheTimings();
    cfg.banks = 8;
    cfg.refreshEnabled = false;
    return cfg;
}

TEST(CheckMutation, RelaxedActSpacingIsFlagged)
{
    // Consecutive reads are serialized by the DQ burst as well as
    // tRRD, so shrinking tRRD alone is masked by the (equal) burst
    // spacing; shrink both so activates really issue 500 ps closer
    // than the strict table allows.
    ChannelConfig relaxed = conventionalCfg();
    relaxed.timing.tRRD -= nsToTicks(0.5);
    relaxed.timing.burstScale = 0.75;
    CheckerConfig strict = checkerConfigOf(conventionalCfg());
    RelaxedChannel h(relaxed, strict);
    for (unsigned b = 0; b < 4; ++b)
        h.read(h.addrIn(b, 0));
    h.drainEvents();
    EXPECT_FALSE(h.checker().ok());
    EXPECT_TRUE(sawRule(h.checker(), "act-to-act"));
}

TEST(CheckMutation, RelaxedTrasIsFlagged)
{
    ChannelConfig relaxed = conventionalCfg();
    relaxed.timing.tRAS -= 1;  // shortens readBankBusy by 1 tick
    CheckerConfig strict = checkerConfigOf(conventionalCfg());
    RelaxedChannel h(relaxed, strict);
    h.read(h.addrIn(0, 0));
    h.read(h.addrIn(0, 1));  // same bank: back-to-back bank cycle
    h.drainEvents();
    EXPECT_FALSE(h.checker().ok());
    EXPECT_TRUE(sawRule(h.checker(), "bank-busy"));
}

TEST(CheckMutation, RelaxedTxawIsFlagged)
{
    ChannelConfig relaxed = conventionalCfg();
    // Keep tRRD legal but shrink the four-ACT window: the fifth ACT
    // (a distinct bank, so no bank-cycle constraint interferes)
    // issues one tick inside the strict tXAW.
    relaxed.timing.tXAW -= 1;
    CheckerConfig strict = checkerConfigOf(conventionalCfg());
    RelaxedChannel h(relaxed, strict);
    for (unsigned b = 0; b < 8; ++b)
        h.read(h.addrIn(b, 0));
    h.drainEvents();
    EXPECT_FALSE(h.checker().ok());
    EXPECT_TRUE(sawRule(h.checker(), "four-act-window"));
}

TEST(CheckMutation, RelaxedRefreshWindowIsFlagged)
{
    ChannelConfig relaxed = conventionalCfg();
    relaxed.refreshEnabled = true;
    // The relaxed device believes refresh completes 2 ns early and
    // resumes CA traffic inside the strict tRFC window.
    relaxed.timing.tRFC -= nsToTicks(2);
    ChannelConfig strict_chan = conventionalCfg();
    strict_chan.refreshEnabled = true;
    CheckerConfig strict = checkerConfigOf(strict_chan);
    RelaxedChannel h(relaxed, strict);

    // Demand arriving inside the first refresh window (at tREFI) is
    // held until the relaxed device's window ends — 2 ns inside the
    // strict one.
    const Tick refi = strict.timing.tREFI;
    for (unsigned n = 0; n < 4; ++n)
        h.readAt(refi + nsToTicks(100), h.addrIn(n, 1));
    h.drainEventsUntil(2 * refi);
    EXPECT_FALSE(h.checker().ok());
    EXPECT_TRUE(sawRule(h.checker(), "refresh-quiet"));
}

} // namespace
} // namespace tsim
