/**
 * @file
 * Energy model and timing-preset tests.
 */

#include <gtest/gtest.h>

#include "dram/timing.hh"
#include "energy/energy.hh"

namespace tsim
{
namespace
{

TEST(Timing, TableIIIValues)
{
    const TimingParams t = hbm3CacheTimings();
    EXPECT_EQ(t.tBURST, nsToTicks(2));
    EXPECT_EQ(t.tRCD, nsToTicks(12));
    EXPECT_EQ(t.tRCD_WR, nsToTicks(6));
    EXPECT_EQ(t.tCL, nsToTicks(18));
    EXPECT_EQ(t.tCWL, nsToTicks(7));
    EXPECT_EQ(t.tRP, nsToTicks(14));
    EXPECT_EQ(t.tRAS, nsToTicks(28));
    EXPECT_EQ(t.tHM, nsToTicks(7.5));
    EXPECT_EQ(t.tHM_int, nsToTicks(2.5));
    EXPECT_EQ(t.tRCD_TAG, nsToTicks(7.5));
    EXPECT_EQ(t.tRC_TAG, nsToTicks(12));
}

TEST(Timing, DerivedLatenciesMatchPaper)
{
    const TimingParams t = hbm3CacheTimings();
    // §III-C4: tRCD_TAG + tHM = 15 ns (RLDRAM tRL).
    EXPECT_EQ(t.hmLatency(), nsToTicks(15));
    // ActRd to data at the controller: tRCD + tCL = 30 ns + burst.
    EXPECT_EQ(t.readDataLatency(), nsToTicks(30));
    // tRCD_TAG + tHM_int = 10 ns < tRCD = 12 ns: the in-DRAM check
    // is hidden under the data-mat activation (conditional column).
    EXPECT_LT(t.tRCD_TAG + t.tHM_int, t.tRCD);
}

TEST(Timing, TadScaleIs80Bytes)
{
    const TimingParams t = hbm3TadTimings();
    EXPECT_DOUBLE_EQ(t.burstScale, 80.0 / 64.0);
    EXPECT_EQ(t.dataBurst(), nsToTicks(2.5));
}

TEST(Timing, BankBusyCoversRasPlusRp)
{
    const TimingParams t = hbm3CacheTimings();
    EXPECT_EQ(t.readBankBusy(), nsToTicks(42));
    EXPECT_GE(t.writeBankBusy(), t.readBankBusy());
}

TEST(Energy, BreakdownSumsToTotal)
{
    EnergyBreakdown e;
    e.cacheActJ = 1;
    e.cacheTagJ = 2;
    e.cacheDqJ = 3;
    e.cacheHmJ = 4;
    e.cacheRefreshJ = 5;
    e.cacheBackgroundJ = 6;
    e.mmDynamicJ = 7;
    e.mmRefreshJ = 8;
    e.mmBackgroundJ = 9;
    EXPECT_DOUBLE_EQ(e.cacheJ(), 21.0);
    EXPECT_DOUBLE_EQ(e.mmJ(), 24.0);
    EXPECT_DOUBLE_EQ(e.totalJ(), 45.0);
}

TEST(Energy, DefaultParamsMakeTransfersDominant)
{
    // The paper notes 62.6% of HBM2 power is data movement [10];
    // sanity-check the constants keep transfers dominant for a
    // typical access (one activate + 64 B moved).
    EnergyParams p;
    const double transfer = 64 * p.eDqPerByteJ;
    EXPECT_GT(transfer, p.eActDataJ);
    EXPECT_GT(transfer, 10 * p.eActTagJ);
}

} // namespace
} // namespace tsim
