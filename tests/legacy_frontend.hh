/**
 * @file
 * Frozen pre-PR-7 front-shard snapshot (tests/bench only).
 *
 * Verbatim copy of the controller/core front end as it stood before
 * the zero-alloc fast-path rewrite: shared_ptr transactions,
 * unordered_map/deque set queues, std::function mmRead callbacks,
 * triple-probe SramCache, per-core stalled deques. bench/micro_frontend
 * replays the identical workload through this copy and the production
 * front end and fails unless their stats checksums agree, so the
 * rewrite is continuously cross-checked against the seed behaviour.
 *
 * Everything lives in tsim::legacyfe; shared leaf types (TagResult,
 * MemPacket, ChanReq, Design, configs of untouched components) are
 * the production ones so both front ends drive the same production
 * DramChannel back-end.
 */

#ifndef TSIM_TESTS_LEGACY_FRONTEND_HH
#define TSIM_TESTS_LEGACY_FRONTEND_HH

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/sram_cache.hh"
#include "dcache/dram_cache.hh"
#include "dcache/predictor.hh"
#include "dram/channel.hh"
#include "dram/main_memory.hh"
#include "mem/types.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/shard.hh"
#include "stats/stats.hh"
#include "trace/trace.hh"
#include "workload/core_engine.hh"
#include "workload/generator.hh"

namespace tsim
{
namespace legacyfe
{

/** Frozen pre-probe-handle tag array (re-searches on every call). */
class TagArray
{
  public:
    TagArray(std::uint64_t capacity_bytes, unsigned ways = 1)
        : _ways(ways)
    {
        fatal_if(ways == 0, "associativity must be >= 1");
        std::uint64_t lines = capacity_bytes / lineBytes;
        fatal_if(lines == 0 || lines % ways != 0,
                 "capacity must be a multiple of ways*lineBytes");
        _sets = lines / ways;
        fatal_if(_sets & (_sets - 1), "set count must be a power of two");
        _entries.resize(lines);
    }

    std::uint64_t numSets() const { return _sets; }
    unsigned ways() const { return _ways; }

    std::uint64_t
    setIndex(Addr addr) const
    {
        return (addr / lineBytes) & (_sets - 1);
    }

    TagResult
    peek(Addr addr) const
    {
        TagResult r;
        const std::uint64_t set = setIndex(addr);
        for (unsigned w = 0; w < _ways; ++w) {
            const Entry &e = entry(set, w);
            if (e.valid && e.tag == tagOf(addr)) {
                r.hit = true;
                r.valid = true;
                r.dirty = e.dirty;
                r.victimAddr = addr;
                return r;
            }
        }
        const Entry &victim = entry(set, victimWay(set));
        r.valid = victim.valid;
        r.dirty = victim.valid && victim.dirty;
        r.victimAddr = victim.valid ? rebuildAddr(set, victim.tag) : 0;
        return r;
    }

    void
    install(Addr addr, bool dirty)
    {
        const std::uint64_t set = setIndex(addr);
        Entry *slot = find(addr);
        if (!slot)
            slot = &entry(set, victimWay(set));
        slot->valid = true;
        slot->tag = tagOf(addr);
        slot->dirty = dirty;
        slot->lru = ++_clock;
    }

    void
    markDirty(Addr addr)
    {
        Entry *e = find(addr);
        panic_if(!e, "markDirty on non-resident line %llx",
                 (unsigned long long)addr);
        e->dirty = true;
        e->lru = ++_clock;
    }

    void
    markClean(Addr addr)
    {
        if (Entry *e = find(addr))
            e->dirty = false;
    }

    void
    touch(Addr addr)
    {
        if (Entry *e = find(addr))
            e->lru = ++_clock;
    }

    void
    invalidate(Addr addr)
    {
        if (Entry *e = find(addr))
            e->valid = false;
    }

    bool isHit(Addr addr) const { return peek(addr).hit; }

    std::uint64_t
    validCount() const
    {
        std::uint64_t n = 0;
        for (const auto &e : _entries)
            n += e.valid;
        return n;
    }

  private:
    struct Entry
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0;
    };

    Addr tagOf(Addr addr) const { return (addr / lineBytes) / _sets; }

    Addr
    rebuildAddr(std::uint64_t set, Addr tag) const
    {
        return (tag * _sets + set) * lineBytes;
    }

    Entry &entry(std::uint64_t set, unsigned way)
    {
        return _entries[set * _ways + way];
    }

    const Entry &entry(std::uint64_t set, unsigned way) const
    {
        return _entries[set * _ways + way];
    }

    unsigned
    victimWay(std::uint64_t set) const
    {
        unsigned best = 0;
        for (unsigned w = 0; w < _ways; ++w) {
            const Entry &e = entry(set, w);
            if (!e.valid)
                return w;
            if (e.lru < entry(set, best).lru)
                best = w;
        }
        return best;
    }

    Entry *
    find(Addr addr)
    {
        const std::uint64_t set = setIndex(addr);
        for (unsigned w = 0; w < _ways; ++w) {
            Entry &e = entry(set, w);
            if (e.valid && e.tag == tagOf(addr))
                return &e;
        }
        return nullptr;
    }

    unsigned _ways;
    std::uint64_t _sets;
    std::uint64_t _clock = 0;
    std::vector<Entry> _entries;
};

/** Frozen triple-probe SRAM cache (peek + markDirty/touch/install). */
class SramCache
{
  public:
    struct Result
    {
        bool hit = false;
        bool writeback = false;
        Addr writebackAddr = 0;
    };

    SramCache(std::string name, std::uint64_t capacity, unsigned ways,
              Tick hit_latency)
        : _name(std::move(name)), _tags(capacity, ways),
          _hitLatency(hit_latency)
    {}

    Result
    access(Addr addr, bool is_store)
    {
        Result res;
        TagResult tr = _tags.peek(addr);
        if (tr.hit) {
            ++hits;
            res.hit = true;
            if (is_store)
                _tags.markDirty(addr);
            else
                _tags.touch(addr);
            return res;
        }
        ++misses;
        if (tr.valid && tr.dirty) {
            res.writeback = true;
            res.writebackAddr = tr.victimAddr;
            ++writebacks;
        }
        _tags.install(addr, is_store);
        return res;
    }

    bool contains(Addr addr) const { return _tags.peek(addr).hit; }

    Tick hitLatency() const { return _hitLatency; }
    const std::string &name() const { return _name; }

    double
    missRatio() const
    {
        const double total = hits.value() + misses.value();
        return total > 0 ? misses.value() / total : 0.0;
    }

    Scalar hits;
    Scalar misses;
    Scalar writebacks;

    void
    regStats(StatGroup &g) const
    {
        g.addScalar(_name + ".hits", &hits);
        g.addScalar(_name + ".misses", &misses);
        g.addScalar(_name + ".writebacks", &writebacks);
    }

  private:
    std::string _name;
    TagArray _tags;
    Tick _hitLatency;
};

/** Frozen main-memory front-end (std::function read callbacks). */
class MainMemory : public SimObject
{
  public:
    MainMemory(EventQueue &eq, std::string name,
               const MainMemoryConfig &cfg);

    void read(Addr addr, std::function<void(Tick)> on_done);
    void write(Addr addr);

    Scalar reads;
    Scalar writes;
    Histogram readLatency{4.0, 256};
    Histogram frontQueueDepth{1.0, 64};

    std::uint64_t bytesMoved() const;
    void regStats(StatGroup &g) const;

    DramChannel &channel(unsigned i) { return *_chans[i]; }
    const DramChannel &channel(unsigned i) const { return *_chans[i]; }
    unsigned numChannels() const
    {
        return static_cast<unsigned>(_chans.size());
    }

  private:
    struct Pending
    {
        ChanReq req;
        bool isWrite;
    };

    void drainFront(unsigned chan);
    void submit(unsigned chan, ChanReq req, bool is_write);

    MainMemoryConfig _cfg;
    AddressMap _map;
    std::vector<std::unique_ptr<DramChannel>> _chans;
    std::vector<ShardOutbox *> _outboxes;
    std::vector<std::deque<Pending>> _front;
    std::uint64_t _nextId = 1;
};

/** Frozen shared_ptr/unordered_map DRAM-cache controller front end. */
class DramCacheCtrl : public SimObject
{
  public:
    DramCacheCtrl(EventQueue &eq, std::string name,
                  const DramCacheConfig &cfg, MainMemory &mm,
                  ChannelConfig chan_cfg);
    ~DramCacheCtrl() override = default;

    bool canAccept(const MemPacket &pkt) const;
    void access(MemPacket pkt, RespCallback cb);
    void warmAccess(Addr addr, bool is_write);

    virtual Design design() const = 0;
    virtual double predictorAccuracy() const { return 0.0; }

    Scalar demandReads;
    Scalar demandWrites;
    Scalar outcomes[static_cast<unsigned>(AccessOutcome::NumOutcomes)];
    Histogram tagCheckLatency{2.0, 512};
    Histogram readLatency{4.0, 512};
    Scalar fwdFromWriteBuf;
    Scalar servedFromFlush;
    Scalar predictedMiss;
    Scalar predictorWrongFetch;
    Scalar prefetchIssued;
    Scalar prefetchUseful;
    Scalar bytesDemandServing;
    Scalar bytesMaintenance;
    Scalar bytesDiscarded;

    double missRatio() const;
    double meanReadQueueDelayNs() const;

    void regStats(StatGroup &g) const;

    TraceBuffer *traceBuf = nullptr;
    ProtocolChecker *checker = nullptr;
    unsigned checkChannel = 0;

    DramChannel &channel(unsigned i) { return *_chans[i]; }
    const DramChannel &channel(unsigned i) const { return *_chans[i]; }
    unsigned numChannels() const
    {
        return static_cast<unsigned>(_chans.size());
    }
    const TagArray &tags() const { return _tags; }
    MainMemory &mainMemory() { return _mm; }

    std::uint64_t inFlightDemands() const { return _inFlight; }

  protected:
    struct Txn
    {
        MemPacket pkt;
        RespCallback cb;
        bool tagResolved = false;
        bool finished = false;
        bool mmStarted = false;
        Tick mmDataAt = 0;
        bool victimDone = false;
        bool fillIssued = false;
        TagResult tr{};
        std::uint64_t chanReqId = 0;
    };
    using TxnPtr = std::shared_ptr<Txn>;

    virtual void startAccess(const TxnPtr &txn) = 0;
    virtual bool usesMshr() const { return true; }
    virtual bool initialOpAdmissible(const MemPacket &pkt) const;

    unsigned chanIdx(Addr addr) const { return _map.decode(addr).channel; }
    DramChannel &channelFor(Addr addr) { return *_chans[chanIdx(addr)]; }

    void resolveTags(const TxnPtr &txn, Tick when,
                     bool sample_latency = true);
    void respond(const TxnPtr &txn, Tick when);
    void release(const TxnPtr &txn);
    void finish(const TxnPtr &txn, Tick when);
    void enqueueChan(ChanReq req, bool is_write);
    void doFill(Addr addr);
    virtual ChanOp fillOp() const { return ChanOp::Write; }

    void addPendingWrite(Addr addr) { ++_pendingWrites[addr]; }
    void removePendingWrite(Addr addr);
    bool isPendingWrite(Addr addr) const
    {
        return _pendingWrites.count(addr) != 0;
    }

    void mmRead(Addr addr, std::function<void(Tick)> cb);
    void mmWrite(Addr addr);

    void
    accountCache(std::uint64_t serving, std::uint64_t maintenance,
                 std::uint64_t discarded)
    {
        bytesDemandServing += static_cast<double>(serving);
        bytesMaintenance += static_cast<double>(maintenance);
        bytesDiscarded += static_cast<double>(discarded);
    }

    unsigned burstBytes() const { return _burstBytes; }

    std::uint64_t nextChanId() { return _nextChanId++; }

    DramCacheConfig _cfg;
    TagArray _tags;
    AddressMap _map;
    std::vector<std::unique_ptr<DramChannel>> _chans;
    std::vector<ShardOutbox *> _outboxes;
    MainMemory &_mm;

  private:
    void beginTxn(const TxnPtr &txn);
    bool tryFastPath(const TxnPtr &txn);
    void maybePrefetch(Addr addr);

    std::unordered_map<std::uint64_t, std::deque<TxnPtr>> _setQueues;
    unsigned _waiting = 0;
    Histogram _conflictOcc{1.0, 40};
    std::unordered_map<Addr, unsigned> _pendingWrites;
    std::unordered_set<Addr> _prefetched;
    std::uint64_t _inFlight = 0;
    std::uint64_t _nextChanId = 1;
    unsigned _burstBytes = lineBytes;
};

/** Frozen shared NDC/TDRAM controller flow. */
class InDramTagCtrl : public DramCacheCtrl
{
  public:
    InDramTagCtrl(EventQueue &eq, std::string name,
                  const DramCacheConfig &cfg, MainMemory &mm,
                  ChannelConfig chan_cfg);

  protected:
    void startAccess(const TxnPtr &txn) override;
    ChanOp fillOp() const override { return ChanOp::ActWr; }

    void readTagResult(const TxnPtr &txn, Tick t, const TagResult &tr);
    void readDataDone(const TxnPtr &txn, Tick t);
    void mmDataArrived(const TxnPtr &txn, Tick t);
    void maybeFill(const TxnPtr &txn);
};

class NdcCtrl : public InDramTagCtrl
{
  public:
    NdcCtrl(EventQueue &eq, std::string name,
            const DramCacheConfig &cfg, MainMemory &mm);
    Design design() const override { return Design::Ndc; }
};

class TdramCtrl : public InDramTagCtrl
{
  public:
    TdramCtrl(EventQueue &eq, std::string name,
              const DramCacheConfig &cfg, MainMemory &mm,
              bool probing = true);
    Design design() const override
    {
        return _probing ? Design::Tdram : Design::TdramNoProbe;
    }

  private:
    bool _probing;
};

/** Frozen CascadeLake tags-in-ECC flow. */
class CascadeLakeCtrl : public DramCacheCtrl
{
  public:
    CascadeLakeCtrl(EventQueue &eq, std::string name,
                    const DramCacheConfig &cfg, MainMemory &mm);

    Design design() const override { return Design::CascadeLake; }

    double
    predictorAccuracy() const override
    {
        return _pred.accuracy();
    }

  protected:
    void startAccess(const TxnPtr &txn) override;
    bool initialOpAdmissible(const MemPacket &pkt) const override;

    void tagDataArrived(const TxnPtr &txn, Tick t);
    void mmDataArrived(const TxnPtr &txn, Tick t);
    void issueDemandWrite(const TxnPtr &txn);

    MapIPredictor _pred;
};

/** Frozen per-core-deque request engine. */
class CoreEngine : public SimObject
{
  public:
    CoreEngine(EventQueue &eq, std::string name, const CoreConfig &cfg,
               std::vector<std::unique_ptr<AddressGenerator>> gens,
               DramCacheCtrl &dcache, std::uint64_t seed);

    void start();
    bool done() const { return _coresDone == _cfg.cores; }
    Tick finishTick() const { return _finishTick; }
    void warmup(std::uint64_t ops_per_core);

    Scalar opsRetired;
    Scalar demandReadsIssued;
    Scalar demandWritesIssued;
    Scalar backpressureStalls;
    Histogram demandReadLatency{4.0, 512};

    SramCache &llc() { return _llc; }
    SramCache &l1(unsigned core) { return *_l1s[core]; }

    void regStats(StatGroup &g) const;

  private:
    struct Core
    {
        std::unique_ptr<AddressGenerator> gen;
        std::uint64_t issued = 0;
        std::uint64_t retired = 0;
        unsigned outstanding = 0;
        Tick readyAt = 0;
        bool issueScheduled = false;
        bool finished = false;
        std::deque<MemPacket> stalled;
    };

    void advance(unsigned c);
    void scheduleAdvance(unsigned c, Tick when);
    bool drainStalled(unsigned c);
    bool issueDemand(unsigned c, MemPacket &pkt);
    void readReturned(unsigned c, const MemPacket &pkt);
    void maybeFinish(unsigned c);

    CoreConfig _cfg;
    DramCacheCtrl &_dcache;
    SramCache _llc;
    std::vector<std::unique_ptr<SramCache>> _l1s;
    std::vector<Core> _cores;
    Rng _rng;
    unsigned _coresDone = 0;
    Tick _finishTick = 0;
    PacketId _nextPktId = 1;
};

} // namespace legacyfe
} // namespace tsim

#endif // TSIM_TESTS_LEGACY_FRONTEND_HH
