/**
 * @file
 * Trace capture/replay tests.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "workload/trace.hh"

namespace tsim
{
namespace
{

TEST(Trace, RoundTripsThroughFile)
{
    Trace t;
    t.add(0x1000, false);
    t.add(0x2040, true);
    t.add(0xdeadbeefc0, false);
    const std::string path = ::testing::TempDir() + "trace_rt.txt";
    t.save(path);
    Trace loaded = Trace::load(path);
    ASSERT_EQ(loaded.size(), 3u);
    EXPECT_EQ(loaded.ops()[0].addr, 0x1000u);
    EXPECT_FALSE(loaded.ops()[0].isStore);
    EXPECT_EQ(loaded.ops()[1].addr, 0x2040u);
    EXPECT_TRUE(loaded.ops()[1].isStore);
    EXPECT_EQ(loaded.ops()[2].addr, 0xdeadbeefc0u);
    std::remove(path.c_str());
}

TEST(Trace, LoadSkipsCommentsAndBlanks)
{
    const std::string path = ::testing::TempDir() + "trace_c.txt";
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        std::fputs("# a comment\n\nR 0x40\nW 64\n", f);
        std::fclose(f);
    }
    Trace t = Trace::load(path);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t.ops()[0].addr, 0x40u);
    EXPECT_EQ(t.ops()[1].addr, 64u);  // decimal accepted too
    std::remove(path.c_str());
}

TEST(Trace, MaxAddrBoundsFootprint)
{
    Trace t;
    t.add(0x100, false);
    t.add(0x10000, true);
    EXPECT_EQ(t.maxAddr(), lineAlign(0x10000) + lineBytes);
}

TEST(TraceReplay, WrapsAndInterleaves)
{
    Trace t;
    for (Addr i = 0; i < 6; ++i)
        t.add(i * lineBytes, false);
    Rng rng(1);
    TraceReplayGenerator lane0(t, 0, 2);
    TraceReplayGenerator lane1(t, 1, 2);
    // Lane 0 sees ops 0, 2, 4, 0, 2, ...; lane 1 sees 1, 3, 5, 1 ...
    EXPECT_EQ(lane0.next(rng).addr, 0u * lineBytes);
    EXPECT_EQ(lane0.next(rng).addr, 2u * lineBytes);
    EXPECT_EQ(lane0.next(rng).addr, 4u * lineBytes);
    EXPECT_EQ(lane0.next(rng).addr, 0u * lineBytes);
    EXPECT_EQ(lane1.next(rng).addr, 1u * lineBytes);
    EXPECT_EQ(lane1.next(rng).addr, 3u * lineBytes);
    EXPECT_EQ(lane1.next(rng).addr, 5u * lineBytes);
}

} // namespace
} // namespace tsim
