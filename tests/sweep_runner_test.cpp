/**
 * @file
 * SweepRunner tests: work distribution, exception propagation, and
 * the determinism contract — a parallel sweep must produce reports
 * bit-identical to a serial run of the same configurations.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/sweep_runner.hh"
#include "system/system.hh"

namespace tsim
{
namespace
{

SystemConfig
tinyCfg(Design d)
{
    SystemConfig cfg;
    cfg.design = d;
    cfg.dcacheCapacity = 2ULL << 20;
    cfg.cores.cores = 2;
    cfg.cores.opsPerCore = 1200;
    cfg.cores.llcBytes = 256 * 1024;
    cfg.warmupOpsPerCore = 4000;
    return cfg;
}

/**
 * Render every deterministic SimReport field with hex-float
 * precision, so comparing two reports compares exact bit patterns.
 * hostPerf is intentionally excluded: wall-time is host noise.
 */
std::string
reportKey(const SimReport &r)
{
    char buf[512];
    std::string s = r.workload + "|" + r.design + "|" +
                    (r.highMiss ? "1" : "0") + "|";
    std::snprintf(buf, sizeof(buf), "%llu|%llu|%llu|%a|%a|%a|%a|%a|%a|%a|",
                  (unsigned long long)r.runtimeTicks,
                  (unsigned long long)r.demandReads,
                  (unsigned long long)r.demandWrites, r.missRatio,
                  r.tagCheckNs, r.readQueueDelayNs,
                  r.mmReadQueueDelayNs, r.demandReadLatencyNs, r.bloat,
                  r.unusefulFrac);
    s += buf;
    for (double f : r.outcomeFrac) {
        std::snprintf(buf, sizeof(buf), "%a,", f);
        s += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "|%a|%a|%a|%a|%a|%llu|%a|%a|%llu|%a|%llu",
                  r.cacheBytes, r.mmBytes, r.energy.totalJ(),
                  r.energy.cacheJ(), r.energy.mmJ(),
                  (unsigned long long)r.flushStalls, r.flushMaxOcc,
                  r.flushAvgOcc, (unsigned long long)r.probes,
                  r.predictorAccuracy,
                  (unsigned long long)r.backpressureStalls);
    s += buf;
    return s;
}

TEST(SweepRunner, DefaultsToHardwareConcurrency)
{
    SweepRunner r;
    EXPECT_GE(r.jobs(), 1u);
    SweepRunner r4(4);
    EXPECT_EQ(r4.jobs(), 4u);
}

TEST(SweepRunner, ForEachVisitsEveryIndexExactlyOnce)
{
    const std::size_t n = 200;
    std::vector<std::atomic<int>> visits(n);
    SweepRunner runner(4);
    runner.forEach(n, [&](std::size_t i) {
        visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(SweepRunner, ForEachHandlesEmptyAndSingleItem)
{
    SweepRunner runner(4);
    runner.forEach(0, [](std::size_t) { FAIL(); });
    int calls = 0;
    runner.forEach(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(SweepRunner, ForEachPropagatesExceptions)
{
    SweepRunner runner(3);
    EXPECT_THROW(
        runner.forEach(16,
                       [&](std::size_t i) {
                           if (i == 7)
                               throw std::runtime_error("job 7 failed");
                       }),
        std::runtime_error);
}

/**
 * The acceptance test of the parallel runner: reports from a
 * parallel sweep must be bit-identical, field by field, to a serial
 * run of the same configurations, and ordered by job index.
 */
TEST(SweepRunner, ParallelReportsBitIdenticalToSerial)
{
    std::vector<SweepJob> jobs;
    for (Design d : {Design::Tdram, Design::CascadeLake}) {
        for (const char *wl : {"is.C", "ft.C"}) {
            jobs.push_back(SweepJob{tinyCfg(d), findWorkload(wl)});
        }
    }

    // Serial reference: plain runOne, in order, on this thread.
    std::vector<std::string> serial;
    for (const SweepJob &j : jobs)
        serial.push_back(reportKey(runOne(j.cfg, j.workload)));

    // Parallel on several workers, twice (the second run catches
    // scheduling-order dependence).
    for (unsigned workers : {4u, 2u}) {
        SweepRunner runner(workers);
        const std::vector<SimReport> reports = runner.run(jobs);
        ASSERT_EQ(reports.size(), jobs.size());
        for (std::size_t i = 0; i < reports.size(); ++i) {
            EXPECT_EQ(reportKey(reports[i]), serial[i])
                << "job " << i << " with " << workers << " workers";
        }
    }
}

TEST(SweepRunner, ReportsCarryHostPerfCounters)
{
    SweepRunner runner(2);
    const std::vector<SweepJob> jobs{
        SweepJob{tinyCfg(Design::Tdram), findWorkload("is.C")}};
    const std::vector<SimReport> reports = runner.run(jobs);
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_GT(reports[0].hostPerf.events, 0u);
    EXPECT_EQ(reports[0].hostPerf.runs, 1u);
    EXPECT_EQ(reports[0].hostPerf.simTicks, reports[0].runtimeTicks);
    EXPECT_GE(reports[0].hostPerf.hostSeconds, 0.0);
}

} // namespace
} // namespace tsim
