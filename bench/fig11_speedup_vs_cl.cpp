/**
 * @file
 * Figure 11: system speedup normalized to CascadeLake. Paper
 * geomeans: TDRAM 1.20x vs CascadeLake, 1.23x vs Alloy, 1.13x vs
 * BEAR, 1.08x vs NDC; Ideal is the upper bound TDRAM approaches.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tsim;
    const bench::Options opts = bench::parseArgs(argc, argv);
    bench::RunCache runs(opts);

    const Design designs[] = {Design::Alloy,  Design::Bear,
                              Design::Ndc,    Design::TicToc,
                              Design::Banshee, Design::Tdram,
                              Design::Ideal};

    // Run the whole grid on the worker pool up front; the printing
    // below then reads cached reports in deterministic order.
    runs.warm({Design::CascadeLake, Design::Alloy, Design::Bear,
               Design::Ndc, Design::TicToc, Design::Banshee,
               Design::Tdram, Design::Ideal},
              bench::workloadSet(opts));

    std::printf(
        "Figure 11: speedup normalized to CascadeLake, higher is "
        "better\n");
    std::printf("%-9s %9s %9s %9s %9s %9s %9s %9s\n", "workload",
                "Alloy", "BEAR", "NDC", "TicToc", "Banshee", "TDRAM",
                "Ideal");
    std::vector<double> cl_rt;
    std::vector<double> rt[7];
    for (const auto &wl : bench::workloadSet(opts)) {
        const double base = static_cast<double>(
            runs.get(Design::CascadeLake, wl).runtimeTicks);
        cl_rt.push_back(base);
        std::printf("%-9s", wl.name.c_str());
        for (int i = 0; i < 7; ++i) {
            const double t = static_cast<double>(
                runs.get(designs[i], wl).runtimeTicks);
            rt[i].push_back(t);
            std::printf(" %9.3f", base / t);
        }
        std::printf("\n");
    }
    std::printf("%-9s", "(geomean)");
    for (auto &t : rt)
        std::printf(" %9.3f", bench::geomeanRatio(cl_rt, t));
    std::printf("\n\nTDRAM speedup over each design (geomean):\n");
    // TicToc and Banshee postdate the paper's Figure 11; no paper
    // geomean exists for them.
    const char *names[] = {"Alloy", "BEAR", "NDC", "TicToc",
                           "Banshee"};
    const double paper[] = {1.23, 1.13, 1.08, 0.0, 0.0};
    for (int i = 0; i < 5; ++i) {
        if (paper[i] > 0) {
            std::printf("  vs %-7s %5.3fx   (paper: %.2fx)\n",
                        names[i], bench::geomeanRatio(rt[i], rt[5]),
                        paper[i]);
        } else {
            std::printf("  vs %-7s %5.3fx\n", names[i],
                        bench::geomeanRatio(rt[i], rt[5]));
        }
    }
    std::printf("  vs %-7s %5.3fx   (paper: 1.20x)\n", "CascLk",
                bench::geomeanRatio(cl_rt, rt[5]));
    return 0;
}
