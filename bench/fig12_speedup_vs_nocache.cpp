/**
 * @file
 * Figure 12: speedup normalized to a system with main memory only.
 * Paper geomeans: CascadeLake 0.92x (8% slowdown), Alloy 0.90x,
 * BEAR 0.98x, NDC 1.03x, TDRAM 1.11x — i.e., existing DRAM caches
 * can *hurt*, TDRAM helps.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tsim;
    const bench::Options opts = bench::parseArgs(argc, argv);
    bench::RunCache runs(opts);

    const Design designs[] = {Design::CascadeLake, Design::Alloy,
                              Design::Bear, Design::Ndc,
                              Design::TicToc, Design::Banshee,
                              Design::Tdram};

    // Run the whole grid on the worker pool up front; the printing
    // below then reads cached reports in deterministic order.
    runs.warm({Design::NoCache, Design::CascadeLake, Design::Alloy,
               Design::Bear, Design::Ndc, Design::TicToc,
               Design::Banshee, Design::Tdram},
              bench::workloadSet(opts));

    std::printf(
        "Figure 12: speedup vs no-DRAM-cache, higher is better\n");
    std::printf("%-9s %6s | %9s %9s %9s %9s %9s %9s %9s\n",
                "workload", "grp", "CascLake", "Alloy", "BEAR", "NDC",
                "TicToc", "Banshee", "TDRAM");
    std::vector<double> base_rt;
    std::vector<double> rt[7];
    for (const auto &wl : bench::workloadSet(opts)) {
        const double base = static_cast<double>(
            runs.get(Design::NoCache, wl).runtimeTicks);
        base_rt.push_back(base);
        std::printf("%-9s %6s |", wl.name.c_str(),
                    wl.highMiss ? "high" : "low");
        for (int i = 0; i < 7; ++i) {
            const double t = static_cast<double>(
                runs.get(designs[i], wl).runtimeTicks);
            rt[i].push_back(t);
            std::printf(" %9.3f", base / t);
        }
        std::printf("\n");
    }
    std::printf("%-16s |", "(geomean)");
    for (auto &t : rt)
        std::printf(" %9.3f", bench::geomeanRatio(base_rt, t));
    std::printf("\n\npaper geomeans (CascLake/Alloy/BEAR/NDC/TDRAM): "
                "0.92, 0.90, 0.98, 1.03, 1.11 — low-miss workloads "
                "gain, high-miss workloads can lose. TicToc and "
                "Banshee postdate the paper's figure.\n");
    return 0;
}
