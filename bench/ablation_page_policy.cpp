/**
 * @file
 * Ablation: row-buffer policy for the conventional DRAM-cache
 * devices. Table III fixes close-page; this harness shows why —
 * after LLC filtering, the DRAM-cache demand stream has little row
 * locality, so open-page adds precharge penalties on conflicts
 * without earning enough row hits. (TDRAM's ActRd/ActWr are
 * combined close-page commands by construction.)
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tsim;
    const bench::Options opts = bench::parseArgs(argc, argv);

    std::printf("Page-policy ablation (CascadeLake device)\n");
    std::printf("%-9s | %10s %10s %9s | %9s %9s\n", "workload",
                "close_us", "open_us", "ratio", "rowHit%", "conf%");
    std::vector<double> close_rt, open_rt;
    for (const auto &wl : bench::workloadSet(opts)) {
        SystemConfig close_cfg =
            bench::baseConfig(opts, Design::CascadeLake);
        const SimReport close = runOne(close_cfg, wl);

        SystemConfig open_cfg = close_cfg;
        open_cfg.dcachePagePolicy = PagePolicy::Open;
        System open_sys(open_cfg, wl);
        const SimReport open = open_sys.run();

        double hits = 0, conflicts = 0, acts = 0;
        for (unsigned c = 0; c < open_sys.dcache().numChannels();
             ++c) {
            const auto &ch = open_sys.dcache().channel(c);
            hits += ch.rowHits.value();
            conflicts += ch.rowConflicts.value();
            acts += ch.dataBankActs.value();
        }
        const double accesses = hits + acts;
        close_rt.push_back(static_cast<double>(close.runtimeTicks));
        open_rt.push_back(static_cast<double>(open.runtimeTicks));
        std::printf("%-9s | %10.1f %10.1f %9.3f | %9.1f %9.1f\n",
                    wl.name.c_str(), close.runtimeNs() / 1e3,
                    open.runtimeNs() / 1e3,
                    static_cast<double>(open.runtimeTicks) /
                        static_cast<double>(close.runtimeTicks),
                    accesses > 0 ? hits / accesses * 100.0 : 0.0,
                    accesses > 0 ? conflicts / accesses * 100.0 : 0.0);
    }
    std::printf("\nopen-page / close-page runtime (geomean): %.3f — "
                "values near or above 1 justify Table III's "
                "close-page choice for cache traffic.\n",
                bench::geomeanRatio(open_rt, close_rt));
    return 0;
}
