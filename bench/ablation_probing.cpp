/**
 * @file
 * Ablation (§III-E, §VI): TDRAM with early tag probing disabled.
 * Paper: TDRAM-without-probing behaves like NDC in both tag-check
 * latency and overall performance, and probing improves tag-check
 * latency by up to 70% on large high-miss workloads.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tsim;
    const bench::Options opts = bench::parseArgs(argc, argv);
    bench::RunCache runs(opts);
    runs.warm({Design::Tdram, Design::TdramNoProbe, Design::Ndc},
              bench::workloadSet(opts));

    std::printf("Probing ablation: tag check (ns) and runtime (us)\n");
    std::printf("%-9s | %9s %9s %9s | %9s %9s %9s | %9s\n",
                "workload", "TDRAM", "noProbe", "NDC", "TDRAM",
                "noProbe", "NDC", "probes");
    std::vector<double> td_tc, np_tc, td_rt, np_rt;
    for (const auto &wl : bench::workloadSet(opts)) {
        const auto &td = runs.get(Design::Tdram, wl);
        const auto &np = runs.get(Design::TdramNoProbe, wl);
        const auto &ndc = runs.get(Design::Ndc, wl);
        td_tc.push_back(td.tagCheckNs);
        np_tc.push_back(np.tagCheckNs);
        td_rt.push_back(static_cast<double>(td.runtimeTicks));
        np_rt.push_back(static_cast<double>(np.runtimeTicks));
        std::printf(
            "%-9s | %9.2f %9.2f %9.2f | %9.1f %9.1f %9.1f | %9llu\n",
            wl.name.c_str(), td.tagCheckNs, np.tagCheckNs,
            ndc.tagCheckNs, td.runtimeNs() / 1e3, np.runtimeNs() / 1e3,
            ndc.runtimeNs() / 1e3, (unsigned long long)td.probes);
    }
    std::printf("\nprobing improves tag check by %.1f%% (geomean); "
                "runtime by %.3fx\n",
                (1.0 - bench::geomeanRatio(td_tc, np_tc)) * 100.0,
                bench::geomeanRatio(np_rt, td_rt));
    std::printf("paper: up to 70%% tag-check improvement on large "
                "high-miss workloads; TDRAM-noprobe ~= NDC.\n");
    return 0;
}
