/**
 * @file
 * Shared plumbing for the per-figure/table benchmark harnesses:
 * command-line handling (--full for all 28 workloads, --ops N,
 * --jobs N), cached per-(design, workload) runs with parallel
 * prefetching, host-throughput reporting, and geomean helpers.
 */

#ifndef TSIM_BENCH_BENCH_COMMON_HH
#define TSIM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "sim/sweep_runner.hh"
#include "stats/host_perf.hh"
#include "system/system.hh"

namespace bench
{

/** Parsed benchmark options. */
struct Options
{
    bool full = false;            ///< all 28 workloads vs quick set
    std::uint64_t opsPerCore = 8000;
    std::uint64_t warmupOpsPerCore = 150000;
    std::uint64_t seed = 1;
    unsigned jobs = 0;            ///< workers; 0 = hardware_concurrency
    std::string tracePrefix;      ///< .tdt per run when non-empty
    std::string replayPath;       ///< .tdtz replay source when non-empty
};

inline Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0) {
            o.full = true;
            o.opsPerCore = 40000;
        } else if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
            o.opsPerCore = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--warmup") == 0 &&
                   i + 1 < argc) {
            o.warmupOpsPerCore = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            o.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            o.jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--trace") == 0 &&
                   i + 1 < argc) {
            o.tracePrefix = argv[++i];
        } else if (std::strcmp(argv[i], "--replay") == 0 &&
                   i + 1 < argc) {
            o.replayPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--full] [--ops N] [--warmup N] "
                         "[--seed N] [--jobs N] [--trace PREFIX] "
                         "[--replay FILE.tdtz]\n",
                         argv[0]);
            std::exit(1);
        }
    }
    return o;
}

inline std::vector<tsim::WorkloadProfile>
workloadSet(const Options &o)
{
    return o.full ? tsim::allWorkloads()
                  : tsim::representativeWorkloads();
}

inline tsim::SystemConfig
baseConfig(const Options &o, tsim::Design d)
{
    tsim::SystemConfig cfg;
    cfg.design = d;
    cfg.cores.opsPerCore = o.opsPerCore;
    cfg.warmupOpsPerCore = o.warmupOpsPerCore;
    cfg.seed = o.seed;
    cfg.replay.path = o.replayPath;
    return cfg;
}

/**
 * Run (or fetch the cached run of) one design/workload pair.
 *
 * warm() runs a whole grid up front on the SweepRunner pool; get()
 * then serves cached reports, so the harness output stays serial and
 * deterministic while the simulations run concurrently. On
 * destruction the cache reports aggregate host throughput (events/s,
 * simulated-ns per host-second) to stderr.
 */
class RunCache
{
  public:
    explicit RunCache(const Options &o) : _opts(o) {}

    ~RunCache() { reportHostPerf(); }

    /** Prefetch every (design, workload) pair in parallel. */
    void
    warm(const std::vector<tsim::Design> &designs,
         const std::vector<tsim::WorkloadProfile> &workloads)
    {
        std::vector<tsim::SweepJob> jobs;
        std::vector<std::string> keys;
        for (tsim::Design d : designs) {
            for (const auto &wl : workloads) {
                std::string key = cacheKey(d, wl);
                if (_runs.count(key))
                    continue;
                tsim::SweepJob job{baseConfig(_opts, d), wl};
                if (!_opts.tracePrefix.empty())
                    job.cfg.tracePath = tracePath(key);
                jobs.push_back(std::move(job));
                keys.push_back(std::move(key));
            }
        }
        const tsim::SweepRunner runner(_opts.jobs);
        std::vector<tsim::SimReport> reports = runner.run(jobs);
        for (std::size_t i = 0; i < reports.size(); ++i) {
            _perf.merge(reports[i].hostPerf);
            _runs.emplace(keys[i], std::move(reports[i]));
        }
    }

    const tsim::SimReport &
    get(tsim::Design d, const tsim::WorkloadProfile &wl)
    {
        const std::string key = cacheKey(d, wl);
        auto it = _runs.find(key);
        if (it != _runs.end())
            return it->second;
        tsim::SystemConfig cfg = baseConfig(_opts, d);
        if (!_opts.tracePrefix.empty())
            cfg.tracePath = tracePath(key);
        auto [pos, ok] = _runs.emplace(key, tsim::runOne(cfg, wl));
        (void)ok;
        _perf.merge(pos->second.hostPerf);
        return pos->second;
    }

    /** Aggregate host throughput over every run so far. */
    const tsim::HostPerf &hostPerf() const { return _perf; }

    /** Print the host-throughput summary to stderr (idempotent). */
    void
    reportHostPerf()
    {
        if (_perfReported || _perf.runs == 0)
            return;
        _perfReported = true;
        const double scans_per_kick =
            _perf.chanKicks
                ? static_cast<double>(_perf.chanScans) /
                      static_cast<double>(_perf.chanKicks)
                : 0.0;
        std::fprintf(stderr,
                     "[host] %llu runs, %llu events, %.2fs host time, "
                     "%.2fM events/s, %.1f sim-us per host-s, "
                     "%llu chan kicks (%.1f scan steps each)\n",
                     (unsigned long long)_perf.runs,
                     (unsigned long long)_perf.events,
                     _perf.hostSeconds, _perf.eventsPerSec() / 1e6,
                     _perf.simNsPerHostSec() / 1e3,
                     (unsigned long long)_perf.chanKicks,
                     scans_per_kick);
    }

  private:
    static std::string
    cacheKey(tsim::Design d, const tsim::WorkloadProfile &wl)
    {
        return std::string(tsim::designName(d)) + "/" + wl.name;
    }

    /** Per-run trace file: prefix + sanitized cache key + .tdt. */
    std::string
    tracePath(const std::string &key) const
    {
        std::string p = _opts.tracePrefix + "_";
        for (char c : key)
            p += (c == '/' || c == '.') ? '-' : c;
        return p + ".tdt";
    }

    Options _opts;
    std::map<std::string, tsim::SimReport> _runs;
    tsim::HostPerf _perf;
    bool _perfReported = false;
};

/** Geomean of per-workload ratios base/x (speedups). */
inline double
geomeanRatio(const std::vector<double> &base,
             const std::vector<double> &x)
{
    std::vector<double> r;
    for (std::size_t i = 0; i < base.size(); ++i)
        r.push_back(base[i] / x[i]);
    return tsim::geomean(r);
}

} // namespace bench

#endif // TSIM_BENCH_BENCH_COMMON_HH
