/**
 * @file
 * Shared plumbing for the per-figure/table benchmark harnesses:
 * command-line handling (--full for all 28 workloads, --ops N),
 * cached per-(design, workload) runs, and geomean helpers.
 */

#ifndef TSIM_BENCH_BENCH_COMMON_HH
#define TSIM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "system/system.hh"

namespace bench
{

/** Parsed benchmark options. */
struct Options
{
    bool full = false;            ///< all 28 workloads vs quick set
    std::uint64_t opsPerCore = 8000;
    std::uint64_t warmupOpsPerCore = 150000;
    std::uint64_t seed = 1;
};

inline Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0) {
            o.full = true;
            o.opsPerCore = 40000;
        } else if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
            o.opsPerCore = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--warmup") == 0 &&
                   i + 1 < argc) {
            o.warmupOpsPerCore = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            o.seed = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--full] [--ops N] [--warmup N] "
                         "[--seed N]\n",
                         argv[0]);
            std::exit(1);
        }
    }
    return o;
}

inline std::vector<tsim::WorkloadProfile>
workloadSet(const Options &o)
{
    return o.full ? tsim::allWorkloads()
                  : tsim::representativeWorkloads();
}

inline tsim::SystemConfig
baseConfig(const Options &o, tsim::Design d)
{
    tsim::SystemConfig cfg;
    cfg.design = d;
    cfg.cores.opsPerCore = o.opsPerCore;
    cfg.warmupOpsPerCore = o.warmupOpsPerCore;
    cfg.seed = o.seed;
    return cfg;
}

/** Run (or fetch the cached run of) one design/workload pair. */
class RunCache
{
  public:
    explicit RunCache(const Options &o) : _opts(o) {}

    const tsim::SimReport &
    get(tsim::Design d, const tsim::WorkloadProfile &wl)
    {
        const std::string key =
            std::string(tsim::designName(d)) + "/" + wl.name;
        auto it = _runs.find(key);
        if (it != _runs.end())
            return it->second;
        tsim::SystemConfig cfg = baseConfig(_opts, d);
        auto [pos, ok] = _runs.emplace(key, tsim::runOne(cfg, wl));
        (void)ok;
        return pos->second;
    }

  private:
    Options _opts;
    std::map<std::string, tsim::SimReport> _runs;
};

/** Geomean of per-workload ratios base/x (speedups). */
inline double
geomeanRatio(const std::vector<double> &base,
             const std::vector<double> &x)
{
    std::vector<double> r;
    for (std::size_t i = 0; i < base.size(); ++i)
        r.push_back(base[i] / x[i]);
    return tsim::geomean(r);
}

} // namespace bench

#endif // TSIM_BENCH_BENCH_COMMON_HH
