/**
 * @file
 * Event-kernel microbenchmark: events/sec and allocations/event for
 * the production EventQueue versus the seed design (std::function
 * callbacks in a std::priority_queue), which is embedded here as the
 * fixed baseline.
 *
 * The driver replays the simulator's real event mix: many
 * self-rescheduling handlers with small captures at short DRAM-
 * timing horizons (hundreds to thousands of ticks) plus a periodic
 * far-future refresh event, all interleaved with same-tick
 * rescheduling. Heap traffic during the measured region is counted
 * by a global operator new/delete override.
 *
 * Emits BENCH_kernel.json (override with --out FILE) so future PRs
 * can track the kernel's perf trajectory.
 *
 * Usage: micro_kernel [--events N] [--handlers N] [--reps N]
 *                     [--min-time SECS] [--out FILE]
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <queue>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/ticks.hh"

// ---------------------------------------------------------------------
// Global allocation counter. Counts every operator new in the
// process; the harness reads deltas around the measured region.
// ---------------------------------------------------------------------

namespace
{
std::atomic<std::uint64_t> g_allocCount{0};
} // namespace

void *
operator new(std::size_t size)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::aligned_alloc(static_cast<std::size_t>(align),
                                     size))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace
{

// ---------------------------------------------------------------------
// The seed kernel, verbatim in behaviour: type-erased std::function
// callbacks, one priority_queue of fat events, move-out-of-top.
// Kept here (not in the library) as the fixed comparison point.
// ---------------------------------------------------------------------

class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    tsim::Tick curTick() const { return _curTick; }

    void
    schedule(tsim::Tick when, Callback cb)
    {
        _events.push(Event{when, _nextSeq++, std::move(cb)});
    }

    void
    scheduleIn(tsim::Tick delay, Callback cb)
    {
        schedule(_curTick + delay, std::move(cb));
    }

    bool empty() const { return _events.empty(); }

    bool
    step()
    {
        if (_events.empty())
            return false;
        Event ev = std::move(const_cast<Event &>(_events.top()));
        _events.pop();
        _curTick = ev.when;
        ev.cb();
        return true;
    }

  private:
    struct Event
    {
        tsim::Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> _events;
    tsim::Tick _curTick = 0;
    std::uint64_t _nextSeq = 0;
};

// ---------------------------------------------------------------------
// Workload: mirrors the simulator's event population.
// ---------------------------------------------------------------------

/** Capture footprint comparable to the channel/dcache lambdas. */
struct HandlerState
{
    std::uint64_t id = 0;
    std::uint64_t fired = 0;
    tsim::Tick lastTick = 0;
    std::uint64_t checksum = 0;
};

/**
 * Drive @p eq until @p target events executed: `handlers` ping
 * events hopping across short DRAM-style delays (with a same-tick
 * hop mixed in) and one refresh event at the tREFI horizon.
 *
 * @return checksum over the execution order (for cross-checking the
 *         two kernels executed identical schedules).
 */
template <typename Queue>
std::uint64_t
drive(Queue &eq, unsigned handlers, std::uint64_t target)
{
    static const tsim::Tick delays[] = {500, 1330, 2660, 5000, 15000,
                                        0,   700,  9000};
    std::uint64_t executed = 0;
    std::uint64_t checksum = 0;
    std::vector<HandlerState> state(handlers);

    std::function<void(unsigned)> hop = [&](unsigned h) {
        HandlerState &s = state[h];
        ++executed;
        ++s.fired;
        s.lastTick = eq.curTick();
        checksum = checksum * 1099511628211ULL ^ (h + s.fired);
        if (executed >= target)
            return;
        const tsim::Tick d =
            delays[(s.fired + h) % (sizeof(delays) / sizeof(delays[0]))];
        HandlerState *sp = &s;
        tsim::Tick now = eq.curTick();
        eq.scheduleIn(d, [&hop, h, sp, now] {
            sp->checksum ^= now;
            hop(h);
        });
    };

    std::function<void()> refresh = [&] {
        checksum ^= eq.curTick();
        if (executed < target)
            eq.scheduleIn(tsim::nsToTicks(3900.0), refresh);
    };

    for (unsigned h = 0; h < handlers; ++h)
        eq.schedule(h % 97, [&hop, h] { hop(h); });
    eq.scheduleIn(tsim::nsToTicks(3900.0), refresh);

    // Drive one event at a time, exactly as System::run does; stop at
    // exactly `target` so both kernels execute the identical stream.
    while (executed < target && eq.step())
        ;
    return checksum;
}

struct Measurement
{
    double eventsPerSec = 0;
    double allocsPerEvent = 0;
    std::uint64_t checksum = 0;
};

template <typename Queue>
Measurement
measure(unsigned handlers, std::uint64_t events)
{
    // Warm-up pass: populates pools/arenas so the measured region
    // reflects steady state.
    {
        Queue warm;
        drive(warm, handlers, events / 8 + 1);
    }
    Queue eq;
    const std::uint64_t allocs0 =
        g_allocCount.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t checksum = drive(eq, handlers, events);
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t allocs1 =
        g_allocCount.load(std::memory_order_relaxed);

    Measurement m;
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    m.eventsPerSec = static_cast<double>(events) / secs;
    m.allocsPerEvent = static_cast<double>(allocs1 - allocs0) /
                       static_cast<double>(events);
    m.checksum = checksum;
    return m;
}

/**
 * Repeat until both @p reps runs and @p min_time measured seconds
 * are reached; keep the fastest (throughput noise is one-sided). A
 * checksum change between repetitions is host non-determinism and
 * aborts the benchmark.
 */
template <typename Queue>
Measurement
measureBest(unsigned handlers, std::uint64_t events, unsigned reps,
            double min_time)
{
    Measurement best;
    double spent = 0;
    for (unsigned i = 0; i < reps || spent < min_time; ++i) {
        const Measurement m = measure<Queue>(handlers, events);
        spent += static_cast<double>(events) / m.eventsPerSec;
        if (i > 0 && m.checksum != best.checksum) {
            std::fprintf(stderr,
                         "FAIL: rep %u changed the checksum "
                         "(%llx vs %llx)\n",
                         i, (unsigned long long)m.checksum,
                         (unsigned long long)best.checksum);
            std::exit(1);
        }
        if (i == 0 || m.eventsPerSec > best.eventsPerSec)
            best = m;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t events = 3000000;
    unsigned handlers = 64;
    unsigned reps = 1;
    double min_time = 0;
    std::string out = "BENCH_kernel.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
            events = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--handlers") == 0 &&
                   i + 1 < argc) {
            handlers = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--reps") == 0 &&
                   i + 1 < argc) {
            reps = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--min-time") == 0 &&
                   i + 1 < argc) {
            min_time = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--events N] [--handlers N] "
                         "[--reps N] [--min-time SECS] [--out FILE]\n",
                         argv[0]);
            return 1;
        }
    }
    if (events == 0 || reps == 0) {
        std::fprintf(stderr, "--events and --reps must be > 0\n");
        return 1;
    }

    const std::uint64_t fallbacks0 = tsim::InlineFunction::heapFallbacks();
    const Measurement fast =
        measureBest<tsim::EventQueue>(handlers, events, reps, min_time);
    const std::uint64_t fastFallbacks =
        tsim::InlineFunction::heapFallbacks() - fallbacks0;
    const Measurement legacy =
        measureBest<LegacyEventQueue>(handlers, events, reps, min_time);

    if (fast.checksum != legacy.checksum) {
        std::fprintf(stderr,
                     "FAIL: kernels diverged (checksum %llx vs %llx)\n",
                     (unsigned long long)fast.checksum,
                     (unsigned long long)legacy.checksum);
        return 1;
    }

    const double speedup = fast.eventsPerSec / legacy.eventsPerSec;
    std::printf("micro_kernel: %llu events, %u handlers\n",
                (unsigned long long)events, handlers);
    std::printf("  fast    %10.2fM events/s  %.4f allocs/event  "
                "%llu SBO fallbacks\n",
                fast.eventsPerSec / 1e6, fast.allocsPerEvent,
                (unsigned long long)fastFallbacks);
    std::printf("  legacy  %10.2fM events/s  %.4f allocs/event\n",
                legacy.eventsPerSec / 1e6, legacy.allocsPerEvent);
    std::printf("  speedup %10.2fx\n", speedup);

    if (std::FILE *f = std::fopen(out.c_str(), "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"micro_kernel\",\n"
            "  \"events\": %llu,\n"
            "  \"handlers\": %u,\n"
            "  \"fast\": {\n"
            "    \"events_per_sec\": %.0f,\n"
            "    \"allocs_per_event\": %.6f,\n"
            "    \"sbo_heap_fallbacks\": %llu\n"
            "  },\n"
            "  \"legacy\": {\n"
            "    \"events_per_sec\": %.0f,\n"
            "    \"allocs_per_event\": %.6f\n"
            "  },\n"
            "  \"speedup\": %.3f\n"
            "}\n",
            (unsigned long long)events, handlers, fast.eventsPerSec,
            fast.allocsPerEvent, (unsigned long long)fastFallbacks,
            legacy.eventsPerSec, legacy.allocsPerEvent, speedup);
        std::fclose(f);
    } else {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    return 0;
}
