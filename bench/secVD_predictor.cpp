/**
 * @file
 * §V-D: performance impact of a MAP-I hit/miss predictor on a
 * CascadeLake-style cache. Paper: predictors add only ~1.03-1.04x
 * because they cannot skip the tag read for writes (dirty safety)
 * and wrong predictions waste backing-store bandwidth, while TDRAM
 * gets deterministic early misses from tag probing.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tsim;
    const bench::Options opts = bench::parseArgs(argc, argv);

    std::printf("SecV-D: MAP-I predictor impact on CascadeLake\n");
    std::printf("%-9s %12s %12s %9s %9s %10s\n", "workload",
                "base_us", "pred_us", "speedup", "accuracy",
                "wasted_rd");
    std::vector<double> base_rt, pred_rt;
    for (const auto &wl : bench::workloadSet(opts)) {
        SystemConfig base_cfg =
            bench::baseConfig(opts, Design::CascadeLake);
        System base_sys(base_cfg, wl);
        const SimReport base = base_sys.run();

        SystemConfig pred_cfg = base_cfg;
        pred_cfg.predictor = true;
        System pred_sys(pred_cfg, wl);
        const SimReport pred = pred_sys.run();

        base_rt.push_back(static_cast<double>(base.runtimeTicks));
        pred_rt.push_back(static_cast<double>(pred.runtimeTicks));
        std::printf("%-9s %12.1f %12.1f %9.3f %9.2f %10.0f\n",
                    wl.name.c_str(), base.runtimeNs() / 1e3,
                    pred.runtimeNs() / 1e3,
                    static_cast<double>(base.runtimeTicks) /
                        static_cast<double>(pred.runtimeTicks),
                    pred.predictorAccuracy,
                    pred_sys.dcache().predictorWrongFetch.value());
    }
    std::printf("\npredictor speedup geomean: %.3fx   (paper: "
                "1.03-1.04x)\n",
                bench::geomeanRatio(base_rt, pred_rt));

    // --- Prefetcher half of §V-D: incremental gains at best, with
    // --- visible bandwidth interference from useless prefetches.
    std::printf("\nNext-line prefetcher on TDRAM (degree 2):\n");
    std::printf("%-9s %12s %12s %9s %10s %10s\n", "workload",
                "base_us", "pref_us", "speedup", "issued",
                "useful");
    std::vector<double> b2, p2;
    for (const auto &wl : bench::workloadSet(opts)) {
        SystemConfig base_cfg = bench::baseConfig(opts, Design::Tdram);
        const SimReport base = runOne(base_cfg, wl);

        SystemConfig pf_cfg = base_cfg;
        pf_cfg.prefetchDegree = 2;
        System pf_sys(pf_cfg, wl);
        const SimReport pf = pf_sys.run();

        b2.push_back(static_cast<double>(base.runtimeTicks));
        p2.push_back(static_cast<double>(pf.runtimeTicks));
        std::printf("%-9s %12.1f %12.1f %9.3f %10.0f %10.0f\n",
                    wl.name.c_str(), base.runtimeNs() / 1e3,
                    pf.runtimeNs() / 1e3,
                    static_cast<double>(base.runtimeTicks) /
                        static_cast<double>(pf.runtimeTicks),
                    pf_sys.dcache().prefetchIssued.value(),
                    pf_sys.dcache().prefetchUseful.value());
    }
    std::printf("\nprefetcher speedup geomean: %.3fx   (paper: "
                "\"incremental\" gains; interference limits it)\n",
                bench::geomeanRatio(b2, p2));
    return 0;
}
