/**
 * @file
 * Figure 1: breakdown of DRAM-cache hit and miss ratios per
 * workload, split into the Table II access classes, with the
 * low/high miss-ratio grouping the rest of the paper uses.
 *
 * The breakdown is a property of the workload's interaction with the
 * cache organization (not of the tag-check protocol), so one design
 * suffices; we use TDRAM, as hit/miss classes are identical across
 * designs (asserted by tests/integration_test.cpp).
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tsim;
    const bench::Options opts = bench::parseArgs(argc, argv);

    std::printf("Figure 1: DRAM-cache access breakdown (%% of demands)\n");
    std::printf("%-9s %5s | %6s %6s %6s %6s | %6s %6s %6s %6s | %6s %s\n",
                "workload", "grp", "rdHit", "rdMsI", "rdMsC", "rdMsD",
                "wrHit", "wrMsI", "wrMsC", "wrMsD", "missR", "");

    auto pct = [](double f) { return f * 100.0; };
    for (const auto &wl : bench::workloadSet(opts)) {
        SystemConfig cfg = bench::baseConfig(opts, Design::Tdram);
        const SimReport r = runOne(cfg, wl);
        auto f = [&](AccessOutcome o) {
            return r.outcomeFrac[static_cast<unsigned>(o)];
        };
        const double rd_hit = f(AccessOutcome::ReadHitClean) +
                              f(AccessOutcome::ReadHitDirty);
        const double wr_hit = f(AccessOutcome::WriteHitClean) +
                              f(AccessOutcome::WriteHitDirty);
        std::printf(
            "%-9s %5s | %6.1f %6.1f %6.1f %6.1f | %6.1f %6.1f %6.1f "
            "%6.1f | %6.1f %s\n",
            wl.name.c_str(), wl.highMiss ? "high" : "low", pct(rd_hit),
            pct(f(AccessOutcome::ReadMissInvalid)),
            pct(f(AccessOutcome::ReadMissClean)),
            pct(f(AccessOutcome::ReadMissDirty)), pct(wr_hit),
            pct(f(AccessOutcome::WriteMissInvalid)),
            pct(f(AccessOutcome::WriteMissClean)),
            pct(f(AccessOutcome::WriteMissDirty)), pct(r.missRatio),
            (wl.highMiss ? r.missRatio > 0.5 : r.missRatio < 0.3)
                ? ""
                : "<-- outside its paper group");
    }
    std::printf("\npaper: low group < 30%% miss, high group > 50%%; no "
                "workloads in between.\n");
    return 0;
}
