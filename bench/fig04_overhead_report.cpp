/**
 * @file
 * Figure 4A / §III-C5: TDRAM's hardware cost — the signal-count
 * table and the die-area estimate, computed from the overhead model
 * rather than hard-coded, so the derivation is auditable.
 */

#include <cstdio>

#include "tdram/overhead.hh"

int
main()
{
    using namespace tsim;

    const InterfaceSignals hbm = hbm3Signals();
    const InterfaceSignals td = tdramSignals();

    std::printf("Figure 4A: interface signal counts\n");
    std::printf("%-22s %10s %10s\n", "", "HBM3", "TDRAM");
    std::printf("%-22s %10u %10u\n", "channels", hbm.channels,
                td.channels);
    std::printf("%-22s %10u %10u\n", "DQ / channel", hbm.dqPerChannel,
                td.dqPerChannel);
    std::printf("%-22s %10u %10u\n", "CA / channel", hbm.caPerChannel,
                td.caPerChannel);
    std::printf("%-22s %10u %10u\n", "HM / channel", hbm.hmPerChannel,
                td.hmPerChannel);
    std::printf("%-22s %10u %10u\n", "aux / channel",
                hbm.auxPerChannel, td.auxPerChannel);
    std::printf("%-22s %10u %10u\n", "global", hbm.globalSignals,
                td.globalSignals);
    std::printf("%-22s %10u %10u\n", "total", hbm.total(), td.total());
    std::printf("\nextra signals: %u (paper: 192; fits the 320 spare "
                "bump sites)\n",
                tdramExtraSignals());
    std::printf("signal increase: %.1f%% (paper: 9.7%%)\n",
                tdramSignalIncrease() * 100.0);

    const AreaModel area;
    std::printf("\nSec III-C5: die-area estimate\n");
    std::printf("  tag-mat overhead        %5.1f%%\n",
                area.tagMatOverhead * 100.0);
    std::printf("  x even-bank fraction    %5.1f%%\n",
                area.evenBankFraction * 100.0);
    std::printf("  x bank area fraction    %5.1f%%\n",
                area.bankAreaFraction * 100.0);
    std::printf("  + routing               %5.2f%%\n",
                area.routingOverhead * 100.0);
    std::printf("  = die-area impact       %5.2f%%  (paper: 8.24%%)\n",
                area.dieAreaImpact() * 100.0);

    std::printf("\ntag storage: 64 GiB cache -> %llu GiB tags; 1 PB "
                "space -> %u tag bits\n",
                TagStorage::tagBytes(64ULL << 30) >> 30,
                TagStorage::tagBits(64ULL << 30, 1ULL << 50));
    return 0;
}
