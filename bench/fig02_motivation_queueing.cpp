/**
 * @file
 * Figure 2 (motivation): average queueing delay of DRAM reads in
 * existing DRAM caches (CascadeLake, Alloy, BEAR) compared to a
 * system with main memory only. Every demand in these designs —
 * including writes — funnels a read through the DRAM-cache read
 * buffer, inflating the delay beyond the no-cache system's.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tsim;
    const bench::Options opts = bench::parseArgs(argc, argv);
    bench::RunCache runs(opts);
    runs.warm({Design::NoCache, Design::CascadeLake, Design::Alloy, Design::Bear},
              bench::workloadSet(opts));

    const Design designs[] = {Design::CascadeLake, Design::Alloy,
                              Design::Bear};

    std::printf("Figure 2: avg queueing delay of DRAM reads (ns)\n");
    std::printf("%-9s %10s %10s %10s %10s\n", "workload", "NoCache",
                "CascLake", "Alloy", "BEAR");
    std::vector<double> nc, cl, al, be;
    for (const auto &wl : bench::workloadSet(opts)) {
        const auto &rn = runs.get(Design::NoCache, wl);
        const double no_cache = rn.mmReadQueueDelayNs;
        double v[3];
        for (int i = 0; i < 3; ++i)
            v[i] = runs.get(designs[i], wl).readQueueDelayNs;
        std::printf("%-9s %10.2f %10.2f %10.2f %10.2f\n",
                    wl.name.c_str(), no_cache, v[0], v[1], v[2]);
        nc.push_back(no_cache);
        cl.push_back(v[0]);
        al.push_back(v[1]);
        be.push_back(v[2]);
    }
    std::printf("%-9s %10.2f %10.2f %10.2f %10.2f   (geomean)\n", "",
                geomean(nc), geomean(cl), geomean(al), geomean(be));
    std::printf("\npaper: DRAM-cache bars are higher than the "
                "main-memory-only system's.\n");
    return 0;
}
