/**
 * @file
 * Trace-replay microbenchmark: capture a synthetic run's demand
 * stream, pack it into a .tdtz container, and measure the full
 * record-once/replay-many pipeline —
 *
 *  - container compression ratio vs the 24 B/record flat encoding
 *    (and vs the 40 B/record .tdt event trace it came from),
 *  - encode and decode throughput (Mrec/s, stored MB/s),
 *  - replay front-end req/s vs the synthetic front end on the same
 *    controller config,
 *  - a checksum over the decoded record stream that must match the
 *    source records (checksum_match — CI gates on it).
 *
 * Emits BENCH_replay.json (override with --out FILE); the thresholds
 * are enforced by tests/check_replay_bench.sh in CI.
 *
 * Usage: micro_replay [--ops N] [--warmup N] [--workload NAME]
 *                     [--seed N] [--reps N] [--out FILE]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "system/system.hh"
#include "trace/tdtz.hh"
#include "trace/trace.hh"

namespace
{

using namespace tsim;

std::uint64_t
fnv(std::uint64_t h, std::uint64_t v)
{
    return (h ^ v) * 1099511628211ULL;
}

/** Order-sensitive checksum of a record stream. */
std::uint64_t
streamChecksum(const std::vector<ReplayRecord> &recs)
{
    std::uint64_t h = 14695981039346656037ULL;
    for (const ReplayRecord &r : recs) {
        h = fnv(h, r.addr);
        h = fnv(h, r.size);
        h = fnv(h, r.isWrite);
        h = fnv(h, r.delta);
    }
    return h;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct BenchCfg
{
    std::uint64_t opsPerCore = 30000;
    std::uint64_t warmupOpsPerCore = 60000;
    std::uint64_t seed = 1;
    std::string workload = "is.C";
};

SystemConfig
baseCfg(const BenchCfg &bc)
{
    SystemConfig cfg;
    cfg.cores.opsPerCore = bc.opsPerCore;
    cfg.warmupOpsPerCore = bc.warmupOpsPerCore;
    cfg.seed = bc.seed;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchCfg bc;
    unsigned reps = 3;
    std::string out = "BENCH_replay.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
            bc.opsPerCore = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--warmup") == 0 &&
                   i + 1 < argc) {
            bc.warmupOpsPerCore =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--workload") == 0 &&
                   i + 1 < argc) {
            bc.workload = argv[++i];
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            bc.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--reps") == 0 &&
                   i + 1 < argc) {
            reps = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--ops N] [--warmup N] "
                         "[--workload NAME] [--seed N] [--reps N] "
                         "[--out FILE]\n",
                         argv[0]);
            return 1;
        }
    }
    if (bc.opsPerCore == 0 || reps == 0) {
        std::fprintf(stderr, "--ops and --reps must be > 0\n");
        return 1;
    }

    const std::string tdt_path = "micro_replay_cap.tdt";
    const std::string tdtz_path = "micro_replay_cap.tdtz";

    // --- Capture: synthetic run with the event tracer on. This is
    // also the synthetic-front-end throughput baseline.
    SystemConfig cap_cfg = baseCfg(bc);
    cap_cfg.tracePath = tdt_path;
    const SimReport synth =
        runOne(cap_cfg, findWorkload(bc.workload));
    const std::uint64_t demands =
        synth.demandReads + synth.demandWrites;
    const double synth_req_per_sec =
        static_cast<double>(demands) / synth.hostPerf.hostSeconds;

    // --- Project the demand stream out of the event trace.
    TraceLoadResult res = loadTrace(tdt_path);
    if (!res.ok) {
        std::fprintf(stderr, "FAIL: %s\n", res.error.c_str());
        return 1;
    }
    const std::vector<ReplayRecord> recs = projectDemands(res.trace);
    if (recs.size() != demands) {
        std::fprintf(stderr,
                     "FAIL: projected %zu records, expected %llu\n",
                     recs.size(), (unsigned long long)demands);
        return 1;
    }
    const std::uint64_t source_checksum = streamChecksum(recs);

    // --- Encode (best of reps).
    double encode_secs = 1e30;
    for (unsigned i = 0; i < reps; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        TdtzWriter w(tdtz_path);
        for (const ReplayRecord &r : recs)
            w.append(r);
        w.finish();
        encode_secs = std::min(encode_secs, secondsSince(t0));
    }

    const auto tdt_bytes = std::filesystem::file_size(tdt_path);
    const auto tdtz_bytes = std::filesystem::file_size(tdtz_path);
    const std::uint64_t flat_bytes =
        recs.size() * tdtzFlatRecordBytes;
    const double ratio = static_cast<double>(flat_bytes) /
                         static_cast<double>(tdtz_bytes);

    // --- Decode (best of reps), checksum the decoded stream.
    double decode_secs = 1e30;
    std::uint64_t decoded_checksum = 0;
    for (unsigned i = 0; i < reps; ++i) {
        std::vector<ReplayRecord> back;
        back.reserve(recs.size());
        const auto t0 = std::chrono::steady_clock::now();
        TdtzReader r;
        if (!r.open(tdtz_path)) {
            std::fprintf(stderr, "FAIL: %s\n", r.error().c_str());
            return 1;
        }
        ReplayRecord rec;
        while (r.next(rec))
            back.push_back(rec);
        const double secs = secondsSince(t0);
        if (!r.ok()) {
            std::fprintf(stderr, "FAIL: %s\n", r.error().c_str());
            return 1;
        }
        decode_secs = std::min(decode_secs, secs);
        const std::uint64_t sum = streamChecksum(back);
        if (i > 0 && sum != decoded_checksum) {
            std::fprintf(stderr,
                         "FAIL: decode is not deterministic\n");
            return 1;
        }
        decoded_checksum = sum;
    }
    const bool checksum_match = decoded_checksum == source_checksum;
    if (!checksum_match)
        std::fprintf(stderr,
                     "FAIL: decoded stream checksum mismatch\n");

    // --- Replay the container through the same system shape.
    SystemConfig rep_cfg = baseCfg(bc);
    rep_cfg.replay.path = tdtz_path;
    const SimReport rep = runOne(rep_cfg, findWorkload(bc.workload));
    if (rep.demandReads + rep.demandWrites != recs.size()) {
        std::fprintf(stderr,
                     "FAIL: replay issued %llu demands, expected "
                     "%zu\n",
                     (unsigned long long)(rep.demandReads +
                                          rep.demandWrites),
                     recs.size());
        return 1;
    }
    const double replay_req_per_sec =
        static_cast<double>(recs.size()) /
        rep.hostPerf.hostSeconds;

    const double nrec = static_cast<double>(recs.size());
    const double decode_mrec = nrec / decode_secs / 1e6;
    const double decode_mb =
        static_cast<double>(tdtz_bytes) / decode_secs / 1e6;
    const double encode_mrec = nrec / encode_secs / 1e6;

    std::printf("%zu records: .tdt %llu B, .tdtz %llu B, flat %llu B "
                "(ratio %.2fx, codec %s)\n",
                recs.size(), (unsigned long long)tdt_bytes,
                (unsigned long long)tdtz_bytes,
                (unsigned long long)flat_bytes, ratio,
                tdtzZstdAvailable() ? "zstd" : "varint");
    std::printf("encode %.2f Mrec/s, decode %.2f Mrec/s "
                "(%.1f MB/s stored), checksum %s\n",
                encode_mrec, decode_mrec, decode_mb,
                checksum_match ? "match" : "MISMATCH");
    std::printf("frontend req/s: synthetic %.0f, replay %.0f "
                "(%.2fx)\n",
                synth_req_per_sec, replay_req_per_sec,
                replay_req_per_sec / synth_req_per_sec);

    if (std::FILE *f = std::fopen(out.c_str(), "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"micro_replay\",\n"
            "  \"workload\": \"%s\",\n"
            "  \"ops_per_core\": %llu,\n"
            "  \"seed\": %llu,\n"
            "  \"records\": %zu,\n"
            "  \"codec\": \"%s\",\n"
            "  \"tdt_bytes\": %llu,\n"
            "  \"tdtz_bytes\": %llu,\n"
            "  \"flat_bytes\": %llu,\n"
            "  \"compression_ratio\": %.3f,\n"
            "  \"encode_mrec_per_sec\": %.3f,\n"
            "  \"decode_mrec_per_sec\": %.3f,\n"
            "  \"decode_mb_per_sec\": %.3f,\n"
            "  \"synthetic_req_per_sec\": %.0f,\n"
            "  \"replay_req_per_sec\": %.0f,\n"
            "  \"replay_vs_synthetic\": %.3f,\n"
            "  \"checksum_match\": %s\n"
            "}\n",
            bc.workload.c_str(), (unsigned long long)bc.opsPerCore,
            (unsigned long long)bc.seed, recs.size(),
            tdtzZstdAvailable() ? "zstd" : "varint",
            (unsigned long long)tdt_bytes,
            (unsigned long long)tdtz_bytes,
            (unsigned long long)flat_bytes, ratio, encode_mrec,
            decode_mrec, decode_mb, synth_req_per_sec,
            replay_req_per_sec,
            replay_req_per_sec / synth_req_per_sec,
            checksum_match ? "true" : "false");
        std::fclose(f);
    } else {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    return checksum_match ? 0 : 1;
}
