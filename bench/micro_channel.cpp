/**
 * @file
 * Channel-scheduler microbenchmark: requests/sec and allocations per
 * request for the production incremental DramChannel versus the
 * frozen pre-rewrite scheduler (tests/legacy_channel.*), driven with
 * the embedded seed workload mix across all device kinds —
 * conventional (close and open page), NDC, and TDRAM with probing.
 *
 * Both schedulers replay the identical closed-loop request stream;
 * the run FAILS (nonzero exit) unless their completion traces and
 * full stats dumps produce the same checksum, so this binary doubles
 * as the old-vs-new cross-check that ctest's perf-smoke label runs.
 *
 * The production scheduler additionally runs with a live TraceBuffer
 * attached (memory-only ring), so the JSON reports both the
 * tracing-off cost of the compiled-in hooks (null-pointer test only)
 * and the tracing-on recording overhead.
 *
 * Emits BENCH_channel.json (override with --out FILE).
 *
 * Usage: micro_channel [--requests N] [--seed N] [--reps N]
 *                      [--min-time SECS] [--out FILE]
 */

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "dram/channel.hh"
#include "legacy_channel.hh"
#include "sim/rng.hh"
#include "trace/trace.hh"

// ---------------------------------------------------------------------
// Global allocation counter. Counts every operator new in the
// process; the harness reads deltas around the measured region.
// ---------------------------------------------------------------------

namespace
{
std::atomic<std::uint64_t> g_allocCount{0};
} // namespace

void *
operator new(std::size_t size)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::aligned_alloc(static_cast<std::size_t>(align),
                                     size))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace tsim;

constexpr std::uint64_t kCap = 1ULL << 24;

std::uint64_t
fnv(std::uint64_t h, std::uint64_t v)
{
    return (h ^ v) * 1099511628211ULL;
}

/** Deterministic per-line tag state, independent of lookup order. */
TagResult
tagsFor(Addr a, std::uint32_t seed)
{
    Rng r(seed ^ (static_cast<std::uint32_t>(a / lineBytes) *
                  2654435761u));
    TagResult t;
    t.valid = r.chance(0.9);
    t.hit = t.valid && r.chance(0.5);
    t.dirty = t.valid && r.chance(0.4);
    t.victimAddr = t.hit ? lineAlign(a) : (lineAlign(a) ^ (kCap / 2));
    return t;
}

/** One device kind of the seed workload mix. */
struct KindCfg
{
    const char *name;
    bool inDramTags;
    bool hmAtColumn;
    bool probe;
    PagePolicy page;
};

constexpr KindCfg kKinds[] = {
    {"conventional_close", false, false, false, PagePolicy::Close},
    {"conventional_open", false, false, false, PagePolicy::Open},
    {"ndc", true, true, false, PagePolicy::Close},
    {"tdram", true, false, true, PagePolicy::Close},
};

/**
 * Drive one channel closed-loop through @p total requests of the
 * seed mix; @return a checksum over every completion callback plus
 * the final stats dump (identical schedulers => identical value).
 */
template <typename ChanT, typename ReqT>
std::uint64_t
drive(const KindCfg &k, std::uint64_t total, std::uint32_t seed,
      TraceBuffer *tb = nullptr)
{
    EventQueue eq;
    AddressMap map(kCap, 1, 16, 1024);
    ChannelConfig cfg;
    cfg.refreshEnabled = true;
    cfg.pagePolicy = k.page;
    cfg.inDramTags = k.inDramTags;
    cfg.conditionalColumn = k.inDramTags;
    cfg.hmAtColumn = k.hmAtColumn;
    cfg.enableProbe = k.probe;
    cfg.hasFlushBuffer = k.inDramTags;
    cfg.opportunisticDrain = !k.hmAtColumn;
    ChanT chan(eq, "ch", cfg, map);
    if constexpr (std::is_same_v<ChanT, DramChannel>)
        chan.traceBuf = tb;
    else
        (void)tb;  // the frozen legacy scheduler predates tracing

    std::uint64_t checksum = 14695981039346656037ULL;
    chan.peekTags = [seed](Addr a) { return tagsFor(a, seed); };
    chan.onFlushArrive = [&](Addr a, Tick t) {
        checksum = fnv(checksum, a ^ t);
    };

    Rng rng(seed);
    std::uint64_t submitted = 0;
    std::function<void()> pump = [&] {
        while (submitted < total) {
            const bool is_write = rng.chance(0.35);
            if (is_write ? !chan.canAcceptWrite()
                         : !chan.canAcceptRead()) {
                break;
            }
            ReqT r;
            r.id = submitted;
            r.addr = rng.range(4096) * lineBytes;
            if (k.inDramTags) {
                r.op = is_write ? ChanOp::ActWr : ChanOp::ActRd;
                r.onTagResult = [&checksum, &chan, id = submitted](
                                    Tick t, const TagResult &tr) {
                    checksum = fnv(checksum,
                                   t * 16 + tr.hit * 8 + tr.valid * 4 +
                                       tr.dirty * 2 + tr.viaProbe);
                    // Mirror the TDRAM front-end: probe-miss-clean
                    // retires the queued read early.
                    if (tr.viaProbe && !tr.hit &&
                        !(tr.valid && tr.dirty)) {
                        chan.removeRead(id);
                    }
                };
            } else {
                r.op = is_write ? ChanOp::Write : ChanOp::Read;
            }
            r.onDataDone = [&checksum, &pump](Tick t) {
                checksum = fnv(checksum, t);
                pump();
            };
            ++submitted;
            chan.enqueue(std::move(r));
        }
    };
    pump();

    // NDC's victim buffer only drains when full; don't wait on it.
    const bool wait_flush = cfg.hasFlushBuffer && cfg.opportunisticDrain;
    Tick limit = nsToTicks(2000);
    while (submitted < total ||
           chan.readQSize() + chan.writeQSize() > 0 ||
           (wait_flush && chan.flushSize() > 0)) {
        eq.run(limit);
        pump();
        limit += nsToTicks(2000);
    }
    eq.run(limit + nsToTicks(3000));  // trailing completions/drains

    StatGroup g("ch");
    chan.regStats(g);
    std::ostringstream os;
    g.dump(os);
    for (char c : os.str())
        checksum = fnv(checksum, static_cast<unsigned char>(c));
    return checksum;
}

struct Measurement
{
    double reqPerSec = 0;
    double allocsPerReq = 0;
    std::uint64_t checksum = 0;
};

template <typename ChanT, typename ReqT>
Measurement
measure(const KindCfg &k, std::uint64_t requests, std::uint32_t seed,
        TraceBuffer *tb = nullptr)
{
    // Warm-up pass: populates event pools so the measured region
    // reflects steady state.
    drive<ChanT, ReqT>(k, requests / 8 + 1, seed, tb);

    const std::uint64_t allocs0 =
        g_allocCount.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t checksum =
        drive<ChanT, ReqT>(k, requests, seed, tb);
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t allocs1 =
        g_allocCount.load(std::memory_order_relaxed);

    Measurement m;
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    m.reqPerSec = static_cast<double>(requests) / secs;
    m.allocsPerReq = static_cast<double>(allocs1 - allocs0) /
                     static_cast<double>(requests);
    m.checksum = checksum;
    return m;
}

/**
 * Repeat until both @p reps runs and @p min_time measured seconds
 * are reached; keep the fastest (throughput noise is one-sided). A
 * checksum change between repetitions is host non-determinism and
 * aborts the benchmark.
 */
template <typename ChanT, typename ReqT>
Measurement
measureBest(const KindCfg &k, std::uint64_t requests,
            std::uint32_t seed, unsigned reps, double min_time,
            TraceBuffer *tb = nullptr)
{
    Measurement best;
    double spent = 0;
    for (unsigned i = 0; i < reps || spent < min_time; ++i) {
        const Measurement m =
            measure<ChanT, ReqT>(k, requests, seed, tb);
        spent += static_cast<double>(requests) / m.reqPerSec;
        if (i > 0 && m.checksum != best.checksum) {
            std::fprintf(stderr,
                         "FAIL: %s rep %u changed the checksum "
                         "(%llx vs %llx)\n",
                         k.name, i, (unsigned long long)m.checksum,
                         (unsigned long long)best.checksum);
            std::exit(1);
        }
        if (i == 0 || m.reqPerSec > best.reqPerSec)
            best = m;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t requests = 200000;
    std::uint32_t seed = 7;
    unsigned reps = 1;
    double min_time = 0;
    std::string out = "BENCH_channel.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
            requests = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            seed = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--reps") == 0 &&
                   i + 1 < argc) {
            reps = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--min-time") == 0 &&
                   i + 1 < argc) {
            min_time = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--requests N] [--seed N] "
                         "[--reps N] [--min-time SECS] [--out FILE]\n",
                         argv[0]);
            return 1;
        }
    }
    if (requests == 0 || reps == 0) {
        std::fprintf(stderr, "--requests and --reps must be > 0\n");
        return 1;
    }

    std::string kinds_json;
    double speedup_product = 1.0;
    unsigned nkinds = 0;
    bool mismatch = false;

    for (const auto &k : kKinds) {
        const std::uint64_t fallbacks0 =
            tsim::InlineFunction::heapFallbacks();
        const Measurement fast =
            measureBest<tsim::DramChannel, tsim::ChanReq>(
                k, requests, seed, reps, min_time);
        const std::uint64_t fast_fallbacks =
            tsim::InlineFunction::heapFallbacks() - fallbacks0;

        // Tracing-on pass: same scheduler with a live memory-only
        // ring attached, isolating the record() overhead.
        Measurement traced;
        {
            tsim::Tracer tracer("", 1, 4096);
            traced = measureBest<tsim::DramChannel, tsim::ChanReq>(
                k, requests, seed, reps, min_time, &tracer.buffer(0));
        }

        const Measurement legacy =
            measureBest<tsim::LegacyDramChannel, tsim::LegacyChanReq>(
                k, requests, seed, reps, min_time);

        if (fast.checksum != legacy.checksum) {
            std::fprintf(
                stderr,
                "FAIL: %s schedulers diverged (checksum %llx vs %llx)\n",
                k.name, (unsigned long long)fast.checksum,
                (unsigned long long)legacy.checksum);
            mismatch = true;
        }
        if (traced.checksum != fast.checksum) {
            std::fprintf(
                stderr,
                "FAIL: %s tracing perturbed the simulation "
                "(checksum %llx vs %llx)\n",
                k.name, (unsigned long long)traced.checksum,
                (unsigned long long)fast.checksum);
            mismatch = true;
        }

        const double speedup = fast.reqPerSec / legacy.reqPerSec;
        const double trace_overhead =
            1.0 - traced.reqPerSec / fast.reqPerSec;
        speedup_product *= speedup;
        ++nkinds;
        std::printf("%-20s fast %9.0f req/s  %.4f allocs/req  "
                    "| traced %9.0f req/s (%+.1f%%)  "
                    "| legacy %9.0f req/s  %.4f allocs/req  "
                    "| %.2fx  (%llu SBO fallbacks)\n",
                    k.name, fast.reqPerSec, fast.allocsPerReq,
                    traced.reqPerSec, -trace_overhead * 100,
                    legacy.reqPerSec, legacy.allocsPerReq, speedup,
                    (unsigned long long)fast_fallbacks);

        char buf[768];
        std::snprintf(
            buf, sizeof(buf),
            "%s    {\n"
            "      \"kind\": \"%s\",\n"
            "      \"fast\": {\"req_per_sec\": %.0f, "
            "\"allocs_per_req\": %.6f, \"sbo_heap_fallbacks\": %llu},\n"
            "      \"fast_traced\": {\"req_per_sec\": %.0f, "
            "\"allocs_per_req\": %.6f},\n"
            "      \"trace_overhead\": %.4f,\n"
            "      \"legacy\": {\"req_per_sec\": %.0f, "
            "\"allocs_per_req\": %.6f},\n"
            "      \"speedup\": %.3f,\n"
            "      \"checksum_match\": %s\n"
            "    }",
            kinds_json.empty() ? "" : ",\n", k.name, fast.reqPerSec,
            fast.allocsPerReq, (unsigned long long)fast_fallbacks,
            traced.reqPerSec, traced.allocsPerReq, trace_overhead,
            legacy.reqPerSec, legacy.allocsPerReq, speedup,
            fast.checksum == legacy.checksum &&
                    traced.checksum == fast.checksum
                ? "true"
                : "false");
        kinds_json += buf;
    }

    const double geomean =
        std::exp(std::log(speedup_product) / nkinds);
    std::printf("geomean speedup %.2fx\n", geomean);

    if (std::FILE *f = std::fopen(out.c_str(), "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"micro_channel\",\n"
                     "  \"requests\": %llu,\n"
                     "  \"seed\": %u,\n"
                     "  \"trace_compiled\": %s,\n"
                     "  \"kinds\": [\n%s\n  ],\n"
                     "  \"geomean_speedup\": %.3f\n"
                     "}\n",
                     (unsigned long long)requests, seed,
                     tsim::traceCompiledIn() ? "true" : "false",
                     kinds_json.c_str(), geomean);
        std::fclose(f);
    } else {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    return mismatch ? 1 : 0;
}
