/**
 * @file
 * Figure 10: average queueing delay in the DRAM-cache read buffer
 * per design. TDRAM's early tag probing retires miss-cleans from
 * the queue as soon as the HM result arrives, so its delay is the
 * shortest.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tsim;
    const bench::Options opts = bench::parseArgs(argc, argv);
    bench::RunCache runs(opts);
    runs.warm({Design::CascadeLake, Design::Alloy, Design::Bear, Design::Ndc, Design::Tdram},
              bench::workloadSet(opts));

    const Design designs[] = {Design::CascadeLake, Design::Alloy,
                              Design::Bear, Design::Ndc,
                              Design::Tdram};

    std::printf(
        "Figure 10: read-buffer queueing delay (ns), lower is "
        "better\n");
    std::printf("%-9s %10s %10s %10s %10s %10s\n", "workload",
                "CascLake", "Alloy", "BEAR", "NDC", "TDRAM");
    std::vector<double> delay[5];
    for (const auto &wl : bench::workloadSet(opts)) {
        std::printf("%-9s", wl.name.c_str());
        for (int i = 0; i < 5; ++i) {
            const double v =
                runs.get(designs[i], wl).readQueueDelayNs;
            delay[i].push_back(v + 1e-9);
            std::printf(" %10.2f", v);
        }
        std::printf("\n");
    }
    std::printf("%-9s", "(geomean)");
    for (auto &d : delay)
        std::printf(" %10.2f", geomean(d));
    std::printf("\n\npaper: TDRAM's queueing delay is shorter than "
                "every prior design's.\n");
    return 0;
}
