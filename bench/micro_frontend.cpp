/**
 * @file
 * Front-end microbenchmark: end-to-end retired-ops/sec and heap
 * allocations per op for the production zero-alloc controller/core
 * front end versus the frozen pre-rewrite front end
 * (tests/legacy_frontend.*), each driving the same production
 * DramChannel back-end with the same workload generator stream.
 *
 * Both stacks simulate the identical mini system (cores + L1s + LLC
 * + DRAM-cache controller + DDR5 main memory); the run FAILS
 * (nonzero exit) unless their full stats dumps and finish ticks
 * produce the same checksum, so this binary doubles as the
 * old-vs-new front-end cross-check that ctest's perf-smoke label
 * runs. The speedup and allocs-per-op gates on the emitted JSON are
 * enforced by CI (see .github/workflows/ci.yml).
 *
 * Emits BENCH_frontend.json (override with --out FILE).
 *
 * Usage: micro_frontend [--ops N] [--warmup N] [--cores N]
 *                       [--workload NAME] [--seed N] [--reps N]
 *                       [--min-time SECS] [--out FILE]
 */

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "dcache/dram_cache.hh"
#include "dram/main_memory.hh"
#include "dram/timing.hh"
#include "legacy_frontend.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"
#include "workload/core_engine.hh"
#include "workload/profiles.hh"

// ---------------------------------------------------------------------
// Global allocation counter. Counts every operator new in the
// process; the harness reads deltas around the measured region.
// ---------------------------------------------------------------------

namespace
{
std::atomic<std::uint64_t> g_allocCount{0};
} // namespace

void *
operator new(std::size_t size)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::aligned_alloc(static_cast<std::size_t>(align),
                                     size))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace tsim;

std::uint64_t
fnv(std::uint64_t h, std::uint64_t v)
{
    return (h ^ v) * 1099511628211ULL;
}

std::uint64_t
pow2Ceil(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

/**
 * Benchmark-wide system shape: small and front-end bound. bt.C is
 * the low-miss-ratio representative — most ops are served by the
 * SRAM hierarchy and the controller fast path, which is exactly the
 * code the zero-alloc rewrite targets; high-miss workloads shift the
 * host time into the (shared, unchanged) channel back-end and
 * measure that instead.
 */
struct BenchCfg
{
    std::uint64_t opsPerCore = 30000;
    std::uint64_t warmupOpsPerCore = 60000;
    unsigned cores = 4;
    std::uint64_t seed = 1;
    std::string workload = "bt.C";

    std::uint64_t dcacheCapacity = 4ULL << 20;
    unsigned dcacheChannels = 2;
    unsigned dcacheBanks = 8;
    unsigned mmChannels = 1;
};

/** The designs the frozen front end implements. */
struct DesignCase
{
    const char *name;
    Design design;
};

constexpr DesignCase kDesigns[] = {
    {"cascadelake", Design::CascadeLake},
    {"ndc", Design::Ndc},
    {"tdram", Design::Tdram},
};

/**
 * Frozen-front-end twin of src/dcache/factory.cc for the designs
 * above. Controller names match the production factory so both
 * stacks register byte-identical stat names.
 */
std::unique_ptr<legacyfe::DramCacheCtrl>
makeLegacyCtrl(EventQueue &eq, Design design,
               const DramCacheConfig &cfg, legacyfe::MainMemory &mm)
{
    DramCacheConfig c = cfg;
    c.timing = hbm3CacheTimings();
    const std::string n = std::string("dcache.") + designName(design);
    switch (design) {
      case Design::CascadeLake:
        return std::make_unique<legacyfe::CascadeLakeCtrl>(eq, n, c, mm);
      case Design::Ndc:
        return std::make_unique<legacyfe::NdcCtrl>(eq, n, c, mm);
      case Design::Tdram:
        return std::make_unique<legacyfe::TdramCtrl>(eq, n, c, mm,
                                                     true);
      default:
        panic("design not in the frozen front-end snapshot");
    }
}

/** Production front end. */
struct FastStack
{
    using MainMemoryT = MainMemory;
    using CtrlT = DramCacheCtrl;
    using EngineT = CoreEngine;

    static std::unique_ptr<CtrlT>
    makeCtrl(EventQueue &eq, Design d, const DramCacheConfig &cfg,
             MainMemoryT &mm)
    {
        return makeDramCache(eq, d, cfg, mm);
    }
};

/** Frozen pre-rewrite front end (tests/legacy_frontend.*). */
struct LegacyStack
{
    using MainMemoryT = legacyfe::MainMemory;
    using CtrlT = legacyfe::DramCacheCtrl;
    using EngineT = legacyfe::CoreEngine;

    static std::unique_ptr<CtrlT>
    makeCtrl(EventQueue &eq, Design d, const DramCacheConfig &cfg,
             MainMemoryT &mm)
    {
        return makeLegacyCtrl(eq, d, cfg, mm);
    }
};

struct Measurement
{
    double opsPerSec = 0;
    double allocsPerOp = 0;
    std::uint64_t checksum = 0;
};

/**
 * Build one mini system on @p Stack, warm it up, run it to
 * completion, and measure the timed region (start() through the last
 * in-flight demand). The checksum folds the finish tick plus the
 * full stats dump of every component, so any behavioural divergence
 * between the two front ends changes it.
 */
template <typename Stack>
Measurement
drive(const DesignCase &dc, const BenchCfg &bc)
{
    const WorkloadProfile &wl = findWorkload(bc.workload);

    EventQueue eq;

    MainMemoryConfig mm_cfg;
    mm_cfg.channels = bc.mmChannels;
    mm_cfg.capacityBytes = std::max<std::uint64_t>(
        pow2Ceil(physicalSpaceBytes(wl, bc.dcacheCapacity)), 1 << 26);
    typename Stack::MainMemoryT mm(eq, "mm", mm_cfg);

    DramCacheConfig dc_cfg;
    dc_cfg.capacityBytes = bc.dcacheCapacity;
    dc_cfg.channels = bc.dcacheChannels;
    dc_cfg.banks = bc.dcacheBanks;
    std::unique_ptr<typename Stack::CtrlT> ctrl =
        Stack::makeCtrl(eq, dc.design, dc_cfg, mm);

    CoreConfig core_cfg;
    core_cfg.cores = bc.cores;
    core_cfg.opsPerCore = bc.opsPerCore;
    std::vector<std::unique_ptr<AddressGenerator>> gens;
    for (unsigned c = 0; c < bc.cores; ++c)
        gens.push_back(
            makeGenerator(wl, c, bc.cores, bc.dcacheCapacity));
    typename Stack::EngineT engine(eq, "engine", core_cfg,
                                   std::move(gens), *ctrl, bc.seed);

    engine.warmup(bc.warmupOpsPerCore);

    // Timed region: issue through drain, warmup and construction
    // excluded from both stacks alike.
    const std::uint64_t allocs0 =
        g_allocCount.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    engine.start();
    const Tick max_runtime = nsToTicks(2.0e9);
    while (!engine.done() || ctrl->inFlightDemands() > 0) {
        if (!eq.step()) {
            std::fprintf(stderr,
                         "FAIL: %s event queue drained before the "
                         "workload finished\n",
                         dc.name);
            std::exit(1);
        }
        if (eq.curTick() > max_runtime) {
            std::fprintf(stderr, "FAIL: %s run exceeded maxRuntime\n",
                         dc.name);
            std::exit(1);
        }
    }
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t allocs1 =
        g_allocCount.load(std::memory_order_relaxed);

    std::uint64_t checksum = 14695981039346656037ULL;
    checksum = fnv(checksum, engine.finishTick());
    StatGroup g("system");
    ctrl->regStats(g);
    mm.regStats(g);
    engine.regStats(g);
    std::ostringstream os;
    g.dump(os);
    for (char c : os.str())
        checksum = fnv(checksum, static_cast<unsigned char>(c));

    const double ops =
        static_cast<double>(bc.opsPerCore) * bc.cores;
    Measurement m;
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    m.opsPerSec = ops / secs;
    m.allocsPerOp = static_cast<double>(allocs1 - allocs0) / ops;
    m.checksum = checksum;
    return m;
}

/**
 * Repeat until both @p reps runs and @p min_time measured seconds
 * are reached; keep the fastest (throughput noise is one-sided). A
 * checksum change between repetitions is host non-determinism and
 * aborts the benchmark.
 */
template <typename Stack>
Measurement
measureBest(const DesignCase &dc, const BenchCfg &bc, unsigned reps,
            double min_time)
{
    Measurement best;
    double spent = 0;
    const double ops =
        static_cast<double>(bc.opsPerCore) * bc.cores;
    for (unsigned i = 0; i < reps || spent < min_time; ++i) {
        const Measurement m = drive<Stack>(dc, bc);
        spent += ops / m.opsPerSec;
        if (i > 0 && m.checksum != best.checksum) {
            std::fprintf(stderr,
                         "FAIL: %s rep %u changed the checksum "
                         "(%llx vs %llx)\n",
                         dc.name, i, (unsigned long long)m.checksum,
                         (unsigned long long)best.checksum);
            std::exit(1);
        }
        if (i == 0 || m.opsPerSec > best.opsPerSec)
            best = m;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchCfg bc;
    unsigned reps = 2;
    double min_time = 0;
    std::string out = "BENCH_frontend.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
            bc.opsPerCore = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--warmup") == 0 &&
                   i + 1 < argc) {
            bc.warmupOpsPerCore =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--cores") == 0 &&
                   i + 1 < argc) {
            bc.cores = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--workload") == 0 &&
                   i + 1 < argc) {
            bc.workload = argv[++i];
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            bc.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--reps") == 0 &&
                   i + 1 < argc) {
            reps = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--min-time") == 0 &&
                   i + 1 < argc) {
            min_time = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--ops N] [--warmup N] [--cores N] "
                "[--workload NAME] [--seed N] [--reps N] "
                "[--min-time SECS] [--out FILE]\n",
                argv[0]);
            return 1;
        }
    }
    if (bc.opsPerCore == 0 || bc.cores == 0 || reps == 0) {
        std::fprintf(stderr,
                     "--ops, --cores, and --reps must be > 0\n");
        return 1;
    }

    std::string kinds_json;
    double speedup_product = 1.0;
    unsigned nkinds = 0;
    bool mismatch = false;

    for (const auto &dc : kDesigns) {
        const std::uint64_t fallbacks0 =
            tsim::InlineFunction::heapFallbacks();
        const Measurement fast =
            measureBest<FastStack>(dc, bc, reps, min_time);
        const std::uint64_t fast_fallbacks =
            tsim::InlineFunction::heapFallbacks() - fallbacks0;
        const Measurement legacy =
            measureBest<LegacyStack>(dc, bc, reps, min_time);

        if (fast.checksum != legacy.checksum) {
            std::fprintf(stderr,
                         "FAIL: %s front ends diverged "
                         "(checksum %llx vs %llx)\n",
                         dc.name, (unsigned long long)fast.checksum,
                         (unsigned long long)legacy.checksum);
            mismatch = true;
        }

        const double speedup = fast.opsPerSec / legacy.opsPerSec;
        speedup_product *= speedup;
        ++nkinds;
        std::printf("%-12s fast %9.0f ops/s  %.4f allocs/op  "
                    "| legacy %9.0f ops/s  %.4f allocs/op  "
                    "| %.2fx  (%llu SBO fallbacks)\n",
                    dc.name, fast.opsPerSec, fast.allocsPerOp,
                    legacy.opsPerSec, legacy.allocsPerOp, speedup,
                    (unsigned long long)fast_fallbacks);

        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "%s    {\n"
            "      \"kind\": \"%s\",\n"
            "      \"fast\": {\"req_per_sec\": %.0f, "
            "\"allocs_per_req\": %.6f, \"sbo_heap_fallbacks\": %llu},\n"
            "      \"legacy\": {\"req_per_sec\": %.0f, "
            "\"allocs_per_req\": %.6f},\n"
            "      \"speedup\": %.3f,\n"
            "      \"checksum_match\": %s\n"
            "    }",
            kinds_json.empty() ? "" : ",\n", dc.name, fast.opsPerSec,
            fast.allocsPerOp, (unsigned long long)fast_fallbacks,
            legacy.opsPerSec, legacy.allocsPerOp, speedup,
            fast.checksum == legacy.checksum ? "true" : "false");
        kinds_json += buf;
    }

    const double geomean =
        std::exp(std::log(speedup_product) / nkinds);
    std::printf("geomean speedup %.2fx\n", geomean);

    if (std::FILE *f = std::fopen(out.c_str(), "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"micro_frontend\",\n"
                     "  \"workload\": \"%s\",\n"
                     "  \"ops_per_core\": %llu,\n"
                     "  \"cores\": %u,\n"
                     "  \"seed\": %llu,\n"
                     "  \"kinds\": [\n%s\n  ],\n"
                     "  \"geomean_speedup\": %.3f\n"
                     "}\n",
                     bc.workload.c_str(),
                     (unsigned long long)bc.opsPerCore, bc.cores,
                     (unsigned long long)bc.seed, kinds_json.c_str(),
                     geomean);
        std::fclose(f);
    } else {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    return mismatch ? 1 : 0;
}
