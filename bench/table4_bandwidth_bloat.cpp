/**
 * @file
 * Table IV: bandwidth bloat factor (total DRAM-cache bytes moved /
 * demand-serving bytes), geomean over the low- and high-miss-ratio
 * workload groups, plus TDRAM's reduction w.r.t. each design.
 *
 * Paper values: CascadeLake 1.35/2.75, Alloy 1.68/3.43,
 * BEAR 1.41/2.40, NDC = TDRAM 1.13/2.06. TicToc and Banshee postdate
 * the paper's table; their rows print without a paper reference.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tsim;
    const bench::Options opts = bench::parseArgs(argc, argv);
    bench::RunCache runs(opts);
    runs.warm({Design::CascadeLake, Design::Alloy, Design::Bear,
               Design::Ndc, Design::TicToc, Design::Banshee,
               Design::Tdram},
              bench::workloadSet(opts));

    constexpr int kDesigns = 7;
    constexpr int kTdram = kDesigns - 1;
    const Design designs[kDesigns] = {Design::CascadeLake,
                                      Design::Alloy,
                                      Design::Bear,
                                      Design::Ndc,
                                      Design::TicToc,
                                      Design::Banshee,
                                      Design::Tdram};
    const char *names[kDesigns] = {"Cascade Lake", "Alloy", "BEAR",
                                   "NDC", "TicToc", "Banshee",
                                   "TDRAM"};
    // 0 marks designs absent from the paper's Table IV.
    const double paper_low[kDesigns] = {1.35, 1.68, 1.41, 1.13,
                                        0.0,  0.0,  1.13};
    const double paper_high[kDesigns] = {2.75, 3.43, 2.40, 2.06,
                                         0.0,  0.0,  2.06};

    std::vector<double> low[kDesigns], high[kDesigns];
    for (const auto &wl : bench::workloadSet(opts)) {
        for (int i = 0; i < kDesigns; ++i) {
            const double b = runs.get(designs[i], wl).bloat;
            (wl.highMiss ? high[i] : low[i]).push_back(b);
        }
    }

    std::printf("Table IV: bandwidth bloat factor (geomean)\n");
    std::printf("%-14s %10s %10s %12s %12s\n", "design", "low-miss",
                "high-miss", "paper(low)", "paper(high)");
    double g_low[kDesigns], g_high[kDesigns];
    for (int i = 0; i < kDesigns; ++i) {
        g_low[i] = geomean(low[i]);
        g_high[i] = geomean(high[i]);
        if (paper_low[i] > 0) {
            std::printf("%-14s %10.2f %10.2f %12.2f %12.2f\n",
                        names[i], g_low[i], g_high[i], paper_low[i],
                        paper_high[i]);
        } else {
            std::printf("%-14s %10.2f %10.2f %12s %12s\n", names[i],
                        g_low[i], g_high[i], "-", "-");
        }
    }

    std::printf("\nTDRAM reductions:\n");
    std::printf("%-18s %10s %10s\n", "w.r.t.", "low-miss",
                "high-miss");
    for (int i = 0; i < kTdram; ++i) {
        std::printf("%-18s %9.1f%% %9.1f%%\n", names[i],
                    (1.0 - g_low[kTdram] / g_low[i]) * 100.0,
                    (1.0 - g_high[kTdram] / g_high[i]) * 100.0);
    }
    std::printf("\npaper reductions: CL 16.3/25.1%%, Alloy "
                "32.7/39.9%%, BEAR 14.2/19.9%%, NDC 0/0%%.\n");
    return 0;
}
