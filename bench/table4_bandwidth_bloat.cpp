/**
 * @file
 * Table IV: bandwidth bloat factor (total DRAM-cache bytes moved /
 * demand-serving bytes), geomean over the low- and high-miss-ratio
 * workload groups, plus TDRAM's reduction w.r.t. each design.
 *
 * Paper values: CascadeLake 1.35/2.75, Alloy 1.68/3.43,
 * BEAR 1.41/2.40, NDC = TDRAM 1.13/2.06.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tsim;
    const bench::Options opts = bench::parseArgs(argc, argv);
    bench::RunCache runs(opts);
    runs.warm({Design::CascadeLake, Design::Alloy, Design::Bear, Design::Ndc, Design::Tdram},
              bench::workloadSet(opts));

    const Design designs[] = {Design::CascadeLake, Design::Alloy,
                              Design::Bear, Design::Ndc,
                              Design::Tdram};
    const char *names[] = {"Cascade Lake", "Alloy", "BEAR", "NDC",
                           "TDRAM"};
    const double paper_low[] = {1.35, 1.68, 1.41, 1.13, 1.13};
    const double paper_high[] = {2.75, 3.43, 2.40, 2.06, 2.06};

    std::vector<double> low[5], high[5];
    for (const auto &wl : bench::workloadSet(opts)) {
        for (int i = 0; i < 5; ++i) {
            const double b = runs.get(designs[i], wl).bloat;
            (wl.highMiss ? high[i] : low[i]).push_back(b);
        }
    }

    std::printf("Table IV: bandwidth bloat factor (geomean)\n");
    std::printf("%-14s %10s %10s %12s %12s\n", "design", "low-miss",
                "high-miss", "paper(low)", "paper(high)");
    double g_low[5], g_high[5];
    for (int i = 0; i < 5; ++i) {
        g_low[i] = geomean(low[i]);
        g_high[i] = geomean(high[i]);
        std::printf("%-14s %10.2f %10.2f %12.2f %12.2f\n", names[i],
                    g_low[i], g_high[i], paper_low[i], paper_high[i]);
    }

    std::printf("\nTDRAM reductions:\n");
    std::printf("%-18s %10s %10s\n", "w.r.t.", "low-miss",
                "high-miss");
    for (int i = 0; i < 4; ++i) {
        std::printf("%-18s %9.1f%% %9.1f%%\n", names[i],
                    (1.0 - g_low[4] / g_low[i]) * 100.0,
                    (1.0 - g_high[4] / g_high[i]) * 100.0);
    }
    std::printf("\npaper reductions: CL 16.3/25.1%%, Alloy "
                "32.7/39.9%%, BEAR 14.2/19.9%%, NDC 0/0%%.\n");
    return 0;
}
