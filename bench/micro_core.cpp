/**
 * @file
 * google-benchmark microbenchmarks for the simulator's hot
 * primitives: event queue throughput, RNG, address decode, and
 * functional tag-array operations.
 */

#include <benchmark/benchmark.h>

#include "dram/channel.hh"
#include "mem/address_map.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "tdram/tag_array.hh"
#include "workload/profiles.hh"

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        tsim::EventQueue eq;
        long sink = 0;
        for (int i = 0; i < n; ++i)
            eq.schedule(static_cast<tsim::Tick>(i * 7 % 1000),
                        [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

void
BM_RngNext(benchmark::State &state)
{
    tsim::Rng rng(42);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_AddressDecode(benchmark::State &state)
{
    tsim::AddressMap map(1ULL << 30, 8, 16, 1024);
    tsim::Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(map.decode(a));
        a += 64;
    }
}
BENCHMARK(BM_AddressDecode);

void
BM_TagArrayPeekInstall(benchmark::State &state)
{
    tsim::TagArray tags(1ULL << 24, static_cast<unsigned>(state.range(0)));
    tsim::Rng rng(7);
    for (auto _ : state) {
        tsim::Addr a = rng.range(1ULL << 28) * 64;
        auto r = tags.peek(a);
        benchmark::DoNotOptimize(r);
        if (!r.hit)
            tags.install(a, false);
    }
}
BENCHMARK(BM_TagArrayPeekInstall)->Arg(1)->Arg(8);

void
BM_ChannelReadThroughput(benchmark::State &state)
{
    // End-to-end DRAM-channel simulation speed: how many modelled
    // close-page reads the engine retires per wall-clock second.
    const unsigned n = 256;
    for (auto _ : state) {
        tsim::EventQueue eq;
        tsim::AddressMap map(1ULL << 24, 1, 16, 1024);
        tsim::ChannelConfig cfg;
        cfg.refreshEnabled = false;
        tsim::DramChannel chan(eq, "ch", cfg, map);
        unsigned done = 0;
        unsigned issued = 0;
        std::function<void()> feed = [&] {
            while (issued < n && chan.canAcceptRead()) {
                tsim::ChanReq r;
                r.id = issued;
                r.addr = static_cast<tsim::Addr>(issued) * 64;
                r.op = tsim::ChanOp::Read;
                r.onDataDone = [&done, &feed](tsim::Tick) {
                    ++done;
                    feed();
                };
                ++issued;
                chan.enqueue(std::move(r));
            }
        };
        feed();
        eq.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ChannelReadThroughput);

void
BM_WorkloadGenerator(benchmark::State &state)
{
    const auto &wl = tsim::allWorkloads()[
        static_cast<std::size_t>(state.range(0))];
    auto gen = tsim::makeGenerator(wl, 0, 8, 16ULL << 20);
    tsim::Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen->next(rng));
    state.SetLabel(wl.name);
}
BENCHMARK(BM_WorkloadGenerator)->Arg(3)->Arg(4)->Arg(21)->Arg(25);

} // namespace

BENCHMARK_MAIN();
