/**
 * @file
 * §V-E: flush-buffer size sensitivity (8/16/32/64 entries). Paper:
 * the buffer essentially never fills (a handful of stalls at size 8
 * on lu), average occupancy ~5 and maximum ~12 across the study;
 * 16 entries suffice. Most unloading happens in read-miss-clean DQ
 * slots, with refresh windows covering write-heavy phases.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tsim;
    const bench::Options opts = bench::parseArgs(argc, argv);

    std::printf("SecV-E: TDRAM flush-buffer sensitivity\n");
    std::printf("%-9s %7s | %8s %8s %8s | %10s %10s %10s\n",
                "workload", "entries", "stalls", "maxOcc", "avgOcc",
                "drainMisC", "drainRefr", "drainForc");
    for (const auto &wl : bench::workloadSet(opts)) {
        if (!wl.highMiss && wl.storeFraction < 0.3)
            continue;  // buffer pressure needs dirty traffic
        for (unsigned entries : {8u, 16u, 32u, 64u}) {
            SystemConfig cfg = bench::baseConfig(opts, Design::Tdram);
            cfg.flushEntries = entries;
            System sys(cfg, wl);
            const SimReport r = sys.run();
            double mc = 0, rf = 0, fc = 0;
            for (unsigned c = 0; c < sys.dcache().numChannels();
                 ++c) {
                const auto &fb = sys.dcache().channel(c).flushBuffer();
                mc += fb.drainedOnMissClean.value();
                rf += fb.drainedOnRefresh.value();
                fc += fb.drainedForced.value();
            }
            std::printf(
                "%-9s %7u | %8llu %8.0f %8.2f | %10.0f %10.0f "
                "%10.0f\n",
                wl.name.c_str(), entries,
                (unsigned long long)r.flushStalls, r.flushMaxOcc,
                r.flushAvgOcc, mc, rf, fc);
        }
    }
    std::printf("\npaper: avg occupancy ~5, max ~12; 16 entries "
                "prevent all stalls; most unloading uses "
                "read-miss-clean slots.\n");
    return 0;
}
