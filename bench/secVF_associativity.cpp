/**
 * @file
 * §V-F: set-associative TDRAM. Paper: the HPC workloads have
 * negligible conflict misses, so direct-mapped and 2/4/8/16-way
 * caches achieve similar speedups (over main memory only).
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tsim;
    const bench::Options opts = bench::parseArgs(argc, argv);
    bench::RunCache runs(opts);
    runs.warm({Design::NoCache},
              bench::workloadSet(opts));

    std::printf("SecV-F: set-associative TDRAM, speedup vs "
                "no-DRAM-cache\n");
    std::printf("%-9s %9s %9s %9s %9s %9s | %8s\n", "workload",
                "1-way", "2-way", "4-way", "8-way", "16-way",
                "missR(1w)");
    const unsigned ways[] = {1, 2, 4, 8, 16};
    std::vector<double> per_way[5], base_rt;
    for (const auto &wl : bench::workloadSet(opts)) {
        const double base = static_cast<double>(
            runs.get(Design::NoCache, wl).runtimeTicks);
        base_rt.push_back(base);
        std::printf("%-9s", wl.name.c_str());
        double miss1 = 0;
        for (int i = 0; i < 5; ++i) {
            SystemConfig cfg = bench::baseConfig(opts, Design::Tdram);
            cfg.dcacheWays = ways[i];
            const SimReport r = runOne(cfg, wl);
            per_way[i].push_back(static_cast<double>(r.runtimeTicks));
            if (i == 0)
                miss1 = r.missRatio;
            std::printf(" %9.3f",
                        base / static_cast<double>(r.runtimeTicks));
        }
        std::printf(" | %8.3f\n", miss1);
    }
    std::printf("%-9s", "(geomean)");
    for (auto &w : per_way)
        std::printf(" %9.3f", bench::geomeanRatio(base_rt, w));
    std::printf("\n\npaper: all associativities perform similarly — "
                "conflict misses are negligible in these workloads.\n");
    return 0;
}
