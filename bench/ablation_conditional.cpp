/**
 * @file
 * Ablation: TDRAM's conditional data response (§III-C3). With the
 * column-gating disabled, read-miss-cleans stream (discarded) data
 * like NDC-without-its-optimization would — isolating how much of
 * TDRAM's bandwidth/energy saving comes from this one mechanism.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tsim;
    const bench::Options opts = bench::parseArgs(argc, argv);

    std::printf("Conditional-column ablation (TDRAM)\n");
    std::printf("%-9s | %8s %8s | %9s %9s | %9s\n", "workload",
                "bloat", "bloatNC", "energy_uJ", "energyNC",
                "rt_ratio");
    std::vector<double> e_on, e_off;
    for (const auto &wl : bench::workloadSet(opts)) {
        SystemConfig on_cfg = bench::baseConfig(opts, Design::Tdram);
        const SimReport on = runOne(on_cfg, wl);

        SystemConfig off_cfg = on_cfg;
        off_cfg.tdramConditionalColumn = false;
        const SimReport off = runOne(off_cfg, wl);

        e_on.push_back(on.energy.totalJ());
        e_off.push_back(off.energy.totalJ());
        std::printf("%-9s | %8.2f %8.2f | %9.1f %9.1f | %9.3f\n",
                    wl.name.c_str(), on.bloat, off.bloat,
                    on.energy.totalJ() * 1e6, off.energy.totalJ() * 1e6,
                    static_cast<double>(off.runtimeTicks) /
                        static_cast<double>(on.runtimeTicks));
    }
    std::printf("\nconditional response saves %.1f%% energy "
                "(geomean); the paper credits it for skipping the "
                "column op and transfer on every miss-clean.\n",
                (1.0 - bench::geomeanRatio(e_on, e_off)) * 100.0);
    return 0;
}
