/**
 * @file
 * Shard-engine scaling microbenchmark: full-system TDRAM runs on a
 * 4-channel configuration at 1, 2, and 4 shard threads, reporting
 * kernel events/sec and demand requests/sec per thread count plus
 * scaling efficiency against the single-thread sharded baseline.
 *
 * Every run folds its stats dump and runtime into a checksum; the
 * binary FAILS (nonzero exit) unless all thread counts produce the
 * same value — the determinism contract of DESIGN.md §12 is checked
 * on every perf-smoke run, not just in the test suite.
 *
 * Speedup numbers are only meaningful when the host actually has the
 * cores; the JSON records host_cores so a 1-core CI box reporting
 * ~1.0x scaling is read as "no parallel hardware", not a regression.
 *
 * Emits BENCH_shard.json (override with --out FILE).
 *
 * Usage: micro_shard [--ops N] [--reps N] [--min-time SECS]
 *                    [--out FILE]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "system/system.hh"

namespace
{

using namespace tsim;

std::uint64_t
fnv(std::uint64_t h, std::uint64_t v)
{
    return (h ^ v) * 1099511628211ULL;
}

SystemConfig
benchCfg(unsigned threads, std::uint64_t ops)
{
    SystemConfig cfg;
    cfg.design = Design::Tdram;
    cfg.dcacheCapacity = 8ULL << 20;
    cfg.dcacheChannels = 4;
    cfg.cores.cores = 4;
    cfg.cores.opsPerCore = ops;
    cfg.cores.llcBytes = 256 * 1024;
    cfg.warmupOpsPerCore = 10000;
    cfg.threads = threads;
    return cfg;
}

struct Measurement
{
    double eventsPerSec = 0;
    double reqPerSec = 0;
    double seconds = 0;
    std::uint64_t checksum = 0;
    Tick window = 0;
};

/** One full-system run; checksum covers stats dump + runtime. */
Measurement
runOnce(unsigned threads, std::uint64_t ops)
{
    System sys(benchCfg(threads, ops), findWorkload("is.C"));
    const SimReport r = sys.run();

    Measurement m;
    m.seconds = r.hostPerf.hostSeconds;
    m.eventsPerSec = r.hostPerf.eventsPerSec();
    m.reqPerSec =
        static_cast<double>(r.demandReads + r.demandWrites) /
        (m.seconds > 0 ? m.seconds : 1.0);
    m.window = sys.shardSim() ? sys.shardSim()->window() : 0;

    std::ostringstream os;
    sys.dumpStats(os);
    std::uint64_t h = 14695981039346656037ULL;
    for (char c : os.str())
        h = fnv(h, static_cast<unsigned char>(c));
    m.checksum = fnv(h, r.runtimeTicks);
    return m;
}

/**
 * Repeat until both @p reps runs and @p min_time measured seconds
 * are reached; keep the fastest run (throughput is noise-bounded
 * from above). All repetitions must agree on the checksum.
 */
Measurement
measure(unsigned threads, std::uint64_t ops, unsigned reps,
        double min_time, bool &rep_mismatch)
{
    runOnce(threads, ops / 4 + 1);  // warm-up: pools, page cache

    Measurement best;
    std::uint64_t expect = 0;
    double spent = 0;
    for (unsigned i = 0; i < reps || spent < min_time; ++i) {
        const Measurement m = runOnce(threads, ops);
        spent += m.seconds;
        if (expect == 0) {
            expect = m.checksum;
        } else if (m.checksum != expect) {
            std::fprintf(stderr,
                         "FAIL: threads=%u rep %u changed the "
                         "checksum (%llx vs %llx)\n",
                         threads, i, (unsigned long long)m.checksum,
                         (unsigned long long)expect);
            rep_mismatch = true;
        }
        if (m.eventsPerSec > best.eventsPerSec)
            best = m;
    }
    best.checksum = expect;
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t ops = 20000;
    unsigned reps = 1;
    double min_time = 0;
    std::string out = "BENCH_shard.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
            ops = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--reps") == 0 &&
                   i + 1 < argc) {
            reps = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--min-time") == 0 &&
                   i + 1 < argc) {
            min_time = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--ops N] [--reps N] "
                         "[--min-time SECS] [--out FILE]\n",
                         argv[0]);
            return 1;
        }
    }
    if (ops == 0 || reps == 0) {
        std::fprintf(stderr, "--ops and --reps must be > 0\n");
        return 1;
    }

    const unsigned host_cores = std::thread::hardware_concurrency();
    const unsigned thread_counts[] = {1, 2, 4};

    bool mismatch = false;
    std::vector<Measurement> ms;
    for (unsigned t : thread_counts)
        ms.push_back(measure(t, ops, reps, min_time, mismatch));

    for (std::size_t i = 1; i < ms.size(); ++i) {
        if (ms[i].checksum != ms[0].checksum) {
            std::fprintf(stderr,
                         "FAIL: threads=%u diverged from the serial "
                         "schedule (checksum %llx vs %llx)\n",
                         thread_counts[i],
                         (unsigned long long)ms[i].checksum,
                         (unsigned long long)ms[0].checksum);
            mismatch = true;
        }
    }

    // With one host core the worker threads time-slice instead of
    // running in parallel, so speedup/efficiency would measure the
    // scheduler, not the shard engine: report them as n/a (JSON null)
    // and let consumers gate on checksum_match only.
    const bool scaling_meaningful = host_cores > 1;
    std::string entries;
    for (std::size_t i = 0; i < ms.size(); ++i) {
        const double speedup =
            ms[0].eventsPerSec > 0
                ? ms[i].eventsPerSec / ms[0].eventsPerSec
                : 0.0;
        const double efficiency = speedup / thread_counts[i];
        if (scaling_meaningful) {
            std::printf("threads=%u  %12.0f events/s  %9.0f req/s  "
                        "%.2fx vs 1T  (%.0f%% efficiency)\n",
                        thread_counts[i], ms[i].eventsPerSec,
                        ms[i].reqPerSec, speedup, efficiency * 100);
        } else {
            std::printf("threads=%u  %12.0f events/s  %9.0f req/s  "
                        "(scaling n/a: 1 host core)\n",
                        thread_counts[i], ms[i].eventsPerSec,
                        ms[i].reqPerSec);
        }
        char scaling_fields[96];
        if (scaling_meaningful) {
            std::snprintf(scaling_fields, sizeof(scaling_fields),
                          "\"speedup_vs_1\": %.3f,\n"
                          "      \"efficiency\": %.3f",
                          speedup, efficiency);
        } else {
            std::snprintf(scaling_fields, sizeof(scaling_fields),
                          "\"speedup_vs_1\": null,\n"
                          "      \"efficiency\": null");
        }
        char buf[512];
        std::snprintf(buf, sizeof(buf),
                      "%s    {\n"
                      "      \"threads\": %u,\n"
                      "      \"events_per_sec\": %.0f,\n"
                      "      \"req_per_sec\": %.0f,\n"
                      "      %s\n"
                      "    }",
                      entries.empty() ? "" : ",\n", thread_counts[i],
                      ms[i].eventsPerSec, ms[i].reqPerSec,
                      scaling_fields);
        entries += buf;
    }
    std::printf("checksums %s, host has %u core(s)\n",
                mismatch ? "DIVERGED" : "match", host_cores);

    if (std::FILE *f = std::fopen(out.c_str(), "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"micro_shard\",\n"
                     "  \"ops_per_core\": %llu,\n"
                     "  \"reps\": %u,\n"
                     "  \"min_time_sec\": %.3f,\n"
                     "  \"host_cores\": %u,\n"
                     "  \"window_ticks\": %llu,\n"
                     "  \"scaling\": [\n%s\n  ],\n"
                     "  \"checksum_match\": %s\n"
                     "}\n",
                     (unsigned long long)ops, reps, min_time,
                     host_cores, (unsigned long long)ms[0].window,
                     entries.c_str(), mismatch ? "false" : "true");
        std::fclose(f);
    } else {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    return mismatch ? 1 : 0;
}
