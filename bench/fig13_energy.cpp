/**
 * @file
 * Figure 13: relative energy (power x runtime) normalized to
 * CascadeLake. Paper: TDRAM saves 21% vs CascadeLake and 12% vs
 * BEAR (geomean); Alloy is much worse than CascadeLake; NDC is the
 * same as TDRAM (both move the same bytes).
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tsim;
    const bench::Options opts = bench::parseArgs(argc, argv);
    bench::RunCache runs(opts);
    runs.warm({Design::CascadeLake, Design::Alloy, Design::Bear, Design::Ndc, Design::Tdram},
              bench::workloadSet(opts));

    const Design designs[] = {Design::Alloy, Design::Bear,
                              Design::Ndc, Design::Tdram};

    std::printf(
        "Figure 13: energy normalized to CascadeLake, lower is "
        "better\n");
    std::printf("%-9s %9s %9s %9s %9s\n", "workload", "Alloy", "BEAR",
                "NDC", "TDRAM");
    std::vector<double> cl_e;
    std::vector<double> e[4];
    for (const auto &wl : bench::workloadSet(opts)) {
        const double base =
            runs.get(Design::CascadeLake, wl).energy.totalJ();
        cl_e.push_back(base);
        std::printf("%-9s", wl.name.c_str());
        for (int i = 0; i < 4; ++i) {
            const double v = runs.get(designs[i], wl).energy.totalJ();
            e[i].push_back(v);
            std::printf(" %9.3f", v / base);
        }
        std::printf("\n");
    }
    std::printf("%-9s", "(geomean)");
    for (auto &v : e)
        std::printf(" %9.3f", bench::geomeanRatio(v, cl_e));
    std::printf("\n\nTDRAM energy saving (geomean): %.1f%% vs "
                "CascadeLake (paper 21%%), %.1f%% vs BEAR (paper "
                "12%%)\n",
                (1.0 - bench::geomeanRatio(e[3], cl_e)) * 100.0,
                (1.0 - bench::geomeanRatio(e[3], e[1])) * 100.0);
    return 0;
}
