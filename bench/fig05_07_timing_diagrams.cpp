/**
 * @file
 * Figures 5-7: TDRAM's transaction timing diagrams, regenerated from
 * the channel model itself rather than drawn. Each scenario drives
 * one (or a pipeline of) commands through an idle TDRAM channel and
 * prints the observable events with their tick offsets, which should
 * match the paper's annotated waveforms:
 *
 *   Fig 5 (read):  ActRd@0, HM result @15 ns, data burst ends @32 ns
 *                  (identical for read-hit and read-miss-dirty;
 *                  read-miss-clean moves no data).
 *   Fig 6 (write): ActWr@0, write data ends @9 ns, HM @15 ns,
 *                  (miss-dirty: victim enters the flush buffer after
 *                  the internal read, ~@14 ns).
 *   Fig 7 (probe): with the data bus saturated by MAIN commands,
 *                  PROBE slots return results for queued reads long
 *                  before their MAIN slot could issue.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "dram/channel.hh"

namespace
{

using namespace tsim;

struct Timeline
{
    std::vector<std::pair<Tick, std::string>> events;

    void
    mark(Tick t, std::string what)
    {
        events.emplace_back(t, std::move(what));
    }

    void
    print(const char *title)
    {
        std::printf("\n%s\n", title);
        std::sort(events.begin(), events.end());
        for (auto &[t, what] : events)
            std::printf("  %7.2f ns  %s\n", ticksToNs(t),
                        what.c_str());
        events.clear();
    }
};

struct Rig
{
    Rig() : map(1ULL << 24, 1, 16, 1024), chan(eq, "ch", cfg(), map)
    {
        chan.peekTags = [this](Addr a) { return tags[lineAlign(a)]; };
        chan.onFlushArrive = [this](Addr a, Tick t) {
            tl.mark(t, "flush-buffer entry 0x" + hex(a) +
                           " arrives at controller");
        };
    }

    static ChannelConfig
    cfg()
    {
        ChannelConfig c;
        c.inDramTags = true;
        c.conditionalColumn = true;
        c.enableProbe = true;
        c.hasFlushBuffer = true;
        c.opportunisticDrain = true;
        c.refreshEnabled = false;
        return c;
    }

    static std::string
    hex(Addr a)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llx",
                      (unsigned long long)a);
        return buf;
    }

    void
    setTag(Addr a, bool hit, bool valid, bool dirty, Addr victim)
    {
        TagResult r;
        r.hit = hit;
        r.valid = valid;
        r.dirty = dirty;
        r.victimAddr = victim;
        tags[lineAlign(a)] = r;
    }

    void
    submit(Addr a, ChanOp op, const std::string &label)
    {
        ChanReq r;
        r.id = nextId++;
        r.addr = a;
        r.op = op;
        tl.mark(eq.curTick(), label + " enqueued");
        r.onTagResult = [this, label](Tick t, const TagResult &tr) {
            std::string what = label;
            what += tr.viaProbe ? ": PROBE result on HM bus ("
                                : ": HM result (";
            what += tr.hit ? "hit" : (tr.valid ? "miss" : "invalid");
            if (tr.valid && tr.dirty)
                what += ", dirty";
            what += ")";
            tl.mark(t, what);
        };
        r.onDataDone = [this, label](Tick t) {
            tl.mark(t, label + ": data burst complete on DQ");
        };
        chan.enqueue(std::move(r));
    }

    EventQueue eq;
    AddressMap map;
    DramChannel chan;
    std::map<Addr, TagResult> tags;
    Timeline tl;
    std::uint64_t nextId = 1;
};

} // namespace

int
main()
{
    using namespace tsim;
    std::printf("Figures 5-7: timing transactions regenerated from "
                "the channel model (Table III parameters)\n");

    {
        Rig rig;
        rig.setTag(0x0, true, true, false, 0x0);
        rig.submit(0x0, ChanOp::ActRd, "ActRd (read hit)");
        rig.eq.run();
        rig.tl.print("Fig 5a: read hit — HM precedes the data burst");
    }
    {
        Rig rig;
        rig.setTag(0x40, false, true, false, 0x111140);
        rig.submit(0x40, ChanOp::ActRd, "ActRd (read miss clean)");
        rig.eq.run();
        rig.tl.print("Fig 5b: read miss clean — conditional response "
                     "suppresses the transfer");
    }
    {
        Rig rig;
        rig.setTag(0x80, false, true, true, 0x111180);
        rig.submit(0x80, ChanOp::ActRd, "ActRd (read miss dirty)");
        rig.eq.run();
        rig.tl.print("Fig 5c: read miss dirty — victim streams with "
                     "hit timing");
    }
    {
        Rig rig;
        rig.setTag(0xc0, true, true, false, 0xc0);
        rig.submit(0xc0, ChanOp::ActWr, "ActWr (write hit)");
        rig.eq.run();
        rig.tl.print("Fig 6a: write hit — single command, no "
                     "turnaround");
    }
    {
        Rig rig;
        rig.setTag(0x100, false, true, true, 0x111100);
        rig.submit(0x100, ChanOp::ActWr, "ActWr (write miss dirty)");
        rig.eq.run();
        rig.tl.print("Fig 6b: write miss dirty — victim moves to the "
                     "flush buffer internally");
        std::printf("  (flush buffer now holds %u entries; drains "
                    "opportunistically)\n",
                    rig.chan.flushSize());
    }
    {
        Rig rig;
        // Saturate one bank with back-to-back reads so later queued
        // reads become probe targets (Fig 7's PROBE slots).
        for (unsigned n = 0; n < 4; ++n) {
            const Addr a = (0x200 + 16 * n) * lineBytes;
            rig.setTag(a, n % 2 == 0, true, false,
                       a ^ (1ULL << 20));
            rig.submit(a, ChanOp::ActRd,
                       "ActRd #" + std::to_string(n) +
                           (n % 2 == 0 ? " (hit)" : " (miss clean)"));
        }
        rig.eq.run();
        rig.tl.print("Fig 7: pipelined reads — probe results arrive "
                     "in otherwise-unused HM slots");
        std::printf("  probes issued: %.0f\n",
                    rig.chan.probesIssued.value());
    }
    return 0;
}
