/**
 * @file
 * Figure 3 (motivation): DRAM-cache bandwidth broken into useful and
 * unuseful data movement for CascadeLake, Alloy, and BEAR. Unuseful
 * = tag-read data the controller discards after the compare (read/
 * write miss-cleans; write-hits except under BEAR) plus the TAD
 * padding of 80 B bursts.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tsim;
    const bench::Options opts = bench::parseArgs(argc, argv);
    bench::RunCache runs(opts);
    runs.warm({Design::CascadeLake, Design::Alloy, Design::Bear, Design::Tdram},
              bench::workloadSet(opts));

    std::printf(
        "Figure 3: unuseful fraction of DRAM-cache traffic (%%)\n");
    std::printf("%-9s %10s %10s %10s %10s\n", "workload", "CascLake",
                "Alloy", "BEAR", "TDRAM");
    const Design designs[] = {Design::CascadeLake, Design::Alloy,
                              Design::Bear, Design::Tdram};
    std::vector<std::vector<double>> cols(4);
    for (const auto &wl : bench::workloadSet(opts)) {
        std::printf("%-9s", wl.name.c_str());
        for (int i = 0; i < 4; ++i) {
            const double u =
                runs.get(designs[i], wl).unusefulFrac * 100.0;
            cols[static_cast<size_t>(i)].push_back(u + 1e-9);
            std::printf(" %10.1f", u);
        }
        std::printf("\n");
    }
    std::printf("%-9s", "(geomean)");
    for (auto &c : cols)
        std::printf(" %10.1f", geomean(c));
    std::printf("\n\npaper: significant waste for ft/is/mg/ua; Alloy "
                "and BEAR's 80 B bursts add waste; TDRAM's conditional "
                "response eliminates it.\n");
    return 0;
}
