/**
 * @file
 * Figure 9: average tag-check latency per design (queue occupancy +
 * tag access + compare + result transfer, measured at the
 * controller). Paper: TDRAM is 2.6x / 2.65x / 2x / 1.82x faster
 * than CascadeLake / Alloy / BEAR / NDC.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tsim;
    const bench::Options opts = bench::parseArgs(argc, argv);
    bench::RunCache runs(opts);
    runs.warm({Design::CascadeLake, Design::Alloy, Design::Bear, Design::Ndc, Design::Tdram},
              bench::workloadSet(opts));

    const Design designs[] = {Design::CascadeLake, Design::Alloy,
                              Design::Bear, Design::Ndc,
                              Design::Tdram};

    std::printf("Figure 9: tag check latency (ns), lower is better\n");
    std::printf("%-9s %10s %10s %10s %10s %10s\n", "workload",
                "CascLake", "Alloy", "BEAR", "NDC", "TDRAM");
    std::vector<double> lat[5];
    for (const auto &wl : bench::workloadSet(opts)) {
        std::printf("%-9s", wl.name.c_str());
        for (int i = 0; i < 5; ++i) {
            const double v = runs.get(designs[i], wl).tagCheckNs;
            lat[i].push_back(v);
            std::printf(" %10.2f", v);
        }
        std::printf("\n");
    }
    std::printf("\nTDRAM speedup of tag check (geomean):\n");
    const char *names[] = {"CascadeLake", "Alloy", "BEAR", "NDC"};
    const double paper[] = {2.6, 2.65, 2.0, 1.82};
    for (int i = 0; i < 4; ++i) {
        std::printf("  vs %-12s %5.2fx   (paper: %.2fx)\n", names[i],
                    bench::geomeanRatio(lat[i], lat[4]), paper[i]);
    }
    return 0;
}
