/**
 * @file
 * trace_tool — offline CLI over .tdt event traces (DESIGN.md §10).
 *
 *   trace_tool summarize <trace.tdt> [--depth-series]
 *       Per-kind counts, per-bank command utilization, HM-bus
 *       occupancy, and flush-buffer statistics (--depth-series adds
 *       the push/drain depth time series).
 *   trace_tool diff <a.tdt> <b.tdt>
 *       Byte-compare two traces in emission order. Exit 0 when
 *       identical; exit 1 with the first divergent record (tick plus
 *       full decoded context from both sides) otherwise. The CI
 *       determinism gate runs this on serial-vs-parallel sweeps.
 *   trace_tool export <trace.tdt> [out.json]
 *       Chrome trace-event JSON (chrome://tracing, Perfetto), one
 *       swimlane per (channel, bank). Default output: stdout.
 *   trace_tool dump <trace.tdt> [--limit N]
 *       Human-readable record listing (debugging).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "trace/trace.hh"
#include "trace/trace_analysis.hh"

namespace
{

using namespace tsim;

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: trace_tool <command> [args]\n"
        "  summarize <trace.tdt> [--depth-series]\n"
        "  diff <a.tdt> <b.tdt>\n"
        "  export <trace.tdt> [out.json]\n"
        "  dump <trace.tdt> [--limit N]\n");
    std::exit(2);
}

/** Load or die with the loader's message (exit 2: usage/input error). */
TraceFile
loadOrDie(const std::string &path)
{
    TraceLoadResult res = loadTrace(path);
    if (!res.ok) {
        std::fprintf(stderr, "trace_tool: %s\n", res.error.c_str());
        std::exit(2);
    }
    return std::move(res.trace);
}

int
cmdSummarize(int argc, char **argv)
{
    if (argc < 3)
        usage();
    bool depth_series = false;
    for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--depth-series") == 0)
            depth_series = true;
        else
            usage();
    }
    const TraceFile t = loadOrDie(argv[2]);
    printTraceSummary(std::cout, summarizeTrace(t), t, depth_series);
    return 0;
}

int
cmdDiff(int argc, char **argv)
{
    if (argc != 4)
        usage();
    const TraceFile a = loadOrDie(argv[2]);
    const TraceFile b = loadOrDie(argv[3]);
    const TraceDiff d = diffTraces(a, b);
    std::printf("%s\n", d.message.c_str());
    return d.identical ? 0 : 1;
}

int
cmdExport(int argc, char **argv)
{
    if (argc < 3 || argc > 4)
        usage();
    const TraceFile t = loadOrDie(argv[2]);
    if (argc == 4) {
        std::ofstream out(argv[3]);
        if (!out) {
            std::fprintf(stderr, "trace_tool: cannot write '%s'\n",
                         argv[3]);
            return 2;
        }
        exportChromeTrace(out, t);
    } else {
        exportChromeTrace(std::cout, t);
    }
    return 0;
}

int
cmdDump(int argc, char **argv)
{
    if (argc < 3)
        usage();
    std::uint64_t limit = ~std::uint64_t{0};
    for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--limit") == 0 && i + 1 < argc)
            limit = std::strtoull(argv[++i], nullptr, 10);
        else
            usage();
    }
    const TraceFile t = loadOrDie(argv[2]);
    std::uint64_t n = 0;
    for (const TraceRecord &r : t.records) {
        if (n++ >= limit)
            break;
        std::printf("%s\n", formatTraceRecord(r).c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string cmd = argv[1];
    if (cmd == "summarize")
        return cmdSummarize(argc, argv);
    if (cmd == "diff")
        return cmdDiff(argc, argv);
    if (cmd == "export")
        return cmdExport(argc, argv);
    if (cmd == "dump")
        return cmdDump(argc, argv);
    usage();
}
