/**
 * @file
 * trace_tool — offline CLI over .tdt event traces (DESIGN.md §10).
 *
 *   trace_tool summarize <trace.tdt> [--depth-series]
 *       Per-kind counts, per-bank command utilization, HM-bus
 *       occupancy, and flush-buffer statistics (--depth-series adds
 *       the push/drain depth time series).
 *   trace_tool diff <a.tdt> <b.tdt>
 *       Byte-compare two traces in emission order. Exit 0 when
 *       identical; exit 1 with the first divergent record (tick plus
 *       full decoded context from both sides) otherwise. The CI
 *       determinism gate runs this on serial-vs-parallel sweeps.
 *   trace_tool export <trace.tdt> [out.json]
 *       Chrome trace-event JSON (chrome://tracing, Perfetto), one
 *       swimlane per (channel, bank). Default output: stdout.
 *   trace_tool dump <trace.tdt> [--limit N]
 *       Human-readable record listing (debugging).
 *   trace_tool check <trace.tdt> [--device D] [--page P] ...
 *       Offline protocol/invariant audit (DESIGN.md §11): replay the
 *       trace through the same rule engine the inline checker runs
 *       and report the first violations with per-channel context.
 *       Exit 0 when clean; exit 1 on any violation.
 *   trace_tool convert <in> <out.tdtz> [--codec zstd|none]
 *                      [--frame-records N]
 *       Build a compressed replay container (DESIGN.md §14). The
 *       input is either a .tdt event trace (its demand stream is
 *       projected) or a text request list (`R|W <addr> [<size>
 *       [<delta_ns>]]`, '#' comments).
 *   trace_tool info <file.tdtz>
 *       Decode-free container inspection: header, footer summary,
 *       and the frame index.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "check/offline.hh"
#include "trace/tdtz.hh"
#include "trace/trace.hh"
#include "trace/trace_analysis.hh"

namespace
{

using namespace tsim;

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: trace_tool <command> [args]\n"
        "  summarize <trace.tdt> [--depth-series]\n"
        "  diff <a.tdt> <b.tdt>\n"
        "  export <trace.tdt> [out.json]\n"
        "  dump <trace.tdt> [--limit N]\n"
        "  check <trace.tdt> [--device tdram|tdram-noprobe|ndc|cl|"
        "alloy|bear]\n"
        "        [--page open|close] [--channels N] [--mm-channels N]"
        "\n"
        "        [--banks N] [--flush-entries N] [--context N]\n"
        "  check --rules\n"
        "  convert <in.tdt|in.txt> <out.tdtz> [--codec zstd|none]\n"
        "          [--frame-records N]\n"
        "  info <file.tdtz>\n");
    std::exit(2);
}

/** Load or die with the loader's message (exit 2: usage/input error). */
TraceFile
loadOrDie(const std::string &path)
{
    TraceLoadResult res = loadTrace(path);
    if (!res.ok) {
        std::fprintf(stderr, "trace_tool: %s\n", res.error.c_str());
        std::exit(2);
    }
    return std::move(res.trace);
}

int
cmdSummarize(int argc, char **argv)
{
    if (argc < 3)
        usage();
    bool depth_series = false;
    for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--depth-series") == 0)
            depth_series = true;
        else
            usage();
    }
    const TraceFile t = loadOrDie(argv[2]);
    printTraceSummary(std::cout, summarizeTrace(t), t, depth_series);
    return 0;
}

int
cmdDiff(int argc, char **argv)
{
    if (argc != 4)
        usage();
    const TraceFile a = loadOrDie(argv[2]);
    const TraceFile b = loadOrDie(argv[3]);
    const TraceDiff d = diffTraces(a, b);
    std::printf("%s\n", d.message.c_str());
    return d.identical ? 0 : 1;
}

int
cmdExport(int argc, char **argv)
{
    if (argc < 3 || argc > 4)
        usage();
    const TraceFile t = loadOrDie(argv[2]);
    if (argc == 4) {
        std::ofstream out(argv[3]);
        if (!out) {
            std::fprintf(stderr, "trace_tool: cannot write '%s'\n",
                         argv[3]);
            return 2;
        }
        exportChromeTrace(out, t);
    } else {
        exportChromeTrace(std::cout, t);
    }
    return 0;
}

int
cmdDump(int argc, char **argv)
{
    if (argc < 3)
        usage();
    std::uint64_t limit = ~std::uint64_t{0};
    for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--limit") == 0 && i + 1 < argc)
            limit = std::strtoull(argv[++i], nullptr, 10);
        else
            usage();
    }
    const TraceFile t = loadOrDie(argv[2]);
    std::uint64_t n = 0;
    for (const TraceRecord &r : t.records) {
        if (n++ >= limit)
            break;
        std::printf("%s\n", formatTraceRecord(r).c_str());
    }
    return 0;
}

int
cmdCheck(int argc, char **argv)
{
    if (argc < 3)
        usage();
    if (std::strcmp(argv[2], "--rules") == 0) {
        for (const CheckRuleInfo &r : checkRules()) {
            std::printf("%-18s %-14s %s\n", r.id, r.timing,
                        r.summary);
        }
        return 0;
    }

    OfflineCheckOptions opts;
    unsigned context = 8;
    for (int i = 3; i < argc; ++i) {
        const std::string name = argv[i];
        if (i + 1 >= argc)
            usage();
        const char *value = argv[++i];
        const auto num = [value] {
            return static_cast<unsigned>(
                std::strtoul(value, nullptr, 10));
        };
        if (name == "--device") {
            opts.device = value;
        } else if (name == "--page") {
            if (std::strcmp(value, "open") == 0)
                opts.openPage = true;
            else if (std::strcmp(value, "close") == 0)
                opts.openPage = false;
            else
                usage();
        } else if (name == "--channels") {
            opts.channels = num();
        } else if (name == "--mm-channels") {
            opts.mmChannels = num();
        } else if (name == "--banks") {
            opts.banks = num();
        } else if (name == "--flush-entries") {
            opts.flushEntries = num();
        } else if (name == "--context") {
            context = num();
        } else {
            usage();
        }
    }

    const TraceFile t = loadOrDie(argv[2]);
    const CheckReport rep = checkTrace(t, opts);
    if (!rep.error.empty()) {
        std::fprintf(stderr, "trace_tool: %s\n", rep.error.c_str());
        return 2;
    }
    if (rep.ok) {
        std::printf("clean: %llu events, 0 violations (device=%s)\n",
                    static_cast<unsigned long long>(rep.events),
                    opts.device.c_str());
        return 0;
    }

    std::printf("%llu violation(s) in %llu events (device=%s)\n",
                static_cast<unsigned long long>(rep.violationCount),
                static_cast<unsigned long long>(rep.events),
                opts.device.c_str());
    // First violation with the preceding same-channel records: the
    // rule engine keyed the stored index to the record's position in
    // emission (seq) order, which is exactly t.records order.
    const CheckViolation &first = rep.violations.front();
    if (context > 0 && first.index < t.records.size()) {
        std::printf("context (channel %u, last %u records):\n",
                    first.channel, context);
        std::vector<const TraceRecord *> ctx;
        for (std::uint64_t i = 0; i <= first.index; ++i) {
            if (t.records[i].channel == first.channel)
                ctx.push_back(&t.records[i]);
        }
        const std::size_t begin =
            ctx.size() > context ? ctx.size() - context : 0;
        for (std::size_t i = begin; i < ctx.size(); ++i)
            std::printf("  %s\n", formatTraceRecord(*ctx[i]).c_str());
    }
    for (const CheckViolation &v : rep.violations) {
        std::printf("%s\n",
                    ProtocolChecker::formatViolation(v).c_str());
    }
    if (rep.violationCount > rep.violations.size()) {
        std::printf("... %llu more violation(s) not stored\n",
                    static_cast<unsigned long long>(
                        rep.violationCount - rep.violations.size()));
    }
    return 1;
}

/** True when the file starts with the .tdt event-trace magic. */
bool
isTdtFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::uint32_t magic = 0;
    const bool got = std::fread(&magic, sizeof(magic), 1, f) == 1;
    std::fclose(f);
    return got && magic == TraceFileHeader::magicValue;
}

int
cmdConvert(int argc, char **argv)
{
    if (argc < 4)
        usage();
    const std::string in = argv[2];
    const std::string out = argv[3];
    TdtzCodec codec = tdtzZstdAvailable() ? TdtzCodec::Zstd
                                          : TdtzCodec::Varint;
    std::uint32_t frame_records = 4096;
    for (int i = 4; i < argc; ++i) {
        if (std::strcmp(argv[i], "--codec") == 0 && i + 1 < argc) {
            const char *v = argv[++i];
            if (std::strcmp(v, "zstd") == 0) {
                if (!tdtzZstdAvailable()) {
                    std::fprintf(stderr,
                                 "trace_tool: zstd support not "
                                 "compiled in\n");
                    return 2;
                }
                codec = TdtzCodec::Zstd;
            } else if (std::strcmp(v, "none") == 0) {
                codec = TdtzCodec::Varint;
            } else {
                usage();
            }
        } else if (std::strcmp(argv[i], "--frame-records") == 0 &&
                   i + 1 < argc) {
            frame_records = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 10));
            if (frame_records == 0) {
                std::fprintf(stderr,
                             "trace_tool: --frame-records must be "
                             ">= 1\n");
                return 2;
            }
        } else {
            usage();
        }
    }

    std::vector<ReplayRecord> records;
    if (isTdtFile(in)) {
        const TraceFile t = loadOrDie(in);
        records = projectDemands(t);
        if (records.empty()) {
            std::fprintf(stderr,
                         "trace_tool: '%s' contains no demand "
                         "records\n",
                         in.c_str());
            return 2;
        }
    } else {
        std::string error;
        if (!parseTextTrace(in, records, error)) {
            std::fprintf(stderr, "trace_tool: %s\n", error.c_str());
            return 2;
        }
    }

    TdtzWriter writer(out, codec, frame_records);
    for (const ReplayRecord &r : records)
        writer.append(r);
    writer.finish();
    std::printf("%s: %zu records, codec=%s, %u records/frame\n",
                out.c_str(), records.size(),
                codec == TdtzCodec::Zstd ? "zstd" : "varint",
                frame_records);
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc != 3)
        usage();
    TdtzReader reader;
    if (!reader.open(argv[2])) {
        std::fprintf(stderr, "trace_tool: %s\n",
                     reader.error().c_str());
        return 2;
    }
    const TdtzFileHeader &h = reader.header();
    const TdtzInfo &info = reader.info();
    std::printf("container      %s\n", argv[2]);
    std::printf("format         tdtz v%u, codec=%s, %u records/frame\n",
                h.version,
                h.codec == static_cast<std::uint32_t>(TdtzCodec::Zstd)
                    ? "zstd"
                    : "varint",
                h.frameRecords);
    std::printf("records        %llu (%llu reads, %llu writes)\n",
                (unsigned long long)info.records,
                (unsigned long long)info.reads,
                (unsigned long long)info.writes);
    std::printf("frames         %llu\n",
                (unsigned long long)info.frames);
    std::printf("footprint      %llu bytes (max line addr bound)\n",
                (unsigned long long)info.maxLineAddr);
    std::printf("span           %.3f us simulated\n",
                ticksToNs(info.spanTicks) / 1e3);
    std::printf("frame index    %zu entries\n",
                reader.index().size());
    std::printf("flat baseline  %llu bytes (%zu B/record)\n",
                (unsigned long long)(info.records *
                                     tdtzFlatRecordBytes),
                tdtzFlatRecordBytes);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string cmd = argv[1];
    if (cmd == "summarize")
        return cmdSummarize(argc, argv);
    if (cmd == "diff")
        return cmdDiff(argc, argv);
    if (cmd == "export")
        return cmdExport(argc, argv);
    if (cmd == "dump")
        return cmdDump(argc, argv);
    if (cmd == "check")
        return cmdCheck(argc, argv);
    if (cmd == "convert")
        return cmdConvert(argc, argv);
    if (cmd == "info")
        return cmdInfo(argc, argv);
    usage();
}
