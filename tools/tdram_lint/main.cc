/**
 * @file
 * tdram_lint CLI (DESIGN.md §15).
 *
 *   tdram_lint [--root DIR] [--rules] [FILE...]
 *
 * With no FILE arguments, lints every .hh/.cc/.cpp under the root's
 * src/, bench/, examples/ and tools/ trees (tests/ is exempt: it
 * holds the frozen legacy oracles and the lint fixtures themselves).
 * Paths are reported repo-relative. Exit 0 when clean, 1 when any
 * unsuppressed finding remains, 2 on usage/IO errors.
 */

#include "lint.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;
using tsim::lint::LintFinding;

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage: tdram_lint [--root DIR] [--rules] [FILE...]\n");
    return 2;
}

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/** Path of @p p relative to @p root, '/'-separated. */
std::string
relPath(const fs::path &p, const fs::path &root)
{
    std::error_code ec;
    fs::path rel = fs::relative(p, root, ec);
    std::string s = (ec || rel.empty()) ? p.generic_string()
                                        : rel.generic_string();
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = ".";
    bool printRules = false;
    std::vector<fs::path> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root") {
            if (++i >= argc)
                return usage();
            root = argv[i];
        } else if (arg == "--rules") {
            printRules = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            files.emplace_back(arg);
        }
    }

    if (printRules) {
        std::printf("%-14s %-42s %s\n", "RULE", "SCOPE", "SUMMARY");
        for (const auto &r : tsim::lint::lintRules())
            std::printf("%-14s %-42s %s\n", r.id, r.scope, r.summary);
        return 0;
    }

    if (files.empty()) {
        static const char *const kTrees[] = {"src", "bench", "examples",
                                             "tools"};
        for (const char *t : kTrees) {
            const fs::path dir = root / t;
            if (!fs::exists(dir))
                continue;
            for (const auto &e :
                 fs::recursive_directory_iterator(dir)) {
                if (!e.is_regular_file())
                    continue;
                if (tsim::lint::lintablePath(
                        e.path().generic_string()))
                    files.push_back(e.path());
            }
        }
        std::sort(files.begin(), files.end());
        if (files.empty()) {
            std::fprintf(stderr,
                         "tdram_lint: nothing to lint under %s\n",
                         root.generic_string().c_str());
            return 2;
        }
    }

    std::size_t findings = 0;
    std::size_t checked = 0;
    for (const fs::path &f : files) {
        std::string content;
        if (!readFile(f, content)) {
            std::fprintf(stderr, "tdram_lint: cannot read %s\n",
                         f.generic_string().c_str());
            return 2;
        }
        ++checked;
        for (const LintFinding &fd :
             tsim::lint::lintFile(relPath(f, root), content)) {
            std::printf("%s\n", tsim::lint::formatFinding(fd).c_str());
            ++findings;
        }
    }

    if (findings) {
        std::printf("FAIL: %zu finding%s in %zu files (rules: "
                    "tdram_lint --rules; suppress with "
                    "// tdram-lint:allow(rule): rationale)\n",
                    findings, findings == 1 ? "" : "s", checked);
        return 1;
    }
    std::printf("PASS: tdram_lint clean over %zu files\n", checked);
    return 0;
}
