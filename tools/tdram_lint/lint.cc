/**
 * @file
 * tdram_lint rule engine (DESIGN.md §15).
 *
 * Structure mirrors the protocol checker: a small front end (here a
 * C++ lexer instead of a trace loader) feeds a declarative rule
 * table. Each rule is a pure function over the token stream plus the
 * file's repo-relative path; path scoping (hot directories, subsystem
 * exemptions) is data in the tables below, not logic scattered
 * through the matchers.
 *
 * The lexer is deliberately lightweight: identifiers, numbers,
 * strings (incl. raw strings), character literals, comments and
 * preprocessor logical lines (continuations joined). That is enough
 * for structural matching — no preprocessing, no name lookup, no
 * types. Where a rule needs semantic context (is this lambda handed
 * to an InlineCallable? is this function setup-only?) it uses
 * declarative heuristics documented next to the corresponding table,
 * and intentional violations carry a
 * `// tdram-lint:allow(rule): rationale` suppression.
 */

#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <map>
#include <set>
#include <sstream>

namespace tsim::lint
{
namespace
{

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokKind { Ident, Number, Str, Chr, Punct };

struct Tok
{
    TokKind kind;
    std::string text;
    int line;
};

struct Comment
{
    int line;      ///< line the comment starts on
    int endLine;   ///< line it ends on (== line for // comments)
    std::string text;
};

struct PpLine
{
    int line;
    std::string text;  ///< logical line, '\'-continuations joined
};

struct Lexed
{
    std::vector<Tok> toks;
    std::vector<Comment> comments;
    std::vector<PpLine> pps;
};

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Two-character punctuators kept as one token. */
const char *const kPunct2[] = {
    "::", "->", "==", "!=", "<=", ">=", "&&", "||", "<<", "++",
    "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
};

Lexed
lex(const std::string &s)
{
    Lexed out;
    std::size_t i = 0;
    const std::size_t n = s.size();
    int line = 1;
    bool lineHasToken = false;  // only-whitespace-so-far => '#' is a directive

    auto advanceLines = [&](const std::string &text) {
        line += static_cast<int>(std::count(text.begin(), text.end(), '\n'));
    };

    while (i < n) {
        const char c = s[i];
        if (c == '\n') {
            ++line;
            lineHasToken = false;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Preprocessor directive: '#' first on its (logical) line.
        if (c == '#' && !lineHasToken) {
            const int start = line;
            std::string text;
            while (i < n) {
                if (s[i] == '\\' && i + 1 < n && s[i + 1] == '\n') {
                    text += ' ';
                    i += 2;
                    ++line;
                    continue;
                }
                if (s[i] == '\n')
                    break;
                // Strip line comments inside the directive.
                if (s[i] == '/' && i + 1 < n && s[i + 1] == '/') {
                    while (i < n && s[i] != '\n')
                        ++i;
                    break;
                }
                if (s[i] == '/' && i + 1 < n && s[i + 1] == '*') {
                    std::size_t j = s.find("*/", i + 2);
                    std::string body =
                        s.substr(i, j == std::string::npos
                                        ? std::string::npos : j + 2 - i);
                    advanceLines(body);
                    i = (j == std::string::npos) ? n : j + 2;
                    text += ' ';
                    continue;
                }
                text += s[i++];
            }
            out.pps.push_back({start, text});
            continue;
        }
        if (c == '/' && i + 1 < n && s[i + 1] == '/') {
            std::size_t j = s.find('\n', i);
            std::string body =
                s.substr(i, j == std::string::npos ? std::string::npos
                                                   : j - i);
            out.comments.push_back({line, line, body});
            i = (j == std::string::npos) ? n : j;
            continue;
        }
        if (c == '/' && i + 1 < n && s[i + 1] == '*') {
            const int start = line;
            std::size_t j = s.find("*/", i + 2);
            std::string body = s.substr(
                i, j == std::string::npos ? std::string::npos : j + 2 - i);
            advanceLines(body);
            out.comments.push_back({start, line, body});
            i = (j == std::string::npos) ? n : j + 2;
            continue;
        }
        lineHasToken = true;
        // Raw string literal.
        if (c == 'R' && i + 1 < n && s[i + 1] == '"') {
            std::size_t p = i + 2;
            std::string delim;
            while (p < n && s[p] != '(')
                delim += s[p++];
            const std::string close = ")" + delim + "\"";
            std::size_t j = s.find(close, p);
            std::string body = s.substr(
                i, j == std::string::npos ? std::string::npos
                                          : j + close.size() - i);
            const int start = line;
            advanceLines(body);
            out.toks.push_back({TokKind::Str, body, start});
            i = (j == std::string::npos) ? n : j + close.size();
            continue;
        }
        if (c == '"' || c == '\'') {
            const char quote = c;
            std::size_t j = i + 1;
            while (j < n && s[j] != quote) {
                if (s[j] == '\\')
                    ++j;
                ++j;
            }
            out.toks.push_back(
                {quote == '"' ? TokKind::Str : TokKind::Chr,
                 s.substr(i, j + 1 - i), line});
            i = (j < n) ? j + 1 : n;
            continue;
        }
        if (identStart(c)) {
            std::size_t j = i;
            while (j < n && identChar(s[j]))
                ++j;
            out.toks.push_back({TokKind::Ident, s.substr(i, j - i), line});
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(s[i + 1])))) {
            std::size_t j = i;
            while (j < n &&
                   (identChar(s[j]) || s[j] == '.' || s[j] == '\'' ||
                    ((s[j] == '+' || s[j] == '-') && j > i &&
                     (s[j - 1] == 'e' || s[j - 1] == 'E' ||
                      s[j - 1] == 'p' || s[j - 1] == 'P'))))
                ++j;
            out.toks.push_back({TokKind::Number, s.substr(i, j - i), line});
            i = j;
            continue;
        }
        // Punctuator (two-char forms joined).
        if (i + 1 < n) {
            const std::string two = s.substr(i, 2);
            bool found = false;
            for (const char *p : kPunct2) {
                if (two == p) {
                    out.toks.push_back({TokKind::Punct, two, line});
                    i += 2;
                    found = true;
                    break;
                }
            }
            if (found)
                continue;
        }
        out.toks.push_back({TokKind::Punct, std::string(1, c), line});
        ++i;
    }
    return out;
}

// ---------------------------------------------------------------------------
// Declarative tables (edit these to tune a rule; see DESIGN.md §15)
// ---------------------------------------------------------------------------

/** Directories whose code is hot-path (hot-alloc / sbo-spill scope). */
const char *const kHotDirs[] = {
    "src/sim/", "src/dram/", "src/dcache/", "src/workload/",
};

/**
 * Functions exempt from hot-alloc by name: setup/teardown/reporting.
 * Compared as a lowercase substring of the function name; ctors,
 * dtors and operator<< are always exempt.
 */
const char *const kColdNames[] = {
    "init",  "setup",  "config", "reset",    "clear",  "finish",
    "final", "report", "dump",   "print",    "summar", "describe",
    "render", "parse", "load",   "open",     "close",  "main",
    "usage", "teardown", "destroy", "regstat", "log",
};

/** Factory-style functions (object construction = setup), by prefix. */
const char *const kColdPrefixes[] = {"make", "create", "build"};

/**
 * Identifiers that mark a statement as an InlineCallable sink: a
 * lambda in the same statement must follow the init-capture idiom
 * (sbo-spill). Extend this list when a new callback slot appears.
 */
const char *const kSboSinks[] = {
    "schedule",   "scheduleIn",  "InlineCallable", "InlineFunction",
    "ChanTagCb",  "ChanDataCb",  "Callback",       "onTagResult",
    "onDataDone",
};

/** Capture names treated as PoolRef-typed for sbo-spill. */
bool
poolRefName(const std::string &name)
{
    if (name == "txn" || name == "txnPtr")
        return true;
    const auto ends = [&](const char *suf) {
        const std::size_t m = std::string(suf).size();
        return name.size() >= m &&
               name.compare(name.size() - m, m, suf) == 0;
    };
    return ends("Txn") || ends("txn");
}

/** Gate macro -> defining header (gate-hygiene). */
struct GateInfo
{
    const char *gate;
    const char *header;  ///< include suffix that provides the default
};
const GateInfo kGates[] = {
    {"TDRAM_TRACE", "trace/trace.hh"},
    {"TDRAM_CHECK", "check/check.hh"},
    {"TDRAM_STATS", "stats/stats.hh"},
};

/** Files allowed to touch TraceBuffer/ProtocolChecker directly. */
const char *const kBusExemptPrefixes[] = {
    "src/trace/", "src/check/", "src/sim/event_bus.hh",
};

const LintRuleInfo kRules[] = {
    {"sbo-spill", "InlineCallable sink statements",
     "lambdas handed to InlineCallable/InlineFunction must use explicit "
     "init-captures ([this, txn = txn]); no [&]/[=] defaults, no by-ref "
     "or plain-copy capture of PoolRef values"},
    {"hot-alloc", "src/sim, src/dram, src/dcache, src/workload",
     "no new/malloc/std::function/make_shared/make_unique/unordered "
     "containers, and no std::string/std::vector locals, outside "
     "setup/teardown"},
    {"nondet", "files that emit trace/check/stats events",
     "no rand()/time()/clock()/random_device, std::hash over pointers, "
     "or iteration over std::unordered_map/set"},
    {"bus-discipline", "src/ outside the bus and trace/check subsystems",
     "trace/check emission goes through emit(owner, Ev{...}); no direct "
     "TraceBuffer::record / ProtocolChecker::onEvent / legacy "
     "TSIM_*_EVENT macros"},
    {"gate-hygiene", "all linted files",
     "TDRAM_TRACE/TDRAM_CHECK/TDRAM_STATS value-tested with #if, "
     "referenced in code only by their defining headers, defaults in "
     "scope at every use"},
    {"include-guard", "all headers",
     "self-consistent include guard; name derived from the path "
     "(TSIM_<DIR>_<FILE>_HH)"},
    {"allow-audit", "all linted files",
     "every tdram-lint:allow() names a registered rule, carries a "
     "rationale, and suppresses at least one finding"},
};

bool
startsWith(const std::string &s, const std::string &p)
{
    return s.compare(0, p.size(), p) == 0;
}

bool
hotDirPath(const std::string &path)
{
    for (const char *d : kHotDirs)
        if (startsWith(path, d))
            return true;
    return false;
}

std::string
lower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

bool
coldFunctionName(const std::string &name)
{
    const std::string l = lower(name);
    for (const char *c : kColdNames)
        if (l.find(c) != std::string::npos)
            return true;
    for (const char *p : kColdPrefixes)
        if (l.rfind(p, 0) == 0)
            return true;
    return false;
}

// ---------------------------------------------------------------------------
// Scope tracking (function-body / class / namespace classification)
// ---------------------------------------------------------------------------

struct Scope
{
    enum Kind { Namespace, Class, Function, Block } kind = Block;
    std::string name;
    bool coldFn = false;  ///< Function only: setup/teardown exempt
};

/** Innermost enclosing Function, or nullptr. */
const Scope *
enclosingFunction(const std::vector<Scope> &scopes)
{
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
        if (it->kind == Scope::Function)
            return &*it;
        if (it->kind == Scope::Class || it->kind == Scope::Namespace)
            return nullptr;
    }
    return nullptr;
}

bool
isKeyword(const Tok &t, const char *kw)
{
    return t.kind == TokKind::Ident && t.text == kw;
}

bool
isPunct(const Tok &t, const char *p)
{
    return t.kind == TokKind::Punct && t.text == p;
}

/**
 * Classify the '{' at toks[i]. Heuristic, tuned to this codebase's
 * gem5-style layout; misclassifying a constructor body as Block is
 * harmless (class scope is not a function body, and ctors are exempt
 * from hot-alloc anyway).
 */
Scope
classifyBrace(const std::vector<Tok> &toks, std::size_t i,
              const std::vector<Scope> &scopes)
{
    Scope blk;  // default: transparent block
    blk.kind = Scope::Block;
    if (i == 0)
        return blk;

    std::size_t j = i - 1;

    // namespace [name] {
    if (isKeyword(toks[j], "namespace") ||
        (toks[j].kind == TokKind::Ident && j > 0 &&
         isKeyword(toks[j - 1], "namespace"))) {
        Scope s;
        s.kind = Scope::Namespace;
        return s;
    }

    // class/struct/union/enum Name ... { — scan back over the
    // base-clause until a statement boundary.
    {
        std::size_t k = j;
        int guard = 64;
        while (guard-- > 0) {
            const Tok &t = toks[k];
            if (isKeyword(t, "class") || isKeyword(t, "struct") ||
                isKeyword(t, "union") || isKeyword(t, "enum")) {
                Scope s;
                s.kind = Scope::Class;
                if (k + 1 < toks.size() &&
                    toks[k + 1].kind == TokKind::Ident &&
                    toks[k + 1].text != "final")
                    s.name = toks[k + 1].text;
                return s;
            }
            if (isPunct(t, ";") || isPunct(t, "{") || isPunct(t, "}") ||
                isPunct(t, ")") || isPunct(t, "="))
                break;
            if (k == 0)
                break;
            --k;
        }
    }

    // Skip back over trailing-return types and post-qualifiers so j
    // lands on the ')' of a parameter list (or something else).
    {
        int guard = 64;
        while (guard-- > 0 && j > 0) {
            const Tok &t = toks[j];
            if (isKeyword(t, "const") || isKeyword(t, "noexcept") ||
                isKeyword(t, "override") || isKeyword(t, "final") ||
                isKeyword(t, "mutable")) {
                --j;
                continue;
            }
            // Trailing return: ... ') -> Type {' — skip the type.
            if (t.kind == TokKind::Ident || isPunct(t, "::") ||
                isPunct(t, "<") || isPunct(t, ">") || isPunct(t, "*") ||
                isPunct(t, "&")) {
                std::size_t k = j;
                while (k > 0 &&
                       (toks[k].kind == TokKind::Ident ||
                        isPunct(toks[k], "::") || isPunct(toks[k], "<") ||
                        isPunct(toks[k], ">") || isPunct(toks[k], "*") ||
                        isPunct(toks[k], "&")))
                    --k;
                if (k > 0 && isPunct(toks[k], "->")) {
                    j = k - 1;
                    continue;
                }
                break;
            }
            break;
        }
    }

    const Tok &p = toks[j];

    // '] {' or '] (args) {': lambda body — a function scope that
    // inherits hot/cold from the enclosing function.
    if (isPunct(p, "]")) {
        Scope s;
        s.kind = Scope::Function;
        s.name = "<lambda>";
        const Scope *f = enclosingFunction(scopes);
        s.coldFn = f ? f->coldFn : true;  // namespace-scope init: cold
        return s;
    }

    if (isPunct(p, ")")) {
        // Find the matching '('.
        int depth = 1;
        std::size_t k = j;
        while (k > 0 && depth > 0) {
            --k;
            if (isPunct(toks[k], ")"))
                ++depth;
            else if (isPunct(toks[k], "("))
                --depth;
        }
        if (k == 0 && depth > 0)
            return blk;
        const std::size_t open = k;
        if (open == 0)
            return blk;
        const Tok &before = toks[open - 1];
        if (isKeyword(before, "if") || isKeyword(before, "for") ||
            isKeyword(before, "while") || isKeyword(before, "switch") ||
            isKeyword(before, "catch"))
            return blk;
        if (isPunct(before, "]")) {
            Scope s;
            s.kind = Scope::Function;
            s.name = "<lambda>";
            const Scope *f = enclosingFunction(scopes);
            s.coldFn = f ? f->coldFn : true;
            return s;
        }
        if (before.kind == TokKind::Ident) {
            // 'name(...) {'. A preceding ':' or ',' means we are in a
            // constructor's member-init list — the body is the ctor's.
            Scope s;
            s.kind = Scope::Function;
            s.name = before.text;
            if (open >= 2 &&
                (isPunct(toks[open - 2], ":") ||
                 isPunct(toks[open - 2], ","))) {
                s.name = "<ctor>";
                s.coldFn = true;
                return s;
            }
            // operator...(...)
            if (open >= 2 && isKeyword(toks[open - 2], "operator")) {
                s.name = "operator";
                s.coldFn = true;  // operators: formatting/comparison glue
                return s;
            }
            if (open >= 3 && toks[open - 2].kind == TokKind::Punct &&
                isKeyword(toks[open - 3], "operator")) {
                s.name = "operator" + toks[open - 2].text;
                s.coldFn = true;
                return s;
            }
            // Ctor/dtor: name matches the enclosing class, or ~name.
            bool ctor = false;
            if (open >= 2 && isPunct(toks[open - 2], "~"))
                ctor = true;
            for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
                if (it->kind == Scope::Class && it->name == s.name)
                    ctor = true;
            }
            // Out-of-line Class::Class / Class::~Class.
            if (open >= 3 && isPunct(toks[open - 2], "::") &&
                toks[open - 3].kind == TokKind::Ident &&
                toks[open - 3].text == s.name)
                ctor = true;
            s.coldFn = ctor || coldFunctionName(s.name);
            return s;
        }
        return blk;
    }

    return blk;
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

struct Allow
{
    int lineFrom = 0;  ///< first covered line
    int lineTo = 0;    ///< last covered line
    std::string rule;
    bool used = false;
};

/**
 * Parse every `tdram-lint:allow(rule): rationale` comment. Invalid
 * ones (unknown rule, missing rationale) produce allow-audit
 * findings immediately. A valid allow at the end of a code line
 * covers that line; a stand-alone allow (possibly spanning several
 * comment lines) covers the statement that follows it, up to the
 * next ';', '{' or '}'.
 */
std::vector<Allow>
parseAllows(const Lexed &lx, const std::string &path,
            std::vector<LintFinding> &findings)
{
    // Does line L carry any code token?
    std::set<int> codeLines;
    for (const Tok &t : lx.toks)
        codeLines.insert(t.line);

    // Chain end: a run of comments on consecutive lines annotates the
    // statement after the last of them.
    auto chainEnd = [&](std::size_t idx) {
        int end = lx.comments[idx].endLine;
        for (std::size_t k = idx + 1; k < lx.comments.size(); ++k) {
            if (lx.comments[k].line == end + 1 &&
                !codeLines.count(lx.comments[k].line))
                end = lx.comments[k].endLine;
            else if (lx.comments[k].line <= end)
                continue;
            else
                break;
        }
        return end;
    };

    // Line of the terminator (';', '{' or '}') of the statement that
    // starts strictly after @p line.
    auto statementEndAfter = [&](int line) {
        for (const Tok &t : lx.toks) {
            if (t.line <= line)
                continue;
            // Scan from here to the statement terminator.
            for (const Tok *p = &t; p <= &lx.toks.back(); ++p) {
                if (isPunct(*p, ";") || isPunct(*p, "{") ||
                    isPunct(*p, "}"))
                    return p->line;
            }
            break;
        }
        return line + 1;
    };

    std::vector<Allow> allows;
    for (std::size_t ci = 0; ci < lx.comments.size(); ++ci) {
        const Comment &c = lx.comments[ci];
        std::size_t pos = 0;
        while ((pos = c.text.find("tdram-lint:allow", pos)) !=
               std::string::npos) {
            // Anchored: only comment markup (whitespace, '/', '*')
            // may precede the marker on its line, so prose *about*
            // the idiom (like this tool's own docs) never parses as
            // a directive.
            bool anchored = true;
            for (std::size_t b = pos; b-- > 0;) {
                const char pc = c.text[b];
                if (pc == '\n')
                    break;
                if (pc != ' ' && pc != '\t' && pc != '/' && pc != '*') {
                    anchored = false;
                    break;
                }
            }
            if (!anchored) {
                pos += std::string("tdram-lint:allow").size();
                continue;
            }
            pos += std::string("tdram-lint:allow").size();
            Allow a;
            if (codeLines.count(c.line)) {
                // Inline annotation at the end of a code line:
                // covers that line only.
                a.lineFrom = c.line;
                a.lineTo = c.line;
            } else {
                // Stand-alone comment (block): covers the statement
                // that follows it.
                a.lineFrom = c.line;
                a.lineTo = statementEndAfter(chainEnd(ci));
            }
            if (pos >= c.text.size() || c.text[pos] != '(') {
                findings.push_back(
                    {"allow-audit", path, c.line,
                     "malformed suppression: expected "
                     "tdram-lint:allow(rule-id): rationale"});
                continue;
            }
            const std::size_t close = c.text.find(')', pos);
            if (close == std::string::npos) {
                findings.push_back({"allow-audit", path, c.line,
                                    "unterminated tdram-lint:allow("});
                break;
            }
            a.rule = c.text.substr(pos + 1, close - pos - 1);
            if (!findLintRule(a.rule)) {
                findings.push_back(
                    {"allow-audit", path, c.line,
                     "allow() names unknown rule '" + a.rule +
                         "' (see tdram_lint --rules)"});
                pos = close;
                continue;
            }
            // Rationale: ':' then non-trivial text.
            std::size_t r = close + 1;
            while (r < c.text.size() &&
                   (c.text[r] == ':' || c.text[r] == ' '))
                ++r;
            std::string rationale = c.text.substr(r);
            // Trim block-comment tail and whitespace.
            const std::size_t star = rationale.find("*/");
            if (star != std::string::npos)
                rationale.resize(star);
            while (!rationale.empty() &&
                   std::isspace(static_cast<unsigned char>(
                       rationale.back())))
                rationale.pop_back();
            if (c.text[close + 1 == c.text.size() ? close : close + 1] !=
                    ':' ||
                rationale.size() < 8) {
                findings.push_back(
                    {"allow-audit", path, c.line,
                     "allow(" + a.rule +
                         ") lacks a rationale — write "
                         "tdram-lint:allow(" +
                         a.rule + "): why this site is exempt"});
                pos = close;
                continue;
            }
            allows.push_back(a);
            pos = close;
        }
    }
    return allows;
}

// ---------------------------------------------------------------------------
// Rule passes
// ---------------------------------------------------------------------------

void
pushFinding(std::vector<LintFinding> &out, const char *rule,
            const std::string &path, int line, std::string detail)
{
    out.push_back({rule, path, line, std::move(detail)});
}

/** sbo-spill: audit lambda capture lists in sink statements. */
void
ruleSboSpill(const Lexed &lx, const std::string &path,
             std::vector<LintFinding> &out)
{
    const auto &t = lx.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!isPunct(t[i], "["))
            continue;
        // Lambda introducer, not subscript/attribute.
        if (i > 0 && (t[i - 1].kind == TokKind::Ident ||
                      t[i - 1].kind == TokKind::Number ||
                      isPunct(t[i - 1], ")") || isPunct(t[i - 1], "]")))
            continue;
        if (i + 1 < t.size() && isPunct(t[i + 1], "["))
            continue;  // [[attribute]]
        // Statement context: scan back to the nearest boundary and
        // look for a sink identifier.
        bool sink = false;
        for (std::size_t j = i; j-- > 0;) {
            if (isPunct(t[j], ";") || isPunct(t[j], "{") ||
                isPunct(t[j], "}"))
                break;
            if (t[j].kind == TokKind::Ident) {
                for (const char *s : kSboSinks) {
                    if (t[j].text == s) {
                        sink = true;
                        break;
                    }
                }
            }
            if (sink)
                break;
        }
        if (!sink)
            continue;
        // Parse the capture list up to the matching ']'.
        std::size_t j = i + 1;
        int depth = 0;  // nested (), <>, [] inside init-captures
        std::vector<std::vector<const Tok *>> items(1);
        for (; j < t.size(); ++j) {
            if (isPunct(t[j], "(") || isPunct(t[j], "[") ||
                isPunct(t[j], "{"))
                ++depth;
            else if (isPunct(t[j], ")") || isPunct(t[j], "}"))
                --depth;
            else if (isPunct(t[j], "]")) {
                if (depth == 0)
                    break;
                --depth;
            } else if (isPunct(t[j], ",") && depth == 0) {
                items.emplace_back();
                continue;
            }
            items.back().push_back(&t[j]);
        }
        const int line = t[i].line;
        for (const auto &item : items) {
            if (item.empty())
                continue;
            const bool hasInit = std::any_of(
                item.begin(), item.end(),
                [](const Tok *tok) { return isPunct(*tok, "="); });
            if (item.size() == 1 && isPunct(*item[0], "&")) {
                pushFinding(out, "sbo-spill", path, line,
                            "default by-reference capture [&] in an "
                            "InlineCallable sink; enumerate captures "
                            "explicitly ([this, txn = txn, ...])");
                continue;
            }
            if (item.size() == 1 && isPunct(*item[0], "=")) {
                pushFinding(out, "sbo-spill", path, line,
                            "default copy capture [=] in an "
                            "InlineCallable sink; enumerate captures "
                            "explicitly ([this, txn = txn, ...])");
                continue;
            }
            if (isPunct(*item[0], "&") && item.size() >= 2 &&
                item[1]->kind == TokKind::Ident && !hasInit &&
                poolRefName(item[1]->text)) {
                pushFinding(out, "sbo-spill", path, line,
                            "PoolRef '" + item[1]->text +
                                "' captured by reference; the closure "
                                "must own its reference — use '" +
                                item[1]->text + " = " + item[1]->text +
                                "'");
                continue;
            }
            if (item.size() == 1 && item[0]->kind == TokKind::Ident &&
                poolRefName(item[0]->text)) {
                pushFinding(
                    out, "sbo-spill", path, line,
                    "PoolRef '" + item[0]->text +
                        "' captured by plain copy; a const& source "
                        "gives the closure a const member whose move "
                        "degrades to a refcounting copy and spills "
                        "InlineCallable to the heap — use '" +
                        item[0]->text + " = " + item[0]->text + "'");
            }
        }
    }
}

/** hot-alloc: allocation primitives in hot-path code. */
void
ruleHotAlloc(const Lexed &lx, const std::string &path,
             std::vector<LintFinding> &out)
{
    if (!hotDirPath(path))
        return;
    const auto &t = lx.toks;
    std::vector<Scope> scopes;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (isPunct(t[i], "{")) {
            scopes.push_back(classifyBrace(t, i, scopes));
            continue;
        }
        if (isPunct(t[i], "}")) {
            if (!scopes.empty())
                scopes.pop_back();
            continue;
        }
        if (t[i].kind != TokKind::Ident)
            continue;
        const std::string &w = t[i].text;
        const int line = t[i].line;
        const bool stdQualified =
            i >= 2 && isPunct(t[i - 1], "::") && isKeyword(t[i - 2], "std");

        // File-wide bans (member declarations are the problem):
        if (w == "function" && stdQualified) {
            pushFinding(out, "hot-alloc", path, line,
                        "std::function in a hot-path directory; use "
                        "InlineCallable (sim/inline_function.hh)");
            continue;
        }
        if (w == "unordered_map" || w == "unordered_set") {
            pushFinding(out, "hot-alloc", path, line,
                        "std::" + w +
                            " allocates a node per insert and exposes "
                            "iteration-order hazards; use OpenHashMap "
                            "(sim/open_map.hh)");
            continue;
        }
        if (w == "make_shared" || w == "make_unique" || w == "malloc" ||
            w == "calloc" || w == "realloc" || w == "strdup" ||
            w == "new") {
            const Scope *fn = enclosingFunction(scopes);
            if (!fn || fn->coldFn)
                continue;  // declarations / setup / teardown
            if (w == "new" && i + 1 < t.size() && isPunct(t[i + 1], "("))
                continue;  // placement new into pooled storage
            pushFinding(out, "hot-alloc", path, line,
                        "'" + w + "' in hot-path function '" + fn->name +
                            "'; pool it (sim/slab_pool.hh) or move it "
                            "to setup");
            continue;
        }
        if (stdQualified &&
            (w == "string" || w == "vector" || w == "deque" ||
             w == "list" || w == "map" || w == "set" ||
             w == "to_string")) {
            const Scope *fn = enclosingFunction(scopes);
            if (!fn || fn->coldFn)
                continue;
            pushFinding(out, "hot-alloc", path, line,
                        "std::" + w + " in hot-path function '" +
                            fn->name +
                            "'; allocating containers belong in "
                            "setup/teardown, not per-event code");
        }
    }
}

/** nondet: determinism hazards in files that feed golden outputs. */
void
ruleNondet(const Lexed &lx, const std::string &path,
           std::vector<LintFinding> &out)
{
    const auto &t = lx.toks;
    // Scope: emission subsystems plus any file that emits events.
    bool inScope = startsWith(path, "src/trace/") ||
                   startsWith(path, "src/check/") ||
                   startsWith(path, "src/stats/") || hotDirPath(path);
    if (!inScope) {
        for (std::size_t i = 0; i + 1 < t.size(); ++i) {
            if (isKeyword(t[i], "emit") && isPunct(t[i + 1], "(")) {
                inScope = true;
                break;
            }
        }
    }
    if (!inScope)
        return;

    // Names declared as std::unordered_map/set in this file.
    std::set<std::string> unorderedNames;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!isKeyword(t[i], "unordered_map") &&
            !isKeyword(t[i], "unordered_set"))
            continue;
        std::size_t j = i + 1;
        if (j < t.size() && isPunct(t[j], "<")) {
            int depth = 0;
            for (; j < t.size(); ++j) {
                if (isPunct(t[j], "<"))
                    ++depth;
                else if (isPunct(t[j], ">") && --depth == 0) {
                    ++j;
                    break;
                }
            }
        }
        if (j < t.size() && t[j].kind == TokKind::Ident)
            unorderedNames.insert(t[j].text);
    }

    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident)
            continue;
        const std::string &w = t[i].text;
        const int line = t[i].line;
        const bool called =
            i + 1 < t.size() && isPunct(t[i + 1], "(");
        if ((w == "rand" || w == "srand" || w == "rand_r" ||
             w == "drand48" || w == "time" || w == "clock" ||
             w == "gettimeofday") &&
            called) {
            pushFinding(out, "nondet", path, line,
                        "'" + w +
                            "()' is nondeterministic; derive randomness "
                            "from sim/rng.hh seeded state and time from "
                            "curTick()");
            continue;
        }
        if (w == "random_device" || w == "steady_clock" ||
            w == "system_clock" || w == "high_resolution_clock") {
            pushFinding(out, "nondet", path, line,
                        "'" + w +
                            "' is host-entropy/wall-clock; it must not "
                            "feed simulated output");
            continue;
        }
        if (w == "hash" && i + 1 < t.size() && isPunct(t[i + 1], "<")) {
            int depth = 0;
            for (std::size_t j = i + 1; j < t.size(); ++j) {
                if (isPunct(t[j], "<"))
                    ++depth;
                else if (isPunct(t[j], ">")) {
                    if (--depth == 0)
                        break;
                } else if (isPunct(t[j], "*") && depth > 0) {
                    pushFinding(out, "nondet", path, line,
                                "std::hash over a pointer type: pointer "
                                "values vary across runs and threads");
                    break;
                }
            }
            continue;
        }
        // Iteration over a declared unordered container.
        if (unorderedNames.count(w)) {
            // range-for: 'for ( ... : name'
            bool rangeFor = false;
            for (std::size_t j = i; j-- > 0;) {
                if (isPunct(t[j], ";") || isPunct(t[j], "{") ||
                    isPunct(t[j], "}") || isPunct(t[j], ")"))
                    break;
                if (isPunct(t[j], ":")) {
                    for (std::size_t k = j; k-- > 0;) {
                        if (isKeyword(t[k], "for")) {
                            rangeFor = true;
                            break;
                        }
                        if (isPunct(t[k], ";") || isPunct(t[k], "{") ||
                            isPunct(t[k], "}"))
                            break;
                    }
                    break;
                }
            }
            const bool beginCall =
                i + 2 < t.size() &&
                (isPunct(t[i + 1], ".") || isPunct(t[i + 1], "->")) &&
                (isKeyword(t[i + 2], "begin") ||
                 isKeyword(t[i + 2], "cbegin"));
            if (rangeFor || beginCall) {
                pushFinding(out, "nondet", path, line,
                            "iteration over std::unordered container '" +
                                w +
                                "': order is implementation-defined and "
                                "can leak into trace/stats output");
            }
        }
    }
}

/** bus-discipline: no emission behind the event bus's back. */
void
ruleBusDiscipline(const Lexed &lx, const std::string &path,
                  std::vector<LintFinding> &out)
{
    if (!startsWith(path, "src/"))
        return;  // tests/tools/bench drive the subsystems directly
    for (const char *p : kBusExemptPrefixes)
        if (startsWith(path, p))
            return;
    const auto &t = lx.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident)
            continue;
        const std::string &w = t[i].text;
        if (w == "TSIM_TRACE_EVENT" || w == "TSIM_CHECK_EVENT") {
            pushFinding(out, "bus-discipline", path, t[i].line,
                        "legacy " + w +
                            " macro; emit(owner, Ev{...}) through "
                            "sim/event_bus.hh instead");
            continue;
        }
        if ((w == "traceBuf" || w == "tracer") && i + 2 < t.size() &&
            (isPunct(t[i + 1], "->") || isPunct(t[i + 1], ".")) &&
            isKeyword(t[i + 2], "record")) {
            pushFinding(out, "bus-discipline", path, t[i].line,
                        "direct TraceBuffer::record call; emission must "
                        "go through emit(owner, Ev{...})");
            continue;
        }
        if (w == "checker" && i + 2 < t.size() &&
            (isPunct(t[i + 1], "->") || isPunct(t[i + 1], ".")) &&
            isKeyword(t[i + 2], "onEvent")) {
            pushFinding(out, "bus-discipline", path, t[i].line,
                        "direct ProtocolChecker::onEvent call; emission "
                        "must go through emit(owner, Ev{...})");
        }
    }
}

/** First identifier-ish word after the directive keyword. */
std::string
ppWordAfter(const std::string &pp, const std::string &kw)
{
    std::size_t p = pp.find(kw);
    if (p == std::string::npos)
        return "";
    p += kw.size();
    while (p < pp.size() &&
           std::isspace(static_cast<unsigned char>(pp[p])))
        ++p;
    std::size_t e = p;
    while (e < pp.size() && identChar(pp[e]))
        ++e;
    return pp.substr(p, e - p);
}

/** gate-hygiene: TDRAM_* gates used correctly. */
void
ruleGateHygiene(const Lexed &lx, const std::string &path,
                std::vector<LintFinding> &out)
{
    // Which gates does this file provide a default for / include the
    // provider of?
    std::set<std::string> defaulted;   // via #ifndef X / #define X
    std::set<std::string> included;    // via defining header include
    for (std::size_t i = 0; i < lx.pps.size(); ++i) {
        const std::string &pp = lx.pps[i].text;
        for (const GateInfo &g : kGates) {
            if (ppWordAfter(pp, "#ifndef") == g.gate &&
                i + 1 < lx.pps.size() &&
                ppWordAfter(lx.pps[i + 1].text, "#define") == g.gate)
                defaulted.insert(g.gate);
            if (pp.find("#include") != std::string::npos &&
                pp.find(g.header) != std::string::npos)
                included.insert(g.gate);
        }
    }

    int condDepth = 0;
    for (std::size_t i = 0; i < lx.pps.size(); ++i) {
        const std::string &pp = lx.pps[i].text;
        const int line = lx.pps[i].line;
        if (pp.find("#if") == 0 || pp.find("# if") == 0 ||
            pp.rfind("#if", 0) == 0)
            ++condDepth;
        if (ppWordAfter(pp, "#endif") == "" &&
            pp.rfind("#endif", 0) == 0)
            --condDepth;
        for (const GateInfo &g : kGates) {
            if (pp.find(g.gate) == std::string::npos)
                continue;
            if (ppWordAfter(pp, "#ifdef") == g.gate) {
                pushFinding(out, "gate-hygiene", path, line,
                            std::string("#ifdef ") + g.gate +
                                ": gates are value-style (0/1); #ifdef "
                                "is true even for -D" +
                                g.gate + "=0 — use '#if " + g.gate +
                                "'");
                continue;
            }
            if (ppWordAfter(pp, "#ifndef") == g.gate) {
                if (!defaulted.count(g.gate)) {
                    pushFinding(out, "gate-hygiene", path, line,
                                std::string("#ifndef ") + g.gate +
                                    " outside the default-definition "
                                    "idiom; value-test with '#if " +
                                    g.gate + "'");
                }
                continue;
            }
            const bool valueTest =
                pp.rfind("#if", 0) == 0 || pp.rfind("#elif", 0) == 0;
            if (valueTest && !defaulted.count(g.gate) &&
                !included.count(g.gate)) {
                pushFinding(
                    out, "gate-hygiene", path, line,
                    std::string("#if ") + g.gate + " without " +
                        g.header +
                        " in scope: an undefined gate silently "
                        "evaluates to 0 — include the defining header");
            }
        }
    }
    if (condDepth != 0) {
        pushFinding(out, "gate-hygiene", path,
                    lx.pps.empty() ? 1 : lx.pps.back().line,
                    "unbalanced preprocessor conditionals "
                    "(#if/#endif mismatch)");
    }

    // Gate macros in plain code belong to the defining headers only
    // (the canonical `return TDRAM_X != 0;` constexpr helpers).
    for (const Tok &t : lx.toks) {
        if (t.kind != TokKind::Ident)
            continue;
        for (const GateInfo &g : kGates) {
            if (t.text != g.gate)
                continue;
            const bool definingHeader =
                path.size() >= std::string(g.header).size() &&
                path.compare(path.size() -
                                 std::string(g.header).size(),
                             std::string::npos, g.header) == 0;
            if (!definingHeader && !defaulted.count(g.gate)) {
                pushFinding(out, "gate-hygiene", path, t.line,
                            std::string(g.gate) +
                                " referenced in code outside its "
                                "defining header; branch on " +
                                (g.gate == std::string("TDRAM_TRACE")
                                     ? "traceCompiledIn()"
                                     : g.gate ==
                                           std::string("TDRAM_CHECK")
                                           ? "checkCompiledIn()"
                                           : "statsCompiledIn()") +
                                " or gate with #if");
            }
        }
    }
}

/** include-guard: presence, self-consistency, TSIM_* naming. */
void
ruleIncludeGuard(const Lexed &lx, const std::string &path,
                 std::vector<LintFinding> &out)
{
    if (path.size() < 3 || path.compare(path.size() - 3, 3, ".hh") != 0)
        return;
    for (const PpLine &pp : lx.pps) {
        if (pp.text.find("#pragma") == 0 &&
            pp.text.find("once") != std::string::npos)
            return;  // pragma once accepted anywhere near the top
    }
    if (lx.pps.empty()) {
        pushFinding(out, "include-guard", path, 1,
                    "header has no include guard");
        return;
    }
    const std::string guard = ppWordAfter(lx.pps[0].text, "#ifndef");
    if (guard.empty()) {
        pushFinding(out, "include-guard", path, lx.pps[0].line,
                    "header must open with '#ifndef GUARD' (or "
                    "#pragma once)");
        return;
    }
    if (lx.pps.size() < 2 ||
        ppWordAfter(lx.pps[1].text, "#define") != guard) {
        pushFinding(out, "include-guard", path, lx.pps[0].line,
                    "include guard '#ifndef " + guard +
                        "' not followed by '#define " + guard + "'");
        return;
    }
    if (lx.pps.back().text.rfind("#endif", 0) != 0) {
        pushFinding(out, "include-guard", path, lx.pps.back().line,
                    "include guard not closed by a final #endif");
        return;
    }
    // Derived name: strip src/, uppercase, '/'|'.'|'-' -> '_'.
    std::string rel = path;
    if (startsWith(rel, "src/"))
        rel = rel.substr(4);
    std::string want = "TSIM_";
    for (char c : rel) {
        if (identChar(c))
            want += static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
        else
            want += '_';
    }
    if (guard != want) {
        pushFinding(out, "include-guard", path, lx.pps[0].line,
                    "guard '" + guard + "' does not match the "
                    "path-derived name '" + want + "'");
    }
}

} // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const std::vector<LintRuleInfo> &
lintRules()
{
    static const std::vector<LintRuleInfo> table(std::begin(kRules),
                                                 std::end(kRules));
    return table;
}

const LintRuleInfo *
findLintRule(const std::string &id)
{
    for (const LintRuleInfo &r : lintRules())
        if (id == r.id)
            return &r;
    return nullptr;
}

std::string
formatFinding(const LintFinding &f)
{
    std::ostringstream os;
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.detail;
    return os.str();
}

bool
lintablePath(const std::string &path)
{
    const auto ends = [&](const char *suf) {
        const std::size_t m = std::string(suf).size();
        return path.size() >= m &&
               path.compare(path.size() - m, m, suf) == 0;
    };
    return ends(".hh") || ends(".cc") || ends(".cpp");
}

std::vector<LintFinding>
lintFile(const std::string &path, const std::string &content)
{
    const Lexed lx = lex(content);

    std::vector<LintFinding> raw;
    std::vector<Allow> allows = parseAllows(lx, path, raw);

    ruleSboSpill(lx, path, raw);
    ruleHotAlloc(lx, path, raw);
    ruleNondet(lx, path, raw);
    ruleBusDiscipline(lx, path, raw);
    ruleGateHygiene(lx, path, raw);
    ruleIncludeGuard(lx, path, raw);

    // Apply suppressions: each allow covers findings of its rule
    // within its [lineFrom, lineTo] window (its own line for inline
    // annotations, the annotated statement for stand-alone comments).
    std::vector<LintFinding> kept;
    for (const LintFinding &f : raw) {
        bool suppressed = false;
        for (Allow &a : allows) {
            if (a.rule == f.rule && a.lineFrom <= f.line &&
                f.line <= a.lineTo) {
                a.used = true;
                suppressed = true;
            }
        }
        if (!suppressed)
            kept.push_back(f);
    }
    for (const Allow &a : allows) {
        if (!a.used) {
            kept.push_back(
                {"allow-audit", path, a.lineFrom,
                 "allow(" + a.rule +
                     ") suppresses nothing — the finding moved or was "
                     "fixed; delete the stale suppression"});
        }
    }

    std::stable_sort(kept.begin(), kept.end(),
                     [](const LintFinding &a, const LintFinding &b) {
                         return a.line < b.line;
                     });
    return kept;
}

} // namespace tsim::lint
