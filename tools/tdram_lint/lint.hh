/**
 * @file
 * tdram_lint — project-specific static analyzer (DESIGN.md §15).
 *
 * The repro's headline claims — byte-identical traces/stats/checker
 * verdicts for every `--threads N`, and ~0 allocs/event on the hot
 * path — are enforced dynamically by golden hashes, nm link gates and
 * sanitizer runs, but nothing *static* stops a new controller from
 * quietly reintroducing a heap allocation per event or an iteration
 * order that leaks into a golden output. This tool makes the
 * conventions machine-checked: a lightweight C++ lexer plus a
 * structural matcher (no libclang, no dependencies beyond the
 * standard library) drives a declarative rule table in the style of
 * the protocol checker's 22-rule design (src/check/check.hh).
 *
 * Rules (see lintRules() for the authoritative table):
 *
 *  - sbo-spill      lambdas handed to InlineCallable/InlineFunction
 *                   sinks must use the load-bearing `[this, txn = txn]`
 *                   init-capture idiom — no `[&]`/`[=]` defaults, no
 *                   by-ref or plain-copy capture of PoolRef names
 *                   (a const-qualified PoolRef member demotes the
 *                   closure's move to a copy and spills to the heap).
 *  - hot-alloc      no `new`/`malloc`/`std::function`/`make_shared`/
 *                   `make_unique`/node-based unordered containers, and
 *                   no std::string/std::vector locals, in hot-path
 *                   function bodies under src/sim, src/dram,
 *                   src/dcache, src/workload (ctors/dtors and
 *                   setup/teardown-named functions are exempt).
 *  - nondet         no rand()/time()/clock()/random_device,
 *                   std::hash over pointer types, or range-for over
 *                   std::unordered_map/set in files that emit trace/
 *                   check/stats events.
 *  - bus-discipline trace/check emission goes through
 *                   emit(owner, Ev{...}); no direct TraceBuffer::
 *                   record / ProtocolChecker::onEvent calls or legacy
 *                   TSIM_TRACE_EVENT/TSIM_CHECK_EVENT macros outside
 *                   the bus and the subsystems themselves.
 *  - gate-hygiene   TDRAM_TRACE/TDRAM_CHECK/TDRAM_STATS are
 *                   compile-time gates: value-tested with `#if` (never
 *                   `#ifdef`), referenced in code only by their
 *                   defining headers, and every `#if` use sits in a
 *                   file that includes the gate's defining header.
 *  - include-guard  every header carries a self-consistent include
 *                   guard; under src/ the guard name is derived from
 *                   the path (TSIM_<DIR>_<FILE>_HH).
 *  - allow-audit    every `// tdram-lint:allow(rule)` suppression
 *                   names a registered rule and carries a rationale.
 *
 * Suppression idiom: `// tdram-lint:allow(rule-id): rationale text`
 * at the end of a code line suppresses findings of that rule on that
 * line; as a stand-alone comment (possibly spanning several comment
 * lines) it suppresses findings within the statement that follows,
 * up to the next ';', '{' or '}'.
 * The rationale is mandatory; an allow() without one, or naming an
 * unknown rule, is itself a finding (allow-audit).
 */

#ifndef TSIM_TOOLS_TDRAM_LINT_LINT_HH
#define TSIM_TOOLS_TDRAM_LINT_LINT_HH

#include <string>
#include <vector>

namespace tsim::lint
{

/**
 * Static description of one rule, mirroring CheckRuleInfo: the
 * engine keys findings by `id`, `tdram_lint --rules` prints the
 * table, and the fixture self-test iterates it to prove every rule
 * has a known-good and a known-bad fixture.
 */
struct LintRuleInfo
{
    const char *id;       ///< stable machine name, e.g. "sbo-spill"
    const char *scope;    ///< where it applies, e.g. "hot dirs"
    const char *summary;  ///< one-line human description
};

/** The full rule table, in evaluation order. */
const std::vector<LintRuleInfo> &lintRules();

/** Lookup @p id in the table (nullptr if unknown). */
const LintRuleInfo *findLintRule(const std::string &id);

/** One finding. */
struct LintFinding
{
    std::string rule;    ///< rule id from the table
    std::string file;    ///< repo-relative path as given to lintFile
    int line = 0;        ///< 1-based line number
    std::string detail;  ///< human-readable explanation
};

/** One-line rendering: file:line: [rule] detail. */
std::string formatFinding(const LintFinding &f);

/**
 * Lint one file. @p path is the repo-relative path (it drives the
 * path-scoped rules: hot-dir membership, subsystem exemptions, guard
 * naming); @p content is the file's full text. Suppressed findings
 * are dropped here; allow-audit findings for malformed suppressions
 * are appended.
 */
std::vector<LintFinding> lintFile(const std::string &path,
                                  const std::string &content);

/** True when @p path (repo-relative, '/'-separated) is linted. */
bool lintablePath(const std::string &path);

} // namespace tsim::lint

#endif // TSIM_TOOLS_TDRAM_LINT_LINT_HH
