#!/bin/sh
# clang-tidy analysis gate (DESIGN.md §11). Configures a build tree
# with a compilation database and runs clang-tidy (config: .clang-tidy,
# WarningsAsErrors: '*') over every first-party TU.
#
# Usage: run_clang_tidy.sh [build-dir]
# Exit codes: 0 clean, 1 diagnostics, 77 skip (clang-tidy missing —
# the container image has only gcc; CI installs clang-tools).

set -u

SRC_DIR=$(cd "$(dirname "$0")/.." && pwd)
BUILD_DIR=${1:-$SRC_DIR/build-tidy}
TIDY=${CLANG_TIDY:-clang-tidy}
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}

command -v "$TIDY" >/dev/null 2>&1 || {
    echo "skip: no $TIDY in PATH"
    exit 77
}

cmake -B "$BUILD_DIR" -S "$SRC_DIR" \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null || exit 1

# Analyze every first-party TU; generated/test-support TUs from the
# header_selfcheck target are trivial wrappers and are skipped.
FILES=$(find "$SRC_DIR/src" "$SRC_DIR/bench" "$SRC_DIR/tools" \
             "$SRC_DIR/examples" "$SRC_DIR/tests" \
             -name '*.cc' -o -name '*.cpp' | sort)

STATUS=0
echo "$FILES" | xargs -P "$JOBS" -n 4 \
    "$TIDY" -p "$BUILD_DIR" --quiet || STATUS=1

if [ "$STATUS" -ne 0 ]; then
    echo "FAIL: clang-tidy reported diagnostics (see above)"
    exit 1
fi
echo "PASS: clang-tidy clean"
exit 0
