#!/bin/sh
# tdram_lint analysis gate (DESIGN.md §15). Builds the project-specific
# static analyzer and runs it over the whole tree (src/, bench/,
# examples/, tools/). Zero unsuppressed findings is the bar; every
# intentional exception is a `// tdram-lint:allow(rule): rationale`
# comment in the source.
#
# Usage: run_tdram_lint.sh [build-dir]
# Exit codes: 0 clean, 1 findings, 2 cmake configure/build failure
# (toolchain problem, not a lint verdict), 77 skip (no cmake / no C++
# compiler in PATH — a local convenience; in GitHub Actions 77 renders
# as a plain job failure, which is fine because CI runners always have
# both). Findings are echoed and also written to tdram-lint.log in the
# build dir so CI can upload them as an artifact; configure/build
# output goes to tdram-lint-build.log, dumped on failure.

set -u

SRC_DIR=$(cd "$(dirname "$0")/.." && pwd)
BUILD_DIR=${1:-$SRC_DIR/build-lint}

command -v cmake >/dev/null 2>&1 || {
    echo "skip: no cmake in PATH"
    exit 77
}
command -v c++ >/dev/null 2>&1 || command -v g++ >/dev/null 2>&1 || {
    echo "skip: no C++ compiler in PATH"
    exit 77
}

mkdir -p "$BUILD_DIR"
BUILD_LOG="$BUILD_DIR/tdram-lint-build.log"

# The linter is dependency-free (no GTest/benchmark/zstd);
# TDRAM_LINT_ONLY configures just its targets, so this works on
# runners without the simulator's test/bench packages installed.
if ! cmake -B "$BUILD_DIR" -S "$SRC_DIR" \
        -DCMAKE_BUILD_TYPE=Release \
        -DTDRAM_LINT_ONLY=ON >"$BUILD_LOG" 2>&1; then
    cat "$BUILD_LOG"
    echo "error: cmake configure failed (toolchain problem, not a lint finding)"
    exit 2
fi
if ! cmake --build "$BUILD_DIR" --target tdram_lint -j >>"$BUILD_LOG" 2>&1; then
    cat "$BUILD_LOG"
    echo "error: tdram_lint build failed (toolchain problem, not a lint finding)"
    exit 2
fi

LOG="$BUILD_DIR/tdram-lint.log"
if "$BUILD_DIR/tools/tdram_lint" --root "$SRC_DIR" >"$LOG" 2>&1; then
    cat "$LOG"
    exit 0
fi
cat "$LOG"
echo "FAIL: tdram_lint reported findings (see above / $LOG)"
exit 1
