#!/bin/sh
# cppcheck analysis gate (DESIGN.md §11): warning/performance/
# portability checks over all first-party code, failing on any
# unsuppressed diagnostic. Suppressions live in .cppcheck-suppressions
# with a rationale each.
#
# Usage: run_cppcheck.sh
# Exit codes: 0 clean, 1 diagnostics, 77 skip (cppcheck missing —
# the container image has only gcc; CI installs cppcheck).

set -u

SRC_DIR=$(cd "$(dirname "$0")/.." && pwd)
CPPCHECK=${CPPCHECK:-cppcheck}
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}

command -v "$CPPCHECK" >/dev/null 2>&1 || {
    echo "skip: no $CPPCHECK in PATH"
    exit 77
}

"$CPPCHECK" \
    --enable=warning,performance,portability \
    --error-exitcode=1 \
    --inline-suppr \
    --suppressions-list="$SRC_DIR/.cppcheck-suppressions" \
    --std=c++20 \
    --language=c++ \
    -j "$JOBS" \
    -I "$SRC_DIR/src" \
    -I "$SRC_DIR/tests" \
    --quiet \
    "$SRC_DIR/src" "$SRC_DIR/bench" "$SRC_DIR/tools" \
    "$SRC_DIR/examples" "$SRC_DIR/tests" || {
    echo "FAIL: cppcheck reported diagnostics (see above)"
    exit 1
}
echo "PASS: cppcheck clean"
exit 0
