# Empty compiler generated dependencies file for tdram_tests.
# This may be replaced when dependencies are built.
