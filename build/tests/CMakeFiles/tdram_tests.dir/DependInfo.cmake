
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/address_map_test.cpp" "tests/CMakeFiles/tdram_tests.dir/address_map_test.cpp.o" "gcc" "tests/CMakeFiles/tdram_tests.dir/address_map_test.cpp.o.d"
  "/root/repo/tests/channel_stress_test.cpp" "tests/CMakeFiles/tdram_tests.dir/channel_stress_test.cpp.o" "gcc" "tests/CMakeFiles/tdram_tests.dir/channel_stress_test.cpp.o.d"
  "/root/repo/tests/channel_test.cpp" "tests/CMakeFiles/tdram_tests.dir/channel_test.cpp.o" "gcc" "tests/CMakeFiles/tdram_tests.dir/channel_test.cpp.o.d"
  "/root/repo/tests/core_engine_test.cpp" "tests/CMakeFiles/tdram_tests.dir/core_engine_test.cpp.o" "gcc" "tests/CMakeFiles/tdram_tests.dir/core_engine_test.cpp.o.d"
  "/root/repo/tests/dcache_test.cpp" "tests/CMakeFiles/tdram_tests.dir/dcache_test.cpp.o" "gcc" "tests/CMakeFiles/tdram_tests.dir/dcache_test.cpp.o.d"
  "/root/repo/tests/ecc_test.cpp" "tests/CMakeFiles/tdram_tests.dir/ecc_test.cpp.o" "gcc" "tests/CMakeFiles/tdram_tests.dir/ecc_test.cpp.o.d"
  "/root/repo/tests/energy_test.cpp" "tests/CMakeFiles/tdram_tests.dir/energy_test.cpp.o" "gcc" "tests/CMakeFiles/tdram_tests.dir/energy_test.cpp.o.d"
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/tdram_tests.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/tdram_tests.dir/extensions_test.cpp.o.d"
  "/root/repo/tests/flush_buffer_test.cpp" "tests/CMakeFiles/tdram_tests.dir/flush_buffer_test.cpp.o" "gcc" "tests/CMakeFiles/tdram_tests.dir/flush_buffer_test.cpp.o.d"
  "/root/repo/tests/generator_test.cpp" "tests/CMakeFiles/tdram_tests.dir/generator_test.cpp.o" "gcc" "tests/CMakeFiles/tdram_tests.dir/generator_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/tdram_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/tdram_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/logging_test.cpp" "tests/CMakeFiles/tdram_tests.dir/logging_test.cpp.o" "gcc" "tests/CMakeFiles/tdram_tests.dir/logging_test.cpp.o.d"
  "/root/repo/tests/main_memory_test.cpp" "tests/CMakeFiles/tdram_tests.dir/main_memory_test.cpp.o" "gcc" "tests/CMakeFiles/tdram_tests.dir/main_memory_test.cpp.o.d"
  "/root/repo/tests/overhead_test.cpp" "tests/CMakeFiles/tdram_tests.dir/overhead_test.cpp.o" "gcc" "tests/CMakeFiles/tdram_tests.dir/overhead_test.cpp.o.d"
  "/root/repo/tests/page_policy_test.cpp" "tests/CMakeFiles/tdram_tests.dir/page_policy_test.cpp.o" "gcc" "tests/CMakeFiles/tdram_tests.dir/page_policy_test.cpp.o.d"
  "/root/repo/tests/protocol_test.cpp" "tests/CMakeFiles/tdram_tests.dir/protocol_test.cpp.o" "gcc" "tests/CMakeFiles/tdram_tests.dir/protocol_test.cpp.o.d"
  "/root/repo/tests/reference_model_test.cpp" "tests/CMakeFiles/tdram_tests.dir/reference_model_test.cpp.o" "gcc" "tests/CMakeFiles/tdram_tests.dir/reference_model_test.cpp.o.d"
  "/root/repo/tests/sim_kernel_test.cpp" "tests/CMakeFiles/tdram_tests.dir/sim_kernel_test.cpp.o" "gcc" "tests/CMakeFiles/tdram_tests.dir/sim_kernel_test.cpp.o.d"
  "/root/repo/tests/sram_cache_test.cpp" "tests/CMakeFiles/tdram_tests.dir/sram_cache_test.cpp.o" "gcc" "tests/CMakeFiles/tdram_tests.dir/sram_cache_test.cpp.o.d"
  "/root/repo/tests/stats_test.cpp" "tests/CMakeFiles/tdram_tests.dir/stats_test.cpp.o" "gcc" "tests/CMakeFiles/tdram_tests.dir/stats_test.cpp.o.d"
  "/root/repo/tests/system_test.cpp" "tests/CMakeFiles/tdram_tests.dir/system_test.cpp.o" "gcc" "tests/CMakeFiles/tdram_tests.dir/system_test.cpp.o.d"
  "/root/repo/tests/tag_array_test.cpp" "tests/CMakeFiles/tdram_tests.dir/tag_array_test.cpp.o" "gcc" "tests/CMakeFiles/tdram_tests.dir/tag_array_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/tdram_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/tdram_tests.dir/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tdram_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
