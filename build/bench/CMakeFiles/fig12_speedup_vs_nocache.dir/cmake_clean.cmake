file(REMOVE_RECURSE
  "CMakeFiles/fig12_speedup_vs_nocache.dir/fig12_speedup_vs_nocache.cpp.o"
  "CMakeFiles/fig12_speedup_vs_nocache.dir/fig12_speedup_vs_nocache.cpp.o.d"
  "fig12_speedup_vs_nocache"
  "fig12_speedup_vs_nocache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_speedup_vs_nocache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
