# Empty dependencies file for fig12_speedup_vs_nocache.
# This may be replaced when dependencies are built.
