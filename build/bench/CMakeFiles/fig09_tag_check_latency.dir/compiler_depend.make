# Empty compiler generated dependencies file for fig09_tag_check_latency.
# This may be replaced when dependencies are built.
