file(REMOVE_RECURSE
  "CMakeFiles/fig11_speedup_vs_cl.dir/fig11_speedup_vs_cl.cpp.o"
  "CMakeFiles/fig11_speedup_vs_cl.dir/fig11_speedup_vs_cl.cpp.o.d"
  "fig11_speedup_vs_cl"
  "fig11_speedup_vs_cl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_speedup_vs_cl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
