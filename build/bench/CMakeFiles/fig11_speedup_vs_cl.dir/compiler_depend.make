# Empty compiler generated dependencies file for fig11_speedup_vs_cl.
# This may be replaced when dependencies are built.
