file(REMOVE_RECURSE
  "CMakeFiles/secVE_flush_buffer.dir/secVE_flush_buffer.cpp.o"
  "CMakeFiles/secVE_flush_buffer.dir/secVE_flush_buffer.cpp.o.d"
  "secVE_flush_buffer"
  "secVE_flush_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secVE_flush_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
