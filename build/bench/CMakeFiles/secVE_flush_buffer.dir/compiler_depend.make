# Empty compiler generated dependencies file for secVE_flush_buffer.
# This may be replaced when dependencies are built.
