file(REMOVE_RECURSE
  "CMakeFiles/secVD_predictor.dir/secVD_predictor.cpp.o"
  "CMakeFiles/secVD_predictor.dir/secVD_predictor.cpp.o.d"
  "secVD_predictor"
  "secVD_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secVD_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
