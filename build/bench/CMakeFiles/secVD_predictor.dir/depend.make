# Empty dependencies file for secVD_predictor.
# This may be replaced when dependencies are built.
