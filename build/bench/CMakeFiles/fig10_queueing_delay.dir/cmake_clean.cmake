file(REMOVE_RECURSE
  "CMakeFiles/fig10_queueing_delay.dir/fig10_queueing_delay.cpp.o"
  "CMakeFiles/fig10_queueing_delay.dir/fig10_queueing_delay.cpp.o.d"
  "fig10_queueing_delay"
  "fig10_queueing_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_queueing_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
