# Empty dependencies file for fig10_queueing_delay.
# This may be replaced when dependencies are built.
