file(REMOVE_RECURSE
  "CMakeFiles/fig03_motivation_bloat.dir/fig03_motivation_bloat.cpp.o"
  "CMakeFiles/fig03_motivation_bloat.dir/fig03_motivation_bloat.cpp.o.d"
  "fig03_motivation_bloat"
  "fig03_motivation_bloat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_motivation_bloat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
