# Empty dependencies file for fig03_motivation_bloat.
# This may be replaced when dependencies are built.
