# Empty compiler generated dependencies file for table4_bandwidth_bloat.
# This may be replaced when dependencies are built.
