file(REMOVE_RECURSE
  "CMakeFiles/table4_bandwidth_bloat.dir/table4_bandwidth_bloat.cpp.o"
  "CMakeFiles/table4_bandwidth_bloat.dir/table4_bandwidth_bloat.cpp.o.d"
  "table4_bandwidth_bloat"
  "table4_bandwidth_bloat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_bandwidth_bloat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
