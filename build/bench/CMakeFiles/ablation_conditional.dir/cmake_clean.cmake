file(REMOVE_RECURSE
  "CMakeFiles/ablation_conditional.dir/ablation_conditional.cpp.o"
  "CMakeFiles/ablation_conditional.dir/ablation_conditional.cpp.o.d"
  "ablation_conditional"
  "ablation_conditional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_conditional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
