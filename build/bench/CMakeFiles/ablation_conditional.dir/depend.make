# Empty dependencies file for ablation_conditional.
# This may be replaced when dependencies are built.
