# Empty compiler generated dependencies file for secVF_associativity.
# This may be replaced when dependencies are built.
