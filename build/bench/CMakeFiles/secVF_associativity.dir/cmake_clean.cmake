file(REMOVE_RECURSE
  "CMakeFiles/secVF_associativity.dir/secVF_associativity.cpp.o"
  "CMakeFiles/secVF_associativity.dir/secVF_associativity.cpp.o.d"
  "secVF_associativity"
  "secVF_associativity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secVF_associativity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
