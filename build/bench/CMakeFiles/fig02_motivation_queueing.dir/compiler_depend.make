# Empty compiler generated dependencies file for fig02_motivation_queueing.
# This may be replaced when dependencies are built.
