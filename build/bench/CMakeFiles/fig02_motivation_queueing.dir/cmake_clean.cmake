file(REMOVE_RECURSE
  "CMakeFiles/fig02_motivation_queueing.dir/fig02_motivation_queueing.cpp.o"
  "CMakeFiles/fig02_motivation_queueing.dir/fig02_motivation_queueing.cpp.o.d"
  "fig02_motivation_queueing"
  "fig02_motivation_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_motivation_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
