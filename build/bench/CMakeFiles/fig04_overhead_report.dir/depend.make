# Empty dependencies file for fig04_overhead_report.
# This may be replaced when dependencies are built.
