file(REMOVE_RECURSE
  "CMakeFiles/fig04_overhead_report.dir/fig04_overhead_report.cpp.o"
  "CMakeFiles/fig04_overhead_report.dir/fig04_overhead_report.cpp.o.d"
  "fig04_overhead_report"
  "fig04_overhead_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_overhead_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
