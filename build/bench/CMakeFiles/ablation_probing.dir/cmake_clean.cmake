file(REMOVE_RECURSE
  "CMakeFiles/ablation_probing.dir/ablation_probing.cpp.o"
  "CMakeFiles/ablation_probing.dir/ablation_probing.cpp.o.d"
  "ablation_probing"
  "ablation_probing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_probing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
