# Empty dependencies file for ablation_probing.
# This may be replaced when dependencies are built.
