file(REMOVE_RECURSE
  "CMakeFiles/fig05_07_timing_diagrams.dir/fig05_07_timing_diagrams.cpp.o"
  "CMakeFiles/fig05_07_timing_diagrams.dir/fig05_07_timing_diagrams.cpp.o.d"
  "fig05_07_timing_diagrams"
  "fig05_07_timing_diagrams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_07_timing_diagrams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
