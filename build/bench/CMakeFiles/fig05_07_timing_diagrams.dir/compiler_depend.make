# Empty compiler generated dependencies file for fig05_07_timing_diagrams.
# This may be replaced when dependencies are built.
