src/CMakeFiles/tdram_sim.dir/tdram/overhead.cc.o: \
 /root/repo/src/tdram/overhead.cc /usr/include/stdc-predef.h \
 /root/repo/src/tdram/overhead.hh
