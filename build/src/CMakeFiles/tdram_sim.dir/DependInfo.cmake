
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dcache/conventional.cc" "src/CMakeFiles/tdram_sim.dir/dcache/conventional.cc.o" "gcc" "src/CMakeFiles/tdram_sim.dir/dcache/conventional.cc.o.d"
  "/root/repo/src/dcache/dram_cache.cc" "src/CMakeFiles/tdram_sim.dir/dcache/dram_cache.cc.o" "gcc" "src/CMakeFiles/tdram_sim.dir/dcache/dram_cache.cc.o.d"
  "/root/repo/src/dcache/factory.cc" "src/CMakeFiles/tdram_sim.dir/dcache/factory.cc.o" "gcc" "src/CMakeFiles/tdram_sim.dir/dcache/factory.cc.o.d"
  "/root/repo/src/dcache/in_dram.cc" "src/CMakeFiles/tdram_sim.dir/dcache/in_dram.cc.o" "gcc" "src/CMakeFiles/tdram_sim.dir/dcache/in_dram.cc.o.d"
  "/root/repo/src/dcache/simple.cc" "src/CMakeFiles/tdram_sim.dir/dcache/simple.cc.o" "gcc" "src/CMakeFiles/tdram_sim.dir/dcache/simple.cc.o.d"
  "/root/repo/src/dram/channel.cc" "src/CMakeFiles/tdram_sim.dir/dram/channel.cc.o" "gcc" "src/CMakeFiles/tdram_sim.dir/dram/channel.cc.o.d"
  "/root/repo/src/dram/main_memory.cc" "src/CMakeFiles/tdram_sim.dir/dram/main_memory.cc.o" "gcc" "src/CMakeFiles/tdram_sim.dir/dram/main_memory.cc.o.d"
  "/root/repo/src/dram/timing.cc" "src/CMakeFiles/tdram_sim.dir/dram/timing.cc.o" "gcc" "src/CMakeFiles/tdram_sim.dir/dram/timing.cc.o.d"
  "/root/repo/src/energy/energy.cc" "src/CMakeFiles/tdram_sim.dir/energy/energy.cc.o" "gcc" "src/CMakeFiles/tdram_sim.dir/energy/energy.cc.o.d"
  "/root/repo/src/mem/types.cc" "src/CMakeFiles/tdram_sim.dir/mem/types.cc.o" "gcc" "src/CMakeFiles/tdram_sim.dir/mem/types.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/tdram_sim.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/tdram_sim.dir/sim/logging.cc.o.d"
  "/root/repo/src/stats/stats.cc" "src/CMakeFiles/tdram_sim.dir/stats/stats.cc.o" "gcc" "src/CMakeFiles/tdram_sim.dir/stats/stats.cc.o.d"
  "/root/repo/src/system/system.cc" "src/CMakeFiles/tdram_sim.dir/system/system.cc.o" "gcc" "src/CMakeFiles/tdram_sim.dir/system/system.cc.o.d"
  "/root/repo/src/tdram/ecc.cc" "src/CMakeFiles/tdram_sim.dir/tdram/ecc.cc.o" "gcc" "src/CMakeFiles/tdram_sim.dir/tdram/ecc.cc.o.d"
  "/root/repo/src/tdram/overhead.cc" "src/CMakeFiles/tdram_sim.dir/tdram/overhead.cc.o" "gcc" "src/CMakeFiles/tdram_sim.dir/tdram/overhead.cc.o.d"
  "/root/repo/src/workload/core_engine.cc" "src/CMakeFiles/tdram_sim.dir/workload/core_engine.cc.o" "gcc" "src/CMakeFiles/tdram_sim.dir/workload/core_engine.cc.o.d"
  "/root/repo/src/workload/profiles.cc" "src/CMakeFiles/tdram_sim.dir/workload/profiles.cc.o" "gcc" "src/CMakeFiles/tdram_sim.dir/workload/profiles.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/CMakeFiles/tdram_sim.dir/workload/trace.cc.o" "gcc" "src/CMakeFiles/tdram_sim.dir/workload/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
