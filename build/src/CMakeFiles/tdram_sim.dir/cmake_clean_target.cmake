file(REMOVE_RECURSE
  "libtdram_sim.a"
)
