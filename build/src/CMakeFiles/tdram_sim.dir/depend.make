# Empty dependencies file for tdram_sim.
# This may be replaced when dependencies are built.
