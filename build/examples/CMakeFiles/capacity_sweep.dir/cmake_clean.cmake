file(REMOVE_RECURSE
  "CMakeFiles/capacity_sweep.dir/capacity_sweep.cpp.o"
  "CMakeFiles/capacity_sweep.dir/capacity_sweep.cpp.o.d"
  "capacity_sweep"
  "capacity_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
