file(REMOVE_RECURSE
  "CMakeFiles/tdram_cli.dir/tdram_cli.cpp.o"
  "CMakeFiles/tdram_cli.dir/tdram_cli.cpp.o.d"
  "tdram_cli"
  "tdram_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdram_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
