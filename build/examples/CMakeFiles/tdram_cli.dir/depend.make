# Empty dependencies file for tdram_cli.
# This may be replaced when dependencies are built.
