# Empty dependencies file for hpc_workload_study.
# This may be replaced when dependencies are built.
