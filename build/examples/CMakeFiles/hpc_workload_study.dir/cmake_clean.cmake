file(REMOVE_RECURSE
  "CMakeFiles/hpc_workload_study.dir/hpc_workload_study.cpp.o"
  "CMakeFiles/hpc_workload_study.dir/hpc_workload_study.cpp.o.d"
  "hpc_workload_study"
  "hpc_workload_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_workload_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
