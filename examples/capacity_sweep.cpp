/**
 * @file
 * Capacity sweep: how DRAM-cache size moves the miss ratio and the
 * TDRAM-vs-CascadeLake gap for one workload. Demonstrates the sweep
 * pattern users need for design-space exploration; emits CSV so the
 * output drops straight into a plotting pipeline. The grid runs on
 * the SweepRunner pool (--jobs N, default hardware_concurrency);
 * rows are printed in grid order, so the CSV is byte-identical for
 * any worker count.
 *
 * Usage: capacity_sweep [workload] [opsPerCore] [--jobs N]
 *                       [--trace PREFIX] > sweep.csv
 *
 * --trace PREFIX writes one .tdt event trace per grid point
 * (PREFIX_jobNNN.tdt); the files are byte-identical for any --jobs
 * value, which the CI determinism gate checks with trace_tool diff.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/sweep_runner.hh"
#include "system/system.hh"

int
main(int argc, char **argv)
{
    using namespace tsim;

    std::string wl_name = "is.D";
    std::uint64_t ops = 6000;
    unsigned jobs = 0;
    std::string trace_prefix;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--trace") == 0 &&
                   i + 1 < argc) {
            trace_prefix = argv[++i];
        } else {
            positional.push_back(argv[i]);
        }
    }
    if (positional.size() > 0)
        wl_name = positional[0];
    if (positional.size() > 1)
        ops = std::strtoull(positional[1].c_str(), nullptr, 10);

    const WorkloadProfile &wl = findWorkload(wl_name);

    std::vector<SweepJob> sweep;
    std::vector<unsigned> mibs;
    for (unsigned mib : {4u, 8u, 16u, 32u, 64u}) {
        for (Design d : {Design::CascadeLake, Design::Tdram}) {
            SweepJob job;
            job.cfg.design = d;
            job.cfg.dcacheCapacity = static_cast<std::uint64_t>(mib)
                                     << 20;
            job.cfg.cores.opsPerCore = ops;
            job.workload = wl;
            sweep.push_back(std::move(job));
            mibs.push_back(mib);
        }
    }

    applyTracePrefix(sweep, trace_prefix);

    const SweepRunner runner(jobs);
    const std::vector<SimReport> reports = runner.run(sweep);

    std::printf("workload,capacity_mib,design,miss_ratio,"
                "tag_check_ns,read_latency_ns,runtime_us,bloat\n");
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const SimReport &r = reports[i];
        std::printf("%s,%u,%s,%.4f,%.2f,%.2f,%.1f,%.3f\n",
                    wl.name.c_str(), mibs[i], r.design.c_str(),
                    r.missRatio, r.tagCheckNs, r.demandReadLatencyNs,
                    r.runtimeNs() / 1e3, r.bloat);
    }
    return 0;
}
