/**
 * @file
 * Capacity sweep: how DRAM-cache size moves the miss ratio and the
 * TDRAM-vs-CascadeLake gap for one workload. Demonstrates the sweep
 * pattern users need for design-space exploration; emits CSV so the
 * output drops straight into a plotting pipeline.
 *
 * Usage: capacity_sweep [workload] [opsPerCore] > sweep.csv
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "system/system.hh"

int
main(int argc, char **argv)
{
    using namespace tsim;

    const std::string wl_name = argc > 1 ? argv[1] : "is.D";
    const std::uint64_t ops =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 6000;
    const WorkloadProfile &wl = findWorkload(wl_name);

    std::printf("workload,capacity_mib,design,miss_ratio,"
                "tag_check_ns,read_latency_ns,runtime_us,bloat\n");
    for (unsigned mib : {4u, 8u, 16u, 32u, 64u}) {
        for (Design d : {Design::CascadeLake, Design::Tdram}) {
            SystemConfig cfg;
            cfg.design = d;
            cfg.dcacheCapacity = static_cast<std::uint64_t>(mib) << 20;
            cfg.cores.opsPerCore = ops;
            const SimReport r = runOne(cfg, wl);
            std::printf("%s,%u,%s,%.4f,%.2f,%.2f,%.1f,%.3f\n",
                        wl.name.c_str(), mib, r.design.c_str(),
                        r.missRatio, r.tagCheckNs,
                        r.demandReadLatencyNs, r.runtimeNs() / 1e3,
                        r.bloat);
        }
    }
    return 0;
}
