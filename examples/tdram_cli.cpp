/**
 * @file
 * tdram_cli — command-line driver for the simulator.
 *
 *   tdram_cli list
 *       Show the 28 workload profiles.
 *   tdram_cli run <workload> <design> [options]
 *       One simulation; prints the report (add --stats for the full
 *       statistics tree, --csv for machine-readable output).
 *   tdram_cli compare <workload> [options]
 *       Every design on one workload, one row each.
 *   tdram_cli sweep <workload> <design> <param> <v1,v2,...> [options]
 *       Parameter sweep; param in {capacity_mib, ways, flush,
 *       channels, mlp, prefetch}. CSV to stdout.
 *
 * Common options: --ops N, --warmup N, --seed N, --capacity MiB,
 * --ways W, --no-probe, --open-page, --predictor.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "system/system.hh"

namespace
{

using namespace tsim;

struct CliOptions
{
    std::uint64_t ops = 8000;
    std::uint64_t warmup = 150000;
    std::uint64_t seed = 1;
    std::uint64_t capacityMib = 16;
    unsigned ways = 1;
    bool noProbe = false;
    bool openPage = false;
    bool predictor = false;
    bool fullStats = false;
    bool csv = false;
    bool json = false;  ///< run: print reportJson() instead of text
    bool check = false;  ///< inline protocol checker on every run
    std::string tracePath;  ///< .tdt output (run) / prefix (others)
    std::string replayPath; ///< .tdtz input (replay front end)
    ReplayMode replayMode = ReplayMode::Timed;
    unsigned replayMlp = 0;  ///< outstanding-read cap; 0 = unlimited
    bool threadsSet = false;  ///< --threads given (0 = single-queue)
    unsigned threads = 0;     ///< shard-engine execution threads
    std::uint64_t window = 0; ///< shard window override in ticks
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: tdram_cli <list|run|compare|sweep> [args] [options]\n"
        "  run <workload> <design>\n"
        "  compare <workload>\n"
        "  sweep <workload> <design> <param> <v1,v2,...>\n"
        "options: --ops N --warmup N --seed N --capacity MiB\n"
        "         --ways W --no-probe --open-page --predictor\n"
        "         --stats --csv --json --trace PATH --check\n"
        "         --threads N --window TICKS\n"
        "         --replay FILE.tdtz --replay-mode timed|afap\n"
        "         --replay-mlp N\n"
        "  --trace writes a .tdt event trace (run: exactly PATH;\n"
        "  compare/sweep: PATH is a prefix, one file per run)\n"
        "  --replay drives the run with a recorded .tdtz request\n"
        "  stream instead of the synthetic generators (make one with\n"
        "  'trace_tool convert'); --warmup then counts records. The\n"
        "  workload argument still names the run. timed replays at\n"
        "  the recorded inter-arrival times; afap issues as fast as\n"
        "  the controller accepts. --replay-mlp caps outstanding\n"
        "  reads (0 = unlimited).\n"
        "  --check audits every command with the inline protocol\n"
        "  checker (exit 1 on any violation)\n"
        "  --threads runs the sharded engine (one shard per DRAM\n"
        "  channel); output is byte-identical for any N, and N=0\n"
        "  auto-detects the hardware thread count. Omit the flag\n"
        "  for the classic single-queue engine.\n"
        "  --window overrides the shard window width in ticks\n"
        "  (default: the minimum tBURST over all channels)\n");
    std::exit(1);
}

CliOptions
parseOptions(int argc, char **argv, int first)
{
    CliOptions o;
    for (int i = first; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::uint64_t {
            if (i + 1 >= argc)
                usage();
            return std::strtoull(argv[++i], nullptr, 10);
        };
        if (a == "--ops") {
            o.ops = next();
        } else if (a == "--warmup") {
            o.warmup = next();
        } else if (a == "--seed") {
            o.seed = next();
        } else if (a == "--capacity") {
            o.capacityMib = next();
        } else if (a == "--ways") {
            o.ways = static_cast<unsigned>(next());
        } else if (a == "--no-probe") {
            o.noProbe = true;
        } else if (a == "--open-page") {
            o.openPage = true;
        } else if (a == "--predictor") {
            o.predictor = true;
        } else if (a == "--stats") {
            o.fullStats = true;
        } else if (a == "--csv") {
            o.csv = true;
        } else if (a == "--json") {
            o.json = true;
        } else if (a == "--trace") {
            if (i + 1 >= argc)
                usage();
            o.tracePath = argv[++i];
        } else if (a == "--replay") {
            if (i + 1 >= argc)
                usage();
            o.replayPath = argv[++i];
        } else if (a == "--replay-mode") {
            if (i + 1 >= argc)
                usage();
            if (!parseReplayMode(argv[++i], o.replayMode)) {
                std::fprintf(stderr,
                             "--replay-mode wants timed or afap\n");
                usage();
            }
        } else if (a == "--replay-mlp") {
            o.replayMlp = static_cast<unsigned>(next());
        } else if (a == "--check") {
            o.check = true;
        } else if (a == "--threads") {
            o.threadsSet = true;
            o.threads = static_cast<unsigned>(next());
            if (o.threads == 0) {
                // Satellite of the sharding work: 0 auto-detects
                // instead of erroring (mirrors SweepRunner --jobs 0).
                const unsigned hw = std::thread::hardware_concurrency();
                o.threads = hw ? hw : 1;
            }
        } else if (a == "--window") {
            o.window = next();
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            usage();
        }
    }
    return o;
}

Design
parseDesign(const std::string &s)
{
    const Design all[] = {Design::CascadeLake, Design::Alloy,
                          Design::Bear,        Design::Ndc,
                          Design::Tdram,       Design::TdramNoProbe,
                          Design::Ideal,       Design::NoCache,
                          Design::TicToc,      Design::Banshee};
    for (Design d : all) {
        if (s == designName(d))
            return d;
    }
    std::fprintf(stderr, "unknown design '%s'; one of:", s.c_str());
    for (Design d : all)
        std::fprintf(stderr, " %s", designName(d));
    std::fprintf(stderr, "\n");
    std::exit(1);
}

SystemConfig
makeConfig(const CliOptions &o, Design d)
{
    SystemConfig cfg;
    cfg.design = o.noProbe && d == Design::Tdram
                     ? Design::TdramNoProbe
                     : d;
    cfg.dcacheCapacity = o.capacityMib << 20;
    cfg.dcacheWays = o.ways;
    cfg.predictor = o.predictor;
    cfg.dcachePagePolicy =
        o.openPage ? PagePolicy::Open : PagePolicy::Close;
    cfg.cores.opsPerCore = o.ops;
    cfg.warmupOpsPerCore = o.warmup;
    cfg.seed = o.seed;
    cfg.checkProtocol = o.check;
    cfg.replay.path = o.replayPath;
    cfg.replay.mode = o.replayMode;
    cfg.replay.mlp = o.replayMlp;
    if (o.threadsSet) {
        cfg.threads = o.threads;
        cfg.shardWindow = o.window;
    }
    if (o.check && !checkCompiledIn()) {
        std::fprintf(stderr,
                     "warning: --check requested but the protocol "
                     "checker is compiled out (TDRAM_CHECK=0)\n");
    }
    return cfg;
}

void
printCsvHeader()
{
    std::printf("workload,design,runtime_us,miss_ratio,tag_check_ns,"
                "read_q_delay_ns,read_latency_ns,bloat,unuseful_frac,"
                "energy_mj,probes,flush_stalls\n");
}

void
printCsvRow(const SimReport &r)
{
    std::printf("%s,%s,%.2f,%.4f,%.2f,%.2f,%.2f,%.3f,%.4f,%.4f,"
                "%llu,%llu\n",
                r.workload.c_str(), r.design.c_str(),
                r.runtimeNs() / 1e3, r.missRatio, r.tagCheckNs,
                r.readQueueDelayNs, r.demandReadLatencyNs, r.bloat,
                r.unusefulFrac, r.energy.totalJ() * 1e3,
                (unsigned long long)r.probes,
                (unsigned long long)r.flushStalls);
}

void
printHuman(const SimReport &r)
{
    std::printf("%s on %s\n", r.design.c_str(), r.workload.c_str());
    std::printf("  runtime        %10.1f us\n", r.runtimeNs() / 1e3);
    std::printf("  demands        %10llu reads, %llu writes\n",
                (unsigned long long)r.demandReads,
                (unsigned long long)r.demandWrites);
    std::printf("  miss ratio     %10.3f  (%s group)\n", r.missRatio,
                r.highMiss ? "high" : "low");
    std::printf("  tag check      %10.2f ns\n", r.tagCheckNs);
    std::printf("  read q delay   %10.2f ns\n", r.readQueueDelayNs);
    std::printf("  read latency   %10.2f ns\n", r.demandReadLatencyNs);
    std::printf("  bloat          %10.2f  (unuseful %.1f%%)\n",
                r.bloat, r.unusefulFrac * 100);
    std::printf("  energy         %10.3f mJ\n",
                r.energy.totalJ() * 1e3);
    if (r.probes)
        std::printf("  probes         %10llu\n",
                    (unsigned long long)r.probes);
    if (!r.replaySource.empty()) {
        std::printf("  replay         %s (%s, %llu records)\n",
                    r.replaySource.c_str(), r.replayMode.c_str(),
                    (unsigned long long)r.replayRecords);
    }
}

int
cmdList()
{
    std::printf("%-9s %-7s %-9s %9s %7s %6s %6s\n", "workload",
                "suite", "kind", "footprint", "store%", "alpha",
                "group");
    for (const auto &w : allWorkloads()) {
        const char *kind =
            w.kind == GenKind::Stream    ? "stream"
            : w.kind == GenKind::Random  ? "random"
            : w.kind == GenKind::Zipf    ? "zipf"
            : w.kind == GenKind::Stencil ? "stencil"
                                         : "graphmix";
        std::printf("%-9s %-7s %-9s %8.2fx %6.0f%% %6.2f %6s\n",
                    w.name.c_str(), w.suite.c_str(), kind,
                    w.footprintScale, w.storeFraction * 100,
                    w.zipfAlpha, w.highMiss ? "high" : "low");
    }
    return 0;
}

int
cmdRun(int argc, char **argv)
{
    if (argc < 4)
        usage();
    const CliOptions o = parseOptions(argc, argv, 4);
    const WorkloadProfile &wl = findWorkload(argv[2]);
    const Design d = parseDesign(argv[3]);

    SystemConfig cfg = makeConfig(o, d);
    cfg.tracePath = o.tracePath;
    System sys(cfg, wl);
    const SimReport r = sys.run();
    if (o.json) {
        // Metrics the design cannot measure come out null, not 0 —
        // predictor_accuracy only exists when a predictor ran.
        std::printf("%s\n", reportJson(r).c_str());
    } else if (o.csv) {
        printCsvHeader();
        printCsvRow(r);
    } else {
        printHuman(r);
    }
    if (o.fullStats) {
        std::printf("\nfull statistics:\n");
        sys.dumpStats(std::cout);
    }
    if (o.check && !o.csv && !o.json) {
        std::printf("  check          %10llu events, %llu "
                    "violation(s)\n",
                    (unsigned long long)r.checkEvents,
                    (unsigned long long)r.checkViolations);
    }
    return r.checkViolations ? 1 : 0;
}

int
cmdCompare(int argc, char **argv)
{
    if (argc < 3)
        usage();
    const CliOptions o = parseOptions(argc, argv, 3);
    const WorkloadProfile &wl = findWorkload(argv[2]);
    const Design designs[] = {Design::NoCache, Design::CascadeLake,
                              Design::Alloy,   Design::Bear,
                              Design::Ndc,     Design::TicToc,
                              Design::Banshee, Design::Tdram,
                              Design::Ideal};
    if (o.csv)
        printCsvHeader();
    else
        std::printf("%-14s %11s %8s %9s %9s %7s %9s\n", "design",
                    "runtime_us", "missR", "tagChk", "rdLat", "bloat",
                    "energy_mJ");
    std::uint64_t violations = 0;
    for (Design d : designs) {
        SystemConfig cfg = makeConfig(o, d);
        if (!o.tracePath.empty())
            cfg.tracePath = o.tracePath + "_" + designName(d) + ".tdt";
        const SimReport r = runOne(cfg, wl);
        violations += r.checkViolations;
        if (o.csv) {
            printCsvRow(r);
        } else {
            std::printf(
                "%-14s %11.1f %8.3f %9.2f %9.2f %7.2f %9.3f\n",
                r.design.c_str(), r.runtimeNs() / 1e3, r.missRatio,
                r.tagCheckNs, r.demandReadLatencyNs, r.bloat,
                r.energy.totalJ() * 1e3);
        }
    }
    return violations ? 1 : 0;
}

int
cmdSweep(int argc, char **argv)
{
    if (argc < 6)
        usage();
    const CliOptions o = parseOptions(argc, argv, 6);
    const WorkloadProfile &wl = findWorkload(argv[2]);
    const Design d = parseDesign(argv[3]);
    const std::string param = argv[4];

    std::vector<std::uint64_t> values;
    std::stringstream ss(argv[5]);
    std::string item;
    while (std::getline(ss, item, ','))
        values.push_back(std::strtoull(item.c_str(), nullptr, 10));
    if (values.empty())
        usage();

    std::printf("param,value,");
    printCsvHeader();
    std::uint64_t violations = 0;
    for (std::uint64_t v : values) {
        SystemConfig cfg = makeConfig(o, d);
        if (param == "capacity_mib") {
            cfg.dcacheCapacity = v << 20;
        } else if (param == "ways") {
            cfg.dcacheWays = static_cast<unsigned>(v);
        } else if (param == "flush") {
            cfg.flushEntries = static_cast<unsigned>(v);
        } else if (param == "channels") {
            cfg.dcacheChannels = static_cast<unsigned>(v);
        } else if (param == "mlp") {
            cfg.cores.mlp = static_cast<unsigned>(v);
        } else if (param == "prefetch") {
            cfg.prefetchDegree = static_cast<unsigned>(v);
        } else {
            std::fprintf(stderr, "unknown sweep param '%s'\n",
                         param.c_str());
            usage();
        }
        if (!o.tracePath.empty()) {
            cfg.tracePath = o.tracePath + "_" + param + "_" +
                            std::to_string(v) + ".tdt";
        }
        const SimReport r = runOne(cfg, wl);
        violations += r.checkViolations;
        std::printf("%s,%llu,", param.c_str(),
                    (unsigned long long)v);
        printCsvRow(r);
    }
    return violations ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string cmd = argv[1];
    if (cmd == "list")
        return cmdList();
    if (cmd == "run")
        return cmdRun(argc, argv);
    if (cmd == "compare")
        return cmdCompare(argc, argv);
    if (cmd == "sweep")
        return cmdSweep(argc, argv);
    usage();
}
