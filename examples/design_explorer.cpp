/**
 * @file
 * Design explorer: run one workload on one design and dump the full
 * statistics tree plus the access-outcome breakdown — the tool to
 * reach for when a number in a benchmark looks surprising.
 *
 * Usage: design_explorer [workload] [design] [opsPerCore]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "system/system.hh"

namespace
{

tsim::Design
parseDesign(const std::string &s)
{
    using tsim::Design;
    const Design all[] = {Design::CascadeLake, Design::Alloy,
                          Design::Bear,        Design::Ndc,
                          Design::Tdram,       Design::TdramNoProbe,
                          Design::Ideal,       Design::NoCache};
    for (Design d : all) {
        if (s == tsim::designName(d))
            return d;
    }
    std::fprintf(stderr, "unknown design '%s'\n", s.c_str());
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tsim;

    const std::string wl_name = argc > 1 ? argv[1] : "ft.C";
    const std::string design = argc > 2 ? argv[2] : "TDRAM";
    const std::uint64_t ops =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 20000;

    SystemConfig cfg;
    cfg.design = parseDesign(design);
    cfg.cores.opsPerCore = ops;

    System sys(cfg, findWorkload(wl_name));
    SimReport r = sys.run();

    std::printf("== %s on %s ==\n", r.design.c_str(),
                r.workload.c_str());
    std::printf("runtime          %.1f us\n", r.runtimeNs() / 1e3);
    std::printf("demands          %llu reads, %llu writes\n",
                (unsigned long long)r.demandReads,
                (unsigned long long)r.demandWrites);
    std::printf("miss ratio       %.3f\n", r.missRatio);
    std::printf("tag check        %.2f ns\n", r.tagCheckNs);
    std::printf("read q delay     %.2f ns\n", r.readQueueDelayNs);
    std::printf("read latency     %.2f ns\n", r.demandReadLatencyNs);
    std::printf("bloat factor     %.2f (unuseful %.1f%%)\n", r.bloat,
                r.unusefulFrac * 100);
    std::printf("energy           %.3f mJ (cache %.3f, mm %.3f)\n",
                r.energy.totalJ() * 1e3, r.energy.cacheJ() * 1e3,
                r.energy.mmJ() * 1e3);
    std::printf("flush buffer     max %.0f, avg %.1f, stalls %llu\n",
                r.flushMaxOcc, r.flushAvgOcc,
                (unsigned long long)r.flushStalls);
    std::printf("probes           %llu\n", (unsigned long long)r.probes);
    std::printf("\noutcome breakdown:\n");
    for (unsigned i = 0;
         i < static_cast<unsigned>(AccessOutcome::NumOutcomes); ++i) {
        if (r.outcomeFrac[i] > 0) {
            std::printf("  %-20s %6.2f%%\n",
                        outcomeName(static_cast<AccessOutcome>(i)),
                        r.outcomeFrac[i] * 100);
        }
    }
    std::printf("\nfull statistics:\n");
    sys.dumpStats(std::cout);
    return 0;
}
