/**
 * @file
 * Design explorer. Two modes:
 *
 *  - Single run (default): run one workload on one design and dump
 *    the full statistics tree plus the access-outcome breakdown —
 *    the tool to reach for when a number in a benchmark looks
 *    surprising.
 *  - Sweep (--sweep): run the full (design x workload) grid on the
 *    SweepRunner thread pool and print one deterministic summary
 *    line per run. Output is byte-identical for any --jobs value;
 *    host throughput goes to stderr.
 *
 * Usage: design_explorer [workload] [design] [opsPerCore]
 *                        [--trace PATH] [--replay FILE.tdtz]
 *                        [--replay-mode timed|afap]
 *        design_explorer --sweep [--full] [--jobs N] [--ops N]
 *                        [--trace PREFIX] [--replay FILE.tdtz]
 *                        [--replay-mode timed|afap]
 *
 * --trace writes .tdt event traces (single run: exactly PATH; sweep:
 * PREFIX_jobNNN.tdt per grid point, byte-identical for any --jobs).
 * --replay drives every run with a recorded .tdtz request stream
 * instead of the synthetic generators; in sweep mode each job opens
 * its own decoder cursor on the shared file, so serial and --jobs N
 * sweeps stay byte-identical.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "sim/sweep_runner.hh"
#include "system/system.hh"

namespace
{

tsim::Design
parseDesign(const std::string &s)
{
    using tsim::Design;
    const Design all[] = {Design::CascadeLake, Design::Alloy,
                          Design::Bear,        Design::Ndc,
                          Design::Tdram,       Design::TdramNoProbe,
                          Design::Ideal,       Design::NoCache,
                          Design::TicToc,      Design::Banshee};
    for (Design d : all) {
        if (s == tsim::designName(d))
            return d;
    }
    std::fprintf(stderr, "unknown design '%s'\n", s.c_str());
    std::exit(1);
}

int
runSweep(bool full, unsigned jobs, std::uint64_t ops,
         const std::string &trace_prefix,
         const tsim::ReplayConfig &replay)
{
    using namespace tsim;

    const Design designs[] = {Design::CascadeLake, Design::Alloy,
                              Design::Bear,        Design::Ndc,
                              Design::TicToc,      Design::Banshee,
                              Design::Tdram,       Design::TdramNoProbe,
                              Design::Ideal};
    const std::vector<WorkloadProfile> workloads =
        full ? allWorkloads() : representativeWorkloads();

    std::vector<SweepJob> sweep;
    for (const auto &wl : workloads) {
        for (Design d : designs) {
            SweepJob job;
            job.cfg.design = d;
            job.cfg.cores.opsPerCore = ops;
            job.cfg.replay = replay;
            job.workload = wl;
            sweep.push_back(std::move(job));
        }
    }

    applyTracePrefix(sweep, trace_prefix);

    const SweepRunner runner(jobs);
    const HostTimer timer;
    const std::vector<SimReport> reports = runner.run(sweep);
    const double wall = timer.seconds();

    std::printf("%-9s %-12s %12s %9s %9s %9s %9s\n", "workload",
                "design", "runtime_us", "miss", "rd_lat", "bloat",
                "energy_mJ");
    HostPerf perf;
    for (const SimReport &r : reports) {
        perf.merge(r.hostPerf);
        std::printf("%-9s %-12s %12.1f %9.4f %9.2f %9.3f %9.3f\n",
                    r.workload.c_str(), r.design.c_str(),
                    r.runtimeNs() / 1e3, r.missRatio,
                    r.demandReadLatencyNs, r.bloat,
                    r.energy.totalJ() * 1e3);
    }
    std::fprintf(stderr,
                 "[host] %zu runs on %u workers: %.2fs wall "
                 "(%.2fs cpu), %.2fM events/s aggregate\n",
                 reports.size(), runner.jobs(), wall,
                 perf.hostSeconds, perf.eventsPerSec() / 1e6);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tsim;

    bool sweep = false;
    bool full = false;
    unsigned jobs = 0;
    std::uint64_t ops = 20000;
    std::string trace_path;
    ReplayConfig replay;
    std::vector<std::string> positional;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--sweep") == 0) {
            sweep = true;
        } else if (std::strcmp(argv[i], "--full") == 0) {
            full = true;
        } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
            ops = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--trace") == 0 &&
                   i + 1 < argc) {
            trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--replay") == 0 &&
                   i + 1 < argc) {
            replay.path = argv[++i];
        } else if (std::strcmp(argv[i], "--replay-mode") == 0 &&
                   i + 1 < argc) {
            if (!parseReplayMode(argv[++i], replay.mode)) {
                std::fprintf(stderr,
                             "--replay-mode wants timed or afap\n");
                return 1;
            }
        } else {
            positional.push_back(argv[i]);
        }
    }

    if (sweep)
        return runSweep(full, jobs, ops, trace_path, replay);

    const std::string wl_name =
        positional.size() > 0 ? positional[0] : "ft.C";
    const std::string design =
        positional.size() > 1 ? positional[1] : "TDRAM";
    if (positional.size() > 2)
        ops = std::strtoull(positional[2].c_str(), nullptr, 10);

    SystemConfig cfg;
    cfg.design = parseDesign(design);
    cfg.cores.opsPerCore = ops;
    cfg.tracePath = trace_path;
    cfg.replay = replay;

    System sys(cfg, findWorkload(wl_name));
    SimReport r = sys.run();

    std::printf("== %s on %s ==\n", r.design.c_str(),
                r.workload.c_str());
    if (!r.replaySource.empty()) {
        std::printf("replay           %s (%s, %llu records)\n",
                    r.replaySource.c_str(), r.replayMode.c_str(),
                    (unsigned long long)r.replayRecords);
    }
    std::printf("runtime          %.1f us\n", r.runtimeNs() / 1e3);
    std::printf("demands          %llu reads, %llu writes\n",
                (unsigned long long)r.demandReads,
                (unsigned long long)r.demandWrites);
    std::printf("miss ratio       %.3f\n", r.missRatio);
    std::printf("tag check        %.2f ns\n", r.tagCheckNs);
    std::printf("read q delay     %.2f ns\n", r.readQueueDelayNs);
    std::printf("read latency     %.2f ns\n", r.demandReadLatencyNs);
    std::printf("bloat factor     %.2f (unuseful %.1f%%)\n", r.bloat,
                r.unusefulFrac * 100);
    std::printf("energy           %.3f mJ (cache %.3f, mm %.3f)\n",
                r.energy.totalJ() * 1e3, r.energy.cacheJ() * 1e3,
                r.energy.mmJ() * 1e3);
    std::printf("flush buffer     max %.0f, avg %.1f, stalls %llu\n",
                r.flushMaxOcc, r.flushAvgOcc,
                (unsigned long long)r.flushStalls);
    std::printf("probes           %llu\n", (unsigned long long)r.probes);
    std::printf("host throughput  %.2fM events/s (%llu events, %.2fs)\n",
                r.hostPerf.eventsPerSec() / 1e6,
                (unsigned long long)r.hostPerf.events,
                r.hostPerf.hostSeconds);
    std::printf("\noutcome breakdown:\n");
    for (unsigned i = 0;
         i < static_cast<unsigned>(AccessOutcome::NumOutcomes); ++i) {
        if (r.outcomeFrac[i] > 0) {
            std::printf("  %-20s %6.2f%%\n",
                        outcomeName(static_cast<AccessOutcome>(i)),
                        r.outcomeFrac[i] * 100);
        }
    }
    std::printf("\nfull statistics:\n");
    sys.dumpStats(std::cout);
    return 0;
}
