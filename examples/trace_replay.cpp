/**
 * @file
 * Trace replay: shows the lower-level public API by assembling a
 * system by hand — MainMemory, a DRAM-cache design, and a CoreEngine
 * fed by a captured memory trace instead of a synthetic profile.
 *
 * With no arguments it first synthesizes a small trace file (so the
 * example is self-contained), then replays it on TDRAM.
 *
 * Usage: trace_replay [trace_file] [design]
 */

#include <cstdio>
#include <string>

#include "system/system.hh"
#include "workload/trace.hh"

namespace
{

/** Synthesize a small mixed trace so the example runs stand-alone. */
tsim::Trace
makeDemoTrace()
{
    using namespace tsim;
    Trace t;
    Rng rng(2024);
    // A strided sweep with a hot random region, 30% stores.
    for (int i = 0; i < 30000; ++i) {
        if (i % 3 == 0) {
            t.add(rng.range(1 << 10) * lineBytes, rng.chance(0.5));
        } else {
            t.add((static_cast<Addr>(i) * 2 % (1 << 16)) * lineBytes,
                  rng.chance(0.3));
        }
    }
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tsim;

    std::string path = argc > 1 ? argv[1] : "";
    if (path.empty()) {
        path = "/tmp/tdram_demo.trace";
        makeDemoTrace().save(path);
        std::printf("synthesized demo trace at %s\n", path.c_str());
    }
    const Trace trace = Trace::load(path);
    std::printf("trace: %zu ops, footprint bound 0x%llx\n",
                trace.size(), (unsigned long long)trace.maxAddr());

    // --- assemble the system by hand ---
    EventQueue eq;

    MainMemoryConfig mm_cfg;
    std::uint64_t cap = 1 << 26;
    while (cap < trace.maxAddr())
        cap <<= 1;
    mm_cfg.capacityBytes = cap;
    MainMemory mm(eq, "mm", mm_cfg);

    DramCacheConfig dc_cfg;
    dc_cfg.capacityBytes = 4ULL << 20;
    auto dcache = makeDramCache(eq, Design::Tdram, dc_cfg, mm);

    CoreConfig core_cfg;
    core_cfg.cores = 4;
    core_cfg.opsPerCore = trace.size() / core_cfg.cores;
    std::vector<std::unique_ptr<AddressGenerator>> gens;
    for (unsigned c = 0; c < core_cfg.cores; ++c) {
        gens.push_back(std::make_unique<TraceReplayGenerator>(
            trace, c, core_cfg.cores));
    }
    CoreEngine engine(eq, "engine", core_cfg, std::move(gens), *dcache,
                      1);

    engine.warmup(2000);
    engine.start();
    while (!engine.done() && eq.step()) {
    }

    std::printf("\nreplayed on TDRAM:\n");
    std::printf("  runtime          %.1f us\n",
                ticksToNs(engine.finishTick()) / 1e3);
    std::printf("  dcache miss      %.3f\n", dcache->missRatio());
    std::printf("  tag check        %.2f ns\n",
                dcache->meanTagCheckLatencyNs());
    std::printf("  read latency     %.2f ns\n",
                engine.demandReadLatency.mean());
    std::printf("  bloat factor     %.2f\n", dcache->bloatFactor());
    return 0;
}
