/**
 * @file
 * Trace replay end-to-end: the record-once / replay-many pipeline
 * from DESIGN.md §14 in one self-contained program.
 *
 * With no arguments it synthesizes a small text request list (so the
 * example runs stand-alone), packs it into a .tdtz container, and
 * replays the container on TDRAM through the same System harness the
 * benchmarks use. Pass an existing .tdtz to replay that instead.
 *
 * Usage: trace_replay [trace.tdtz] [design] [timed|afap]
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "system/system.hh"
#include "trace/tdtz.hh"

namespace
{

/** Synthesize a small mixed request stream: a strided sweep with a
 *  hot random region, 30% stores, ~4 ns apart. */
std::vector<tsim::ReplayRecord>
makeDemoStream()
{
    using namespace tsim;
    std::vector<ReplayRecord> out;
    Rng rng(2024);
    for (int i = 0; i < 30000; ++i) {
        ReplayRecord r;
        if (i % 3 == 0) {
            r.addr = rng.range(1 << 10) * lineBytes;
            r.isWrite = rng.chance(0.5);
        } else {
            r.addr =
                (static_cast<Addr>(i) * 2 % (1 << 16)) * lineBytes;
            r.isWrite = rng.chance(0.3);
        }
        r.delta = nsToTicks(4.0);
        out.push_back(r);
    }
    return out;
}

tsim::Design
parseDesign(const std::string &s)
{
    using tsim::Design;
    const Design all[] = {Design::CascadeLake, Design::Alloy,
                          Design::Bear,        Design::Ndc,
                          Design::Tdram,       Design::TdramNoProbe,
                          Design::Ideal,       Design::NoCache};
    for (Design d : all) {
        if (s == tsim::designName(d))
            return d;
    }
    std::fprintf(stderr, "unknown design '%s'\n", s.c_str());
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tsim;

    std::string path = argc > 1 ? argv[1] : "";
    const std::string design = argc > 2 ? argv[2] : "TDRAM";
    ReplayMode mode = ReplayMode::Timed;
    if (argc > 3 && !parseReplayMode(argv[3], mode)) {
        std::fprintf(stderr, "replay mode wants timed or afap\n");
        return 1;
    }

    if (path.empty()) {
        // Record once: pack the demo stream into a container.
        path = "/tmp/tdram_demo.tdtz";
        TdtzWriter writer(path);
        for (const ReplayRecord &r : makeDemoStream())
            writer.append(r);
        writer.finish();
        std::printf("synthesized demo container at %s\n",
                    path.c_str());
    }

    TdtzReader probe;
    if (!probe.open(path)) {
        std::fprintf(stderr, "trace_replay: %s\n",
                     probe.error().c_str());
        return 1;
    }
    std::printf("container: %llu records, footprint bound 0x%llx\n",
                (unsigned long long)probe.info().records,
                (unsigned long long)probe.info().maxLineAddr);

    // Replay many: any design, any pacing mode, same container.
    SystemConfig cfg;
    cfg.design = parseDesign(design);
    cfg.replay.path = path;
    cfg.replay.mode = mode;
    cfg.warmupOpsPerCore = 2000;

    System sys(cfg, findWorkload("is.C"));
    SimReport r = sys.run();

    std::printf("\nreplayed on %s (%s):\n", r.design.c_str(),
                r.replayMode.c_str());
    std::printf("  records          %llu\n",
                (unsigned long long)r.replayRecords);
    std::printf("  runtime          %.1f us\n", r.runtimeNs() / 1e3);
    std::printf("  dcache miss      %.3f\n", r.missRatio);
    std::printf("  tag check        %.2f ns\n", r.tagCheckNs);
    std::printf("  read latency     %.2f ns\n",
                r.demandReadLatencyNs);
    std::printf("  bloat factor     %.2f\n", r.bloat);
    return 0;
}
