/**
 * @file
 * Quickstart: build one system per DRAM-cache design, run a single
 * workload, and print the headline metrics the paper reports.
 *
 * Usage: quickstart [workload] [opsPerCore]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "system/system.hh"

int
main(int argc, char **argv)
{
    using namespace tsim;

    const std::string wl_name = argc > 1 ? argv[1] : "ft.C";
    const std::uint64_t ops =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20000;

    const WorkloadProfile &wl = findWorkload(wl_name);
    std::printf("workload %s (footprint %.2fx cache, %s miss group)\n\n",
                wl.name.c_str(), wl.footprintScale,
                wl.highMiss ? "high" : "low");
    std::printf("%-14s %10s %9s %9s %9s %8s %8s\n", "design",
                "runtime_us", "missR", "tagChkNs", "rdLatNs", "bloat",
                "energy_mJ");

    const Design designs[] = {Design::NoCache,  Design::CascadeLake,
                              Design::Alloy,    Design::Bear,
                              Design::Ndc,      Design::Tdram,
                              Design::Ideal};
    for (Design d : designs) {
        SystemConfig cfg;
        cfg.design = d;
        cfg.cores.opsPerCore = ops;
        SimReport r = runOne(cfg, wl);
        std::printf("%-14s %10.1f %9.3f %9.2f %9.2f %8.2f %8.3f\n",
                    r.design.c_str(), r.runtimeNs() / 1000.0,
                    r.missRatio, r.tagCheckNs, r.demandReadLatencyNs,
                    r.bloat, r.energy.totalJ() * 1e3);
    }
    return 0;
}
