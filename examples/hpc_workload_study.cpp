/**
 * @file
 * HPC workload study: runs an entire suite (NPB-C, NPB-D or GAPBS)
 * on two designs and reports, per workload, the metrics the paper's
 * motivation section builds on — miss ratio, tag-check latency,
 * demand-read latency and the resulting speedup of TDRAM over the
 * commercial baseline.
 *
 * Usage: hpc_workload_study [suite] [opsPerCore]
 *        suite in {NPB-C, NPB-D, GAPBS}
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "system/system.hh"

int
main(int argc, char **argv)
{
    using namespace tsim;

    const std::string suite = argc > 1 ? argv[1] : "NPB-C";
    const std::uint64_t ops =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 6000;

    std::printf("suite %s: CascadeLake vs TDRAM\n\n", suite.c_str());
    std::printf("%-9s %6s %7s | %9s %9s | %9s %9s | %8s\n",
                "workload", "missR", "grp", "tagCL_ns", "tagTD_ns",
                "rdCL_ns", "rdTD_ns", "speedup");

    std::vector<double> speedups;
    for (const auto &wl : allWorkloads()) {
        if (wl.suite != suite)
            continue;
        SystemConfig cfg;
        cfg.cores.opsPerCore = ops;

        cfg.design = Design::CascadeLake;
        const SimReport cl = runOne(cfg, wl);
        cfg.design = Design::Tdram;
        const SimReport td = runOne(cfg, wl);

        const double speedup =
            static_cast<double>(cl.runtimeTicks) /
            static_cast<double>(td.runtimeTicks);
        speedups.push_back(speedup);
        std::printf(
            "%-9s %6.2f %7s | %9.2f %9.2f | %9.2f %9.2f | %8.3f\n",
            wl.name.c_str(), td.missRatio,
            wl.highMiss ? "high" : "low", cl.tagCheckNs, td.tagCheckNs,
            cl.demandReadLatencyNs, td.demandReadLatencyNs, speedup);
    }
    if (speedups.empty()) {
        std::fprintf(stderr,
                     "unknown suite '%s' (use NPB-C, NPB-D, GAPBS)\n",
                     suite.c_str());
        return 1;
    }
    std::printf("\nTDRAM speedup over CascadeLake (geomean): %.3fx\n",
                geomean(speedups));
    return 0;
}
