/**
 * @file
 * Host-side throughput accounting.
 *
 * Simulated statistics tell us what the modelled machine did; these
 * counters tell us how fast the simulator itself ran — events
 * executed, host wall-time, and simulated-time per host-second. Every
 * System::run() fills one HostPerf, the bench harnesses aggregate
 * them, and the kernel microbenchmark tracks the same numbers so the
 * perf trajectory is visible across PRs.
 */

#ifndef TSIM_STATS_HOST_PERF_HH
#define TSIM_STATS_HOST_PERF_HH

#include <chrono>
#include <cstdint>

#include "sim/ticks.hh"

namespace tsim
{

/** Throughput counters for one or more simulation runs. */
struct HostPerf
{
    std::uint64_t events = 0;    ///< kernel events executed
    Tick simTicks = 0;           ///< simulated time covered
    double hostSeconds = 0;      ///< host wall-time spent
    std::uint64_t runs = 0;      ///< simulations aggregated
    std::uint64_t chanKicks = 0; ///< channel scheduler invocations
    std::uint64_t chanScans = 0; ///< request nodes examined by them

    void
    merge(const HostPerf &o)
    {
        events += o.events;
        simTicks += o.simTicks;
        hostSeconds += o.hostSeconds;
        runs += o.runs;
        chanKicks += o.chanKicks;
        chanScans += o.chanScans;
    }

    /** Kernel events per host second. */
    double
    eventsPerSec() const
    {
        return hostSeconds > 0 ? events / hostSeconds : 0.0;
    }

    /** Simulated nanoseconds per host second. */
    double
    simNsPerHostSec() const
    {
        return hostSeconds > 0 ? ticksToNs(simTicks) / hostSeconds : 0.0;
    }
};

/** Wall-clock stopwatch for host-side accounting. */
class HostTimer
{
  public:
    // tdram-lint:allow(nondet): host wall-clock telemetry for the
    // [host] summary lines; never feeds simulated (golden) output.
    HostTimer() : _start(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        // tdram-lint:allow(nondet): host wall-clock telemetry only.
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - _start)
            .count();
    }

  private:
    // tdram-lint:allow(nondet): host wall-clock telemetry only.
    std::chrono::steady_clock::time_point _start;
};

} // namespace tsim

#endif // TSIM_STATS_HOST_PERF_HH
