#include "stats/stats.hh"

#include <iomanip>

namespace tsim
{

void
Histogram::sampleOverflow()
{
    ++_buckets.back();
}

void
StatGroup::dump(std::ostream &os) const
{
    auto line = [&](const std::string &stat, double value,
                    const std::string &desc) {
        os << _name << '.' << stat << ' ' << std::setprecision(12)
           << value;
        if (!desc.empty())
            os << "  # " << desc;
        os << '\n';
    };

    for (const auto &[n, e] : _scalars)
        line(n, e.stat->value(), e.desc);
    for (const auto &[n, e] : _averages) {
        line(n + ".mean", e.stat->mean(), e.desc);
        line(n + ".count", static_cast<double>(e.stat->count()), "");
    }
    for (const auto &[n, e] : _histograms) {
        line(n + ".mean", e.stat->mean(), e.desc);
        line(n + ".count", static_cast<double>(e.stat->count()), "");
        line(n + ".min", e.stat->minValue(), "");
        line(n + ".max", e.stat->maxValue(), "");
        line(n + ".p95", e.stat->percentile(95), "");
    }
}

void
StatGroup::dumpCsv(std::ostream &os) const
{
    os << "name,value\n";
    auto row = [&](const std::string &stat, double value) {
        os << _name << '.' << stat << ',' << std::setprecision(12)
           << value << '\n';
    };
    for (const auto &[n, e] : _scalars)
        row(n, e.stat->value());
    for (const auto &[n, e] : _averages) {
        row(n + ".mean", e.stat->mean());
        row(n + ".count", static_cast<double>(e.stat->count()));
    }
    for (const auto &[n, e] : _histograms) {
        row(n + ".mean", e.stat->mean());
        row(n + ".count", static_cast<double>(e.stat->count()));
        row(n + ".min", e.stat->minValue());
        row(n + ".max", e.stat->maxValue());
        row(n + ".p95", e.stat->percentile(95));
    }
}

} // namespace tsim
