/**
 * @file
 * Lightweight statistics framework.
 *
 * Components own their stats; a StatGroup gives them names and lets
 * callers enumerate/dump them. The design follows gem5's stats in
 * spirit (Scalar / Average / Histogram / Formula) but is intentionally
 * small: values are plain doubles updated inline in the hot path.
 */

#ifndef TSIM_STATS_STATS_HH
#define TSIM_STATS_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

/**
 * Compile-time gate for hot-path statistics, mirroring TDRAM_TRACE
 * and TDRAM_CHECK. With TDRAM_STATS=0 the event bus drops its stats
 * subscriber and FlushBuffer::push skips its occupancy sampling, so
 * no Histogram::sample call survives in the scheduler's object file
 * (tests/check_stats_gate.sh asserts this via the out-of-line
 * overflow-bucket symbol). End-of-run dump code is unaffected.
 */
#ifndef TDRAM_STATS
#define TDRAM_STATS 1
#endif

namespace tsim
{

/** True when hot-path stats updates are compiled in (TDRAM_STATS=1). */
constexpr bool
statsCompiledIn()
{
    return TDRAM_STATS != 0;
}

/** A simple monotonically updated counter / value. */
class Scalar
{
  public:
    Scalar &operator++() { ++_value; return *this; }
    Scalar &operator+=(double v) { _value += v; return *this; }
    Scalar &operator=(double v) { _value = v; return *this; }

    double value() const { return _value; }
    void reset() { _value = 0; }

  private:
    double _value = 0;
};

/** Running average: sample() accumulates, mean() reports. */
class Average
{
  public:
    void
    sample(double v)
    {
        _sum += v;
        ++_count;
    }

    double sum() const { return _sum; }
    std::uint64_t count() const { return _count; }

    double
    mean() const
    {
        return _count ? _sum / static_cast<double>(_count) : 0.0;
    }

    void
    reset()
    {
        _sum = 0;
        _count = 0;
    }

  private:
    double _sum = 0;
    std::uint64_t _count = 0;
};

/**
 * Fixed-bucket linear histogram with running min/max/mean/stddev.
 *
 * Values above the top bucket fall into an overflow bucket, so the
 * bucket count never constrains what can be sampled.
 */
class Histogram
{
  public:
    /**
     * @param bucket_width Width of each bucket (same unit as samples).
     * @param num_buckets  Number of regular buckets.
     */
    explicit Histogram(double bucket_width = 1.0,
                       std::size_t num_buckets = 64)
        : _width(bucket_width), _buckets(num_buckets + 1, 0)
    {}

    void
    sample(double v)
    {
        ++_count;
        _sum += v;
        _sumSq += v * v;
        _min = std::min(_min, v);
        _max = std::max(_max, v);
        const auto idx = static_cast<std::size_t>(v / _width);
        if (idx < _buckets.size())
            ++_buckets[idx];
        else
            sampleOverflow();
    }

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double minValue() const { return _count ? _min : 0.0; }
    double maxValue() const { return _count ? _max : 0.0; }

    double
    variance() const
    {
        if (_count < 2)
            return 0.0;
        double m = mean();
        return _sumSq / _count - m * m;
    }

    /** Approximate p-th percentile (0..100) from bucket boundaries. */
    double
    percentile(double p) const
    {
        if (_count == 0)
            return 0.0;
        std::uint64_t target =
            static_cast<std::uint64_t>(p / 100.0 * _count);
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < _buckets.size(); ++i) {
            seen += _buckets[i];
            if (seen > target)
                return (static_cast<double>(i) + 0.5) * _width;
        }
        return _max;
    }

    const std::vector<std::uint64_t> &buckets() const { return _buckets; }
    double bucketWidth() const { return _width; }

    void
    reset()
    {
        _count = 0;
        _sum = _sumSq = 0;
        _min = std::numeric_limits<double>::infinity();
        _max = -std::numeric_limits<double>::infinity();
        std::fill(_buckets.begin(), _buckets.end(), 0);
    }

  private:
    /**
     * Out-of-line clamp into the overflow bucket. Kept in stats.cc so
     * every compiled-in sample() site leaves a nameable symbol
     * reference — the anchor tests/check_stats_gate.sh greps for.
     */
    void sampleOverflow();

    double _width;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _count = 0;
    double _sum = 0;
    double _sumSq = 0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/**
 * A named bag of stats for reporting.
 *
 * Components register references to their stats; dump() renders a
 * stable, sorted text block. Only used at end-of-run, never on the
 * hot path.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    void
    addScalar(const std::string &stat_name, const Scalar *s,
              const std::string &desc = "")
    {
        _scalars[stat_name] = {s, desc};
    }

    void
    addAverage(const std::string &stat_name, const Average *a,
               const std::string &desc = "")
    {
        _averages[stat_name] = {a, desc};
    }

    void
    addHistogram(const std::string &stat_name, const Histogram *h,
                 const std::string &desc = "")
    {
        _histograms[stat_name] = {h, desc};
    }

    const std::string &name() const { return _name; }

    /** Render all registered stats as "group.stat value # desc". */
    void dump(std::ostream &os) const;

    /** Render as CSV rows: name,value (header included). */
    void dumpCsv(std::ostream &os) const;

  private:
    template <typename T>
    struct Entry
    {
        const T *stat;
        std::string desc;
    };

    std::string _name;
    std::map<std::string, Entry<Scalar>> _scalars;
    std::map<std::string, Entry<Average>> _averages;
    std::map<std::string, Entry<Histogram>> _histograms;
};

} // namespace tsim

#endif // TSIM_STATS_STATS_HH
