#include "check/offline.hh"

#include "mem/types.hh"
#include "sim/logging.hh"

namespace tsim
{

namespace
{

const std::vector<std::string> kDevices = {
    "tdram", "tdram-noprobe", "ndc", "cl", "alloy", "bear",
    "tictoc", "banshee",
};

} // namespace

const std::vector<std::string> &
checkDeviceNames()
{
    return kDevices;
}

bool
checkerPresetFor(const std::string &device, CheckerConfig &out)
{
    CheckerConfig c;
    if (device == "tdram" || device == "tdram-noprobe") {
        c.timing = hbm3CacheTimings();
        c.inDramTags = true;
        c.conditionalColumn = true;
        c.enableProbe = device == "tdram";
        c.hasFlushBuffer = true;
        c.opportunisticDrain = true;
    } else if (device == "ndc") {
        c.timing = hbm3CacheTimings();
        c.inDramTags = true;
        c.hmAtColumn = true;
        c.conditionalColumn = true;
        c.hasFlushBuffer = true;
        c.opportunisticDrain = false;
    } else if (device == "cl") {
        c.timing = hbm3CacheTimings();
    } else if (device == "alloy" || device == "bear" ||
               device == "tictoc") {
        c.timing = hbm3TadTimings();
    } else if (device == "banshee") {
        c.timing = hbm3CacheTimings();
        c.remapTable = true;
    } else {
        return false;
    }
    out = c;
    return true;
}

CheckReport
checkTrace(const TraceFile &trace, const OfflineCheckOptions &opts)
{
    CheckReport rep;

    CheckerConfig dcache_cfg;
    if (!checkerPresetFor(opts.device, dcache_cfg)) {
        rep.error = logFormat("unknown device preset '%s'",
                              opts.device.c_str());
        return rep;
    }
    dcache_cfg.banks = opts.banks;
    dcache_cfg.openPage = opts.openPage;
    dcache_cfg.flushEntries = opts.flushEntries;
    if (dcache_cfg.remapTable) {
        // Per-channel fill quota: the page's lines are interleaved
        // line-by-line over the dcache channels.
        dcache_cfg.fillGroupLines = static_cast<unsigned>(
            dcache_cfg.pageBytes / lineBytes / opts.channels);
    }

    const unsigned expect = opts.channels + opts.mmChannels + 1;
    if (trace.header.channels != expect) {
        rep.error = logFormat(
            "trace has %u channels but the %s topology needs %u "
            "(%u dcache + %u mm + 1 demand); adjust --channels / "
            "--mm-channels",
            trace.header.channels, opts.device.c_str(), expect,
            opts.channels, opts.mmChannels);
        return rep;
    }

    ProtocolChecker chk;
    for (unsigned c = 0; c < opts.channels; ++c)
        chk.addChannel(dcache_cfg);
    CheckerConfig mm_cfg;
    mm_cfg.timing = ddr5Timings();
    for (unsigned c = 0; c < opts.mmChannels; ++c)
        chk.addChannel(mm_cfg);
    CheckerConfig demand_cfg;
    demand_cfg.demandOnly = true;
    chk.addChannel(demand_cfg);

    // loadTrace() returns records sorted by the global emission seq,
    // which is exactly the order the inline checker saw them in.
    for (const TraceRecord &r : trace.records)
        chk.onRecord(r);
    chk.finish();

    rep.ok = chk.ok();
    rep.events = chk.eventsChecked();
    rep.violationCount = chk.violationCount();
    rep.violations = chk.violations();
    return rep;
}

} // namespace tsim
