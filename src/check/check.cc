/**
 * @file
 * Protocol/invariant rule engine (DESIGN.md §11).
 *
 * Every rule here is a necessary condition of the channel model in
 * dram/channel.cc: the scheduler proves the *sufficient* direction
 * by construction (earliestIssue/reserveDq), and this engine
 * re-derives each bound independently from the event stream, so a
 * regression in either side makes the two disagree. Open-page ACT
 * rules are checked at issue granularity (an activate never precedes
 * its command's issue tick), which keeps them valid lower bounds
 * without tracking per-bank row state.
 */

#include "check/check.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace tsim
{

namespace
{

bool
isCaCmd(TraceKind k)
{
    return k == TraceKind::Read || k == TraceKind::Write ||
           k == TraceKind::ActRd || k == TraceKind::ActWr ||
           k == TraceKind::Probe;
}

bool
isBankCmd(TraceKind k)
{
    return k == TraceKind::Read || k == TraceKind::Write ||
           k == TraceKind::ActRd || k == TraceKind::ActWr;
}

bool
isTagCmd(TraceKind k)
{
    return k == TraceKind::ActRd || k == TraceKind::ActWr ||
           k == TraceKind::Probe;
}

bool
isWriteKind(TraceKind k)
{
    return k == TraceKind::Write || k == TraceKind::ActWr;
}

bool
isDemandKind(TraceKind k)
{
    return k == TraceKind::DemandStart || k == TraceKind::DemandDone;
}

/** Did this command activate the data mats? */
bool
isAct(const CheckerConfig &cfg, const TraceRecord &r)
{
    const auto k = static_cast<TraceKind>(r.kind);
    if (k == TraceKind::ActRd || k == TraceKind::ActWr)
        return true;
    if (k != TraceKind::Read && k != TraceKind::Write)
        return false;
    // Open-page row hits reuse the open row without an ACT; the
    // emission site records the hit in extra bit 0.
    return !(cfg.openPage && (r.extra & 1u));
}

/** Tag-compare bits of a command/HM record (hit/valid/dirty/probe). */
constexpr std::uint32_t
tagBits(std::uint32_t extra)
{
    return extra & 0xfu;
}

/** ActRd extra bit 16: the column operation transferred data. */
constexpr bool
transferred(std::uint32_t extra)
{
    return (extra & 16u) != 0;
}

/**
 * Minimum same-bank spacing after @p prev (close page): the bank
 * cycle time of the previous command, including the internal
 * victim-read extension of a write-miss-dirty ActWr (Figure 6).
 */
Tick
bankBusyAfter(const CheckerConfig &cfg, const TraceRecord &prev)
{
    const auto k = static_cast<TraceKind>(prev.kind);
    if (!isWriteKind(k))
        return cfg.timing.readBankBusy();
    Tick busy = cfg.timing.writeBankBusy();
    if (k == TraceKind::ActWr && cfg.hasFlushBuffer) {
        const std::uint32_t t = tagBits(prev.extra);
        const bool miss_dirty = !(t & 1u) && (t & 2u) && (t & 4u);
        if (miss_dirty)
            busy += cfg.timing.tRL_core + cfg.timing.tRTW_int;
    }
    return busy;
}

const std::vector<CheckRuleInfo> kRules = {
    {"record-sane", "-",
     "record fields are well-formed and legal for the channel"},
    {"monotonic-issue", "-",
     "issue ticks never run backwards within a channel"},
    {"ca-slot", "tCK",
     "one CA command (probes included) per command-clock slot"},
    {"act-to-act", "tRRD",
     "successive activates at least tRRD apart"},
    {"four-act-window", "tXAW",
     "at most four activates in any rolling tXAW window"},
    {"bank-busy", "tRAS+tRP/tWR",
     "close-page same-bank commands respect the bank cycle time"},
    {"col-to-col", "tCCD_L",
     "open-page same-bank column ops at least tCCD_L apart"},
    {"tag-cycle", "tRC_TAG",
     "same-bank tag-mat activations at least tRC_TAG apart"},
    {"hm-occupancy", "hm bus",
     "one HM-bus response per bus slot (no overlapped deliveries)"},
    {"hm-lockstep", "-",
     "each ActRd/ActWr/probe pairs with exactly one immediate HM result"},
    {"hm-latency", "tRCD_TAG+tHM",
     "HM results arrive exactly at the protocol-defined tick"},
    {"conditional-column", "-",
     "data bursts only on hit or miss-dirty under conditional response"},
    {"refresh-period", "tREFI/tRFC",
     "all-bank refreshes exactly tREFI apart with tRFC duration"},
    {"refresh-quiet", "tRFC",
     "no CA command issues inside a refresh window"},
    {"dq-overlap", "tBURST",
     "DQ data bursts (and reserved slots) never overlap"},
    {"dq-turnaround", "tRTW/tWTR",
     "DQ direction switches respect the bus turnaround"},
    {"flush-capacity", "-",
     "flush occupancy (waiting + in-flight) never exceeds capacity"},
    {"drain-cause", "-",
     "flush drains only via mechanisms the device supports"},
    {"drain-miss-clean", "-",
     "opportunistic drains land exactly in reserved-idle DQ slots"},
    {"drain-refresh", "-",
     "refresh-window drains fit entirely inside the window"},
    {"probe-disabled", "-",
     "probes only on channels with probing enabled"},
    {"demand-pairing", "-",
     "every demand response matches an outstanding demand start"},
    {"page-fill-lockstep", "-",
     "each Remap's fill group issues exactly its per-channel quota of "
     "flagged fill writes before the next Remap"},
    {"remap-consistency", "-",
     "Remap installs/evictions and flagged fill/spill traffic agree "
     "with the remap-table state"},
};

} // namespace

const std::vector<CheckRuleInfo> &
checkRules()
{
    return kRules;
}

const CheckRuleInfo *
findCheckRule(const std::string &id)
{
    for (const CheckRuleInfo &r : kRules) {
        if (id == r.id)
            return &r;
    }
    return nullptr;
}

unsigned
ProtocolChecker::addChannel(const CheckerConfig &cfg)
{
    ChannelState c;
    c.cfg = cfg;
    c.banks.resize(cfg.banks);
    _chans.push_back(std::move(c));
    return static_cast<unsigned>(_chans.size() - 1);
}

void
ProtocolChecker::violation(const TraceRecord &r, const char *rule,
                           std::string detail)
{
    ++_violationCount;
    if (_stored.size() >= maxStoredViolations)
        return;
    CheckViolation v;
    v.rule = rule;
    v.tick = r.tick;
    v.channel = r.channel;
    v.bank = r.bank;
    v.index = _events == 0 ? 0 : _events - 1;
    v.detail = std::move(detail);
    _stored.push_back(std::move(v));
}

std::string
ProtocolChecker::formatViolation(const CheckViolation &v)
{
    return logFormat("[%s] t=%llu ch%u bank=%u event#%llu: %s", v.rule,
                     static_cast<unsigned long long>(v.tick), v.channel,
                     v.bank,
                     static_cast<unsigned long long>(v.index),
                     v.detail.c_str());
}

void
ProtocolChecker::check(unsigned channel, const TraceRecord &r)
{
    ++_events;
    if (channel >= _chans.size()) {
        violation(r, "record-sane",
                  logFormat("channel %u out of range (%u checked)",
                            channel,
                            static_cast<unsigned>(_chans.size())));
        return;
    }
    ChannelState &c = _chans[channel];
    if (r.kind >= static_cast<std::uint8_t>(TraceKind::NumKinds)) {
        violation(r, "record-sane",
                  logFormat("unknown event kind %u", r.kind));
        return;
    }
    const auto k = static_cast<TraceKind>(r.kind);

    if (c.cfg.demandOnly != isDemandKind(k)) {
        violation(r, "record-sane",
                  logFormat("%s event on a %s buffer", traceKindName(r.kind),
                            c.cfg.demandOnly ? "controller-level"
                                             : "channel-level"));
        return;
    }

    // ActRd/ActWr/probe issue tag and data in lockstep and the HM
    // result is delivered (emitted) before anything else happens on
    // the channel; any intervening event breaks the pairing.
    if (c.hmPending && k != TraceKind::HmResult) {
        violation(r, "hm-lockstep",
                  logFormat("%s at t=%llu never received its HM result",
                            traceKindName(c.hmCmd.kind),
                            static_cast<unsigned long long>(
                                c.hmCmd.tick)));
        c.hmPending = false;
    }

    // Bank bounds for bank-scoped kinds.
    if ((isBankCmd(k) || k == TraceKind::Probe ||
         k == TraceKind::HmResult || k == TraceKind::FlushPush ||
         k == TraceKind::FlushDrain) &&
        r.bank >= c.cfg.banks) {
        violation(r, "record-sane",
                  logFormat("bank %u out of range (%u banks)", r.bank,
                            c.cfg.banks));
        return;
    }

    // Issue-tick monotonicity for events emitted at their own tick
    // (HM results and drains legitimately carry future ticks).
    if (isCaCmd(k) || k == TraceKind::Refresh ||
        k == TraceKind::FlushPush) {
        if (c.hasIssue && r.tick < c.lastIssue) {
            violation(r, "monotonic-issue",
                      logFormat("issue tick %llu precedes previous %llu",
                                static_cast<unsigned long long>(r.tick),
                                static_cast<unsigned long long>(
                                    c.lastIssue)));
        }
        c.lastIssue = std::max(c.lastIssue, r.tick);
        c.hasIssue = true;
    }

    switch (k) {
      case TraceKind::Read:
      case TraceKind::Write:
      case TraceKind::ActRd:
      case TraceKind::ActWr:
      case TraceKind::Probe:
        checkCommand(c, r);
        break;
      case TraceKind::HmResult:
        checkHmResult(c, r);
        break;
      case TraceKind::FlushPush:
      case TraceKind::FlushDrain:
        checkFlush(c, r);
        break;
      case TraceKind::Refresh:
        checkRefresh(c, r);
        break;
      case TraceKind::DemandStart:
      case TraceKind::DemandDone:
        checkDemand(c, r);
        break;
      case TraceKind::Remap:
        checkRemap(c, r);
        break;
      default:
        break;
    }
}

void
ProtocolChecker::checkCommand(ChannelState &c, const TraceRecord &r)
{
    const TimingParams &t = c.cfg.timing;
    const auto k = static_cast<TraceKind>(r.kind);

    if (isTagCmd(k) && !c.cfg.inDramTags) {
        violation(r, "record-sane",
                  logFormat("%s on a channel without in-DRAM tags",
                            traceKindName(r.kind)));
        return;
    }
    if (k == TraceKind::Probe && !c.cfg.enableProbe) {
        violation(r, "probe-disabled",
                  "probe issued but probing is disabled for this device");
    }

    // Probe slots must never collide with demand CA traffic (nor
    // demands with each other): one CA slot per command clock.
    if (c.hasCa && r.tick < c.lastCa + t.clkPeriod) {
        violation(r, "ca-slot",
                  logFormat("CA slot at t=%llu only %llu ticks after "
                            "previous command (tCK=%llu)",
                            static_cast<unsigned long long>(r.tick),
                            static_cast<unsigned long long>(
                                r.tick - c.lastCa),
                            static_cast<unsigned long long>(
                                t.clkPeriod)));
    }
    c.lastCa = r.tick;
    c.hasCa = true;

    // No CA activity inside the most recent refresh window.
    if (c.hasRefresh && r.tick >= c.refreshStart &&
        r.tick < c.refreshEnd) {
        violation(r, "refresh-quiet",
                  logFormat("command inside refresh window "
                            "[%llu, %llu)",
                            static_cast<unsigned long long>(
                                c.refreshStart),
                            static_cast<unsigned long long>(
                                c.refreshEnd)));
    }

    if (isAct(c.cfg, r)) {
        if (c.actCount > 0) {
            const Tick last = c.actWindow[(c.actCount - 1) % 4];
            if (r.tick < last + t.tRRD) {
                violation(r, "act-to-act",
                          logFormat("ACT %llu ticks after previous "
                                    "(tRRD=%llu)",
                                    static_cast<unsigned long long>(
                                        r.tick - last),
                                    static_cast<unsigned long long>(
                                        t.tRRD)));
            }
        }
        if (c.actCount >= 4) {
            const Tick fourth = c.actWindow[c.actCount % 4];
            if (r.tick < fourth + t.tXAW) {
                violation(r, "four-act-window",
                          logFormat("fifth ACT %llu ticks after the "
                                    "fourth-last (tXAW=%llu)",
                                    static_cast<unsigned long long>(
                                        r.tick - fourth),
                                    static_cast<unsigned long long>(
                                        t.tXAW)));
            }
        }
        c.actWindow[c.actCount % 4] = r.tick;
        ++c.actCount;
    }

    BankState &b = c.banks[r.bank];
    if (isBankCmd(k)) {
        if (b.hasCmd) {
            // ActRd/ActWr always auto-precharge (close-page
            // semantics) even on an open-page channel, so a lockstep
            // pair gets the full bank-cycle bound either way.
            const auto pk = static_cast<TraceKind>(b.lastCmd.kind);
            const bool lockstep_pair =
                (k == TraceKind::ActRd || k == TraceKind::ActWr) &&
                (pk == TraceKind::ActRd || pk == TraceKind::ActWr);
            if (c.cfg.openPage && !lockstep_pair) {
                // Open page: the exact bound depends on row state the
                // trace does not carry; tCCD_L is the floor every
                // same-bank command sequence must respect.
                if (r.tick < b.lastCmd.tick + t.tCCD_L) {
                    violation(r, "col-to-col",
                              logFormat(
                                  "same-bank command %llu ticks after "
                                  "previous (tCCD_L=%llu)",
                                  static_cast<unsigned long long>(
                                      r.tick - b.lastCmd.tick),
                                  static_cast<unsigned long long>(
                                      t.tCCD_L)));
                }
            } else {
                const Tick busy = bankBusyAfter(c.cfg, b.lastCmd);
                if (r.tick < b.lastCmd.tick + busy) {
                    violation(r, "bank-busy",
                              logFormat(
                                  "same-bank command %llu ticks after "
                                  "%s (bank busy %llu)",
                                  static_cast<unsigned long long>(
                                      r.tick - b.lastCmd.tick),
                                  traceKindName(b.lastCmd.kind),
                                  static_cast<unsigned long long>(
                                      busy)));
                }
            }
        }
        b.lastCmd = r;
        b.hasCmd = true;
    }

    if (isTagCmd(k)) {
        if (b.hasTagAct && r.tick < b.lastTagAct + t.tRC_TAG) {
            violation(r, "tag-cycle",
                      logFormat("tag-mat activation %llu ticks after "
                                "previous (tRC_TAG=%llu)",
                                static_cast<unsigned long long>(
                                    r.tick - b.lastTagAct),
                                static_cast<unsigned long long>(
                                    t.tRC_TAG)));
        }
        b.lastTagAct = r.tick;
        b.hasTagAct = true;

        // The HM result must be the next event on this channel.
        c.hmPending = true;
        c.hmCmd = r;
    }

    // Conditional column gating: a read's data burst happens iff the
    // tag result is a hit or a dirty miss (whose victim must stream).
    if (k == TraceKind::ActRd) {
        const std::uint32_t tb = tagBits(r.extra);
        const bool hit = (tb & 1u) != 0;
        const bool valid = (tb & 2u) != 0;
        const bool dirty = (tb & 4u) != 0;
        const bool expect =
            hit || (!hit && valid && dirty) || !c.cfg.conditionalColumn;
        if (transferred(r.extra) != expect) {
            violation(r, "conditional-column",
                      logFormat("ActRd %s data (hit=%d valid=%d "
                                "dirty=%d, conditional=%d)",
                                transferred(r.extra) ? "streamed"
                                                     : "suppressed",
                                hit ? 1 : 0, valid ? 1 : 0,
                                dirty ? 1 : 0,
                                c.cfg.conditionalColumn ? 1 : 0));
        }
        if (c.cfg.conditionalColumn && !transferred(r.extra)) {
            // Reserved-but-idle DQ slot: the only place an
            // opportunistic miss-clean drain may land.
            c.idleSlot = r.tick + r.aux;
            c.idleSlotValid = true;
        }
    }

    if (k == TraceKind::Read || k == TraceKind::Write)
        checkFillFlags(c, r, isWriteKind(k));

    // Every data-bank command reserves a DQ burst ending at
    // tick + aux (reads and suppressed reads alike: the slot is
    // reserved either way).
    if (isBankCmd(k)) {
        const Tick burst = t.dataBurst();
        const Tick end = r.tick + r.aux;
        if (r.aux < burst) {
            violation(r, "record-sane",
                      logFormat("data-done latency %llu shorter than "
                                "the burst (%llu)",
                                static_cast<unsigned long long>(r.aux),
                                static_cast<unsigned long long>(
                                    burst)));
        } else {
            reserveDq(c, r, end, burst, isWriteKind(k), false);
        }
    }
}

void
ProtocolChecker::checkHmResult(ChannelState &c, const TraceRecord &r)
{
    const TimingParams &t = c.cfg.timing;
    if (!c.cfg.inDramTags || !c.hmPending) {
        violation(r, "hm-lockstep",
                  c.cfg.inDramTags
                      ? std::string("HM result without a pending "
                                    "tag command")
                      : std::string("HM result on a channel without "
                                    "in-DRAM tags"));
        return;
    }
    c.hmPending = false;
    const TraceRecord &cmd = c.hmCmd;
    const auto cmd_kind = static_cast<TraceKind>(cmd.kind);

    if (r.addr != cmd.addr || r.bank != cmd.bank) {
        violation(r, "hm-lockstep",
                  logFormat("HM result for addr %#llx bank %u but "
                            "pending %s is addr %#llx bank %u",
                            static_cast<unsigned long long>(r.addr),
                            r.bank, traceKindName(cmd.kind),
                            static_cast<unsigned long long>(cmd.addr),
                            cmd.bank));
    }
    const bool via_probe = (r.extra & 8u) != 0;
    if (via_probe != (cmd_kind == TraceKind::Probe) ||
        tagBits(r.extra) != tagBits(cmd.extra)) {
        violation(r, "hm-lockstep",
                  logFormat("HM tag bits %#x do not mirror the "
                            "command's %#x", tagBits(r.extra),
                            tagBits(cmd.extra)));
    }

    // Result delivery tick: tRCD_TAG + tHM after issue on the HM bus,
    // or exactly at data-done when the result rides the column op.
    Tick expect;
    if (cmd_kind != TraceKind::Probe && c.cfg.hmAtColumn)
        expect = cmd.tick + cmd.aux;
    else
        expect = cmd.tick + t.hmLatency();
    if (r.tick != expect || r.tick != cmd.tick + r.aux) {
        violation(r, "hm-latency",
                  logFormat("HM result at t=%llu, expected t=%llu "
                            "(%s issued at t=%llu)",
                            static_cast<unsigned long long>(r.tick),
                            static_cast<unsigned long long>(expect),
                            traceKindName(cmd.kind),
                            static_cast<unsigned long long>(
                                cmd.tick)));
    }

    // HM-bus slot exclusivity (TDRAM only; with hmAtColumn the
    // result shares the DQ slot, which the DQ rules already police).
    if (!c.cfg.hmAtColumn) {
        if (c.hasHm && r.tick < c.lastHm + hmBusOccupancy) {
            violation(r, "hm-occupancy",
                      logFormat("HM response %llu ticks after the "
                                "previous (slot=%llu)",
                                static_cast<unsigned long long>(
                                    r.tick - c.lastHm),
                                static_cast<unsigned long long>(
                                    hmBusOccupancy)));
        }
        c.lastHm = r.tick;
        c.hasHm = true;
    }
}

void
ProtocolChecker::checkFlush(ChannelState &c, const TraceRecord &r)
{
    const TimingParams &t = c.cfg.timing;
    const auto k = static_cast<TraceKind>(r.kind);

    if (!c.cfg.hasFlushBuffer) {
        violation(r, k == TraceKind::FlushPush ? "flush-capacity"
                                               : "drain-cause",
                  "flush activity on a device without a flush buffer");
        return;
    }

    if (k == TraceKind::FlushPush) {
        // aux = waiting entries after the push; slots stay occupied
        // until the drain transfer lands, so in-flight drains (done
        // tick still in the future) count against capacity.
        c.drainDoneTicks.erase(
            std::remove_if(c.drainDoneTicks.begin(),
                           c.drainDoneTicks.end(),
                           [&r](Tick d) { return d <= r.tick; }),
            c.drainDoneTicks.end());
        const std::uint64_t in_flight = c.drainDoneTicks.size();
        if (r.aux > c.cfg.flushEntries ||
            r.aux + in_flight > c.cfg.flushEntries) {
            violation(r, "flush-capacity",
                      logFormat("depth %llu + %llu in flight exceeds "
                                "capacity %u",
                                static_cast<unsigned long long>(r.aux),
                                static_cast<unsigned long long>(
                                    in_flight),
                                c.cfg.flushEntries));
        }
        return;
    }

    // FlushDrain: tick is the transfer-done tick at the controller.
    if (r.aux > c.cfg.flushEntries) {
        violation(r, "flush-capacity",
                  logFormat("depth %llu after drain exceeds capacity "
                            "%u",
                            static_cast<unsigned long long>(r.aux),
                            c.cfg.flushEntries));
    }
    switch (static_cast<DrainCause>(r.extra)) {
      case DrainCause::MissClean:
        if (!c.cfg.opportunisticDrain || !c.cfg.conditionalColumn) {
            violation(r, "drain-cause",
                      "miss-clean drain on a device without "
                      "opportunistic unloading");
        } else if (!c.idleSlotValid || r.tick != c.idleSlot) {
            violation(r, "drain-miss-clean",
                      logFormat("drain done at t=%llu but the last "
                                "reserved-idle slot ends at t=%llu",
                                static_cast<unsigned long long>(
                                    r.tick),
                                c.idleSlotValid
                                    ? static_cast<unsigned long long>(
                                          c.idleSlot)
                                    : 0ull));
        }
        // The DQ slot was reserved by the suppressed read; the drain
        // reuses it, so no new DQ reservation here.
        c.idleSlotValid = false;
        break;
      case DrainCause::Refresh:
        if (!c.cfg.opportunisticDrain) {
            violation(r, "drain-cause",
                      "refresh-window drain on a device without "
                      "opportunistic unloading");
        } else if (!c.hasRefresh || r.tick > c.refreshEnd ||
                   r.tick < c.refreshStart + t.tBURST) {
            violation(r, "drain-refresh",
                      logFormat("drain burst [%llu, %llu] outside "
                                "refresh window [%llu, %llu]",
                                static_cast<unsigned long long>(
                                    r.tick - t.tBURST),
                                static_cast<unsigned long long>(
                                    r.tick),
                                static_cast<unsigned long long>(
                                    c.refreshStart),
                                static_cast<unsigned long long>(
                                    c.refreshEnd)));
        }
        reserveDq(c, r, r.tick, t.tBURST, false, true);
        break;
      case DrainCause::Forced:
        reserveDq(c, r, r.tick, t.tBURST, false, false);
        break;
      default:
        violation(r, "drain-cause",
                  logFormat("unknown drain cause %u", r.extra));
        break;
    }
    c.drainDoneTicks.push_back(r.tick);
}

void
ProtocolChecker::checkRefresh(ChannelState &c, const TraceRecord &r)
{
    const TimingParams &t = c.cfg.timing;
    if (r.aux != t.tRFC) {
        violation(r, "refresh-period",
                  logFormat("refresh duration %llu != tRFC %llu",
                            static_cast<unsigned long long>(r.aux),
                            static_cast<unsigned long long>(t.tRFC)));
    }
    if (c.hasRefresh && r.tick != c.refreshStart + t.tREFI) {
        violation(r, "refresh-period",
                  logFormat("refresh at t=%llu, expected t=%llu "
                            "(tREFI after the previous)",
                            static_cast<unsigned long long>(r.tick),
                            static_cast<unsigned long long>(
                                c.refreshStart + t.tREFI)));
    }
    c.refreshStart = r.tick;
    c.refreshEnd = r.tick + t.tRFC;
    c.hasRefresh = true;
}

void
ProtocolChecker::checkDemand(ChannelState &c, const TraceRecord &r)
{
    if (static_cast<TraceKind>(r.kind) == TraceKind::DemandStart) {
        c.openDemands.emplace_back(r.addr, r.tick);
        return;
    }
    // DemandDone: aux is the end-to-end latency, so the matching
    // start is the one created at tick - aux.
    const Tick created = r.tick >= r.aux ? r.tick - r.aux : 0;
    auto it = std::find(c.openDemands.begin(), c.openDemands.end(),
                        std::make_pair(r.addr, created));
    if (it == c.openDemands.end()) {
        violation(r, "demand-pairing",
                  logFormat("demand response for addr %#llx at t=%llu "
                            "(latency %llu) matches no outstanding "
                            "start",
                            static_cast<unsigned long long>(r.addr),
                            static_cast<unsigned long long>(r.tick),
                            static_cast<unsigned long long>(r.aux)));
        return;
    }
    c.openDemands.erase(it);
}

void
ProtocolChecker::checkRemap(ChannelState &c, const TraceRecord &r)
{
    if (!c.cfg.remapTable) {
        violation(r, "remap-consistency",
                  "Remap on a device without a remap table");
        return;
    }
    if (r.addr % c.cfg.pageBytes != 0) {
        violation(r, "remap-consistency",
                  logFormat("installed page %#llx not %llu-byte aligned",
                            static_cast<unsigned long long>(r.addr),
                            static_cast<unsigned long long>(
                                c.cfg.pageBytes)));
    }
    // Fills are serialized: the previous group must have issued its
    // full per-channel quota before the next Remap arrives.
    if (c.fillOpen && c.fillWrites != c.cfg.fillGroupLines) {
        violation(r, "page-fill-lockstep",
                  logFormat("previous fill group %u closed with %u of "
                            "%u fill writes",
                            c.fillGroup, c.fillWrites,
                            c.cfg.fillGroupLines));
    }
    const bool victim_valid = (r.extra & 1u) != 0;
    if (victim_valid) {
        // Warm-started tables install pages silently, so evicting a
        // page the checker never saw installed is legitimate; only
        // the tracked subset is maintained.
        auto it = std::find(c.mappedPages.begin(), c.mappedPages.end(),
                            r.aux);
        if (it != c.mappedPages.end())
            c.mappedPages.erase(it);
    }
    if (std::find(c.mappedPages.begin(), c.mappedPages.end(), r.addr) !=
        c.mappedPages.end()) {
        violation(r, "remap-consistency",
                  logFormat("page %#llx installed while already mapped",
                            static_cast<unsigned long long>(r.addr)));
    } else {
        c.mappedPages.push_back(r.addr);
    }
    c.fillOpen = true;
    c.fillGroup = r.extra >> traceGroupShift;
    c.fillPage = r.addr;
    c.spillPage = r.aux;
    c.spillValid = victim_valid;
    c.fillWrites = 0;
}

void
ProtocolChecker::checkFillFlags(ChannelState &c, const TraceRecord &r,
                                bool is_write)
{
    const bool fill = (r.extra & traceFillFlag) != 0;
    const bool spill = (r.extra & traceSpillFlag) != 0;
    if (!fill && !spill)
        return;
    if (!c.cfg.remapTable) {
        violation(r, "remap-consistency",
                  logFormat("%s flag on a device without a remap table",
                            fill ? "fill" : "spill"));
        return;
    }
    if (fill && spill) {
        violation(r, "remap-consistency",
                  "command flagged as both fill and spill");
        return;
    }
    if (fill != is_write) {
        violation(r, "remap-consistency",
                  fill ? std::string("fill flag on a read command")
                       : std::string("spill flag on a write command"));
        return;
    }
    if (!c.fillOpen) {
        violation(r, "page-fill-lockstep",
                  logFormat("%s command outside an open fill group",
                            fill ? "fill" : "spill"));
        return;
    }
    const std::uint32_t group = r.extra >> traceGroupShift;
    if (group != c.fillGroup) {
        violation(r, "page-fill-lockstep",
                  logFormat("%s command of group %u inside group %u",
                            fill ? "fill" : "spill", group,
                            c.fillGroup));
        return;
    }
    const std::uint64_t page = r.addr - r.addr % c.cfg.pageBytes;
    if (fill) {
        if (page != c.fillPage) {
            violation(r, "remap-consistency",
                      logFormat("fill write for %#llx outside the "
                                "installed page %#llx",
                                static_cast<unsigned long long>(r.addr),
                                static_cast<unsigned long long>(
                                    c.fillPage)));
        }
        if (++c.fillWrites > c.cfg.fillGroupLines) {
            violation(r, "page-fill-lockstep",
                      logFormat("fill write %u exceeds the per-channel "
                                "quota of %u",
                                c.fillWrites, c.cfg.fillGroupLines));
        }
        return;
    }
    if (!c.spillValid) {
        violation(r, "remap-consistency",
                  "spill read in a group that evicted no valid page");
        return;
    }
    if (page != c.spillPage) {
        violation(r, "remap-consistency",
                  logFormat("spill read for %#llx outside the evicted "
                            "page %#llx",
                            static_cast<unsigned long long>(r.addr),
                            static_cast<unsigned long long>(
                                c.spillPage)));
    }
}

void
ProtocolChecker::reserveDq(ChannelState &c, const TraceRecord &r,
                           Tick end, Tick burst, bool is_write,
                           bool refresh_exempt)
{
    const Tick start = end - burst;
    if (c.dqUsed) {
        if (start < c.dqEnd) {
            violation(r, "dq-overlap",
                      logFormat("DQ burst [%llu, %llu] overlaps the "
                                "previous burst ending at %llu",
                                static_cast<unsigned long long>(start),
                                static_cast<unsigned long long>(end),
                                static_cast<unsigned long long>(
                                    c.dqEnd)));
        } else if (c.dqWrite != is_write && !refresh_exempt) {
            // Refresh-window drains are exempt: the refresh itself
            // idles the bus far longer than any turnaround.
            const Tick turn = is_write ? c.cfg.timing.tRTW
                                       : c.cfg.timing.tWTR;
            if (start < c.dqEnd + turn) {
                violation(r, "dq-turnaround",
                          logFormat("%s burst %llu ticks after a %s "
                                    "burst (turnaround %llu)",
                                    is_write ? "write" : "read",
                                    static_cast<unsigned long long>(
                                        start - c.dqEnd),
                                    c.dqWrite ? "write" : "read",
                                    static_cast<unsigned long long>(
                                        turn)));
            }
        }
    }
    c.dqEnd = std::max(c.dqEnd, end);
    c.dqWrite = is_write;
    c.dqUsed = true;
}

void
ProtocolChecker::finish()
{
    if (_finished)
        return;
    _finished = true;
    for (ChannelState &c : _chans) {
        if (c.hmPending) {
            violation(c.hmCmd, "hm-lockstep",
                      logFormat("%s at end of stream never received "
                                "its HM result",
                                traceKindName(c.hmCmd.kind)));
            c.hmPending = false;
        }
        if (!c.openDemands.empty()) {
            TraceRecord r{};
            r.tick = c.openDemands.front().second;
            r.addr = c.openDemands.front().first;
            r.bank = traceBankNone;
            violation(r, "demand-pairing",
                      logFormat("%u demand start(s) never responded",
                                static_cast<unsigned>(
                                    c.openDemands.size())));
        }
        if (c.fillOpen && c.fillWrites != c.cfg.fillGroupLines) {
            TraceRecord r{};
            r.addr = c.fillPage;
            r.bank = traceBankNone;
            violation(r, "page-fill-lockstep",
                      logFormat("fill group %u open at end of stream "
                                "with %u of %u fill writes",
                                c.fillGroup, c.fillWrites,
                                c.cfg.fillGroupLines));
            c.fillOpen = false;
        }
    }
}

} // namespace tsim
