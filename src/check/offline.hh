/**
 * @file
 * Offline protocol checking of recorded .tdt traces (DESIGN.md §11).
 *
 * `trace_tool check` rebuilds the same per-channel checker layout a
 * traced System used — dcache channels, then main-memory channels,
 * then one demand-only buffer — from a named device preset, and
 * replays the trace through the identical rule engine the inline mode
 * runs. A clean run checked inline therefore audits clean offline,
 * and a trace from a buggy (or tampered-with) build reports the first
 * violations with full context.
 */

#ifndef TSIM_CHECK_OFFLINE_HH
#define TSIM_CHECK_OFFLINE_HH

#include <string>
#include <vector>

#include "check/check.hh"
#include "trace/trace.hh"

namespace tsim
{

/** Offline audit parameters (mirror the traced run's topology). */
struct OfflineCheckOptions
{
    std::string device = "tdram";  ///< preset (see checkDeviceNames())
    bool openPage = false;         ///< dcache page policy of the run
    unsigned channels = 8;         ///< dcache channels
    unsigned mmChannels = 2;       ///< DDR5 main-memory channels
    unsigned banks = 16;           ///< banks per dcache channel
    unsigned flushEntries = 16;    ///< flush-buffer capacity
};

/** Result of one offline audit. */
struct CheckReport
{
    bool ok = false;           ///< audit ran and found zero violations
    std::string error;         ///< non-empty: audit could not run
    std::uint64_t events = 0;
    std::uint64_t violationCount = 0;
    std::vector<CheckViolation> violations;  ///< stored subset
};

/** Names accepted by OfflineCheckOptions::device. */
const std::vector<std::string> &checkDeviceNames();

/**
 * DRAM-cache channel checker config for @p device ("tdram",
 * "tdram-noprobe", "ndc", "cl", "alloy", "bear", "tictoc",
 * "banshee"), mirroring the factory's per-design channel
 * capabilities and timing.
 * @return false if the name is unknown.
 */
bool checkerPresetFor(const std::string &device, CheckerConfig &out);

/**
 * Audit @p trace against the rule table. The trace's channel count
 * must equal channels + mmChannels + 1 (the traced layout).
 */
CheckReport checkTrace(const TraceFile &trace,
                       const OfflineCheckOptions &opts);

} // namespace tsim

#endif // TSIM_CHECK_OFFLINE_HH
