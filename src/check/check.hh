/**
 * @file
 * Cycle-accurate protocol and invariant checker (DESIGN.md §11).
 *
 * The simulator's correctness claims rest on every issued command
 * stream obeying the JEDEC-style timing rules of Table III plus the
 * TDRAM-specific invariants of the paper (HM-bus slot exclusivity,
 * ActRd/ActWr tag-data lockstep, conditional column gating, bounded
 * flush buffer, probe slots never colliding with demand CA traffic).
 * End-of-run statistics cannot prove any of that; this subsystem
 * does, by auditing the same per-event stream the tracing subsystem
 * records (src/trace) against a declarative rule table.
 *
 * One rule engine serves two modes:
 *
 *  - Inline: every DramChannel (and the DRAM-cache controller
 *    front-end) optionally points at a ProtocolChecker and feeds it
 *    through TSIM_CHECK_EVENT at the exact sites that emit trace
 *    events. Compile out with -DTDRAM_CHECK=0, mirroring TDRAM_TRACE
 *    (tests/check_protocol_gate.sh asserts the hooks vanish).
 *  - Offline: `trace_tool check` replays a recorded .tdt trace
 *    through the same engine (src/check/offline.*) and reports the
 *    first violation with surrounding context.
 *
 * Every rule is a *necessary* condition of the modelled protocol: an
 * unmodified simulation reports zero violations on every device kind
 * and page policy (asserted by tests/protocol_check_test.cpp), and a
 * ±1-tick perturbation of any covered constraint is flagged with the
 * violated rule's name (tests/check_injector_test.cpp).
 */

#ifndef TSIM_CHECK_CHECK_HH
#define TSIM_CHECK_CHECK_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "dram/timing.hh"
#include "sim/ticks.hh"
#include "trace/trace.hh"

#ifndef TDRAM_CHECK
#define TDRAM_CHECK 1
#endif

/**
 * Hook wrapper used at every emission site. With TDRAM_CHECK=0 the
 * whole call site (null check and argument evaluation included)
 * compiles away; tests/check_protocol_gate.sh asserts this via a
 * symbol check on the compiled object, exactly as the trace gate
 * does for TSIM_TRACE_EVENT.
 */
#if TDRAM_CHECK
#define TSIM_CHECK_EVENT(chk, chan, ...)                              \
    do {                                                              \
        if (chk)                                                      \
            (chk)->onEvent(chan, __VA_ARGS__);                        \
    } while (0)
#else
#define TSIM_CHECK_EVENT(chk, chan, ...) ((void)0)
#endif

namespace tsim
{

/** True when checker hook sites are compiled in (TDRAM_CHECK=1). */
constexpr bool
checkCompiledIn()
{
    return TDRAM_CHECK != 0;
}

/**
 * Capability and timing knobs of one checked channel. Mirrors the
 * protocol-relevant subset of ChannelConfig (decoupled so the
 * checker never depends on the scheduler headers and can be
 * instantiated offline from a device preset).
 */
struct CheckerConfig
{
    TimingParams timing{};
    unsigned banks = 16;
    bool openPage = false;        ///< PagePolicy::Open row management

    bool inDramTags = false;      ///< device checks tags (TDRAM/NDC)
    bool hmAtColumn = false;      ///< NDC: result tied to column op
    bool conditionalColumn = false; ///< miss-clean suppresses data
    bool enableProbe = false;     ///< TDRAM early tag probing
    bool hasFlushBuffer = false;  ///< device-side victim buffer
    unsigned flushEntries = 16;
    bool opportunisticDrain = true; ///< TDRAM-style unloading

    /**
     * Page-grain remap layer (Banshee). Remap records open a fill
     * group; flagged fill writes / spill reads must stay in lockstep
     * with it (fillGroupLines per channel, addresses inside the
     * installed/evicted page of pageBytes).
     */
    bool remapTable = false;
    unsigned fillGroupLines = 0;
    std::uint64_t pageBytes = 4096;

    /**
     * Controller-level demand buffer: only the demand-pairing rules
     * apply; any channel-level command record is itself a violation.
     */
    bool demandOnly = false;
};

/** One detected rule violation. */
struct CheckViolation
{
    const char *rule = "";     ///< rule id (see checkRules())
    Tick tick = 0;             ///< simulated time of the offence
    std::uint8_t channel = 0;  ///< emitting channel/buffer id
    std::uint16_t bank = 0;    ///< bank, or traceBankNone
    std::uint64_t index = 0;   ///< 0-based event index in the stream
    std::string detail;        ///< human-readable explanation
};

/**
 * Static description of one rule in the table. The checker proper
 * keys violations by `id`; the table is what `trace_tool check
 * --rules` prints and what the injector test iterates to prove the
 * violation matrix covers every rule.
 */
struct CheckRuleInfo
{
    const char *id;       ///< stable machine name, e.g. "act-to-act"
    const char *timing;   ///< governing parameter(s), e.g. "tRRD"
    const char *summary;  ///< one-line human description
};

/** The full rule table, in evaluation order. */
const std::vector<CheckRuleInfo> &checkRules();

/** Lookup @p id in the table (nullptr if unknown). */
const CheckRuleInfo *findCheckRule(const std::string &id);

/**
 * The protocol/invariant rule engine.
 *
 * Feed it the per-channel event stream in emission order — inline
 * via TSIM_CHECK_EVENT, offline via onRecord() over a seq-sorted
 * .tdt load — then call finish() once at end of stream. Violations
 * accumulate (detail strings are kept for the first
 * `maxStoredViolations`; the total count is exact) and never abort
 * the simulation: the caller decides whether a violation is fatal.
 */
class ProtocolChecker
{
  public:
    ProtocolChecker() = default;

    /** Append a checked channel; @return its channel id. */
    unsigned addChannel(const CheckerConfig &cfg);

    unsigned numChannels() const
    {
        return static_cast<unsigned>(_chans.size());
    }

    /** Inline hook entry point (signature matches TraceBuffer::record
     *  argument order so call sites mirror the trace hooks). */
    void
    onEvent(unsigned channel, TraceKind kind, Tick tick,
            std::uint64_t addr, std::uint16_t bank, std::uint64_t aux,
            std::uint32_t extra)
    {
        TraceRecord r;
        r.tick = tick;
        r.seq = _events;
        r.addr = addr;
        r.aux = aux;
        r.kind = static_cast<std::uint8_t>(kind);
        r.channel = static_cast<std::uint8_t>(channel);
        r.bank = bank;
        r.extra = extra;
        check(channel, r);
    }

    /** Offline entry point: records must arrive in emission order. */
    void onRecord(const TraceRecord &r) { check(r.channel, r); }

    /** End-of-stream invariants (unmatched lockstep HM, open demands). */
    void finish();

    /** @name Results. */
    /// @{
    std::uint64_t eventsChecked() const { return _events; }
    std::uint64_t violationCount() const { return _violationCount; }
    bool ok() const { return _violationCount == 0; }

    /** Stored violations, oldest first (capped; the count is not). */
    const std::vector<CheckViolation> &violations() const
    {
        return _stored;
    }

    /** One-line rendering of @p v (rule, tick, channel, detail). */
    static std::string formatViolation(const CheckViolation &v);
    /// @}

    /** Detail strings kept for at most this many violations. */
    static constexpr std::size_t maxStoredViolations = 64;

  private:
    /** Per-(channel, bank) timing state. */
    struct BankState
    {
        TraceRecord lastCmd{};   ///< last data-bank command
        bool hasCmd = false;
        Tick lastTagAct = 0;     ///< last tag-mat activation
        bool hasTagAct = false;
    };

    /** Per-channel rule-engine state. */
    struct ChannelState
    {
        CheckerConfig cfg;
        std::vector<BankState> banks;

        // --- command/CA stream ---
        Tick lastIssue = 0;      ///< latest issue-tick seen (monotone)
        bool hasIssue = false;
        Tick lastCa = 0;         ///< last CA-slot occupant
        bool hasCa = false;
        std::array<Tick, 4> actWindow{};  ///< last four ACTs
        unsigned actCount = 0;

        // --- HM bus ---
        Tick lastHm = 0;
        bool hasHm = false;
        bool hmPending = false;  ///< tag command awaiting its result
        TraceRecord hmCmd{};     ///< the command that set hmPending

        // --- DQ bus ---
        Tick dqEnd = 0;
        bool dqWrite = false;
        bool dqUsed = false;

        // --- refresh ---
        Tick refreshStart = 0;
        Tick refreshEnd = 0;
        bool hasRefresh = false;

        // --- flush buffer ---
        Tick idleSlot = 0;       ///< reserved-but-idle DQ slot end
        bool idleSlotValid = false;
        std::vector<Tick> drainDoneTicks;  ///< in-flight drain ends

        // --- demand buffer ---
        std::vector<std::pair<std::uint64_t, Tick>> openDemands;

        // --- page-grain remap layer (Banshee) ---
        std::vector<std::uint64_t> mappedPages;  ///< via Remap records
        bool fillOpen = false;     ///< a fill group is in progress
        std::uint32_t fillGroup = 0;
        std::uint64_t fillPage = 0;
        std::uint64_t spillPage = 0;
        bool spillValid = false;   ///< the group evicted a valid page
        unsigned fillWrites = 0;   ///< flagged writes seen this group
    };

    void check(unsigned channel, const TraceRecord &r);

    void checkCommand(ChannelState &c, const TraceRecord &r);
    void checkHmResult(ChannelState &c, const TraceRecord &r);
    void checkFlush(ChannelState &c, const TraceRecord &r);
    void checkRefresh(ChannelState &c, const TraceRecord &r);
    void checkDemand(ChannelState &c, const TraceRecord &r);
    void checkRemap(ChannelState &c, const TraceRecord &r);

    /** Audit fill/spill controller flags on a Read/Write command. */
    void checkFillFlags(ChannelState &c, const TraceRecord &r,
                        bool is_write);

    /** Reserve a DQ data interval ending at @p end. */
    void reserveDq(ChannelState &c, const TraceRecord &r, Tick end,
                   Tick burst, bool is_write, bool refresh_exempt);

    void violation(const TraceRecord &r, const char *rule,
                   std::string detail);

    std::vector<ChannelState> _chans;
    std::vector<CheckViolation> _stored;
    std::uint64_t _violationCount = 0;
    std::uint64_t _events = 0;
    bool _finished = false;
};

} // namespace tsim

#endif // TSIM_CHECK_CHECK_HH
