/**
 * @file
 * Cycle-level model of one DRAM channel and its per-channel
 * controller back-end.
 *
 * One class models every device kind the paper evaluates; the
 * ChannelConfig capability flags select the behaviour:
 *
 *  - Conventional (CascadeLake / Alloy / BEAR devices): plain
 *    close-page ACT+RD / ACT+WR accesses; tags ride in the data
 *    burst, so the controller learns hit/miss only when read data
 *    arrives.
 *  - TDRAM: in-DRAM tag mats (tRC_TAG cycle time), ActRd/ActWr
 *    lockstep commands, HM bus with results at tRCD_TAG + tHM,
 *    conditional column operation (read-miss-clean transfers no
 *    data and donates its DQ slot to flush-buffer unloading),
 *    device-side flush buffer, and opportunistic early tag probing.
 *  - NDC: in-DRAM tags, but hit/miss is tied to the column operation
 *    (hmAtColumn), no probing, and the victim buffer drains only via
 *    explicit commands that force DQ turnarounds.
 *
 * The controller policy is FR-FCFS with a close-page policy
 * (Table III), read priority with write-drain hysteresis, tRRD/tXAW
 * activation windows, DQ-bus direction turnarounds, and periodic
 * all-bank refresh.
 *
 * Scheduling core (see DESIGN.md §9): requests live in a fixed-size
 * slab pool allocated at construction and are threaded onto intrusive
 * per-direction FIFO lists — one global list (arrival order, used by
 * the probe picker) and one per bank (used by FR-FCFS selection).
 * Because every timing constraint of a request is a function of only
 * its (bank, op kind, row-hit class), selection and next-wake
 * computation evaluate at most a handful of class representatives per
 * bank instead of rescanning every queued request, while remaining
 * tick- and order-identical to an oldest-first full scan. Completion
 * callbacks are small-buffer-optimized InlineCallables, so the whole
 * enqueue → issue → complete path performs no heap allocation.
 */

#ifndef TSIM_DRAM_CHANNEL_HH
#define TSIM_DRAM_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <type_traits>
#include <vector>

#include "check/check.hh"
#include "dram/timing.hh"
#include "mem/address_map.hh"
#include "mem/types.hh"
#include "sim/event_bus.hh"
#include "sim/event_queue.hh"
#include "sim/inline_function.hh"
#include "stats/stats.hh"
#include "tdram/flush_buffer.hh"
#include "tdram/tag_array.hh"
#include "trace/trace.hh"

namespace tsim
{

/** Channel-level operation kinds. */
enum class ChanOp : std::uint8_t
{
    Read,    ///< conventional ACT+RD (data, or tag+data for CL/Alloy)
    Write,   ///< conventional ACT+WR (demand write or fill)
    ActRd,   ///< TDRAM/NDC lockstep tag+data read
    ActWr,   ///< TDRAM/NDC lockstep tag+data write
};

/**
 * Per-request completion callbacks. Sized so the front-ends' real
 * captures (a component pointer plus a shared transaction pointer,
 * or a std::function handed through MainMemory::read) stay on the
 * inline path; the counted heap fallback still handles bigger ones.
 */
using ChanTagCb = InlineCallable<void(Tick, const TagResult &), 64>;
using ChanDataCb = InlineCallable<void(Tick), 64>;

/** One request as seen by a channel. Move-only (callbacks own state). */
struct ChanReq
{
    std::uint64_t id = 0;
    Addr addr = 0;               ///< full line address
    ChanOp op = ChanOp::Read;
    bool isDemandRead = false;   ///< demand read (vs. tag read / fill)

    /**
     * Tag result at the controller. Fired for in-DRAM-tag kinds
     * (TDRAM at HM time, NDC at column time) and for probe results
     * (TagResult::viaProbe set). May fire more than once for a
     * probed request; consumers must be idempotent.
     */
    ChanTagCb onTagResult;

    /** Data fully transferred (reads: at controller; writes: sent). */
    ChanDataCb onDataDone;

    /**
     * Controller flags OR'd into the issue event's extra field
     * (trace.hh traceFillFlag/traceSpillFlag + fill-group id). Zero
     * for everything but page-grain fill/spill traffic (Banshee).
     */
    std::uint32_t ctrlExtra = 0;

    // --- filled in by the channel ---
    Tick enqueued = 0;
    DramCoord coord{};
    bool probed = false;
};

// The whole request path is move-only and must never throw mid-move:
// requests sit in the channel's slab pool and in InlineFunction
// captures (queue-full retries), both of which require nothrow moves.
static_assert(std::is_nothrow_move_constructible_v<ChanReq>,
              "ChanReq must be nothrow-move-constructible");
static_assert(std::is_nothrow_move_assignable_v<ChanReq>,
              "ChanReq must be nothrow-move-assignable");
static_assert(!std::is_copy_constructible_v<ChanReq>,
              "ChanReq must stay move-only (callbacks own state)");

/** Row-buffer management policy. */
enum class PagePolicy : std::uint8_t
{
    Close,  ///< auto-precharge after every column op (Table III)
    Open,   ///< rows stay open; FR-FCFS prefers row hits
};

/** Capability and policy knobs for one channel. */
struct ChannelConfig
{
    TimingParams timing{};
    unsigned banks = 16;          ///< logical (paired) banks
    std::uint64_t rowBytes = 1024;
    PagePolicy pagePolicy = PagePolicy::Close;

    bool inDramTags = false;      ///< device checks tags (TDRAM/NDC)
    bool hmAtColumn = false;      ///< NDC: result tied to column op
    bool conditionalColumn = false; ///< skip transfer on miss-clean
    bool enableProbe = false;     ///< TDRAM early tag probing
    bool hasFlushBuffer = false;  ///< device-side victim buffer
    unsigned flushEntries = 16;
    bool opportunisticDrain = true; ///< TDRAM-style unloading

    bool remapTable = false;      ///< page-grain remap layer (Banshee)
    unsigned fillGroupLines = 0;  ///< fill writes per channel per group
    std::uint64_t pageBytes = 4096; ///< remap granularity

    unsigned readQCap = 64;
    unsigned writeQCap = 64;
    unsigned writeHigh = 48;      ///< enter write-drain mode
    unsigned writeLow = 16;       ///< leave write-drain mode
    bool refreshEnabled = true;
};

/**
 * Protocol-relevant subset of @p cfg as a checker channel config
 * (src/check). Shared by the inline wiring (System) and the offline
 * device presets so both modes audit against identical rules.
 */
CheckerConfig checkerConfigOf(const ChannelConfig &cfg);

/** One DRAM channel plus its controller back-end. */
class DramChannel : public SimObject
{
  public:
    DramChannel(EventQueue &eq, std::string name, ChannelConfig cfg,
                AddressMap map);

    /** @name Queue admission (backpressure to the front-end). */
    /// @{
    bool canAcceptRead() const
    {
        return _qCount[DirRead] < _cfg.readQCap;
    }
    bool canAcceptWrite() const
    {
        return _qCount[DirWrite] < _cfg.writeQCap;
    }
    std::size_t readQSize() const { return _qCount[DirRead]; }
    std::size_t writeQSize() const { return _qCount[DirWrite]; }
    /// @}

    /** Enqueue a request; panics if the target queue is full. */
    void enqueue(ChanReq req);

    /**
     * Retire a queued read early (probe said miss-clean and the
     * front-end handles it without a data access). O(1) via the
     * id→node index. Queued read ids must be unique.
     * @return true if the request was found and removed.
     */
    bool removeRead(std::uint64_t id);

    /**
     * Announce a page-grain remap-table install (Banshee). Emits a
     * Remap record ahead of the group's fill/spill traffic so the
     * checker can audit page-fill lockstep and remap consistency.
     * Called from the controller (superstep phase A in sharded runs,
     * when channel shards are quiescent — race-free by construction).
     */
    void noteRemap(Tick when, Addr page, Addr victim,
                   std::uint32_t extra);

    /** @name Flush-buffer interface (TDRAM/NDC kinds only). */
    /// @{
    bool flushContains(Addr addr) const { return _flush.contains(addr); }
    bool flushRemove(Addr addr) { return _flush.remove(addr); }
    unsigned flushSize() const { return _flush.size(); }
    const FlushBuffer &flushBuffer() const { return _flush; }
    /** Explicitly drain every buffered entry (turnaround cost). */
    void forceDrain();
    /// @}

    /**
     * Functional tag peek, supplied by the DRAM-cache front-end.
     * Required when inDramTags is set; must be side-effect free.
     */
    // tdram-lint:allow(hot-alloc): installed once at wiring time and
    // only *invoked* per event; invocation never allocates.
    std::function<TagResult(Addr)> peekTags;

    /** Victim line from the flush buffer arrived at the controller. */
    // tdram-lint:allow(hot-alloc): installed once at wiring time and
    // only *invoked* per event; invocation never allocates.
    std::function<void(Addr, Tick)> onFlushArrive;

    /**
     * Optional cycle-level event-trace sink (DESIGN.md §10); null
     * disables tracing for this channel. Events reach it through the
     * bus's trace subscriber (sim/event_bus.hh), so TDRAM_TRACE=0
     * builds compile the delivery out entirely.
     */
    TraceBuffer *traceBuf = nullptr;

    /**
     * Optional inline protocol checker (DESIGN.md §11); null disables
     * checking for this channel. Events reach it through the bus's
     * check subscriber, gated by TDRAM_CHECK. `checkChannel` is this
     * channel's id in the checker (ProtocolChecker::addChannel).
     */
    ProtocolChecker *checker = nullptr;
    unsigned checkChannel = 0;

    const ChannelConfig &config() const { return _cfg; }

    /** @name Statistics. */
    /// @{
    Histogram readQueueDelay{2.0, 256};   ///< ns, per read-queue exit
    Scalar issuedReads;
    Scalar issuedWrites;
    Scalar issuedActRd;
    Scalar issuedActWr;
    Scalar probesIssued;
    Scalar probeBankConflicts;   ///< probes skipped: tag bank busy
    Scalar refreshes;
    Scalar bytesToCtrl;          ///< DQ device -> controller
    Scalar bytesFromCtrl;        ///< DQ controller -> device
    Scalar dqBusyTicks;          ///< ticks DQ actually transferring
    Scalar dqReservedIdleTicks;  ///< reserved-but-unused (miss-clean)
    Scalar turnarounds;          ///< DQ direction switches
    Scalar dataBankActs;         ///< data-bank activations
    Scalar tagBankActs;          ///< tag-bank activations
    Scalar rowHits;              ///< open-page row-buffer hits
    Scalar rowConflicts;         ///< open-page PRE-then-ACT conflicts
    /// @}

    /**
     * @name Host-side instrumentation.
     * Scheduler work counters for the [host] throughput summaries;
     * deliberately NOT registered as simulated stats so the stats
     * dump stays byte-identical to the reference scheduler.
     */
    /// @{
    std::uint64_t hostKicks = 0;           ///< kick() invocations
    mutable std::uint64_t hostScanSteps = 0; ///< request nodes examined
    /// @}

    /** Register all channel stats on @p g for reporting. */
    void regStats(StatGroup &g) const;

    /**
     * @name Bus events (src/sim/event_bus.hh, DESIGN.md §13).
     * One struct per emission site: the TraceKind payload the trace
     * and check subscribers consume, plus the site's statistics
     * applied by stats(). Stats-only occurrences set traced = false.
     * Emitted with emit(*this, Ev{...}); argument lists that used to
     * be retyped across the trace and check macros now exist once.
     */
    /// @{
    struct ReadIssuedEv
    {
        static constexpr TraceKind kind = TraceKind::Read;
        Tick tick;
        Addr addr;
        std::uint16_t bank;
        std::uint64_t aux;
        std::uint32_t extra;
        unsigned bytes;       ///< DQ payload toward the controller
        double queueDelayNs;  ///< read-queue residency
        double burstTicks;    ///< DQ occupancy of the transfer

        void
        stats(DramChannel &c) const
        {
            c.bytesToCtrl += bytes;
            c.readQueueDelay.sample(queueDelayNs);
            ++c.issuedReads;
            c.dqBusyTicks += burstTicks;
        }
    };

    struct WriteIssuedEv
    {
        static constexpr TraceKind kind = TraceKind::Write;
        Tick tick;
        Addr addr;
        std::uint16_t bank;
        std::uint64_t aux;
        std::uint32_t extra;
        unsigned bytes;
        double burstTicks;

        void
        stats(DramChannel &c) const
        {
            c.bytesFromCtrl += bytes;
            ++c.issuedWrites;
            c.dqBusyTicks += burstTicks;
        }
    };

    struct ActRdIssuedEv
    {
        static constexpr TraceKind kind = TraceKind::ActRd;
        Tick tick;
        Addr addr;
        std::uint16_t bank;
        std::uint64_t aux;
        std::uint32_t extra;
        unsigned bytes;
        double burstTicks;
        bool transfer;        ///< column op actually moved data
        double queueDelayNs;

        void
        stats(DramChannel &c) const
        {
            ++c.dataBankActs;
            ++c.tagBankActs;
            if (transfer) {
                c.bytesToCtrl += bytes;
                c.dqBusyTicks += burstTicks;
            }
            c.readQueueDelay.sample(queueDelayNs);
            ++c.issuedActRd;
        }
    };

    struct ActWrIssuedEv
    {
        static constexpr TraceKind kind = TraceKind::ActWr;
        Tick tick;
        Addr addr;
        std::uint16_t bank;
        std::uint64_t aux;
        std::uint32_t extra;
        unsigned bytes;
        double burstTicks;

        void
        stats(DramChannel &c) const
        {
            ++c.dataBankActs;
            ++c.tagBankActs;
            c.bytesFromCtrl += bytes;
            c.dqBusyTicks += burstTicks;
            ++c.issuedActWr;
        }
    };

    struct ProbeIssuedEv
    {
        static constexpr TraceKind kind = TraceKind::Probe;
        Tick tick;
        Addr addr;
        std::uint16_t bank;
        std::uint64_t aux;
        std::uint32_t extra;

        void
        stats(DramChannel &c) const
        {
            ++c.tagBankActs;
            ++c.probesIssued;
        }
    };

    /**
     * Page-grain remap-table install/evict (Banshee); trace/check
     * payload only. addr = installed page, aux = evicted page, extra
     * bit 0 = victim valid, bits 16-31 = fill-group id.
     */
    struct RemapEv
    {
        static constexpr TraceKind kind = TraceKind::Remap;
        Tick tick;
        Addr addr;
        std::uint16_t bank;
        std::uint64_t aux;
        std::uint32_t extra;
    };

    /** HM-bus result (MAIN or probe); trace/check payload only. */
    struct HmResultEv
    {
        static constexpr TraceKind kind = TraceKind::HmResult;
        Tick tick;
        Addr addr;
        std::uint16_t bank;
        std::uint64_t aux;
        std::uint32_t extra;
    };

    struct FlushPushEv
    {
        static constexpr TraceKind kind = TraceKind::FlushPush;
        Tick tick;
        Addr addr;
        std::uint16_t bank;
        std::uint64_t aux;
        std::uint32_t extra;
    };

    /** One victim drained; extra carries the DrainCause. */
    struct FlushDrainEv
    {
        static constexpr TraceKind kind = TraceKind::FlushDrain;
        Tick tick;
        Addr addr;
        std::uint16_t bank;
        std::uint64_t aux;
        std::uint32_t extra;
        double burstTicks;

        void
        stats(DramChannel &c) const
        {
            switch (static_cast<DrainCause>(extra)) {
              case DrainCause::MissClean:
                ++c._flush.drainedOnMissClean;
                break;
              case DrainCause::Refresh:
                ++c._flush.drainedOnRefresh;
                break;
              case DrainCause::Forced:
                ++c._flush.drainedForced;
                break;
            }
            c.bytesToCtrl += lineBytes;
            c.dqBusyTicks += burstTicks;
        }
    };

    struct RefreshEv
    {
        static constexpr TraceKind kind = TraceKind::Refresh;
        Tick tick;
        Addr addr;
        std::uint16_t bank;
        std::uint64_t aux;
        std::uint32_t extra;

        void stats(DramChannel &c) const { ++c.refreshes; }
    };

    /** Read retired from the queue without a data access. */
    struct ReadRetiredEv
    {
        static constexpr bool traced = false;
        double queueDelayNs;

        void
        stats(DramChannel &c) const
        {
            c.readQueueDelay.sample(queueDelayNs);
        }
    };

    /** Reserved miss-clean DQ slot went unused. */
    struct DqIdleEv
    {
        static constexpr bool traced = false;
        double burstTicks;

        void
        stats(DramChannel &c) const
        {
            c.dqReservedIdleTicks += burstTicks;
        }
    };

    /** Probe candidate skipped because its tag bank was busy. */
    struct ProbeConflictEv
    {
        static constexpr bool traced = false;

        void stats(DramChannel &c) const { ++c.probeBankConflicts; }
    };
    /// @}

  private:
    static constexpr std::uint32_t NIL = 0xffffffffu;
    static constexpr unsigned DirRead = 0;
    static constexpr unsigned DirWrite = 1;

    /** Intrusive list endpoints into the request pool. */
    struct List
    {
        std::uint32_t head = NIL;
        std::uint32_t tail = NIL;
    };

    /** One pooled request plus its intrusive list links. */
    struct ReqNode
    {
        ChanReq req;
        std::uint64_t seq = 0;   ///< global arrival order (FCFS key)
        std::uint32_t prev = NIL;     ///< global per-direction list
        std::uint32_t next = NIL;     ///< (next also chains the free list)
        std::uint32_t bankPrev = NIL; ///< per-bank per-direction list
        std::uint32_t bankNext = NIL;
        bool probePending = false;    ///< probe issued, HM not yet fired
    };

    struct BankState
    {
        Tick nextAct = 0;      ///< data mats ready for next ACT
        Tick tagNextAct = 0;   ///< tag mats ready (TDRAM/NDC)
        // --- open-page state ---
        bool rowOpen = false;
        std::uint64_t openRow = 0;
        Tick nextPre = 0;      ///< earliest precharge (tRAS/tWR)
        // --- scheduler state ---
        List q[2];                     ///< bank FIFO per direction
        std::uint16_t opCount[2][2]{}; ///< queued [dir][op kind]
        /**
         * Queued requests per [dir][op kind] whose row matches the
         * open row right now (open page only; all-zero otherwise).
         * Maintained on link/unlink and rebuilt whenever the bank's
         * (rowOpen, openRow) changes, so scans know exactly which
         * (kind, row-hit) classes exist without walking the queue.
         */
        std::uint16_t hitCount[2][2]{};
        std::uint16_t probeEligible = 0; ///< unprobed reads with tag cb
    };

    /** id→node slot of the read-queue index (open addressing). */
    struct IdSlot
    {
        std::uint64_t id = 0;
        std::uint32_t node = NIL;  ///< NIL = empty slot
    };

    /**
     * Tag callback whose request left the queue while a probe result
     * (and possibly the MAIN HM event) was still in flight; both
     * deliveries route here by id. refs counts pending deliveries.
     */
    struct OrphanCb
    {
        std::uint64_t id = 0;
        ChanTagCb cb;
        std::uint8_t refs = 0;
        bool active = false;
    };

    /** 0 for Read/Write, 1 for ActRd/ActWr (within one direction). */
    static constexpr unsigned
    opKindIdx(ChanOp op)
    {
        return (op == ChanOp::ActRd || op == ChanOp::ActWr) ? 1u : 0u;
    }

    static constexpr unsigned
    dirOf(ChanOp op)
    {
        return (op == ChanOp::Write || op == ChanOp::ActWr) ? DirWrite
                                                            : DirRead;
    }

    /** Open-page: true if @p req hits the currently open row. */
    bool rowHit(const ChanReq &req) const;

    void kick();
    void scheduleKick(Tick when);

    /** Earliest tick at which @p req could be issued. */
    Tick earliestIssue(const ChanReq &req) const;

    /**
     * FR-FCFS pick for @p dir at @p now: the oldest issuable row hit
     * (open page), else the oldest issuable request. NIL if none.
     * Walks only banks whose bank-level constraints can be met now,
     * and inside a bank evaluates at most one representative per
     * (op kind, row-hit) class — requests of one class share every
     * timing constraint, so this is exactly the oldest-first scan.
     */
    std::uint32_t selectReady(unsigned dir, Tick now) const;

    /** First ready node in @p b's @p dir FIFO older than @p seq_bound. */
    std::uint32_t firstReadyInBank(const BankState &b, unsigned dir,
                                   Tick now, bool row_hits_only,
                                   std::uint64_t seq_bound) const;

    /** Exact min earliestIssue over queue @p dir (maxTick if empty). */
    Tick earliestWake(unsigned dir) const;

    /** Unlink @p idx from its queue and issue it at the current tick. */
    void dequeueAndIssue(std::uint32_t idx);

    /** Issue @p req now (constraints already met, already unlinked). */
    void issue(ChanReq &&req, bool probe_pending);

    void issueConventional(ChanReq &req, bool is_write);
    void issueActRd(ChanReq &req, bool probe_pending);
    void issueActWr(ChanReq &req);

    /** Push a victim into the flush buffer, retrying on stalls. */
    void flushPushRetry(Addr victim);

    /** Try to issue one early tag probe; @return true if issued. */
    bool tryProbe();

    /**
     * Earliest tick a probe could be issued (maxTick if none),
     * from the per-bank probeEligible aggregate: O(banks).
     */
    Tick earliestProbe() const;

    /** Deliver a probe HM result to the request with @p id. */
    void deliverProbe(std::uint64_t id, Tick t, const TagResult &tr);

    /** @name Request pool and intrusive lists. */
    /// @{
    std::uint32_t allocNode();
    void freeNode(std::uint32_t idx);
    void qLink(unsigned dir, std::uint32_t idx);
    void qUnlink(unsigned dir, std::uint32_t idx);
    void bankLink(BankState &b, unsigned dir, std::uint32_t idx);
    void bankUnlink(BankState &b, unsigned dir, std::uint32_t idx);
    /** Recount hitCount after the bank's open row changed. */
    void rebuildHitCounts(BankState &b);
    /// @}

    /** @name O(1) id→node index over queued reads. */
    /// @{
    static std::uint64_t hashId(std::uint64_t id);
    void indexInsert(std::uint64_t id, std::uint32_t node);
    std::uint32_t indexFind(std::uint64_t id) const;
    void indexErase(std::uint64_t id);
    /// @}

    /** @name Orphaned tag callbacks (probe in flight past dequeue). */
    /// @{
    void orphanAdd(std::uint64_t id, ChanTagCb cb, std::uint8_t refs);
    void orphanDeliver(std::uint64_t id, Tick t, const TagResult &tr);
    /// @}

    /**
     * Reserve the DQ bus for a transfer of @p dur starting no
     * earlier than @p start. @return actual start tick.
     */
    Tick reserveDq(bool is_write, Tick start, Tick dur);

    /** Earliest DQ start for direction @p is_write (incl. turnaround). */
    Tick dqEarliest(bool is_write) const;

    Tick fawConstraint() const;
    void recordAct(Tick t);

    void startRefresh();

    bool inWriteDrain() const { return _drainingWrites; }

    ChannelConfig _cfg;
    AddressMap _map;
    const TimingParams &_t;

    std::vector<ReqNode> _pool;   ///< fixed slab: readQCap + writeQCap
    std::uint32_t _freeHead = NIL;
    List _q[2];                   ///< global FIFOs (read, write)
    unsigned _qCount[2] = {0, 0};
    std::uint64_t _nextArrival = 0;

    std::vector<IdSlot> _readIndex;
    std::uint32_t _indexMask = 0;

    std::vector<OrphanCb> _orphans;

    std::vector<BankState> _banks;
    std::deque<Tick> _actWindow;   ///< recent ACTs for tXAW
    Tick _lastAct = 0;
    Tick _caFreeAt = 0;
    Tick _hmFreeAt = 0;
    Tick _dqFreeAt = 0;
    bool _dqLastWrite = false;
    bool _dqEverUsed = false;
    Tick _refreshUntil = 0;
    bool _drainingWrites = false;
    Tick _nextKick = 0;

    FlushBuffer _flush;
    Tick _flushDrainUntil = 0;
};

} // namespace tsim

#endif // TSIM_DRAM_CHANNEL_HH
