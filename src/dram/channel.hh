/**
 * @file
 * Cycle-level model of one DRAM channel and its per-channel
 * controller back-end.
 *
 * One class models every device kind the paper evaluates; the
 * ChannelConfig capability flags select the behaviour:
 *
 *  - Conventional (CascadeLake / Alloy / BEAR devices): plain
 *    close-page ACT+RD / ACT+WR accesses; tags ride in the data
 *    burst, so the controller learns hit/miss only when read data
 *    arrives.
 *  - TDRAM: in-DRAM tag mats (tRC_TAG cycle time), ActRd/ActWr
 *    lockstep commands, HM bus with results at tRCD_TAG + tHM,
 *    conditional column operation (read-miss-clean transfers no
 *    data and donates its DQ slot to flush-buffer unloading),
 *    device-side flush buffer, and opportunistic early tag probing.
 *  - NDC: in-DRAM tags, but hit/miss is tied to the column operation
 *    (hmAtColumn), no probing, and the victim buffer drains only via
 *    explicit commands that force DQ turnarounds.
 *
 * The controller policy is FR-FCFS with a close-page policy
 * (Table III), read priority with write-drain hysteresis, tRRD/tXAW
 * activation windows, DQ-bus direction turnarounds, and periodic
 * all-bank refresh.
 */

#ifndef TSIM_DRAM_CHANNEL_HH
#define TSIM_DRAM_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "dram/timing.hh"
#include "mem/address_map.hh"
#include "mem/types.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"
#include "tdram/flush_buffer.hh"
#include "tdram/tag_array.hh"

namespace tsim
{

/** Channel-level operation kinds. */
enum class ChanOp : std::uint8_t
{
    Read,    ///< conventional ACT+RD (data, or tag+data for CL/Alloy)
    Write,   ///< conventional ACT+WR (demand write or fill)
    ActRd,   ///< TDRAM/NDC lockstep tag+data read
    ActWr,   ///< TDRAM/NDC lockstep tag+data write
};

/** One request as seen by a channel. */
struct ChanReq
{
    std::uint64_t id = 0;
    Addr addr = 0;               ///< full line address
    ChanOp op = ChanOp::Read;
    bool isDemandRead = false;   ///< demand read (vs. tag read / fill)

    /**
     * Tag result at the controller. Fired for in-DRAM-tag kinds
     * (TDRAM at HM time, NDC at column time) and for probe results
     * (TagResult::viaProbe set). May fire more than once for a
     * probed request; consumers must be idempotent.
     */
    std::function<void(Tick, const TagResult &)> onTagResult;

    /** Data fully transferred (reads: at controller; writes: sent). */
    std::function<void(Tick)> onDataDone;

    // --- filled in by the channel ---
    Tick enqueued = 0;
    DramCoord coord{};
    bool probed = false;
};

/** Row-buffer management policy. */
enum class PagePolicy : std::uint8_t
{
    Close,  ///< auto-precharge after every column op (Table III)
    Open,   ///< rows stay open; FR-FCFS prefers row hits
};

/** Capability and policy knobs for one channel. */
struct ChannelConfig
{
    TimingParams timing{};
    unsigned banks = 16;          ///< logical (paired) banks
    std::uint64_t rowBytes = 1024;
    PagePolicy pagePolicy = PagePolicy::Close;

    bool inDramTags = false;      ///< device checks tags (TDRAM/NDC)
    bool hmAtColumn = false;      ///< NDC: result tied to column op
    bool conditionalColumn = false; ///< skip transfer on miss-clean
    bool enableProbe = false;     ///< TDRAM early tag probing
    bool hasFlushBuffer = false;  ///< device-side victim buffer
    unsigned flushEntries = 16;
    bool opportunisticDrain = true; ///< TDRAM-style unloading

    unsigned readQCap = 64;
    unsigned writeQCap = 64;
    unsigned writeHigh = 48;      ///< enter write-drain mode
    unsigned writeLow = 16;       ///< leave write-drain mode
    bool refreshEnabled = true;
};

/** One DRAM channel plus its controller back-end. */
class DramChannel : public SimObject
{
  public:
    DramChannel(EventQueue &eq, std::string name, ChannelConfig cfg,
                AddressMap map);

    /** @name Queue admission (backpressure to the front-end). */
    /// @{
    bool canAcceptRead() const { return _readQ.size() < _cfg.readQCap; }
    bool canAcceptWrite() const
    {
        return _writeQ.size() < _cfg.writeQCap;
    }
    std::size_t readQSize() const { return _readQ.size(); }
    std::size_t writeQSize() const { return _writeQ.size(); }
    /// @}

    /** Enqueue a request; panics if the target queue is full. */
    void enqueue(ChanReq req);

    /**
     * Retire a queued read early (probe said miss-clean and the
     * front-end handles it without a data access).
     * @return true if the request was found and removed.
     */
    bool removeRead(std::uint64_t id);

    /** @name Flush-buffer interface (TDRAM/NDC kinds only). */
    /// @{
    bool flushContains(Addr addr) const { return _flush.contains(addr); }
    bool flushRemove(Addr addr) { return _flush.remove(addr); }
    unsigned flushSize() const { return _flush.size(); }
    const FlushBuffer &flushBuffer() const { return _flush; }
    /** Explicitly drain every buffered entry (turnaround cost). */
    void forceDrain();
    /// @}

    /**
     * Functional tag peek, supplied by the DRAM-cache front-end.
     * Required when inDramTags is set; must be side-effect free.
     */
    std::function<TagResult(Addr)> peekTags;

    /** Victim line from the flush buffer arrived at the controller. */
    std::function<void(Addr, Tick)> onFlushArrive;

    const ChannelConfig &config() const { return _cfg; }

    /** @name Statistics. */
    /// @{
    Histogram readQueueDelay{2.0, 256};   ///< ns, per read-queue exit
    Scalar issuedReads;
    Scalar issuedWrites;
    Scalar issuedActRd;
    Scalar issuedActWr;
    Scalar probesIssued;
    Scalar probeBankConflicts;   ///< probes skipped: tag bank busy
    Scalar refreshes;
    Scalar bytesToCtrl;          ///< DQ device -> controller
    Scalar bytesFromCtrl;        ///< DQ controller -> device
    Scalar dqBusyTicks;          ///< ticks DQ actually transferring
    Scalar dqReservedIdleTicks;  ///< reserved-but-unused (miss-clean)
    Scalar turnarounds;          ///< DQ direction switches
    Scalar dataBankActs;         ///< data-bank activations
    Scalar tagBankActs;          ///< tag-bank activations
    Scalar rowHits;              ///< open-page row-buffer hits
    Scalar rowConflicts;         ///< open-page PRE-then-ACT conflicts
    /// @}

    /** Register all channel stats on @p g for reporting. */
    void regStats(StatGroup &g) const;

  private:
    struct BankState
    {
        Tick nextAct = 0;      ///< data mats ready for next ACT
        Tick tagNextAct = 0;   ///< tag mats ready (TDRAM/NDC)
        // --- open-page state ---
        bool rowOpen = false;
        std::uint64_t openRow = 0;
        Tick nextPre = 0;      ///< earliest precharge (tRAS/tWR)
    };

    /** Open-page: true if @p req hits the currently open row. */
    bool rowHit(const ChanReq &req) const;

    void kick();
    void scheduleKick(Tick when);

    /** Earliest tick at which @p req could be issued. */
    Tick earliestIssue(const ChanReq &req) const;

    /** Issue @p req at the current tick (constraints already met). */
    void issue(ChanReq req);

    void issueConventional(ChanReq &req, bool is_write);
    void issueActRd(ChanReq &req);
    void issueActWr(ChanReq &req);

    /** Push a victim into the flush buffer, retrying on stalls. */
    void flushPushRetry(Addr victim);

    /** Try to issue one early tag probe; @return true if issued. */
    bool tryProbe();

    /** Earliest tick a probe could be issued (maxTick if none). */
    Tick earliestProbe() const;

    /**
     * Reserve the DQ bus for a transfer of @p dur starting no
     * earlier than @p start. @return actual start tick.
     */
    Tick reserveDq(bool is_write, Tick start, Tick dur);

    /** Earliest DQ start for direction @p is_write (incl. turnaround). */
    Tick dqEarliest(bool is_write) const;

    Tick fawConstraint() const;
    void recordAct(Tick t);

    void startRefresh();

    bool inWriteDrain() const { return _drainingWrites; }

    ChannelConfig _cfg;
    AddressMap _map;
    const TimingParams &_t;

    std::deque<ChanReq> _readQ;
    std::deque<ChanReq> _writeQ;

    std::vector<BankState> _banks;
    std::deque<Tick> _actWindow;   ///< recent ACTs for tXAW
    Tick _lastAct = 0;
    Tick _caFreeAt = 0;
    Tick _hmFreeAt = 0;
    Tick _dqFreeAt = 0;
    bool _dqLastWrite = false;
    bool _dqEverUsed = false;
    Tick _refreshUntil = 0;
    bool _drainingWrites = false;
    Tick _nextKick = 0;

    FlushBuffer _flush;
    Tick _flushDrainUntil = 0;

    std::uint64_t _nextReqSeq = 0;
};

} // namespace tsim

#endif // TSIM_DRAM_CHANNEL_HH
