#include "dram/main_memory.hh"

#include "dram/shard_relay.hh"

namespace tsim
{

MainMemory::MainMemory(EventQueue &eq, std::string name,
                       const MainMemoryConfig &cfg)
    : SimObject(eq, std::move(name)), _cfg(cfg),
      _map(cfg.capacityBytes, cfg.channels, cfg.banks, cfg.rowBytes),
      _front(cfg.channels)
{
    ChannelConfig ccfg;
    ccfg.timing = cfg.timing;
    ccfg.banks = cfg.banks;
    ccfg.rowBytes = cfg.rowBytes;
    ccfg.readQCap = cfg.readQCap;
    ccfg.writeQCap = cfg.writeQCap;
    ccfg.refreshEnabled = cfg.refreshEnabled;
    ccfg.writeHigh = cfg.writeQCap * 3 / 4;
    ccfg.writeLow = cfg.writeQCap / 4;
    panic_if(!cfg.channelQueues.empty() &&
                 (cfg.channelQueues.size() != cfg.channels ||
                  cfg.channelOutboxes.size() != cfg.channels),
             "sharded mode needs one queue and one outbox per channel");
    _outboxes = cfg.channelOutboxes;
    for (unsigned c = 0; c < cfg.channels; ++c) {
        EventQueue &ceq =
            cfg.channelQueues.empty() ? eq : *cfg.channelQueues[c];
        _chans.push_back(std::make_unique<DramChannel>(
            ceq, this->name() + ".ch" + std::to_string(c), ccfg,
            _map));
    }
}

void
MainMemory::read(Addr addr, MmReadCb on_done)
{
    const unsigned chan = _map.decode(addr).channel;
    const Tick start = curTick();
    ++reads;
    ChanReq req;
    req.id = _nextId++;
    req.addr = addr;
    req.op = ChanOp::Read;
    req.isDemandRead = true;
    req.onDataDone = [this, start, chan,
                      cb = std::move(on_done)](Tick t) mutable {
        readLatency.sample(ticksToNs(t - start));
        if (cb)
            cb(t);
        drainFront(chan);
    };
    submit(chan, std::move(req), false);
}

void
MainMemory::write(Addr addr)
{
    const unsigned chan = _map.decode(addr).channel;
    ++writes;
    ChanReq req;
    req.id = _nextId++;
    req.addr = addr;
    req.op = ChanOp::Write;
    req.onDataDone = [this, chan](Tick) { drainFront(chan); };
    submit(chan, std::move(req), true);
}

void
MainMemory::submit(unsigned chan, ChanReq req, bool is_write)
{
    // Sharded mode: relay-wrap before the request can reach the
    // channel — directly below, or later via drainFront (which runs
    // on the front shard, so the parked copy is already wrapped).
    if (!_outboxes.empty())
        relayWrapReq(req, *_outboxes[chan]);
    auto &front = _front[chan];
    DramChannel &ch = *_chans[chan];
    const bool space =
        is_write ? ch.canAcceptWrite() : ch.canAcceptRead();
    if (front.empty() && space) {
        ch.enqueue(std::move(req));
    } else {
        front.push_back(Pending{std::move(req), is_write});
        frontQueueDepth.sample(static_cast<double>(front.size()));
    }
}

void
MainMemory::drainFront(unsigned chan)
{
    auto &front = _front[chan];
    DramChannel &ch = *_chans[chan];
    while (!front.empty()) {
        const bool is_write = front.front().isWrite;
        const bool space =
            is_write ? ch.canAcceptWrite() : ch.canAcceptRead();
        if (!space)
            break;
        ChanReq req = std::move(front.front().req);
        front.pop_front();
        ch.enqueue(std::move(req));
    }
}

std::uint64_t
MainMemory::bytesMoved() const
{
    std::uint64_t total = 0;
    for (const auto &ch : _chans) {
        total += static_cast<std::uint64_t>(ch->bytesToCtrl.value()) +
                 static_cast<std::uint64_t>(ch->bytesFromCtrl.value());
    }
    return total;
}

void
MainMemory::regStats(StatGroup &g) const
{
    g.addScalar("reads", &reads, "main-memory read requests");
    g.addScalar("writes", &writes, "main-memory write requests");
    g.addHistogram("read_latency_ns", &readLatency);
    g.addHistogram("front_queue_depth", &frontQueueDepth);
}

} // namespace tsim
