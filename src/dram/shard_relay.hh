/**
 * @file
 * Cross-shard relay wrappers for channel completion callbacks
 * (DESIGN.md §12).
 *
 * In sharded mode a DramChannel runs on its own shard and must not
 * call into the controller front-end directly: its completion
 * callbacks fire during phase B, concurrently with the other channel
 * shards. These helpers wrap a request's callbacks (and the
 * channel-level onFlushArrive hook) so that each invocation posts a
 * closure into the shard's outbox instead; the coordinator delivers
 * it on the front shard one window later, invoking the original
 * callback with the delivery tick.
 *
 * Every channel-side invocation site fires its callback at the
 * current tick (cb(t) with t == curTick), so re-invoking the
 * original with the delivery tick preserves that invariant on the
 * front shard — the callbacks observe a uniform +W cross-shard
 * latency and never travel backwards in time.
 *
 * The original callbacks are move-only and may fire more than once
 * (a probed request delivers both the probe and the main HM result),
 * so the wrapper holds them behind a shared_ptr that each posted
 * closure copies.
 */

#ifndef TSIM_DRAM_SHARD_RELAY_HH
#define TSIM_DRAM_SHARD_RELAY_HH

#include <functional>
#include <memory>
#include <utility>

#include "dram/channel.hh"
#include "sim/shard.hh"

namespace tsim
{

/** Replace @p req's completion callbacks with outbox relays. */
inline void
relayWrapReq(ChanReq &req, ShardOutbox &ob)
{
    if (req.onTagResult) {
        // tdram-lint:allow(hot-alloc): sharded mode only — the
        // move-only callback may fire twice (probe + HM result), so
        // the posted closures need shared ownership of it.
        auto real =
            std::make_shared<ChanTagCb>(std::move(req.onTagResult));
        req.onTagResult = [real, &ob](Tick t, const TagResult &tr) {
            ob.post(t, [real, tr](Tick d) { (*real)(d, tr); });
        };
    }
    if (req.onDataDone) {
        // tdram-lint:allow(hot-alloc): sharded mode only — shared
        // ownership between the wrapper and its posted closure.
        auto real =
            std::make_shared<ChanDataCb>(std::move(req.onDataDone));
        req.onDataDone = [real, &ob](Tick t) {
            ob.post(t, [real](Tick d) { (*real)(d); });
        };
    }
}

/** Wrap a channel's onFlushArrive hook with an outbox relay. */
// tdram-lint:allow(hot-alloc): wraps the std::function channel hook
// once per channel at shard setup, not per event.
inline std::function<void(Addr, Tick)>
// tdram-lint:allow(hot-alloc): parameter mirrors the hook's type.
relayWrapFlush(std::function<void(Addr, Tick)> real, ShardOutbox &ob)
{
    return [real = std::move(real), &ob](Addr victim, Tick t) {
        ob.post(t, [real, victim](Tick d) { real(victim, d); });
    };
}

} // namespace tsim

#endif // TSIM_DRAM_SHARD_RELAY_HH
