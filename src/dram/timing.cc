#include "dram/timing.hh"

namespace tsim
{

TimingParams
hbm3CacheTimings()
{
    // Defaults in the struct are exactly Table III.
    return TimingParams{};
}

TimingParams
hbm3TadTimings()
{
    TimingParams t;
    // Alloy and BEAR access 80 B (64 B data + 8 B tag + 8 B ignored)
    // per 64 B demand; the paper models this with longer bursts.
    t.burstScale = 80.0 / 64.0;
    return t;
}

TimingParams
ddr5Timings()
{
    TimingParams t;
    // DDR5-ish core timings; the main memory is the slower backing
    // store behind the DRAM cache. Table III gives each channel
    // 32 GiB/s peak — one 64 B line per 2 ns — so the burst matches
    // the cache's and tFAW reflects fast modern parts (~13 ns).
    t.tBURST = nsToTicks(2);
    t.tRCD = nsToTicks(16);
    t.tRCD_WR = nsToTicks(16);
    t.tRP = nsToTicks(16);
    t.tRAS = nsToTicks(32);
    t.tCL = nsToTicks(16);
    t.tCWL = nsToTicks(14);
    t.tRRD = nsToTicks(2.5);
    t.tXAW = nsToTicks(13);
    t.tWR = nsToTicks(30);
    t.tRTW = nsToTicks(6);
    t.tWTR = nsToTicks(6);
    t.tREFI = nsToTicks(3900);
    t.tRFC = nsToTicks(295);
    return t;
}

} // namespace tsim
