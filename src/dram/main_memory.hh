/**
 * @file
 * DDR5 main memory: the backing store behind the DRAM cache
 * (Table III: 128 GiB over 2 channels).
 *
 * A thin front-end over per-channel DramChannel back-ends. Requests
 * that do not fit in a channel's controller queue wait in a per-
 * channel front queue; the caller's outstanding work is bounded by
 * the DRAM-cache controller's own miss/writeback buffers, so the
 * front queues stay small in practice (their occupancy is a stat).
 */

#ifndef TSIM_DRAM_MAIN_MEMORY_HH
#define TSIM_DRAM_MAIN_MEMORY_HH

#include <deque>
#include <memory>
#include <vector>

#include "dram/channel.hh"
#include "dram/timing.hh"
#include "mem/address_map.hh"
#include "mem/types.hh"
#include "sim/event_queue.hh"
#include "sim/inline_function.hh"
#include "stats/stats.hh"

namespace tsim
{

class ShardOutbox;

/**
 * Completion callback for a main-memory read. 16 bytes of inline
 * storage: every production caller captures a component pointer plus
 * one 8-byte payload (a pooled TxnRef or a line address), so the
 * controller-to-backing-store path never allocates. Sized so
 * MainMemory::read's internal wrapper (this + start tick + channel +
 * the callback) is exactly one 64-byte ChanDataCb capture.
 */
using MmReadCb = InlineCallable<void(Tick), 16>;

/** Configuration for the main memory. */
struct MainMemoryConfig
{
    std::uint64_t capacityBytes = 1ULL << 32;
    unsigned channels = 2;
    unsigned banks = 16;
    std::uint64_t rowBytes = 2048;
    TimingParams timing = ddr5Timings();
    unsigned readQCap = 64;
    unsigned writeQCap = 64;
    bool refreshEnabled = true;

    /**
     * Sharded mode (DESIGN.md §12): per-channel event queues and
     * outboxes owned by the System's ShardSim; both need `channels`
     * entries when set. Empty selects the single-queue engine.
     */
    std::vector<EventQueue *> channelQueues;
    std::vector<ShardOutbox *> channelOutboxes;
};

/** The DDR5 backing store. */
class MainMemory : public SimObject
{
  public:
    MainMemory(EventQueue &eq, std::string name,
               const MainMemoryConfig &cfg);

    /** Issue a read; @p on_done fires when data is at the caller. */
    void read(Addr addr, MmReadCb on_done);

    /** Issue a posted write (fire and forget). */
    void write(Addr addr);

    /** @name Statistics. */
    /// @{
    Scalar reads;
    Scalar writes;
    Histogram readLatency{4.0, 256};   ///< ns, request to data
    Histogram frontQueueDepth{1.0, 64};
    /// @}

    std::uint64_t bytesMoved() const;
    void regStats(StatGroup &g) const;

    DramChannel &channel(unsigned i) { return *_chans[i]; }
    const DramChannel &channel(unsigned i) const { return *_chans[i]; }
    unsigned numChannels() const
    {
        return static_cast<unsigned>(_chans.size());
    }

  private:
    struct Pending
    {
        ChanReq req;
        bool isWrite;
    };

    void drainFront(unsigned chan);
    void submit(unsigned chan, ChanReq req, bool is_write);

    MainMemoryConfig _cfg;
    AddressMap _map;
    std::vector<std::unique_ptr<DramChannel>> _chans;
    /** Per-channel cross-shard outboxes (empty in single-queue mode). */
    std::vector<ShardOutbox *> _outboxes;
    std::vector<std::deque<Pending>> _front;
    std::uint64_t _nextId = 1;
};

} // namespace tsim

#endif // TSIM_DRAM_MAIN_MEMORY_HH
