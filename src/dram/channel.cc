/**
 * @file
 * DRAM channel implementation: the incremental, allocation-free
 * FR-FCFS back-end. See channel.hh for the model and DESIGN.md §9 for
 * why the incremental scheduler is tick- and order-identical to the
 * reference full-scan one (kept under tests/legacy_channel.*).
 */

#include "dram/channel.hh"

#include <algorithm>

namespace tsim
{

namespace
{

/** Subtract with clamping at zero (timing offsets on unsigned ticks). */
constexpr Tick
subClamp(Tick a, Tick b)
{
    return a > b ? a - b : 0;
}

} // namespace

CheckerConfig
checkerConfigOf(const ChannelConfig &cfg)
{
    CheckerConfig c;
    c.timing = cfg.timing;
    c.banks = cfg.banks;
    c.openPage = cfg.pagePolicy == PagePolicy::Open;
    c.inDramTags = cfg.inDramTags;
    c.hmAtColumn = cfg.hmAtColumn;
    c.conditionalColumn = cfg.conditionalColumn;
    c.enableProbe = cfg.enableProbe;
    c.hasFlushBuffer = cfg.hasFlushBuffer;
    c.flushEntries = cfg.flushEntries;
    c.opportunisticDrain = cfg.opportunisticDrain;
    c.remapTable = cfg.remapTable;
    c.fillGroupLines = cfg.fillGroupLines;
    c.pageBytes = cfg.pageBytes;
    return c;
}

DramChannel::DramChannel(EventQueue &eq, std::string name,
                         ChannelConfig cfg, AddressMap map)
    : SimObject(eq, std::move(name)), _cfg(cfg), _map(map),
      _t(_cfg.timing), _banks(cfg.banks),
      _flush(cfg.flushEntries)
{
    fatal_if(_cfg.banks == 0, "channel needs at least one bank");

    // Fixed-size request slab: enqueue panics on overflow, so the
    // pool never grows and the steady state never allocates.
    const std::uint32_t cap = _cfg.readQCap + _cfg.writeQCap;
    _pool.resize(cap);
    for (std::uint32_t i = 0; i < cap; ++i)
        _pool[i].next = (i + 1 < cap) ? i + 1 : NIL;
    _freeHead = cap ? 0 : NIL;

    // Read-id index: power-of-two table at <= 1/2 load factor.
    std::size_t want = 2 * std::max<std::size_t>(_cfg.readQCap, 4);
    std::size_t size = 1;
    while (size < want)
        size <<= 1;
    _readIndex.resize(size);
    _indexMask = static_cast<std::uint32_t>(size - 1);

    _orphans.resize(std::max(1u, _cfg.readQCap));

    if (_cfg.refreshEnabled) {
        _eq.schedule(_t.tREFI, [this] { startRefresh(); });
    }
}

// ---------------------------------------------------------------------
// Request pool and intrusive lists.
// ---------------------------------------------------------------------

std::uint32_t
DramChannel::allocNode()
{
    panic_if(_freeHead == NIL, "%s: request pool exhausted",
             name().c_str());
    const std::uint32_t idx = _freeHead;
    _freeHead = _pool[idx].next;
    _pool[idx].next = NIL;
    return idx;
}

void
DramChannel::freeNode(std::uint32_t idx)
{
    ReqNode &n = _pool[idx];
    n.req = ChanReq{};  // drop any callback still held
    n.probePending = false;
    n.prev = n.bankPrev = n.bankNext = NIL;
    n.next = _freeHead;
    _freeHead = idx;
}

void
DramChannel::qLink(unsigned dir, std::uint32_t idx)
{
    ReqNode &n = _pool[idx];
    n.prev = _q[dir].tail;
    n.next = NIL;
    if (_q[dir].tail == NIL)
        _q[dir].head = idx;
    else
        _pool[_q[dir].tail].next = idx;
    _q[dir].tail = idx;
}

void
DramChannel::qUnlink(unsigned dir, std::uint32_t idx)
{
    ReqNode &n = _pool[idx];
    if (n.prev != NIL)
        _pool[n.prev].next = n.next;
    else
        _q[dir].head = n.next;
    if (n.next != NIL)
        _pool[n.next].prev = n.prev;
    else
        _q[dir].tail = n.prev;
    n.prev = n.next = NIL;
}

void
DramChannel::bankLink(BankState &b, unsigned dir, std::uint32_t idx)
{
    ReqNode &n = _pool[idx];
    n.bankPrev = b.q[dir].tail;
    n.bankNext = NIL;
    if (b.q[dir].tail == NIL)
        b.q[dir].head = idx;
    else
        _pool[b.q[dir].tail].bankNext = idx;
    b.q[dir].tail = idx;
    ++b.opCount[dir][opKindIdx(n.req.op)];
    if (_cfg.pagePolicy == PagePolicy::Open && b.rowOpen &&
        b.openRow == n.req.coord.row) {
        ++b.hitCount[dir][opKindIdx(n.req.op)];
    }
}

void
DramChannel::bankUnlink(BankState &b, unsigned dir, std::uint32_t idx)
{
    ReqNode &n = _pool[idx];
    if (n.bankPrev != NIL)
        _pool[n.bankPrev].bankNext = n.bankNext;
    else
        b.q[dir].head = n.bankNext;
    if (n.bankNext != NIL)
        _pool[n.bankNext].bankPrev = n.bankPrev;
    else
        b.q[dir].tail = n.bankPrev;
    n.bankPrev = n.bankNext = NIL;
    --b.opCount[dir][opKindIdx(n.req.op)];
    if (_cfg.pagePolicy == PagePolicy::Open && b.rowOpen &&
        b.openRow == n.req.coord.row) {
        --b.hitCount[dir][opKindIdx(n.req.op)];
    }
}

void
DramChannel::rebuildHitCounts(BankState &b)
{
    b.hitCount[0][0] = b.hitCount[0][1] = 0;
    b.hitCount[1][0] = b.hitCount[1][1] = 0;
    if (!b.rowOpen)
        return;
    for (unsigned dir = 0; dir < 2; ++dir) {
        for (std::uint32_t i = b.q[dir].head; i != NIL;
             i = _pool[i].bankNext) {
            const ReqNode &n = _pool[i];
            if (n.req.coord.row == b.openRow)
                ++b.hitCount[dir][opKindIdx(n.req.op)];
        }
    }
}

// ---------------------------------------------------------------------
// Read id -> node index (open addressing, linear probing).
// ---------------------------------------------------------------------

std::uint64_t
DramChannel::hashId(std::uint64_t id)
{
    id *= 0x9e3779b97f4a7c15ull;
    return id ^ (id >> 32);
}

void
DramChannel::indexInsert(std::uint64_t id, std::uint32_t node)
{
    std::uint32_t s =
        static_cast<std::uint32_t>(hashId(id)) & _indexMask;
    while (_readIndex[s].node != NIL)
        s = (s + 1) & _indexMask;
    _readIndex[s].id = id;
    _readIndex[s].node = node;
}

std::uint32_t
DramChannel::indexFind(std::uint64_t id) const
{
    std::uint32_t s =
        static_cast<std::uint32_t>(hashId(id)) & _indexMask;
    while (_readIndex[s].node != NIL) {
        if (_readIndex[s].id == id)
            return _readIndex[s].node;
        s = (s + 1) & _indexMask;
    }
    return NIL;
}

void
DramChannel::indexErase(std::uint64_t id)
{
    std::uint32_t s =
        static_cast<std::uint32_t>(hashId(id)) & _indexMask;
    for (;;) {
        if (_readIndex[s].node == NIL)
            return;
        if (_readIndex[s].id == id)
            break;
        s = (s + 1) & _indexMask;
    }
    // Backward-shift deletion keeps probe chains contiguous without
    // tombstones.
    std::uint32_t hole = s;
    std::uint32_t j = s;
    for (;;) {
        j = (j + 1) & _indexMask;
        if (_readIndex[j].node == NIL)
            break;
        const std::uint32_t home =
            static_cast<std::uint32_t>(hashId(_readIndex[j].id)) &
            _indexMask;
        if (((j - home) & _indexMask) >= ((j - hole) & _indexMask)) {
            _readIndex[hole] = _readIndex[j];
            hole = j;
        }
    }
    _readIndex[hole].node = NIL;
}

// ---------------------------------------------------------------------
// Orphaned tag callbacks: a probed request can leave the queue (issue
// or probe-miss-clean retire) while its probe HM event — and, after
// issue, the MAIN HM event — are still in flight. The callback parks
// here and each delivery routes to it by id, preserving the old
// copied-std::function semantics with a move-only callback.
// ---------------------------------------------------------------------

void
DramChannel::orphanAdd(std::uint64_t id, ChanTagCb cb,
                       std::uint8_t refs)
{
    for (auto &o : _orphans) {
        if (!o.active) {
            o.id = id;
            o.cb = std::move(cb);
            o.refs = refs;
            o.active = true;
            return;
        }
    }
    OrphanCb o;
    o.id = id;
    o.cb = std::move(cb);
    o.refs = refs;
    o.active = true;
    _orphans.push_back(std::move(o));
}

void
DramChannel::orphanDeliver(std::uint64_t id, Tick t,
                           const TagResult &tr)
{
    // Index-based: the callback may add new orphans (vector growth)
    // while it runs; slot i itself is stable until refs hits zero.
    for (std::size_t i = 0; i < _orphans.size(); ++i) {
        if (!_orphans[i].active || _orphans[i].id != id)
            continue;
        if (_orphans[i].cb) {
            ChanTagCb cb = std::move(_orphans[i].cb);
            cb(t, tr);
            _orphans[i].cb = std::move(cb);
        }
        if (--_orphans[i].refs == 0) {
            _orphans[i].cb.reset();
            _orphans[i].active = false;
        }
        return;
    }
}

void
DramChannel::deliverProbe(std::uint64_t id, Tick t, const TagResult &tr)
{
    const std::uint32_t idx = indexFind(id);
    if (idx == NIL) {
        orphanDeliver(id, t, tr);
        return;
    }
    ReqNode &n = _pool[idx];
    n.probePending = false;
    if (!n.req.onTagResult)
        return;
    // Move the callback out for the call: the consumer may retire the
    // request (removeRead) from inside it, freeing the node.
    ChanTagCb cb = std::move(n.req.onTagResult);
    cb(t, tr);
    const std::uint32_t again = indexFind(id);
    if (again != NIL)
        _pool[again].req.onTagResult = std::move(cb);
}

// ---------------------------------------------------------------------
// Queue admission.
// ---------------------------------------------------------------------

void
DramChannel::enqueue(ChanReq req)
{
    req.enqueued = curTick();
    req.coord = _map.decode(req.addr);
    const unsigned dir = dirOf(req.op);
    if (dir == DirWrite) {
        panic_if(_qCount[DirWrite] >= _cfg.writeQCap,
                 "%s: write queue overflow", name().c_str());
    } else {
        panic_if(_qCount[DirRead] >= _cfg.readQCap,
                 "%s: read queue overflow", name().c_str());
    }
    const std::uint32_t idx = allocNode();
    ReqNode &n = _pool[idx];
    n.req = std::move(req);
    n.seq = _nextArrival++;
    n.probePending = false;
    qLink(dir, idx);
    BankState &b = _banks[n.req.coord.bank];
    bankLink(b, dir, idx);
    ++_qCount[dir];
    if (dir == DirRead) {
        indexInsert(n.req.id, idx);
        if (!n.req.probed && n.req.onTagResult)
            ++b.probeEligible;
    }
    kick();
}

bool
DramChannel::removeRead(std::uint64_t id)
{
    const std::uint32_t idx = indexFind(id);
    if (idx == NIL)
        return false;
    ReqNode &n = _pool[idx];
    emit(*this, ReadRetiredEv{
        .queueDelayNs = ticksToNs(curTick() - n.req.enqueued)});
    BankState &b = _banks[n.req.coord.bank];
    if (!n.req.probed && n.req.onTagResult)
        --b.probeEligible;
    if (n.probePending) {
        // The probe HM event is still in flight and must deliver its
        // result exactly as the old copied-callback semantics did.
        orphanAdd(n.req.id, std::move(n.req.onTagResult), 1);
    }
    qUnlink(DirRead, idx);
    bankUnlink(b, DirRead, idx);
    --_qCount[DirRead];
    indexErase(id);
    freeNode(idx);
    return true;
}

// ---------------------------------------------------------------------
// Timing primitives (identical to the reference scheduler).
// ---------------------------------------------------------------------

Tick
DramChannel::dqEarliest(bool is_write) const
{
    Tick turn = 0;
    if (_dqEverUsed && _dqLastWrite != is_write)
        turn = is_write ? _t.tRTW : _t.tWTR;
    return _dqFreeAt + turn;
}

Tick
DramChannel::reserveDq(bool is_write, Tick start, Tick dur)
{
    const Tick earliest = dqEarliest(is_write);
    if (start < earliest)
        start = earliest;
    if (_dqEverUsed && _dqLastWrite != is_write)
        ++turnarounds;
    _dqFreeAt = start + dur;
    _dqLastWrite = is_write;
    _dqEverUsed = true;
    return start;
}

Tick
DramChannel::fawConstraint() const
{
    if (_actWindow.size() < 4)
        return 0;
    return _actWindow[_actWindow.size() - 4] + _t.tXAW;
}

void
DramChannel::recordAct(Tick t)
{
    _lastAct = t;
    _actWindow.push_back(t);
    if (_actWindow.size() > 4)
        _actWindow.pop_front();
}

bool
DramChannel::rowHit(const ChanReq &req) const
{
    const BankState &b = _banks[req.coord.bank];
    return b.rowOpen && b.openRow == req.coord.row;
}

Tick
DramChannel::earliestIssue(const ChanReq &req) const
{
    const BankState &b = _banks[req.coord.bank];
    Tick e = std::max(_caFreeAt, _refreshUntil);
    const bool open_page = _cfg.pagePolicy == PagePolicy::Open &&
                           (req.op == ChanOp::Read ||
                            req.op == ChanOp::Write);
    // Row hits need no ACT, so tRRD/tFAW don't constrain them.
    if (!(open_page && rowHit(req))) {
        if (!_actWindow.empty())
            e = std::max(e, _actWindow.back() + _t.tRRD);
        e = std::max(e, fawConstraint());
    }
    e = std::max(e, b.nextAct);

    if (open_page) {
        const bool is_write = req.op == ChanOp::Write;
        // Command-sequence start to first data beat.
        Tick to_data = is_write ? _t.tCWL : _t.tCL;
        if (!rowHit(req)) {
            to_data += _t.tRCD;
            if (b.rowOpen) {
                to_data += _t.tRP;          // PRE first
                e = std::max(e, b.nextPre); // respect tRAS/tWR
            }
        }
        e = std::max(e, subClamp(dqEarliest(is_write), to_data));
        return e;
    }

    switch (req.op) {
      case ChanOp::Read:
        e = std::max(e, subClamp(dqEarliest(false),
                                 _t.tRCD + _t.tCL));
        break;
      case ChanOp::Write:
        e = std::max(e, subClamp(dqEarliest(true),
                                 _t.tRCD_WR + _t.tCWL));
        break;
      case ChanOp::ActRd:
        e = std::max(e, b.tagNextAct);
        e = std::max(e, subClamp(dqEarliest(false),
                                 _t.tRCD + _t.tCL));
        if (!_cfg.hmAtColumn)
            e = std::max(e, subClamp(_hmFreeAt, _t.hmLatency()));
        break;
      case ChanOp::ActWr:
        e = std::max(e, b.tagNextAct);
        e = std::max(e, subClamp(dqEarliest(true), _t.tCWL));
        if (!_cfg.hmAtColumn)
            e = std::max(e, subClamp(_hmFreeAt, _t.hmLatency()));
        break;
    }
    return e;
}

// ---------------------------------------------------------------------
// Incremental FR-FCFS selection.
//
// Every constraint in earliestIssue() is a function of global state
// plus the request's (bank, op kind, row-hit) class, so requests of
// one class in one bank share a single earliestIssue value, and FIFO
// order within a bank list is global arrival order restricted to that
// bank. Selection therefore evaluates no more than the first request
// of each class per bank — exactly equivalent to the reference
// oldest-first full scan, at a fraction of the work.
// ---------------------------------------------------------------------

std::uint32_t
DramChannel::firstReadyInBank(const BankState &b, unsigned dir,
                              Tick now, bool row_hits_only,
                              std::uint64_t seq_bound) const
{
    const bool open = _cfg.pagePolicy == PagePolicy::Open;
    // Exact count of distinct equivalence classes in this queue, from
    // the per-kind totals and row-hit counts. Once that many classes
    // are evaluated, every later node repeats one and would be skipped.
    unsigned cls_limit;
    if (open) {
        const unsigned h0 = b.hitCount[dir][0];
        const unsigned h1 = b.hitCount[dir][1];
        const unsigned hit_kinds = (h0 ? 1u : 0u) + (h1 ? 1u : 0u);
        if (row_hits_only) {
            cls_limit = hit_kinds;
        } else {
            cls_limit = hit_kinds +
                        (b.opCount[dir][0] > h0 ? 1u : 0u) +
                        (b.opCount[dir][1] > h1 ? 1u : 0u);
        }
        if (cls_limit == 0)
            return NIL;  // e.g. no row hits queued in the hit pass
    } else {
        cls_limit = (b.opCount[dir][0] ? 1u : 0u) +
                    (b.opCount[dir][1] ? 1u : 0u);
    }
    unsigned cls_eval = 0;
    bool evaluated[4] = {false, false, false, false};
    for (std::uint32_t i = b.q[dir].head; i != NIL;
         i = _pool[i].bankNext) {
        ++hostScanSteps;
        const ReqNode &n = _pool[i];
        if (n.seq >= seq_bound)
            return NIL;  // an older candidate from another bank wins
        const ChanReq &r = n.req;
        const bool hit = open && rowHit(r);
        if (row_hits_only && !hit)
            continue;
        const unsigned cls = opKindIdx(r.op) * 2 + (hit ? 1u : 0u);
        if (evaluated[cls])
            continue;  // same constraints as an older request: not ready
        if (earliestIssue(r) <= now)
            return i;
        evaluated[cls] = true;
        if (++cls_eval == cls_limit)
            return NIL;  // every class that can appear was checked
    }
    return NIL;
}

std::uint32_t
DramChannel::selectReady(unsigned dir, Tick now) const
{
    if (_qCount[dir] == 0)
        return NIL;
    // The CA bus / refresh window gates every op kind identically.
    if (std::max(_caFreeAt, _refreshUntil) > now)
        return NIL;
    const bool open = _cfg.pagePolicy == PagePolicy::Open;
    std::uint32_t best = NIL;
    std::uint64_t best_seq = ~std::uint64_t{0};
    if (open) {
        // FR-FCFS pass 1: the oldest issuable row hit. Banks with no
        // queued row hit are skipped without touching their queues.
        for (const auto &b : _banks) {
            if ((b.hitCount[dir][0] | b.hitCount[dir][1]) == 0 ||
                b.nextAct > now) {
                continue;
            }
            const std::uint32_t c =
                firstReadyInBank(b, dir, now, true, best_seq);
            if (c != NIL) {
                best = c;
                best_seq = _pool[c].seq;
            }
        }
        if (best != NIL)
            return best;
    }
    // Pass 2: the oldest issuable request of any kind. Everything
    // still issuable here needs an ACT (close page always; open page
    // because pass 1 returned no ready row hit), so the tRRD/tFAW
    // activation gates apply to every remaining candidate.
    Tick act_gate = 0;
    if (!_actWindow.empty())
        act_gate = _actWindow.back() + _t.tRRD;
    act_gate = std::max(act_gate, fawConstraint());
    if (act_gate > now)
        return NIL;
    for (const auto &b : _banks) {
        if (b.q[dir].head == NIL || b.nextAct > now)
            continue;
        const std::uint32_t c =
            firstReadyInBank(b, dir, now, false, best_seq);
        if (c != NIL) {
            best = c;
            best_seq = _pool[c].seq;
        }
    }
    return best;
}

Tick
DramChannel::earliestWake(unsigned dir) const
{
    Tick best = maxTick;
    if (_qCount[dir] == 0)
        return best;
    const bool open = _cfg.pagePolicy == PagePolicy::Open;
    for (const auto &b : _banks) {
        std::uint32_t i = b.q[dir].head;
        if (i == NIL)
            continue;
        // Same exact class count as firstReadyInBank.
        unsigned cls_limit;
        if (open) {
            const unsigned h0 = b.hitCount[dir][0];
            const unsigned h1 = b.hitCount[dir][1];
            cls_limit = (h0 ? 1u : 0u) + (h1 ? 1u : 0u) +
                        (b.opCount[dir][0] > h0 ? 1u : 0u) +
                        (b.opCount[dir][1] > h1 ? 1u : 0u);
        } else {
            cls_limit = (b.opCount[dir][0] ? 1u : 0u) +
                        (b.opCount[dir][1] ? 1u : 0u);
        }
        unsigned cls_eval = 0;
        bool evaluated[4] = {false, false, false, false};
        for (; i != NIL; i = _pool[i].bankNext) {
            ++hostScanSteps;
            const ChanReq &r = _pool[i].req;
            const unsigned cls =
                opKindIdx(r.op) * 2 + ((open && rowHit(r)) ? 1u : 0u);
            if (evaluated[cls])
                continue;
            evaluated[cls] = true;
            best = std::min(best, earliestIssue(r));
            if (++cls_eval == cls_limit)
                break;
        }
    }
    return best;
}

// ---------------------------------------------------------------------
// Issue paths (timing identical to the reference scheduler).
// ---------------------------------------------------------------------

void
DramChannel::dequeueAndIssue(std::uint32_t idx)
{
    ReqNode &n = _pool[idx];
    const unsigned dir = dirOf(n.req.op);
    BankState &b = _banks[n.req.coord.bank];
    if (dir == DirRead) {
        indexErase(n.req.id);
        if (!n.req.probed && n.req.onTagResult)
            --b.probeEligible;
    }
    qUnlink(dir, idx);
    bankUnlink(b, dir, idx);
    --_qCount[dir];
    const bool probe_pending = n.probePending;
    ChanReq r = std::move(n.req);
    freeNode(idx);
    issue(std::move(r), probe_pending);
}

void
DramChannel::issue(ChanReq &&req, bool probe_pending)
{
    switch (req.op) {
      case ChanOp::Read:
        issueConventional(req, false);
        break;
      case ChanOp::Write:
        issueConventional(req, true);
        break;
      case ChanOp::ActRd:
        issueActRd(req, probe_pending);
        break;
      case ChanOp::ActWr:
        issueActWr(req);
        break;
    }
}

void
DramChannel::issueConventional(ChanReq &req, bool is_write)
{
    const Tick now = curTick();
    const unsigned bytes =
        static_cast<unsigned>(lineBytes * _t.burstScale + 0.5);
    BankState &b = _banks[req.coord.bank];
    // Row-hit status must be read before the bank state mutates below.
    const bool was_row_hit =
        _cfg.pagePolicy == PagePolicy::Open && rowHit(req);

    _caFreeAt = now + _t.clkPeriod;

    Tick data_start;
    if (_cfg.pagePolicy == PagePolicy::Open) {
        // Open-page: skip the ACT on a row hit; PRE+ACT on a
        // conflict; plain ACT on a closed bank.
        Tick col_at = now;
        if (rowHit(req)) {
            ++rowHits;
        } else {
            Tick act_at = now;
            if (b.rowOpen) {
                act_at = now + _t.tRP;  // precharge first
                ++rowConflicts;
            }
            recordAct(act_at);
            ++dataBankActs;
            b.rowOpen = true;
            b.openRow = req.coord.row;
            rebuildHitCounts(b);
            b.nextPre = act_at + _t.tRAS;
            col_at = act_at + (is_write ? _t.tRCD_WR : _t.tRCD);
        }
        b.nextAct = col_at + _t.tCCD_L;
        data_start = reserveDq(
            is_write, col_at + (is_write ? _t.tCWL : _t.tCL),
            _t.dataBurst());
        if (is_write) {
            b.nextPre = std::max(b.nextPre,
                                 data_start + _t.dataBurst() + _t.tWR);
        }
    } else {
        recordAct(now);
        ++dataBankActs;
        if (is_write) {
            b.nextAct = now + _t.writeBankBusy();
            data_start = now + _t.tRCD_WR + _t.tCWL;
        } else {
            b.nextAct = now + _t.readBankBusy();
            data_start = now + _t.tRCD + _t.tCL;
        }
        data_start = reserveDq(is_write, data_start, _t.dataBurst());
    }

    const Tick done = data_start + _t.dataBurst();
    const auto bank16 = static_cast<std::uint16_t>(req.coord.bank);
    if (is_write) {
        emit(*this, WriteIssuedEv{
            .tick = now, .addr = req.addr, .bank = bank16,
            .aux = done - now,
            .extra = (was_row_hit ? 1u : 0u) | req.ctrlExtra,
            .bytes = bytes,
            .burstTicks = static_cast<double>(_t.dataBurst())});
    } else {
        emit(*this, ReadIssuedEv{
            .tick = now, .addr = req.addr, .bank = bank16,
            .aux = done - now,
            .extra = (was_row_hit ? 1u : 0u) | req.ctrlExtra,
            .bytes = bytes,
            .queueDelayNs = ticksToNs(now - req.enqueued),
            .burstTicks = static_cast<double>(_t.dataBurst())});
    }
    if (req.onDataDone) {
        _eq.schedule(done, [cb = std::move(req.onDataDone),
                            done]() mutable { cb(done); });
    }
}

void
DramChannel::issueActRd(ChanReq &req, bool probe_pending)
{
    panic_if(!peekTags, "%s: ActRd without a tag backend",
             name().c_str());
    const Tick now = curTick();
    const unsigned bytes =
        static_cast<unsigned>(lineBytes * _t.burstScale + 0.5);
    BankState &b = _banks[req.coord.bank];

    _caFreeAt = now + _t.clkPeriod;
    recordAct(now);
    b.nextAct = now + _t.readBankBusy();
    b.tagNextAct = now + _t.tRC_TAG;

    TagResult tr = peekTags(req.addr);
    // Data streams to the controller on a hit or a miss to a dirty
    // line (the victim must be written back); a miss to a clean or
    // invalid line suppresses the column operation entirely.
    const bool transfer =
        tr.hit || (!tr.hit && tr.valid && tr.dirty) ||
        !_cfg.conditionalColumn;

    const Tick data_start = reserveDq(false, now + _t.tRCD + _t.tCL,
                                      _t.dataBurst());
    const Tick data_done = data_start + _t.dataBurst();

    Tick hm_tick;
    if (_cfg.hmAtColumn) {
        // NDC: the status is determined during the column operation,
        // so the controller learns it only when the data slot ends.
        hm_tick = data_done;
    } else {
        hm_tick = now + _t.hmLatency();
        _hmFreeAt = hm_tick + hmBusOccupancy;
    }

    const auto bank16 = static_cast<std::uint16_t>(req.coord.bank);
    const std::uint32_t tag_bits =
        packTagBits(tr.hit, tr.valid, tr.dirty, false);
    emit(*this, ActRdIssuedEv{
        .tick = now, .addr = req.addr, .bank = bank16,
        .aux = data_done - now,
        .extra = tag_bits | (transfer ? 16u : 0u),
        .bytes = bytes,
        .burstTicks = static_cast<double>(_t.dataBurst()),
        .transfer = transfer,
        .queueDelayNs = ticksToNs(now - req.enqueued)});
    emit(*this, HmResultEv{
        .tick = hm_tick, .addr = req.addr, .bank = bank16,
        .aux = hm_tick - now, .extra = tag_bits});

    if (transfer) {
        if (req.onDataDone) {
            _eq.schedule(data_done,
                         [cb = std::move(req.onDataDone),
                          data_done]() mutable { cb(data_done); });
        }
    } else {
        // Read-miss-clean: the reserved DQ slot goes unused; TDRAM
        // donates it to flush-buffer unloading (§III-D2 (ii)).
        if (_cfg.hasFlushBuffer && _cfg.opportunisticDrain &&
            !_flush.empty()) {
            const Addr victim = _flush.pop();
            _flush.beginDrain();
            emit(*this, FlushDrainEv{
                .tick = data_done, .addr = victim,
                .bank = static_cast<std::uint16_t>(
                    _map.decode(victim).bank),
                .aux = _flush.size(),
                .extra =
                    static_cast<std::uint32_t>(DrainCause::MissClean),
                .burstTicks = static_cast<double>(_t.dataBurst())});
            _eq.schedule(data_done, [this, victim, data_done] {
                _flush.completeDrain();
                if (onFlushArrive)
                    onFlushArrive(victim, data_done);
            });
        } else {
            emit(*this, DqIdleEv{
                .burstTicks = static_cast<double>(_t.dataBurst())});
        }
    }

    if (req.onTagResult) {
        if (probe_pending) {
            // The probe HM result for this request is still in
            // flight; park the callback where both deliveries (the
            // probe's and this MAIN result's) can reach it.
            const std::uint64_t id = req.id;
            orphanAdd(id, std::move(req.onTagResult), 2);
            _eq.schedule(hm_tick, [this, id, tr, hm_tick] {
                orphanDeliver(id, hm_tick, tr);
            });
        } else {
            _eq.schedule(hm_tick,
                         [cb = std::move(req.onTagResult), tr,
                          hm_tick]() mutable { cb(hm_tick, tr); });
        }
    }
}

void
DramChannel::issueActWr(ChanReq &req)
{
    panic_if(!peekTags, "%s: ActWr without a tag backend",
             name().c_str());
    const Tick now = curTick();
    const unsigned bytes =
        static_cast<unsigned>(lineBytes * _t.burstScale + 0.5);
    BankState &b = _banks[req.coord.bank];

    _caFreeAt = now + _t.clkPeriod;
    recordAct(now);
    b.tagNextAct = now + _t.tRC_TAG;

    TagResult tr = peekTags(req.addr);
    const bool miss_dirty = !tr.hit && tr.valid && tr.dirty;

    // Write-miss-dirty performs an internal read of the victim into
    // the flush buffer before the internal write (Figure 6); the
    // extra core occupancy is internal and never reaches the DQ bus.
    Tick bank_busy = _t.writeBankBusy();
    if (miss_dirty && _cfg.hasFlushBuffer)
        bank_busy += _t.tRL_core + _t.tRTW_int;
    b.nextAct = now + bank_busy;

    const Tick data_start =
        reserveDq(true, now + _t.tCWL, _t.dataBurst());
    const Tick data_done = data_start + _t.dataBurst();

    Tick hm_tick;
    if (_cfg.hmAtColumn) {
        hm_tick = data_done;
    } else {
        hm_tick = now + _t.hmLatency();
        _hmFreeAt = hm_tick + hmBusOccupancy;
    }

    const auto bank16 = static_cast<std::uint16_t>(req.coord.bank);
    const std::uint32_t tag_bits =
        packTagBits(tr.hit, tr.valid, tr.dirty, false);
    emit(*this, ActWrIssuedEv{
        .tick = now, .addr = req.addr, .bank = bank16,
        .aux = data_done - now, .extra = tag_bits,
        .bytes = bytes,
        .burstTicks = static_cast<double>(_t.dataBurst())});
    emit(*this, HmResultEv{
        .tick = hm_tick, .addr = req.addr, .bank = bank16,
        .aux = hm_tick - now, .extra = tag_bits});

    if (miss_dirty && _cfg.hasFlushBuffer) {
        // The victim lands in the flush buffer once the internal read
        // completes. If the buffer is full this is a TDRAM stall: the
        // controller must force a drain (§III-D2 (iii)).
        const Tick push_at = now + _t.tRCD + _t.tRL_core;
        const Addr victim = tr.victimAddr;
        _eq.schedule(push_at, [this, victim] { flushPushRetry(victim); });
    }

    if (req.onTagResult) {
        _eq.schedule(hm_tick,
                     [cb = std::move(req.onTagResult), tr,
                      hm_tick]() mutable { cb(hm_tick, tr); });
    }
    if (req.onDataDone) {
        _eq.schedule(data_done,
                     [cb = std::move(req.onDataDone),
                      data_done]() mutable { cb(data_done); });
    }
}

void
DramChannel::flushPushRetry(Addr victim)
{
    if (_flush.push(victim)) {
        emit(*this, FlushPushEv{
            .tick = curTick(), .addr = victim,
            .bank =
                static_cast<std::uint16_t>(_map.decode(victim).bank),
            .aux = _flush.size(), .extra = 0});
        kick();
        return;
    }
    // Buffer (including in-flight drains) is full: force an explicit
    // drain and retry once capacity frees up.
    forceDrain();
    const Tick retry =
        std::max(curTick() + _t.dataBurst(), _flushDrainUntil);
    _eq.schedule(retry, [this, victim] { flushPushRetry(victim); });
}

void
DramChannel::noteRemap(Tick when, Addr page, Addr victim,
                       std::uint32_t extra)
{
    emit(*this, RemapEv{.tick = when, .addr = page,
                        .bank = traceBankNone, .aux = victim,
                        .extra = extra});
}

void
DramChannel::forceDrain()
{
    if (_flush.empty())
        return;
    // Entries drain back-to-back as a group to amortize the DQ
    // read-direction turnaround (paper §III-D2 (iii); NDC's RES).
    Tick start = std::max(curTick(), dqEarliest(false));
    if (_dqEverUsed && _dqLastWrite)
        ++turnarounds;
    while (!_flush.empty()) {
        const Addr victim = _flush.pop();
        _flush.beginDrain();
        const Tick done = start + _t.tBURST;
        emit(*this, FlushDrainEv{
            .tick = done, .addr = victim,
            .bank =
                static_cast<std::uint16_t>(_map.decode(victim).bank),
            .aux = _flush.size(),
            .extra = static_cast<std::uint32_t>(DrainCause::Forced),
            .burstTicks = static_cast<double>(_t.tBURST)});
        _eq.schedule(done, [this, victim, done] {
            _flush.completeDrain();
            if (onFlushArrive)
                onFlushArrive(victim, done);
        });
        start = done;
    }
    _dqFreeAt = start;
    _dqLastWrite = false;
    _dqEverUsed = true;
    _flushDrainUntil = start;
}

// ---------------------------------------------------------------------
// Early tag probing.
// ---------------------------------------------------------------------

bool
DramChannel::tryProbe()
{
    if (!_cfg.enableProbe || _qCount[DirRead] == 0)
        return false;
    const Tick now = curTick();
    if (_caFreeAt > now || _refreshUntil > now)
        return false;
    const Tick hm_lat = _t.hmLatency();
    if (subClamp(_hmFreeAt, hm_lat) > now)
        return false;

    // Among probe-eligible requests pick the *youngest* (paper
    // §III-E2) to minimize average queueing delay.
    for (std::uint32_t i = _q[DirRead].tail; i != NIL;
         i = _pool[i].prev) {
        ++hostScanSteps;
        ReqNode &n = _pool[i];
        if (n.req.probed || !n.req.onTagResult)
            continue;
        BankState &b = _banks[n.req.coord.bank];
        if (b.tagNextAct > now) {
            emit(*this, ProbeConflictEv{});
            continue;
        }
        n.req.probed = true;
        n.probePending = true;
        --b.probeEligible;
        _caFreeAt = now + _t.clkPeriod;
        b.tagNextAct = now + _t.tRC_TAG;
        TagResult tr = peekTags(n.req.addr);
        tr.viaProbe = true;
        const Tick hm_tick = now + hm_lat;
        _hmFreeAt = hm_tick + hmBusOccupancy;
        const auto bank16 = static_cast<std::uint16_t>(n.req.coord.bank);
        const std::uint32_t tag_bits =
            packTagBits(tr.hit, tr.valid, tr.dirty, true);
        emit(*this, ProbeIssuedEv{
            .tick = now, .addr = n.req.addr, .bank = bank16,
            .aux = hm_lat, .extra = tag_bits});
        emit(*this, HmResultEv{
            .tick = hm_tick, .addr = n.req.addr, .bank = bank16,
            .aux = hm_lat, .extra = tag_bits});
        const std::uint64_t id = n.req.id;
        _eq.schedule(hm_tick, [this, id, tr, hm_tick] {
            deliverProbe(id, hm_tick, tr);
        });
        return true;
    }
    return false;
}

Tick
DramChannel::earliestProbe() const
{
    if (!_cfg.enableProbe)
        return maxTick;
    // The reference computes min over eligible requests of
    // max(G, bank.tagNextAct); G collects only request-independent
    // global constraints, so this equals max(G, min over banks with
    // eligible requests of tagNextAct) — O(banks), not O(queue).
    Tick tag = maxTick;
    for (const auto &b : _banks) {
        if (b.probeEligible > 0)
            tag = std::min(tag, b.tagNextAct);
    }
    if (tag == maxTick)
        return maxTick;
    Tick e = std::max(_caFreeAt, _refreshUntil);
    e = std::max(e, subClamp(_hmFreeAt, _t.hmLatency()));
    return std::max(e, tag);
}

// ---------------------------------------------------------------------
// Refresh and the scheduler loop.
// ---------------------------------------------------------------------

void
DramChannel::startRefresh()
{
    const Tick now = curTick();
    _refreshUntil = now + _t.tRFC;
    emit(*this, RefreshEv{
        .tick = now, .addr = 0, .bank = traceBankNone,
        .aux = _t.tRFC, .extra = 0});
    for (auto &b : _banks) {
        b.nextAct = std::max(b.nextAct, _refreshUntil);
        // Tag mats refresh in parallel with data mats (§III-C2).
        b.tagNextAct = std::max(b.tagNextAct, _refreshUntil);
        // Refresh closes every open row: every queued request is a
        // row miss until the next ACT.
        b.rowOpen = false;
        b.hitCount[0][0] = b.hitCount[0][1] = 0;
        b.hitCount[1][0] = b.hitCount[1][1] = 0;
    }

    // TDRAM unloads the flush buffer while the DQ bus idles during
    // refresh (§III-D2 (i)).
    if (_cfg.hasFlushBuffer && _cfg.opportunisticDrain &&
        !_flush.empty()) {
        Tick start = std::max(now, _dqFreeAt);
        while (!_flush.empty() &&
               start + _t.tBURST <= _refreshUntil) {
            const Addr victim = _flush.pop();
            _flush.beginDrain();
            const Tick done = start + _t.tBURST;
            emit(*this, FlushDrainEv{
                .tick = done, .addr = victim,
                .bank = static_cast<std::uint16_t>(
                    _map.decode(victim).bank),
                .aux = _flush.size(),
                .extra = static_cast<std::uint32_t>(DrainCause::Refresh),
                .burstTicks = static_cast<double>(_t.tBURST)});
            _eq.schedule(done, [this, victim, done] {
                _flush.completeDrain();
                if (onFlushArrive)
                    onFlushArrive(victim, done);
            });
            start = done;
        }
        _dqFreeAt = std::max(_dqFreeAt, start);
        _dqLastWrite = false;
        _dqEverUsed = true;
    }

    _eq.schedule(now + _t.tREFI, [this] { startRefresh(); });
    scheduleKick(_refreshUntil);
}

void
DramChannel::scheduleKick(Tick when)
{
    const Tick now = curTick();
    if (when <= now)
        when = now;
    if (_nextKick != 0 && _nextKick <= when && _nextKick > now)
        return;
    _nextKick = when;
    _eq.schedule(when, [this, when] {
        if (_nextKick == when)
            _nextKick = 0;
        kick();
    });
}

void
DramChannel::kick()
{
    ++hostKicks;
    const Tick now = curTick();

    // Write-drain hysteresis.
    auto update_mode = [this] {
        if (_drainingWrites) {
            if (_qCount[DirWrite] <= _cfg.writeLow)
                _drainingWrites = false;
        } else if (_qCount[DirWrite] >= _cfg.writeHigh) {
            _drainingWrites = true;
        }
    };
    update_mode();

    // Issue the oldest ready request from the preferred queue; when
    // no read can issue right now, an issuable write may go instead
    // (and vice versa in drain mode: writes strictly first).
    for (;;) {
        std::uint32_t pick;
        if (_drainingWrites) {
            pick = selectReady(DirWrite, now);
        } else {
            pick = selectReady(DirRead, now);
            if (pick == NIL)
                pick = selectReady(DirWrite, now);
        }
        if (pick == NIL)
            break;
        dequeueAndIssue(pick);
        update_mode();
    }

    // Early tag probing uses otherwise-idle CA / tag-bank / HM slots.
    while (tryProbe()) {
    }

    // Compute the next wake-up from the queues the policy will
    // actually serve at that time. The per-bank class minima are
    // exact, so the next kick lands on the same tick the reference
    // scheduler's full rescans would pick.
    Tick wake = earliestWake(DirWrite);
    if (!_drainingWrites) {
        wake = std::min(wake, earliestWake(DirRead));
        wake = std::min(wake, earliestProbe());
    }
    if (wake != maxTick)
        scheduleKick(std::max(wake, now + 1));
}

void
DramChannel::regStats(StatGroup &g) const
{
    g.addHistogram("read_queue_delay_ns", &readQueueDelay,
                   "read-buffer queueing delay (Fig 2/10)");
    g.addScalar("issued_reads", &issuedReads);
    g.addScalar("issued_writes", &issuedWrites);
    g.addScalar("issued_actrd", &issuedActRd);
    g.addScalar("issued_actwr", &issuedActWr);
    g.addScalar("probes_issued", &probesIssued);
    g.addScalar("probe_bank_conflicts", &probeBankConflicts);
    g.addScalar("refreshes", &refreshes);
    g.addScalar("bytes_to_ctrl", &bytesToCtrl);
    g.addScalar("bytes_from_ctrl", &bytesFromCtrl);
    g.addScalar("dq_busy_ticks", &dqBusyTicks);
    g.addScalar("dq_reserved_idle_ticks", &dqReservedIdleTicks);
    g.addScalar("turnarounds", &turnarounds);
    g.addScalar("data_bank_acts", &dataBankActs);
    g.addScalar("tag_bank_acts", &tagBankActs);
    g.addScalar("row_hits", &rowHits);
    g.addScalar("row_conflicts", &rowConflicts);
    g.addHistogram("flush_occupancy", &_flush.occupancy,
                   "flush-buffer occupancy at push (§V-E)");
    g.addScalar("flush_stalls", &_flush.stalls);
    g.addScalar("flush_max_occupancy", &_flush.maxOccupancy);
    g.addScalar("flush_drained_miss_clean", &_flush.drainedOnMissClean);
    g.addScalar("flush_drained_refresh", &_flush.drainedOnRefresh);
    g.addScalar("flush_drained_forced", &_flush.drainedForced);
    g.addScalar("flush_superseded", &_flush.superseded);
}

} // namespace tsim
