/**
 * @file
 * DRAM timing parameters (paper Table III) and device presets.
 *
 * All values are ticks (picoseconds). The same data-bank parameters
 * are used for every evaluated DRAM-cache design, exactly as the
 * paper does; the tag-bank parameters apply to TDRAM (and, with the
 * paper's NDC settings, to NDC).
 */

#ifndef TSIM_DRAM_TIMING_HH
#define TSIM_DRAM_TIMING_HH

#include "sim/ticks.hh"

namespace tsim
{

/**
 * HM-bus slot width: the dedicated hit/miss bus delivers at most one
 * response per 0.75 ns (paper §IV-B). Shared by the channel model
 * (slot arbitration) and the protocol checker (slot exclusivity).
 */
constexpr Tick hmBusOccupancy = nsToTicks(0.75);

/** Timing parameters for one DRAM device/channel. */
struct TimingParams
{
    Tick clkPeriod = nsToTicks(0.5);  ///< 2 GHz command clock

    // --- Data banks (Table III, shared across all designs) ---
    Tick tBURST = nsToTicks(2);      ///< 64 B burst on a 32-bit channel
    Tick tRCD = nsToTicks(12);       ///< ACT to RD
    Tick tRCD_WR = nsToTicks(6);     ///< ACT to WR
    Tick tCCD_L = nsToTicks(2);      ///< column-to-column
    Tick tRP = nsToTicks(14);        ///< precharge
    Tick tRAS = nsToTicks(28);       ///< ACT to PRE
    Tick tCL = nsToTicks(18);        ///< RD to data
    Tick tCWL = nsToTicks(7);        ///< WR to data
    Tick tRRD = nsToTicks(2);        ///< ACT to ACT (different banks)
    Tick tXAW = nsToTicks(16);       ///< four-activate window
    Tick tRL_core = nsToTicks(2);    ///< internal read for wr-miss-dirty
    Tick tRTW_int = nsToTicks(1);    ///< internal rd->wr turnaround
    Tick tWR = nsToTicks(14);        ///< write recovery before PRE

    // --- Data-bus turnarounds at the DQ pins ---
    Tick tRTW = nsToTicks(4);        ///< read -> write bus turnaround
    Tick tWTR = nsToTicks(4);        ///< write -> read bus turnaround

    // --- Tag banks (TDRAM only; Table III bottom row) ---
    Tick tHM = nsToTicks(7.5);       ///< tag result to controller (bus)
    Tick tHM_int = nsToTicks(2.5);   ///< internal hit/miss detect
    Tick tRCD_TAG = nsToTicks(7.5);  ///< tag-mat activate to compare
    Tick tRTP_TAG = nsToTicks(2.5);
    Tick tRRD_TAG = nsToTicks(2);
    Tick tWR_TAG = nsToTicks(1);
    Tick tRTW_TAG = nsToTicks(1);
    Tick tRC_TAG = nsToTicks(12);    ///< tag-bank cycle time

    // --- Refresh ---
    Tick tREFI = nsToTicks(3900);    ///< refresh interval
    Tick tRFC = nsToTicks(260);      ///< all-bank refresh duration

    /**
     * Burst-size scale for tag-and-data (TAD) designs.
     * Alloy/BEAR stream 80 B per 64 B demand; the paper models this
     * with increased timing parameters (tBURST etc.).
     */
    double burstScale = 1.0;

    /** Bank cycle time for a close-page read access. */
    Tick
    readBankBusy() const
    {
        return tRAS + tRP;
    }

    /** Bank cycle time for a close-page write access. */
    Tick
    writeBankBusy() const
    {
        Tick t = tRCD_WR + tCWL + dataBurst() + tWR + tRP;
        return t > tRAS + tRP ? t : tRAS + tRP;
    }

    /** Effective DQ occupancy of one data burst. */
    Tick
    dataBurst() const
    {
        return static_cast<Tick>(
            static_cast<double>(tBURST) * burstScale + 0.5);
    }

    /** ACT(Rd) issue to first data beat at the controller. */
    Tick
    readDataLatency() const
    {
        return tRCD + tCL;
    }

    /**
     * ActRd/probe issue to hit-miss result at the controller
     * (paper: tRCD_TAG + tHM = 15 ns, matching RLDRAM tRL).
     */
    Tick
    hmLatency() const
    {
        return tRCD_TAG + tHM;
    }
};

/** HBM3-like DRAM-cache device timings (Table III as written). */
TimingParams hbm3CacheTimings();

/** Alloy/BEAR variant: 80 B TAD bursts. */
TimingParams hbm3TadTimings();

/** DDR5 main-memory timings (slower core, same 2 GHz command clock). */
TimingParams ddr5Timings();

} // namespace tsim

#endif // TSIM_DRAM_TIMING_HH
