/**
 * @file
 * SRAM cache model (private core caches and the shared LLC).
 *
 * Functional set-associative LRU writeback cache with a fixed access
 * latency. The hierarchy in front of the DRAM cache only needs to
 * (a) filter the core's address stream, (b) produce writebacks of
 * dirty lines (which become the DRAM cache's write-demand stream)
 * and (c) add its latency to each access — a full coherence model
 * is unnecessary for the paper's single-socket memory-side study.
 */

#ifndef TSIM_CACHE_SRAM_CACHE_HH
#define TSIM_CACHE_SRAM_CACHE_HH

#include <string>

#include "mem/types.hh"
#include "stats/stats.hh"
#include "tdram/tag_array.hh"

namespace tsim
{

/** One SRAM cache level. */
class SramCache
{
  public:
    /** Outcome of one functional access. */
    struct Result
    {
        bool hit = false;
        bool writeback = false;  ///< a dirty victim was evicted
        Addr writebackAddr = 0;
    };

    /**
     * @param name        Stat prefix.
     * @param capacity    Bytes of data storage.
     * @param ways        Associativity.
     * @param hit_latency Latency added to every access that probes
     *                    this level.
     */
    SramCache(std::string name, std::uint64_t capacity, unsigned ways,
              Tick hit_latency)
        : _name(std::move(name)), _tags(capacity, ways),
          _hitLatency(hit_latency)
    {}

    /**
     * Access one line; allocates on miss (write-allocate).
     *
     * @param addr     Line-aligned address.
     * @param is_store Marks the line dirty.
     */
    Result
    access(Addr addr, bool is_store)
    {
        Result res;
        const TagArray::Probe p = _tags.probe(addr);
        const TagResult &tr = p.result;
        if (tr.hit) {
            ++hits;
            res.hit = true;
            if (is_store)
                _tags.markDirty(p);
            else
                _tags.touch(p);
            return res;
        }
        ++misses;
        if (tr.valid && tr.dirty) {
            res.writeback = true;
            res.writebackAddr = tr.victimAddr;
            ++writebacks;
        }
        _tags.install(addr, is_store, p);
        return res;
    }

    /** True if the line is resident (no LRU side effects). */
    bool contains(Addr addr) const { return _tags.peek(addr).hit; }

    Tick hitLatency() const { return _hitLatency; }
    const std::string &name() const { return _name; }

    double
    missRatio() const
    {
        const double total = hits.value() + misses.value();
        return total > 0 ? misses.value() / total : 0.0;
    }

    /** @name Statistics. */
    /// @{
    Scalar hits;
    Scalar misses;
    Scalar writebacks;
    /// @}

    void
    regStats(StatGroup &g) const
    {
        g.addScalar(_name + ".hits", &hits);
        g.addScalar(_name + ".misses", &misses);
        g.addScalar(_name + ".writebacks", &writebacks);
    }

  private:
    std::string _name;
    TagArray _tags;
    Tick _hitLatency;
};

} // namespace tsim

#endif // TSIM_CACHE_SRAM_CACHE_HH
