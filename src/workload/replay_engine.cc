#include "workload/replay_engine.hh"

#include <algorithm>

namespace tsim
{

const char *
replayModeName(ReplayMode m)
{
    return m == ReplayMode::Timed ? "timed" : "afap";
}

bool
parseReplayMode(const std::string &s, ReplayMode &out)
{
    if (s == "timed") {
        out = ReplayMode::Timed;
        return true;
    }
    if (s == "afap") {
        out = ReplayMode::Afap;
        return true;
    }
    return false;
}

TraceReplayEngine::TraceReplayEngine(EventQueue &eq, std::string name,
                                     const ReplayConfig &cfg,
                                     DramCacheCtrl &dcache)
    : RequestEngine(eq, std::move(name)), _cfg(cfg), _dcache(dcache)
{
    fatal_if(!_reader.open(_cfg.path), "replay: %s",
             _reader.error().c_str());
    fatal_if(_reader.info().records == 0,
             "replay: '%s' holds no records", _cfg.path.c_str());
}

void
TraceReplayEngine::start()
{
    fetchNext();
    panic_if(!_haveCur, "replay stream emptied before start");
    schedulePump(_cfg.mode == ReplayMode::Timed ? _curTick : curTick());
}

void
TraceReplayEngine::fetchNext()
{
    ReplayRecord r;
    if (!_reader.next(r)) {
        fatal_if(!_reader.ok(), "replay: %s", _reader.error().c_str());
        _haveCur = false;
        _exhausted = true;
        return;
    }
    _haveCur = true;
    _cur = r;
    _curLine = lineAlign(r.addr);
    _curLastLine = lineAlign(r.addr + (r.size ? r.size - 1 : 0));
    _curTick += r.delta;  // recorded absolute time (running sum)
}

bool
TraceReplayEngine::issueLine()
{
    MemPacket pkt;
    pkt.id = _nextPktId++;
    pkt.addr = _curLine;
    pkt.cmd = _cur.isWrite ? MemCmd::Write : MemCmd::Read;
    pkt.coreId = 0;
    if (!_dcache.canAccept(pkt))
        return false;
    if (pkt.cmd == MemCmd::Read) {
        ++_outstanding;
        ++demandReadsIssued;
        _dcache.access(pkt, [this](MemPacket &done) {
            readReturned(done);
        });
    } else {
        // Fire-and-forget, exactly like the CoreEngine: the System
        // run loop waits on inFlightDemands() for the tail writes.
        ++demandWritesIssued;
        _dcache.access(pkt, RespCallback{});
    }
    _finishTick = std::max(_finishTick, curTick());
    if (_curLine == _curLastLine) {
        ++recordsIssued;
        fetchNext();
    } else {
        _curLine += lineBytes;
    }
    return true;
}

void
TraceReplayEngine::pump()
{
    const bool timed = _cfg.mode == ReplayMode::Timed;
    while (_haveCur) {
        if (timed && _curTick > curTick()) {
            schedulePump(_curTick);
            return;
        }
        if (!_cur.isWrite && _cfg.mlp > 0 &&
            _outstanding >= _cfg.mlp) {
            _waitingMlp = true;  // readReturned() resumes the pump
            return;
        }
        if (!issueLine()) {
            ++backpressureStalls;
            schedulePump(curTick() + _cfg.retryInterval);
            return;
        }
    }
}

void
TraceReplayEngine::schedulePump(Tick when)
{
    if (_pumpScheduled)
        return;
    _pumpScheduled = true;
    _eq.schedule(std::max(when, curTick()), [this] {
        _pumpScheduled = false;
        pump();
    });
}

void
TraceReplayEngine::readReturned(const MemPacket &pkt)
{
    panic_if(_outstanding == 0, "read returned with none in flight");
    --_outstanding;
    demandReadLatency.sample(ticksToNs(pkt.completed - pkt.created));
    _finishTick = std::max(_finishTick, curTick());
    if (_waitingMlp) {
        _waitingMlp = false;
        pump();
    }
}

void
TraceReplayEngine::warmup(std::uint64_t budget)
{
    if (budget == 0)
        return;
    TdtzReader warm;
    fatal_if(!warm.open(_cfg.path), "replay warmup: %s",
             warm.error().c_str());
    ReplayRecord r;
    for (std::uint64_t i = 0; i < budget && warm.next(r); ++i) {
        const Addr last = lineAlign(r.addr + (r.size ? r.size - 1 : 0));
        for (Addr line = lineAlign(r.addr); line <= last;
             line += lineBytes) {
            _dcache.warmAccess(line, r.isWrite);
        }
    }
    fatal_if(!warm.ok(), "replay warmup: %s", warm.error().c_str());
}

void
TraceReplayEngine::regStats(StatGroup &g) const
{
    g.addScalar("records_issued", &recordsIssued);
    g.addScalar("demand_reads_issued", &demandReadsIssued);
    g.addScalar("demand_writes_issued", &demandWritesIssued);
    g.addScalar("backpressure_stalls", &backpressureStalls);
    g.addHistogram("demand_read_latency_ns", &demandReadLatency);
}

void
TraceReplayEngine::dumpDebug(std::FILE *f) const
{
    std::fprintf(f,
                 "replay %s (%s): pos=%llu/%llu outst=%u mlpWait=%d "
                 "pumpSched=%d haveCur=%d curTick=%llu\n",
                 _cfg.path.c_str(), replayModeName(_cfg.mode),
                 (unsigned long long)_reader.position(),
                 (unsigned long long)_reader.info().records,
                 _outstanding, _waitingMlp, _pumpScheduled, _haveCur,
                 (unsigned long long)_curTick);
}

} // namespace tsim
