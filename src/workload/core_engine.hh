/**
 * @file
 * Multi-core request engine.
 *
 * Replaces gem5's cores + OS (DESIGN.md substitution #1): each core
 * runs an address-stream generator through a private L1 and the
 * shared LLC; LLC misses become DRAM-cache read demands and LLC
 * dirty evictions become DRAM-cache write demands. Cores are
 * MLP-limited (a bounded number of outstanding fills), so demand
 * latency directly throttles progress — the property the paper's
 * speedup results rest on.
 */

#ifndef TSIM_WORKLOAD_CORE_ENGINE_HH
#define TSIM_WORKLOAD_CORE_ENGINE_HH

#include <memory>
#include <vector>

#include "cache/sram_cache.hh"
#include "dcache/dram_cache.hh"
#include "mem/types.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "workload/generator.hh"
#include "workload/request_engine.hh"

namespace tsim
{

/** Core/cache-hierarchy parameters (scaled from Table III / Fig 8). */
struct CoreConfig
{
    unsigned cores = 8;
    unsigned mlp = 4;             ///< outstanding DRAM-cache reads/core
    Tick thinkTime = nsToTicks(3);///< issue gap between memory ops
    std::uint64_t opsPerCore = 100000;

    std::uint64_t l1Bytes = 64 * 1024;
    unsigned l1Ways = 8;
    Tick l1Latency = nsToTicks(1);

    std::uint64_t llcBytes = 2 * 1024 * 1024;
    unsigned llcWays = 16;
    Tick llcLatency = nsToTicks(4);

    Tick retryInterval = nsToTicks(4); ///< backpressure retry period
};

/** Drives the whole hierarchy with one workload. */
class CoreEngine : public RequestEngine
{
  public:
    /**
     * @param gens One generator per core (cfg.cores entries).
     */
    CoreEngine(EventQueue &eq, std::string name, const CoreConfig &cfg,
               std::vector<std::unique_ptr<AddressGenerator>> gens,
               DramCacheCtrl &dcache, std::uint64_t seed);

    /** Schedule the first issue event of every core. */
    void start() override;

    /** True once every core issued and retired all its operations. */
    bool done() const override { return _coresDone == _cfg.cores; }

    /** Tick at which the last core finished. */
    Tick finishTick() const override { return _finishTick; }

    /**
     * Warm the functional state (L1s, LLC, DRAM-cache tags) with
     * @p ops_per_core operations per core, consuming no simulated
     * time. Mirrors the paper's warmed-up checkpoints (§IV-B).
     */
    void warmup(std::uint64_t ops_per_core) override;

    /** @name Statistics. */
    /// @{
    Scalar opsRetired;
    Scalar demandReadsIssued;
    Scalar demandWritesIssued;
    Scalar backpressureStalls;
    Histogram demandReadLatency{4.0, 512};  ///< ns at the core
    /// @}

    double
    meanDemandReadLatencyNs() const override
    {
        return demandReadLatency.mean();
    }

    std::uint64_t
    backpressureStallCount() const override
    {
        return static_cast<std::uint64_t>(backpressureStalls.value());
    }

    SramCache &llc() { return _llc; }
    SramCache &l1(unsigned core) { return *_l1s[core]; }

    void regStats(StatGroup &g) const override;

    /** Print per-core live state (deadlock debugging). */
    void dumpDebug(std::FILE *f) const override;

  private:
    /**
     * Node of a core's backpressured-demand FIFO. Nodes are recycled
     * through an engine-wide free list carved from chunked slabs, so
     * the issue path never allocates once warm.
     */
    struct StallNode
    {
        MemPacket pkt;
        StallNode *next = nullptr;
    };

    struct Core
    {
        std::unique_ptr<AddressGenerator> gen;
        std::uint64_t issued = 0;       ///< ops consumed from the gen
        std::uint64_t retired = 0;
        unsigned outstanding = 0;       ///< in-flight DRAM-cache reads
        Tick readyAt = 0;               ///< local pipeline time
        bool issueScheduled = false;
        bool finished = false;
        StallNode *stalledHead = nullptr;  ///< backpressured demands
        StallNode *stalledTail = nullptr;
        bool hasStalled() const { return stalledHead != nullptr; }
    };

    void advance(unsigned c);
    void scheduleAdvance(unsigned c, Tick when);

    /**
     * Route one post-L1 access through the LLC, emitting DRAM-cache
     * demands. @return false if backpressure stalled the core (the
     * demand packets are parked in core.stalled).
     */
    bool handleL1Miss(unsigned c, Addr addr, bool is_store);

    /** Try to issue every parked demand. @return true if all went. */
    bool drainStalled(unsigned c);

    bool issueDemand(unsigned c, MemPacket &pkt);
    void readReturned(unsigned c, const MemPacket &pkt);
    void maybeFinish(unsigned c);

    /** Park one demand at the tail of @p core's stalled FIFO. */
    void pushStalled(Core &core, const MemPacket &pkt);
    /** Unlink the front stalled demand and recycle its node. */
    void popStalled(Core &core);
    StallNode *allocStall();

    CoreConfig _cfg;
    DramCacheCtrl &_dcache;
    SramCache _llc;
    std::vector<std::unique_ptr<SramCache>> _l1s;
    std::vector<Core> _cores;
    Rng _rng;
    unsigned _coresDone = 0;
    Tick _finishTick = 0;
    PacketId _nextPktId = 1;
    std::vector<std::unique_ptr<StallNode[]>> _stallChunks;
    StallNode *_stallFree = nullptr;
};

} // namespace tsim

#endif // TSIM_WORKLOAD_CORE_ENGINE_HH
