/**
 * @file
 * Synthetic address-stream generators.
 *
 * The paper drives its evaluation with NPB (class C/D) and GAPBS
 * (synthetic graphs, scale 22/25) running under a full OS in gem5.
 * We substitute parameterized generators that reproduce the
 * properties the DRAM cache actually reacts to: footprint relative
 * to cache capacity (miss ratio), store fraction (write-demand mix),
 * spatial locality (bank/row behaviour) and temporal reuse
 * (hit/dirty distribution). See DESIGN.md, substitution #2.
 */

#ifndef TSIM_WORKLOAD_GENERATOR_HH
#define TSIM_WORKLOAD_GENERATOR_HH

#include <cmath>
#include <memory>
#include <vector>

#include "mem/types.hh"
#include "sim/rng.hh"

namespace tsim
{

/** One generated memory operation. */
struct MemOp
{
    Addr addr = 0;
    bool isStore = false;
};

/** Abstract per-core address-stream generator. */
class AddressGenerator
{
  public:
    virtual ~AddressGenerator() = default;

    /** Produce the next operation. */
    virtual MemOp next(Rng &rng) = 0;
};

/**
 * Sequential streaming over a region (ft/mg-style sweeps).
 *
 * Walks `streams` interleaved sequential pointers (FFT passes,
 * multigrid levels); each advances by one line per visit and wraps.
 */
class StreamGenerator : public AddressGenerator
{
  public:
    /**
     * @param phase Starting position as a fraction of the region;
     *        cores use distinct phases so threads sweep different
     *        segments instead of running in lockstep.
     */
    StreamGenerator(Addr base, std::uint64_t region_bytes,
                    unsigned streams, double store_fraction,
                    double phase = 0.0)
        : _base(base), _lines(region_bytes / lineBytes),
          _storeFraction(store_fraction), _cursor(streams, 0)
    {
        const auto shift = static_cast<std::uint64_t>(
            phase * static_cast<double>(_lines));
        for (unsigned s = 0; s < streams; ++s)
            _cursor[s] = (_lines / streams * s + shift) % _lines;
    }

    MemOp
    next(Rng &rng) override
    {
        const unsigned s =
            static_cast<unsigned>(_turn++ % _cursor.size());
        std::uint64_t line = _cursor[s];
        _cursor[s] = (line + 1) % _lines;
        return {_base + line * lineBytes, rng.chance(_storeFraction)};
    }

  private:
    Addr _base;
    std::uint64_t _lines;
    double _storeFraction;
    std::vector<std::uint64_t> _cursor;
    std::uint64_t _turn = 0;
};

/** Uniform random access over a region (is-style scatter). */
class RandomGenerator : public AddressGenerator
{
  public:
    RandomGenerator(Addr base, std::uint64_t region_bytes,
                    double store_fraction)
        : _base(base), _lines(region_bytes / lineBytes),
          _storeFraction(store_fraction)
    {}

    MemOp
    next(Rng &rng) override
    {
        return {_base + rng.range(_lines) * lineBytes,
                rng.chance(_storeFraction)};
    }

  private:
    Addr _base;
    std::uint64_t _lines;
    double _storeFraction;
};

/**
 * Zipf-distributed access over a region (graph-analytics vertex
 * streams: a few hub vertices absorb most accesses).
 *
 * Uses Gray et al.'s rejection sampler; exact for alpha > 1 and a
 * good approximation as alpha -> 1.
 */
class ZipfGenerator : public AddressGenerator
{
  public:
    /**
     * @param alpha Skew exponent. alpha > 1 uses Gray et al.'s
     *        rejection sampler (exact); alpha <= 1 uses a continuum
     *        inverse-CDF approximation (CDF(k) ~ (k/N)^(1-alpha),
     *        or log-uniform at alpha == 1), which is the regime of
     *        real graph degree distributions.
     */
    ZipfGenerator(Addr base, std::uint64_t region_bytes, double alpha,
                  double store_fraction)
        : _base(base), _lines(region_bytes / lineBytes),
          _alpha(alpha), _storeFraction(store_fraction)
    {
        if (_alpha > 1.0) {
            _am1 = _alpha - 1.0;
            _b = std::pow(2.0, _am1);
        }
    }

    MemOp
    next(Rng &rng) override
    {
        const std::uint64_t rank =
            _alpha > 1.0 ? sampleHeavy(rng) : sampleFlat(rng);
        // Scatter ranks over the region so hot lines spread across
        // channels/banks instead of clustering at the base.
        const std::uint64_t line = scatter(rank) % _lines;
        return {_base + line * lineBytes, rng.chance(_storeFraction)};
    }

  private:
    /** Gray's rejection sampler for alpha > 1. */
    std::uint64_t
    sampleHeavy(Rng &rng)
    {
        for (;;) {
            const double u = 1.0 - rng.uniform();  // (0, 1]
            const double v = rng.uniform();
            const double x = std::floor(std::pow(u, -1.0 / _am1));
            if (x > static_cast<double>(_lines) || x < 1.0)
                continue;
            const double t = std::pow(1.0 + 1.0 / x, _am1);
            if (v * x * (t - 1.0) / (_b - 1.0) <= t / _b)
                return static_cast<std::uint64_t>(x) - 1;
        }
    }

    /** Inverse-CDF approximation for alpha <= 1. */
    std::uint64_t
    sampleFlat(Rng &rng)
    {
        const double u = 1.0 - rng.uniform();  // (0, 1]
        double k;
        if (_alpha > 0.999) {
            // alpha == 1: ranks are log-uniform.
            k = std::pow(static_cast<double>(_lines), u);
        } else {
            k = std::pow(u, 1.0 / (1.0 - _alpha)) *
                static_cast<double>(_lines);
        }
        auto rank = static_cast<std::uint64_t>(k);
        return rank >= _lines ? _lines - 1 : rank;
    }

    static std::uint64_t
    scatter(std::uint64_t x)
    {
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 33;
        return x;
    }

    Addr _base;
    std::uint64_t _lines;
    double _alpha;
    double _storeFraction;
    double _am1 = 0;
    double _b = 0;
};

/**
 * Stencil sweeps (bt/lu/sp/ua-style): multiple arrays traversed
 * together with near-neighbour reuse, a read set and a written
 * result array.
 */
class StencilGenerator : public AddressGenerator
{
  public:
    /**
     * @param arrays Number of co-traversed arrays (>= 2; the last
     *               one is the store target).
     */
    StencilGenerator(Addr base, std::uint64_t region_bytes,
                     unsigned arrays, double phase = 0.0)
        : _base(base), _arrays(arrays < 2 ? 2 : arrays),
          _arrayLines(region_bytes / lineBytes / _arrays)
    {
        _i = static_cast<std::uint64_t>(
                 phase * static_cast<double>(_arrayLines)) %
             _arrayLines;
    }

    MemOp
    next(Rng &rng) override
    {
        const unsigned a = _phase;
        _phase = (_phase + 1) % _arrays;
        std::uint64_t line = _i;
        if (_phase == 0)
            _i = (_i + 1) % _arrayLines;
        // Neighbour touch: occasionally revisit the previous line.
        if (line > 0 && rng.chance(0.2))
            --line;
        const bool store = (a == _arrays - 1);
        return {_base + (a * _arrayLines + line) * lineBytes, store};
    }

  private:
    Addr _base;
    unsigned _arrays;
    std::uint64_t _arrayLines;
    unsigned _phase = 0;
    std::uint64_t _i = 0;
};

/**
 * Temporal phases: runs each sub-generator for a fixed number of
 * operations before moving to the next, cycling. Models phasic HPC
 * behaviour (BFS frontier growth/shrink, multigrid V-cycles,
 * alternating compute/exchange steps) that a stationary mixture
 * cannot express.
 */
class PhaseGenerator : public AddressGenerator
{
  public:
    void
    add(std::unique_ptr<AddressGenerator> gen, std::uint64_t ops)
    {
        _phases.push_back({std::move(gen), ops});
    }

    MemOp
    next(Rng &rng) override
    {
        Phase &p = _phases[_current];
        MemOp op = p.gen->next(rng);
        if (++_opsInPhase >= p.ops) {
            _opsInPhase = 0;
            _current = (_current + 1) % _phases.size();
        }
        return op;
    }

    std::size_t currentPhase() const { return _current; }

  private:
    struct Phase
    {
        std::unique_ptr<AddressGenerator> gen;
        std::uint64_t ops;
    };

    std::vector<Phase> _phases;
    std::size_t _current = 0;
    std::uint64_t _opsInPhase = 0;
};

/**
 * OS-style physical page scatter.
 *
 * Workload generators produce *virtual* addresses in contiguous
 * regions; a real OS backs them with physical pages scattered over
 * the whole memory, which is what makes direct-mapped DRAM-cache
 * conflicts statistically uniform. This wrapper applies a bijective
 * page-granular permutation (a 4-round Feistel network over the
 * page index, so no two virtual pages alias) shared by all cores.
 */
class PageScatterGenerator : public AddressGenerator
{
  public:
    static constexpr unsigned pageBytes = 4096;

    /**
     * @param space_bytes Physical space size; rounded up to a power
     *        of two internally.
     */
    PageScatterGenerator(std::unique_ptr<AddressGenerator> inner,
                         std::uint64_t space_bytes,
                         std::uint64_t seed)
        : _inner(std::move(inner))
    {
        std::uint64_t pages = (space_bytes + pageBytes - 1) / pageBytes;
        _bits = 1;
        while ((1ULL << _bits) < pages)
            ++_bits;
        if (_bits & 1)
            ++_bits;  // Feistel needs an even number of bits
        _halfBits = _bits / 2;
        _halfMask = (1ULL << _halfBits) - 1;
        for (unsigned r = 0; r < rounds; ++r)
            _keys[r] = seed * 0x9e3779b97f4a7c15ULL + r * 0xbf58476d1ce4e5b9ULL;
    }

    MemOp
    next(Rng &rng) override
    {
        MemOp op = _inner->next(rng);
        const std::uint64_t page = op.addr / pageBytes;
        const std::uint64_t offset = op.addr % pageBytes;
        op.addr = permute(page) * pageBytes + offset;
        return op;
    }

    /** Expose the permutation for tests. */
    std::uint64_t
    permute(std::uint64_t page) const
    {
        std::uint64_t l = (page >> _halfBits) & _halfMask;
        std::uint64_t r = page & _halfMask;
        for (unsigned i = 0; i < rounds; ++i) {
            std::uint64_t t = l ^ (mix(r ^ _keys[i]) & _halfMask);
            l = r;
            r = t;
        }
        return (l << _halfBits) | r;
    }

    unsigned spaceBits() const { return _bits; }

  private:
    static constexpr unsigned rounds = 4;

    static std::uint64_t
    mix(std::uint64_t x)
    {
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        return x;
    }

    std::unique_ptr<AddressGenerator> _inner;
    unsigned _bits = 2;
    unsigned _halfBits = 1;
    std::uint64_t _halfMask = 1;
    std::uint64_t _keys[rounds] = {};
};

/**
 * Weighted mixture of sub-generators (e.g. PageRank: sequential edge
 * scan + random destination-vertex updates).
 */
class MixGenerator : public AddressGenerator
{
  public:
    void
    add(std::unique_ptr<AddressGenerator> gen, double weight)
    {
        _parts.push_back({std::move(gen), weight});
        _totalWeight += weight;
    }

    MemOp
    next(Rng &rng) override
    {
        double pick = rng.uniform() * _totalWeight;
        for (auto &p : _parts) {
            pick -= p.weight;
            if (pick <= 0)
                return p.gen->next(rng);
        }
        return _parts.back().gen->next(rng);
    }

  private:
    struct Part
    {
        std::unique_ptr<AddressGenerator> gen;
        double weight;
    };

    std::vector<Part> _parts;
    double _totalWeight = 0;
};

} // namespace tsim

#endif // TSIM_WORKLOAD_GENERATOR_HH
