#include "workload/profiles.hh"

#include "sim/logging.hh"

namespace tsim
{

namespace
{

std::vector<WorkloadProfile>
buildWorkloads()
{
    std::vector<WorkloadProfile> w;
    auto add = [&](std::string name, std::string suite, GenKind kind,
                   double fp, double store, bool high,
                   double alpha = 1.1, unsigned streams = 4,
                   unsigned arrays = 4, double shared = 0.3) {
        WorkloadProfile p;
        p.name = std::move(name);
        p.suite = std::move(suite);
        p.kind = kind;
        p.footprintScale = fp;
        p.storeFraction = store;
        p.highMiss = high;
        p.zipfAlpha = alpha;
        p.streams = streams;
        p.arrays = arrays;
        p.sharedFraction = shared;
        w.push_back(std::move(p));
    };

    // --- NPB class C: footprints mostly below the 8 GiB cache ---
    add("bt.C", "NPB-C", GenKind::Stencil, 0.45, 0.35, false);
    add("cg.C", "NPB-C", GenKind::GraphMix, 0.55, 0.15, false, 1.2);
    add("ep.C", "NPB-C", GenKind::Random, 0.02, 0.30, false);
    add("ft.C", "NPB-C", GenKind::Stream, 3.80, 0.40, true, 1.1, 6);
    add("is.C", "NPB-C", GenKind::Random, 0.80, 0.50, false);
    add("lu.C", "NPB-C", GenKind::Stencil, 0.40, 0.30, false);
    add("mg.C", "NPB-C", GenKind::Stream, 3.50, 0.30, true, 1.1, 8);
    add("sp.C", "NPB-C", GenKind::Stencil, 0.50, 0.35, false);
    add("ua.C", "NPB-C", GenKind::Stencil, 0.70, 0.40, false, 1.1, 4,
        6);

    // --- NPB class D: ~8-16x larger footprints; high miss ratios ---
    add("bt.D", "NPB-D", GenKind::Stencil, 3.6, 0.35, true);
    add("cg.D", "NPB-D", GenKind::GraphMix, 4.4, 0.15, true, 1.2);
    add("ep.D", "NPB-D", GenKind::Random, 0.12, 0.30, false);
    add("ft.D", "NPB-D", GenKind::Stream, 10.0, 0.40, true, 1.1, 6);
    add("is.D", "NPB-D", GenKind::Random, 6.0, 0.50, true);
    add("lu.D", "NPB-D", GenKind::Stencil, 3.2, 0.30, true);
    add("mg.D", "NPB-D", GenKind::Stream, 9.0, 0.30, true, 1.1, 8);
    add("sp.D", "NPB-D", GenKind::Stencil, 4.0, 0.35, true);
    add("ua.D", "NPB-D", GenKind::Stencil, 5.5, 0.40, true, 1.1, 4,
        6);

    // --- GAPBS: scale-22 graphs fit; scale-25 graphs overflow ---
    add("bc.22", "GAPBS", GenKind::Zipf, 0.50, 0.30, false, 1.15, 4,
        4, 0.6);
    add("bc.25", "GAPBS", GenKind::Zipf, 5.0, 0.30, true, 0.60, 4, 4,
        0.6);
    add("bfs.22", "GAPBS", GenKind::Zipf, 0.40, 0.20, false, 1.2, 4,
        4, 0.6);
    add("bfs.25", "GAPBS", GenKind::Zipf, 4.5, 0.20, true, 0.60, 4, 4,
        0.6);
    add("cc.22", "GAPBS", GenKind::Random, 0.45, 0.25, false);
    add("cc.25", "GAPBS", GenKind::Random, 3.6, 0.25, true);
    add("pr.22", "GAPBS", GenKind::GraphMix, 0.55, 0.30, false, 1.1);
    add("pr.25", "GAPBS", GenKind::GraphMix, 4.4, 0.30, true, 1.1);
    add("sssp.22", "GAPBS", GenKind::Zipf, 0.60, 0.25, false, 1.1, 4,
        4, 0.5);
    add("sssp.25", "GAPBS", GenKind::Zipf, 5.5, 0.25, true, 0.60, 4, 4,
        0.5);
    return w;
}

} // namespace

const std::vector<WorkloadProfile> &
allWorkloads()
{
    static const std::vector<WorkloadProfile> w = buildWorkloads();
    return w;
}

const WorkloadProfile &
findWorkload(const std::string &name)
{
    for (const auto &w : allWorkloads()) {
        if (w.name == name)
            return w;
    }
    fatal("unknown workload '%s'", name.c_str());
}

std::vector<WorkloadProfile>
representativeWorkloads()
{
    // One of each behaviour class, half low / half high miss ratio,
    // spanning all three suites.
    static const char *names[] = {
        "bt.C", "is.C", "bfs.22", "pr.22",
        "ft.C", "is.D", "bfs.25", "pr.25",
    };
    std::vector<WorkloadProfile> w;
    for (const char *n : names)
        w.push_back(findWorkload(n));
    return w;
}

std::uint64_t
footprintBytes(const WorkloadProfile &profile,
               std::uint64_t dcache_capacity)
{
    auto fp = static_cast<std::uint64_t>(
        profile.footprintScale * static_cast<double>(dcache_capacity));
    // Keep at least a few rows per core and line alignment.
    if (fp < 1ULL << 16)
        fp = 1ULL << 16;
    return fp & ~static_cast<std::uint64_t>(lineBytes - 1);
}

std::unique_ptr<AddressGenerator>
makeGenerator(const WorkloadProfile &profile, unsigned core_id,
              unsigned num_cores, std::uint64_t dcache_capacity)
{
    const std::uint64_t fp = footprintBytes(profile, dcache_capacity);
    const auto shared_bytes = static_cast<std::uint64_t>(
        static_cast<double>(fp) * profile.sharedFraction);
    const std::uint64_t priv_total = fp - shared_bytes;
    const std::uint64_t priv_bytes = priv_total / num_cores;
    const Addr priv_base = shared_bytes + core_id * priv_bytes;

    // Distinct sweep phases per core: threads of an HPC job partition
    // iteration spaces rather than scanning in lockstep.
    const double phase =
        static_cast<double>(core_id) / static_cast<double>(num_cores);

    auto make_part = [&](Addr base,
                         std::uint64_t bytes)
        -> std::unique_ptr<AddressGenerator> {
        switch (profile.kind) {
          case GenKind::Stream:
            return std::make_unique<StreamGenerator>(
                base, bytes, profile.streams, profile.storeFraction,
                phase);
          case GenKind::Random:
            return std::make_unique<RandomGenerator>(
                base, bytes, profile.storeFraction);
          case GenKind::Zipf:
            return std::make_unique<ZipfGenerator>(
                base, bytes, profile.zipfAlpha, profile.storeFraction);
          case GenKind::Stencil:
            return std::make_unique<StencilGenerator>(
                base, bytes, profile.arrays, phase);
          case GenKind::GraphMix: {
            // Sequential edge scan + skewed vertex updates.
            auto mix = std::make_unique<MixGenerator>();
            const std::uint64_t edges = bytes * 3 / 4;
            mix->add(std::make_unique<StreamGenerator>(
                         base, edges, 2, profile.storeFraction * 0.3,
                         phase),
                     0.6);
            mix->add(std::make_unique<ZipfGenerator>(
                         base + edges, bytes - edges, profile.zipfAlpha,
                         profile.storeFraction * 1.5),
                     0.4);
            return mix;
          }
          default:
            fatal("unknown generator kind");
        }
    };

    std::unique_ptr<AddressGenerator> gen;
    if (shared_bytes < (1ULL << 12) || priv_bytes < (1ULL << 12)) {
        // Degenerate split: use the whole footprint as one region.
        gen = make_part(0, fp);
    } else {
        auto mix = std::make_unique<MixGenerator>();
        mix->add(make_part(0, shared_bytes), profile.sharedFraction);
        mix->add(make_part(priv_base, priv_bytes),
                 1.0 - profile.sharedFraction);
        gen = std::move(mix);
    }

    // OS-style physical page scatter, identical for every core of a
    // workload so shared virtual pages stay shared physically.
    std::uint64_t name_seed = 1469598103934665603ULL;
    for (char ch : profile.name)
        name_seed = (name_seed ^ static_cast<unsigned char>(ch)) *
                    1099511628211ULL;
    return std::make_unique<PageScatterGenerator>(std::move(gen), fp,
                                                  name_seed);
}

std::uint64_t
physicalSpaceBytes(const WorkloadProfile &profile,
                   std::uint64_t dcache_capacity)
{
    const std::uint64_t fp = footprintBytes(profile, dcache_capacity);
    // Must mirror PageScatterGenerator's rounding (even bit count).
    const std::uint64_t pages =
        (fp + PageScatterGenerator::pageBytes - 1) /
        PageScatterGenerator::pageBytes;
    unsigned bits = 1;
    while ((1ULL << bits) < pages)
        ++bits;
    if (bits & 1)
        ++bits;
    return (1ULL << bits) * PageScatterGenerator::pageBytes;
}

} // namespace tsim
