/**
 * @file
 * Memory-trace capture and replay.
 *
 * A trace is a plain-text file, one operation per line:
 *
 *     R 0x7f3a91c0
 *     W 0x100040
 *
 * Traces let users drive the simulator with address streams captured
 * from real applications (e.g. via Pin/DynamoRIO or gem5's probes)
 * instead of the synthetic profiles.
 */

#ifndef TSIM_WORKLOAD_TRACE_HH
#define TSIM_WORKLOAD_TRACE_HH

#include <string>
#include <vector>

#include "workload/generator.hh"

namespace tsim
{

/** In-memory trace: a sequence of operations. */
class Trace
{
  public:
    /** Parse a trace file; fatal on malformed lines. */
    static Trace load(const std::string &path);

    /** Write the trace back out (round-trips with load()). */
    void save(const std::string &path) const;

    void add(Addr addr, bool is_store)
    {
        _ops.push_back({addr, is_store});
    }

    const std::vector<MemOp> &ops() const { return _ops; }
    std::size_t size() const { return _ops.size(); }
    bool empty() const { return _ops.empty(); }

    /** Largest line-aligned address + one line (footprint bound). */
    Addr maxAddr() const;

  private:
    std::vector<MemOp> _ops;
};

/**
 * Replays a trace as an AddressGenerator, wrapping at the end.
 *
 * Multiple cores can replay the same Trace with round-robin
 * interleaving: core i of n consumes ops i, i+n, i+2n, ...
 */
class TraceReplayGenerator : public AddressGenerator
{
  public:
    /**
     * @param trace  Must outlive the generator.
     * @param core   This core's lane.
     * @param stride Total number of interleaved lanes.
     */
    TraceReplayGenerator(const Trace &trace, unsigned core = 0,
                         unsigned stride = 1)
        : _trace(trace), _pos(core), _stride(stride)
    {}

    MemOp
    next(Rng &) override
    {
        const auto &ops = _trace.ops();
        const MemOp op = ops[_pos % ops.size()];
        _pos += _stride;
        return op;
    }

  private:
    const Trace &_trace;
    std::size_t _pos;
    unsigned _stride;
};

} // namespace tsim

#endif // TSIM_WORKLOAD_TRACE_HH
