/**
 * @file
 * Trace-replay front end (DESIGN.md §14).
 *
 * Streams a recorded .tdtz request sequence into the DRAM-cache
 * controller through the same RequestEngine interface the synthetic
 * CoreEngine implements, so any controller/device configuration can
 * be driven by a captured stream instead of a generator. Two modes:
 *
 *  - Timed (default): each record issues at its recorded absolute
 *    tick (the running sum of inter-arrival deltas). Controller
 *    backpressure delays the stream — records never reorder — and
 *    is retried every retryInterval. This mode reproduces a capture
 *    run's demand timing exactly, which is what the CI
 *    replay-equivalence gate rests on.
 *  - Afap (as fast as possible): inter-arrival deltas are ignored;
 *    the next record issues as soon as the controller accepts it and
 *    an MLP slot is free. Device throughput, not the recorded clock,
 *    paces the run — the mode for stress and capacity studies.
 *
 * Like the CoreEngine, the replay engine is MLP-limited (bounded
 * outstanding reads; writes are fire-and-forget) and schedules all
 * of its events on the front shard's queue, so sharded runs
 * (--threads N) stay byte-identical for any N.
 */

#ifndef TSIM_WORKLOAD_REPLAY_ENGINE_HH
#define TSIM_WORKLOAD_REPLAY_ENGINE_HH

#include <string>

#include "dcache/dram_cache.hh"
#include "mem/types.hh"
#include "trace/tdtz.hh"
#include "workload/request_engine.hh"

namespace tsim
{

/** Replay pacing modes. */
enum class ReplayMode
{
    Timed,  ///< issue at recorded ticks (timing-faithful)
    Afap,   ///< issue on acceptance (back-pressure-driven)
};

/** Printable mode name ("timed" / "afap"). */
const char *replayModeName(ReplayMode m);

/** Parse "timed"/"afap"; false on anything else. */
bool parseReplayMode(const std::string &s, ReplayMode &out);

/** Replay parameters (SystemConfig embeds one). */
struct ReplayConfig
{
    std::string path;  ///< .tdtz input; empty = synthetic front end
    ReplayMode mode = ReplayMode::Timed;

    /**
     * Outstanding demand-read cap; 0 = unlimited. Timed replay
     * defaults to unlimited because the recorded stream already
     * embodies the capture run's concurrency; capping it would
     * distort the recorded timing.
     */
    unsigned mlp = 0;

    Tick retryInterval = nsToTicks(4);  ///< backpressure retry period
};

/** Drives the DRAM cache with a recorded .tdtz request stream. */
class TraceReplayEngine : public RequestEngine
{
  public:
    /** Opens cfg.path; fatal on unreadable/corrupt input. */
    TraceReplayEngine(EventQueue &eq, std::string name,
                      const ReplayConfig &cfg, DramCacheCtrl &dcache);

    void start() override;

    bool
    done() const override
    {
        return _exhausted && _outstanding == 0;
    }

    Tick finishTick() const override { return _finishTick; }

    /**
     * Functionally replay the first @p budget records into the
     * DRAM-cache tags (no simulated time), via a private cursor —
     * the replay cursor itself stays at record 0.
     */
    void warmup(std::uint64_t budget) override;

    double
    meanDemandReadLatencyNs() const override
    {
        return demandReadLatency.mean();
    }

    std::uint64_t
    backpressureStallCount() const override
    {
        return static_cast<std::uint64_t>(backpressureStalls.value());
    }

    void regStats(StatGroup &g) const override;
    void dumpDebug(std::FILE *f) const override;

    /** Footer totals of the stream being replayed. */
    const TdtzInfo &traceInfo() const { return _reader.info(); }

    /** @name Statistics. */
    /// @{
    Scalar recordsIssued;       ///< trace records fully issued
    Scalar demandReadsIssued;   ///< per-line read demands
    Scalar demandWritesIssued;  ///< per-line write demands
    Scalar backpressureStalls;
    Histogram demandReadLatency{4.0, 512};  ///< ns, end to end
    /// @}

  private:
    /**
     * Issue every record that is due (Timed) or acceptable (Afap),
     * in stream order; schedules its own continuation when blocked
     * on time or backpressure. MLP blocks are resumed by
     * readReturned() instead.
     */
    void pump();

    /** Load the next record into the line-expansion cursor. */
    void fetchNext();

    /** Issue the line at the cursor. False on backpressure. */
    bool issueLine();

    void readReturned(const MemPacket &pkt);
    void schedulePump(Tick when);

    ReplayConfig _cfg;
    DramCacheCtrl &_dcache;
    TdtzReader _reader;

    // Line-expansion cursor over the current record (a record larger
    // than one line issues one demand per touched line, same tick).
    bool _haveCur = false;
    bool _exhausted = false;  ///< no current record and none left
    ReplayRecord _cur{};
    Addr _curLine = 0;     ///< next line of the current record
    Addr _curLastLine = 0; ///< last line of the current record
    Tick _curTick = 0;     ///< recorded absolute issue tick (Timed)

    unsigned _outstanding = 0;  ///< in-flight demand reads
    bool _waitingMlp = false;   ///< pump parked on a full MLP window
    bool _pumpScheduled = false;
    Tick _finishTick = 0;
    PacketId _nextPktId = 1;
};

} // namespace tsim

#endif // TSIM_WORKLOAD_REPLAY_ENGINE_HH
