/**
 * @file
 * The 28 evaluated workloads (paper §IV-B): NPB classes C and D and
 * GAPBS kernels on synthetic graphs of scale 22 and 25.
 *
 * Each profile parameterizes a generator so that the DRAM-cache-
 * relevant behaviour matches the paper's characterization (Figure 1):
 * footprint/capacity ratio sets the miss group (low < 30 %,
 * high > 50 %), the store fraction sets the write-demand mix, and
 * the generator kind sets locality. Footprints are expressed
 * relative to the DRAM-cache capacity so the scaled default configs
 * keep the paper's ratios.
 */

#ifndef TSIM_WORKLOAD_PROFILES_HH
#define TSIM_WORKLOAD_PROFILES_HH

#include <memory>
#include <string>
#include <vector>

#include "workload/generator.hh"

namespace tsim
{

/** Generator families used by the profiles. */
enum class GenKind : std::uint8_t
{
    Stream,    ///< sequential sweeps (ft, mg)
    Random,    ///< uniform scatter (is, cc)
    Zipf,      ///< power-law vertex access (bfs, bc, sssp)
    Stencil,   ///< co-traversed grid arrays (bt, lu, sp, ua)
    GraphMix,  ///< sequential edge scan + random vertex updates (pr, cg)
};

/** Static description of one workload. */
struct WorkloadProfile
{
    std::string name;        ///< e.g. "ft.C", "bfs.25"
    std::string suite;       ///< "NPB-C", "NPB-D", "GAPBS"
    GenKind kind;
    double footprintScale;   ///< footprint / DRAM-cache capacity
    double storeFraction;    ///< fraction of ops that are stores
    double zipfAlpha = 1.1;
    unsigned streams = 4;    ///< Stream: concurrent sweep pointers
    unsigned arrays = 4;     ///< Stencil: co-traversed arrays
    double sharedFraction = 0.3; ///< ops hitting the shared region
    bool highMiss = false;   ///< paper's miss-ratio grouping
};

/** All 28 workloads. */
const std::vector<WorkloadProfile> &allWorkloads();

/** Lookup by name; fatal if unknown. */
const WorkloadProfile &findWorkload(const std::string &name);

/** A smaller representative set for quick benchmark runs. */
std::vector<WorkloadProfile> representativeWorkloads();

/**
 * Build core @p core_id's generator for @p profile.
 *
 * The footprint is split into a shared region (all cores) and
 * per-core private regions, mirroring multithreaded HPC sharing.
 *
 * @param dcache_capacity DRAM-cache capacity the footprint scales
 *        against.
 */
std::unique_ptr<AddressGenerator>
makeGenerator(const WorkloadProfile &profile, unsigned core_id,
              unsigned num_cores, std::uint64_t dcache_capacity);

/** Total footprint in bytes for a given cache capacity. */
std::uint64_t footprintBytes(const WorkloadProfile &profile,
                             std::uint64_t dcache_capacity);

/**
 * Physical address-space size the scattered footprint occupies
 * (the main memory must be at least this large).
 */
std::uint64_t physicalSpaceBytes(const WorkloadProfile &profile,
                                 std::uint64_t dcache_capacity);

} // namespace tsim

#endif // TSIM_WORKLOAD_PROFILES_HH
