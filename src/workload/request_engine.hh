/**
 * @file
 * Front-end interface shared by every workload engine.
 *
 * A System drives exactly one request engine: the synthetic
 * CoreEngine (generators through an L1/LLC hierarchy) or the
 * TraceReplayEngine (a recorded .tdtz request stream). Both issue
 * demands into DramCacheCtrl::access() from the front shard's event
 * queue, so the sharded-execution determinism contract (DESIGN.md
 * §12) holds for either engine without special cases. This interface
 * is the System-facing surface they share.
 */

#ifndef TSIM_WORKLOAD_REQUEST_ENGINE_HH
#define TSIM_WORKLOAD_REQUEST_ENGINE_HH

#include <cstdint>
#include <cstdio>

#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace tsim
{

/** Abstract demand-issuing front end (one per System). */
class RequestEngine : public SimObject
{
  public:
    using SimObject::SimObject;
    ~RequestEngine() override = default;

    /** Schedule the engine's first event(s); called once at tick 0. */
    virtual void start() = 0;

    /** True once the engine will issue no further demands. */
    virtual bool done() const = 0;

    /** Tick at which the workload finished (report runtime). */
    virtual Tick finishTick() const = 0;

    /**
     * Warm the functional state (caches, DRAM-cache tags) without
     * consuming simulated time. The budget parameter is interpreted
     * per engine: operations per core (CoreEngine) or total records
     * (TraceReplayEngine).
     */
    virtual void warmup(std::uint64_t budget) = 0;

    /** Mean end-to-end demand-read latency in ns (SimReport). */
    virtual double meanDemandReadLatencyNs() const = 0;

    /** Issue attempts rejected by controller backpressure. */
    virtual std::uint64_t backpressureStallCount() const = 0;

    virtual void regStats(StatGroup &g) const = 0;

    /** Print live issue state (deadlock debugging). */
    virtual void dumpDebug(std::FILE *f) const = 0;
};

} // namespace tsim

#endif // TSIM_WORKLOAD_REQUEST_ENGINE_HH
