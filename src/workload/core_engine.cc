#include "workload/core_engine.hh"

#include <algorithm>

namespace tsim
{

CoreEngine::CoreEngine(
    EventQueue &eq, std::string name, const CoreConfig &cfg,
    std::vector<std::unique_ptr<AddressGenerator>> gens,
    DramCacheCtrl &dcache, std::uint64_t seed)
    : RequestEngine(eq, std::move(name)), _cfg(cfg), _dcache(dcache),
      _llc("llc", cfg.llcBytes, cfg.llcWays, cfg.llcLatency),
      _rng(seed)
{
    fatal_if(gens.size() != cfg.cores,
             "need one generator per core (%u cores, %zu gens)",
             cfg.cores, gens.size());
    _cores.resize(cfg.cores);
    for (unsigned c = 0; c < cfg.cores; ++c) {
        _l1s.push_back(std::make_unique<SramCache>(
            "l1." + std::to_string(c), cfg.l1Bytes, cfg.l1Ways,
            cfg.l1Latency));
        _cores[c].gen = std::move(gens[c]);
    }
}

CoreEngine::StallNode *
CoreEngine::allocStall()
{
    if (!_stallFree) {
        constexpr std::size_t chunkNodes = 64;
        // tdram-lint:allow(hot-alloc): amortized stalled-list chunk
        // growth — one allocation per 64 nodes, then recycled.
        auto chunk = std::make_unique<StallNode[]>(chunkNodes);
        for (std::size_t i = 0; i < chunkNodes; ++i) {
            chunk[i].next = _stallFree;
            _stallFree = &chunk[i];
        }
        _stallChunks.push_back(std::move(chunk));
    }
    StallNode *n = _stallFree;
    _stallFree = n->next;
    n->next = nullptr;
    return n;
}

void
CoreEngine::pushStalled(Core &core, const MemPacket &pkt)
{
    StallNode *n = allocStall();
    n->pkt = pkt;
    if (core.stalledTail)
        core.stalledTail->next = n;
    else
        core.stalledHead = n;
    core.stalledTail = n;
}

void
CoreEngine::popStalled(Core &core)
{
    StallNode *n = core.stalledHead;
    core.stalledHead = n->next;
    if (!core.stalledHead)
        core.stalledTail = nullptr;
    n->next = _stallFree;
    _stallFree = n;
}

void
CoreEngine::start()
{
    for (unsigned c = 0; c < _cfg.cores; ++c)
        scheduleAdvance(c, curTick());
}

void
CoreEngine::scheduleAdvance(unsigned c, Tick when)
{
    auto &core = _cores[c];
    if (core.issueScheduled)
        return;
    core.issueScheduled = true;
    _eq.schedule(std::max(when, curTick()), [this, c] {
        _cores[c].issueScheduled = false;
        advance(c);
    });
}

void
CoreEngine::advance(unsigned c)
{
    auto &core = _cores[c];
    if (core.finished)
        return;
    const Tick now = curTick();
    if (core.readyAt < now)
        core.readyAt = now;

    if (!drainStalled(c)) {
        scheduleAdvance(c, now + _cfg.retryInterval);
        return;
    }

    while (core.issued < _cfg.opsPerCore) {
        if (core.readyAt > now) {
            scheduleAdvance(c, core.readyAt);
            return;
        }
        if (core.outstanding >= _cfg.mlp)
            return;  // resumed by readReturned()

        const MemOp op = core.gen->next(_rng);
        ++core.issued;
        core.readyAt += _cfg.thinkTime + _cfg.l1Latency;

        const Addr line = lineAlign(op.addr);
        SramCache &l1 = *_l1s[c];
        const auto l1res = l1.access(line, op.isStore);
        if (l1res.hit) {
            ++core.retired;
            ++opsRetired;
            continue;
        }

        // A dirty L1 victim writes back into the LLC (full line, no
        // fetch needed); the LLC may in turn evict a dirty line to
        // the DRAM cache.
        if (l1res.writeback) {
            const auto wb = _llc.access(l1res.writebackAddr, true);
            if (wb.writeback) {
                MemPacket p;
                p.id = _nextPktId++;
                p.addr = wb.writebackAddr;
                p.cmd = MemCmd::Write;
                p.coreId = static_cast<int>(c);
                pushStalled(core, p);
            }
        }

        core.readyAt += _cfg.llcLatency;
        // Demand fetch through the LLC. Stores dirty the L1 only;
        // dirtiness reaches the LLC via L1 writebacks.
        const auto llcres = _llc.access(line, false);
        if (llcres.writeback) {
            MemPacket p;
            p.id = _nextPktId++;
            p.addr = llcres.writebackAddr;
            p.cmd = MemCmd::Write;
            p.coreId = static_cast<int>(c);
            pushStalled(core, p);
        }
        if (llcres.hit) {
            if (!drainStalled(c)) {
                scheduleAdvance(c, now + _cfg.retryInterval);
                return;
            }
            ++core.retired;
            ++opsRetired;
            continue;
        }

        // LLC miss: a DRAM-cache read demand. Use a synthetic PC so
        // MAP-I sees per-stream behaviour.
        MemPacket rd;
        rd.id = _nextPktId++;
        rd.addr = line;
        rd.cmd = MemCmd::Read;
        rd.coreId = static_cast<int>(c);
        rd.pc = (static_cast<Addr>(c) << 32) | (core.issued % 64) * 4;
        pushStalled(core, rd);

        if (!drainStalled(c)) {
            scheduleAdvance(c, now + _cfg.retryInterval);
            return;
        }
    }
    maybeFinish(c);
}

bool
CoreEngine::drainStalled(unsigned c)
{
    auto &core = _cores[c];
    while (core.hasStalled()) {
        MemPacket &pkt = core.stalledHead->pkt;
        if (!issueDemand(c, pkt)) {
            ++backpressureStalls;
            return false;
        }
        popStalled(core);
    }
    return true;
}

bool
CoreEngine::issueDemand(unsigned c, MemPacket &pkt)
{
    if (!_dcache.canAccept(pkt))
        return false;
    if (pkt.cmd == MemCmd::Read) {
        ++_cores[c].outstanding;
        ++demandReadsIssued;
        _dcache.access(pkt, [this, c](MemPacket &done) {
            readReturned(c, done);
        });
    } else {
        ++demandWritesIssued;
        _dcache.access(pkt, RespCallback{});
    }
    return true;
}

void
CoreEngine::readReturned(unsigned c, const MemPacket &pkt)
{
    auto &core = _cores[c];
    panic_if(core.outstanding == 0, "read returned with none in flight");
    --core.outstanding;
    ++core.retired;
    ++opsRetired;
    demandReadLatency.sample(ticksToNs(pkt.completed - pkt.created));
    if (core.issued < _cfg.opsPerCore || core.hasStalled()) {
        advance(c);
    } else {
        maybeFinish(c);
    }
}

void
CoreEngine::maybeFinish(unsigned c)
{
    auto &core = _cores[c];
    if (core.finished || core.issued < _cfg.opsPerCore ||
        core.outstanding > 0 || core.hasStalled()) {
        return;
    }
    core.finished = true;
    ++_coresDone;
    _finishTick =
        std::max(_finishTick, std::max(curTick(), core.readyAt));
}

void
CoreEngine::warmup(std::uint64_t ops_per_core)
{
    for (unsigned c = 0; c < _cfg.cores; ++c) {
        auto &core = _cores[c];
        SramCache &l1 = *_l1s[c];
        for (std::uint64_t i = 0; i < ops_per_core; ++i) {
            const MemOp op = core.gen->next(_rng);
            const Addr line = lineAlign(op.addr);
            const auto l1res = l1.access(line, op.isStore);
            if (l1res.hit)
                continue;
            if (l1res.writeback) {
                const auto wb = _llc.access(l1res.writebackAddr, true);
                if (wb.writeback)
                    _dcache.warmAccess(wb.writebackAddr, true);
            }
            const auto llcres = _llc.access(line, false);
            if (llcres.writeback)
                _dcache.warmAccess(llcres.writebackAddr, true);
            if (!llcres.hit)
                _dcache.warmAccess(line, false);
        }
    }
}

void
CoreEngine::dumpDebug(std::FILE *f) const
{
    for (unsigned c = 0; c < _cfg.cores; ++c) {
        const Core &core = _cores[c];
        std::size_t depth = 0;
        for (const StallNode *n = core.stalledHead; n; n = n->next)
            ++depth;
        std::fprintf(f,
                     "core %u: issued=%llu retired=%llu outst=%u "
                     "stalled=%zu readyAt=%llu sched=%d fin=%d\n",
                     c, (unsigned long long)core.issued,
                     (unsigned long long)core.retired,
                     core.outstanding, depth,
                     (unsigned long long)core.readyAt,
                     core.issueScheduled, core.finished);
    }
}

void
CoreEngine::regStats(StatGroup &g) const
{
    g.addScalar("ops_retired", &opsRetired);
    g.addScalar("demand_reads_issued", &demandReadsIssued);
    g.addScalar("demand_writes_issued", &demandWritesIssued);
    g.addScalar("backpressure_stalls", &backpressureStalls);
    g.addHistogram("demand_read_latency_ns", &demandReadLatency);
    _llc.regStats(g);
}

} // namespace tsim
