#include "workload/trace.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace tsim
{

Trace
Trace::load(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot open trace '%s'", path.c_str());
    Trace t;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ss(line);
        std::string kind, addr_str;
        ss >> kind >> addr_str;
        fatal_if(ss.fail() || (kind != "R" && kind != "W"),
                 "%s:%zu: expected 'R <addr>' or 'W <addr>'",
                 path.c_str(), line_no);
        const Addr addr =
            std::strtoull(addr_str.c_str(), nullptr, 0);
        t.add(addr, kind == "W");
    }
    return t;
}

void
Trace::save(const std::string &path) const
{
    std::ofstream out(path);
    fatal_if(!out, "cannot write trace '%s'", path.c_str());
    for (const auto &op : _ops) {
        out << (op.isStore ? "W 0x" : "R 0x") << std::hex << op.addr
            << std::dec << '\n';
    }
}

Addr
Trace::maxAddr() const
{
    Addr max = 0;
    for (const auto &op : _ops)
        max = std::max(max, op.addr);
    return lineAlign(max) + lineBytes;
}

} // namespace tsim
