/**
 * @file
 * Full-system assembly: cores + SRAM hierarchy + DRAM-cache design
 * + DDR5 main memory (paper Fig 8, Table III), plus the run harness
 * and the per-run report used by every benchmark.
 */

#ifndef TSIM_SYSTEM_SYSTEM_HH
#define TSIM_SYSTEM_SYSTEM_HH

#include <array>
#include <memory>
#include <ostream>
#include <string>

#include "dcache/dram_cache.hh"
#include "dram/main_memory.hh"
#include "energy/energy.hh"
#include "sim/event_queue.hh"
#include "sim/shard.hh"
#include "stats/host_perf.hh"
#include "workload/core_engine.hh"
#include "workload/profiles.hh"
#include "workload/replay_engine.hh"

namespace tsim
{

/** Everything needed to build and run one simulation. */
struct SystemConfig
{
    Design design = Design::Tdram;

    std::uint64_t dcacheCapacity = 16ULL << 20;
    unsigned dcacheWays = 1;
    unsigned dcacheChannels = 8;
    unsigned dcacheBanks = 16;
    unsigned flushEntries = 16;
    bool predictor = false;
    unsigned prefetchDegree = 0;
    bool tdramConditionalColumn = true;  ///< ablation knob
    PagePolicy dcachePagePolicy = PagePolicy::Close;  ///< ablation

    unsigned mmChannels = 2;
    std::uint64_t mmCapacity = 0;  ///< 0: sized to fit the footprint

    CoreConfig cores{};
    std::uint64_t warmupOpsPerCore = 200000;
    std::uint64_t seed = 1;

    /**
     * Trace-replay front end (DESIGN.md §14): when replay.path is
     * non-empty the System drives the DRAM cache with the recorded
     * .tdtz request stream instead of the synthetic CoreEngine, main
     * memory is sized from the trace's footprint bound, and
     * warmupOpsPerCore becomes a record budget for functional
     * warm-up. The workload profile still names the run.
     */
    ReplayConfig replay{};

    /**
     * Event-trace output (.tdt); empty disables tracing. Per-run
     * paths keep parallel sweeps from clobbering each other's files.
     */
    std::string tracePath;

    /**
     * Run the inline protocol checker (src/check) on every channel
     * plus the demand front-end. No-op in -DTDRAM_CHECK=0 builds.
     */
    bool checkProtocol = false;

    /** Simulated-time safety net; a run past this is a bug. */
    Tick maxRuntime = nsToTicks(2.0e9);

    /**
     * Sharded execution (DESIGN.md §12). 0 runs the classic
     * single-queue engine. N >= 1 runs the window-based shard engine
     * with N execution threads (the coordinator plus N-1 workers);
     * every N produces byte-identical traces, stats, and checker
     * results — `threads == 1` is the canonical serial schedule the
     * parallel runs must reproduce. Note the shard engine's bounded
     * command/completion skew makes its outputs deliberately
     * comparable only against other sharded runs, not against
     * `threads == 0`.
     */
    unsigned threads = 0;

    /**
     * Shard window width W in ticks; 0 derives it as the minimum
     * tBURST over all channels. Cross-shard completions are
     * delivered exactly W ticks after emission, and commands reach a
     * channel at most W-1 ticks before their issue tick, so W bounds
     * the skew against an unsharded run.
     */
    Tick shardWindow = 0;
};

/** Results of one run (the raw material of every figure/table). */
struct SimReport
{
    std::string workload;
    std::string design;
    bool highMiss = false;

    Tick runtimeTicks = 0;
    std::uint64_t demandReads = 0;
    std::uint64_t demandWrites = 0;
    double missRatio = 0;
    std::array<double,
               static_cast<std::size_t>(AccessOutcome::NumOutcomes)>
        outcomeFrac{};

    double tagCheckNs = 0;        ///< Fig 9
    double readQueueDelayNs = 0;  ///< Fig 2 / Fig 10
    double mmReadQueueDelayNs = 0; ///< Fig 2's no-DRAM-cache bar
    double demandReadLatencyNs = 0;
    double bloat = 0;             ///< Table IV
    double unusefulFrac = 0;      ///< Fig 3

    double cacheBytes = 0;
    double mmBytes = 0;
    EnergyBreakdown energy{};     ///< Fig 13

    std::uint64_t flushStalls = 0;  ///< §V-E
    double flushMaxOcc = 0;
    double flushAvgOcc = 0;
    std::uint64_t probes = 0;
    /**
     * Hit/miss-predictor accuracy. Only meaningful when
     * predictorPresent: controllers without a predictor report the
     * metric as *absent* (reportJson renders null), never as a
     * misleading 0.0. The double stays 0 in that case so fixed-width
     * CSV/key consumers keep their layout.
     */
    double predictorAccuracy = 0;
    bool predictorPresent = false;
    std::uint64_t backpressureStalls = 0;

    /**
     * Replay provenance: the .tdtz source, pacing mode, and record
     * count when the run was trace-driven; empty/zero for synthetic
     * runs. Carried so archived reports say what produced them.
     */
    std::string replaySource;
    std::string replayMode;
    std::uint64_t replayRecords = 0;

    /**
     * Host-side throughput of the run (events executed, wall time).
     * Not deterministic across hosts or runs — excluded from any
     * byte-identical output comparison.
     */
    HostPerf hostPerf{};

    /**
     * Inline protocol-checker results (checkProtocol runs only).
     * checkEvents is 0 when the checker was off or compiled out.
     */
    std::uint64_t checkEvents = 0;
    std::uint64_t checkViolations = 0;

    double runtimeNs() const { return ticksToNs(runtimeTicks); }
};

/** One simulated machine bound to one workload. */
class System
{
  public:
    System(const SystemConfig &cfg, const WorkloadProfile &workload);

    /** Warm up, run to completion, and collect the report. */
    SimReport run();

    EventQueue &eventQueue() { return _eq; }
    DramCacheCtrl &dcache() { return *_dcache; }
    MainMemory &mainMemory() { return *_mm; }
    RequestEngine &engine() { return *_engine; }

    /** The synthetic front end, or null for trace-driven runs. */
    CoreEngine *
    coreEngine()
    {
        return dynamic_cast<CoreEngine *>(_engine.get());
    }

    /** The replay front end, or null for synthetic runs. */
    TraceReplayEngine *
    replayEngine()
    {
        return dynamic_cast<TraceReplayEngine *>(_engine.get());
    }

    const SystemConfig &config() const { return _cfg; }
    Tracer *tracer() { return _tracer.get(); }
    ProtocolChecker *checker() { return _checker.get(); }
    ShardSim *shardSim() { return _shard.get(); }

    /** Dump all registered stats (debugging / examples). */
    void dumpStats(std::ostream &os) const;

  private:
    /** Superstep loop of the sharded engine (cfg.threads >= 1). */
    std::uint64_t runSharded();

    /** Assemble the report after the event loop finished. */
    SimReport collectReport(std::uint64_t events, double host_seconds);

    SystemConfig _cfg;
    WorkloadProfile _workload;
    EventQueue _eq;
    /** Shard engine (null in single-queue mode). Constructed before
     *  (and so destroyed after) the components whose channels run on
     *  its queues. */
    std::unique_ptr<ShardSim> _shard;
    std::unique_ptr<MainMemory> _mm;
    std::unique_ptr<DramCacheCtrl> _dcache;
    std::unique_ptr<RequestEngine> _engine;
    std::unique_ptr<Tracer> _tracer;
    std::unique_ptr<ProtocolChecker> _checker;
    /**
     * Sharded mode: one checker per channel shard (indices 0 ..
     * dc+mm-1) plus one for the demand front-end (last entry), each
     * padded with placeholder channels so violation reports carry
     * the same global channel ids as the single-checker wiring.
     */
    std::vector<std::unique_ptr<ProtocolChecker>> _shardCheckers;
};

/** Convenience: build + run one configuration. */
SimReport runOne(const SystemConfig &cfg, const WorkloadProfile &wl);

/**
 * One-object JSON rendering of the report's deterministic metrics
 * (hostPerf excluded). Metrics a design cannot measure are null, not
 * zero — predictor_accuracy in particular is null unless the
 * controller actually ran a predictor.
 */
std::string reportJson(const SimReport &r);

/** Geometric mean helper for the paper's summary numbers. */
double geomean(const std::vector<double> &xs);

} // namespace tsim

#endif // TSIM_SYSTEM_SYSTEM_HH
