#include "system/system.hh"

#include <cmath>

#include "stats/stats.hh"

namespace tsim
{

namespace
{

std::uint64_t
pow2Ceil(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

System::System(const SystemConfig &cfg, const WorkloadProfile &workload)
    : _cfg(cfg), _workload(workload)
{
    // Size main memory to cover the scattered physical footprint.
    const std::uint64_t space =
        physicalSpaceBytes(workload, cfg.dcacheCapacity);
    MainMemoryConfig mm_cfg;
    mm_cfg.channels = cfg.mmChannels;
    mm_cfg.capacityBytes =
        cfg.mmCapacity ? cfg.mmCapacity
                       : std::max<std::uint64_t>(pow2Ceil(space),
                                                 1 << 26);
    _mm = std::make_unique<MainMemory>(_eq, "mm", mm_cfg);

    DramCacheConfig dc_cfg;
    dc_cfg.capacityBytes = cfg.dcacheCapacity;
    dc_cfg.ways = cfg.dcacheWays;
    dc_cfg.channels = cfg.dcacheChannels;
    dc_cfg.banks = cfg.dcacheBanks;
    dc_cfg.flushEntries = cfg.flushEntries;
    dc_cfg.predictor = cfg.predictor;
    dc_cfg.prefetchDegree = cfg.prefetchDegree;
    dc_cfg.tdramConditionalColumn = cfg.tdramConditionalColumn;
    dc_cfg.pagePolicy = cfg.dcachePagePolicy;
    _dcache = makeDramCache(_eq, cfg.design, dc_cfg, *_mm);

    std::vector<std::unique_ptr<AddressGenerator>> gens;
    for (unsigned c = 0; c < cfg.cores.cores; ++c) {
        gens.push_back(makeGenerator(workload, c, cfg.cores.cores,
                                     cfg.dcacheCapacity));
    }
    _engine = std::make_unique<CoreEngine>(
        _eq, "engine", cfg.cores, std::move(gens), *_dcache, cfg.seed);

    if (!cfg.tracePath.empty() && traceCompiledIn()) {
        // Buffer layout: dcache channels, then mm channels, then one
        // controller-level buffer for demand start/done events.
        const unsigned dc = _dcache->numChannels();
        const unsigned mm = _mm->numChannels();
        _tracer = std::make_unique<Tracer>(cfg.tracePath, dc + mm + 1);
        for (unsigned c = 0; c < dc; ++c)
            _dcache->channel(c).traceBuf = &_tracer->buffer(c);
        for (unsigned c = 0; c < mm; ++c)
            _mm->channel(c).traceBuf = &_tracer->buffer(dc + c);
        _dcache->traceBuf = &_tracer->buffer(dc + mm);
    }

    if (cfg.checkProtocol && checkCompiledIn()) {
        // Checker channel ids mirror the tracer buffer layout: dcache
        // channels, then mm channels, then the demand-only buffer, so
        // inline and offline audits of one run agree index-for-index.
        const unsigned dc = _dcache->numChannels();
        const unsigned mm = _mm->numChannels();
        _checker = std::make_unique<ProtocolChecker>();
        for (unsigned c = 0; c < dc; ++c) {
            DramChannel &chan = _dcache->channel(c);
            chan.checker = _checker.get();
            chan.checkChannel =
                _checker->addChannel(checkerConfigOf(chan.config()));
        }
        for (unsigned c = 0; c < mm; ++c) {
            DramChannel &chan = _mm->channel(c);
            chan.checker = _checker.get();
            chan.checkChannel =
                _checker->addChannel(checkerConfigOf(chan.config()));
        }
        CheckerConfig demand_cfg;
        demand_cfg.demandOnly = true;
        _dcache->checker = _checker.get();
        _dcache->checkChannel = _checker->addChannel(demand_cfg);
    }
}

SimReport
System::run()
{
    const HostTimer timer;
    std::uint64_t events = 0;
    _engine->warmup(_cfg.warmupOpsPerCore);
    _engine->start();
    while (!_engine->done()) {
        if (!_eq.step())
            panic("event queue drained before the workload finished");
        ++events;
        if (_eq.curTick() > _cfg.maxRuntime) {
            _dcache->dumpDebug(stderr);
            _engine->dumpDebug(stderr);
            panic("run exceeded maxRuntime (%0.1f ms simulated) on %s/%s",
                  ticksToNs(_cfg.maxRuntime) * 1e-6,
                  designName(_cfg.design), _workload.name.c_str());
        }
    }

    SimReport r;
    r.workload = _workload.name;
    r.design = designName(_cfg.design);
    r.highMiss = _workload.highMiss;
    r.runtimeTicks = _engine->finishTick();
    r.demandReads =
        static_cast<std::uint64_t>(_dcache->demandReads.value());
    r.demandWrites =
        static_cast<std::uint64_t>(_dcache->demandWrites.value());
    r.missRatio = _dcache->missRatio();

    const double demands =
        static_cast<double>(r.demandReads + r.demandWrites);
    for (unsigned i = 0;
         i < static_cast<unsigned>(AccessOutcome::NumOutcomes); ++i) {
        r.outcomeFrac[i] =
            demands > 0 ? _dcache->outcomes[i].value() / demands : 0;
    }

    r.tagCheckNs = _dcache->meanTagCheckLatencyNs();
    r.readQueueDelayNs = _dcache->meanReadQueueDelayNs();
    {
        double sum = 0;
        std::uint64_t count = 0;
        for (unsigned c = 0; c < _mm->numChannels(); ++c) {
            sum += _mm->channel(c).readQueueDelay.sum();
            count += _mm->channel(c).readQueueDelay.count();
        }
        r.mmReadQueueDelayNs =
            count ? sum / static_cast<double>(count) : 0.0;
    }
    r.demandReadLatencyNs = _engine->demandReadLatency.mean();
    r.bloat = _dcache->bloatFactor();
    r.unusefulFrac = _dcache->unusefulFraction();

    r.cacheBytes = _dcache->bytesDemandServing.value() +
                   _dcache->bytesMaintenance.value() +
                   _dcache->bytesDiscarded.value();
    r.mmBytes = static_cast<double>(_mm->bytesMoved());
    r.energy = computeEnergy(*_dcache, *_mm, r.runtimeTicks);

    for (unsigned c = 0; c < _dcache->numChannels(); ++c) {
        const auto &fb = _dcache->channel(c).flushBuffer();
        r.flushStalls += static_cast<std::uint64_t>(fb.stalls.value());
        r.flushMaxOcc = std::max(r.flushMaxOcc, fb.maxOccupancy.value());
        r.flushAvgOcc += fb.occupancy.mean();
        r.probes += static_cast<std::uint64_t>(
            _dcache->channel(c).probesIssued.value());
    }
    r.flushAvgOcc /= _dcache->numChannels();
    r.predictorAccuracy = _dcache->predictorAccuracy();
    r.backpressureStalls = static_cast<std::uint64_t>(
        _engine->backpressureStalls.value());
    r.hostPerf.events = events;
    r.hostPerf.simTicks = r.runtimeTicks;
    r.hostPerf.hostSeconds = timer.seconds();
    r.hostPerf.runs = 1;
    for (unsigned c = 0; c < _dcache->numChannels(); ++c) {
        r.hostPerf.chanKicks += _dcache->channel(c).hostKicks;
        r.hostPerf.chanScans += _dcache->channel(c).hostScanSteps;
    }
    for (unsigned c = 0; c < _mm->numChannels(); ++c) {
        r.hostPerf.chanKicks += _mm->channel(c).hostKicks;
        r.hostPerf.chanScans += _mm->channel(c).hostScanSteps;
    }
    if (_tracer)
        _tracer->flushAll();
    if (_checker) {
        _checker->finish();
        r.checkEvents = _checker->eventsChecked();
        r.checkViolations = _checker->violationCount();
        if (!_checker->ok()) {
            std::fprintf(stderr,
                         "[check] %s/%s: %llu protocol violation(s) "
                         "in %llu events\n",
                         r.design.c_str(), r.workload.c_str(),
                         static_cast<unsigned long long>(
                             r.checkViolations),
                         static_cast<unsigned long long>(
                             r.checkEvents));
            for (const CheckViolation &v : _checker->violations()) {
                std::fprintf(
                    stderr, "[check]   %s\n",
                    ProtocolChecker::formatViolation(v).c_str());
            }
        }
    }
    return r;
}

void
System::dumpStats(std::ostream &os) const
{
    StatGroup g("system");
    _dcache->regStats(g);
    _mm->regStats(g);
    _engine->regStats(g);
    g.dump(os);
}

SimReport
runOne(const SystemConfig &cfg, const WorkloadProfile &wl)
{
    System sys(cfg, wl);
    return sys.run();
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

} // namespace tsim
