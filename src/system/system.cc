#include "system/system.hh"

#include <cmath>
#include <sstream>

#include "stats/stats.hh"

namespace tsim
{

namespace
{

std::uint64_t
pow2Ceil(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

System::System(const SystemConfig &cfg, const WorkloadProfile &workload)
    : _cfg(cfg), _workload(workload)
{
    // Size main memory to cover the physical footprint: the synthetic
    // profiles declare theirs; a replayed trace carries its bound in
    // the .tdtz footer (no decoding needed to read it).
    std::uint64_t space;
    if (!cfg.replay.path.empty()) {
        TdtzReader probe;
        fatal_if(!probe.open(cfg.replay.path), "replay: %s",
                 probe.error().c_str());
        space = probe.info().maxLineAddr;
    } else {
        space = physicalSpaceBytes(workload, cfg.dcacheCapacity);
    }
    MainMemoryConfig mm_cfg;
    mm_cfg.channels = cfg.mmChannels;
    mm_cfg.capacityBytes =
        cfg.mmCapacity ? cfg.mmCapacity
                       : std::max<std::uint64_t>(pow2Ceil(space),
                                                 1 << 26);

    DramCacheConfig dc_cfg;
    dc_cfg.capacityBytes = cfg.dcacheCapacity;
    dc_cfg.ways = cfg.dcacheWays;
    dc_cfg.channels = cfg.dcacheChannels;
    dc_cfg.banks = cfg.dcacheBanks;
    dc_cfg.flushEntries = cfg.flushEntries;
    dc_cfg.predictor = cfg.predictor;
    dc_cfg.prefetchDegree = cfg.prefetchDegree;
    dc_cfg.tdramConditionalColumn = cfg.tdramConditionalColumn;
    dc_cfg.pagePolicy = cfg.dcachePagePolicy;

    if (cfg.threads > 0) {
        // Sharded engine: shard s is DRAM-cache channel s for
        // s < dcacheChannels, then the main-memory channels. The
        // shard structure depends only on the configuration, never
        // on the thread count.
        const unsigned dc_ch = cfg.dcacheChannels;
        const unsigned mm_ch = cfg.mmChannels;
        _shard = std::make_unique<ShardSim>(dc_ch + mm_ch,
                                            cfg.threads);
        for (unsigned c = 0; c < dc_ch; ++c) {
            dc_cfg.channelQueues.push_back(&_shard->queue(c));
            dc_cfg.channelOutboxes.push_back(&_shard->outbox(c));
        }
        for (unsigned c = 0; c < mm_ch; ++c) {
            mm_cfg.channelQueues.push_back(
                &_shard->queue(dc_ch + c));
            mm_cfg.channelOutboxes.push_back(
                &_shard->outbox(dc_ch + c));
        }
    }

    _mm = std::make_unique<MainMemory>(_eq, "mm", mm_cfg);
    _dcache = makeDramCache(_eq, cfg.design, dc_cfg, *_mm);

    if (_shard) {
        // Conservative window: the finest command granularity on any
        // DQ bus unless the config pins an explicit width.
        Tick w = cfg.shardWindow;
        if (w == 0) {
            w = maxTick;
            for (unsigned c = 0; c < _dcache->numChannels(); ++c)
                w = std::min(
                    w, _dcache->channel(c).config().timing.tBURST);
            for (unsigned c = 0; c < _mm->numChannels(); ++c)
                w = std::min(
                    w, _mm->channel(c).config().timing.tBURST);
        }
        panic_if(w == 0 || w == maxTick,
                 "cannot derive a shard window from the timings");
        _shard->setWindow(w);
    }

    if (!cfg.replay.path.empty()) {
        _engine = std::make_unique<TraceReplayEngine>(
            _eq, "engine", cfg.replay, *_dcache);
    } else {
        std::vector<std::unique_ptr<AddressGenerator>> gens;
        for (unsigned c = 0; c < cfg.cores.cores; ++c) {
            gens.push_back(makeGenerator(workload, c, cfg.cores.cores,
                                         cfg.dcacheCapacity));
        }
        _engine = std::make_unique<CoreEngine>(
            _eq, "engine", cfg.cores, std::move(gens), *_dcache,
            cfg.seed);
    }

    if (!cfg.tracePath.empty() && traceCompiledIn()) {
        // Buffer layout: dcache channels, then mm channels, then one
        // controller-level buffer for demand start/done events.
        const unsigned dc = _dcache->numChannels();
        const unsigned mm = _mm->numChannels();
        _tracer = std::make_unique<Tracer>(cfg.tracePath, dc + mm + 1);
        for (unsigned c = 0; c < dc; ++c)
            _dcache->channel(c).traceBuf = &_tracer->buffer(c);
        for (unsigned c = 0; c < mm; ++c)
            _mm->channel(c).traceBuf = &_tracer->buffer(dc + c);
        _dcache->traceBuf = &_tracer->buffer(dc + mm);
        if (_shard) {
            // Channel buffers are written during phase B (worker
            // threads): park their records and let the coordinator
            // merge them in buffer-id order between supersteps. The
            // demand buffer stays live — it only records in phase A.
            for (unsigned c = 0; c < dc + mm; ++c)
                _tracer->buffer(c).setDeferred(true);
        }
    }

    if (cfg.checkProtocol && checkCompiledIn()) {
        // Checker channel ids mirror the tracer buffer layout: dcache
        // channels, then mm channels, then the demand-only buffer, so
        // inline and offline audits of one run agree index-for-index.
        const unsigned dc = _dcache->numChannels();
        const unsigned mm = _mm->numChannels();
        if (_shard) {
            // One checker instance per shard plus one for the demand
            // front-end, so no two threads share checker state. Each
            // instance is padded with placeholder channels so its
            // real channel keeps the global id of the layout above.
            auto padded = [](unsigned id) {
                auto ck = std::make_unique<ProtocolChecker>();
                for (unsigned i = 0; i < id; ++i)
                    ck->addChannel(CheckerConfig{});
                return ck;
            };
            for (unsigned c = 0; c < dc + mm; ++c) {
                DramChannel &chan = c < dc
                                        ? _dcache->channel(c)
                                        : _mm->channel(c - dc);
                auto ck = padded(c);
                chan.checker = ck.get();
                chan.checkChannel =
                    ck->addChannel(checkerConfigOf(chan.config()));
                _shardCheckers.push_back(std::move(ck));
            }
            CheckerConfig demand_cfg;
            demand_cfg.demandOnly = true;
            auto ck = padded(dc + mm);
            _dcache->checker = ck.get();
            _dcache->checkChannel = ck->addChannel(demand_cfg);
            _shardCheckers.push_back(std::move(ck));
        } else {
            _checker = std::make_unique<ProtocolChecker>();
            for (unsigned c = 0; c < dc; ++c) {
                DramChannel &chan = _dcache->channel(c);
                chan.checker = _checker.get();
                chan.checkChannel = _checker->addChannel(
                    checkerConfigOf(chan.config()));
            }
            for (unsigned c = 0; c < mm; ++c) {
                DramChannel &chan = _mm->channel(c);
                chan.checker = _checker.get();
                chan.checkChannel = _checker->addChannel(
                    checkerConfigOf(chan.config()));
            }
            CheckerConfig demand_cfg;
            demand_cfg.demandOnly = true;
            _dcache->checker = _checker.get();
            _dcache->checkChannel = _checker->addChannel(demand_cfg);
        }
    }
}

SimReport
System::run()
{
    const HostTimer timer;
    std::uint64_t events = 0;
    _engine->warmup(_cfg.warmupOpsPerCore);
    _engine->start();
    if (_shard) {
        events = runSharded();
    } else {
        // Keep stepping past done() until fire-and-forget writes
        // still in flight have responded (and design-internal
        // maintenance like page-fill groups has drained), so the
        // checker sees every demand paired and no operation is cut
        // off mid-flight.
        while (!_engine->done() || _dcache->inFlightDemands() > 0 ||
               !_dcache->quiescent()) {
            if (!_eq.step())
                panic(
                    "event queue drained before the workload finished");
            ++events;
            if (_eq.curTick() > _cfg.maxRuntime) {
                _dcache->dumpDebug(stderr);
                _engine->dumpDebug(stderr);
                panic("run exceeded maxRuntime (%0.1f ms simulated) "
                      "on %s/%s",
                      ticksToNs(_cfg.maxRuntime) * 1e-6,
                      designName(_cfg.design), _workload.name.c_str());
            }
        }
    }
    return collectReport(events, timer.seconds());
}

std::uint64_t
System::runSharded()
{
    // Superstep k runs the half-open window [k*W, (k+1)*W): first
    // the front shard alone (phase A — it may poke the quiescent
    // channels directly), then every channel shard in parallel
    // (phase B — completions relay through the outboxes). The
    // boundary then merges the parked trace records in buffer-id
    // order and drains the outboxes in shard order, which fixes the
    // full event interleaving independent of the thread count.
    std::uint64_t events = 0;
    const Tick w = _shard->window();
    Tick bound = w;
    for (;;) {
        events += _eq.runBefore(bound);
        events += _shard->runChannelPhase(bound);
        if (_tracer)
            _tracer->commitDeferred();
        _shard->drainOutboxes(_eq);
        if (_eq.curTick() > _cfg.maxRuntime) {
            _dcache->dumpDebug(stderr);
            _engine->dumpDebug(stderr);
            panic("run exceeded maxRuntime (%0.1f ms simulated) "
                  "on %s/%s",
                  ticksToNs(_cfg.maxRuntime) * 1e-6,
                  designName(_cfg.design), _workload.name.c_str());
        }
        // Same drain rule as the single-queue loop: run supersteps
        // until the last in-flight demand responded. The counter is
        // only read at window boundaries, so the exit superstep is a
        // pure function of the schedule, not of the thread count.
        if (_engine->done() && _dcache->inFlightDemands() == 0 &&
            _dcache->quiescent())
            return events;
        // Jump over empty windows: the next superstep is the one
        // whose window owns the earliest pending event anywhere.
        const Tick next = std::min(_eq.nextEventTick(),
                                   _shard->nextEventTick());
        if (next == maxTick)
            panic("event queue drained before the workload finished");
        bound = (next / w + 1) * w;
    }
}

SimReport
System::collectReport(std::uint64_t events, double host_seconds)
{
    SimReport r;
    r.workload = _workload.name;
    r.design = designName(_cfg.design);
    r.highMiss = _workload.highMiss;
    r.runtimeTicks = _engine->finishTick();
    r.demandReads =
        static_cast<std::uint64_t>(_dcache->demandReads.value());
    r.demandWrites =
        static_cast<std::uint64_t>(_dcache->demandWrites.value());
    r.missRatio = _dcache->missRatio();

    const double demands =
        static_cast<double>(r.demandReads + r.demandWrites);
    for (unsigned i = 0;
         i < static_cast<unsigned>(AccessOutcome::NumOutcomes); ++i) {
        r.outcomeFrac[i] =
            demands > 0 ? _dcache->outcomes[i].value() / demands : 0;
    }

    r.tagCheckNs = _dcache->meanTagCheckLatencyNs();
    r.readQueueDelayNs = _dcache->meanReadQueueDelayNs();
    {
        double sum = 0;
        std::uint64_t count = 0;
        for (unsigned c = 0; c < _mm->numChannels(); ++c) {
            sum += _mm->channel(c).readQueueDelay.sum();
            count += _mm->channel(c).readQueueDelay.count();
        }
        r.mmReadQueueDelayNs =
            count ? sum / static_cast<double>(count) : 0.0;
    }
    r.demandReadLatencyNs = _engine->meanDemandReadLatencyNs();
    r.bloat = _dcache->bloatFactor();
    r.unusefulFrac = _dcache->unusefulFraction();

    r.cacheBytes = _dcache->bytesDemandServing.value() +
                   _dcache->bytesMaintenance.value() +
                   _dcache->bytesDiscarded.value();
    r.mmBytes = static_cast<double>(_mm->bytesMoved());
    r.energy = computeEnergy(*_dcache, *_mm, r.runtimeTicks);

    for (unsigned c = 0; c < _dcache->numChannels(); ++c) {
        const auto &fb = _dcache->channel(c).flushBuffer();
        r.flushStalls += static_cast<std::uint64_t>(fb.stalls.value());
        r.flushMaxOcc = std::max(r.flushMaxOcc, fb.maxOccupancy.value());
        r.flushAvgOcc += fb.occupancy.mean();
        r.probes += static_cast<std::uint64_t>(
            _dcache->channel(c).probesIssued.value());
    }
    r.flushAvgOcc /= _dcache->numChannels();
    r.predictorPresent = _dcache->hasPredictor();
    r.predictorAccuracy =
        r.predictorPresent ? _dcache->predictorAccuracy() : 0.0;
    r.backpressureStalls = _engine->backpressureStallCount();
    if (!_cfg.replay.path.empty()) {
        r.replaySource = _cfg.replay.path;
        r.replayMode = replayModeName(_cfg.replay.mode);
        const auto *replay =
            dynamic_cast<const TraceReplayEngine *>(_engine.get());
        if (replay)
            r.replayRecords = replay->traceInfo().records;
    }
    r.hostPerf.events = events;
    r.hostPerf.simTicks = r.runtimeTicks;
    r.hostPerf.hostSeconds = host_seconds;
    r.hostPerf.runs = 1;
    for (unsigned c = 0; c < _dcache->numChannels(); ++c) {
        r.hostPerf.chanKicks += _dcache->channel(c).hostKicks;
        r.hostPerf.chanScans += _dcache->channel(c).hostScanSteps;
    }
    for (unsigned c = 0; c < _mm->numChannels(); ++c) {
        r.hostPerf.chanKicks += _mm->channel(c).hostKicks;
        r.hostPerf.chanScans += _mm->channel(c).hostScanSteps;
    }
    if (_tracer) {
        _tracer->commitDeferred();
        _tracer->flushAll();
    }
    // Fold the checker verdicts: either the single shared instance,
    // or the per-shard instances in ascending shard order (channels
    // first, demand front-end last) — a fixed order, so the merged
    // counts and the violation print-out are thread-count-invariant.
    std::vector<ProtocolChecker *> checkers;
    if (_checker)
        checkers.push_back(_checker.get());
    for (const auto &ck : _shardCheckers)
        checkers.push_back(ck.get());
    for (ProtocolChecker *ck : checkers) {
        ck->finish();
        r.checkEvents += ck->eventsChecked();
        r.checkViolations += ck->violationCount();
    }
    if (r.checkViolations > 0) {
        std::fprintf(stderr,
                     "[check] %s/%s: %llu protocol violation(s) "
                     "in %llu events\n",
                     r.design.c_str(), r.workload.c_str(),
                     static_cast<unsigned long long>(
                         r.checkViolations),
                     static_cast<unsigned long long>(r.checkEvents));
        for (ProtocolChecker *ck : checkers) {
            for (const CheckViolation &v : ck->violations()) {
                std::fprintf(
                    stderr, "[check]   %s\n",
                    ProtocolChecker::formatViolation(v).c_str());
            }
        }
    }
    return r;
}

void
System::dumpStats(std::ostream &os) const
{
    StatGroup g("system");
    _dcache->regStats(g);
    _mm->regStats(g);
    _engine->regStats(g);
    g.dump(os);
}

SimReport
runOne(const SystemConfig &cfg, const WorkloadProfile &wl)
{
    System sys(cfg, wl);
    return sys.run();
}

std::string
reportJson(const SimReport &r)
{
    // Workload/design names come from the static profile and design
    // tables and contain no characters needing JSON escaping.
    std::ostringstream os;
    os << "{";
    os << "\"workload\": \"" << r.workload << "\"";
    os << ", \"design\": \"" << r.design << "\"";
    os << ", \"runtime_ns\": " << r.runtimeNs();
    os << ", \"demand_reads\": " << r.demandReads;
    os << ", \"demand_writes\": " << r.demandWrites;
    os << ", \"miss_ratio\": " << r.missRatio;
    os << ", \"tag_check_ns\": " << r.tagCheckNs;
    os << ", \"read_latency_ns\": " << r.demandReadLatencyNs;
    os << ", \"bloat\": " << r.bloat;
    os << ", \"cache_bytes\": " << r.cacheBytes;
    os << ", \"mm_bytes\": " << r.mmBytes;
    os << ", \"flush_stalls\": " << r.flushStalls;
    os << ", \"probes\": " << r.probes;
    os << ", \"predictor_accuracy\": ";
    if (r.predictorPresent)
        os << r.predictorAccuracy;
    else
        os << "null";
    os << ", \"backpressure_stalls\": " << r.backpressureStalls;
    os << ", \"check_events\": " << r.checkEvents;
    os << ", \"check_violations\": " << r.checkViolations;
    os << "}";
    return os.str();
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

} // namespace tsim
