#include "mem/types.hh"

namespace tsim
{

const char *
outcomeName(AccessOutcome o)
{
    switch (o) {
      case AccessOutcome::ReadHitClean: return "read_hit_clean";
      case AccessOutcome::ReadHitDirty: return "read_hit_dirty";
      case AccessOutcome::ReadMissInvalid: return "read_miss_invalid";
      case AccessOutcome::ReadMissClean: return "read_miss_clean";
      case AccessOutcome::ReadMissDirty: return "read_miss_dirty";
      case AccessOutcome::WriteHitClean: return "write_hit_clean";
      case AccessOutcome::WriteHitDirty: return "write_hit_dirty";
      case AccessOutcome::WriteMissInvalid: return "write_miss_invalid";
      case AccessOutcome::WriteMissClean: return "write_miss_clean";
      case AccessOutcome::WriteMissDirty: return "write_miss_dirty";
      default: return "invalid_outcome";
    }
}

} // namespace tsim
