/**
 * @file
 * Common memory-system types: addresses, commands, demand packets and
 * the DRAM-cache access outcome taxonomy used throughout the paper
 * (Table II / Figure 1).
 */

#ifndef TSIM_MEM_TYPES_HH
#define TSIM_MEM_TYPES_HH

#include <cstdint>
#include <functional>
#include <string>

#include "sim/ticks.hh"

namespace tsim
{

/** Physical byte address. */
using Addr = std::uint64_t;

/** Unique demand-packet identifier. */
using PacketId = std::uint64_t;

/** Cache-line size used system-wide (Intel/AMD CPUs, per the paper). */
constexpr unsigned lineBytes = 64;

/** Align an address down to its cache line. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~static_cast<Addr>(lineBytes - 1);
}

/** Demand command as seen by the DRAM cache (from the LLC). */
enum class MemCmd : std::uint8_t
{
    Read,   ///< LLC read miss (latency critical; CPU observes it)
    Write,  ///< LLC writeback (not latency critical, buffer critical)
};

/**
 * DRAM-cache access outcome taxonomy (paper Table II / Figure 1).
 *
 * "Invalid" means the indexed line held no valid tag; "Clean"/"Dirty"
 * refer to the state of the *resident victim* line on a miss, or of
 * the line itself on a hit.
 */
enum class AccessOutcome : std::uint8_t
{
    ReadHitClean,
    ReadHitDirty,
    ReadMissInvalid,
    ReadMissClean,
    ReadMissDirty,
    WriteHitClean,
    WriteHitDirty,
    WriteMissInvalid,
    WriteMissClean,
    WriteMissDirty,
    NumOutcomes,
};

/** Short printable name for an AccessOutcome. */
const char *outcomeName(AccessOutcome o);

/** True for the five read outcomes. */
constexpr bool
outcomeIsRead(AccessOutcome o)
{
    return o <= AccessOutcome::ReadMissDirty;
}

/** True for hit outcomes (read or write). */
constexpr bool
outcomeIsHit(AccessOutcome o)
{
    return o == AccessOutcome::ReadHitClean ||
           o == AccessOutcome::ReadHitDirty ||
           o == AccessOutcome::WriteHitClean ||
           o == AccessOutcome::WriteHitDirty;
}

/**
 * A demand request travelling from the LLC to the DRAM cache.
 *
 * Timestamps are filled in by the DRAM-cache controller and are the
 * raw material for the paper's latency metrics (tag-check latency,
 * read-buffer queueing delay).
 */
struct MemPacket
{
    PacketId id = 0;
    Addr addr = 0;          ///< line-aligned physical address
    MemCmd cmd = MemCmd::Read;
    int coreId = 0;
    Addr pc = 0;            ///< requesting instruction (MAP-I input)

    Tick created = 0;       ///< accepted by the DRAM-cache controller
    Tick tagIssued = 0;     ///< entered a DRAM queue for its tag check
    Tick tagDone = 0;       ///< hit/miss known at the controller
    Tick completed = 0;     ///< response sent (reads) / retired (writes)

    AccessOutcome outcome = AccessOutcome::NumOutcomes;
};

/** Completion callback handed in with each demand packet. */
using RespCallback = std::function<void(MemPacket &)>;

} // namespace tsim

#endif // TSIM_MEM_TYPES_HH
