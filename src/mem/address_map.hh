/**
 * @file
 * DRAM address interleaving.
 *
 * Implements the RoCoRaBaCh mapping used in Table III: reading the
 * mnemonic from most- to least-significant address bits gives
 * Row : Column : Rank : Bank : Channel, i.e., consecutive cache lines
 * interleave across channels first, then banks, so streaming accesses
 * exploit all channel/bank parallelism.
 */

#ifndef TSIM_MEM_ADDRESS_MAP_HH
#define TSIM_MEM_ADDRESS_MAP_HH

#include <cstdint>

#include "mem/types.hh"
#include "sim/logging.hh"

namespace tsim
{

/** Decoded DRAM coordinates for one line-sized access. */
struct DramCoord
{
    unsigned channel = 0;
    unsigned bank = 0;   ///< flat bank id (bank group folded in)
    std::uint64_t row = 0;
    std::uint64_t col = 0;
};

/**
 * Geometry plus RoCoRaBaCh decode for a memory device.
 *
 * Channel/bank counts must be powers of two. Ranks are folded into
 * the bank dimension (HBM stacks present a flat bank space to the
 * controller; the paper pairs banks across bank groups into one
 * logical bank, which is the unit modelled here).
 */
class AddressMap
{
  public:
    AddressMap() = default;

    /**
     * @param capacity_bytes Total device capacity.
     * @param channels       Number of independent channels.
     * @param banks          Logical banks per channel.
     * @param row_bytes      Bytes per row per bank (page size).
     */
    AddressMap(std::uint64_t capacity_bytes, unsigned channels,
               unsigned banks, std::uint64_t row_bytes)
        : _capacity(capacity_bytes), _channels(channels), _banks(banks),
          _rowBytes(row_bytes)
    {
        fatal_if(!isPow2(channels) || !isPow2(banks) ||
                     !isPow2(row_bytes) || !isPow2(capacity_bytes),
                 "AddressMap dimensions must be powers of two");
        fatal_if(row_bytes < lineBytes,
                 "row must hold at least one line");
        _linesPerRow = _rowBytes / lineBytes;
        std::uint64_t lines = _capacity / lineBytes;
        _rowsPerBank = lines / (_channels * _banks * _linesPerRow);
        fatal_if(_rowsPerBank == 0,
                 "capacity too small for channel/bank/row geometry");
    }

    unsigned channels() const { return _channels; }
    unsigned banks() const { return _banks; }
    std::uint64_t rowsPerBank() const { return _rowsPerBank; }
    std::uint64_t capacity() const { return _capacity; }

    /** Decode a byte address (RoCoRaBaCh, line-interleaved). */
    DramCoord
    decode(Addr addr) const
    {
        std::uint64_t line = (addr / lineBytes) % (_capacity / lineBytes);
        DramCoord c;
        c.channel = static_cast<unsigned>(line % _channels);
        line /= _channels;
        c.bank = static_cast<unsigned>(line % _banks);
        line /= _banks;
        c.col = line % _linesPerRow;
        line /= _linesPerRow;
        c.row = line % _rowsPerBank;
        return c;
    }

  private:
    static constexpr bool
    isPow2(std::uint64_t v)
    {
        return v && !(v & (v - 1));
    }

    std::uint64_t _capacity = 0;
    unsigned _channels = 1;
    unsigned _banks = 1;
    std::uint64_t _rowBytes = 0;
    std::uint64_t _linesPerRow = 1;
    std::uint64_t _rowsPerBank = 1;
};

} // namespace tsim

#endif // TSIM_MEM_ADDRESS_MAP_HH
