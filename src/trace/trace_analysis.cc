#include "trace/trace_analysis.hh"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <vector>

namespace tsim
{

namespace
{

bool
sameRecord(const TraceRecord &a, const TraceRecord &b)
{
    return std::memcmp(&a, &b, sizeof(TraceRecord)) == 0;
}

/** True for kinds whose aux field is a duration in ticks. */
bool
hasDuration(std::uint8_t kind)
{
    switch (static_cast<TraceKind>(kind)) {
      case TraceKind::Read:
      case TraceKind::Write:
      case TraceKind::ActRd:
      case TraceKind::ActWr:
      case TraceKind::Refresh:
      case TraceKind::DemandDone:
        return true;
      default:
        return false;
    }
}

} // namespace

TraceSummary
summarizeTrace(const TraceFile &t)
{
    TraceSummary s;
    s.records = t.records.size();
    s.dropped = t.header.droppedCount;
    double hm_lat_sum = 0;
    std::uint64_t depth = 0;
    std::uint64_t max_seq = 0;
    if (!t.records.empty())
        s.firstTick = t.records.front().tick;
    for (const TraceRecord &r : t.records) {
        s.lastTick = std::max(s.lastTick, r.tick);
        max_seq = std::max(max_seq, r.seq);
        ++s.perChannel[r.channel];
        if (r.kind < static_cast<std::uint8_t>(TraceKind::NumKinds))
            ++s.perKind[r.kind];
        switch (static_cast<TraceKind>(r.kind)) {
          case TraceKind::Read:
          case TraceKind::Write:
          case TraceKind::ActRd:
          case TraceKind::ActWr:
            ++s.perBank[{r.channel, r.bank}];
            break;
          case TraceKind::HmResult:
            ++s.hmResponses;
            hm_lat_sum += ticksToNs(r.aux);
            break;
          case TraceKind::FlushPush:
            ++s.flushPushes;
            depth = r.aux;
            s.flushMaxDepth = std::max(s.flushMaxDepth, depth);
            break;
          case TraceKind::FlushDrain:
            ++s.flushDrains;
            depth = r.aux;
            break;
          default:
            break;
        }
    }
    if (s.hmResponses)
        s.hmMeanLatencyNs = hm_lat_sum / static_cast<double>(s.hmResponses);
    if (!t.records.empty())
        s.seqMissing = max_seq + 1 - s.records;
    return s;
}

void
printTraceSummary(std::ostream &os, const TraceSummary &s,
                  const TraceFile &t, bool depth_series)
{
    os << "records        " << s.records << "\n";
    os << "span           " << ticksToNs(s.firstTick) << " .. "
       << ticksToNs(s.lastTick) << " ns\n";
    if (!s.perChannel.empty()) {
        os << "per channel:";
        for (const auto &[ch, n] : s.perChannel)
            os << "  ch" << ch << " " << n;
        os << "\n";
    }
    if (s.dropped || s.seqMissing) {
        os << "WARNING: incomplete trace: " << s.dropped
           << " ring-wrap drops reported by the writer, "
           << s.seqMissing << " emission seq(s) absent from the "
              "file\n";
    }
    os << "per kind:\n";
    for (unsigned k = 0;
         k < static_cast<unsigned>(TraceKind::NumKinds); ++k) {
        if (s.perKind[k])
            os << "  " << traceKindName(static_cast<std::uint8_t>(k))
               << " " << s.perKind[k] << "\n";
    }

    if (!s.perBank.empty()) {
        // Per-bank utilization: command share of each bank within its
        // channel, the per-command evidence behind Fig 1/Table IV.
        std::uint64_t total = 0;
        for (const auto &[cb, n] : s.perBank)
            total += n;
        os << "per-bank command utilization (" << total
           << " column commands):\n";
        for (const auto &[cb, n] : s.perBank) {
            os << "  ch" << cb.first << " bank" << cb.second << "  "
               << n << "  ("
               << 100.0 * static_cast<double>(n) /
                      static_cast<double>(total)
               << "%)\n";
        }
    }

    if (s.hmResponses) {
        os << "hm bus: " << s.hmResponses
           << " responses, mean latency " << s.hmMeanLatencyNs
           << " ns\n";
    }
    if (s.flushPushes || s.flushDrains) {
        os << "flush buffer: " << s.flushPushes << " pushes, "
           << s.flushDrains << " drains, max depth "
           << s.flushMaxDepth << "\n";
    }

    if (depth_series) {
        os << "flush-buffer depth time series (tick_ns depth):\n";
        for (const TraceRecord &r : t.records) {
            const auto k = static_cast<TraceKind>(r.kind);
            if (k == TraceKind::FlushPush || k == TraceKind::FlushDrain)
                os << "  " << ticksToNs(r.tick) << " " << r.aux << "\n";
        }
    }
}

TraceDiff
diffTraces(const TraceFile &a, const TraceFile &b)
{
    TraceDiff d;
    const std::uint64_t n =
        std::min(a.records.size(), b.records.size());
    for (std::uint64_t i = 0; i < n; ++i) {
        if (sameRecord(a.records[i], b.records[i]))
            continue;
        d.firstDivergence = i;
        std::ostringstream os;
        os << "first divergence at record " << i << " of "
           << a.records.size() << "/" << b.records.size() << ":\n";
        const std::uint64_t ctx = i >= 3 ? i - 3 : 0;
        for (std::uint64_t j = ctx; j < i; ++j)
            os << "  = " << formatTraceRecord(a.records[j]) << "\n";
        os << "  A " << formatTraceRecord(a.records[i]) << "\n";
        os << "  B " << formatTraceRecord(b.records[i]) << "\n";
        d.message = os.str();
        return d;
    }
    if (a.records.size() != b.records.size()) {
        d.firstDivergence = n;
        std::ostringstream os;
        os << "record counts differ: " << a.records.size() << " vs "
           << b.records.size() << "; first extra record:\n";
        const TraceFile &longer =
            a.records.size() > b.records.size() ? a : b;
        os << "  " << (a.records.size() > b.records.size() ? "A " : "B ")
           << formatTraceRecord(longer.records[n]) << "\n";
        d.message = os.str();
        return d;
    }
    d.identical = true;
    d.message = "traces identical (" + std::to_string(n) + " records)";
    return d;
}

void
exportChromeTrace(std::ostream &os, const TraceFile &t)
{
    // Chrome trace-event JSON array format; ts/dur are microseconds
    // (ticks are picoseconds). pid = channel, tid = bank, so the
    // timeline shows one swimlane per (channel, bank) — the layout of
    // the paper's Fig 5-7 timing diagrams.
    os << "[\n";
    bool first = true;
    for (const TraceRecord &r : t.records) {
        if (!first)
            os << ",\n";
        first = false;
        const double ts = static_cast<double>(r.tick) / 1e6;
        const unsigned tid =
            r.bank == traceBankNone ? 0xffffu : r.bank;
        char buf[256];
        if (hasDuration(r.kind)) {
            const double dur = static_cast<double>(r.aux) / 1e6;
            std::snprintf(
                buf, sizeof(buf),
                "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.6f,"
                "\"dur\":%.6f,\"pid\":%u,\"tid\":%u,"
                "\"args\":{\"addr\":\"0x%llx\",\"extra\":%u,"
                "\"seq\":%llu}}",
                traceKindName(r.kind), ts, dur, r.channel, tid,
                (unsigned long long)r.addr, r.extra,
                (unsigned long long)r.seq);
        } else {
            std::snprintf(
                buf, sizeof(buf),
                "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                "\"ts\":%.6f,\"pid\":%u,\"tid\":%u,"
                "\"args\":{\"addr\":\"0x%llx\",\"aux\":%llu,"
                "\"extra\":%u,\"seq\":%llu}}",
                traceKindName(r.kind), ts, r.channel, tid,
                (unsigned long long)r.addr,
                (unsigned long long)r.aux, r.extra,
                (unsigned long long)r.seq);
        }
        os << "  " << buf;
    }
    os << "\n]\n";
}

} // namespace tsim
