/**
 * @file
 * Offline analysis over loaded .tdt traces: per-bank utilization and
 * HM-bus/flush-buffer summaries, first-divergence diffing, and Chrome
 * trace-event JSON export. Shared by tools/trace_tool and the tests,
 * so CI failures and unit assertions exercise the same code.
 */

#ifndef TSIM_TRACE_TRACE_ANALYSIS_HH
#define TSIM_TRACE_TRACE_ANALYSIS_HH

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "trace/trace.hh"

namespace tsim
{

/** Aggregates of one trace (see summarizeTrace). */
struct TraceSummary
{
    std::uint64_t records = 0;
    Tick firstTick = 0;
    Tick lastTick = 0;

    /** Records present per channel ring (spill counts). */
    std::map<unsigned, std::uint64_t> perChannel;

    /** Ring-wrap losses the writer reported in the header. */
    std::uint64_t dropped = 0;

    /**
     * Emission seqs absent from the file: (maxSeq + 1) - records.
     * Nonzero means the trace is incomplete (ring drops or a writer
     * that never flushed); per-record seqs are dense on a clean run.
     */
    std::uint64_t seqMissing = 0;

    /** Event count per TraceKind. */
    std::array<std::uint64_t,
               static_cast<std::size_t>(TraceKind::NumKinds)>
        perKind{};

    /** Commands issued per (channel, bank). */
    std::map<std::pair<unsigned, unsigned>, std::uint64_t> perBank;

    /** HM-bus responses and the busy time they imply. */
    std::uint64_t hmResponses = 0;
    double hmMeanLatencyNs = 0;

    /** Flush-buffer depth statistics (from push/drain records). */
    std::uint64_t flushPushes = 0;
    std::uint64_t flushDrains = 0;
    std::uint64_t flushMaxDepth = 0;
};

/** Aggregate @p t (records must be seq-sorted, as loadTrace returns). */
TraceSummary summarizeTrace(const TraceFile &t);

/**
 * Print @p s human-readably: per-kind counts, a per-bank utilization
 * table, HM occupancy, and (with @p depth_series) the flush-buffer
 * depth time series reconstructed from push/drain events.
 */
void printTraceSummary(std::ostream &os, const TraceSummary &s,
                       const TraceFile &t, bool depth_series);

/** Outcome of diffTraces. */
struct TraceDiff
{
    bool identical = false;
    /** Index of the first divergent record (seq order); n/a if the
     *  headers/counts already disagree. */
    std::uint64_t firstDivergence = 0;
    std::string message;  ///< human-readable verdict with context
};

/**
 * Compare two loaded traces record by record in emission order.
 * On divergence the message names the first differing record with
 * tick and full decoded context from both sides, plus a few records
 * of preceding common history.
 */
TraceDiff diffTraces(const TraceFile &a, const TraceFile &b);

/**
 * Write @p t as Chrome trace-event JSON (chrome://tracing, Perfetto).
 * Command/demand records with a duration become complete ("X")
 * events; instantaneous records (probes, HM results, flush activity,
 * refresh) become instant ("i") events. One row per (channel, bank).
 */
void exportChromeTrace(std::ostream &os, const TraceFile &t);

} // namespace tsim

#endif // TSIM_TRACE_TRACE_ANALYSIS_HH
