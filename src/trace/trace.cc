/**
 * @file
 * Trace ring spill, .tdt file writer/loader, record formatting.
 */

#include "trace/trace.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace tsim
{

const char *
traceKindName(std::uint8_t kind)
{
    switch (static_cast<TraceKind>(kind)) {
      case TraceKind::Read: return "RD";
      case TraceKind::Write: return "WR";
      case TraceKind::ActRd: return "ActRd";
      case TraceKind::ActWr: return "ActWr";
      case TraceKind::Probe: return "Probe";
      case TraceKind::HmResult: return "HM";
      case TraceKind::FlushPush: return "FlushPush";
      case TraceKind::FlushDrain: return "FlushDrain";
      case TraceKind::Refresh: return "Refresh";
      case TraceKind::DemandStart: return "DemandStart";
      case TraceKind::DemandDone: return "DemandDone";
      case TraceKind::Remap: return "Remap";
      default: return "?";
    }
}

// ---------------------------------------------------------------------
// TraceBuffer
// ---------------------------------------------------------------------

TraceBuffer::TraceBuffer(Tracer &owner, std::uint8_t channel,
                         std::uint32_t capacity)
    : _owner(owner), _ring(std::max(1u, capacity)),
      _capacity(std::max(1u, capacity)), _channel(channel)
{
}

void
TraceBuffer::overflow()
{
    if (_owner.sinked()) {
        flush();
        return;
    }
    // Memory-only: wrap, dropping the oldest record. _head already
    // points at the oldest slot (ring full), so the caller's write
    // replaces exactly that record.
    --_size;
    ++_dropped;
}

void
TraceBuffer::flush()
{
    if (_size == 0 || !_owner.sinked())
        return;
    const std::uint32_t start =
        (_head + _capacity - _size % _capacity) % _capacity;
    if (start + _size <= _capacity) {
        _owner.sink(&_ring[start], _size);
    } else {
        const std::uint32_t first = _capacity - start;
        _owner.sink(&_ring[start], first);
        _owner.sink(&_ring[0], _size - first);
    }
    _size = 0;
}

void
TraceBuffer::commitDeferred()
{
    for (const TraceRecord &parked : _side) {
        if (_size == _capacity)
            overflow();
        TraceRecord &r = _ring[_head];
        r = parked;
        r.seq = nextSeq();
        _head = _head + 1 == _capacity ? 0 : _head + 1;
        ++_size;
    }
    _side.clear();
}

std::vector<TraceRecord>
TraceBuffer::snapshot() const
{
    std::vector<TraceRecord> out;
    out.reserve(_size);
    const std::uint32_t start =
        (_head + _capacity - _size % _capacity) % _capacity;
    for (std::uint32_t i = 0; i < _size; ++i)
        out.push_back(_ring[(start + i) % _capacity]);
    return out;
}

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

Tracer::Tracer(std::string path, unsigned channels,
               std::uint32_t ringCapacity)
    : _path(std::move(path))
{
    fatal_if(channels == 0 || channels > 255,
             "tracer needs 1..255 channels (got %u)", channels);
    if (!_path.empty()) {
        _file = std::fopen(_path.c_str(), "wb");
        fatal_if(!_file, "cannot open trace file '%s' for writing",
                 _path.c_str());
        TraceFileHeader hdr;
        hdr.channels = channels;
        fatal_if(std::fwrite(&hdr, sizeof(hdr), 1, _file) != 1,
                 "cannot write trace header to '%s'", _path.c_str());
    }
    for (unsigned c = 0; c < channels; ++c) {
        _buffers.push_back(std::make_unique<TraceBuffer>(
            *this, static_cast<std::uint8_t>(c), ringCapacity));
    }
}

Tracer::~Tracer()
{
    flushAll();
    if (_file)
        std::fclose(_file);
}

void
Tracer::sink(const TraceRecord *recs, std::size_t n)
{
    fatal_if(std::fwrite(recs, sizeof(TraceRecord), n, _file) != n,
             "short write to trace file '%s'", _path.c_str());
    _written += n;
}

void
Tracer::commitDeferred()
{
    for (auto &b : _buffers) {
        if (b->deferred())
            b->commitDeferred();
    }
}

std::uint64_t
Tracer::droppedTotal() const
{
    std::uint64_t total = 0;
    for (const auto &b : _buffers)
        total += b->dropped();
    return total;
}

void
Tracer::flushAll()
{
    if (!_file)
        return;
    for (auto &b : _buffers)
        b->flush();
    // Patch the record count into the header so readers can reject
    // truncated files, and the drop total so readers can tell a
    // complete trace from one whose rings wrapped.
    TraceFileHeader hdr;
    hdr.channels = static_cast<std::uint32_t>(_buffers.size());
    hdr.recordCount = _written;
    hdr.droppedCount = droppedTotal();
    std::fseek(_file, 0, SEEK_SET);
    fatal_if(std::fwrite(&hdr, sizeof(hdr), 1, _file) != 1,
             "cannot patch trace header of '%s'", _path.c_str());
    std::fseek(_file, 0, SEEK_END);
    std::fflush(_file);
}

// ---------------------------------------------------------------------
// Loader
// ---------------------------------------------------------------------

TraceLoadResult
loadTrace(const std::string &path)
{
    TraceLoadResult res;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        res.error = "cannot open '" + path + "'";
        return res;
    }

    TraceFileHeader hdr;
    if (std::fread(&hdr, sizeof(hdr), 1, f) != 1) {
        res.error = "'" + path + "': shorter than a trace header";
        std::fclose(f);
        return res;
    }
    if (hdr.magic != TraceFileHeader::magicValue) {
        res.error = "'" + path + "': not a .tdt trace (bad magic)";
        std::fclose(f);
        return res;
    }
    if (hdr.version != TraceFileHeader::versionValue) {
        res.error = "'" + path + "': unsupported trace version " +
                    std::to_string(hdr.version) + " (want " +
                    std::to_string(TraceFileHeader::versionValue) + ")";
        std::fclose(f);
        return res;
    }
    if (hdr.recordBytes != sizeof(TraceRecord)) {
        res.error = "'" + path + "': record size " +
                    std::to_string(hdr.recordBytes) +
                    " does not match this build (" +
                    std::to_string(sizeof(TraceRecord)) + ")";
        std::fclose(f);
        return res;
    }

    std::fseek(f, 0, SEEK_END);
    const long end = std::ftell(f);
    std::fseek(f, static_cast<long>(sizeof(hdr)), SEEK_SET);
    const std::uint64_t body =
        static_cast<std::uint64_t>(end) - sizeof(hdr);
    if (body % sizeof(TraceRecord) != 0) {
        res.error = "'" + path + "': truncated mid-record (" +
                    std::to_string(body) + " payload bytes)";
        std::fclose(f);
        return res;
    }
    const std::uint64_t n = body / sizeof(TraceRecord);
    if (n != hdr.recordCount) {
        res.error = "'" + path + "': header promises " +
                    std::to_string(hdr.recordCount) + " records, file "
                    "holds " + std::to_string(n) +
                    " (unflushed or truncated trace)";
        std::fclose(f);
        return res;
    }

    res.trace.header = hdr;
    res.trace.records.resize(n);
    if (n > 0 &&
        std::fread(res.trace.records.data(), sizeof(TraceRecord), n,
                   f) != n) {
        res.error = "'" + path + "': read error in record payload";
        res.trace.records.clear();
        std::fclose(f);
        return res;
    }
    std::fclose(f);

    // Per-channel rings spill in blocks; restore global emission
    // order.
    std::sort(res.trace.records.begin(), res.trace.records.end(),
              [](const TraceRecord &a, const TraceRecord &b) {
                  return a.seq < b.seq;
              });
    res.ok = true;
    return res;
}

std::string
formatTraceRecord(const TraceRecord &r)
{
    char buf[160];
    char bank[8] = "-";
    if (r.bank != traceBankNone)
        std::snprintf(bank, sizeof(bank), "%u", r.bank);
    std::snprintf(buf, sizeof(buf),
                  "seq=%llu tick=%llu (%.3f ns) ch=%u bank=%s "
                  "%s addr=0x%llx aux=%llu extra=0x%x",
                  (unsigned long long)r.seq, (unsigned long long)r.tick,
                  ticksToNs(r.tick), r.channel, bank,
                  traceKindName(r.kind), (unsigned long long)r.addr,
                  (unsigned long long)r.aux, r.extra);
    return buf;
}

} // namespace tsim
