/**
 * @file
 * .tdtz request-trace container: varint/delta frame codec, FNV-1a
 * frame checksums, footer index, streaming writer/reader, demand
 * projection from .tdt event traces, and the external text format.
 */

#include "trace/tdtz.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"
#include "trace/trace.hh"

#ifndef TDRAM_HAVE_ZSTD
#define TDRAM_HAVE_ZSTD 0
#endif

#if TDRAM_HAVE_ZSTD
#include <zstd.h>
#endif

namespace tsim
{

namespace
{

/** LEB128 append of an unsigned 64-bit value. */
void
putVarint(std::vector<std::uint8_t> &buf, std::uint64_t v)
{
    while (v >= 0x80) {
        buf.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    buf.push_back(static_cast<std::uint8_t>(v));
}

/** LEB128 read; false on truncation or >10-byte runaway. */
bool
getVarint(const std::uint8_t *buf, std::size_t n, std::size_t &pos,
          std::uint64_t &out)
{
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        if (pos >= n)
            return false;
        const std::uint8_t b = buf[pos++];
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80)) {
            out = v;
            return true;
        }
    }
    return false;
}

constexpr std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

constexpr std::uint8_t flagWrite = 1u << 0;
constexpr std::uint8_t flagSize = 1u << 1;
constexpr std::uint8_t flagKnown = flagWrite | flagSize;

/**
 * Encode one frame's records into the varint payload. The delta
 * baseline (prevAddr = 0, prevSize = lineBytes) restarts here, which
 * is what makes frames independently decodable.
 */
void
encodeFrame(const std::vector<ReplayRecord> &recs,
            std::vector<std::uint8_t> &out)
{
    out.clear();
    Addr prev_addr = 0;
    std::uint32_t prev_size = lineBytes;
    for (const ReplayRecord &r : recs) {
        std::uint8_t flags = r.isWrite ? flagWrite : 0;
        if (r.size != prev_size)
            flags |= flagSize;
        out.push_back(flags);
        putVarint(out, zigzag(static_cast<std::int64_t>(r.addr) -
                              static_cast<std::int64_t>(prev_addr)));
        putVarint(out, r.delta);
        if (flags & flagSize)
            putVarint(out, r.size);
        prev_addr = r.addr;
        prev_size = r.size;
    }
}

/** Decode @p records records from a varint payload; false on error. */
bool
decodeFrame(const std::uint8_t *buf, std::size_t n,
            std::uint32_t records, std::vector<ReplayRecord> &out)
{
    out.clear();
    out.reserve(records);
    std::size_t pos = 0;
    Addr prev_addr = 0;
    std::uint32_t prev_size = lineBytes;
    for (std::uint32_t i = 0; i < records; ++i) {
        if (pos >= n)
            return false;
        const std::uint8_t flags = buf[pos++];
        if (flags & ~flagKnown)
            return false;
        std::uint64_t zz = 0;
        std::uint64_t delta = 0;
        if (!getVarint(buf, n, pos, zz) ||
            !getVarint(buf, n, pos, delta)) {
            return false;
        }
        ReplayRecord r;
        r.addr = static_cast<Addr>(static_cast<std::int64_t>(prev_addr) +
                                   unzigzag(zz));
        r.delta = delta;
        r.isWrite = (flags & flagWrite) != 0;
        r.size = prev_size;
        if (flags & flagSize) {
            std::uint64_t sz = 0;
            if (!getVarint(buf, n, pos, sz) || sz == 0 ||
                sz > ~std::uint32_t{0}) {
                return false;
            }
            r.size = static_cast<std::uint32_t>(sz);
        }
        prev_addr = r.addr;
        prev_size = r.size;
        out.push_back(r);
    }
    return pos == n;  // trailing garbage is corruption too
}

} // namespace

bool
tdtzZstdAvailable()
{
#if TDRAM_HAVE_ZSTD
    return true;
#else
    return false;
#endif
}

std::uint64_t
tdtzChecksum(const void *data, std::size_t n)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint64_t h = 14695981039346656037ULL;
    for (std::size_t i = 0; i < n; ++i)
        h = (h ^ p[i]) * 1099511628211ULL;
    return h;
}

// ---------------------------------------------------------------------
// TdtzWriter
// ---------------------------------------------------------------------

TdtzWriter::TdtzWriter(std::string path, TdtzCodec codec,
                       std::uint32_t frameRecords)
    : _path(std::move(path)), _codec(codec),
      _frameRecords(std::max(1u, frameRecords))
{
    fatal_if(_codec == TdtzCodec::Zstd && !tdtzZstdAvailable(),
             "this build has no zstd; write '%s' with the varint "
             "codec instead", _path.c_str());
    _file = std::fopen(_path.c_str(), "wb");
    fatal_if(!_file, "cannot open '%s' for writing", _path.c_str());
    TdtzFileHeader hdr;
    hdr.codec = static_cast<std::uint32_t>(_codec);
    hdr.frameRecords = _frameRecords;
    fatal_if(std::fwrite(&hdr, sizeof(hdr), 1, _file) != 1,
             "cannot write header to '%s'", _path.c_str());
}

TdtzWriter::~TdtzWriter()
{
    finish();
}

void
TdtzWriter::append(const ReplayRecord &r)
{
    panic_if(_finished, "append to a finished .tdtz writer");
    _pending.push_back(r);
    ++_info.records;
    _info.maxLineAddr = std::max<std::uint64_t>(
        _info.maxLineAddr,
        lineAlign(r.addr + (r.size ? r.size - 1 : 0)) + lineBytes);
    if (r.isWrite)
        ++_info.writes;
    else
        ++_info.reads;
    _info.spanTicks += r.delta;
    if (_pending.size() >= _frameRecords)
        flushFrame();
}

void
TdtzWriter::flushFrame()
{
    if (_pending.empty())
        return;
    std::vector<std::uint8_t> raw;
    encodeFrame(_pending, raw);

    std::vector<std::uint8_t> stored;
#if TDRAM_HAVE_ZSTD
    if (_codec == TdtzCodec::Zstd) {
        stored.resize(ZSTD_compressBound(raw.size()));
        const std::size_t n =
            ZSTD_compress(stored.data(), stored.size(), raw.data(),
                          raw.size(), /*level=*/3);
        fatal_if(ZSTD_isError(n), "zstd compression failed on '%s': %s",
                 _path.c_str(), ZSTD_getErrorName(n));
        stored.resize(n);
    }
#endif
    const std::vector<std::uint8_t> &payload =
        _codec == TdtzCodec::Zstd ? stored : raw;

    TdtzIndexEntry ie;
    ie.offset = static_cast<std::uint64_t>(std::ftell(_file));
    ie.firstRecord = _info.records - _pending.size();
    ie.records = _pending.size();
    _index.push_back(ie);

    TdtzFrameHeader fh;
    fh.records = static_cast<std::uint32_t>(_pending.size());
    fh.payloadBytes = static_cast<std::uint32_t>(payload.size());
    fh.rawBytes = static_cast<std::uint32_t>(raw.size());
    fh.checksum = tdtzChecksum(payload.data(), payload.size());
    fatal_if(std::fwrite(&fh, sizeof(fh), 1, _file) != 1 ||
                 (!payload.empty() &&
                  std::fwrite(payload.data(), 1, payload.size(),
                              _file) != payload.size()),
             "short write to '%s'", _path.c_str());
    _pending.clear();
}

void
TdtzWriter::finish()
{
    if (_finished || !_file)
        return;
    _finished = true;
    flushFrame();
    _info.frames = _index.size();

    TdtzFooterTail tail;
    tail.indexOffset = static_cast<std::uint64_t>(std::ftell(_file));
    tail.indexEntries = static_cast<std::uint32_t>(_index.size());
    const bool ok =
        (_index.empty() ||
         std::fwrite(_index.data(), sizeof(TdtzIndexEntry),
                     _index.size(), _file) == _index.size()) &&
        std::fwrite(&_info, sizeof(_info), 1, _file) == 1 &&
        std::fwrite(&tail, sizeof(tail), 1, _file) == 1;
    fatal_if(!ok, "short write to '%s'", _path.c_str());
    std::fclose(_file);
    _file = nullptr;
}

// ---------------------------------------------------------------------
// TdtzReader
// ---------------------------------------------------------------------

TdtzReader::~TdtzReader()
{
    if (_file)
        std::fclose(_file);
}

bool
TdtzReader::fail(const std::string &msg)
{
    _error = "'" + _path + "': " + msg;
    return false;
}

bool
TdtzReader::open(const std::string &path)
{
    _path = path;
    _file = std::fopen(path.c_str(), "rb");
    if (!_file)
        return fail("cannot open");

    if (std::fread(&_header, sizeof(_header), 1, _file) != 1)
        return fail("shorter than a .tdtz header");
    if (_header.magic != TdtzFileHeader::magicValue)
        return fail("not a .tdtz trace (bad magic)");
    if (_header.version != TdtzFileHeader::versionValue) {
        return fail("unsupported version " +
                    std::to_string(_header.version));
    }
    if (_header.codec > static_cast<std::uint32_t>(TdtzCodec::Zstd))
        return fail("unknown codec " + std::to_string(_header.codec));
    if (_header.codec == static_cast<std::uint32_t>(TdtzCodec::Zstd) &&
        !tdtzZstdAvailable()) {
        return fail("zstd-compressed trace but this build has no zstd");
    }

    std::fseek(_file, 0, SEEK_END);
    const long end = std::ftell(_file);
    const std::uint64_t file_size = static_cast<std::uint64_t>(end);
    if (file_size < sizeof(TdtzFileHeader) + sizeof(TdtzInfo) +
                        sizeof(TdtzFooterTail)) {
        return fail("truncated (no footer)");
    }

    TdtzFooterTail tail;
    std::fseek(_file, end - static_cast<long>(sizeof(tail)), SEEK_SET);
    if (std::fread(&tail, sizeof(tail), 1, _file) != 1)
        return fail("cannot read footer tail");
    if (tail.magic != TdtzFooterTail::magicValue)
        return fail("truncated or corrupt (bad footer magic)");

    const std::uint64_t index_bytes =
        static_cast<std::uint64_t>(tail.indexEntries) *
        sizeof(TdtzIndexEntry);
    const std::uint64_t footer_bytes =
        index_bytes + sizeof(TdtzInfo) + sizeof(tail);
    if (tail.indexOffset < sizeof(TdtzFileHeader) ||
        tail.indexOffset + footer_bytes != file_size) {
        return fail("corrupt footer (index does not fit the file)");
    }

    std::fseek(_file, static_cast<long>(tail.indexOffset), SEEK_SET);
    _index.resize(tail.indexEntries);
    if (tail.indexEntries > 0 &&
        std::fread(_index.data(), sizeof(TdtzIndexEntry),
                   _index.size(), _file) != _index.size()) {
        return fail("cannot read frame index");
    }
    if (std::fread(&_infoBlock, sizeof(_infoBlock), 1, _file) != 1)
        return fail("cannot read info block");

    if (_infoBlock.frames != _index.size())
        return fail("info/index frame-count mismatch");
    std::uint64_t expect = 0;
    for (const TdtzIndexEntry &ie : _index) {
        if (ie.firstRecord != expect || ie.records == 0 ||
            ie.offset < sizeof(TdtzFileHeader) ||
            ie.offset + sizeof(TdtzFrameHeader) > tail.indexOffset) {
            return fail("corrupt frame index");
        }
        expect += ie.records;
    }
    if (expect != _infoBlock.records)
        return fail("index record count disagrees with info block");
    return true;
}

bool
TdtzReader::loadFrame(std::uint64_t fi)
{
    const TdtzIndexEntry &ie = _index[fi];
    std::fseek(_file, static_cast<long>(ie.offset), SEEK_SET);
    TdtzFrameHeader fh;
    if (std::fread(&fh, sizeof(fh), 1, _file) != 1)
        return fail("truncated frame header");
    if (fh.magic != TdtzFrameHeader::magicValue)
        return fail("bad frame magic (frame " + std::to_string(fi) +
                    ")");
    if (fh.records != ie.records)
        return fail("frame/index record-count mismatch (frame " +
                    std::to_string(fi) + ")");

    std::vector<std::uint8_t> stored(fh.payloadBytes);
    if (!stored.empty() &&
        std::fread(stored.data(), 1, stored.size(), _file) !=
            stored.size()) {
        return fail("truncated frame payload (frame " +
                    std::to_string(fi) + ")");
    }
    if (tdtzChecksum(stored.data(), stored.size()) != fh.checksum) {
        return fail("frame checksum mismatch (frame " +
                    std::to_string(fi) + ": corrupt payload)");
    }

    const std::uint8_t *raw = stored.data();
    std::size_t raw_size = stored.size();
    std::vector<std::uint8_t> scratch;
#if TDRAM_HAVE_ZSTD
    if (_header.codec == static_cast<std::uint32_t>(TdtzCodec::Zstd)) {
        scratch.resize(fh.rawBytes);
        const std::size_t n =
            ZSTD_decompress(scratch.data(), scratch.size(),
                            stored.data(), stored.size());
        if (ZSTD_isError(n) || n != fh.rawBytes) {
            return fail("zstd decompression failed (frame " +
                        std::to_string(fi) + ")");
        }
        raw = scratch.data();
        raw_size = scratch.size();
    }
#endif
    if (raw_size != fh.rawBytes)
        return fail("frame raw-size mismatch (frame " +
                    std::to_string(fi) + ")");
    if (!decodeFrame(raw, raw_size, fh.records, _frame))
        return fail("malformed varint payload (frame " +
                    std::to_string(fi) + ")");
    _frameIdx = fi;
    _frameLoaded = true;
    return true;
}

bool
TdtzReader::next(ReplayRecord &out)
{
    if (!_error.empty())
        return false;
    if (_pos >= _infoBlock.records)
        return false;  // clean EOF, error() stays empty
    if (!_frameLoaded || _pos < _index[_frameIdx].firstRecord ||
        _pos >= _index[_frameIdx].firstRecord +
                    _index[_frameIdx].records) {
        // Locate the owning frame; the sequential case is always the
        // next one, so start there before binary-searching.
        std::uint64_t fi =
            _frameLoaded && _frameIdx + 1 < _index.size() &&
                    _index[_frameIdx + 1].firstRecord == _pos
                ? _frameIdx + 1
                : static_cast<std::uint64_t>(
                      std::upper_bound(
                          _index.begin(), _index.end(), _pos,
                          [](std::uint64_t p, const TdtzIndexEntry &e) {
                              return p < e.firstRecord;
                          }) -
                      _index.begin() - 1);
        if (!loadFrame(fi))
            return false;
        _frameCursor =
            static_cast<std::size_t>(_pos - _index[fi].firstRecord);
    }
    out = _frame[_frameCursor++];
    ++_pos;
    return true;
}

bool
TdtzReader::seekRecord(std::uint64_t n)
{
    if (!_error.empty())
        return false;
    if (n > _infoBlock.records)
        return fail("seek past end of stream");
    _pos = n;
    // next() relocates/reloads the frame lazily; invalidate the
    // cursor so an in-frame seek re-syncs it.
    if (_frameLoaded && n >= _index[_frameIdx].firstRecord &&
        n < _index[_frameIdx].firstRecord + _index[_frameIdx].records) {
        _frameCursor = static_cast<std::size_t>(
            n - _index[_frameIdx].firstRecord);
    } else {
        _frameLoaded = false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Conversions
// ---------------------------------------------------------------------

std::vector<ReplayRecord>
projectDemands(const TraceFile &trace)
{
    std::vector<ReplayRecord> out;
    Tick prev = 0;
    for (const TraceRecord &r : trace.records) {
        if (r.kind != static_cast<std::uint8_t>(TraceKind::DemandStart))
            continue;
        ReplayRecord rr;
        rr.addr = r.addr;
        rr.size = lineBytes;
        rr.isWrite = (r.extra & 1) != 0;
        rr.delta = r.tick - prev;
        prev = r.tick;
        out.push_back(rr);
    }
    return out;
}

bool
parseTextTrace(const std::string &path, std::vector<ReplayRecord> &out,
               std::string &error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot open '" + path + "'";
        return false;
    }
    out.clear();
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ss(line);
        std::string kind;
        std::string addr_str;
        ss >> kind >> addr_str;
        if (ss.fail() || (kind != "R" && kind != "W")) {
            error = path + ":" + std::to_string(line_no) +
                    ": expected 'R|W <addr> [<size> [<delta_ns>]]'";
            return false;
        }
        ReplayRecord r;
        r.addr = std::strtoull(addr_str.c_str(), nullptr, 0);
        r.isWrite = kind == "W";
        std::uint64_t size = 0;
        if (ss >> size) {
            if (size == 0) {
                error = path + ":" + std::to_string(line_no) +
                        ": size must be >= 1";
                return false;
            }
            r.size = static_cast<std::uint32_t>(size);
            double delta_ns = 0;
            if (ss >> delta_ns) {
                if (delta_ns < 0) {
                    error = path + ":" + std::to_string(line_no) +
                            ": delta_ns must be >= 0";
                    return false;
                }
                r.delta = nsToTicks(delta_ns);
            }
        }
        out.push_back(r);
    }
    return true;
}

} // namespace tsim
