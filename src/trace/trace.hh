/**
 * @file
 * Cycle-level structured event tracing (DESIGN.md §10).
 *
 * The simulator's headline behaviours — ActRd/ActWr lockstep, HM-bus
 * responses, flush-buffer pushes and drains, early tag probes — live
 * in cycle-level interleavings that end-of-run statistics cannot
 * show. This subsystem records them as fixed-size binary records:
 *
 *  - Each traced component (every DramChannel, plus the DRAM-cache
 *    controller front-end) owns a TraceBuffer: a fixed-capacity ring
 *    of TraceRecord slots. record() is a handful of stores — no
 *    allocation, no branching beyond a full-check — so hooks are
 *    cheap enough to leave in release builds.
 *  - A Tracer owns the per-channel buffers plus (optionally) a
 *    TraceWriter that appends full rings to a `.tdt` file with a
 *    versioned header. Without a writer the rings wrap, retaining the
 *    most recent events for post-mortem inspection.
 *  - Records carry a global emission sequence number, so a loader can
 *    reconstruct the exact total order of emission even though
 *    per-channel rings spill to the file in blocks. Emission order is
 *    a function of simulated execution order only, which makes traces
 *    byte-comparable across runs: serial and `--jobs N` sweeps must
 *    produce identical `.tdt` files (CI gates on this).
 *
 * Compile-time gate: build with -DTDRAM_TRACE=0 to compile every
 * hook call site out entirely (the subsystem itself still builds, so
 * tools keep working on existing traces). The default is 1.
 */

#ifndef TSIM_TRACE_TRACE_HH
#define TSIM_TRACE_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "sim/ticks.hh"

#ifndef TDRAM_TRACE
#define TDRAM_TRACE 1
#endif

/**
 * Hook wrapper used at every emission site. With TDRAM_TRACE=0 the
 * whole call site (including the null check and argument evaluation)
 * compiles away; tests/check_trace_gate.sh asserts this via a symbol
 * check on the compiled object.
 */
#if TDRAM_TRACE
#define TSIM_TRACE_EVENT(buf, ...)                                    \
    do {                                                              \
        if (buf)                                                      \
            (buf)->record(__VA_ARGS__);                               \
    } while (0)
#else
#define TSIM_TRACE_EVENT(buf, ...) ((void)0)
#endif

namespace tsim
{

/** True when hook call sites are compiled in (TDRAM_TRACE=1). */
constexpr bool
traceCompiledIn()
{
    return TDRAM_TRACE != 0;
}

/** Traced event kinds. Values are part of the .tdt format. */
enum class TraceKind : std::uint8_t
{
    Read = 0,       ///< conventional ACT+RD issued
    Write = 1,      ///< conventional ACT+WR issued
    ActRd = 2,      ///< TDRAM/NDC lockstep tag+data read issued
    ActWr = 3,      ///< TDRAM/NDC lockstep tag+data write issued
    Probe = 4,      ///< early tag probe issued
    HmResult = 5,   ///< HM-bus (or column-tied) hit/miss response
    FlushPush = 6,  ///< dirty victim pushed into the flush buffer
    FlushDrain = 7, ///< flush-buffer entry drained to the controller
    Refresh = 8,    ///< all-bank refresh started
    DemandStart = 9, ///< demand packet accepted by the controller
    DemandDone = 10, ///< demand packet responded
    Remap = 11,      ///< page-grain remap-table install/evict (Banshee)
    NumKinds,
};

/** Printable name of a TraceKind ("?" for out-of-range values). */
const char *traceKindName(std::uint8_t kind);

/** Flush-drain causes carried in TraceRecord::extra (FlushDrain). */
enum class DrainCause : std::uint32_t
{
    MissClean = 0,  ///< unloaded in an unused read-miss-clean DQ slot
    Refresh = 1,    ///< unloaded during a refresh window
    Forced = 2,     ///< explicit drain command (buffer full / NDC RES)
};

/**
 * One traced event. Fixed-size, trivially copyable: the .tdt file is
 * a header plus a flat array of these, written in spill order and
 * reordered by `seq` on load.
 *
 * Field use by kind:
 *  - Read/Write/ActRd/ActWr: aux = issue-to-data-done latency in
 *    ticks; extra = packed tag bits (ActRd/ActWr) or row-hit flag,
 *    plus controller flags (traceFillFlag/traceSpillFlag + group id)
 *    on page-grain Read/Write.
 *  - Probe/HmResult: aux = result latency in ticks; extra = packed
 *    tag bits.
 *  - FlushPush/FlushDrain: addr = victim line; aux = buffer depth
 *    after the operation; extra = DrainCause (drains only).
 *  - Refresh: aux = tRFC in ticks.
 *  - DemandStart: extra = 0 read / 1 write. DemandDone: aux =
 *    end-to-end latency in ticks; extra = AccessOutcome.
 *  - Remap: addr = installed page; aux = evicted page; extra bit 0 =
 *    victim valid, bits 16-31 = fill-group id.
 */
struct TraceRecord
{
    Tick tick = 0;            ///< simulated time of the event
    std::uint64_t seq = 0;    ///< global emission order
    std::uint64_t addr = 0;   ///< line address (0 when n/a)
    std::uint64_t aux = 0;    ///< kind-specific payload (see above)
    std::uint8_t kind = 0;    ///< TraceKind
    std::uint8_t channel = 0; ///< emitting buffer id
    std::uint16_t bank = 0;   ///< bank, or bankNone
    std::uint32_t extra = 0;  ///< kind-specific flags
};

static_assert(sizeof(TraceRecord) == 40,
              "TraceRecord layout is part of the .tdt format");
static_assert(std::is_trivially_copyable_v<TraceRecord>,
              "TraceRecord must be memcpy-able");

/** Bank value for events with no meaningful bank. */
constexpr std::uint16_t traceBankNone = 0xffff;

/**
 * @name Controller-flag bits in TraceRecord::extra (Read/Write).
 * Page-grain controllers (Banshee) tag the cache-side accesses they
 * issue on behalf of a fill group; the checker audits them against
 * the group opened by the preceding Remap record. Bit 0 stays the
 * row-hit flag, so these start at bit 8.
 */
/// @{
constexpr std::uint32_t traceFillFlag = 1u << 8;  ///< page-fill write
constexpr std::uint32_t traceSpillFlag = 1u << 9; ///< victim-spill read
constexpr unsigned traceGroupShift = 16;          ///< fill-group id
constexpr std::uint32_t traceGroupMask = 0xffffu;
/// @}

/** Pack a tag result into TraceRecord::extra. */
constexpr std::uint32_t
packTagBits(bool hit, bool valid, bool dirty, bool via_probe)
{
    return (hit ? 1u : 0u) | (valid ? 2u : 0u) | (dirty ? 4u : 0u) |
           (via_probe ? 8u : 0u);
}

/** .tdt file header (32 bytes, little-endian, versioned). */
struct TraceFileHeader
{
    std::uint32_t magic = magicValue;
    std::uint32_t version = versionValue;
    std::uint32_t recordBytes = sizeof(TraceRecord);
    std::uint32_t channels = 0;    ///< buffer count of the writer
    std::uint64_t recordCount = 0; ///< patched on close
    /**
     * Records lost to ring wraparound across every channel, patched
     * on close alongside recordCount. Zero for sinked runs (full
     * rings spill instead of wrapping), so readers treat a nonzero
     * value as "this trace is silently incomplete". Occupies the
     * former reserved word; zero-filled files from older writers
     * read back as "no drops", keeping version 1 traces compatible.
     */
    std::uint64_t droppedCount = 0;

    static constexpr std::uint32_t magicValue = 0x54445431; ///< "1TDT"
    static constexpr std::uint32_t versionValue = 1;
};

static_assert(sizeof(TraceFileHeader) == 32,
              "TraceFileHeader layout is part of the .tdt format");

class Tracer;

/**
 * Per-channel ring of TraceRecord slots.
 *
 * With a sinked owner the ring spills to the trace file whenever it
 * fills (nothing is lost); without one it wraps, overwriting the
 * oldest record and counting the loss. Either way record() itself
 * never allocates.
 */
class TraceBuffer
{
  public:
    TraceBuffer(Tracer &owner, std::uint8_t channel,
                std::uint32_t capacity);

    /** Append one event (inline fast path; spill is out-of-line). */
    void
    record(TraceKind kind, Tick tick, std::uint64_t addr,
           std::uint16_t bank, std::uint64_t aux, std::uint32_t extra)
    {
        if (_deferred) {
            // Sharded mode: park the record locally without touching
            // the owner's shared sequence counter (the emitter may be
            // running on a worker thread); commitDeferred() assigns
            // seqs on the coordinator at the superstep boundary.
            TraceRecord r;
            r.tick = tick;
            r.addr = addr;
            r.aux = aux;
            r.kind = static_cast<std::uint8_t>(kind);
            r.channel = _channel;
            r.bank = bank;
            r.extra = extra;
            _side.push_back(r);
            return;
        }
        if (_size == _capacity)
            overflow();
        TraceRecord &r = _ring[_head];
        r.tick = tick;
        r.seq = nextSeq();
        r.addr = addr;
        r.aux = aux;
        r.kind = static_cast<std::uint8_t>(kind);
        r.channel = _channel;
        r.bank = bank;
        r.extra = extra;
        _head = _head + 1 == _capacity ? 0 : _head + 1;
        ++_size;
    }

    std::uint8_t channel() const { return _channel; }
    std::uint32_t capacity() const { return _capacity; }
    std::uint32_t size() const { return _size; }

    /** Records dropped to wraparound (sink-less buffers only). */
    std::uint64_t dropped() const { return _dropped; }

    /** Buffered (un-spilled) records, oldest first. */
    std::vector<TraceRecord> snapshot() const;

    /** Spill buffered records to the owner's writer (if any). */
    void flush();

    /**
     * Deferred mode (sharded runs, DESIGN.md §12): record() parks
     * records in a thread-local side list instead of the shared ring,
     * and the coordinator commits them between phases.
     */
    void setDeferred(bool deferred) { _deferred = deferred; }
    bool deferred() const { return _deferred; }

    /**
     * Move every parked record through the normal ring path,
     * assigning emission seqs in park order. Coordinator-only.
     */
    void commitDeferred();

  private:
    /** Full ring: spill to the file or overwrite the oldest. */
    void overflow();

    std::uint64_t nextSeq();

    Tracer &_owner;
    std::vector<TraceRecord> _ring;
    std::uint32_t _capacity;
    std::uint32_t _head = 0;  ///< next write slot
    std::uint32_t _size = 0;  ///< valid records in the ring
    std::uint64_t _dropped = 0;
    std::uint8_t _channel;
    bool _deferred = false;
    std::vector<TraceRecord> _side;  ///< parked deferred records
};

/**
 * Owns the per-channel TraceBuffers and the optional .tdt writer.
 * One Tracer per System (single simulation thread): buffers share
 * the Tracer's emission-sequence counter without synchronization.
 */
class Tracer
{
  public:
    /**
     * @param path     .tdt output file; empty = memory-only (rings
     *                 wrap, nothing is written).
     * @param channels number of trace buffers to create.
     * @param ringCapacity slots per buffer.
     */
    Tracer(std::string path, unsigned channels,
           std::uint32_t ringCapacity = 4096);

    /** Flushes and closes the file (if any). */
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    TraceBuffer &buffer(unsigned channel) { return *_buffers[channel]; }
    unsigned numBuffers() const
    {
        return static_cast<unsigned>(_buffers.size());
    }

    /** Spill every buffer and fsync the record count to the header. */
    void flushAll();

    /**
     * Commit every buffer's deferred records in ascending buffer id
     * (the fixed merge order that makes sharded traces byte-equal
     * for any thread count). No-op for non-deferred buffers.
     */
    void commitDeferred();

    const std::string &path() const { return _path; }
    bool sinked() const { return _file != nullptr; }
    std::uint64_t recordsWritten() const { return _written; }

    /** Records dropped to ring wraparound, summed over channels. */
    std::uint64_t droppedTotal() const;

  private:
    friend class TraceBuffer;

    /** Append @p n records to the file (writer must exist). */
    void sink(const TraceRecord *recs, std::size_t n);

    std::string _path;
    std::FILE *_file = nullptr;
    std::uint64_t _written = 0;
    std::uint64_t _nextSeq = 0;
    std::vector<std::unique_ptr<TraceBuffer>> _buffers;
};

inline std::uint64_t
TraceBuffer::nextSeq()
{
    return _owner._nextSeq++;
}

/** A loaded .tdt file: header plus records sorted by emission seq. */
struct TraceFile
{
    TraceFileHeader header{};
    std::vector<TraceRecord> records;  ///< sorted by seq
};

/**
 * Result of loading a .tdt file. `ok` is false (with `error` set) on
 * unreadable, truncated, or version-mismatched input.
 */
struct TraceLoadResult
{
    bool ok = false;
    std::string error;
    TraceFile trace;
};

/** Load and validate @p path; never throws. */
TraceLoadResult loadTrace(const std::string &path);

/** One-line human rendering of @p r (used by trace_tool diff). */
std::string formatTraceRecord(const TraceRecord &r);

} // namespace tsim

#endif // TSIM_TRACE_TRACE_HH
