/**
 * @file
 * Compressed, seekable request-trace container (.tdtz, DESIGN.md §14).
 *
 * Where a .tdt file records every *device event* of one run (40 bytes
 * each, exact replay of what happened), a .tdtz file records only the
 * *demand request stream* — address, size, read/write, inter-arrival
 * delta — which is what a replay front end needs to drive any
 * controller/device configuration. The container is built for the
 * record-once/replay-many methodology:
 *
 *  - Records are varint/delta-encoded inside fixed-size frames. Each
 *    frame restarts its delta baseline, so frames decode
 *    independently of each other.
 *  - Every frame carries an FNV-1a checksum over its stored payload;
 *    a flipped byte anywhere in a frame is rejected at decode time.
 *  - The footer holds a frame index (file offset, first record,
 *    count) plus stream totals (record count, footprint bound, time
 *    span), so readers can seek to any record in O(frame) work and
 *    size main memory without decoding the stream.
 *  - Frame payloads are zstd-compressed when the build found zstd
 *    (codec 1); otherwise the varint payload is stored raw (codec 0).
 *    The record-level content is identical either way — the codec
 *    only changes the bytes between frame header and checksum.
 *
 * All multi-byte header/footer fields are little-endian (the only
 * byte order this simulator targets; static_asserts pin the layout).
 */

#ifndef TSIM_TRACE_TDTZ_HH
#define TSIM_TRACE_TDTZ_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <type_traits>
#include <vector>

#include "mem/types.hh"
#include "sim/ticks.hh"

namespace tsim
{

struct TraceFile;

/** One replayable demand request. */
struct ReplayRecord
{
    Addr addr = 0;              ///< byte address (line-aligned on use)
    std::uint32_t size = lineBytes;  ///< request bytes
    bool isWrite = false;
    /**
     * Ticks since the previous record's issue (first record: since
     * tick 0). Absolute issue time is the running sum, so a decoder
     * that seeks mid-stream still gets exact inter-arrival spacing.
     */
    Tick delta = 0;

    bool
    operator==(const ReplayRecord &o) const
    {
        return addr == o.addr && size == o.size &&
               isWrite == o.isWrite && delta == o.delta;
    }
};

/** Payload codecs. Part of the format; new codecs append. */
enum class TdtzCodec : std::uint32_t
{
    Varint = 0,  ///< raw varint/delta payload (always available)
    Zstd = 1,    ///< zstd-compressed varint/delta payload
};

/** .tdtz file header (32 bytes). */
struct TdtzFileHeader
{
    std::uint32_t magic = magicValue;
    std::uint32_t version = versionValue;
    std::uint32_t codec = 0;         ///< TdtzCodec
    std::uint32_t frameRecords = 0;  ///< target records per frame
    std::uint64_t reserved0 = 0;
    std::uint64_t reserved1 = 0;

    static constexpr std::uint32_t magicValue = 0x5a445431;  ///< "1TDZ"
    static constexpr std::uint32_t versionValue = 1;
};

static_assert(sizeof(TdtzFileHeader) == 32,
              "TdtzFileHeader layout is part of the .tdtz format");
static_assert(std::is_trivially_copyable_v<TdtzFileHeader>);

/** Per-frame header (24 bytes), immediately followed by the payload. */
struct TdtzFrameHeader
{
    std::uint32_t magic = magicValue;
    std::uint32_t records = 0;       ///< records in this frame
    std::uint32_t payloadBytes = 0;  ///< stored (possibly compressed)
    std::uint32_t rawBytes = 0;      ///< varint payload before codec
    std::uint64_t checksum = 0;      ///< FNV-1a 64 of stored payload

    static constexpr std::uint32_t magicValue = 0x465a4454;  ///< "TDZF"
};

static_assert(sizeof(TdtzFrameHeader) == 24,
              "TdtzFrameHeader layout is part of the .tdtz format");
static_assert(std::is_trivially_copyable_v<TdtzFrameHeader>);

/** One footer-index entry (24 bytes) describing one frame. */
struct TdtzIndexEntry
{
    std::uint64_t offset = 0;       ///< file offset of the frame header
    std::uint64_t firstRecord = 0;  ///< stream index of first record
    std::uint64_t records = 0;
};

static_assert(sizeof(TdtzIndexEntry) == 24,
              "TdtzIndexEntry layout is part of the .tdtz format");

/** Stream totals stored in the footer (64 bytes). */
struct TdtzInfo
{
    std::uint64_t records = 0;
    /**
     * lineAlign(max addr) + lineBytes over the stream: the physical
     * footprint bound replay uses to size main memory.
     */
    std::uint64_t maxLineAddr = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t spanTicks = 0;  ///< sum of all deltas
    std::uint64_t frames = 0;
    std::uint64_t reserved0 = 0;
    std::uint64_t reserved1 = 0;
};

static_assert(sizeof(TdtzInfo) == 64,
              "TdtzInfo layout is part of the .tdtz format");

/** Footer tail (16 bytes) at the very end of the file. */
struct TdtzFooterTail
{
    std::uint64_t indexOffset = 0;  ///< offset of the first index entry
    std::uint32_t indexEntries = 0;
    std::uint32_t magic = magicValue;

    static constexpr std::uint32_t magicValue = 0x5a445446;  ///< "FTDZ"
};

static_assert(sizeof(TdtzFooterTail) == 16,
              "TdtzFooterTail layout is part of the .tdtz format");

/**
 * Nominal bytes of one record in a flat (uncompressed, unpacked)
 * encoding: 8 addr + 8 delta + 4 size + 1 flags, aligned to 24. The
 * reference point for the compression-ratio metric bench/micro_replay
 * reports and tests/check_replay_bench.sh gates on.
 */
constexpr std::uint64_t tdtzFlatRecordBytes = 24;

/** True when this build can write/read zstd frames (codec 1). */
bool tdtzZstdAvailable();

/** FNV-1a 64 over a byte range (the frame checksum). */
std::uint64_t tdtzChecksum(const void *data, std::size_t n);

/**
 * Streaming .tdtz writer. append() buffers one frame's records;
 * frames are encoded and flushed as they fill, the index/footer on
 * finish() (or destruction). Fatal on I/O errors (a half-written
 * trace is useless) and on requesting zstd in a build without it.
 */
class TdtzWriter
{
  public:
    /**
     * @param path   Output file.
     * @param codec  Payload codec; default: zstd when available.
     * @param frameRecords Records per frame (tuning only; any value
     *               >= 1 produces a valid file).
     */
    explicit TdtzWriter(std::string path,
                        TdtzCodec codec = tdtzZstdAvailable()
                                              ? TdtzCodec::Zstd
                                              : TdtzCodec::Varint,
                        std::uint32_t frameRecords = 4096);
    ~TdtzWriter();

    TdtzWriter(const TdtzWriter &) = delete;
    TdtzWriter &operator=(const TdtzWriter &) = delete;

    void append(const ReplayRecord &r);

    /** Flush the open frame, write the footer, close the file. */
    void finish();

    std::uint64_t recordsWritten() const { return _info.records; }
    TdtzCodec codec() const { return _codec; }

  private:
    void flushFrame();

    std::string _path;
    std::FILE *_file = nullptr;
    TdtzCodec _codec;
    std::uint32_t _frameRecords;
    std::vector<ReplayRecord> _pending;  ///< open frame
    std::vector<TdtzIndexEntry> _index;
    TdtzInfo _info;
    bool _finished = false;
};

/**
 * Streaming .tdtz reader with O(frame) random access.
 *
 * open() validates the header, footer, and index (rejecting
 * truncated files); next() decodes frame-by-frame, verifying each
 * frame's checksum before trusting its payload. Never throws —
 * failures set error() and make next() return false.
 */
class TdtzReader
{
  public:
    TdtzReader() = default;
    ~TdtzReader();

    TdtzReader(const TdtzReader &) = delete;
    TdtzReader &operator=(const TdtzReader &) = delete;

    /** Open and validate @p path. False (with error()) on failure. */
    bool open(const std::string &path);

    /**
     * Decode the next record. False at end-of-stream or on error
     * (error() distinguishes: empty string means clean EOF).
     */
    bool next(ReplayRecord &out);

    /**
     * Position the cursor so the next next() returns record @p n
     * (frame-index seek + intra-frame skip). False on error or
     * n > record count (n == count positions at EOF).
     */
    bool seekRecord(std::uint64_t n);

    /** Stream index of the record the next next() will return. */
    std::uint64_t position() const { return _pos; }

    const TdtzInfo &info() const { return _infoBlock; }
    const TdtzFileHeader &header() const { return _header; }
    const std::vector<TdtzIndexEntry> &index() const { return _index; }
    const std::string &error() const { return _error; }
    bool ok() const { return _error.empty(); }

  private:
    /** Load + verify + decode frame @p fi into _frame. */
    bool loadFrame(std::uint64_t fi);
    bool fail(const std::string &msg);

    std::string _path;
    std::FILE *_file = nullptr;
    TdtzFileHeader _header{};
    TdtzInfo _infoBlock{};
    std::vector<TdtzIndexEntry> _index;
    std::vector<ReplayRecord> _frame;  ///< decoded current frame
    std::uint64_t _frameIdx = 0;       ///< index of _frame (if loaded)
    bool _frameLoaded = false;
    std::size_t _frameCursor = 0;      ///< next record within _frame
    std::uint64_t _pos = 0;            ///< stream position
    std::string _error;
};

/**
 * Project the demand stream out of a loaded .tdt event trace: every
 * DemandStart record (acceptance order = seq order) becomes one
 * ReplayRecord with the acceptance-tick deltas. Returns the records;
 * used by `trace_tool convert` and bench/micro_replay.
 */
std::vector<ReplayRecord> projectDemands(const TraceFile &trace);

/**
 * Parse the simple external text trace format, one request per line
 * ('#' comments and blank lines ignored):
 *
 *     R <addr> [<size> [<delta_ns>]]
 *     W <addr> [<size> [<delta_ns>]]
 *
 * addr accepts 0x-hex or decimal; size defaults to one line (64 B);
 * delta_ns (fractional ok) defaults to 0. Returns false with @p error
 * set on malformed input.
 */
bool parseTextTrace(const std::string &path,
                    std::vector<ReplayRecord> &out, std::string &error);

} // namespace tsim

#endif // TSIM_TRACE_TDTZ_HH
