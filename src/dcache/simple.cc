#include "dcache/simple.hh"

namespace tsim
{

IdealCtrl::IdealCtrl(EventQueue &eq, std::string name,
                     const DramCacheConfig &cfg, MainMemory &mm)
    : DramCacheCtrl(eq, std::move(name), cfg, mm, ChannelConfig{})
{
}

void
IdealCtrl::startAccess(const TxnPtr &txn)
{
    // The ideal cache knows hit/miss and metadata instantly.
    resolveTags(txn, curTick());
    if (txn->pkt.cmd == MemCmd::Read)
        startRead(txn);
    else
        startWrite(txn);
}

void
IdealCtrl::startRead(const TxnPtr &txn)
{
    const Addr addr = txn->pkt.addr;
    if (txn->tr.hit) {
        ChanReq req;
        req.id = nextChanId();
        req.addr = addr;
        req.op = ChanOp::Read;
        req.isDemandRead = true;
        req.onDataDone = [this, txn = txn](Tick t) {
            accountCache(lineBytes, 0, 0);
            finish(txn, t);
        };
        enqueueChan(std::move(req), false);
        return;
    }

    // Read miss: the backing-store fetch starts immediately; a dirty
    // victim is read out off the critical path.
    const bool dirty_victim = txn->tr.valid && txn->tr.dirty;
    if (dirty_victim) {
        ChanReq v;
        v.id = nextChanId();
        v.addr = txn->tr.victimAddr;
        v.op = ChanOp::Read;
        v.onDataDone = [this, txn = txn](Tick) {
            accountCache(0, lineBytes, 0);
            mmWrite(txn->tr.victimAddr);
            txn->victimDone = true;
            maybeFill(txn);
        };
        enqueueChan(std::move(v), false);
    } else {
        txn->victimDone = true;
    }
    txn->mmStarted = true;
    mmRead(addr, [this, txn = txn](Tick t) {
        txn->mmDataAt = t;
        respond(txn, t);
        maybeFill(txn);
    });
}

void
IdealCtrl::startWrite(const TxnPtr &txn)
{
    const Addr addr = txn->pkt.addr;
    const bool dirty_victim =
        !txn->tr.hit && txn->tr.valid && txn->tr.dirty;
    if (dirty_victim) {
        // The victim must leave the data mats before the new data
        // overwrites it.
        ChanReq v;
        v.id = nextChanId();
        v.addr = txn->tr.victimAddr;
        v.op = ChanOp::Read;
        v.onDataDone = [this, txn = txn](Tick t) {
            accountCache(0, lineBytes, 0);
            mmWrite(txn->tr.victimAddr);
            issueDataWrite(txn->pkt.addr);
            finish(txn, t);
        };
        enqueueChan(std::move(v), false);
        return;
    }
    issueDataWrite(addr);
    _eq.scheduleIn(_cfg.ctrlLatency,
                   [this, txn = txn] { finish(txn, curTick()); });
}

void
IdealCtrl::issueDataWrite(Addr addr)
{
    addPendingWrite(addr);
    ChanReq w;
    w.id = nextChanId();
    w.addr = addr;
    w.op = ChanOp::Write;
    w.onDataDone = [this, addr](Tick) { removePendingWrite(addr); };
    accountCache(lineBytes, 0, 0);
    enqueueChan(std::move(w), true);
}

void
IdealCtrl::maybeFill(const TxnPtr &txn)
{
    if (txn->fillIssued || txn->mmDataAt == 0 || !txn->victimDone)
        return;
    txn->fillIssued = true;
    doFill(txn->pkt.addr);
    release(txn);
}

namespace
{

/** NoCache never touches its cache channels; silence their refresh. */
DramCacheConfig
quiesced(DramCacheConfig cfg)
{
    cfg.refreshEnabled = false;
    return cfg;
}

} // namespace

NoCacheCtrl::NoCacheCtrl(EventQueue &eq, std::string name,
                         const DramCacheConfig &cfg, MainMemory &mm)
    : DramCacheCtrl(eq, std::move(name), quiesced(cfg), mm,
                    ChannelConfig{})
{
}

void
NoCacheCtrl::startAccess(const TxnPtr &txn)
{
    if (txn->pkt.cmd == MemCmd::Read) {
        mmRead(txn->pkt.addr,
               [this, txn = txn](Tick t) { respond(txn, t); });
    } else {
        mmWrite(txn->pkt.addr);
        _eq.scheduleIn(_cfg.ctrlLatency,
                       [this, txn = txn] { respond(txn, curTick()); });
    }
}

} // namespace tsim
