#include "dcache/dram_cache.hh"

#include <cmath>

#include "dram/shard_relay.hh"

namespace tsim
{

const char *
designName(Design d)
{
    switch (d) {
      case Design::CascadeLake: return "CascadeLake";
      case Design::Alloy: return "Alloy";
      case Design::Bear: return "BEAR";
      case Design::Ndc: return "NDC";
      case Design::Tdram: return "TDRAM";
      case Design::TdramNoProbe: return "TDRAM-noprobe";
      case Design::Ideal: return "Ideal";
      case Design::NoCache: return "NoCache";
      case Design::TicToc: return "TicToc";
      case Design::Banshee: return "Banshee";
      default: return "unknown";
    }
}

DramCacheCtrl::DramCacheCtrl(EventQueue &eq, std::string name,
                             const DramCacheConfig &cfg, MainMemory &mm,
                             ChannelConfig chan_cfg)
    : SimObject(eq, std::move(name)), _cfg(cfg),
      _tags(cfg.capacityBytes, cfg.ways),
      _map(cfg.capacityBytes, cfg.channels, cfg.banks, cfg.rowBytes),
      _mm(mm)
{
    chan_cfg.timing = cfg.timing;
    chan_cfg.banks = cfg.banks;
    chan_cfg.rowBytes = cfg.rowBytes;
    chan_cfg.readQCap = cfg.readQCap;
    chan_cfg.writeQCap = cfg.writeQCap;
    chan_cfg.writeHigh = cfg.writeQCap * 3 / 4;
    chan_cfg.writeLow = cfg.writeQCap / 4;
    chan_cfg.flushEntries = cfg.flushEntries;
    chan_cfg.refreshEnabled = cfg.refreshEnabled;
    chan_cfg.pagePolicy = cfg.pagePolicy;
    chan_cfg.pageBytes = cfg.pageBytes;
    _burstBytes = static_cast<unsigned>(
        lineBytes * cfg.timing.burstScale + 0.5);

    panic_if(!cfg.channelQueues.empty() &&
                 (cfg.channelQueues.size() != cfg.channels ||
                  cfg.channelOutboxes.size() != cfg.channels),
             "sharded mode needs one queue and one outbox per channel");
    _outboxes = cfg.channelOutboxes;

    for (unsigned c = 0; c < cfg.channels; ++c) {
        // Sharded mode: the channel runs on its own per-shard queue;
        // its tag peeks stay direct (side-effect free, and the tags
        // only change while channels are quiescent), but completion
        // hooks must relay through the shard outbox.
        EventQueue &ceq =
            cfg.channelQueues.empty() ? eq : *cfg.channelQueues[c];
        auto ch = std::make_unique<DramChannel>(
            ceq, this->name() + ".ch" + std::to_string(c), chan_cfg,
            _map);
        if (chan_cfg.inDramTags) {
            ch->peekTags = [this](Addr a) { return _tags.peek(a); };
            ch->onFlushArrive = [this](Addr victim, Tick) {
                // A drained dirty victim becomes a main-memory
                // writeback; the transfer itself is maintenance
                // traffic on the cache DQ bus.
                accountCache(0, lineBytes, 0);
                mmWrite(victim);
            };
            if (!_outboxes.empty()) {
                ch->onFlushArrive = relayWrapFlush(
                    std::move(ch->onFlushArrive), *_outboxes[c]);
            }
        }
        _chans.push_back(std::move(ch));
    }
}

DramCacheCtrl::~DramCacheCtrl()
{
    // The intrusive MSHR FIFOs own one reference per linked Txn;
    // release them so mid-flight teardown (unit tests) doesn't leak
    // pool slots.
    _setQueues.forEach([](std::uint64_t, SetFifo &q) {
        Txn *t = q.head;
        while (t) {
            Txn *next = t->setNext;
            TxnPtr::adopt(t);
            t = next;
        }
        q.head = q.tail = nullptr;
    });
}

bool
DramCacheCtrl::canAccept(const MemPacket &pkt) const
{
    if (!usesMshr())
        return true;
    if (_waiting >= _cfg.conflictBufEntries)
        return false;
    return initialOpAdmissible(pkt);
}

bool
DramCacheCtrl::initialOpAdmissible(const MemPacket &pkt) const
{
    const unsigned c = _map.decode(pkt.addr).channel;
    if (pkt.cmd == MemCmd::Read)
        return _chans[c]->canAcceptRead();
    return _chans[c]->canAcceptWrite();
}

void
DramCacheCtrl::access(MemPacket pkt, RespCallback cb)
{
    pkt.addr = lineAlign(pkt.addr);
    pkt.created = curTick();
    emit(*this, DemandStartEv{
        .tick = pkt.created, .addr = pkt.addr, .bank = traceBankNone,
        .aux = 0, .extra = pkt.cmd == MemCmd::Write ? 1u : 0u});

    TxnPtr txn = _txnPool.alloc();
    txn->pkt = pkt;
    txn->cb = std::move(cb);
    ++_inFlight;

    if (!usesMshr()) {
        txn->pkt.tagIssued = curTick();
        startAccess(txn);
        return;
    }

    const std::uint64_t set = _tags.setIndex(pkt.addr);
    SetFifo &q = _setQueues[set];
    const bool was_empty = q.head == nullptr;
    Txn *raw = TxnPtr(txn).detach();  // the FIFO's own reference
    raw->setNext = nullptr;
    if (q.tail)
        q.tail->setNext = raw;
    else
        q.head = raw;
    q.tail = raw;
    if (was_empty) {
        beginTxn(txn);
    } else {
        ++_waiting;
        emit(*this, ConflictQueuedEv{
            .occupancy = static_cast<double>(_waiting)});
    }
}

void
DramCacheCtrl::warmAccess(Addr addr, bool is_write)
{
    addr = lineAlign(addr);
    const TagArray::Probe p = _tags.probe(addr);
    if (is_write) {
        if (p.result.hit)
            _tags.markDirty(p);
        else
            _tags.install(addr, true, p);
    } else {
        if (p.result.hit)
            _tags.touch(p);
        else
            _tags.install(addr, false, p);
    }
}

void
DramCacheCtrl::beginTxn(const TxnPtr &txn)
{
    if (tryFastPath(txn))
        return;
    txn->pkt.tagIssued = curTick();
    startAccess(txn);
}

bool
DramCacheCtrl::tryFastPath(const TxnPtr &txn)
{
    const Addr addr = txn->pkt.addr;
    const bool is_read = txn->pkt.cmd == MemCmd::Read;

    // Reads matching a pending (queued) cache write are served from
    // the controller's write buffer, like gem5's DRAM controller.
    if (is_read && isPendingWrite(addr)) {
        ++fwdFromWriteBuf;
        txn->tagResolved = true;
        txn->pkt.tagDone = curTick();
        const AccessOutcome o = AccessOutcome::ReadHitClean;
        txn->pkt.outcome = o;
        ++outcomes[static_cast<unsigned>(o)];
        _tags.touch(addr);
        const Tick done = curTick() + _cfg.ctrlLatency;
        _eq.schedule(done, [this, txn = txn, done] { finish(txn, done); });
        return true;
    }

    // Reads matching a flush-buffer entry are served from the buffer
    // (§III-D2): the controller has global knowledge of its contents.
    if (is_read && channelFor(addr).flushContains(addr)) {
        ++servedFromFlush;
        txn->tagResolved = true;
        txn->pkt.tagDone = curTick();
        const AccessOutcome o = AccessOutcome::ReadMissClean;
        txn->pkt.outcome = o;
        ++outcomes[static_cast<unsigned>(o)];
        const Tick done = curTick() + _cfg.ctrlLatency;
        _eq.schedule(done, [this, txn = txn, done] { finish(txn, done); });
        return true;
    }

    // Writes matching a flush-buffer entry supersede the buffered
    // (older) dirty data.
    if (!is_read)
        channelFor(addr).flushRemove(addr);
    return false;
}

void
DramCacheCtrl::resolveTags(const TxnPtr &txn, Tick when,
                           bool sample_latency)
{
    if (txn->tagResolved)
        return;
    txn->tagResolved = true;

    const Addr addr = txn->pkt.addr;
    const bool is_read = txn->pkt.cmd == MemCmd::Read;
    const TagArray::Probe probe = _tags.probe(addr);
    const TagResult &tr = probe.result;
    txn->tr = tr;

    AccessOutcome o;
    if (tr.hit) {
        o = is_read
            ? (tr.dirty ? AccessOutcome::ReadHitDirty
                        : AccessOutcome::ReadHitClean)
            : (tr.dirty ? AccessOutcome::WriteHitDirty
                        : AccessOutcome::WriteHitClean);
    } else if (!tr.valid) {
        o = is_read ? AccessOutcome::ReadMissInvalid
                    : AccessOutcome::WriteMissInvalid;
    } else {
        o = is_read
            ? (tr.dirty ? AccessOutcome::ReadMissDirty
                        : AccessOutcome::ReadMissClean)
            : (tr.dirty ? AccessOutcome::WriteMissDirty
                        : AccessOutcome::WriteMissClean);
    }
    txn->pkt.outcome = o;
    ++outcomes[static_cast<unsigned>(o)];

    // Functional transition. Read misses install at fill time; write
    // demands allocate immediately (insert-on-miss, write-allocate).
    if (is_read) {
        if (tr.hit) {
            _tags.touch(probe);
            if (!_prefetched.empty() && _prefetched.erase(addr))
                ++prefetchUseful;
        } else if (_cfg.prefetchDegree > 0) {
            maybePrefetch(addr);
        }
    } else {
        if (tr.hit)
            _tags.markDirty(probe);
        else
            _tags.install(addr, true, probe);
    }

    txn->pkt.tagDone = when;
    // Fig 9's tag-check latency is the latency-critical read-side
    // metric (it bounds the LLC miss penalty); write-side checks
    // influence it only through the queue contention they create.
    if (sample_latency && is_read) {
        emit(*this, TagResolvedEv{
            .latencyNs = ticksToNs(when - txn->pkt.tagIssued)});
    }
}

void
DramCacheCtrl::respond(const TxnPtr &txn, Tick when)
{
    if (txn->finished)
        return;
    txn->finished = true;
    panic_if(_inFlight == 0, "demand response without an open demand");
    --_inFlight;
    txn->pkt.completed = when;
    emit(*this, DemandDoneEv{
        .tick = when, .addr = txn->pkt.addr, .bank = traceBankNone,
        .aux = when - txn->pkt.created,
        .extra = static_cast<std::uint32_t>(txn->pkt.outcome),
        .isRead = txn->pkt.cmd == MemCmd::Read,
        .latencyNs = ticksToNs(when - txn->pkt.created)});
    if (txn->cb)
        txn->cb(txn->pkt);
}

void
DramCacheCtrl::release(const TxnPtr &txn)
{
    if (!usesMshr())
        return;
    const std::uint64_t set = _tags.setIndex(txn->pkt.addr);
    SetFifo *q = _setQueues.find(set);
    panic_if(!q || q->head != txn.get(),
             "MSHR bookkeeping out of sync");
    Txn *head = q->head;
    q->head = head->setNext;
    head->setNext = nullptr;
    if (!q->head)
        q->tail = nullptr;
    // The FIFO's reference to the departing head dies with this scope.
    const TxnPtr departing = TxnPtr::adopt(head);
    if (!q->head) {
        _setQueues.erase(set);
    } else {
        --_waiting;
        const TxnPtr next = TxnPtr::share(q->head);
        beginTxn(next);
    }
}

void
DramCacheCtrl::finish(const TxnPtr &txn, Tick when)
{
    panic_if(txn->finished, "double finish of packet %llu",
             (unsigned long long)txn->pkt.id);
    respond(txn, when);
    release(txn);
}

void
DramCacheCtrl::enqueueChan(ChanReq req, bool is_write)
{
    DramChannel &ch = channelFor(req.addr);
    const bool space =
        is_write ? ch.canAcceptWrite() : ch.canAcceptRead();
    if (space) {
        // Wrap at the final hand-off only, so the queue-full retry
        // below never wraps a request twice.
        if (!_outboxes.empty())
            relayWrapReq(req, *_outboxes[chanIdx(req.addr)]);
        ch.enqueue(std::move(req));
        return;
    }
    // Queue full: retry shortly. The channel drains continuously, so
    // this terminates; the retry interval is one burst.
    _eq.scheduleIn(_cfg.timing.tBURST,
                   [this, req = std::move(req), is_write]() mutable {
                       enqueueChan(std::move(req), is_write);
                   });
}

void
DramCacheCtrl::doFill(Addr addr)
{
    _tags.install(addr, false);
    addPendingWrite(addr);
    ChanReq req;
    req.id = nextChanId();
    req.addr = addr;
    req.op = fillOp();
    req.onDataDone = [this, addr](Tick) { removePendingWrite(addr); };
    // The fill transfer is maintenance traffic; TAD designs move the
    // extra tag bytes as discarded padding.
    accountCache(0, lineBytes, burstBytes() - lineBytes);
    enqueueChan(std::move(req), true);
}

void
DramCacheCtrl::maybePrefetch(Addr addr)
{
    // Simple next-N-line prefetcher (§V-D): fetched lines fill the
    // cache like demand misses but never answer the LLC. Prefetches
    // skip busy sets (no MSHR is allocated for them) and lines whose
    // install would evict dirty data (that needs a data read first).
    for (unsigned i = 1; i <= _cfg.prefetchDegree; ++i) {
        const Addr p = addr + static_cast<Addr>(i) * lineBytes;
        if (_prefetched.contains(p) || isPendingWrite(p))
            continue;
        const TagResult tr = _tags.peek(p);
        if (tr.hit || (tr.valid && tr.dirty))
            continue;
        if (_setQueues.contains(_tags.setIndex(p)))
            continue;
        _prefetched.insert(p);
        ++prefetchIssued;
        mmRead(p, [this, p](Tick) {
            // Re-validate: a demand may have raced us here.
            if (_setQueues.contains(_tags.setIndex(p))) {
                _prefetched.erase(p);
                return;
            }
            const TagResult now = _tags.peek(p);
            if (now.hit || (now.valid && now.dirty)) {
                _prefetched.erase(p);
                return;
            }
            doFill(p);
        });
    }
}

void
DramCacheCtrl::removePendingWrite(Addr addr)
{
    unsigned *n = _pendingWrites.find(addr);
    if (n && --*n == 0)
        _pendingWrites.erase(addr);
}

void
DramCacheCtrl::mmRead(Addr addr, MmReadCb cb)
{
    _mm.read(addr, std::move(cb));
}

void
DramCacheCtrl::mmWrite(Addr addr)
{
    _mm.write(addr);
}

double
DramCacheCtrl::missRatio() const
{
    std::uint64_t miss = 0, total = 0;
    for (unsigned i = 0;
         i < static_cast<unsigned>(AccessOutcome::NumOutcomes); ++i) {
        const auto o = static_cast<AccessOutcome>(i);
        const auto n = static_cast<std::uint64_t>(outcomes[i].value());
        total += n;
        if (!outcomeIsHit(o))
            miss += n;
    }
    return total ? static_cast<double>(miss) / total : 0.0;
}

double
DramCacheCtrl::bloatFactor() const
{
    const double useful = bytesDemandServing.value();
    const double total = useful + bytesMaintenance.value() +
                         bytesDiscarded.value();
    return useful > 0 ? total / useful : 1.0;
}

double
DramCacheCtrl::unusefulFraction() const
{
    const double total = bytesDemandServing.value() +
                         bytesMaintenance.value() +
                         bytesDiscarded.value();
    return total > 0 ? bytesDiscarded.value() / total : 0.0;
}

double
DramCacheCtrl::meanReadQueueDelayNs() const
{
    double sum = 0;
    std::uint64_t count = 0;
    for (const auto &ch : _chans) {
        sum += ch->readQueueDelay.sum();
        count += ch->readQueueDelay.count();
    }
    return count ? sum / static_cast<double>(count) : 0.0;
}

void
DramCacheCtrl::dumpDebug(std::FILE *f) const
{
    std::fprintf(f, "%s: waiting=%u activeSets=%zu pendingWr=%zu\n",
                 name().c_str(), _waiting, _setQueues.size(),
                 _pendingWrites.size());
    std::size_t shown = 0;
    _setQueues.forEach([&](std::uint64_t set, const SetFifo &q) {
        if (shown++ >= 8)
            return;
        std::size_t depth = 0;
        for (const Txn *n = q.head; n; n = n->setNext)
            ++depth;
        const Txn *t = q.head;
        std::fprintf(f,
                     "  set %llu: depth=%zu front{id=%llu addr=%llx "
                     "%s resolved=%d finished=%d mmStarted=%d "
                     "mmDataAt=%llu victimDone=%d fillIssued=%d}\n",
                     (unsigned long long)set, depth,
                     (unsigned long long)t->pkt.id,
                     (unsigned long long)t->pkt.addr,
                     t->pkt.cmd == MemCmd::Read ? "R" : "W",
                     t->tagResolved, t->finished, t->mmStarted,
                     (unsigned long long)t->mmDataAt, t->victimDone,
                     t->fillIssued);
    });
    for (const auto &ch : _chans) {
        std::fprintf(f, "  %s: readQ=%zu writeQ=%zu flush=%u\n",
                     ch->name().c_str(), ch->readQSize(),
                     ch->writeQSize(), ch->flushSize());
    }
}

void
DramCacheCtrl::regStats(StatGroup &g) const
{
    g.addScalar("demand_reads", &demandReads);
    g.addScalar("demand_writes", &demandWrites);
    for (unsigned i = 0;
         i < static_cast<unsigned>(AccessOutcome::NumOutcomes); ++i) {
        g.addScalar(std::string("outcome.") +
                        outcomeName(static_cast<AccessOutcome>(i)),
                    &outcomes[i]);
    }
    g.addHistogram("tag_check_latency_ns", &tagCheckLatency,
                   "Fig 9 metric");
    g.addHistogram("read_latency_ns", &readLatency);
    g.addScalar("fwd_from_write_buf", &fwdFromWriteBuf);
    g.addScalar("served_from_flush", &servedFromFlush);
    g.addScalar("predicted_miss", &predictedMiss);
    g.addScalar("predictor_wrong_fetch", &predictorWrongFetch);
    g.addScalar("prefetch_issued", &prefetchIssued);
    g.addScalar("prefetch_useful", &prefetchUseful);
    g.addScalar("bytes_demand_serving", &bytesDemandServing);
    g.addScalar("bytes_maintenance", &bytesMaintenance);
    g.addScalar("bytes_discarded", &bytesDiscarded);
    g.addHistogram("conflict_buf_occupancy", &_conflictOcc);
    for (const auto &ch : _chans)
        ch->regStats(g);
}

} // namespace tsim
