/**
 * @file
 * Conventional tags-with-data DRAM-cache designs (§II-A):
 *
 *  - CascadeLake: Intel's commercial design; tags live in the ECC
 *    bits of the data row, so *every* demand (read and write) first
 *    issues a DRAM read through the read queue to fetch tag+data.
 *  - Alloy: same flow but streams 80 B tag-and-data (TAD) units.
 *  - BEAR: Alloy plus a DRAM-cache-presence hint that lets LLC
 *    writebacks that hit skip the tag-check read entirely.
 *
 * CascadeLake optionally carries the MAP-I predictor (§V-D): reads
 * predicted to miss start the backing-store fetch in parallel with
 * the tag check (writes always need the tag read for dirty safety).
 */

#ifndef TSIM_DCACHE_CONVENTIONAL_HH
#define TSIM_DCACHE_CONVENTIONAL_HH

#include "dcache/dram_cache.hh"
#include "dcache/predictor.hh"

namespace tsim
{

/** Intel Cascade Lake-style tags-in-ECC DRAM cache. */
class CascadeLakeCtrl : public DramCacheCtrl
{
  public:
    CascadeLakeCtrl(EventQueue &eq, std::string name,
                    const DramCacheConfig &cfg, MainMemory &mm);

    Design design() const override { return Design::CascadeLake; }

    const MapIPredictor &predictor() const { return _pred; }

    bool hasPredictor() const override { return _cfg.predictor; }

    double
    predictorAccuracy() const override
    {
        return _pred.accuracy();
    }

  protected:
    void startAccess(const TxnPtr &txn) override;
    bool initialOpAdmissible(const MemPacket &pkt) const override;

    /** Tag+data read returned; run the design's decision tree. */
    virtual void tagDataArrived(const TxnPtr &txn, Tick t);

    /** Backing-store data for a read miss arrived. */
    void mmDataArrived(const TxnPtr &txn, Tick t);

    /** Enqueue the demand-write data after a write's tag check. */
    void issueDemandWrite(const TxnPtr &txn);

    MapIPredictor _pred;
};

/** Alloy cache: CascadeLake flow with 80 B TAD bursts. */
class AlloyCtrl : public CascadeLakeCtrl
{
  public:
    using CascadeLakeCtrl::CascadeLakeCtrl;
    Design design() const override { return Design::Alloy; }
};

/** BEAR: Alloy + write-hit tag-check bypass via LLC presence bits. */
class BearCtrl : public AlloyCtrl
{
  public:
    using AlloyCtrl::AlloyCtrl;
    Design design() const override { return Design::Bear; }

  protected:
    void startAccess(const TxnPtr &txn) override;
    bool initialOpAdmissible(const MemPacket &pkt) const override;
};

} // namespace tsim

#endif // TSIM_DCACHE_CONVENTIONAL_HH
