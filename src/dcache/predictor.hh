/**
 * @file
 * MAP-I hit/miss predictor (Qureshi & Loh, Alloy cache [58]).
 *
 * A Memory Access Predictor indexed by the requesting Instruction
 * address: one table of saturating counters, incremented on a cache
 * hit and decremented on a miss; the MSB gives the prediction. Used
 * for §V-D: a predicted read miss lets the controller start the
 * main-memory fetch in parallel with the tag check.
 */

#ifndef TSIM_DCACHE_PREDICTOR_HH
#define TSIM_DCACHE_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "mem/types.hh"
#include "stats/stats.hh"

namespace tsim
{

/** Instruction-indexed memory access predictor. */
class MapIPredictor
{
  public:
    /**
     * @param entries Table size (power of two).
     * @param bits    Counter width (3 in the original proposal).
     */
    explicit MapIPredictor(unsigned entries = 256, unsigned bits = 3)
        : _mask(entries - 1), _max((1u << bits) - 1),
          _table(entries, _max)  // optimistic: predict hit initially
    {}

    /** Predict whether the access at @p pc will hit. */
    bool
    predictHit(Addr pc) const
    {
        return _table[index(pc)] > _max / 2;
    }

    /** Train with the actual outcome. */
    void
    update(Addr pc, bool hit)
    {
        auto &ctr = _table[index(pc)];
        if (hit) {
            if (ctr < _max)
                ++ctr;
        } else {
            if (ctr > 0)
                --ctr;
        }
        ++updates;
    }

    /** Record a resolved prediction for accuracy stats. */
    void
    recordOutcome(bool predicted_hit, bool actual_hit)
    {
        predictions.sample(predicted_hit == actual_hit ? 1.0 : 0.0);
    }

    double accuracy() const { return predictions.mean(); }

    Scalar updates;
    Average predictions;   ///< mean = prediction accuracy

  private:
    std::size_t index(Addr pc) const
    {
        // Mix the PC so nearby instructions spread over the table.
        std::uint64_t x = pc >> 2;
        x ^= x >> 17;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 33;
        return static_cast<std::size_t>(x) & _mask;
    }

    std::size_t _mask;
    std::uint8_t _max;
    std::vector<std::uint8_t> _table;
};

} // namespace tsim

#endif // TSIM_DCACHE_PREDICTOR_HH
