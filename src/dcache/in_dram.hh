/**
 * @file
 * In-DRAM-tag designs: NDC [60] and TDRAM (this paper).
 *
 * Both access separate on-die tag banks in lockstep with the data
 * banks via ActRd/ActWr, compare tags inside the DRAM, and suppress
 * the data transfer on read-miss-clean. They differ in *when* the
 * controller learns the result and how victims drain:
 *
 *  - NDC ties hit/miss to the column operation (result arrives with
 *    the data slot), cannot probe early, and drains its victim
 *    buffer only through explicit RES commands that bubble the DQ
 *    bus.
 *  - TDRAM returns the result on the dedicated HM bus at
 *    tRCD_TAG + tHM = 15 ns, probes queued reads in idle CA/tag-bank
 *    slots, and unloads its flush buffer opportunistically in unused
 *    read-miss-clean DQ slots and refresh windows.
 */

#ifndef TSIM_DCACHE_IN_DRAM_HH
#define TSIM_DCACHE_IN_DRAM_HH

#include "dcache/dram_cache.hh"

namespace tsim
{

/** Shared controller flow for NDC and TDRAM. */
class InDramTagCtrl : public DramCacheCtrl
{
  public:
    InDramTagCtrl(EventQueue &eq, std::string name,
                  const DramCacheConfig &cfg, MainMemory &mm,
                  ChannelConfig chan_cfg);

  protected:
    void startAccess(const TxnPtr &txn) override;
    ChanOp fillOp() const override { return ChanOp::ActWr; }

    /** HM-bus (or column-time) tag result for a read demand. */
    void readTagResult(const TxnPtr &txn, Tick t, const TagResult &tr);

    /** Demand-read data (hit data or dirty victim) fully received. */
    void readDataDone(const TxnPtr &txn, Tick t);

    /** Backing-store data arrived for a read miss. */
    void mmDataArrived(const TxnPtr &txn, Tick t);

    /** Fill once both the victim transfer and mm data are in. */
    void maybeFill(const TxnPtr &txn);
};

/** Native DRAM Cache (ISCA'24). */
class NdcCtrl : public InDramTagCtrl
{
  public:
    NdcCtrl(EventQueue &eq, std::string name,
            const DramCacheConfig &cfg, MainMemory &mm);
    Design design() const override { return Design::Ndc; }
};

/** TDRAM (this paper); @p probing false gives the §V ablation. */
class TdramCtrl : public InDramTagCtrl
{
  public:
    TdramCtrl(EventQueue &eq, std::string name,
              const DramCacheConfig &cfg, MainMemory &mm,
              bool probing = true);
    Design design() const override
    {
        return _probing ? Design::Tdram : Design::TdramNoProbe;
    }

  private:
    bool _probing;
};

} // namespace tsim

#endif // TSIM_DCACHE_IN_DRAM_HH
