/**
 * @file
 * Page-grain remap table for Banshee-style DRAM caches (PAPERS.md).
 *
 * Banshee tracks DRAM-cache contents at page granularity through the
 * TLBs and page tables; the timing model condenses that machinery
 * into one controller-side SimObject: a set-associative table of
 * mapped pages with per-page access-frequency counters. Replacement
 * is frequency-based and bandwidth-aware — the controller only
 * replaces a mapped page once a candidate's frequency exceeds the
 * victim's by a threshold, so cache bandwidth is not wasted churning
 * pages of equal worth.
 *
 * The table is functional state (like TagArray): it consumes no
 * simulated time. Set geometry deliberately parallels the line
 * TagArray — with pageBytes/lineBytes lines per page and matching
 * associativity, the pages of one remap set own exactly the line
 * sets their lines map to, so a page eviction frees exactly the tag
 * ways the incoming page's lines need.
 */

#ifndef TSIM_DCACHE_REMAP_TABLE_HH
#define TSIM_DCACHE_REMAP_TABLE_HH

#include <cstdint>
#include <vector>

#include "mem/types.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "stats/stats.hh"

namespace tsim
{

/** Set-associative page remap table with frequency-based LRU. */
class RemapTable : public SimObject
{
  public:
    /** Outcome of installing a page (who, if anyone, was evicted). */
    struct InstallResult
    {
        bool victimValid = false;
        Addr victimPage = 0;
    };

    /**
     * @param capacity_bytes Cache data capacity (pages = capacity /
     *                       pageBytes).
     * @param page_bytes     Remap granularity.
     * @param ways           Associativity; must match the line
     *                       TagArray's so evictions free exactly the
     *                       tag ways the fill needs.
     */
    RemapTable(EventQueue &eq, std::string name,
               std::uint64_t capacity_bytes, std::uint64_t page_bytes,
               unsigned ways)
        : SimObject(eq, std::move(name)), _pageBytes(page_bytes),
          _ways(ways)
    {
        fatal_if(ways == 0, "associativity must be >= 1");
        const std::uint64_t pages = capacity_bytes / page_bytes;
        fatal_if(pages == 0 || pages % ways != 0,
                 "capacity must be a multiple of ways*pageBytes");
        _sets = pages / ways;
        fatal_if(_sets & (_sets - 1),
                 "remap set count must be a power of two");
        _entries.resize(pages);
    }

    std::uint64_t numSets() const { return _sets; }
    unsigned ways() const { return _ways; }
    std::uint64_t pageBytes() const { return _pageBytes; }

    /** True if @p page (page-aligned) is currently mapped. */
    bool contains(Addr page) const { return find(page) != nullptr; }

    /** Count one access to a mapped page (frequency + recency). */
    void
    touch(Addr page)
    {
        if (Entry *e = findMutable(page)) {
            ++e->freq;
            e->lru = ++_clock;
        }
    }

    /**
     * Frequency of the page an install of @p page would evict right
     * now (0 when an invalid way is available). The bandwidth-aware
     * replacement gate compares candidate frequencies against this.
     */
    std::uint64_t
    victimFreq(Addr page) const
    {
        const Entry *base = &_entries[setIndex(page) * _ways];
        const Entry *victim = &base[0];
        for (unsigned w = 0; w < _ways; ++w) {
            const Entry &e = base[w];
            if (!e.valid)
                return 0;
            if (e.lru < victim->lru)
                victim = &e;
        }
        return victim->freq;
    }

    /**
     * Map @p page, evicting the LRU valid way if the set is full.
     * @p initial_freq seeds the new entry's counter (the candidate
     * frequency that won the replacement race). @p silent skips the
     * install/evict statistics (functional warmup only).
     */
    InstallResult
    install(Addr page, std::uint64_t initial_freq, bool silent = false)
    {
        const std::uint64_t set = setIndex(page);
        Entry *base = &_entries[set * _ways];
        Entry *victim = &base[0];
        for (unsigned w = 0; w < _ways; ++w) {
            Entry &e = base[w];
            if (!e.valid) {
                victim = &e;
                break;
            }
            if (e.lru < victim->lru)
                victim = &e;
        }
        InstallResult r;
        if (victim->valid) {
            r.victimValid = true;
            r.victimPage = rebuildPage(set, victim->tag);
            if (!silent)
                ++evictions;
        }
        victim->valid = true;
        victim->tag = tagOf(page);
        victim->freq = initial_freq;
        victim->lru = ++_clock;
        if (!silent)
            ++installs;
        return r;
    }

    /** Number of mapped pages (tests / occupancy reporting). */
    std::uint64_t
    validCount() const
    {
        std::uint64_t n = 0;
        for (const auto &e : _entries)
            n += e.valid ? 1 : 0;
        return n;
    }

    /** @name Statistics. */
    /// @{
    Scalar installs;   ///< timed-phase page installs
    Scalar evictions;  ///< timed-phase page evictions
    /// @}

    void
    regStats(StatGroup &g) const
    {
        g.addScalar("remap.installs", &installs);
        g.addScalar("remap.evictions", &evictions);
    }

  private:
    struct Entry
    {
        Addr tag = 0;
        std::uint64_t freq = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    std::uint64_t
    setIndex(Addr page) const
    {
        return (page / _pageBytes) & (_sets - 1);
    }

    Addr tagOf(Addr page) const { return (page / _pageBytes) / _sets; }

    Addr
    rebuildPage(std::uint64_t set, Addr tag) const
    {
        return (tag * _sets + set) * _pageBytes;
    }

    const Entry *
    find(Addr page) const
    {
        const Entry *base = &_entries[setIndex(page) * _ways];
        const Addr want = tagOf(page);
        for (unsigned w = 0; w < _ways; ++w) {
            if (base[w].valid && base[w].tag == want)
                return &base[w];
        }
        return nullptr;
    }

    Entry *
    findMutable(Addr page)
    {
        return const_cast<Entry *>(find(page));
    }

    std::uint64_t _pageBytes;
    unsigned _ways;
    std::uint64_t _sets = 0;
    std::uint64_t _clock = 0;
    std::vector<Entry> _entries;
};

} // namespace tsim

#endif // TSIM_DCACHE_REMAP_TABLE_HH
