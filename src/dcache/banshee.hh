/**
 * @file
 * Banshee-style page-grain DRAM cache (PAPERS.md).
 *
 * Banshee manages DRAM-cache contents at page granularity through a
 * TLB/page-table-assisted remap layer (condensed here into the
 * RemapTable SimObject):
 *
 *  - Demands to *mapped* pages hit the cache unconditionally — the
 *    remap lookup is SRAM-side, so the tag check is free and every
 *    cache access moves useful data (no tag-read bloat).
 *  - Demands to *unmapped* pages bypass the cache to main memory
 *    while bumping a candidate frequency counter; once a candidate
 *    out-weighs the would-be victim by a threshold, the controller
 *    remaps the page: dirty victim lines spill to memory, the whole
 *    page streams in from memory, and every channel is notified via
 *    a Remap trace event so the protocol checker can audit the fill
 *    group's lockstep.
 *
 * Fills are serialized (one page in flight) and page-grain: each one
 * issues pageBytes/lineBytes fill writes, tagged with traceFillFlag
 * and a 16-bit fill-group id; victim spills use traceSpillFlag.
 * Replacement is frequency-based and bandwidth-aware — pages of
 * roughly equal worth never churn.
 */

#ifndef TSIM_DCACHE_BANSHEE_HH
#define TSIM_DCACHE_BANSHEE_HH

#include <array>

#include "dcache/dram_cache.hh"
#include "dcache/remap_table.hh"
#include "sim/open_map.hh"

namespace tsim
{

/** Banshee: page-grain remapped cache with bandwidth-aware fills. */
class BansheeCtrl : public DramCacheCtrl
{
  public:
    BansheeCtrl(EventQueue &eq, std::string name,
                const DramCacheConfig &cfg, MainMemory &mm);

    Design design() const override { return Design::Banshee; }

    void warmAccess(Addr addr, bool is_write) override;
    void regStats(StatGroup &g) const override;

    const RemapTable &remapTable() const { return _remap; }

    /** Drained only when no page fill (spills included) is in flight. */
    bool quiescent() const override { return !_fillActive; }

    /** @name Statistics. */
    /// @{
    Scalar pageFills;     ///< timed-phase page fills started
    Scalar spilledLines;  ///< dirty victim lines written back
    Scalar fillsDropped;  ///< fill candidates lost to a full queue
    /// @}

  protected:
    void startAccess(const TxnPtr &txn) override;
    bool initialOpAdmissible(const MemPacket &pkt) const override;

  private:
    /** Candidate must beat the victim's frequency by this margin. */
    static constexpr std::uint64_t kFillThreshold = 2;
    /** Fill candidates parked while another fill is in flight. */
    static constexpr unsigned kMaxPendingFills = 8;

    Addr pageAlign(Addr a) const { return a - a % _cfg.pageBytes; }
    unsigned linesPerPage() const
    {
        return static_cast<unsigned>(_cfg.pageBytes / lineBytes);
    }

    /**
     * Mapped for demand purposes: the page being filled is excluded
     * until its lines are all resident, so demand classification and
     * tag state never disagree mid-fill.
     */
    bool
    mappedForDemand(Addr page) const
    {
        if (_fillActive && page == _fillPage)
            return false;
        return _remap.contains(page);
    }

    /**
     * Classify a bypassed (unmapped) demand: outcome accounting and
     * tag-done bookkeeping like resolveTags, but with no functional
     * tag transition — the line is not being cached.
     */
    void classifyBypass(const TxnPtr &txn, Tick when);

    /** Demand write to a mapped page: cache write + pending entry. */
    void issueCacheWrite(Addr addr);

    /** Bump @p page's candidate counter; maybe kick off its fill. */
    void trackCandidate(Addr page);

    /** True when @p page out-weighs its would-be victim right now. */
    bool
    fillQualifies(Addr page) const
    {
        const std::uint64_t *f = _candFreq.find(page);
        return f && *f >= _remap.victimFreq(page) + kFillThreshold;
    }

    void startFill(Addr page);
    void spillVictim(Addr victim);
    void fillLineArrived(Addr line);
    void fillOpDone();
    void spillOpDone();
    void completeIfDrained();

    RemapTable _remap;
    OpenHashMap<std::uint64_t> _candFreq;  ///< unmapped page → freq

    bool _fillActive = false;
    Addr _fillPage = 0;
    std::uint32_t _fillGroup = 0;
    std::uint32_t _nextGroup = 0;
    unsigned _fillOutstanding = 0;
    unsigned _spillOutstanding = 0;
    std::array<Addr, kMaxPendingFills> _pendingFills{};
    unsigned _pendingCount = 0;
};

} // namespace tsim

#endif // TSIM_DCACHE_BANSHEE_HH
