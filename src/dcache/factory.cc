/**
 * @file
 * Factory assembling the requested DRAM-cache design with the
 * paper's per-design timing (CascadeLake uses 64 B bursts; Alloy and
 * BEAR stream 80 B TAD units; the in-DRAM-tag designs add the tag-
 * bank parameters of Table III).
 */

#include "dcache/banshee.hh"
#include "dcache/conventional.hh"
#include "dcache/dram_cache.hh"
#include "dcache/in_dram.hh"
#include "dcache/simple.hh"
#include "dcache/tictoc.hh"
#include "dram/timing.hh"

namespace tsim
{

std::unique_ptr<DramCacheCtrl>
makeDramCache(EventQueue &eq, Design design, const DramCacheConfig &cfg,
              MainMemory &mm)
{
    DramCacheConfig c = cfg;
    const std::string n = std::string("dcache.") + designName(design);
    switch (design) {
      case Design::CascadeLake:
        c.timing = hbm3CacheTimings();
        return std::make_unique<CascadeLakeCtrl>(eq, n, c, mm);
      case Design::Alloy:
        c.timing = hbm3TadTimings();
        return std::make_unique<AlloyCtrl>(eq, n, c, mm);
      case Design::Bear:
        c.timing = hbm3TadTimings();
        return std::make_unique<BearCtrl>(eq, n, c, mm);
      case Design::Ndc:
        c.timing = hbm3CacheTimings();
        return std::make_unique<NdcCtrl>(eq, n, c, mm);
      case Design::Tdram:
        c.timing = hbm3CacheTimings();
        return std::make_unique<TdramCtrl>(eq, n, c, mm, true);
      case Design::TdramNoProbe:
        c.timing = hbm3CacheTimings();
        return std::make_unique<TdramCtrl>(eq, n, c, mm, false);
      case Design::Ideal:
        c.timing = hbm3CacheTimings();
        return std::make_unique<IdealCtrl>(eq, n, c, mm);
      case Design::NoCache:
        c.timing = hbm3CacheTimings();
        return std::make_unique<NoCacheCtrl>(eq, n, c, mm);
      case Design::TicToc:
        // TicToc keeps the TAD layout (tags travel with the data) but
        // elides the accesses its dirtiness tracking proves useless.
        c.timing = hbm3TadTimings();
        return std::make_unique<TicTocCtrl>(eq, n, c, mm);
      case Design::Banshee:
        // Remap metadata is SRAM-side, so the device streams plain
        // 64 B bursts like CascadeLake.
        c.timing = hbm3CacheTimings();
        return std::make_unique<BansheeCtrl>(eq, n, c, mm);
      default:
        panic("unknown DRAM-cache design");
    }
}

} // namespace tsim
