/**
 * @file
 * DRAM-cache controller framework.
 *
 * DramCacheCtrl is the front-end every evaluated design shares: it
 * owns the functional tag state, serializes same-set transactions
 * through a conflicting-request buffer (Table III: 32 entries),
 * forwards reads that hit pending writes, talks to the per-channel
 * DRAM back-ends and the main memory, and keeps the paper's metrics
 * (access-outcome breakdown, tag-check latency, read-queue delay,
 * useful/maintenance/discarded traffic for bandwidth bloat).
 *
 * Each design (CascadeLake, Alloy, BEAR, NDC, TDRAM, Ideal, NoCache)
 * implements startAccess() with its protocol flow from §II/§III.
 */

#ifndef TSIM_DCACHE_DRAM_CACHE_HH
#define TSIM_DCACHE_DRAM_CACHE_HH

#include <memory>
#include <string>
#include <vector>

#include "dram/channel.hh"
#include "dram/main_memory.hh"
#include "mem/types.hh"
#include "sim/event_queue.hh"
#include "sim/open_map.hh"
#include "sim/slab_pool.hh"
#include "stats/stats.hh"
#include "tdram/tag_array.hh"
#include "trace/trace.hh"

namespace tsim
{

class ShardOutbox;

/** The DRAM-cache designs evaluated in the paper. */
enum class Design : std::uint8_t
{
    CascadeLake,   ///< tags in ECC bits; DRAM read for every tag check
    Alloy,         ///< tag-and-data 80 B bursts [58]
    Bear,          ///< Alloy + write-hit tag-check bypass [28]
    Ndc,           ///< in-DRAM tags tied to the column op [60]
    Tdram,         ///< this paper
    TdramNoProbe,  ///< TDRAM ablation without early tag probing
    Ideal,         ///< zero-latency tags (tags-in-SRAM upper bound)
    NoCache,       ///< main memory only
    TicToc,        ///< dirtiness-tracked probe/fill elision [PAPERS.md]
    Banshee,       ///< page-grain remap + bandwidth-aware replacement
};

const char *designName(Design d);

/** Configuration shared by every DRAM-cache design. */
struct DramCacheConfig
{
    std::uint64_t capacityBytes = 16ULL << 20;
    unsigned ways = 1;             ///< associativity (§V-F)
    unsigned channels = 8;
    unsigned banks = 16;
    std::uint64_t rowBytes = 1024;
    TimingParams timing{};         ///< set by the design factory
    unsigned readQCap = 64;
    unsigned writeQCap = 64;
    unsigned conflictBufEntries = 32;
    unsigned flushEntries = 16;
    /** Row-buffer policy for conventional devices (Table III uses
     *  close-page; Open is an ablation; ActRd/ActWr are inherently
     *  close-page combined commands). */
    PagePolicy pagePolicy = PagePolicy::Close;
    bool predictor = false;        ///< MAP-I on CascadeLake (§V-D)
    unsigned prefetchDegree = 0;   ///< next-line prefetch on read miss
    Tick ctrlLatency = nsToTicks(2); ///< controller fast-path latency
    bool refreshEnabled = true;

    /** Remap granularity for page-grain designs (Banshee). */
    std::uint64_t pageBytes = 4096;

    /**
     * Ablation: disable TDRAM's conditional data response so
     * read-miss-cleans still stream (discarded) data, isolating the
     * contribution of the column-gating mechanism (§III-C3).
     */
    bool tdramConditionalColumn = true;

    /**
     * Sharded mode (DESIGN.md §12): one private EventQueue and one
     * outbox per channel, owned by the System's ShardSim. When set
     * (both must have `channels` entries), each channel runs on its
     * own shard and every completion callback handed to a channel is
     * relay-wrapped to post into the channel's outbox. Empty vectors
     * select the single-queue engine.
     */
    std::vector<EventQueue *> channelQueues;
    std::vector<ShardOutbox *> channelOutboxes;
};

/** Abstract DRAM-cache controller. */
class DramCacheCtrl : public SimObject
{
  public:
    DramCacheCtrl(EventQueue &eq, std::string name,
                  const DramCacheConfig &cfg, MainMemory &mm,
                  ChannelConfig chan_cfg);
    ~DramCacheCtrl() override;

    /** Admission control: false applies backpressure to the LLC. */
    bool canAccept(const MemPacket &pkt) const;

    /** Accept one demand; @p cb fires on completion. */
    void access(MemPacket pkt, RespCallback cb);

    /**
     * Functional-only access for warmup: applies the steady-state
     * tag transition (fill on read miss, write-allocate on write
     * miss) without consuming simulated time or touching stats.
     */
    virtual void warmAccess(Addr addr, bool is_write);

    virtual Design design() const = 0;

    /** True when the design consults a hit/miss predictor (§V-D). */
    virtual bool hasPredictor() const { return false; }

    /** Prediction accuracy when a predictor is configured (§V-D). */
    virtual double predictorAccuracy() const { return 0.0; }

    /** @name Statistics. */
    /// @{
    Scalar demandReads;
    Scalar demandWrites;
    Scalar outcomes[static_cast<unsigned>(AccessOutcome::NumOutcomes)];
    Histogram tagCheckLatency{2.0, 512};  ///< ns (Fig 9)
    Histogram readLatency{4.0, 512};      ///< ns, demand reads
    Scalar fwdFromWriteBuf;      ///< reads served from pending writes
    Scalar servedFromFlush;      ///< reads served from the flush buffer
    Scalar predictedMiss;        ///< MAP-I predicted misses (reads)
    Scalar predictorWrongFetch;  ///< wasted early fetches (pred. miss, hit)
    Scalar prefetchIssued;       ///< next-line prefetches sent to mm
    Scalar prefetchUseful;       ///< prefetched lines later demanded
    Scalar bytesDemandServing;   ///< cache DQ bytes servicing demands
    Scalar bytesMaintenance;     ///< fills, victim writebacks, drains
    Scalar bytesDiscarded;       ///< discarded tag-read data, TAD pad
    /// @}

    std::uint64_t
    outcomeCount(AccessOutcome o) const
    {
        return static_cast<std::uint64_t>(
            outcomes[static_cast<unsigned>(o)].value());
    }

    std::uint64_t demandCount() const
    {
        return static_cast<std::uint64_t>(demandReads.value() +
                                          demandWrites.value());
    }

    /** DRAM-cache miss ratio over all demands. */
    double missRatio() const;

    /** Bandwidth bloat factor: total cache traffic / demand-serving. */
    double bloatFactor() const;

    /** Fraction of cache traffic that served no purpose (Fig 3). */
    double unusefulFraction() const;

    /** Mean read-buffer queueing delay over all channels (Fig 10). */
    double meanReadQueueDelayNs() const;

    /** Mean tag-check latency (Fig 9). */
    double meanTagCheckLatencyNs() const
    {
        return tagCheckLatency.mean();
    }

    virtual void regStats(StatGroup &g) const;

    /** Print controller/channel live state (deadlock debugging). */
    void dumpDebug(std::FILE *f) const;

    /**
     * Optional event-trace sink for controller-level demand events
     * (DESIGN.md §10); null disables. Channel-level command events go
     * to the per-channel DramChannel::traceBuf instead.
     */
    TraceBuffer *traceBuf = nullptr;

    /**
     * Optional inline protocol checker for the demand-pairing rules
     * (DESIGN.md §11); null disables. Channel-level command events go
     * to the per-channel DramChannel::checker instead.
     */
    ProtocolChecker *checker = nullptr;
    unsigned checkChannel = 0;

    DramChannel &channel(unsigned i) { return *_chans[i]; }
    const DramChannel &channel(unsigned i) const { return *_chans[i]; }
    unsigned numChannels() const
    {
        return static_cast<unsigned>(_chans.size());
    }
    const TagArray &tags() const { return _tags; }
    MainMemory &mainMemory() { return _mm; }

    /**
     * Demands accepted but not yet responded to. The run loop keeps
     * stepping past CoreEngine::done() until this reaches zero so
     * fire-and-forget writes still in flight get their responses
     * (and the checker sees every DemandStart paired).
     */
    std::uint64_t inFlightDemands() const { return _inFlight; }

    /**
     * False while design-internal maintenance (e.g. a page-grain
     * fill group) is still in flight. The run loop drains it before
     * stopping so traces never truncate mid-operation.
     */
    virtual bool quiescent() const { return true; }

    /**
     * @name Bus events (src/sim/event_bus.hh, DESIGN.md §13).
     * Controller-level demand events plus stats-only occurrences;
     * channel-level command events live on DramChannel.
     */
    /// @{
    struct DemandStartEv
    {
        static constexpr TraceKind kind = TraceKind::DemandStart;
        Tick tick;
        Addr addr;
        std::uint16_t bank;
        std::uint64_t aux;
        std::uint32_t extra;  ///< 1 = write demand

        void
        stats(DramCacheCtrl &c) const
        {
            if (extra)
                ++c.demandWrites;
            else
                ++c.demandReads;
        }
    };

    struct DemandDoneEv
    {
        static constexpr TraceKind kind = TraceKind::DemandDone;
        Tick tick;
        Addr addr;
        std::uint16_t bank;
        std::uint64_t aux;
        std::uint32_t extra;  ///< AccessOutcome
        bool isRead;
        double latencyNs;

        void
        stats(DramCacheCtrl &c) const
        {
            if (isRead)
                c.readLatency.sample(latencyNs);
        }
    };

    /** Same-set conflict parked behind the MSHR FIFO head. */
    struct ConflictQueuedEv
    {
        static constexpr bool traced = false;
        double occupancy;  ///< waiting demands across all sets

        void
        stats(DramCacheCtrl &c) const
        {
            c._conflictOcc.sample(occupancy);
        }
    };

    /** Read-side tag resolution completed (Fig 9 latency). */
    struct TagResolvedEv
    {
        static constexpr bool traced = false;
        double latencyNs;

        void
        stats(DramCacheCtrl &c) const
        {
            c.tagCheckLatency.sample(latencyNs);
        }
    };
    /// @}

  protected:
    /**
     * One in-flight demand transaction. Slab-pooled with an intrusive
     * refcount (PoolItem) so the controller's hot path allocates
     * nothing; setNext links same-set transactions into the MSHR's
     * intrusive FIFO.
     */
    struct Txn : PoolItem<Txn>
    {
        MemPacket pkt;
        RespCallback cb;
        bool tagResolved = false;
        bool finished = false;
        bool mmStarted = false;
        Tick mmDataAt = 0;      ///< backing-store data arrival (0 = not yet)
        bool victimDone = false; ///< dirty-victim data left the cache
        bool fillIssued = false;
        TagResult tr{};
        std::uint64_t chanReqId = 0;
        Txn *setNext = nullptr;  ///< next queued demand of the same set
    };
    /**
     * Capture into callback lambdas with an init-capture
     * (`txn = txn`), never `[this, txn]`: capturing a
     * `const TxnPtr &` parameter by copy gives the closure a *const*
     * PoolRef member, whose move degrades to the (refcounting) copy
     * constructor and pushes the closure off InlineCallable's
     * noexcept-move inline path onto the heap.
     */
    using TxnPtr = PoolRef<Txn>;

    /** Design-specific protocol flow for one demand. */
    virtual void startAccess(const TxnPtr &txn) = 0;

    /** NoCache bypasses the set-serialized MSHR path. */
    virtual bool usesMshr() const { return true; }

    /**
     * Can the design's *initial* DRAM-cache operation for @p pkt be
     * enqueued right now? Used by canAccept.
     */
    virtual bool initialOpAdmissible(const MemPacket &pkt) const;

    /** @name Helpers for the design subclasses. */
    /// @{
    unsigned chanIdx(Addr addr) const { return _map.decode(addr).channel; }
    DramChannel &channelFor(Addr addr) { return *_chans[chanIdx(addr)]; }

    /**
     * Classify + apply the functional tag transition for @p txn at
     * tick @p when (the moment the controller learns the tag result).
     * Idempotent: later calls (e.g. main HM after a probe) no-op.
     *
     * @param sample_latency False when no tag check was actually
     *        performed (e.g. BEAR's write-hit bypass), so the sample
     *        must not enter the Fig 9 tag-check-latency statistic.
     */
    void resolveTags(const TxnPtr &txn, Tick when,
                     bool sample_latency = true);

    /**
     * Send the response for @p txn at @p when (latency observed by
     * the requester). Idempotent; does not release the MSHR.
     */
    void respond(const TxnPtr &txn, Tick when);

    /**
     * Release @p txn's MSHR entry, allowing queued same-set demands
     * to proceed. Call only after every cache-state-affecting
     * operation of the transaction has been issued.
     */
    void release(const TxnPtr &txn);

    /** respond() + release() for flows that complete in one step. */
    void finish(const TxnPtr &txn, Tick when);

    /** Enqueue on the right channel, retrying while the queue is full. */
    void enqueueChan(ChanReq req, bool is_write);

    /** Install the line and enqueue the design's fill write. */
    void doFill(Addr addr);

    /** Design-specific fill operation (Write vs ActWr). */
    virtual ChanOp fillOp() const { return ChanOp::Write; }

    void addPendingWrite(Addr addr) { ++_pendingWrites[addr]; }
    void removePendingWrite(Addr addr);
    bool isPendingWrite(Addr addr) const
    {
        return _pendingWrites.contains(addr);
    }

    void mmRead(Addr addr, MmReadCb cb);
    void mmWrite(Addr addr);

    /** Account one cache-DQ transfer into the three traffic classes. */
    void
    accountCache(std::uint64_t serving, std::uint64_t maintenance,
                 std::uint64_t discarded)
    {
        bytesDemandServing += static_cast<double>(serving);
        bytesMaintenance += static_cast<double>(maintenance);
        bytesDiscarded += static_cast<double>(discarded);
    }

    /** Demand-burst size on the cache DQ (64 or 80 bytes). */
    unsigned burstBytes() const { return _burstBytes; }

    std::uint64_t nextChanId() { return _nextChanId++; }
    /// @}

    DramCacheConfig _cfg;
    TagArray _tags;
    AddressMap _map;
    std::vector<std::unique_ptr<DramChannel>> _chans;
    /** Per-channel cross-shard outboxes (empty in single-queue mode). */
    std::vector<ShardOutbox *> _outboxes;
    MainMemory &_mm;

  private:
    void beginTxn(const TxnPtr &txn);
    bool tryFastPath(const TxnPtr &txn);

    /** Issue next-line prefetches after a read miss (§V-D). */
    void maybePrefetch(Addr addr);

    /**
     * Intrusive per-set MSHR FIFO: head/tail of the Txn::setNext
     * chain. The map holds one queue reference on every linked Txn.
     */
    struct SetFifo
    {
        Txn *head = nullptr;
        Txn *tail = nullptr;
    };

    SlabPool<Txn> _txnPool;
    OpenHashMap<SetFifo> _setQueues;
    unsigned _waiting = 0;  ///< conflicting-request buffer occupancy
    Histogram _conflictOcc{1.0, 40};
    OpenHashMap<unsigned> _pendingWrites;
    OpenHashSet _prefetched;               ///< awaiting first demand
    std::uint64_t _inFlight = 0;  ///< accepted, not yet responded
    std::uint64_t _nextChanId = 1;
    unsigned _burstBytes = lineBytes;
};

/** Build the requested design over @p mm. */
std::unique_ptr<DramCacheCtrl>
makeDramCache(EventQueue &eq, Design design, const DramCacheConfig &cfg,
              MainMemory &mm);

} // namespace tsim

#endif // TSIM_DCACHE_DRAM_CACHE_HH
