/**
 * @file
 * Bounding designs: the Ideal cache (zero-latency tag/metadata
 * knowledge, the tags-in-SRAM upper bound of Fig 11) and the
 * NoCache pass-through (main memory only, the Fig 12 baseline).
 */

#ifndef TSIM_DCACHE_SIMPLE_HH
#define TSIM_DCACHE_SIMPLE_HH

#include "dcache/dram_cache.hh"

namespace tsim
{

/** Ideal cache: hit/miss and dirty state known in zero time. */
class IdealCtrl : public DramCacheCtrl
{
  public:
    IdealCtrl(EventQueue &eq, std::string name,
              const DramCacheConfig &cfg, MainMemory &mm);
    Design design() const override { return Design::Ideal; }

  protected:
    void startAccess(const TxnPtr &txn) override;

  private:
    void startRead(const TxnPtr &txn);
    void startWrite(const TxnPtr &txn);
    void maybeFill(const TxnPtr &txn);
    void issueDataWrite(Addr addr);
};

/** No DRAM cache: demands go straight to main memory. */
class NoCacheCtrl : public DramCacheCtrl
{
  public:
    NoCacheCtrl(EventQueue &eq, std::string name,
                const DramCacheConfig &cfg, MainMemory &mm);
    Design design() const override { return Design::NoCache; }

  protected:
    void startAccess(const TxnPtr &txn) override;
    bool usesMshr() const override { return false; }
};

} // namespace tsim

#endif // TSIM_DCACHE_SIMPLE_HH
