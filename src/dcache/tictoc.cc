#include "dcache/tictoc.hh"

namespace tsim
{

bool
TicTocCtrl::initialOpAdmissible(const MemPacket &pkt) const
{
    const unsigned c = _map.decode(pkt.addr).channel;
    // Writes that cannot displace a dirty victim skip the tag-check
    // read, so their initial operation is the demand write itself.
    if (pkt.cmd == MemCmd::Write && !writeEvictsDirty(pkt.addr))
        return _chans[c]->canAcceptWrite();
    return _chans[c]->canAcceptRead();
}

void
TicTocCtrl::startAccess(const TxnPtr &txn)
{
    // The tracked dirtiness state proves most writes safe without a
    // tag check: a write hit updates in place, and a write miss over
    // a clean (or invalid) victim can write-allocate immediately —
    // nothing that needs a writeback is displaced. Only a write miss
    // over a valid dirty victim still takes the conventional
    // tag-read-first flow (the fetched data is the writeback data).
    if (txn->pkt.cmd == MemCmd::Write &&
        !writeEvictsDirty(txn->pkt.addr)) {
        ++tagReadsElided;
        resolveTags(txn, curTick(), /*sample_latency=*/false);
        issueDemandWrite(txn);
        _eq.scheduleIn(_cfg.ctrlLatency,
                       [this, txn = txn] { finish(txn, curTick()); });
        return;
    }
    CascadeLakeCtrl::startAccess(txn);
}

void
TicTocCtrl::tagDataArrived(const TxnPtr &txn, Tick t)
{
    // Read miss over a valid dirty victim: eliding the fill keeps
    // the dirty line resident and saves both the victim writeback
    // and the fill write — the demand is served straight from main
    // memory and only the tag-read burst is spent (discarded).
    if (txn->pkt.cmd == MemCmd::Read && !txn->tagResolved) {
        const TagResult p = _tags.peek(txn->pkt.addr);
        if (!p.hit && p.valid && p.dirty) {
            const bool predicted_hit =
                _cfg.predictor ? _pred.predictHit(txn->pkt.pc) : true;
            resolveTags(txn, t);
            if (_cfg.predictor) {
                _pred.update(txn->pkt.pc, txn->tr.hit);
                _pred.recordOutcome(predicted_hit, txn->tr.hit);
            }
            accountCache(0, 0, burstBytes());
            ++fillsElided;
            txn->fillIssued = true;  // suppress mmDataArrived's fill
            if (txn->mmDataAt != 0) {
                finish(txn, t);
            } else if (!txn->mmStarted) {
                txn->mmStarted = true;
                mmRead(txn->pkt.addr, [this, txn = txn](Tick t2) {
                    mmDataArrived(txn, t2);
                });
            }
            return;
        }
    }
    CascadeLakeCtrl::tagDataArrived(txn, t);
}

void
TicTocCtrl::warmAccess(Addr addr, bool is_write)
{
    // Mirror the steady state of the timed flow: a read miss whose
    // victim is valid and dirty elides the fill, so warmup must not
    // install over it either (the dirty victim stays resident).
    addr = lineAlign(addr);
    if (!is_write) {
        const TagResult p = _tags.peek(addr);
        if (!p.hit && p.valid && p.dirty)
            return;
    }
    DramCacheCtrl::warmAccess(addr, is_write);
}

void
TicTocCtrl::regStats(StatGroup &g) const
{
    DramCacheCtrl::regStats(g);
    g.addScalar("tictoc.tag_reads_elided", &tagReadsElided);
    g.addScalar("tictoc.fills_elided", &fillsElided);
}

} // namespace tsim
