/**
 * @file
 * TicToc DRAM cache (PAPERS.md): a conventional tags-with-data
 * organization that tracks per-line dirtiness/cleanliness in the
 * controller and uses it to elide the two most wasteful conventional
 * flows:
 *
 *  - Write demands whose set cannot displace a dirty victim skip the
 *    tag-check read entirely (the tracked state proves the write is
 *    safe), going straight to the write queue like BEAR's write-hit
 *    bypass but without needing a presence hint.
 *  - Read misses over a valid *dirty* victim skip both the victim
 *    writeback and the fill: the demand is served from main memory
 *    and the dirty victim stays resident, so the cache never spends
 *    bandwidth turning one dirty line into another.
 *
 * Consequence (asserted by the conformance suite): TicToc never
 * issues a clean writeback — every main-memory write corresponds to
 * a WriteMissDirty eviction.
 */

#ifndef TSIM_DCACHE_TICTOC_HH
#define TSIM_DCACHE_TICTOC_HH

#include "dcache/conventional.hh"

namespace tsim
{

/** TicToc: dirtiness-tracked probe/fill elision over the CL flow. */
class TicTocCtrl : public CascadeLakeCtrl
{
  public:
    using CascadeLakeCtrl::CascadeLakeCtrl;

    Design design() const override { return Design::TicToc; }

    void warmAccess(Addr addr, bool is_write) override;
    void regStats(StatGroup &g) const override;

    /** @name Statistics. */
    /// @{
    Scalar tagReadsElided;  ///< write-path tag checks skipped
    Scalar fillsElided;     ///< read-miss-dirty fills skipped
    /// @}

  protected:
    void startAccess(const TxnPtr &txn) override;
    bool initialOpAdmissible(const MemPacket &pkt) const override;
    void tagDataArrived(const TxnPtr &txn, Tick t) override;

  private:
    /** Would a write to @p addr displace a valid dirty victim? */
    bool
    writeEvictsDirty(Addr addr) const
    {
        const TagResult p = _tags.peek(addr);
        return !p.hit && p.valid && p.dirty;
    }
};

} // namespace tsim

#endif // TSIM_DCACHE_TICTOC_HH
