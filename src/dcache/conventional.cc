#include "dcache/conventional.hh"

namespace tsim
{

namespace
{

ChannelConfig
conventionalChanCfg()
{
    // Plain HBM3-style device: no in-DRAM tags, no HM bus, no flush
    // buffer; the controller discovers hit/miss from the read data.
    return ChannelConfig{};
}

} // namespace

CascadeLakeCtrl::CascadeLakeCtrl(EventQueue &eq, std::string name,
                                 const DramCacheConfig &cfg,
                                 MainMemory &mm)
    : DramCacheCtrl(eq, std::move(name), cfg, mm,
                    conventionalChanCfg())
{
}

bool
CascadeLakeCtrl::initialOpAdmissible(const MemPacket &pkt) const
{
    // Every demand, including writes, starts with a tag+data read
    // through the read queue (§II-B1).
    const unsigned c = _map.decode(pkt.addr).channel;
    return _chans[c]->canAcceptRead();
}

void
CascadeLakeCtrl::startAccess(const TxnPtr &txn)
{
    const Addr addr = txn->pkt.addr;
    const bool is_read = txn->pkt.cmd == MemCmd::Read;

    // MAP-I (§V-D): reads predicted to miss overlap the backing-store
    // fetch with the tag check. The tag check must still complete
    // before responding (the victim may be dirty).
    if (is_read && _cfg.predictor && !_pred.predictHit(txn->pkt.pc)) {
        ++predictedMiss;
        txn->mmStarted = true;
        mmRead(addr,
               [this, txn = txn](Tick t) { mmDataArrived(txn, t); });
    }

    ChanReq req;
    req.id = nextChanId();
    txn->chanReqId = req.id;
    req.addr = addr;
    req.op = ChanOp::Read;
    req.isDemandRead = is_read;
    req.onDataDone = [this, txn = txn](Tick t) { tagDataArrived(txn, t); };
    enqueueChan(std::move(req), false);
}

void
CascadeLakeCtrl::tagDataArrived(const TxnPtr &txn, Tick t)
{
    const Addr addr = txn->pkt.addr;
    const bool is_read = txn->pkt.cmd == MemCmd::Read;
    const bool predicted_hit =
        _cfg.predictor ? _pred.predictHit(txn->pkt.pc) : true;

    resolveTags(txn, t);
    if (_cfg.predictor && is_read) {
        _pred.update(txn->pkt.pc, txn->tr.hit);
        _pred.recordOutcome(predicted_hit, txn->tr.hit);
    }

    const unsigned pad = burstBytes() - lineBytes;  // TAD overhead
    const bool dirty_victim =
        !txn->tr.hit && txn->tr.valid && txn->tr.dirty;

    if (is_read) {
        if (txn->tr.hit) {
            accountCache(lineBytes, 0, pad);
            if (txn->mmStarted)
                ++predictorWrongFetch;
            finish(txn, t);
            return;
        }
        // Read miss: the fetched data served only the tag check
        // unless the victim is dirty (then it is the writeback data).
        if (dirty_victim) {
            accountCache(0, lineBytes, pad);
            mmWrite(txn->tr.victimAddr);
        } else {
            accountCache(0, 0, lineBytes + pad);
        }
        if (txn->mmDataAt != 0) {
            // Predictor fetch already returned; respond now.
            doFill(addr);
            txn->fillIssued = true;
            finish(txn, t);
        } else if (!txn->mmStarted) {
            txn->mmStarted = true;
            mmRead(addr,
                   [this, txn = txn](Tick t2) { mmDataArrived(txn, t2); });
        }
        return;
    }

    // Write demand: the tag-read data is discarded unless the victim
    // is dirty (write-miss-dirty needs it for the writeback).
    if (dirty_victim) {
        accountCache(0, lineBytes, pad);
        mmWrite(txn->tr.victimAddr);
    } else {
        accountCache(0, 0, lineBytes + pad);
    }
    issueDemandWrite(txn);
    finish(txn, t);
}

void
CascadeLakeCtrl::issueDemandWrite(const TxnPtr &txn)
{
    const Addr addr = txn->pkt.addr;
    addPendingWrite(addr);
    ChanReq w;
    w.id = nextChanId();
    w.addr = addr;
    w.op = ChanOp::Write;
    w.onDataDone = [this, addr](Tick) { removePendingWrite(addr); };
    accountCache(lineBytes, 0, burstBytes() - lineBytes);
    enqueueChan(std::move(w), true);
}

void
CascadeLakeCtrl::mmDataArrived(const TxnPtr &txn, Tick t)
{
    txn->mmDataAt = t;
    if (!txn->tagResolved)
        return;  // predictor fetch beat the tag check; wait for it
    if (txn->tr.hit)
        return;  // wasted predictor fetch (counted at tag time)
    if (!txn->fillIssued) {
        doFill(txn->pkt.addr);
        txn->fillIssued = true;
    }
    finish(txn, t);
}

bool
BearCtrl::initialOpAdmissible(const MemPacket &pkt) const
{
    const unsigned c = _map.decode(pkt.addr).channel;
    if (pkt.cmd == MemCmd::Write && _tags.peek(pkt.addr).hit)
        return _chans[c]->canAcceptWrite();
    return _chans[c]->canAcceptRead();
}

void
BearCtrl::startAccess(const TxnPtr &txn)
{
    // BEAR's DRAM-cache-presence bit lets LLC writebacks that hit
    // skip the tag-check read entirely (§II-B, Fig 3 caption).
    if (txn->pkt.cmd == MemCmd::Write && _tags.peek(txn->pkt.addr).hit) {
        resolveTags(txn, curTick(), /*sample_latency=*/false);
        issueDemandWrite(txn);
        _eq.scheduleIn(_cfg.ctrlLatency,
                       [this, txn = txn] { finish(txn, curTick()); });
        return;
    }
    CascadeLakeCtrl::startAccess(txn);
}

} // namespace tsim
