#include "dcache/banshee.hh"

namespace tsim
{

namespace
{

ChannelConfig
bansheeChanCfg(const DramCacheConfig &cfg)
{
    // Plain device (no in-DRAM tags — the remap table is SRAM-side),
    // but with the page-grain audit geometry the protocol checker
    // needs: fill groups issue pageBytes/lineBytes lines spread
    // line-interleaved over the channels.
    ChannelConfig c;
    c.remapTable = true;
    c.pageBytes = cfg.pageBytes;
    c.fillGroupLines = static_cast<unsigned>(
        cfg.pageBytes / lineBytes / cfg.channels);
    return c;
}

} // namespace

BansheeCtrl::BansheeCtrl(EventQueue &eq, std::string name,
                         const DramCacheConfig &cfg, MainMemory &mm)
    : DramCacheCtrl(eq, name, cfg, mm, bansheeChanCfg(cfg)),
      _remap(eq, name + ".remap", cfg.capacityBytes, cfg.pageBytes,
             cfg.ways)
{
    fatal_if(cfg.pageBytes % (lineBytes * cfg.channels) != 0,
             "pageBytes must split evenly over the channels");
}

bool
BansheeCtrl::initialOpAdmissible(const MemPacket &pkt) const
{
    const Addr page = pageAlign(pkt.addr);
    if (!mappedForDemand(page))
        return true;  // bypass: the mm front queue never stalls
    const unsigned c = _map.decode(pkt.addr).channel;
    return pkt.cmd == MemCmd::Write ? _chans[c]->canAcceptWrite()
                                    : _chans[c]->canAcceptRead();
}

void
BansheeCtrl::classifyBypass(const TxnPtr &txn, Tick when)
{
    if (txn->tagResolved)
        return;
    txn->tagResolved = true;

    const bool is_read = txn->pkt.cmd == MemCmd::Read;
    const TagResult tr = _tags.peek(txn->pkt.addr);
    txn->tr = tr;

    AccessOutcome o;
    if (tr.hit) {
        o = is_read
            ? (tr.dirty ? AccessOutcome::ReadHitDirty
                        : AccessOutcome::ReadHitClean)
            : (tr.dirty ? AccessOutcome::WriteHitDirty
                        : AccessOutcome::WriteHitClean);
    } else if (!tr.valid) {
        o = is_read ? AccessOutcome::ReadMissInvalid
                    : AccessOutcome::WriteMissInvalid;
    } else {
        o = is_read
            ? (tr.dirty ? AccessOutcome::ReadMissDirty
                        : AccessOutcome::ReadMissClean)
            : (tr.dirty ? AccessOutcome::WriteMissDirty
                        : AccessOutcome::WriteMissClean);
    }
    txn->pkt.outcome = o;
    ++outcomes[static_cast<unsigned>(o)];

    txn->pkt.tagDone = when;
    if (is_read) {
        emit(*this, TagResolvedEv{
            .latencyNs = ticksToNs(when - txn->pkt.tagIssued)});
    }
}

void
BansheeCtrl::issueCacheWrite(Addr addr)
{
    addPendingWrite(addr);
    ChanReq w;
    w.id = nextChanId();
    w.addr = addr;
    w.op = ChanOp::Write;
    w.onDataDone = [this, addr](Tick) { removePendingWrite(addr); };
    accountCache(lineBytes, 0, 0);
    enqueueChan(std::move(w), true);
}

void
BansheeCtrl::startAccess(const TxnPtr &txn)
{
    const Addr addr = txn->pkt.addr;
    const Addr page = pageAlign(addr);
    const bool is_read = txn->pkt.cmd == MemCmd::Read;

    if (mappedForDemand(page)) {
        _remap.touch(page);
        // The remap lookup is SRAM-side, so the tag check costs
        // nothing; a mapped page has every line resident (the fill
        // path excludes in-flight pages from mappedForDemand).
        resolveTags(txn, curTick());
        panic_if(!txn->tr.hit,
                 "%s: mapped page %llx with non-resident line %llx",
                 name().c_str(), (unsigned long long)page,
                 (unsigned long long)addr);
        if (is_read) {
            ChanReq req;
            req.id = nextChanId();
            txn->chanReqId = req.id;
            req.addr = addr;
            req.op = ChanOp::Read;
            req.isDemandRead = true;
            req.onDataDone = [this, txn = txn](Tick t) {
                accountCache(lineBytes, 0, 0);
                finish(txn, t);
            };
            enqueueChan(std::move(req), false);
        } else {
            issueCacheWrite(addr);
            _eq.scheduleIn(_cfg.ctrlLatency, [this, txn = txn] {
                finish(txn, curTick());
            });
        }
        return;
    }

    // Unmapped page: bypass to main memory and count the page as a
    // remap candidate.
    classifyBypass(txn, curTick());
    if (is_read) {
        txn->mmStarted = true;
        mmRead(addr, [this, txn = txn](Tick t) { finish(txn, t); });
    } else {
        mmWrite(addr);
        _eq.scheduleIn(_cfg.ctrlLatency,
                       [this, txn = txn] { finish(txn, curTick()); });
    }
    trackCandidate(page);
}

void
BansheeCtrl::trackCandidate(Addr page)
{
    ++_candFreq[page];
    if (!fillQualifies(page))
        return;
    if (_fillActive) {
        for (unsigned i = 0; i < _pendingCount; ++i) {
            if (_pendingFills[i] == page)
                return;
        }
        if (_pendingCount < kMaxPendingFills) {
            _pendingFills[_pendingCount++] = page;
        } else {
            ++fillsDropped;
        }
        return;
    }
    startFill(page);
}

void
BansheeCtrl::startFill(Addr page)
{
    _fillActive = true;
    _fillPage = page;
    _fillGroup = _nextGroup++ & traceGroupMask;

    const std::uint64_t *f = _candFreq.find(page);
    const std::uint64_t freq = f ? *f : 0;
    _candFreq.erase(page);

    const RemapTable::InstallResult res = _remap.install(page, freq);
    ++pageFills;

    const std::uint32_t ex = (res.victimValid ? 1u : 0u) |
                             (_fillGroup << traceGroupShift);
    // Every channel receives part of the line-interleaved page, so
    // every per-channel checker opens the fill group.
    for (auto &ch : _chans)
        ch->noteRemap(curTick(), page, res.victimValid ? res.victimPage : 0,
                      ex);

    if (res.victimValid)
        spillVictim(res.victimPage);

    const unsigned lines = linesPerPage();
    for (unsigned k = 0; k < lines; ++k) {
        const Addr line = page + k * lineBytes;
        ++_fillOutstanding;
        mmRead(line, [this, line](Tick) { fillLineArrived(line); });
    }
}

void
BansheeCtrl::spillVictim(Addr victim)
{
    const unsigned lines = linesPerPage();
    // Only dirty lines move; clean ones are dropped for free. The
    // snapshot happens before the invalidate sweep below.
    for (unsigned k = 0; k < lines; ++k) {
        const Addr line = victim + k * lineBytes;
        const TagResult tr = _tags.peek(line);
        if (!tr.hit || !tr.dirty)
            continue;
        ++_spillOutstanding;
        ++spilledLines;
        ChanReq r;
        r.id = nextChanId();
        r.addr = line;
        r.op = ChanOp::Read;
        r.ctrlExtra = traceSpillFlag | (_fillGroup << traceGroupShift);
        r.onDataDone = [this, line](Tick) {
            accountCache(0, lineBytes, 0);
            mmWrite(line);
            spillOpDone();
        };
        enqueueChan(std::move(r), false);
    }
    for (unsigned k = 0; k < lines; ++k)
        _tags.invalidate(victim + k * lineBytes);
}

void
BansheeCtrl::fillLineArrived(Addr line)
{
    // Install at data arrival (not upfront) so the line becomes
    // forwardable exactly when its fill write is pending.
    _tags.install(line, false);
    addPendingWrite(line);
    ChanReq w;
    w.id = nextChanId();
    w.addr = line;
    w.op = ChanOp::Write;
    w.ctrlExtra = traceFillFlag | (_fillGroup << traceGroupShift);
    w.onDataDone = [this, line](Tick) {
        removePendingWrite(line);
        fillOpDone();
    };
    accountCache(0, lineBytes, 0);
    enqueueChan(std::move(w), true);
}

void
BansheeCtrl::fillOpDone()
{
    panic_if(_fillOutstanding == 0, "%s: stray fill completion",
             name().c_str());
    --_fillOutstanding;
    completeIfDrained();
}

void
BansheeCtrl::spillOpDone()
{
    panic_if(_spillOutstanding == 0, "%s: stray spill completion",
             name().c_str());
    --_spillOutstanding;
    completeIfDrained();
}

void
BansheeCtrl::completeIfDrained()
{
    if (_fillOutstanding != 0 || _spillOutstanding != 0)
        return;
    _fillActive = false;
    // Pop parked candidates in arrival order until one still beats
    // its victim (frequencies move while a fill is in flight).
    while (_pendingCount > 0) {
        const Addr page = _pendingFills[0];
        --_pendingCount;
        for (unsigned i = 0; i < _pendingCount; ++i)
            _pendingFills[i] = _pendingFills[i + 1];
        if (_remap.contains(page))
            continue;
        if (fillQualifies(page)) {
            startFill(page);
            return;
        }
    }
}

void
BansheeCtrl::warmAccess(Addr addr, bool is_write)
{
    addr = lineAlign(addr);
    const Addr page = pageAlign(addr);
    if (_remap.contains(page)) {
        _remap.touch(page);
        if (is_write)
            _tags.markDirty(addr);
        else
            _tags.touch(addr);
        return;
    }
    const std::uint64_t f = ++_candFreq[page];
    if (f < _remap.victimFreq(page) + kFillThreshold)
        return;
    // Silent page-grain warm fill: no Remap events, no statistics.
    _candFreq.erase(page);
    const RemapTable::InstallResult res =
        _remap.install(page, f, /*silent=*/true);
    const unsigned lines = linesPerPage();
    if (res.victimValid) {
        for (unsigned k = 0; k < lines; ++k)
            _tags.invalidate(res.victimPage + k * lineBytes);
    }
    for (unsigned k = 0; k < lines; ++k)
        _tags.install(page + k * lineBytes, false);
    if (is_write)
        _tags.markDirty(addr);
}

void
BansheeCtrl::regStats(StatGroup &g) const
{
    DramCacheCtrl::regStats(g);
    g.addScalar("banshee.page_fills", &pageFills);
    g.addScalar("banshee.spilled_lines", &spilledLines);
    g.addScalar("banshee.fills_dropped", &fillsDropped);
    _remap.regStats(g);
}

} // namespace tsim
