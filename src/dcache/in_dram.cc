#include "dcache/in_dram.hh"

namespace tsim
{

namespace
{

ChannelConfig
ndcChanCfg()
{
    ChannelConfig c;
    c.inDramTags = true;
    c.hmAtColumn = true;        // result tied to the column operation
    c.conditionalColumn = true; // moves the same bytes as TDRAM
    c.enableProbe = false;
    c.hasFlushBuffer = true;    // NDC's victim buffer
    c.opportunisticDrain = false; // drains only via explicit RES
    return c;
}

ChannelConfig
tdramChanCfg(bool probing, bool conditional_column)
{
    ChannelConfig c;
    c.inDramTags = true;
    c.hmAtColumn = false;       // HM bus result at tRCD_TAG + tHM
    c.conditionalColumn = conditional_column;
    c.enableProbe = probing;
    c.hasFlushBuffer = true;
    c.opportunisticDrain = true;
    return c;
}

} // namespace

InDramTagCtrl::InDramTagCtrl(EventQueue &eq, std::string name,
                             const DramCacheConfig &cfg, MainMemory &mm,
                             ChannelConfig chan_cfg)
    : DramCacheCtrl(eq, std::move(name), cfg, mm, chan_cfg)
{
}

void
InDramTagCtrl::startAccess(const TxnPtr &txn)
{
    const Addr addr = txn->pkt.addr;
    if (txn->pkt.cmd == MemCmd::Read) {
        ChanReq req;
        req.id = nextChanId();
        txn->chanReqId = req.id;
        req.addr = addr;
        req.op = ChanOp::ActRd;
        req.isDemandRead = true;
        req.onTagResult = [this, txn = txn](Tick t, const TagResult &tr) {
            readTagResult(txn, t, tr);
        };
        req.onDataDone = [this, txn = txn](Tick t) { readDataDone(txn, t); };
        enqueueChan(std::move(req), false);
        return;
    }

    // Write demand: a single ActWr carries the data; the device
    // handles a dirty victim through its flush buffer, so no data
    // ever returns and no DQ turnaround occurs (§III-D2).
    ChanReq req;
    req.id = nextChanId();
    txn->chanReqId = req.id;
    req.addr = addr;
    req.op = ChanOp::ActWr;
    req.onTagResult = [this, txn = txn](Tick t, const TagResult &) {
        resolveTags(txn, t);
        finish(txn, t);
    };
    addPendingWrite(addr);
    req.onDataDone = [this, addr](Tick) { removePendingWrite(addr); };
    accountCache(lineBytes, 0, burstBytes() - lineBytes);
    enqueueChan(std::move(req), true);
}

void
InDramTagCtrl::readTagResult(const TxnPtr &txn, Tick t,
                             const TagResult &tr)
{
    if (txn->finished || txn->tagResolved)
        return;
    resolveTags(txn, t);

    switch (txn->pkt.outcome) {
      case AccessOutcome::ReadHitClean:
      case AccessOutcome::ReadHitDirty:
        // Data arrives via readDataDone; nothing to start here.
        break;
      case AccessOutcome::ReadMissInvalid:
      case AccessOutcome::ReadMissClean:
        txn->victimDone = true;  // no victim transfer needed
        if (tr.viaProbe) {
            // Probe retired the request from the read queue before
            // its MAIN slot; the data-bank access never happens.
            channelFor(txn->pkt.addr).removeRead(txn->chanReqId);
        }
        if (!txn->mmStarted) {
            txn->mmStarted = true;
            mmRead(txn->pkt.addr,
                   [this, txn = txn](Tick t2) { mmDataArrived(txn, t2); });
        }
        break;
      case AccessOutcome::ReadMissDirty:
        // Start the backing-store fetch immediately (the HM result
        // precedes the dirty-victim data transfer); the victim
        // arrives via readDataDone and stays off the critical path.
        if (!txn->mmStarted) {
            txn->mmStarted = true;
            mmRead(txn->pkt.addr,
                   [this, txn = txn](Tick t2) { mmDataArrived(txn, t2); });
        }
        break;
      default:
        panic("unexpected outcome for a read demand");
    }
}

void
InDramTagCtrl::readDataDone(const TxnPtr &txn, Tick t)
{
    // Note: txn->finished may already be true here — respond() fires
    // at backing-store-data time, which can precede the dirty-victim
    // transfer when the HM result (or a probe) started the fetch
    // early. The victim handoff below must still run.
    if (!txn->tagResolved) {
        // NDC delivers data and status in the same slot; the data
        // event can run first. Resolve via the normal path.
        TagResult tr{};  // placeholder, resolveTags re-peeks
        readTagResult(txn, t, tr);
    }
    if (outcomeIsHit(txn->pkt.outcome)) {
        accountCache(lineBytes, 0, 0);
        respond(txn, t);
        release(txn);
        return;
    }
    if (txn->pkt.outcome == AccessOutcome::ReadMissClean ||
        txn->pkt.outcome == AccessOutcome::ReadMissInvalid) {
        // Only possible with the conditional-column ablation
        // disabled: the device streamed data the controller must
        // discard, exactly like a conventional design.
        panic_if(channelFor(txn->pkt.addr).config().conditionalColumn,
                 "unexpected data on a %s read",
                 outcomeName(txn->pkt.outcome));
        accountCache(0, 0, lineBytes);
        return;
    }
    // Dirty victim streamed out: write it back to main memory.
    accountCache(0, lineBytes, 0);
    mmWrite(txn->tr.victimAddr);
    txn->victimDone = true;
    maybeFill(txn);
}

void
InDramTagCtrl::mmDataArrived(const TxnPtr &txn, Tick t)
{
    txn->mmDataAt = t;
    respond(txn, t);
    maybeFill(txn);
}

void
InDramTagCtrl::maybeFill(const TxnPtr &txn)
{
    if (txn->fillIssued || txn->mmDataAt == 0 || !txn->victimDone)
        return;
    txn->fillIssued = true;
    doFill(txn->pkt.addr);
    release(txn);
}

NdcCtrl::NdcCtrl(EventQueue &eq, std::string name,
                 const DramCacheConfig &cfg, MainMemory &mm)
    : InDramTagCtrl(eq, std::move(name), cfg, mm, ndcChanCfg())
{
}

TdramCtrl::TdramCtrl(EventQueue &eq, std::string name,
                     const DramCacheConfig &cfg, MainMemory &mm,
                     bool probing)
    : InDramTagCtrl(eq, std::move(name), cfg, mm,
                    tdramChanCfg(probing, cfg.tdramConditionalColumn)),
      _probing(probing)
{
}

} // namespace tsim
