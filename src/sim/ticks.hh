/**
 * @file
 * Simulation time base.
 *
 * The simulator counts time in ticks where one tick is one picosecond.
 * Table III of the TDRAM paper specifies timings in nanoseconds with
 * half-nanosecond entries (e.g., tHM = 7.5 ns); picoseconds keep every
 * parameter an exact integer.
 */

#ifndef TSIM_SIM_TICKS_HH
#define TSIM_SIM_TICKS_HH

#include <cstdint>

namespace tsim
{

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** Sentinel for "never" / unset times. */
constexpr Tick maxTick = ~Tick(0);

/** One nanosecond in ticks. */
constexpr Tick tickPerNs = 1000;

/** Convert a (possibly fractional) nanosecond value to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(tickPerNs) + 0.5);
}

/** Convert ticks to nanoseconds (as double, for reporting only). */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickPerNs);
}

/**
 * Period of a clock in ticks.
 *
 * @param freq_ghz Clock frequency in GHz.
 */
constexpr Tick
clockPeriod(double freq_ghz)
{
    return static_cast<Tick>(1000.0 / freq_ghz + 0.5);
}

} // namespace tsim

#endif // TSIM_SIM_TICKS_HH
