/**
 * @file
 * Error and status reporting helpers, in the spirit of gem5's
 * base/logging.hh.
 *
 * panic()  - an internal simulator invariant was violated (a bug);
 *            aborts.
 * fatal()  - the user asked for something the simulator cannot do
 *            (bad configuration); exits with an error code.
 * warn()   - something may be modelled approximately.
 * inform() - plain status output.
 */

#ifndef TSIM_SIM_LOGGING_HH
#define TSIM_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace tsim
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string logFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace tsim

#define panic(...) \
    ::tsim::panicImpl(__FILE__, __LINE__, ::tsim::logFormat(__VA_ARGS__))

#define fatal(...) \
    ::tsim::fatalImpl(__FILE__, __LINE__, ::tsim::logFormat(__VA_ARGS__))

#define warn(...) ::tsim::warnImpl(::tsim::logFormat(__VA_ARGS__))

#define inform(...) ::tsim::informImpl(::tsim::logFormat(__VA_ARGS__))

/** Panic if a simulator invariant does not hold. */
#define panic_if(cond, ...)                                              \
    do {                                                                 \
        if (cond)                                                        \
            panic(__VA_ARGS__);                                          \
    } while (0)

/** Fatal if a user-visible configuration constraint does not hold. */
#define fatal_if(cond, ...)                                              \
    do {                                                                 \
        if (cond)                                                        \
            fatal(__VA_ARGS__);                                          \
    } while (0)

#endif // TSIM_SIM_LOGGING_HH
