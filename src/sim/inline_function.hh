/**
 * @file
 * Small-buffer-optimized move-only callables used on the simulator's
 * hot paths.
 *
 * Every event the simulator schedules captures a handful of words (a
 * component pointer, an address, a tick); wrapping those in a
 * std::function means one heap allocation and one indirect free per
 * event, which dominates the kernel's cost at tens of millions of
 * events per run. InlineCallable stores any callable up to
 * `inlineCapacity` bytes directly inside the object, so the kernel's
 * schedule/execute fast path never touches the allocator. Oversized
 * or over-aligned callables still work via a counted heap fallback;
 * the counter lets tests and the microbenchmarks assert that the
 * simulator's real capture sizes stay on the inline path.
 *
 * InlineCallable is a template over the call signature and the inline
 * capacity: the event kernel uses InlineFunction (= InlineCallable<
 * void(), 120>), sized so an event can capture a whole channel
 * completion callback (an 80-byte ChanTagCb plus a TagResult and a
 * Tick is 112 bytes) without spilling; the DRAM channel's per-request
 * completion callbacks use 64-byte signatures that carry the
 * completion tick and tag result.
 */

#ifndef TSIM_SIM_INLINE_FUNCTION_HH
#define TSIM_SIM_INLINE_FUNCTION_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace tsim
{

namespace detail
{
/** Process-wide count of callables that overflowed to the heap. */
inline std::atomic<std::uint64_t> inlineCallableHeapFallbacks{0};
} // namespace detail

template <typename Signature, std::size_t Capacity = 80>
class InlineCallable;

/** Move-only callable of signature @p R(Args...) with inline storage. */
template <typename R, typename... Args, std::size_t Capacity>
class InlineCallable<R(Args...), Capacity>
{
  public:
    /** Inline storage size; callables up to this many bytes (with
     *  fundamental alignment and nothrow moves) stay on the inline
     *  path. */
    static constexpr std::size_t inlineCapacity = Capacity;

    InlineCallable() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallable>>>
    InlineCallable(F &&f)
    {
        emplace(std::forward<F>(f));
    }

    InlineCallable(InlineCallable &&other) noexcept { moveFrom(other); }

    InlineCallable &
    operator=(InlineCallable &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineCallable(const InlineCallable &) = delete;
    InlineCallable &operator=(const InlineCallable &) = delete;

    ~InlineCallable() { reset(); }

    /** Invoke the stored callable (must not be empty). */
    R
    operator()(Args... args)
    {
        return _invoke(_storage, std::forward<Args>(args)...);
    }

    explicit operator bool() const { return _invoke != nullptr; }

    /** Destroy the stored callable, leaving the object empty. */
    void
    reset()
    {
        if (_manage)
            _manage(Op::Destroy, nullptr, _storage);
        _invoke = nullptr;
        _manage = nullptr;
    }

    /**
     * Number of callables (process-wide, across every signature) that
     * did not fit inline and fell back to the heap. The kernel tests
     * assert this stays flat for the capture sizes the simulator
     * actually uses.
     */
    static std::uint64_t
    heapFallbacks()
    {
        return detail::inlineCallableHeapFallbacks.load(
            std::memory_order_relaxed);
    }

  private:
    enum class Op
    {
        Destroy,  ///< destroy the callable at src
        Move,     ///< move-construct dst from src, destroy src
    };

    using Invoke = R (*)(void *, Args...);
    using Manage = void (*)(Op, void *dst, void *src);

    template <typename F>
    void
    emplace(F &&f)
    {
        using Fn = std::decay_t<F>;
        constexpr bool fits =
            sizeof(Fn) <= inlineCapacity &&
            alignof(Fn) <= alignof(std::max_align_t) &&
            std::is_nothrow_move_constructible_v<Fn>;
        if constexpr (fits) {
            ::new (static_cast<void *>(_storage))
                Fn(std::forward<F>(f));
            _invoke = [](void *p, Args... args) -> R {
                return (*static_cast<Fn *>(p))(
                    std::forward<Args>(args)...);
            };
            _manage = [](Op op, void *dst, void *src) {
                auto *s = static_cast<Fn *>(src);
                if (op == Op::Move) {
                    ::new (dst) Fn(std::move(*s));
                }
                s->~Fn();
            };
        } else {
            // Heap fallback: the buffer holds a single Fn*.
            detail::inlineCallableHeapFallbacks.fetch_add(
                1, std::memory_order_relaxed);
            // tdram-lint:allow(hot-alloc): this *is* the documented
            // SBO escape hatch; the counter above keeps it honest
            // (benches assert 0 fallbacks on the fast path).
            auto *heap = new Fn(std::forward<F>(f));
            ::new (static_cast<void *>(_storage)) Fn *(heap);
            _invoke = [](void *p, Args... args) -> R {
                return (**static_cast<Fn **>(p))(
                    std::forward<Args>(args)...);
            };
            _manage = [](Op op, void *dst, void *src) {
                Fn *s = *static_cast<Fn **>(src);
                if (op == Op::Move)
                    ::new (dst) Fn *(s);
                else
                    delete s;
            };
        }
    }

    void
    moveFrom(InlineCallable &other) noexcept
    {
        _invoke = other._invoke;
        _manage = other._manage;
        if (_manage)
            _manage(Op::Move, _storage, other._storage);
        other._invoke = nullptr;
        other._manage = nullptr;
    }

    alignas(std::max_align_t) unsigned char _storage[inlineCapacity];
    Invoke _invoke = nullptr;
    Manage _manage = nullptr;
};

/**
 * The event-callback type of the simulation kernel. 120 bytes of
 * inline storage so completion events that capture a moved-in channel
 * callback (80 bytes) plus its result payload stay allocation-free.
 */
using InlineFunction = InlineCallable<void(), 120>;

} // namespace tsim

#endif // TSIM_SIM_INLINE_FUNCTION_HH
