/**
 * @file
 * Small-buffer-optimized move-only callable, the event-callback type
 * of the simulation kernel.
 *
 * Every event the simulator schedules captures a handful of words (a
 * component pointer, an address, a tick); wrapping those in a
 * std::function means one heap allocation and one indirect free per
 * event, which dominates the kernel's cost at tens of millions of
 * events per run. InlineFunction stores any callable up to
 * `inlineCapacity` bytes directly inside the object, so the kernel's
 * schedule/execute fast path never touches the allocator. Oversized
 * or over-aligned callables still work via a counted heap fallback;
 * the counter lets tests and the kernel microbenchmark assert that
 * the simulator's real capture sizes stay on the inline path.
 */

#ifndef TSIM_SIM_INLINE_FUNCTION_HH
#define TSIM_SIM_INLINE_FUNCTION_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace tsim
{

/** Move-only `void()` callable with inline storage. */
class InlineFunction
{
  public:
    /**
     * Inline storage size. Sized for the largest capture the
     * components use today (a std::function copy + a TagResult + a
     * Tick is 64 bytes) plus headroom.
     */
    static constexpr std::size_t inlineCapacity = 80;

    InlineFunction() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction>>>
    InlineFunction(F &&f)
    {
        emplace(std::forward<F>(f));
    }

    InlineFunction(InlineFunction &&other) noexcept { moveFrom(other); }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    /** Invoke the stored callable (must not be empty). */
    void operator()() { _invoke(_storage); }

    explicit operator bool() const { return _invoke != nullptr; }

    /** Destroy the stored callable, leaving the object empty. */
    void
    reset()
    {
        if (_manage)
            _manage(Op::Destroy, nullptr, _storage);
        _invoke = nullptr;
        _manage = nullptr;
    }

    /**
     * Number of callables (process-wide) that did not fit inline and
     * fell back to the heap. The kernel tests assert this stays flat
     * for the capture sizes the simulator actually uses.
     */
    static std::uint64_t
    heapFallbacks()
    {
        return s_heapFallbacks.load(std::memory_order_relaxed);
    }

  private:
    enum class Op
    {
        Destroy,  ///< destroy the callable at src
        Move,     ///< move-construct dst from src, destroy src
    };

    using Invoke = void (*)(void *);
    using Manage = void (*)(Op, void *dst, void *src);

    template <typename F>
    void
    emplace(F &&f)
    {
        using Fn = std::decay_t<F>;
        constexpr bool fits =
            sizeof(Fn) <= inlineCapacity &&
            alignof(Fn) <= alignof(std::max_align_t) &&
            std::is_nothrow_move_constructible_v<Fn>;
        if constexpr (fits) {
            ::new (static_cast<void *>(_storage))
                Fn(std::forward<F>(f));
            _invoke = [](void *p) { (*static_cast<Fn *>(p))(); };
            _manage = [](Op op, void *dst, void *src) {
                auto *s = static_cast<Fn *>(src);
                if (op == Op::Move) {
                    ::new (dst) Fn(std::move(*s));
                }
                s->~Fn();
            };
        } else {
            // Heap fallback: the buffer holds a single Fn*.
            s_heapFallbacks.fetch_add(1, std::memory_order_relaxed);
            auto *heap = new Fn(std::forward<F>(f));
            ::new (static_cast<void *>(_storage)) Fn *(heap);
            _invoke = [](void *p) { (**static_cast<Fn **>(p))(); };
            _manage = [](Op op, void *dst, void *src) {
                Fn *s = *static_cast<Fn **>(src);
                if (op == Op::Move)
                    ::new (dst) Fn *(s);
                else
                    delete s;
            };
        }
    }

    void
    moveFrom(InlineFunction &other) noexcept
    {
        _invoke = other._invoke;
        _manage = other._manage;
        if (_manage)
            _manage(Op::Move, _storage, other._storage);
        other._invoke = nullptr;
        other._manage = nullptr;
    }

    inline static std::atomic<std::uint64_t> s_heapFallbacks{0};

    alignas(std::max_align_t) unsigned char _storage[inlineCapacity];
    Invoke _invoke = nullptr;
    Manage _manage = nullptr;
};

} // namespace tsim

#endif // TSIM_SIM_INLINE_FUNCTION_HH
