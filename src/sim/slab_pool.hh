/**
 * @file
 * Chunked slab pool with intrusive reference counting.
 *
 * The DRAM-cache controller keeps one Txn object per in-flight demand
 * alive across an arbitrary dance of channel callbacks, main-memory
 * completions and MSHR queues. The seed used std::shared_ptr, which
 * costs one control-block allocation per demand plus atomic ref
 * traffic on the front shard's hottest path. SlabPool replaces that
 * with recycled slots carved from chunked slabs and a non-atomic
 * intrusive refcount (the front shard is single-threaded by
 * construction — DESIGN.md §12 — so plain increments suffice), while
 * PoolRef keeps the exact shared_ptr lifetime semantics the protocol
 * flows rely on: a completion callback may legally outlive finish()
 * and release().
 *
 * Teardown safety matches shared_ptr too: the pool's storage core is
 * kept alive (and only then reclaimed) while any PoolRef is
 * outstanding, so destruction order between the pool's owner, the
 * event queue and other components holding captured refs does not
 * matter.
 */

#ifndef TSIM_SIM_SLAB_POOL_HH
#define TSIM_SIM_SLAB_POOL_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace tsim
{

template <typename T>
class SlabPool;

namespace detail
{

/**
 * Heap-allocated storage core shared by a pool and its stragglers.
 * If the pool dies first, the core stays alive until the last live
 * item is released.
 */
template <typename T>
struct PoolCore
{
    struct alignas(alignof(T)) Slot
    {
        unsigned char bytes[sizeof(T)];
    };

    static constexpr std::size_t chunkItems = 128;

    std::vector<std::unique_ptr<Slot[]>> chunks;
    void *freeHead = nullptr;
    std::uint64_t live = 0;  ///< allocated, not yet destroyed
    bool poolAlive = true;   ///< owning SlabPool still exists

    void *
    takeSlot()
    {
        if (!freeHead) {
            // tdram-lint:allow(hot-alloc): amortized slab growth —
            // one allocation per chunkItems constructions, then the
            // free list recycles forever.
            auto chunk = std::make_unique<Slot[]>(chunkItems);
            for (std::size_t i = 0; i < chunkItems; ++i) {
                void *s = &chunk[i];
                *static_cast<void **>(s) = freeHead;
                freeHead = s;
            }
            chunks.push_back(std::move(chunk));
        }
        void *s = freeHead;
        freeHead = *static_cast<void **>(s);
        return s;
    }
};

} // namespace detail

/**
 * Intrusive bookkeeping every pooled type embeds (by deriving from
 * PoolItem<Itself>). 16 bytes per item.
 */
template <typename T>
struct PoolItem
{
    std::uint32_t poolRefs = 0;
    detail::PoolCore<T> *poolCore = nullptr;
};

/**
 * 8-byte smart pointer to a pooled @p T with shared-ownership
 * semantics. Copy adds a ref; the slot is recycled when the last ref
 * drops. Not thread-safe — single-shard use only.
 */
template <typename T>
class PoolRef
{
  public:
    PoolRef() = default;
    PoolRef(std::nullptr_t) {}

    PoolRef(const PoolRef &o) noexcept : _p(o._p)
    {
        if (_p)
            ++_p->poolRefs;
    }

    PoolRef(PoolRef &&o) noexcept : _p(o._p) { o._p = nullptr; }

    PoolRef &
    operator=(const PoolRef &o) noexcept
    {
        if (this != &o) {
            release();
            _p = o._p;
            if (_p)
                ++_p->poolRefs;
        }
        return *this;
    }

    PoolRef &
    operator=(PoolRef &&o) noexcept
    {
        if (this != &o) {
            release();
            _p = o._p;
            o._p = nullptr;
        }
        return *this;
    }

    ~PoolRef() { release(); }

    T *get() const { return _p; }
    T *operator->() const { return _p; }
    T &operator*() const { return *_p; }
    explicit operator bool() const { return _p != nullptr; }

    friend bool operator==(const PoolRef &a, const PoolRef &b)
    {
        return a._p == b._p;
    }
    friend bool operator!=(const PoolRef &a, const PoolRef &b)
    {
        return a._p != b._p;
    }

    /** Take ownership of one existing reference (no ref added). */
    static PoolRef
    adopt(T *p)
    {
        PoolRef r;
        r._p = p;
        return r;
    }

    /** Reference an item some other owner keeps alive. */
    static PoolRef
    share(T *p)
    {
        PoolRef r;
        r._p = p;
        if (p)
            ++p->poolRefs;
        return r;
    }

    /** Steal the raw pointer; the caller now owns this reference. */
    T *
    detach()
    {
        T *p = _p;
        _p = nullptr;
        return p;
    }

    void
    reset()
    {
        release();
    }

  private:
    void
    release()
    {
        if (_p && --_p->poolRefs == 0)
            destroyItem(_p);
        _p = nullptr;
    }

    static void
    destroyItem(T *p)
    {
        detail::PoolCore<T> *core = p->poolCore;
        p->~T();
        --core->live;
        if (core->poolAlive) {
            *reinterpret_cast<void **>(p) = core->freeHead;
            core->freeHead = p;
        } else if (core->live == 0) {
            delete core;
        }
    }

    T *_p = nullptr;
};

/** The pool itself. Alloc pops a recycled slot or grows one chunk. */
template <typename T>
class SlabPool
{
  public:
    SlabPool() : _core(new detail::PoolCore<T>) {}

    SlabPool(const SlabPool &) = delete;
    SlabPool &operator=(const SlabPool &) = delete;

    ~SlabPool()
    {
        if (_core->live == 0)
            delete _core;
        else
            _core->poolAlive = false;  // stragglers reclaim it
    }

    /** Construct a fresh @p T and return the owning reference. */
    template <typename... Args>
    PoolRef<T>
    alloc(Args &&...args)
    {
        void *slot = _core->takeSlot();
        T *p = ::new (slot) T(std::forward<Args>(args)...);
        p->poolRefs = 1;
        p->poolCore = _core;
        ++_core->live;
        return PoolRef<T>::adopt(p);
    }

    /** Items currently allocated (tests / leak sanity). */
    std::uint64_t liveCount() const { return _core->live; }

  private:
    detail::PoolCore<T> *_core;
};

} // namespace tsim

#endif // TSIM_SIM_SLAB_POOL_HH
